//! Cross-crate integration: the GNN baselines and DS-GL consume the
//! same windows and are comparable on the same test split.

use dsgl::baselines::{
    common::graph_to_adjacency, evaluate_gnn, train_gnn, GnnTrainConfig, GwnModel, StGnn,
};
use dsgl::core::ridge::fit_ridge_validated;
use dsgl::core::{DsGlModel, Trainer, VariableLayout};
use dsgl::data::WindowConfig;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A small O3-flavoured dataset shared by both arms.
mod o3_like {
    pub use dsgl::data::air::{generate, Pollutant};
}

#[test]
fn both_arms_beat_the_mean_predictor() {
    let dataset = o3_like::generate(o3_like::Pollutant::O3, 9).truncate(24, 220);
    let n = dataset.node_count();
    let w = 3;
    let wc = WindowConfig::one_step(w);
    let (train, val, test) = dataset.split_windows(&wc, 0.6, 0.15);

    // Mean predictor reference.
    let mean: f64 = train
        .iter()
        .flat_map(|s| s.target.iter())
        .sum::<f64>()
        / (train.len() * n) as f64;
    let mut sse = 0.0;
    let mut count = 0;
    for s in &test {
        for t in &s.target {
            sse += (t - mean) * (t - mean);
            count += 1;
        }
    }
    let mean_rmse = (sse / count as f64).sqrt();

    // GNN arm.
    let mut rng = StdRng::seed_from_u64(1);
    let adj = graph_to_adjacency(&dataset.graph);
    let mut gwn = GwnModel::new(&adj, w, 1, 12, &mut rng);
    let cfg = GnnTrainConfig {
        epochs: 15,
        ..GnnTrainConfig::for_dims(w, n, 1)
    };
    train_gnn(&mut gwn, &train, &cfg, &mut rng);
    let gnn_rmse = evaluate_gnn(&gwn, &test, &cfg);
    assert!(gnn_rmse < mean_rmse, "gwn {gnn_rmse} vs mean {mean_rmse}");
    assert!(gwn.inference_flops() > 0);

    // DS-GL arm on identical windows.
    let layout = VariableLayout::new(w, n, 1);
    let mut model = DsGlModel::new(layout);
    model.h_mut().iter_mut().for_each(|h| *h = -2.0);
    model.init_diffusion_prior(&dataset.graph, 0.72, 0.22);
    fit_ridge_validated(&mut model, &train, &val, &[0.1, 1.0, 10.0]).unwrap();
    let dsgl_rmse = Trainer::regression_rmse(&model, &test).unwrap();
    assert!(dsgl_rmse < mean_rmse, "dsgl {dsgl_rmse} vs mean {mean_rmse}");
}
