//! Serde round-trips of every persistable artefact: a trained model, a
//! decomposed model (placement + wormholes + stats), datasets, and
//! hardware reports survive JSON serialisation bit-exactly.

use dsgl::core::ridge::fit_ridge;
use dsgl::core::{decompose, DecomposeConfig, DsGlModel, PatternKind, VariableLayout};
use dsgl::data::{covid, WindowConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn trained_model_roundtrips() {
    let dataset = covid::generate(3).truncate(12, 120);
    let (train, _, _) = dataset.split_windows(&WindowConfig::one_step(2), 0.8, 0.0);
    let layout = VariableLayout::new(2, 12, 1);
    let mut model = DsGlModel::new(layout);
    fit_ridge(&mut model, &train, 1.0).unwrap();

    let json = serde_json::to_string(&model).unwrap();
    let back: DsGlModel = serde_json::from_str(&json).unwrap();
    assert_eq!(model, back);
    // And it still predicts identically.
    let p1 = dsgl::core::inference::infer_fixed_point(&model, &train[0], 100).unwrap();
    let p2 = dsgl::core::inference::infer_fixed_point(&back, &train[0], 100).unwrap();
    assert_eq!(p1, p2);
}

#[test]
fn decomposed_model_roundtrips() {
    let dataset = covid::generate(4).truncate(12, 120);
    let (train, _, _) = dataset.split_windows(&WindowConfig::one_step(2), 0.8, 0.0);
    let layout = VariableLayout::new(2, 12, 1);
    let mut model = DsGlModel::new(layout);
    fit_ridge(&mut model, &train, 1.0).unwrap();
    let cfg = DecomposeConfig {
        density: 0.3,
        pattern: PatternKind::Mesh,
        wormhole_budget: 2,
        pe_capacity: layout.total().div_ceil(4) + 2,
        grid: (2, 2),
        finetune: None,
    };
    let mut rng = StdRng::seed_from_u64(1);
    let d = decompose(&model, &train, &cfg, &mut rng).unwrap();
    let json = serde_json::to_string(&d).unwrap();
    let back: dsgl::core::DecomposedModel = serde_json::from_str(&json).unwrap();
    assert_eq!(d, back);
}

#[test]
fn dataset_roundtrips() {
    let dataset = covid::generate(5).truncate(8, 60);
    let json = serde_json::to_string(&dataset).unwrap();
    let back: dsgl::data::Dataset = serde_json::from_str(&json).unwrap();
    assert_eq!(dataset, back);
}

#[test]
fn configs_roundtrip() {
    let anneal = dsgl::ising::AnnealConfig::default();
    let json = serde_json::to_string(&anneal).unwrap();
    let back: dsgl::ising::AnnealConfig = serde_json::from_str(&json).unwrap();
    assert_eq!(anneal, back);

    let hw = dsgl::hw::HwConfig::default();
    let json = serde_json::to_string(&hw).unwrap();
    let back: dsgl::hw::HwConfig = serde_json::from_str(&json).unwrap();
    assert_eq!(hw, back);
}
