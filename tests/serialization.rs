//! Serde round-trips of every persistable artefact: a trained model, a
//! decomposed model (placement + wormholes + stats), datasets, and
//! hardware reports survive JSON serialisation bit-exactly.

use dsgl::core::ridge::fit_ridge;
use dsgl::core::{decompose, DecomposeConfig, DsGlModel, PatternKind, VariableLayout};
use dsgl::data::{covid, WindowConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn trained_model_roundtrips() {
    let dataset = covid::generate(3).truncate(12, 120);
    let (train, _, _) = dataset.split_windows(&WindowConfig::one_step(2), 0.8, 0.0);
    let layout = VariableLayout::new(2, 12, 1);
    let mut model = DsGlModel::new(layout);
    fit_ridge(&mut model, &train, 1.0).unwrap();

    let json = serde_json::to_string(&model).unwrap();
    let back: DsGlModel = serde_json::from_str(&json).unwrap();
    assert_eq!(model, back);
    // And it still predicts identically.
    let p1 = dsgl::core::inference::infer_fixed_point(&model, &train[0], 100).unwrap();
    let p2 = dsgl::core::inference::infer_fixed_point(&back, &train[0], 100).unwrap();
    assert_eq!(p1, p2);
}

#[test]
fn decomposed_model_roundtrips() {
    let dataset = covid::generate(4).truncate(12, 120);
    let (train, _, _) = dataset.split_windows(&WindowConfig::one_step(2), 0.8, 0.0);
    let layout = VariableLayout::new(2, 12, 1);
    let mut model = DsGlModel::new(layout);
    fit_ridge(&mut model, &train, 1.0).unwrap();
    let cfg = DecomposeConfig {
        density: 0.3,
        pattern: PatternKind::Mesh,
        wormhole_budget: 2,
        pe_capacity: layout.total().div_ceil(4) + 2,
        grid: (2, 2),
        finetune: None,
    };
    let mut rng = StdRng::seed_from_u64(1);
    let d = decompose(&model, &train, &cfg, &mut rng).unwrap();
    let json = serde_json::to_string(&d).unwrap();
    let back: dsgl::core::DecomposedModel = serde_json::from_str(&json).unwrap();
    assert_eq!(d, back);
}

#[test]
fn dataset_roundtrips() {
    let dataset = covid::generate(5).truncate(8, 60);
    let json = serde_json::to_string(&dataset).unwrap();
    let back: dsgl::data::Dataset = serde_json::from_str(&json).unwrap();
    assert_eq!(dataset, back);
}

#[test]
fn configs_roundtrip() {
    let anneal = dsgl::ising::AnnealConfig::default();
    let json = serde_json::to_string(&anneal).unwrap();
    let back: dsgl::ising::AnnealConfig = serde_json::from_str(&json).unwrap();
    assert_eq!(anneal, back);

    let hw = dsgl::hw::HwConfig::default();
    let json = serde_json::to_string(&hw).unwrap();
    let back: dsgl::hw::HwConfig = serde_json::from_str(&json).unwrap();
    assert_eq!(hw, back);
}

/// Keys of a vendored [`serde::Value`] map, in serialized order.
fn map_keys(value: &serde::Value) -> Vec<&str> {
    value
        .as_map()
        .expect("expected a JSON object")
        .iter()
        .map(|(k, _)| k.as_str())
        .collect()
}

#[test]
fn trace_roundtrips_with_capacity_bound() {
    use serde::Deserialize as _;

    let mut trace = dsgl::ising::Trace::with_capacity_bound(1.0, 3);
    for i in 0..5 {
        trace.record(i as f64, &[i as f64, -(i as f64)]);
    }
    // Ring-buffer semantics: only the newest 3 samples survive.
    assert_eq!(trace.len(), 3);
    assert_eq!(trace.times(), &[2.0, 3.0, 4.0]);

    let json = serde_json::to_string(&trace).unwrap();
    let back: dsgl::ising::Trace = serde_json::from_str(&json).unwrap();
    assert_eq!(trace, back);
    assert_eq!(back.capacity_bound(), Some(3));

    // A trace serialized before the bound existed (no `capacity_bound`
    // key) must still deserialize, as unbounded.
    let unbounded = serde::Serialize::to_value(&dsgl::ising::Trace::new(0.5));
    let serde::Value::Map(mut entries) = unbounded else {
        panic!("trace serializes as an object");
    };
    entries.retain(|(k, _)| k != "capacity_bound");
    let legacy = dsgl::ising::Trace::from_value(&serde::Value::Map(entries)).unwrap();
    assert_eq!(legacy.capacity_bound(), None);
}

#[test]
fn health_report_roundtrips() {
    use dsgl::core::guard::{Attempt, FailureCause, Mitigation};
    use serde::Deserialize as _;
    use serde::Serialize as _;

    let health = dsgl::core::HealthReport {
        attempts: vec![Attempt {
            cause: FailureCause::NonFiniteState,
            mitigation: Some(Mitigation::HalveDt),
            dt_ns: 0.25,
            budget_ns: 100.0,
        }],
        retries: 1,
        degraded: false,
        sanitized_nodes: 2,
        fault_clamped: 0,
        anneal_steps: 321,
        anneal_sim_time_ns: 80.25,
        cancelled: false,
    };
    let json = serde_json::to_string(&health).unwrap();
    let back: dsgl::core::HealthReport = serde_json::from_str(&json).unwrap();
    assert_eq!(health, back);

    // Field-name stability: downstream consumers key on these names.
    assert_eq!(
        map_keys(&health.to_value()),
        [
            "attempts",
            "retries",
            "degraded",
            "sanitized_nodes",
            "fault_clamped",
            "anneal_steps",
            "anneal_sim_time_ns",
            "cancelled"
        ]
    );

    // Reports serialized before the telemetry/cancellation fields
    // existed must still deserialize (the new fields default to
    // zero/false).
    let serde::Value::Map(mut entries) = health.to_value() else {
        panic!("health report serializes as an object");
    };
    entries.retain(|(k, _)| {
        k != "anneal_steps" && k != "anneal_sim_time_ns" && k != "cancelled"
    });
    let legacy =
        dsgl::core::HealthReport::from_value(&serde::Value::Map(entries)).unwrap();
    assert_eq!(legacy.anneal_steps, 0);
    assert_eq!(legacy.anneal_sim_time_ns, 0.0);
    assert!(!legacy.cancelled);
    assert_eq!(legacy.retries, health.retries);
}

#[test]
fn serve_instruments_and_stats_schema_is_frozen() {
    use serde::Serialize as _;

    // The serve.* instrument names are a frozen interface, like every
    // family in the snapshot schema: dashboards key on them.
    assert_eq!(dsgl::serve::instruments::REQUESTS, "serve.requests");
    assert_eq!(dsgl::serve::instruments::REJECTED, "serve.rejected");
    assert_eq!(dsgl::serve::instruments::BATCHES, "serve.batches");
    assert_eq!(dsgl::serve::instruments::QUEUE_DEPTH, "serve.queue_depth");
    assert_eq!(
        dsgl::serve::instruments::COALESCE_WIDTH,
        "serve.coalesce_width"
    );
    assert_eq!(
        dsgl::serve::instruments::COALESCED_HITS,
        "serve.coalesced_hits"
    );
    assert_eq!(dsgl::serve::instruments::LATENCY_NS, "serve.latency_ns");
    assert_eq!(dsgl::serve::instruments::DEGRADATIONS, "serve.degradations");
    assert_eq!(
        dsgl::serve::instruments::SLO_FALLBACKS,
        "serve.slo_fallbacks"
    );
    assert_eq!(dsgl::serve::instruments::WORKERS, "serve.workers");
    assert_eq!(
        dsgl::serve::instruments::WORKER_PANICS,
        "serve.worker_panics"
    );
    assert_eq!(
        dsgl::serve::instruments::WORKER_RESPAWNS,
        "serve.worker_respawns"
    );
    assert_eq!(dsgl::serve::instruments::REQUEUES, "serve.requeues");
    assert_eq!(
        dsgl::serve::instruments::CRASH_FAILURES,
        "serve.crash_failures"
    );
    assert_eq!(
        dsgl::serve::instruments::WATCHDOG_CANCELS,
        "serve.watchdog_cancels"
    );
    assert_eq!(
        dsgl::serve::instruments::WATCHDOG_FALLBACKS,
        "serve.watchdog_fallbacks"
    );
    assert_eq!(
        dsgl::serve::instruments::BROWNOUT_TIER,
        "serve.brownout_tier"
    );
    assert_eq!(
        dsgl::serve::instruments::BROWNOUT_TRANSITIONS,
        "serve.brownout_transitions"
    );
    assert_eq!(
        dsgl::serve::instruments::BROWNOUT_ADMITTED,
        "serve.brownout_admitted"
    );
    assert_eq!(
        dsgl::serve::instruments::BROWNOUT_REJECTED,
        "serve.brownout_rejected"
    );

    // A served run exports serve.* through the ordinary schema-v1
    // snapshot — same top-level shape, instruments sorted by name.
    let sink = dsgl::core::TelemetrySink::enabled();
    sink.counter_add(dsgl::serve::instruments::REQUESTS, 6);
    sink.counter_add(dsgl::serve::instruments::BATCHES, 2);
    sink.gauge_set(dsgl::serve::instruments::WORKERS, 2.0);
    sink.record(dsgl::serve::instruments::COALESCE_WIDTH, 3.0);
    sink.record(dsgl::serve::instruments::LATENCY_NS, 1500.0);
    let snapshot = sink.snapshot();
    assert!(snapshot.families().contains(&"serve".to_owned()));
    let json = serde_json::to_string(&snapshot).unwrap();
    let back: dsgl::core::MetricsSnapshot = serde_json::from_str(&json).unwrap();
    assert_eq!(snapshot, back);
    assert_eq!(map_keys(&snapshot.to_value()), ["schema_version", "instruments"]);

    // ServiceStats: the digested health endpoint, field names frozen.
    let stats = dsgl::serve::ServiceStats::from_snapshot(&snapshot);
    assert_eq!(stats.requests, 6);
    assert_eq!(stats.batches, 2);
    assert_eq!(stats.workers, 2);
    assert_eq!(stats.mean_coalesce_width, 3.0);
    assert!(stats.p50_latency_ns > 0.0);
    assert_eq!(
        map_keys(&stats.to_value()),
        [
            "requests",
            "rejected",
            "batches",
            "coalesced_hits",
            "degradations",
            "slo_fallbacks",
            "mean_coalesce_width",
            "p50_latency_ns",
            "p99_latency_ns",
            "workers"
        ]
    );
    let json = serde_json::to_string(&stats).unwrap();
    let back: dsgl::serve::ServiceStats = serde_json::from_str(&json).unwrap();
    assert_eq!(stats, back);
}

#[test]
fn metrics_snapshot_roundtrips() {
    use serde::Serialize as _;

    let sink = dsgl::core::TelemetrySink::enabled();
    sink.counter_add("anneal.runs", 3);
    sink.gauge_set("hw.pes", 16.0);
    sink.record("anneal.steps", 120.0);
    sink.record("anneal.steps", 480.0);

    let snapshot = sink.snapshot();
    assert_eq!(snapshot.schema_version, dsgl::ising::telemetry::SCHEMA_VERSION);
    let json = serde_json::to_string(&snapshot).unwrap();
    let back: dsgl::core::MetricsSnapshot = serde_json::from_str(&json).unwrap();
    assert_eq!(snapshot, back);
    assert_eq!(back.counter("anneal.runs"), 3);
    assert_eq!(back.families(), ["anneal", "hw"]);

    // Field-name stability of the version-1 snapshot schema: the
    // top-level object and every instrument expose exactly these keys.
    let value = snapshot.to_value();
    assert_eq!(map_keys(&value), ["schema_version", "instruments"]);
    let serde::Value::Seq(instruments) = value.get("instruments").unwrap() else {
        panic!("instruments serializes as an array");
    };
    assert_eq!(
        map_keys(&instruments[0]),
        ["name", "kind", "count", "sum", "min", "max", "last", "buckets", "overflow"]
    );
    let steps = instruments
        .iter()
        .find(|i| i.get("name").and_then(serde::Value::as_str) == Some("anneal.steps"))
        .expect("anneal.steps instrument present");
    let serde::Value::Seq(buckets) = steps.get("buckets").unwrap() else {
        panic!("buckets serializes as an array");
    };
    assert_eq!(map_keys(&buckets[0]), ["le", "count"]);
}
