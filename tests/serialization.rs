//! Serde round-trips of every persistable artefact: a trained model, a
//! decomposed model (placement + wormholes + stats), datasets, and
//! hardware reports survive JSON serialisation bit-exactly.

use dsgl::core::ridge::fit_ridge;
use dsgl::core::{decompose, DecomposeConfig, DsGlModel, PatternKind, VariableLayout};
use dsgl::data::{covid, WindowConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn trained_model_roundtrips() {
    let dataset = covid::generate(3).truncate(12, 120);
    let (train, _, _) = dataset.split_windows(&WindowConfig::one_step(2), 0.8, 0.0);
    let layout = VariableLayout::new(2, 12, 1);
    let mut model = DsGlModel::new(layout);
    fit_ridge(&mut model, &train, 1.0).unwrap();

    let json = serde_json::to_string(&model).unwrap();
    let back: DsGlModel = serde_json::from_str(&json).unwrap();
    assert_eq!(model, back);
    // And it still predicts identically.
    let p1 = dsgl::core::inference::infer_fixed_point(&model, &train[0], 100).unwrap();
    let p2 = dsgl::core::inference::infer_fixed_point(&back, &train[0], 100).unwrap();
    assert_eq!(p1, p2);
}

#[test]
fn decomposed_model_roundtrips() {
    let dataset = covid::generate(4).truncate(12, 120);
    let (train, _, _) = dataset.split_windows(&WindowConfig::one_step(2), 0.8, 0.0);
    let layout = VariableLayout::new(2, 12, 1);
    let mut model = DsGlModel::new(layout);
    fit_ridge(&mut model, &train, 1.0).unwrap();
    let cfg = DecomposeConfig {
        density: 0.3,
        pattern: PatternKind::Mesh,
        wormhole_budget: 2,
        pe_capacity: layout.total().div_ceil(4) + 2,
        grid: (2, 2),
        finetune: None,
    };
    let mut rng = StdRng::seed_from_u64(1);
    let d = decompose(&model, &train, &cfg, &mut rng).unwrap();
    let json = serde_json::to_string(&d).unwrap();
    let back: dsgl::core::DecomposedModel = serde_json::from_str(&json).unwrap();
    assert_eq!(d, back);
}

#[test]
fn dataset_roundtrips() {
    let dataset = covid::generate(5).truncate(8, 60);
    let json = serde_json::to_string(&dataset).unwrap();
    let back: dsgl::data::Dataset = serde_json::from_str(&json).unwrap();
    assert_eq!(dataset, back);
}

#[test]
fn configs_roundtrip() {
    let anneal = dsgl::ising::AnnealConfig::default();
    let json = serde_json::to_string(&anneal).unwrap();
    let back: dsgl::ising::AnnealConfig = serde_json::from_str(&json).unwrap();
    assert_eq!(anneal, back);

    let hw = dsgl::hw::HwConfig::default();
    let json = serde_json::to_string(&hw).unwrap();
    let back: dsgl::hw::HwConfig = serde_json::from_str(&json).unwrap();
    assert_eq!(hw, back);
}

/// Keys of a vendored [`serde::Value`] map, in serialized order.
fn map_keys(value: &serde::Value) -> Vec<&str> {
    value
        .as_map()
        .expect("expected a JSON object")
        .iter()
        .map(|(k, _)| k.as_str())
        .collect()
}

#[test]
fn trace_roundtrips_with_capacity_bound() {
    use serde::Deserialize as _;

    let mut trace = dsgl::ising::Trace::with_capacity_bound(1.0, 3);
    for i in 0..5 {
        trace.record(i as f64, &[i as f64, -(i as f64)]);
    }
    // Ring-buffer semantics: only the newest 3 samples survive.
    assert_eq!(trace.len(), 3);
    assert_eq!(trace.times(), &[2.0, 3.0, 4.0]);

    let json = serde_json::to_string(&trace).unwrap();
    let back: dsgl::ising::Trace = serde_json::from_str(&json).unwrap();
    assert_eq!(trace, back);
    assert_eq!(back.capacity_bound(), Some(3));

    // A trace serialized before the bound existed (no `capacity_bound`
    // key) must still deserialize, as unbounded.
    let unbounded = serde::Serialize::to_value(&dsgl::ising::Trace::new(0.5));
    let serde::Value::Map(mut entries) = unbounded else {
        panic!("trace serializes as an object");
    };
    entries.retain(|(k, _)| k != "capacity_bound");
    let legacy = dsgl::ising::Trace::from_value(&serde::Value::Map(entries)).unwrap();
    assert_eq!(legacy.capacity_bound(), None);
}

#[test]
fn health_report_roundtrips() {
    use dsgl::core::guard::{Attempt, FailureCause, Mitigation};
    use serde::Deserialize as _;
    use serde::Serialize as _;

    let health = dsgl::core::HealthReport {
        attempts: vec![Attempt {
            cause: FailureCause::NonFiniteState,
            mitigation: Some(Mitigation::HalveDt),
            dt_ns: 0.25,
            budget_ns: 100.0,
        }],
        retries: 1,
        degraded: false,
        sanitized_nodes: 2,
        fault_clamped: 0,
        anneal_steps: 321,
        anneal_sim_time_ns: 80.25,
        cancelled: false,
        trace_id: 42,
    };
    let json = serde_json::to_string(&health).unwrap();
    let back: dsgl::core::HealthReport = serde_json::from_str(&json).unwrap();
    assert_eq!(health, back);

    // Field-name stability: downstream consumers key on these names.
    assert_eq!(
        map_keys(&health.to_value()),
        [
            "attempts",
            "retries",
            "degraded",
            "sanitized_nodes",
            "fault_clamped",
            "anneal_steps",
            "anneal_sim_time_ns",
            "cancelled",
            "trace_id"
        ]
    );

    // Reports serialized before the telemetry/cancellation/tracing
    // fields existed must still deserialize (the new fields default to
    // zero/false).
    let serde::Value::Map(mut entries) = health.to_value() else {
        panic!("health report serializes as an object");
    };
    entries.retain(|(k, _)| {
        k != "anneal_steps" && k != "anneal_sim_time_ns" && k != "cancelled" && k != "trace_id"
    });
    let legacy =
        dsgl::core::HealthReport::from_value(&serde::Value::Map(entries)).unwrap();
    assert_eq!(legacy.anneal_steps, 0);
    assert_eq!(legacy.anneal_sim_time_ns, 0.0);
    assert!(!legacy.cancelled);
    assert_eq!(legacy.trace_id, 0);
    assert_eq!(legacy.retries, health.retries);
}

#[test]
fn serve_instruments_and_stats_schema_is_frozen() {
    use serde::Serialize as _;

    // The serve.* instrument names are a frozen interface, like every
    // family in the snapshot schema: dashboards key on them.
    assert_eq!(dsgl::serve::instruments::REQUESTS, "serve.requests");
    assert_eq!(dsgl::serve::instruments::REJECTED, "serve.rejected");
    assert_eq!(dsgl::serve::instruments::BATCHES, "serve.batches");
    assert_eq!(dsgl::serve::instruments::QUEUE_DEPTH, "serve.queue_depth");
    assert_eq!(
        dsgl::serve::instruments::COALESCE_WIDTH,
        "serve.coalesce_width"
    );
    assert_eq!(
        dsgl::serve::instruments::COALESCED_HITS,
        "serve.coalesced_hits"
    );
    assert_eq!(dsgl::serve::instruments::LATENCY_NS, "serve.latency_ns");
    assert_eq!(dsgl::serve::instruments::DEGRADATIONS, "serve.degradations");
    assert_eq!(
        dsgl::serve::instruments::SLO_FALLBACKS,
        "serve.slo_fallbacks"
    );
    assert_eq!(dsgl::serve::instruments::WORKERS, "serve.workers");
    assert_eq!(
        dsgl::serve::instruments::WORKER_PANICS,
        "serve.worker_panics"
    );
    assert_eq!(
        dsgl::serve::instruments::WORKER_RESPAWNS,
        "serve.worker_respawns"
    );
    assert_eq!(dsgl::serve::instruments::REQUEUES, "serve.requeues");
    assert_eq!(
        dsgl::serve::instruments::CRASH_FAILURES,
        "serve.crash_failures"
    );
    assert_eq!(
        dsgl::serve::instruments::WATCHDOG_CANCELS,
        "serve.watchdog_cancels"
    );
    assert_eq!(
        dsgl::serve::instruments::WATCHDOG_FALLBACKS,
        "serve.watchdog_fallbacks"
    );
    assert_eq!(
        dsgl::serve::instruments::BROWNOUT_TIER,
        "serve.brownout_tier"
    );
    assert_eq!(
        dsgl::serve::instruments::BROWNOUT_TRANSITIONS,
        "serve.brownout_transitions"
    );
    assert_eq!(
        dsgl::serve::instruments::BROWNOUT_ADMITTED,
        "serve.brownout_admitted"
    );
    assert_eq!(
        dsgl::serve::instruments::BROWNOUT_REJECTED,
        "serve.brownout_rejected"
    );

    // A served run exports serve.* through the ordinary schema-v1
    // snapshot — same top-level shape, instruments sorted by name.
    let sink = dsgl::core::TelemetrySink::enabled();
    sink.counter_add(dsgl::serve::instruments::REQUESTS, 6);
    sink.counter_add(dsgl::serve::instruments::BATCHES, 2);
    sink.gauge_set(dsgl::serve::instruments::WORKERS, 2.0);
    sink.record(dsgl::serve::instruments::COALESCE_WIDTH, 3.0);
    sink.record(dsgl::serve::instruments::LATENCY_NS, 1500.0);
    let snapshot = sink.snapshot();
    assert!(snapshot.families().contains(&"serve".to_owned()));
    let json = serde_json::to_string(&snapshot).unwrap();
    let back: dsgl::core::MetricsSnapshot = serde_json::from_str(&json).unwrap();
    assert_eq!(snapshot, back);
    assert_eq!(map_keys(&snapshot.to_value()), ["schema_version", "instruments"]);

    // ServiceStats: the digested health endpoint, field names frozen.
    let stats = dsgl::serve::ServiceStats::from_snapshot(&snapshot);
    assert_eq!(stats.requests, 6);
    assert_eq!(stats.batches, 2);
    assert_eq!(stats.workers, 2);
    assert_eq!(stats.mean_coalesce_width, 3.0);
    assert!(stats.p50_latency_ns > 0.0);
    assert_eq!(
        map_keys(&stats.to_value()),
        [
            "requests",
            "rejected",
            "batches",
            "coalesced_hits",
            "degradations",
            "slo_fallbacks",
            "mean_coalesce_width",
            "p50_latency_ns",
            "p99_latency_ns",
            "workers"
        ]
    );
    let json = serde_json::to_string(&stats).unwrap();
    let back: dsgl::serve::ServiceStats = serde_json::from_str(&json).unwrap();
    assert_eq!(stats, back);
}

#[test]
fn warm_start_policy_and_mg_instruments_schema_is_frozen() {
    use dsgl::core::inference::WarmStart;

    // The mg.* instrument names are a frozen interface, like serve.*:
    // dashboards and the scaling bench key on them.
    assert_eq!(dsgl::ising::multigrid::instruments::LEVELS, "mg.levels");
    assert_eq!(
        dsgl::ising::multigrid::instruments::COARSE_STEPS,
        "mg.coarse_steps"
    );
    assert_eq!(
        dsgl::ising::multigrid::instruments::PROLONGATIONS,
        "mg.prolongations"
    );
    assert_eq!(
        dsgl::ising::multigrid::instruments::FINE_STEPS_SAVED,
        "mg.fine_steps_saved"
    );

    // Every warm-start policy round-trips through JSON.
    for warm in [
        WarmStart::Cold,
        WarmStart::Chained { chunk: 4 },
        WarmStart::Multigrid {
            levels: 2,
            coarse_tol: 1e-3,
        },
    ] {
        let json = serde_json::to_string(&warm).unwrap();
        let back: WarmStart = serde_json::from_str(&json).unwrap();
        assert_eq!(warm, back);
    }
    // Additivity: the variants that predate `Multigrid` keep their
    // encodings, so configs serialized before it existed still load.
    assert_eq!(serde_json::to_string(&WarmStart::Cold).unwrap(), "\"Cold\"");
    let legacy: WarmStart = serde_json::from_str(r#"{"Chained":{"chunk":6}}"#).unwrap();
    assert_eq!(legacy, WarmStart::Chained { chunk: 6 });
    // And the multigrid variant's field names are pinned.
    let mg: WarmStart =
        serde_json::from_str(r#"{"Multigrid":{"levels":3,"coarse_tol":0.001}}"#).unwrap();
    assert_eq!(
        mg,
        WarmStart::Multigrid {
            levels: 3,
            coarse_tol: 1e-3
        }
    );

    // An mg-instrumented run exports through the ordinary schema-v1
    // snapshot, grouped under its own family.
    let sink = dsgl::core::TelemetrySink::enabled();
    sink.record(dsgl::ising::multigrid::instruments::LEVELS, 2.0);
    sink.counter_add(dsgl::ising::multigrid::instruments::COARSE_STEPS, 120);
    sink.counter_add(dsgl::ising::multigrid::instruments::PROLONGATIONS, 1);
    let snapshot = sink.snapshot();
    assert!(snapshot.families().contains(&"mg".to_owned()));
    let json = serde_json::to_string(&snapshot).unwrap();
    let back: dsgl::core::MetricsSnapshot = serde_json::from_str(&json).unwrap();
    assert_eq!(snapshot, back);
}

#[test]
fn span_records_and_flight_dumps_schema_is_frozen() {
    use dsgl::core::tracing::{FlightDump, FlightEvent, SpanArg, SpanRecord, TRACE_SCHEMA_VERSION};
    use serde::Serialize as _;

    assert_eq!(TRACE_SCHEMA_VERSION, 1);

    let span = SpanRecord {
        trace_id: 7,
        span_id: 9,
        parent_id: 7,
        name: "anneal.strict".to_owned(),
        start_ns: 1_500,
        duration_ns: 250,
        args: vec![SpanArg {
            key: "steps".to_owned(),
            value: 400.0,
        }],
    };
    let json = serde_json::to_string(&span).unwrap();
    let back: SpanRecord = serde_json::from_str(&json).unwrap();
    assert_eq!(span, back);
    // Field-name stability: the flight-recorder dump and any span sink
    // (Chrome trace args aside) key on these names.
    assert_eq!(
        map_keys(&span.to_value()),
        ["trace_id", "span_id", "parent_id", "name", "start_ns", "duration_ns", "args"]
    );
    let value = span.to_value();
    let serde::Value::Seq(args) = value.get("args").unwrap() else {
        panic!("span args serialize as an array");
    };
    assert_eq!(map_keys(&args[0]), ["key", "value"]);

    let dump = FlightDump {
        schema_version: TRACE_SCHEMA_VERSION,
        capacity: 4,
        dropped: 1,
        events: vec![FlightEvent {
            seq: 9,
            at_ns: 77,
            kind: "worker.panic".to_owned(),
            detail: "worker 0: 2 orphaned request(s)".to_owned(),
            trace_id: 3,
        }],
    };
    let json = serde_json::to_string(&dump).unwrap();
    let back: FlightDump = serde_json::from_str(&json).unwrap();
    assert_eq!(dump, back);
    assert_eq!(
        map_keys(&dump.to_value()),
        ["schema_version", "capacity", "dropped", "events"]
    );
    let value = dump.to_value();
    let serde::Value::Seq(events) = value.get("events").unwrap() else {
        panic!("flight events serialize as an array");
    };
    assert_eq!(map_keys(&events[0]), ["seq", "at_ns", "kind", "detail", "trace_id"]);

    // The flight-event kind strings are a frozen interface too.
    assert_eq!(dsgl::serve::flight_events::WORKER_PANIC, "worker.panic");
    assert_eq!(dsgl::serve::flight_events::CRASH_FAILURE, "crash.failure");
    assert_eq!(dsgl::serve::flight_events::WATCHDOG_CANCEL, "watchdog.cancel");
    assert_eq!(
        dsgl::serve::flight_events::WATCHDOG_FALLBACK,
        "watchdog.fallback"
    );
    assert_eq!(
        dsgl::serve::flight_events::BROWNOUT_TRANSITION,
        "brownout.transition"
    );
    assert_eq!(dsgl::serve::flight_events::SLO_FALLBACK, "slo.fallback");
}

#[test]
fn chrome_trace_export_is_valid_json_in_the_trace_event_shape() {
    use dsgl::core::tracing::{chrome_trace_json, SpanArg, SpanRecord};

    let spans = vec![
        SpanRecord {
            trace_id: 1,
            span_id: 1,
            parent_id: 0,
            name: "serve.request".to_owned(),
            start_ns: 2_000,
            duration_ns: 9_500,
            args: vec![SpanArg {
                key: "batch_width".to_owned(),
                value: 2.0,
            }],
        },
        SpanRecord {
            trace_id: 1,
            span_id: 3,
            parent_id: 2,
            name: "anneal.\"strict\"\n".to_owned(), // exercises escaping
            start_ns: 2_500,
            duration_ns: 4_000,
            args: vec![],
        },
    ];
    let json = chrome_trace_json(&spans);
    // JSON numbers lose their int/float distinction in text; compare
    // numerically regardless of how the parser classified them.
    fn num(v: &serde::Value) -> f64 {
        match v {
            serde::Value::Int(i) => *i as f64,
            serde::Value::UInt(u) => *u as f64,
            serde::Value::Float(f) => *f,
            other => panic!("expected a number, found {other:?}"),
        }
    }
    // A real JSON parser accepts the hand-written export.
    let value: serde::Value = serde_json::from_str(&json).unwrap();
    assert_eq!(
        value.get("displayTimeUnit").and_then(serde::Value::as_str),
        Some("ms")
    );
    let serde::Value::Seq(events) = value.get("traceEvents").unwrap() else {
        panic!("traceEvents is an array");
    };
    assert_eq!(events.len(), spans.len());
    for (event, span) in events.iter().zip(&spans) {
        assert_eq!(event.get("name").and_then(serde::Value::as_str), Some(span.name.as_str()));
        assert_eq!(event.get("cat").and_then(serde::Value::as_str), Some("dsgl"));
        assert_eq!(event.get("ph").and_then(serde::Value::as_str), Some("X"));
        assert_eq!(num(event.get("pid").unwrap()), 1.0);
        assert_eq!(num(event.get("tid").unwrap()), span.trace_id as f64);
        // ts/dur are microseconds.
        assert_eq!(num(event.get("ts").unwrap()), span.start_ns as f64 / 1000.0);
        assert_eq!(num(event.get("dur").unwrap()), span.duration_ns as f64 / 1000.0);
        let args = event.get("args").unwrap();
        assert_eq!(num(args.get("span_id").unwrap()), span.span_id as f64);
        assert_eq!(num(args.get("parent_id").unwrap()), span.parent_id as f64);
        for arg in &span.args {
            assert_eq!(num(args.get(arg.key.as_str()).unwrap()), arg.value);
        }
    }
    // Empty input still yields a valid document.
    let empty: serde::Value = serde_json::from_str(&chrome_trace_json(&[])).unwrap();
    assert_eq!(empty.get("traceEvents"), Some(&serde::Value::Seq(vec![])));
}

#[test]
fn prometheus_exposition_matches_the_golden_file() {
    use dsgl::core::tracing::prometheus_text;

    // A deterministic snapshot covering all three instrument kinds;
    // snapshots sort by name, so the exposition is reproducible.
    let sink = dsgl::core::TelemetrySink::enabled();
    sink.counter_add("anneal.runs", 3);
    sink.counter_add("serve.requests", 6);
    sink.gauge_set("serve.queue_depth", 4.0);
    sink.record("serve.latency_ns", 1500.0);
    sink.record("serve.latency_ns", 250_000.0);
    let text = prometheus_text(&sink.snapshot());

    let golden = include_str!("golden/prometheus_exposition.txt");
    for (i, (got, want)) in text.lines().zip(golden.lines()).enumerate() {
        assert_eq!(got, want, "exposition line {} diverged from the golden file", i + 1);
    }
    assert_eq!(
        text.lines().count(),
        golden.lines().count(),
        "exposition line count diverged from the golden file"
    );
}

#[test]
fn metrics_snapshot_roundtrips() {
    use serde::Serialize as _;

    let sink = dsgl::core::TelemetrySink::enabled();
    sink.counter_add("anneal.runs", 3);
    sink.gauge_set("hw.pes", 16.0);
    sink.record("anneal.steps", 120.0);
    sink.record("anneal.steps", 480.0);

    let snapshot = sink.snapshot();
    assert_eq!(snapshot.schema_version, dsgl::ising::telemetry::SCHEMA_VERSION);
    let json = serde_json::to_string(&snapshot).unwrap();
    let back: dsgl::core::MetricsSnapshot = serde_json::from_str(&json).unwrap();
    assert_eq!(snapshot, back);
    assert_eq!(back.counter("anneal.runs"), 3);
    assert_eq!(back.families(), ["anneal", "hw"]);

    // Field-name stability of the version-1 snapshot schema: the
    // top-level object and every instrument expose exactly these keys.
    let value = snapshot.to_value();
    assert_eq!(map_keys(&value), ["schema_version", "instruments"]);
    let serde::Value::Seq(instruments) = value.get("instruments").unwrap() else {
        panic!("instruments serializes as an array");
    };
    assert_eq!(
        map_keys(&instruments[0]),
        ["name", "kind", "count", "sum", "min", "max", "last", "buckets", "overflow"]
    );
    let steps = instruments
        .iter()
        .find(|i| i.get("name").and_then(serde::Value::as_str) == Some("anneal.steps"))
        .expect("anneal.steps instrument present");
    let serde::Value::Seq(buckets) = steps.get("buckets").unwrap() else {
        panic!("buckets serializes as an array");
    };
    assert_eq!(map_keys(&buckets[0]), ["le", "count"]);
}
