//! End-to-end integration tests spanning the whole workspace: data
//! generation → training → decomposition → mapped co-annealing.

use dsgl::core::inference::{evaluate, infer_fixed_point};
use dsgl::core::ridge::{fit_ridge_validated, refit_ridge_masked};
use dsgl::core::{decompose, DecomposeConfig, DsGlModel, PatternKind, VariableLayout};
use dsgl::data::{covid, WindowConfig};
use dsgl::hw::coanneal::{evaluate_mapped, infer_mapped};
use dsgl::hw::HwConfig;
use dsgl::ising::AnnealConfig;
use rand::rngs::StdRng;
use rand::SeedableRng;

const LAMBDAS: [f64; 4] = [0.1, 1.0, 10.0, 100.0];

struct Fixture {
    dense: DsGlModel,
    train: Vec<dsgl::data::Sample>,
    test: Vec<dsgl::data::Sample>,
    graph: dsgl::graph::CsrGraph,
}

fn fixture(seed: u64) -> Fixture {
    let dataset = covid::generate(seed).truncate(30, 250);
    let wc = WindowConfig::one_step(3);
    let (train, val, test) = dataset.split_windows(&wc, 0.6, 0.15);
    let layout = VariableLayout::new(3, dataset.node_count(), 1);
    let mut dense = DsGlModel::new(layout);
    dense.h_mut().iter_mut().for_each(|h| *h = -2.0);
    dense.init_diffusion_prior(&dataset.graph, 0.72, 0.22);
    fit_ridge_validated(&mut dense, &train, &val, &LAMBDAS).expect("ridge fit");
    Fixture {
        dense,
        train,
        test,
        graph: dataset.graph,
    }
}

/// Beats the persistence forecast and approaches the dataset's noise
/// floor — the core claim that the dynamical system *learns*.
#[test]
fn dense_annealing_beats_persistence() {
    let f = fixture(42);
    let n = f.graph.node_count();
    let mut rng = StdRng::seed_from_u64(0);
    let report = evaluate(&f.dense, &f.test[..15], &AnnealConfig::default(), &mut rng).unwrap();
    assert!(report.converged_fraction > 0.9, "convergence {report:?}");

    let mut sse = 0.0;
    let mut count = 0;
    for s in &f.test[..15] {
        let last = &s.history[s.history.len() - n..];
        for (p, t) in last.iter().zip(&s.target) {
            sse += (p - t) * (p - t);
            count += 1;
        }
    }
    let persistence = (sse / count as f64).sqrt();
    assert!(
        report.rmse < persistence,
        "annealed {} should beat persistence {persistence}",
        report.rmse
    );
}

/// The analog machine's equilibrium equals the algebraic fixed point.
#[test]
fn annealing_agrees_with_fixed_point() {
    let f = fixture(43);
    let mut rng = StdRng::seed_from_u64(1);
    for s in &f.test[..3] {
        let (annealed, report) =
            dsgl::core::inference::infer_dense(&f.dense, s, &AnnealConfig::default(), &mut rng)
                .unwrap();
        assert!(report.converged);
        let fp = infer_fixed_point(&f.dense, s, 300).unwrap();
        let diff = dsgl::core::metrics::rmse(&annealed, &fp);
        assert!(diff < 1e-3, "annealed vs fixed point rmse {diff}");
    }
}

/// The full decomposition pipeline: the mapped machine must reproduce
/// the decomposed model's accuracy, and the decomposed model must stay
/// within a modest factor of the dense one.
#[test]
fn decomposed_and_mapped_accuracy() {
    let f = fixture(44);
    let total = f.dense.layout().total();
    let cfg = DecomposeConfig {
        density: 0.2,
        pattern: PatternKind::DMesh,
        wormhole_budget: 4,
        pe_capacity: total.div_ceil(4) + 3,
        grid: (2, 2),
        finetune: None,
    };
    let mut rng = StdRng::seed_from_u64(2);
    let mut d = decompose(&f.dense, &f.train, &cfg, &mut rng).unwrap();
    refit_ridge_masked(&mut d.model, &f.train, 10.0).unwrap();

    let mut rng = StdRng::seed_from_u64(3);
    let dense_eval = evaluate(&f.dense, &f.test[..10], &AnnealConfig::default(), &mut rng).unwrap();
    let hw = HwConfig {
        lanes: 4,
        ..HwConfig::default()
    };
    let mapped_eval = evaluate_mapped(&d, &f.test[..10], &hw, &mut rng).unwrap();
    assert!(
        mapped_eval.rmse < dense_eval.rmse * 3.0 + 1e-3,
        "mapped {} vs dense {}",
        mapped_eval.rmse,
        dense_eval.rmse
    );
    // Every surviving coupling honours the pattern or a wormhole.
    for (i, j, _) in d.model.coupling().nonzeros() {
        let (pa, pb) = (d.var_to_pe[i], d.var_to_pe[j]);
        assert!(
            dsgl::core::patterns::pe_allowed(d.pattern, d.grid, pa, pb)
                || d.wormholes.contains(&(pa.min(pb), pa.max(pb))),
            "coupling {i}-{j} crosses forbidden PEs"
        );
    }
}

/// Mapped inference is deterministic given a seed.
#[test]
fn mapped_inference_deterministic() {
    let f = fixture(45);
    let total = f.dense.layout().total();
    let cfg = DecomposeConfig {
        density: 0.15,
        pattern: PatternKind::Mesh,
        wormhole_budget: 2,
        pe_capacity: total.div_ceil(4) + 3,
        grid: (2, 2),
        finetune: None,
    };
    let mut rng = StdRng::seed_from_u64(5);
    let d = decompose(&f.dense, &f.train, &cfg, &mut rng).unwrap();
    let hw = HwConfig::default();
    let run = |seed| {
        let mut rng = StdRng::seed_from_u64(seed);
        infer_mapped(&d, &f.test[0], &hw, &mut rng).unwrap().0
    };
    assert_eq!(run(9), run(9));
}

/// Tighter lane budgets may slow inference but never change what the
/// machine converges to by more than the multiplexing tolerance.
#[test]
fn lane_starvation_degrades_gracefully() {
    let f = fixture(46);
    let total = f.dense.layout().total();
    let cfg = DecomposeConfig {
        density: 0.2,
        pattern: PatternKind::DMesh,
        wormhole_budget: 4,
        pe_capacity: total.div_ceil(4) + 3,
        grid: (2, 2),
        finetune: None,
    };
    let mut rng = StdRng::seed_from_u64(6);
    let mut d = decompose(&f.dense, &f.train, &cfg, &mut rng).unwrap();
    refit_ridge_masked(&mut d.model, &f.train, 10.0).unwrap();
    let eval = |lanes: usize| {
        let hw = HwConfig {
            lanes,
            ..HwConfig::default()
        }
        .with_budget(4_000.0);
        let mut rng = StdRng::seed_from_u64(7);
        evaluate_mapped(&d, &f.test[..8], &hw, &mut rng).unwrap().rmse
    };
    let plenty = eval(64);
    let starved = eval(2);
    assert!(
        starved < plenty * 3.0 + 5e-3,
        "starved {starved} vs plenty {plenty}"
    );
}

/// Multi-feature datasets (F > 1) run the whole chain: windowing,
/// ridge fit, decomposition, and mapped co-annealing.
#[test]
fn multi_feature_end_to_end() {
    let dataset = dsgl::data::housing::generate(50).truncate(10, 150);
    assert!(dataset.feature_count() > 1);
    let wc = WindowConfig::one_step(3);
    let (train, val, test) = dataset.split_windows(&wc, 0.6, 0.15);
    let layout = VariableLayout::new(3, dataset.node_count(), dataset.feature_count());
    let mut dense = DsGlModel::new(layout);
    dense.h_mut().iter_mut().for_each(|h| *h = -2.0);
    dense.init_diffusion_prior(&dataset.graph, 0.7, 0.2);
    fit_ridge_validated(&mut dense, &train, &val, &LAMBDAS).unwrap();

    let total = layout.total();
    let cfg = DecomposeConfig {
        density: 0.25,
        pattern: PatternKind::DMesh,
        wormhole_budget: 4,
        pe_capacity: total.div_ceil(4) + 4,
        grid: (2, 2),
        finetune: None,
    };
    let mut rng = StdRng::seed_from_u64(8);
    let mut d = decompose(&dense, &train, &cfg, &mut rng).unwrap();
    refit_ridge_masked(&mut d.model, &train, 10.0).unwrap();
    let hw = HwConfig::default();
    let eval = evaluate_mapped(&d, &test[..8], &hw, &mut rng).unwrap();
    assert!(eval.rmse.is_finite() && eval.rmse < 0.2, "rmse {}", eval.rmse);
    // The mapping is legal on the physical mesh.
    let report = dsgl::hw::validate_mapping(&d, 30);
    assert!(report.is_legal(), "{:?}", report.violations);
}
