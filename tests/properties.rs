//! Property-based integration tests over cross-crate invariants.

use dsgl::core::patterns::{build_mask, pe_allowed, PatternKind, WormholeSet};
use dsgl::graph::{Communities, Partitioner};
use dsgl::ising::hamiltonian::rv_energy;
use dsgl::ising::{AnnealConfig, Coupling, NoiseModel, RealValuedDspu};
use proptest::prelude::*;
use rand::SeedableRng;

/// Strategy: a random symmetric coupling matrix over `n` nodes with
/// bounded weights.
fn coupling_strategy(n: usize) -> impl Strategy<Value = Coupling> {
    proptest::collection::vec(-1.0f64..1.0, n * (n - 1) / 2).prop_map(move |weights| {
        let mut j = Coupling::zeros(n);
        let mut k = 0;
        for i in 0..n {
            for l in (i + 1)..n {
                j.set(i, l, weights[k]);
                k += 1;
            }
        }
        j
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The real-valued Hamiltonian never increases along noiseless
    /// trajectories, for arbitrary couplings and inputs (Lyapunov).
    #[test]
    fn energy_monotone_under_annealing(
        j in coupling_strategy(6),
        clamp_val in -0.9f64..0.9,
        seed in 0u64..1000,
    ) {
        let h = vec![-2.0; 6];
        let mut dspu = RealValuedDspu::new(j.clone(), h.clone()).unwrap();
        dspu.clamp(0, clamp_val).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        dspu.randomize_free(&mut rng);
        let mut last = rv_energy(&j, &h, dspu.state());
        for _ in 0..60 {
            dspu.step(1.0, &NoiseModel::none(), &mut rng);
            let e = rv_energy(&j, &h, dspu.state());
            prop_assert!(e <= last + 1e-9, "energy rose {last} -> {e}");
            last = e;
        }
    }

    /// Annealed states always stay within the rails.
    #[test]
    fn state_bounded_by_rails(
        j in coupling_strategy(5),
        seed in 0u64..1000,
    ) {
        let mut dspu = RealValuedDspu::new(j, vec![-0.6; 5]).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        dspu.randomize_free(&mut rng);
        let mut cfg = AnnealConfig::with_budget(300.0);
        cfg.noise = NoiseModel::relative(0.10);
        dspu.run(&cfg, &mut rng);
        for &v in dspu.state() {
            prop_assert!((-1.0..=1.0).contains(&v), "state {v} outside rails");
        }
    }

    /// Pruning to any density keeps at most that fraction of pairs and
    /// never increases any |J| entry.
    #[test]
    fn prune_respects_density(
        j in coupling_strategy(8),
        density in 0.0f64..1.0,
    ) {
        let mut pruned = j.clone();
        pruned.prune_to_density(density);
        let pairs_total = 8 * 7 / 2;
        prop_assert!(pruned.nnz() <= (density * pairs_total as f64).round() as usize + 1);
        for i in 0..8 {
            for l in (i + 1)..8 {
                let w = pruned.get(i, l);
                prop_assert!(w == 0.0 || w == j.get(i, l));
            }
        }
    }

    /// Placement always covers every node exactly once within capacity.
    #[test]
    fn placement_is_a_partition(
        labels in proptest::collection::vec(0usize..5, 12),
    ) {
        let comms = Communities::from_assignment(labels);
        let placement = Partitioner::new(4, (2, 2)).place(&comms).unwrap();
        let mut seen = [false; 12];
        for pe in 0..4 {
            prop_assert!(placement.nodes_on(pe).len() <= 4);
            for &node in placement.nodes_on(pe) {
                prop_assert!(!seen[node], "node {node} placed twice");
                seen[node] = true;
            }
        }
        prop_assert!(seen.iter().all(|&s| s), "some node unplaced");
    }

    /// Masks built for stronger patterns are supersets of weaker ones,
    /// for arbitrary placements.
    #[test]
    fn mask_inclusion_chain_mesh_dmesh(
        var_to_pe in proptest::collection::vec(0usize..9, 10),
    ) {
        let wormholes = WormholeSet::new();
        let grid = (3, 3);
        let chain = build_mask(10, &var_to_pe, grid, PatternKind::Chain, &wormholes);
        let mesh = build_mask(10, &var_to_pe, grid, PatternKind::Mesh, &wormholes);
        let dmesh = build_mask(10, &var_to_pe, grid, PatternKind::DMesh, &wormholes);
        for k in 0..100 {
            prop_assert!(!chain[k] || mesh[k], "chain ⊄ mesh at {k}");
            prop_assert!(!mesh[k] || dmesh[k], "mesh ⊄ dmesh at {k}");
        }
    }

    /// `pe_allowed` is symmetric in its PE arguments for every pattern.
    #[test]
    fn pattern_symmetry(a in 0usize..12, b in 0usize..12) {
        let grid = (3, 4);
        for kind in PatternKind::ALL {
            prop_assert_eq!(
                pe_allowed(kind, grid, a, b),
                pe_allowed(kind, grid, b, a)
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Windowing with any (history, horizon) covers the series exactly:
    /// window count, frame contents, and chronology all line up.
    #[test]
    fn windows_cover_series(
        t_total in 4usize..30,
        w in 1usize..4,
        h in 1usize..4,
    ) {
        use dsgl::data::{TimeSeries, WindowConfig};
        let n = 3;
        let mut series = TimeSeries::zeros(t_total, n, 1);
        for t in 0..t_total {
            for i in 0..n {
                series.set(t, i, 0, (t * n + i) as f64);
            }
        }
        let windows = dsgl::data::split::make_windows(
            &series,
            &WindowConfig { history: w, horizon: h },
        );
        let expected = t_total.saturating_sub(w + h - 1);
        prop_assert_eq!(windows.len(), expected);
        for (k, win) in windows.iter().enumerate() {
            prop_assert_eq!(win.history.len(), w * n);
            prop_assert_eq!(win.target.len(), h * n);
            // First history value of window k is frame k, node 0.
            prop_assert_eq!(win.history[0], (k * n) as f64);
            // First target value is frame k + w, node 0.
            prop_assert_eq!(win.target[0], ((k + w) * n) as f64);
        }
    }

    /// The King's-graph mask is symmetric, reflexive, and never couples
    /// variables more than one grid step apart.
    #[test]
    fn kings_mask_properties(cols in 1usize..6, n in 1usize..25) {
        let mask = dsgl::core::patterns::kings_graph_mask(n, cols);
        for i in 0..n {
            prop_assert!(mask[i * n + i], "reflexive at {i}");
            for j in 0..n {
                prop_assert_eq!(mask[i * n + j], mask[j * n + i]);
                if mask[i * n + j] {
                    let (ri, ci) = (i / cols, i % cols);
                    let (rj, cj) = (j / cols, j % cols);
                    prop_assert!(ri.abs_diff(rj).max(ci.abs_diff(cj)) <= 1);
                }
            }
        }
    }

    /// Horizon layouts keep index arithmetic consistent: every (frame,
    /// node, feature) triple maps to a unique index inside the right
    /// block.
    #[test]
    fn horizon_layout_indexing(
        w in 1usize..4,
        n in 1usize..5,
        f in 1usize..3,
        h in 1usize..4,
    ) {
        use dsgl::core::VariableLayout;
        let layout = VariableLayout::with_horizon(w, n, f, h);
        let mut seen = std::collections::HashSet::new();
        for t in 0..(w + h) {
            for node in 0..n {
                for feat in 0..f {
                    let v = layout.index(t, node, feat);
                    prop_assert!(v < layout.total());
                    prop_assert!(seen.insert(v), "index collision at {v}");
                    prop_assert_eq!(layout.is_target(v), t >= w);
                    prop_assert_eq!(layout.node_of(v), node);
                }
            }
        }
        prop_assert_eq!(seen.len(), layout.total());
    }
}
