//! The Ising-machine heritage: BRIM solving max-cut by natural
//! annealing (the workload the paper's Sec. I cites as the baseline
//! capability of CMOS Ising machines).
//!
//! ```sh
//! cargo run --release --example maxcut
//! ```

use dsgl::graph::generators;
use dsgl::ising::{AnnealConfig, Brim, Coupling, FlipSchedule};
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(11);
    let graph = generators::erdos_renyi(24, 0.25, &mut rng);
    println!(
        "random graph: {} nodes, {} edges",
        graph.node_count(),
        graph.edge_count()
    );

    // Program max-cut: J = -w for every edge, no external field.
    let mut j = Coupling::zeros(graph.node_count());
    for (u, v, w) in graph.edges() {
        j.set(u, v, -w);
    }
    let mut brim = Brim::new(j, vec![0.0; graph.node_count()])?;
    brim.randomize(&mut rng);

    let report = brim.anneal(
        &AnnealConfig::with_budget(5_000.0),
        &FlipSchedule::default(),
        &mut rng,
    );
    let cut = brim.cut_value();
    let spins = brim.spins();
    let side_a = spins.iter().filter(|&&s| s > 0).count();
    println!(
        "annealed {:.1} µs: cut value {} ({} vs {} nodes), Ising energy {:.1}",
        report.sim_time_ns / 1000.0,
        cut,
        side_a,
        spins.len() - side_a,
        report.energy
    );

    // Sanity reference: the best of 2000 random partitions.
    use rand::RngExt;
    let mut best_random = 0.0f64;
    for _ in 0..2000 {
        let assign: Vec<bool> = (0..graph.node_count()).map(|_| rng.random()).collect();
        let c: f64 = graph
            .edges()
            .iter()
            .filter(|&&(u, v, _)| assign[u] != assign[v])
            .map(|&(_, _, w)| w)
            .sum();
        best_random = best_random.max(c);
    }
    println!("best of 2000 random partitions: {best_random}");
    assert!(cut >= best_random * 0.95, "annealing should at least match random search");
    Ok(())
}
