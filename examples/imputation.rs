//! Imputation — the paper's core definition of graph learning:
//! "acquisition of unknown graph node features using observed node
//! features".
//!
//! Half the stock tickers report; the machine infers the rest. Two
//! models are compared: the per-node forecaster (stage 1) and the
//! Gaussian-programmed machine whose target-target couplings encode the
//! residual precision matrix (stage 2). With common market shocks in the
//! data, the joint relaxation of stage 2 lets observed tickers correct
//! their unobserved peers — something per-node prediction cannot do.
//!
//! ```sh
//! cargo run --release --example imputation
//! ```

use dsgl::core::inference::infer_dense_imputation;
use dsgl::core::ridge::{fit_gaussian_couplings, fit_ridge_validated};
use dsgl::core::{DsGlModel, VariableLayout};
use dsgl::data::{stock, WindowConfig};
use dsgl::ising::AnnealConfig;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dataset = stock::generate(7).truncate(40, 300);
    let n = dataset.node_count();
    let wc = WindowConfig::one_step(4);
    let (train, val, test) = dataset.split_windows(&wc, 0.6, 0.15);

    // Stage 1: per-node forecaster.
    let layout = VariableLayout::new(4, n, 1);
    let mut stage1 = DsGlModel::new(layout);
    stage1.h_mut().iter_mut().for_each(|h| *h = -2.0);
    stage1.init_diffusion_prior(&dataset.graph, 0.72, 0.22);
    fit_ridge_validated(&mut stage1, &train, &val, &[0.1, 1.0, 10.0, 100.0])?;

    // Stage 2: program the residual Gaussian graphical model.
    let mut stage2 = stage1.clone();
    fit_gaussian_couplings(&mut stage2, &train, 0.5, 2.0)?;

    // Impute the odd tickers from the even ones.
    let observed: Vec<usize> = (0..n).step_by(2).collect();
    let hidden: Vec<usize> = (0..n).filter(|i| i % 2 == 1).collect();

    let evaluate = |model: &DsGlModel| -> Result<f64, dsgl::core::CoreError> {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let mut sse = 0.0;
        let mut count = 0;
        for s in &test[..test.len().min(25)] {
            let (pred, _) =
                infer_dense_imputation(model, s, &observed, &AnnealConfig::default(), &mut rng)?;
            for &i in &hidden {
                sse += (pred[i] - s.target[i]) * (pred[i] - s.target[i]);
                count += 1;
            }
        }
        Ok((sse / count as f64).sqrt())
    };

    let r1 = evaluate(&stage1)?;
    let r2 = evaluate(&stage2)?;
    println!("imputing {} hidden tickers from {} observed ones:", hidden.len(), observed.len());
    println!("  per-node forecaster RMSE      {r1:.4}");
    println!("  joint Gaussian machine RMSE   {r2:.4}");
    println!(
        "  joint relaxation wins by {:.1}% — observed outputs correct their peers",
        (1.0 - r2 / r1) * 100.0
    );
    assert!(r2 < r1, "the joint machine should win under common shocks");
    Ok(())
}
