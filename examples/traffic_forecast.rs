//! Traffic-flow forecasting end to end on the dense Real-Valued DSPU.
//!
//! Generates the synthetic traffic dataset, fits a DS-GL dynamical
//! system by closed-form ridge regression (with a persistence +
//! graph-diffusion prior), and then answers one-step-ahead forecasting
//! queries purely by natural annealing: history voltages are clamped,
//! the machine relaxes, and the equilibrium of the target block is the
//! forecast.
//!
//! ```sh
//! cargo run --release --example traffic_forecast
//! ```

use dsgl::core::inference::evaluate;
use dsgl::core::ridge::fit_ridge_validated;
use dsgl::core::{DsGlModel, VariableLayout};
use dsgl::data::{traffic, WindowConfig};
use dsgl::ising::AnnealConfig;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A scaled-down sensor network so the example runs in seconds.
    let dataset = traffic::generate(7).truncate(48, 300);
    let n = dataset.node_count();
    println!(
        "traffic network: {} sensors, {} timesteps, {} road links",
        n,
        dataset.time_steps(),
        dataset.graph.edge_count()
    );

    let wc = WindowConfig::one_step(4);
    let (train, val, test) = dataset.split_windows(&wc, 0.6, 0.15);
    println!("windows: {} train / {} val / {} test", train.len(), val.len(), test.len());

    // Build and fit the dynamical system.
    let layout = VariableLayout::new(4, n, 1);
    let mut model = DsGlModel::new(layout);
    model.h_mut().iter_mut().for_each(|h| *h = -2.0);
    model.init_diffusion_prior(&dataset.graph, 0.72, 0.22);
    let lambda = fit_ridge_validated(&mut model, &train, &val, &[0.1, 1.0, 10.0, 100.0])?;
    println!(
        "fitted {} couplings (density {:.2}), ridge λ = {lambda}",
        model.nnz(),
        model.density()
    );

    // Forecast by natural annealing.
    let mut rng = rand::rngs::StdRng::seed_from_u64(1);
    let report = evaluate(&model, &test[..test.len().min(20)], &AnnealConfig::default(), &mut rng)?;
    println!(
        "annealed forecasts: RMSE {:.4}, mean latency {:.0} ns, {:.0}% converged",
        report.rmse,
        report.mean_latency_ns,
        report.converged_fraction * 100.0
    );

    // Compare against the naive persistence forecast.
    let mut sse = 0.0;
    let mut count = 0;
    for s in &test[..test.len().min(20)] {
        let last = &s.history[s.history.len() - n..];
        for (p, t) in last.iter().zip(&s.target) {
            sse += (p - t) * (p - t);
            count += 1;
        }
    }
    let persistence = (sse / count as f64).sqrt();
    println!("persistence baseline RMSE {persistence:.4}");
    println!(
        "DS-GL improves on persistence by {:.1}%",
        (1.0 - report.rmse / persistence) * 100.0
    );
    Ok(())
}
