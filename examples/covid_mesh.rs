//! Pandemic forecasting on the *Scalable* DSPU: decompose a trained
//! dense system onto a 2×2 PE mesh and infer by co-annealing.
//!
//! Walks the whole paper pipeline: train dense → prune to a density
//! budget → Louvain communities → PE placement → DMesh pattern mask with
//! wormholes → masked ridge re-fit → mapped co-annealing inference.
//!
//! ```sh
//! cargo run --release --example covid_mesh
//! ```

use dsgl::core::ridge::{fit_ridge_validated, refit_ridge_masked};
use dsgl::core::{decompose, DecomposeConfig, DsGlModel, PatternKind, TrainConfig, VariableLayout};
use dsgl::data::{covid, WindowConfig};
use dsgl::hw::coanneal::evaluate_mapped;
use dsgl::hw::HwConfig;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dataset = covid::generate(7).truncate(40, 300);
    let n = dataset.node_count();
    let wc = WindowConfig::one_step(4);
    let (train, val, test) = dataset.split_windows(&wc, 0.6, 0.15);

    // Dense system.
    let layout = VariableLayout::new(4, n, 1);
    let mut dense = DsGlModel::new(layout);
    dense.h_mut().iter_mut().for_each(|h| *h = -2.0);
    dense.init_diffusion_prior(&dataset.graph, 0.72, 0.22);
    fit_ridge_validated(&mut dense, &train, &val, &[0.1, 1.0, 10.0, 100.0])?;
    println!("dense system: {} variables, density {:.2}", layout.total(), dense.density());

    // Decompose onto a 2x2 mesh of PEs.
    let cfg = DecomposeConfig {
        density: 0.15,
        pattern: PatternKind::DMesh,
        wormhole_budget: 4,
        pe_capacity: layout.total().div_ceil(4) + 4,
        grid: (2, 2),
        finetune: None, // we re-fit in closed form below
    };
    let mut rng = rand::rngs::StdRng::seed_from_u64(3);
    let mut mapped = decompose(&dense, &train, &cfg, &mut rng)?;
    refit_ridge_masked(&mut mapped.model, &train, 10.0)?;
    println!(
        "decomposed: {} communities, {:.0}% of couplings cross PEs, {} wormholes",
        mapped.stats.communities,
        mapped.stats.cross_pe_fraction * 100.0,
        mapped.stats.wormholes_used
    );

    // Co-anneal on the mesh hardware.
    let hw = HwConfig {
        lanes: 6,
        ..HwConfig::default()
    };
    let report = evaluate_mapped(&mapped, &test[..test.len().min(20)], &hw, &mut rng)?;
    println!(
        "mapped inference: RMSE {:.2e}, mean latency {:.0} ns, {:.0}% converged",
        report.rmse,
        report.mean_latency_ns,
        report.converged_fraction * 100.0
    );
    let _ = TrainConfig::default(); // (SGD trainer also available; see dsgl_core::Trainer)
    Ok(())
}
