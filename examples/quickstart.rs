//! Quickstart: the six-spin validation experiment (paper Fig. 4).
//!
//! Programs the same mixed-sign coupling instance into a binary BRIM
//! machine and a Real-Valued DSPU, clamps three nodes as inputs, and
//! lets both anneal. BRIM's free nodes polarise to the ±1 rails; the
//! DSPU's circulative resistor rings let them stabilise at real values.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use dsgl::ising::{AnnealConfig, Brim, Coupling, FlipSchedule, RealValuedDspu};
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A six-spin instance with both ferro- and antiferromagnetic bonds.
    let mut j = Coupling::zeros(6);
    j.set(0, 1, 0.8);
    j.set(1, 2, -0.5);
    j.set(2, 3, 0.6);
    j.set(3, 4, -0.7);
    j.set(4, 5, 0.9);
    j.set(5, 0, 0.4);
    j.set(1, 4, 0.3);

    // v0, v2, v4 are observed inputs; v1, v3, v5 anneal freely.
    let inputs = [(0usize, 0.6), (2, -0.4), (4, 0.5)];

    let mut dspu = RealValuedDspu::new(j.clone(), vec![-1.5; 6])?;
    let mut brim = Brim::new(j, vec![0.0; 6])?;
    for &(node, v) in &inputs {
        dspu.clamp(node, v)?;
        brim.clamp(node, v)?;
    }

    let mut rng = rand::rngs::StdRng::seed_from_u64(7);
    dspu.randomize_free(&mut rng);
    brim.randomize(&mut rng);

    let cfg = AnnealConfig::with_budget(500.0);
    let report = dspu.run(&cfg, &mut rng);
    brim.anneal(&cfg, &FlipSchedule::none(), &mut rng);

    println!("annealed for {:.0} ns (converged: {})", report.sim_time_ns, report.converged);
    println!("node   DSPU      BRIM");
    for n in 0..6 {
        let tag = if inputs.iter().any(|&(i, _)| i == n) {
            "input"
        } else {
            "free"
        };
        println!(
            "v{n}   {:+.4}   {:+.4}   ({tag})",
            dspu.state()[n],
            brim.state()[n]
        );
    }
    println!();
    println!("BRIM's free nodes saturate at the rails (binary spins);");
    println!("the DSPU's settle at interior real values - the paper's Fig. 4.");
    Ok(())
}
