//! Robustness of natural annealing to analog noise (paper Sec. V.G).
//!
//! Trains a DS-GL system on the stock dataset and evaluates annealed
//! inference while Gaussian noise is injected into node voltages and
//! coupler currents at 0/5/10/15 % — the paper's Fig. 13 sweep, here on
//! the dense machine.
//!
//! ```sh
//! cargo run --release --example noise_robustness
//! ```

use dsgl::core::inference::evaluate;
use dsgl::core::ridge::fit_ridge_validated;
use dsgl::core::{DsGlModel, VariableLayout};
use dsgl::data::{stock, WindowConfig};
use dsgl::ising::{AnnealConfig, NoiseModel};
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dataset = stock::generate(7).truncate(40, 300);
    let n = dataset.node_count();
    let wc = WindowConfig::one_step(4);
    let (train, val, test) = dataset.split_windows(&wc, 0.6, 0.15);

    let layout = VariableLayout::new(4, n, 1);
    let mut model = DsGlModel::new(layout);
    model.h_mut().iter_mut().for_each(|h| *h = -2.0);
    model.init_diffusion_prior(&dataset.graph, 0.72, 0.22);
    fit_ridge_validated(&mut model, &train, &val, &[0.1, 1.0, 10.0, 100.0])?;

    println!("noise    RMSE      latency");
    let mut clean_rmse = None;
    for pct in [0.0, 0.05, 0.10, 0.15] {
        let cfg = AnnealConfig {
            noise: NoiseModel::relative(pct),
            ..AnnealConfig::default()
        };
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let report = evaluate(&model, &test[..test.len().min(20)], &cfg, &mut rng)?;
        println!(
            "{:>4.0}%   {:.4}   {:.0} ns",
            pct * 100.0,
            report.rmse,
            report.mean_latency_ns
        );
        if pct == 0.0 {
            clean_rmse = Some(report.rmse);
        } else if let Some(clean) = clean_rmse {
            assert!(
                report.rmse < clean * 2.0,
                "the analog system should tolerate moderate noise"
            );
        }
    }
    println!();
    println!("dynamical systems integrate noise away: even 15% analog noise");
    println!("degrades accuracy only mildly (paper Fig. 13).");
    Ok(())
}
