//! The paper's opening motivation: power-grid monitoring on a
//! dynamical-system processor.
//!
//! A 96-bus transmission grid reports load measurements; the machine
//! (a) forecasts the next interval for every bus and (b) fills in buses
//! whose telemetry dropped out, both by natural annealing — the grid is
//! itself a dynamical system, analysed here *by* a dynamical system.
//!
//! ```sh
//! cargo run --release --example powergrid
//! ```

use dsgl::core::{PatternKind, RetryPolicy, TelemetrySink};
use dsgl::facade::Forecaster;
use dsgl::data::{powergrid, WindowConfig};
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dataset = powergrid::generate(7);
    let n = dataset.node_count();
    println!(
        "transmission grid: {} buses, {} lines, {} intervals of load telemetry",
        n,
        dataset.graph.edge_count(),
        dataset.time_steps()
    );

    // Production idiom: an enabled telemetry sink (training and every
    // inference record into one registry) and an explicit guard policy
    // for the health-reporting paths. Neither changes forecast bits.
    let mut rng = rand::rngs::StdRng::seed_from_u64(1);
    let forecaster = Forecaster::builder()
        .history(4)
        .gaussian_outputs(true) // telemetry dropout = imputation
        .guard(RetryPolicy {
            max_retries: 3,
            backoff: 2.0,
        })
        .telemetry(TelemetrySink::enabled())
        .fit(&dataset, &mut rng)?;

    // (a) Forecast the next interval from the last four, with a health
    // report saying how the anneal went.
    let t0 = dataset.time_steps() - 5;
    let mut window = Vec::new();
    for t in t0..t0 + 4 {
        window.extend_from_slice(dataset.series.frame(t));
    }
    let truth = dataset.series.frame(t0 + 4);
    let (forecast, health) = forecaster.forecast_with_health(&window, &mut rng)?;
    let rmse = dsgl::core::metrics::rmse(&forecast, truth);
    println!(
        "next-interval load forecast RMSE: {rmse:.4} ({})",
        if health.healthy() {
            "healthy anneal"
        } else {
            "guard intervened"
        }
    );

    // (b) A third of the buses lose telemetry; infer them from the rest.
    let observed: Vec<(usize, f64)> = (0..n)
        .filter(|i| i % 3 != 0)
        .map(|i| (i, truth[i]))
        .collect();
    let imputed = forecaster.impute(&window, &observed, &mut rng)?;
    let hidden: Vec<usize> = (0..n).filter(|i| i % 3 == 0).collect();
    let p: Vec<f64> = hidden.iter().map(|&i| imputed[i]).collect();
    let t: Vec<f64> = hidden.iter().map(|&i| truth[i]).collect();
    let imput_rmse = dsgl::core::metrics::rmse(&p, &t);
    println!(
        "imputing {} dropped buses from {} live ones: RMSE {imput_rmse:.4}",
        hidden.len(),
        observed.len()
    );

    // (c) Deploy onto the 4x4 PE mesh and forecast on hardware.
    let (train, _, _) = dataset.split_windows(&WindowConfig::one_step(4), 0.8, 0.0);
    let mapped = forecaster.deploy((4, 4), PatternKind::DMesh, 0.15, &train, &mut rng)?;
    let (hw_forecast, latency_ns) = mapped.forecast(&window, &mut rng)?;
    let hw_rmse = dsgl::core::metrics::rmse(&hw_forecast, truth);
    println!(
        "mapped onto a 4x4 PE mesh: RMSE {hw_rmse:.4} in {:.2} µs of analog time",
        latency_ns / 1000.0
    );
    assert!(imput_rmse < rmse * 1.2, "imputation should use the live buses");

    // (d) Nightly backtest idiom: many windows at once. A batch of
    // strict noiseless windows rides the lockstep integrator — the
    // per-window J·σ mat-vecs fuse into one N×W GEMM per stage, with
    // bit-identical forecasts — and the counters prove it engaged.
    let backtest: Vec<Vec<f64>> = (t0 - 12..t0)
        .map(|s| {
            let mut w = Vec::new();
            for t in s..s + 4 {
                w.extend_from_slice(dataset.series.frame(t));
            }
            w
        })
        .collect();
    let batch = forecaster.forecast_batch(&backtest, 42)?;
    let snap = forecaster.telemetry_snapshot();
    println!(
        "backtested {} windows in one call: anneal.lockstep_batches={} anneal.lockstep_windows={}",
        batch.len(),
        snap.counter("anneal.lockstep_batches"),
        snap.counter("anneal.lockstep_windows"),
    );

    // (e) Everything above recorded into the attached sink.
    println!("\n{}", forecaster.telemetry_snapshot().summary_table());
    Ok(())
}
