//! Multigrid warm starts on a community-structured model.
//!
//! Builds a DS-GL model whose target variables form planted communities
//! (strong intra-block couplings, weak bridges between blocks), then
//! anneals a batch of forecast windows under two [`WarmStart`] policies:
//!
//! * **chained** — each window starts from the previous equilibrium;
//! * **multigrid** — each window starts from the prolonged equilibrium
//!   of a Louvain-coarsened replica (one coarse node per community),
//!   with the hierarchy built once per batch and shared across windows.
//!
//! Both policies predict the same equilibria (the system is diagonally
//! dominant, so the fixed point is unique); the difference is how many
//! fine integrator steps it takes to get there. The run finishes by
//! printing the `mg.*` telemetry family the multigrid path records.
//!
//! ```sh
//! cargo run --release --example scaling
//! ```

use dsgl::core::inference::{infer_batch_warm, infer_batch_warm_instrumented};
use dsgl::core::{DsGlModel, TelemetrySink, VariableLayout, WarmStart};
use dsgl::data::Sample;
use dsgl::ising::multigrid::instruments;
use dsgl::ising::AnnealConfig;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::time::Instant;

const BLOCKS: usize = 6;
const BLOCK: usize = 32;
const WINDOWS: usize = 12;

/// A one-step forecasting model over `BLOCKS * BLOCK` regions whose
/// target block carries planted community structure: dense positive
/// couplings inside each block, one weak bridge between consecutive
/// blocks, and a persistence coupling from each region's history node.
fn community_model(seed: u64) -> (DsGlModel, Vec<Sample>) {
    let n = BLOCKS * BLOCK;
    let mut model = DsGlModel::new(VariableLayout::new(1, n, 1));
    let mut rng = StdRng::seed_from_u64(seed);
    {
        let j = model.coupling_mut();
        for b in 0..BLOCKS {
            let (lo, hi) = (b * BLOCK, (b + 1) * BLOCK);
            for a in lo..hi {
                for c in (a + 1)..hi {
                    if rng.random::<f64>() < 0.3 {
                        j.set(n + a, n + c, 0.2 + 0.2 * rng.random::<f64>());
                    }
                }
            }
            if b + 1 < BLOCKS {
                j.set(n + hi - 1, n + hi, 0.05);
            }
        }
        for i in 0..n {
            j.set(i, n + i, 0.3);
        }
    }
    // Diagonal dominance: a unique fixed point every policy agrees on.
    let row_sums: Vec<f64> = (0..2 * n).map(|v| model.coupling().row_abs_sum(v)).collect();
    for (v, sum) in row_sums.into_iter().enumerate() {
        model.h_mut()[v] = -(0.1 + sum);
    }
    let samples = (0..WINDOWS)
        .map(|_| Sample {
            history: (0..n).map(|_| rng.random::<f64>() * 0.8 - 0.4).collect(),
            target: vec![0.0; n],
        })
        .collect();
    (model, samples)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (model, samples) = community_model(42);
    // The event-driven adaptive engine only charges for nodes still
    // moving — exactly what a good warm start empties out.
    let cfg = AnnealConfig::adaptive();
    println!(
        "{} regions ({} blocks of {}), {} forecast windows",
        BLOCKS * BLOCK,
        BLOCKS,
        BLOCK,
        WINDOWS
    );

    let t0 = Instant::now();
    let chained = infer_batch_warm(&model, &samples, &cfg, 7, WarmStart::Chained { chunk: 0 })?;
    let chained_wall = t0.elapsed();
    let chained_steps: usize = chained.iter().map(|(_, r)| r.steps).sum();
    println!(
        "chained  : {chained_steps:>6} fine steps, {:.1} ms",
        chained_wall.as_secs_f64() * 1e3
    );

    let sink = TelemetrySink::enabled();
    let t0 = Instant::now();
    let mg = infer_batch_warm_instrumented(
        &model,
        &samples,
        &cfg,
        7,
        WarmStart::Multigrid {
            levels: 2,
            coarse_tol: 1e-3,
        },
        &sink,
    )?;
    let mg_wall = t0.elapsed();
    let mg_steps: usize = mg.iter().map(|(_, r)| r.steps).sum();
    println!(
        "multigrid: {mg_steps:>6} fine steps, {:.1} ms",
        mg_wall.as_secs_f64() * 1e3
    );

    // Same equilibria, fewer steps.
    let max_diff = chained
        .iter()
        .zip(&mg)
        .flat_map(|((a, _), (b, _))| a.iter().zip(b).map(|(x, y)| (x - y).abs()))
        .fold(0.0f64, f64::max);
    println!("max prediction difference: {max_diff:.2e}");
    assert!(max_diff < 5e-3, "policies must agree on the fixed point");
    assert!(mg_steps < chained_steps, "multigrid must save fine steps");

    // The mg.* family records what the warm starts did.
    let snap = sink.snapshot();
    let levels = snap.get(instruments::LEVELS).expect("mg.levels recorded");
    println!("mg.levels          : {} warm starts, {} levels total", levels.count, levels.sum);
    println!("mg.coarse_steps    : {}", snap.counter(instruments::COARSE_STEPS));
    println!("mg.prolongations   : {}", snap.counter(instruments::PROLONGATIONS));
    println!("mg.fine_steps_saved: {}", snap.counter(instruments::FINE_STEPS_SAVED));
    Ok(())
}
