//! Serving DS-GL forecasts to concurrent clients.
//!
//! Trains one forecaster on the epidemic dataset, then stands up a
//! [`dsgl::serve::ForecastService`]: a bounded admission queue, workers
//! coalescing compatible requests into single batched anneals (with
//! duplicate `(window, seed)` requests collapsed to one anneal), and a
//! health endpoint in the shared telemetry snapshot schema. Four client
//! threads hammer the service; every response is then checked
//! bit-identical against the serial one-by-one reference — the
//! service's headline contract.
//!
//! ```sh
//! cargo run --release --example serving
//! ```

use dsgl::core::TelemetrySink;
use dsgl::facade::Forecaster;
use dsgl::serve::ServeConfig;
use rand::SeedableRng;
use std::time::Duration;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dataset = dsgl::data::covid::generate(3).truncate(20, 200);
    let mut rng = rand::rngs::StdRng::seed_from_u64(1);
    let forecaster = Forecaster::builder()
        .history(3)
        .telemetry(TelemetrySink::enabled())
        .fit(&dataset, &mut rng)?;
    println!(
        "trained on {} regions x {} days; serving with 2 workers, coalesce width 8",
        dataset.node_count(),
        dataset.time_steps()
    );

    // The request stream: sliding windows over the recent past, with a
    // hot head — dashboards asking for "the latest forecast" all submit
    // the same (window, seed) pair, which the service anneals once.
    let windows: Vec<Vec<f64>> = (150..170)
        .map(|t0| {
            let mut w = Vec::new();
            for t in t0..t0 + 3 {
                w.extend_from_slice(dataset.series.frame(t));
            }
            w
        })
        .collect();
    let request_of = |i: usize| {
        let hot = i.is_multiple_of(2); // half the traffic hits the newest window
        let k = if hot { windows.len() - 1 } else { i % windows.len() };
        (windows[k].clone(), if hot { 999 } else { 1000 + k as u64 })
    };

    let mut service = forecaster.serve(
        ServeConfig::default()
            .workers(2)
            .coalesce(8)
            .queue_capacity(64)
            .linger(Duration::from_micros(500)),
    )?;
    const CLIENTS: usize = 4;
    const PER_CLIENT: usize = 25;
    let mut responses: Vec<Option<dsgl::serve::ForecastResponse>> =
        vec![None; CLIENTS * PER_CLIENT];
    std::thread::scope(|scope| {
        let service = &service;
        let handles: Vec<_> = (0..CLIENTS)
            .map(|c| {
                scope.spawn(move || {
                    (0..PER_CLIENT)
                        .map(|j| {
                            let i = c * PER_CLIENT + j;
                            let (window, seed) = request_of(i);
                            (i, service.forecast(window, seed).expect("served"))
                        })
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        for handle in handles {
            for (i, response) in handle.join().unwrap() {
                responses[i] = Some(response);
            }
        }
    });
    service.shutdown();

    // Verify the headline contract: bits match the serial reference.
    for (i, served) in responses.iter().enumerate() {
        let (window, seed) = request_of(i);
        let serial = forecaster
            .forecast_batch_with_health(std::slice::from_ref(&window), seed)?
            .remove(0);
        let served = served.as_ref().unwrap();
        assert_eq!(served.prediction, serial.0, "request {i} diverged");
    }
    println!("all {} concurrent responses bit-identical to the serial reference", responses.len());

    let stats = service.stats();
    println!(
        "served {} requests in {} batches (mean width {:.2}, {} coalesced hits), \
         p50 latency {:.0} µs, p99 {:.0} µs",
        stats.requests,
        stats.batches,
        stats.mean_coalesce_width,
        stats.coalesced_hits,
        stats.p50_latency_ns / 1000.0,
        stats.p99_latency_ns / 1000.0,
    );
    assert!(stats.coalesced_hits > 0, "hot traffic must coalesce");

    // The service records into the forecaster's sink: admission and
    // batching under `serve.*`, and — whenever a coalesced batch of two
    // or more strict windows fuses its per-window mat-vecs into one
    // GEMM — the lockstep integrator under `anneal.lockstep_*`.
    use dsgl::serve::instruments;
    let snap = forecaster.telemetry_snapshot();
    println!(
        "sink counters: {}={} {}={} {}={} {}={}",
        instruments::REQUESTS,
        snap.counter(instruments::REQUESTS),
        instruments::BATCHES,
        snap.counter(instruments::BATCHES),
        instruments::COALESCED_HITS,
        snap.counter(instruments::COALESCED_HITS),
        instruments::REJECTED,
        snap.counter(instruments::REJECTED),
    );
    println!(
        "lockstep: anneal.lockstep_batches={} anneal.lockstep_windows={} anneal.lockstep_retries={}",
        snap.counter("anneal.lockstep_batches"),
        snap.counter("anneal.lockstep_windows"),
        snap.counter("anneal.lockstep_retries"),
    );
    Ok(())
}
