//! The shared experiment pipeline: dataset preparation, dense training,
//! decomposition, mapped evaluation, and baseline training.

use dsgl_baselines::{
    common::graph_to_adjacency, evaluate_gnn, train_gnn, DdgcrnModel, GnnTrainConfig, GwnModel,
    MtgnnModel, StGnn,
};
use dsgl_core::inference::EvalReport;
use dsgl_core::{
    decompose, DecomposeConfig, DecomposedModel, DsGlModel, PatternKind, TrainConfig, TrainReport,
    Trainer, VariableLayout,
};
use dsgl_data::{Dataset, Sample, WindowConfig};
use dsgl_hw::coanneal::evaluate_mapped;
use dsgl_hw::HwConfig;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Paper hardware constants: the full-size machine has `K = 500` nodes
/// per PE and `L = 30` lanes per portal. Scaled experiments keep the
/// same `L/K` ratio.
pub const PAPER_K: usize = 500;
/// Paper lane count.
pub const PAPER_L: usize = 30;

/// Experiment sizing. `full()` is what the shipped results use;
/// `quick()` is a minutes-scale smoke configuration (also used by the
/// Criterion benches and integration tests).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Scale {
    /// Node cap applied to single-feature datasets.
    pub nodes: usize,
    /// Node cap applied to multi-feature datasets (they have F·nodes
    /// variables per frame).
    pub multi_nodes: usize,
    /// Timestep cap.
    pub steps: usize,
    /// History window `W`.
    pub history: usize,
    /// Dense-training epochs.
    pub dense_epochs: usize,
    /// Fine-tuning epochs inside decomposition.
    pub finetune_epochs: usize,
    /// Baseline GNN training epochs.
    pub gnn_epochs: usize,
    /// Maximum test windows evaluated per point.
    pub test_cap: usize,
    /// Maximum training windows used for fine-tuning.
    pub finetune_cap: usize,
    /// PE grid of the scaled machine.
    pub pe_grid: (usize, usize),
}

impl Scale {
    /// The configuration the shipped EXPERIMENTS.md numbers use.
    pub fn full() -> Self {
        Scale {
            nodes: 80,
            multi_nodes: 32,
            steps: 360,
            history: 4,
            dense_epochs: 30,
            finetune_epochs: 15,
            gnn_epochs: 25,
            test_cap: 40,
            finetune_cap: 160,
            pe_grid: (4, 4),
        }
    }

    /// A minutes-scale smoke configuration.
    pub fn quick() -> Self {
        Scale {
            nodes: 24,
            multi_nodes: 10,
            steps: 140,
            history: 3,
            dense_epochs: 12,
            finetune_epochs: 5,
            gnn_epochs: 8,
            test_cap: 10,
            finetune_cap: 50,
            pe_grid: (2, 2),
        }
    }
}

/// A dataset windowed and split for one experiment.
#[derive(Debug, Clone)]
pub struct Prepared {
    /// The (truncated) dataset.
    pub dataset: Dataset,
    /// Variable layout of the DS-GL system for it.
    pub layout: VariableLayout,
    /// Training windows.
    pub train: Vec<Sample>,
    /// Held-out test windows (capped at `Scale::test_cap`).
    pub test: Vec<Sample>,
}

/// Loads and prepares a dataset by name. Handles both the seven
/// single-feature names (see [`dsgl_data::SINGLE_FEATURE_DATASETS`])
/// and the multi-feature `"ca_housing"` / `"climate"`.
///
/// # Panics
///
/// Panics for unknown dataset names.
pub fn prepare(name: &str, scale: &Scale, seed: u64) -> Prepared {
    prepare_with_horizon(name, scale, 1, seed)
}

/// Like [`prepare`] but windowing `horizon` future frames per sample
/// (multi-step forecasting).
///
/// # Panics
///
/// Panics for unknown dataset names or a zero horizon.
pub fn prepare_with_horizon(name: &str, scale: &Scale, horizon: usize, seed: u64) -> Prepared {
    let (dataset, cap) = match name {
        "ca_housing" => (dsgl_data::housing::generate(seed), scale.multi_nodes),
        "climate" => (dsgl_data::climate::generate(seed), scale.multi_nodes),
        other => (
            dsgl_data::by_name(other, seed)
                .unwrap_or_else(|| panic!("unknown dataset {other}")),
            scale.nodes,
        ),
    };
    let dataset = dataset.truncate(cap, scale.steps);
    let layout = VariableLayout::with_horizon(
        scale.history,
        dataset.node_count(),
        dataset.feature_count(),
        horizon,
    );
    let wc = WindowConfig {
        history: scale.history,
        horizon,
    };
    let (train, _val, mut test) = dataset.split_windows(&wc, 0.7, 0.1);
    test.truncate(scale.test_cap);
    Prepared {
        dataset,
        layout,
        train,
        test,
    }
}

/// Self-reaction magnitude used by the experiments: `h = -2` gives the
/// nodes a 50 ns time constant (RC / |h|), which lands dense inference
/// latency in the paper's 0.15–1.1 µs regime.
pub const H_MAGNITUDE: f64 = 2.0;

/// Ridge-λ candidates swept by validation (absolute, spanning the
/// useful decades for ~250-window Gram matrices).
pub const LAMBDA_GRID: [f64; 6] = [0.1, 1.0, 3.0, 10.0, 30.0, 100.0];

/// Splits training windows into a fitting head and a validation tail
/// (chronological).
pub fn head_val_split(train: &[Sample]) -> (&[Sample], &[Sample]) {
    let n = train.len();
    let n_val = (n / 5).max(1).min(n.saturating_sub(1));
    (&train[..n - n_val], &train[n - n_val..])
}

/// Trains the dense DS-GL model for a prepared dataset by closed-form
/// ridge regression, with `λ` chosen on a held-out validation tail and
/// the final fit done on the full training set.
///
/// The returned report carries the warm-start and final regression MSE
/// (the `Trainer` SGD path remains available in `dsgl-core` as the
/// paper-faithful backprop route; the harness uses the exact solver).
pub fn train_dense(p: &Prepared, scale: &Scale, seed: u64) -> (DsGlModel, TrainReport) {
    let _ = (scale, seed); // sizing is determined by the prepared data
    let mut model = DsGlModel::new(p.layout);
    model.h_mut().iter_mut().for_each(|h| *h = -H_MAGNITUDE);
    // Prior: persistence plus diffusion over the dataset's spatial graph
    // (the same graph the GNN baselines receive as input). The split
    // between self- and neighbour-weight is data-driven: the lag-1
    // autocorrelation of the training series estimates how persistent
    // the process actually is (0.72/0.22 would be badly biased for
    // fast-mixing data like weather).
    let rho = lag1_autocorrelation(&p.train, p.layout.frame_len()).clamp(0.0, 0.99);
    model.init_diffusion_prior(&p.dataset.graph, 0.78 * rho, 0.20 * rho);
    let before = Trainer::regression_rmse(&model, &p.train).expect("warm-start rmse");
    let (head, val) = head_val_split(&p.train);
    let lambda = dsgl_core::ridge::fit_ridge_validated(&mut model, head, val, &LAMBDA_GRID)
        .expect("ridge fit");
    // Refit on the full training set with the selected λ.
    dsgl_core::ridge::fit_ridge(&mut model, &p.train, lambda).expect("final ridge fit");

    let after = Trainer::regression_rmse(&model, &p.train).expect("final rmse");
    (
        model,
        TrainReport {
            epoch_losses: vec![before * before, after * after],
        },
    )
}

/// Trains a dense model for the *imputation* task (paper Sec. II.C's
/// core GL definition: acquire unknown node features from observed
/// ones): the stage-1 forecaster plus residual target–target couplings,
/// kept when they improve imputation RMSE (half the frame observed) on
/// the validation tail. Figs. 11–12 use this task — it is the regime
/// where inter-PE co-annealing genuinely transports information between
/// outputs, so synchronisation and annealing budget matter.
pub fn train_dense_imputation(p: &Prepared, scale: &Scale, seed: u64) -> DsGlModel {
    let (mut model, _) = train_dense(p, scale, seed);
    let (head, val) = head_val_split(&p.train);
    if head.is_empty() || val.is_empty() {
        return model;
    }
    let frame_len = p.layout.frame_len();
    let observed: Vec<usize> = (0..frame_len).step_by(2).collect();
    let base = imputation_fp_rmse(&model, val, &observed);
    let mut best: Option<(f64, DsGlModel)> = None;
    for shrinkage in [0.2, 0.5, 0.8] {
        let mut candidate = model.clone();
        dsgl_core::ridge::fit_gaussian_couplings(&mut candidate, head, shrinkage, H_MAGNITUDE)
            .expect("gaussian couplings");
        let v = imputation_fp_rmse(&candidate, val, &observed);
        if best.as_ref().is_none_or(|(bv, _)| v < *bv) {
            best = Some((v, candidate));
        }
    }
    if let Some((v, candidate)) = best {
        if v < base {
            model = candidate;
        }
    }
    model
}

/// Pooled RMSE of fixed-point *imputation* over the unobserved half of
/// the target frame.
pub fn imputation_fp_rmse(model: &DsGlModel, samples: &[Sample], observed: &[usize]) -> f64 {
    let frame_len = model.layout().frame_len();
    let observed_set: std::collections::HashSet<usize> = observed.iter().copied().collect();
    let mut sse = 0.0;
    let mut count = 0usize;
    for s in samples {
        let pred = dsgl_core::inference::infer_fixed_point_imputation(model, s, observed, 150)
            .expect("fixed-point imputation");
        for (i, (&p, &t)) in pred.iter().zip(&s.target).enumerate().take(frame_len) {
            if !observed_set.contains(&i) {
                sse += (p - t) * (p - t);
                count += 1;
            }
        }
    }
    (sse / count.max(1) as f64).sqrt()
}

/// Pooled RMSE of *joint* fixed-point inference over a sample set (the
/// right metric once target-target couplings exist: outputs are solved
/// simultaneously, not teacher-forced).
pub fn fixed_point_rmse(model: &DsGlModel, samples: &[Sample]) -> f64 {
    let mut sse = 0.0;
    let mut count = 0usize;
    for s in samples {
        let pred = dsgl_core::inference::infer_fixed_point(model, s, 150)
            .expect("fixed-point inference");
        for (p, t) in pred.iter().zip(&s.target) {
            sse += (p - t) * (p - t);
            count += 1;
        }
    }
    (sse / count.max(1) as f64).sqrt()
}

/// Lag-1 autocorrelation of the (centred) training series, estimated
/// from each window's last two history frames.
pub fn lag1_autocorrelation(train: &[Sample], frame_len: usize) -> f64 {
    let mut mean = 0.0;
    let mut count = 0usize;
    for s in train {
        for &v in &s.history[s.history.len() - 2 * frame_len..] {
            mean += v;
            count += 1;
        }
    }
    if count == 0 {
        return 0.9;
    }
    mean /= count as f64;
    let mut num = 0.0;
    let mut den = 0.0;
    for s in train {
        let tail = &s.history[s.history.len() - 2 * frame_len..];
        let (prev, cur) = tail.split_at(frame_len);
        for (p, c) in prev.iter().zip(cur) {
            num += (p - mean) * (c - mean);
            den += (p - mean) * (p - mean);
        }
    }
    if den <= 0.0 {
        0.9
    } else {
        num / den
    }
}

/// Per-PE capacity for a layout on the scaled grid (5 % slack so the
/// partitioner has room to redistribute).
pub fn pe_capacity(layout: &VariableLayout, grid: (usize, usize)) -> usize {
    let pes = grid.0 * grid.1;
    (layout.total().div_ceil(pes) * 21) / 20 + 1
}

/// Lanes per portal, scaled from the paper's `L/K = 30/500` ratio.
pub fn scaled_lanes(pe_capacity: usize) -> usize {
    ((pe_capacity * PAPER_L) / PAPER_K).max(2)
}

/// Decomposition config for a prepared dataset at one `(density,
/// pattern)` sweep point.
pub fn decompose_config(
    p: &Prepared,
    scale: &Scale,
    density: f64,
    pattern: PatternKind,
) -> DecomposeConfig {
    DecomposeConfig {
        density,
        pattern,
        wormhole_budget: 4,
        pe_capacity: pe_capacity(&p.layout, scale.pe_grid),
        grid: scale.pe_grid,
        finetune: Some(TrainConfig {
            epochs: scale.finetune_epochs,
            lr: 0.02,
            ..TrainConfig::default()
        }),
    }
}

/// Runs the decomposition pipeline on a trained dense model, with a
/// validated fine-tune: the pruned-and-masked model is fine-tuned under
/// its pinned sparsity pattern, and the tuned parameters are kept only
/// if they improve the regression RMSE on a held-out validation slice
/// (fine-tuning must restore accuracy, never destroy it).
pub fn decompose_model(
    dense: &DsGlModel,
    p: &Prepared,
    scale: &Scale,
    density: f64,
    pattern: PatternKind,
    seed: u64,
) -> DecomposedModel {
    let mut cfg = decompose_config(p, scale, density, pattern);
    let ft = cfg.finetune.take().expect("decompose_config sets finetune");
    let mut rng = StdRng::seed_from_u64(seed ^ 0xdec0);
    let mut raw = decompose(dense, &[], &cfg, &mut rng).expect("decomposition");
    validated_finetune(&mut raw, p, scale, &ft, seed);
    raw
}

/// Fine-tunes a decomposed model by closed-form masked ridge refit over
/// its pinned sparsity pattern (the optimal re-calibration of the
/// surviving couplings), with `λ` chosen on a held-out validation tail.
/// The refit is kept only if it improves the given validation metric.
fn validated_finetune_by(
    raw: &mut DecomposedModel,
    p: &Prepared,
    metric: &dyn Fn(&DsGlModel, &[Sample]) -> f64,
) {
    let (head, val) = head_val_split(&p.train);
    if head.is_empty() || val.is_empty() {
        return;
    }
    let raw_val = metric(&raw.model, val);
    let mut best: Option<(f64, DsGlModel)> = None;
    for &lambda in &LAMBDA_GRID {
        let mut tuned = raw.model.clone();
        dsgl_core::ridge::refit_ridge_masked(&mut tuned, head, lambda).expect("masked refit");
        let v = metric(&tuned, val);
        if best.as_ref().is_none_or(|(bv, _)| v < *bv) {
            best = Some((v, tuned));
        }
    }
    if let Some((v, tuned)) = best {
        if v < raw_val {
            raw.model = tuned;
        }
    }
}

fn validated_finetune(
    raw: &mut DecomposedModel,
    p: &Prepared,
    _scale: &Scale,
    _ft: &TrainConfig,
    _seed: u64,
) {
    validated_finetune_by(raw, p, &|m, val| {
        Trainer::regression_rmse(m, val).expect("val rmse")
    });
}

/// Decomposes a stage-2 (Gaussian-programmed) model for the imputation
/// task: the pruned/masked support is re-calibrated by masked
/// pseudo-likelihood refit — consistent for a Gaussian graphical model
/// whose `h` is precision-proportional — gated on imputation RMSE over
/// the validation tail.
pub fn decompose_model_imputation(
    dense: &DsGlModel,
    p: &Prepared,
    scale: &Scale,
    density: f64,
    pattern: PatternKind,
    seed: u64,
) -> DecomposedModel {
    let mut cfg = decompose_config(p, scale, density, pattern);
    cfg.finetune = None;
    let mut rng = StdRng::seed_from_u64(seed ^ 0xdec0);
    let mut raw = decompose(dense, &[], &cfg, &mut rng).expect("decomposition");
    let frame_len = p.layout.frame_len();
    let observed: Vec<usize> = (0..frame_len).step_by(2).collect();
    validated_finetune_by(&mut raw, p, &|m, val| imputation_fp_rmse(m, val, &observed));
    raw
}

/// Trims a decomposed model until every PE-pair link's boundary demand
/// fits the portal lanes: per link, whole node-groups (weakest by total
/// coupling magnitude) lose their cross-PE couplings until at most
/// `lanes` distinct nodes export on each side. The result needs no
/// temporal multiplexing.
pub fn trim_to_lanes(d: &mut DecomposedModel, lanes: usize) {
    use std::collections::{BTreeMap, HashMap};
    // Cross-PE couplings keyed by (pe_a, pe_b) link.
    type LinkCouplings = BTreeMap<(usize, usize), Vec<(usize, usize, f64)>>;
    let mut by_link: LinkCouplings = BTreeMap::new();
    for (i, j, w) in d.model.coupling().nonzeros() {
        let (pa, pb) = (d.var_to_pe[i], d.var_to_pe[j]);
        if pa != pb {
            by_link
                .entry((pa.min(pb), pa.max(pb)))
                .or_default()
                .push((i, j, w));
        }
    }
    for ((pa, _pb), couplings) in by_link {
        // Trim each side independently until its exporter count fits.
        for side in 0..2 {
            let export_node = |&(i, j, _): &(usize, usize, f64)| {
                let i_on_a = d.var_to_pe[i] == pa;
                match (side, i_on_a) {
                    (0, true) | (1, false) => i,
                    _ => j,
                }
            };
            let mut weight_by_node: HashMap<usize, f64> = HashMap::new();
            for c in &couplings {
                *weight_by_node.entry(export_node(c)).or_insert(0.0) += c.2.abs();
            }
            if weight_by_node.len() <= lanes {
                continue;
            }
            let mut ranked: Vec<(usize, f64)> = weight_by_node.into_iter().collect();
            ranked.sort_by(|a, b| {
                b.1.partial_cmp(&a.1).expect("finite weights").then(a.0.cmp(&b.0))
            });
            let dropped: std::collections::HashSet<usize> =
                ranked[lanes..].iter().map(|&(n, _)| n).collect();
            for c in &couplings {
                if dropped.contains(&export_node(c)) {
                    d.model.coupling_mut().set(c.0, c.1, 0.0);
                }
            }
        }
    }
}

/// Builds the DS-GL-Spatial variant (paper: temporal co-annealing
/// disabled, trading accuracy for the lowest latency): decompose, trim
/// every link's boundary demand into the portal capacity (mesh-adjacent
/// PE pairs share *two* CUs, so a link carries up to `2L` exporters per
/// side), and refit the survivors. The decomposition density is chosen
/// on the validation tail — concentrated low-density models survive
/// trimming better on some datasets, spread-out ones on others.
pub fn decompose_spatial(
    dense: &DsGlModel,
    p: &Prepared,
    scale: &Scale,
    start_density: f64,
    seed: u64,
) -> DecomposedModel {
    let lanes = 2 * scaled_lanes(pe_capacity(&p.layout, scale.pe_grid));
    let (_, val) = head_val_split(&p.train);
    let mut best: Option<(f64, DecomposedModel)> = None;
    for density in [start_density, start_density * 0.5, start_density * 0.25] {
        let mut cfg = decompose_config(p, scale, density, PatternKind::DMesh);
        let ft = cfg.finetune.take().expect("decompose_config sets finetune");
        let mut rng = StdRng::seed_from_u64(seed ^ 0xdec0);
        let mut d = decompose(dense, &[], &cfg, &mut rng).expect("decomposition");
        trim_to_lanes(&mut d, lanes);
        validated_finetune(&mut d, p, scale, &ft, seed);
        let v = Trainer::regression_rmse(&d.model, val).expect("val rmse");
        if best.as_ref().is_none_or(|(bv, _)| v < *bv) {
            best = Some((v, d));
        }
    }
    best.expect("at least one density evaluated").1
}

/// The hardware configuration for a scaled machine.
pub fn hw_config(p: &Prepared, scale: &Scale) -> HwConfig {
    HwConfig {
        lanes: scaled_lanes(pe_capacity(&p.layout, scale.pe_grid)),
        ..HwConfig::default()
    }
}

/// Evaluates a decomposed model on the prepared test set.
pub fn eval_mapped(
    d: &DecomposedModel,
    p: &Prepared,
    hw: &HwConfig,
    seed: u64,
) -> EvalReport {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xe7a1);
    evaluate_mapped(d, &p.test, hw, &mut rng).expect("mapped evaluation")
}

/// Which baseline to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BaselineKind {
    /// Graph WaveNet analogue.
    Gwn,
    /// MTGNN analogue.
    Mtgnn,
    /// DDGCRN analogue.
    Ddgcrn,
}

impl BaselineKind {
    /// All three baselines in the paper's order.
    pub const ALL: [BaselineKind; 3] =
        [BaselineKind::Gwn, BaselineKind::Mtgnn, BaselineKind::Ddgcrn];
}

/// Result of training and evaluating one baseline.
#[derive(Debug, Clone, PartialEq)]
pub struct BaselineResult {
    /// Model name.
    pub name: &'static str,
    /// Test RMSE.
    pub rmse: f64,
    /// Exact FLOPs of one inference.
    pub flops: u64,
    /// Trainable parameters.
    pub params: usize,
}

/// Trains a baseline on the prepared dataset and evaluates it.
pub fn run_baseline(
    kind: BaselineKind,
    p: &Prepared,
    scale: &Scale,
    seed: u64,
) -> BaselineResult {
    let n = p.dataset.node_count();
    let f = p.dataset.feature_count();
    let w = scale.history;
    let hidden = 16;
    let cfg = GnnTrainConfig {
        epochs: scale.gnn_epochs,
        ..GnnTrainConfig::for_dims(w, n, f)
    };
    let mut rng = StdRng::seed_from_u64(seed ^ 0x6111);
    let adj = graph_to_adjacency(&p.dataset.graph);
    match kind {
        BaselineKind::Gwn => {
            let mut m = GwnModel::new(&adj, w, f, hidden, &mut rng);
            train_gnn(&mut m, &p.train, &cfg, &mut rng);
            finish(&m, &p.test, &cfg)
        }
        BaselineKind::Mtgnn => {
            let mut m = MtgnnModel::new(n, w, f, hidden, &mut rng);
            train_gnn(&mut m, &p.train, &cfg, &mut rng);
            finish(&m, &p.test, &cfg)
        }
        BaselineKind::Ddgcrn => {
            let mut m = DdgcrnModel::new(&adj, w, f, hidden, &mut rng);
            train_gnn(&mut m, &p.train, &cfg, &mut rng);
            finish(&m, &p.test, &cfg)
        }
    }
}

fn finish<M: StGnn>(model: &M, test: &[Sample], cfg: &GnnTrainConfig) -> BaselineResult {
    BaselineResult {
        name: model.name(),
        rmse: evaluate_gnn(model, test, cfg),
        flops: model.inference_flops(),
        params: model.parameter_count(),
    }
}

/// FLOPs of one inference of a baseline instantiated at *paper scale*:
/// the node counts of the original (untruncated) datasets and the
/// hyper-parameters of the released GNN implementations (12-step
/// windows, hidden width 64). Accuracy experiments run at our scaled
/// size, but Table III's latency methodology — FLOPs over platform
/// peak throughput — only reproduces the paper's numbers at the
/// original model sizes; this function provides them analytically
/// (FLOPs depend only on architecture, not on training).
pub fn paper_scale_flops(kind: BaselineKind, app: &str) -> u64 {
    // Approximate node counts of the paper's real datasets.
    let (n, f) = match app {
        "covid" => (3_100, 1),   // US counties
        "air" => (3_300, 1),     // CNEMC reanalysis stations
        "traffic" => (2_750, 1), // Japan traffic sensors
        "stock" => (3_800, 1),   // NASDAQ tickers
        "ca_housing" => (1_200, 8),
        "climate" => (1_100, 12),
        other => panic!("unknown application {other}"),
    };
    let (w, hidden) = (12, 64);
    let mut rng = StdRng::seed_from_u64(0);
    let adj = dsgl_nn::Matrix::zeros(n, n);
    match kind {
        BaselineKind::Gwn => GwnModel::new(&adj, w, f, hidden, &mut rng).inference_flops(),
        BaselineKind::Mtgnn => MtgnnModel::new(n, w, f, hidden, &mut rng).inference_flops(),
        BaselineKind::Ddgcrn => DdgcrnModel::new(&adj, w, f, hidden, &mut rng).inference_flops(),
    }
}

/// FLOPs of an untrained baseline (FLOPs are architecture-only), used
/// by the platform table without paying for training.
pub fn baseline_flops(kind: BaselineKind, p: &Prepared, scale: &Scale) -> u64 {
    let n = p.dataset.node_count();
    let f = p.dataset.feature_count();
    let w = scale.history;
    let hidden = 16;
    let mut rng = StdRng::seed_from_u64(0);
    let adj = graph_to_adjacency(&p.dataset.graph);
    match kind {
        BaselineKind::Gwn => GwnModel::new(&adj, w, f, hidden, &mut rng).inference_flops(),
        BaselineKind::Mtgnn => MtgnnModel::new(n, w, f, hidden, &mut rng).inference_flops(),
        BaselineKind::Ddgcrn => DdgcrnModel::new(&adj, w, f, hidden, &mut rng).inference_flops(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prepare_shapes() {
        let scale = Scale::quick();
        let p = prepare("covid", &scale, 1);
        assert_eq!(p.dataset.node_count(), scale.nodes);
        assert_eq!(p.layout.history(), scale.history);
        assert!(!p.train.is_empty());
        assert!(p.test.len() <= scale.test_cap && !p.test.is_empty());
    }

    #[test]
    fn multi_feature_prepare() {
        let scale = Scale::quick();
        let p = prepare("ca_housing", &scale, 1);
        assert_eq!(p.dataset.node_count(), scale.multi_nodes);
        assert_eq!(p.dataset.feature_count(), dsgl_data::housing::FEATURES);
    }

    #[test]
    #[should_panic(expected = "unknown dataset")]
    fn unknown_dataset_panics() {
        prepare("nope", &Scale::quick(), 0);
    }

    #[test]
    fn capacity_and_lanes_scale() {
        let layout = VariableLayout::new(4, 80, 1); // 400 vars
        let k = pe_capacity(&layout, (4, 4));
        assert!(k * 16 >= 400);
        assert!(k < 40);
        assert_eq!(scaled_lanes(500), 30, "paper scale recovers L = 30");
        assert!(scaled_lanes(k) >= 2);
    }

    #[test]
    fn trim_to_lanes_bounds_boundary_demand() {
        let scale = Scale::quick();
        let p = prepare("no2", &scale, 3);
        let (dense, _) = train_dense(&p, &scale, 3);
        let mut d = decompose_model(&dense, &p, &scale, 0.3, PatternKind::DMesh, 3);
        trim_to_lanes(&mut d, 2);
        let report = dsgl_hw::validate::validate_mapping(&d, 2);
        assert!(report.is_legal());
        for link in &report.links {
            assert!(
                link.boundary.0 <= 2 && link.boundary.1 <= 2,
                "link {:?} demand {:?}",
                link.pes,
                link.boundary
            );
            assert_eq!(link.slices, 1, "trimmed links must not slice");
        }
    }

    #[test]
    fn spatial_variant_never_slices() {
        let scale = Scale::quick();
        let p = prepare("covid", &scale, 4);
        let (dense, _) = train_dense(&p, &scale, 4);
        let d = decompose_spatial(&dense, &p, &scale, 0.15, 4);
        let lanes = 2 * scaled_lanes(pe_capacity(&p.layout, scale.pe_grid));
        let machine = dsgl_hw::MappedMachine::new(&d, lanes).unwrap();
        assert_eq!(machine.max_slices(), 1);
    }

    #[test]
    fn paper_scale_flops_in_papers_decade() {
        // GWN/covid at Stratix-10 peak must land near the paper's
        // 1141 µs row (±50 %).
        let flops = paper_scale_flops(BaselineKind::Gwn, "covid");
        let latency_us = flops as f64 / 2.7e12 * 1e6;
        assert!(
            (500.0..2000.0).contains(&latency_us),
            "latency {latency_us} µs"
        );
    }

    #[test]
    #[should_panic(expected = "unknown application")]
    fn paper_scale_flops_unknown_app() {
        paper_scale_flops(BaselineKind::Gwn, "nope");
    }

    #[test]
    fn imputation_training_never_worse_on_val() {
        let scale = Scale::quick();
        let p = prepare("stock", &scale, 5);
        let (stage1, _) = train_dense(&p, &scale, 5);
        let stage2 = train_dense_imputation(&p, &scale, 5);
        let (_, val) = head_val_split(&p.train);
        let observed: Vec<usize> = (0..p.layout.frame_len()).step_by(2).collect();
        let r1 = imputation_fp_rmse(&stage1, val, &observed);
        let r2 = imputation_fp_rmse(&stage2, val, &observed);
        assert!(r2 <= r1 + 1e-12, "gated stage 2 must not hurt: {r1} -> {r2}");
    }

    #[test]
    fn quick_end_to_end() {
        let scale = Scale::quick();
        let p = prepare("covid", &scale, 2);
        let (dense, report) = train_dense(&p, &scale, 2);
        assert!(
            report.final_loss() < report.epoch_losses[0],
            "training should reduce loss"
        );
        let d = decompose_model(&dense, &p, &scale, 0.2, PatternKind::DMesh, 2);
        let hw = hw_config(&p, &scale);
        let eval = eval_mapped(&d, &p, &hw, 2);
        assert!(eval.rmse.is_finite() && eval.rmse < 0.5, "rmse {}", eval.rmse);
        assert!(eval.mean_latency_ns > 0.0);
    }
}
