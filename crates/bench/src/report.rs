//! Text-table and CSV output for the experiment harness.

use std::fmt::Write as _;
use std::fs;
use std::path::{Path, PathBuf};

/// A simple aligned text table (also convertible to CSV).
#[derive(Debug, Clone, Default)]
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a title and column headers.
    pub fn new(title: &str, header: &[&str]) -> Self {
        Table {
            title: title.to_owned(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header width).
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table as aligned text.
    pub fn to_text(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        let line = |cells: &[String], widths: &[usize]| {
            let mut s = String::new();
            for (cell, w) in cells.iter().zip(widths) {
                let _ = write!(s, "{cell:>w$}  ", w = w);
            }
            s.trim_end().to_owned()
        };
        let _ = writeln!(out, "{}", line(&self.header, &widths));
        let total: usize = widths.iter().sum::<usize>() + 2 * widths.len();
        let _ = writeln!(out, "{}", "-".repeat(total));
        for row in &self.rows {
            let _ = writeln!(out, "{}", line(row, &widths));
        }
        out
    }

    /// Renders the table as CSV (header + rows).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let esc = |c: &str| {
            if c.contains(',') || c.contains('"') {
                format!("\"{}\"", c.replace('"', "\"\""))
            } else {
                c.to_owned()
            }
        };
        let _ = writeln!(
            out,
            "{}",
            self.header.iter().map(|c| esc(c)).collect::<Vec<_>>().join(",")
        );
        for row in &self.rows {
            let _ = writeln!(
                out,
                "{}",
                row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(",")
            );
        }
        out
    }

    /// Prints the text form and writes `<out_dir>/<stem>.csv`.
    ///
    /// # Errors
    ///
    /// Returns I/O errors from creating the directory or file.
    // The rendered table is the bench bins' user-facing terminal output;
    // this is the one sanctioned stdout print in the bench library.
    #[allow(clippy::print_stdout)]
    pub fn emit(&self, out_dir: &Path, stem: &str) -> std::io::Result<PathBuf> {
        println!("{}", self.to_text());
        fs::create_dir_all(out_dir)?;
        let path = out_dir.join(format!("{stem}.csv"));
        fs::write(&path, self.to_csv())?;
        Ok(path)
    }
}

/// Formats a float in compact scientific notation (paper style, e.g.
/// `3.41e-2`).
pub fn sci(v: f64) -> String {
    format!("{v:.2e}")
}

/// Formats a float with `d` decimals.
pub fn fixed(v: f64, d: usize) -> String {
    format!("{v:.d$}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn text_and_csv() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.row(vec!["1".into(), "x,y".into()]);
        let text = t.to_text();
        assert!(text.contains("== demo =="));
        assert!(text.contains('a'));
        let csv = t.to_csv();
        assert!(csv.starts_with("a,b\n"));
        assert!(csv.contains("\"x,y\""));
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn width_mismatch_panics() {
        Table::new("t", &["a"]).row(vec!["1".into(), "2".into()]);
    }

    #[test]
    fn formatting() {
        assert_eq!(sci(0.0341), "3.41e-2");
        assert_eq!(fixed(1.23456, 2), "1.23");
    }

    #[test]
    fn emit_writes_csv() {
        let dir = std::env::temp_dir().join("dsgl_report_test");
        let mut t = Table::new("demo", &["a"]);
        t.row(vec!["1".into()]);
        let path = t.emit(&dir, "demo").unwrap();
        assert!(path.exists());
        std::fs::remove_dir_all(&dir).ok();
    }
}
