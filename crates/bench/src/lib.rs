//! Experiment harness for the DS-GL reproduction.
//!
//! [`pipeline`] holds the shared train → decompose → map → evaluate
//! machinery every table and figure uses; [`report`] holds text-table
//! and CSV output helpers. The `experiments` binary (see
//! `src/bin/experiments.rs`) regenerates each table and figure of the
//! paper; the Criterion benches in `benches/` time the underlying
//! kernels and run scaled-down versions of every experiment.

#![forbid(unsafe_code)]
#![deny(clippy::print_stdout, clippy::print_stderr)]
#![warn(missing_docs)]

pub mod fault;
pub mod pipeline;
pub mod report;
