//! Fault-injection campaign: RMSE degradation under persistent defects.
//!
//! ```text
//! fault_campaign [--smoke] [--seed N] [--out DIR] [--dataset NAME]
//! ```
//!
//! Sweeps fault rates per class (stuck nodes, dead couplers, coupler
//! drift, dead PEs, dead CU lanes), runs guarded inference on the
//! defective machines, and writes `BENCH_faults.json` under the output
//! directory (default `results/`) with per-class RMSE, retry, and
//! degraded-window counts — the hard-fault extension of the paper's
//! Fig. 13 noise sweep.
//!
//! `--smoke` runs the CI-sized campaign and additionally asserts the
//! acceptance conditions: every prediction finite (panics inside the
//! campaign otherwise) and every swept RMSE under the documented bound
//! (`clean_rmse · SMOKE_RMSE_FACTOR`, floored at `SMOKE_RMSE_FLOOR`).

use dsgl_bench::fault::{run_campaign, write_report, FaultCampaignConfig};
use std::path::PathBuf;
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut smoke = false;
    let mut seed = 7u64;
    let mut out = PathBuf::from("results");
    let mut dataset = "covid".to_string();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--smoke" => smoke = true,
            "--seed" => {
                i += 1;
                seed = args[i].parse().expect("--seed takes an integer");
            }
            "--out" => {
                i += 1;
                out = PathBuf::from(&args[i]);
            }
            "--dataset" => {
                i += 1;
                dataset = args[i].clone();
            }
            other => {
                eprintln!("unknown flag {other}");
                eprintln!("usage: fault_campaign [--smoke] [--seed N] [--out DIR] [--dataset NAME]");
                std::process::exit(2);
            }
        }
        i += 1;
    }

    let started = Instant::now();
    let cfg = if smoke {
        FaultCampaignConfig::smoke(&dataset, seed)
    } else {
        FaultCampaignConfig::new(&dataset, seed)
    };
    let report = run_campaign(&cfg);
    write_report(&report, &out).expect("write BENCH_faults.json");
    eprintln!(
        "[fault campaign: clean rmse {:.4}, worst rmse {:.4}, report at {}]",
        report.clean_rmse,
        report.worst_rmse(),
        out.join("BENCH_faults.json").display()
    );
    if smoke {
        let bound = report.smoke_bound();
        assert!(
            report.worst_rmse() <= bound,
            "smoke bound violated: worst rmse {} > bound {bound}",
            report.worst_rmse()
        );
        let total_faulted_activity: usize = report
            .classes
            .iter()
            .flat_map(|c| c.points.iter())
            .map(|p| p.retries + p.degraded)
            .sum();
        eprintln!(
            "[smoke ok: bound {bound:.4}, guard/fallback activity on {total_faulted_activity} window-points]"
        );
    }
    eprintln!("[done in {:.1}s]", started.elapsed().as_secs_f64());
}
