//! Chaos campaign: fault-injection drills against the supervised
//! [`dsgl_serve::ForecastService`].
//!
//! ```text
//! chaos_campaign [--smoke] [--seed N] [--out DIR] [--dataset NAME]
//! ```
//!
//! Trains one forecaster, computes a serial one-by-one reference for
//! every request in the campaign streams, then drives the service
//! through five phases:
//!
//! 1. **baseline** — supervision disabled; best-of-`REPS` wall time.
//! 2. **supervised-quiet** — full supervision armed (watchdog,
//!    brownout, crash retries) but no fault ever fires. The minimum
//!    paired per-rep overhead ratio of (2)/(1) is asserted at or under
//!    [`OVERHEAD_BOUND`], and every response must be bit-identical to
//!    the serial reference — supervision that never fires is invisible.
//! 3. **worker-panics** — chaos panics kill serving workers mid-batch;
//!    orphaned requests must be re-delivered exactly once each.
//! 4. **hung-anneals** — chaos wedges victim windows on an
//!    un-satisfiable guard; the watchdog must cancel and re-deliver.
//! 5. **load-spike** — a burst of submissions against a tiny queue;
//!    admission must shed (never silently drop) and every admitted
//!    request must still be answered.
//!
//! Every phase asserts the exactly-once ledger: N submitted requests
//! produce exactly N responses (no losses, no duplicates — the service
//! records one `serve.latency_ns` observation per response it sends,
//! which must equal admitted `serve.requests`), and every response in
//! phases 1–5 is verified bit-identical to the serial reference. The
//! fault phases additionally assert bounded p99 degradation relative to
//! the quiet supervised run. `BENCH_chaos.json` is written with the
//! full ledger, counters, and the final snapshot.
//!
//! Phases 2–5 run with an **enabled span collector** (PR 9): the quiet
//! overhead bound therefore covers supervision *plus* per-request
//! tracing against an untraced baseline, and the fault phases assert
//! that each injected fault leaves its event in the black-box flight
//! recorder on top of the counters.

use dsgl_bench::pipeline::{self, Scale};
use dsgl_core::guard::infer_batch_guarded_seeded_instrumented;
use dsgl_core::{DsGlModel, FlightDump, GuardedAnneal, MetricsSnapshot, SpanCollector, TelemetrySink};
use dsgl_data::Sample;
use dsgl_ising::fault::FaultModel;
use dsgl_ising::AnnealConfig;
use dsgl_serve::{flight_events, instruments, ChaosConfig, ForecastService, ServeConfig, ServeError};
use serde::Serialize;
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::{Duration, Instant};

/// Supervision may cost at most this fraction of wall time when no
/// fault fires (README "Supervision & chaos"; asserted every run).
const OVERHEAD_BOUND: f64 = 0.05;
/// Fault-phase p99 may degrade to at most this multiple of the quiet
/// supervised p99, plus the structural watchdog term where applicable.
const P99_FACTOR: f64 = 20.0;
/// Closed-loop client threads for the load phases.
const CLIENTS: usize = 6;
/// Best-of reps for the overhead measurement.
const REPS: usize = 3;
/// Seed the chaos faults target.
const VICTIM_SEED: u64 = 424_242;
/// Watchdog deadline for the supervised smoke phases. Quick-scale
/// batches anneal in single-digit milliseconds, so 50 ms only ever
/// catches the injected infinite-stiffness hangs.
const WATCHDOG_SMOKE: Duration = Duration::from_millis(50);
/// Watchdog deadline at full scale. An honest full-scale coalesced
/// batch takes tens to hundreds of milliseconds of wall time under
/// client load; the deadline needs an order of magnitude of headroom
/// above that or it cancels healthy anneals and the quiet phases
/// degrade to persistence fallbacks (README "Supervision & chaos").
const WATCHDOG_FULL: Duration = Duration::from_secs(2);
/// Re-delivery budget; chaos budgets stay strictly under it so every
/// victim recovers to a real (bit-identical) anneal.
const CRASH_RETRIES: u32 = 3;

/// Campaign stream: every 10th request is the chaos victim (same
/// window, same seed — they coalesce), the rest are distinct cold keys.
fn stream_request(i: usize, n_windows: usize) -> (usize, u64) {
    if i % 10 == 3 {
        (0, VICTIM_SEED)
    } else {
        (i % n_windows, 5_000 + i as u64)
    }
}

#[derive(Serialize)]
struct PhaseReport {
    name: String,
    requests: usize,
    responses: usize,
    /// Client-side resubmissions after an `Overloaded` shed.
    shed_retries: u64,
    wall_s: f64,
    throughput_rps: f64,
    p50_latency_us: f64,
    p99_latency_us: f64,
    /// p99 ceiling asserted for this phase (absent → not bounded).
    #[serde(skip_serializing_if = "Option::is_none")]
    p99_bound_us: Option<f64>,
    /// Responses verified bit-identical to the serial reference.
    bit_identical: usize,
    admitted: u64,
    latency_observations: u64,
    worker_panics: u64,
    worker_respawns: u64,
    requeues: u64,
    crash_failures: u64,
    watchdog_cancels: u64,
    watchdog_fallbacks: u64,
    rejected: u64,
    /// Spans recorded by the per-request tracer (0 when untraced).
    trace_spans: usize,
    /// Failure-edge events left in the black-box flight recorder.
    flight_events: usize,
}

#[derive(Serialize)]
struct ChaosBenchReport {
    command: String,
    dataset: String,
    seed: u64,
    smoke: bool,
    nodes: usize,
    history: usize,
    total_vars: usize,
    clients: usize,
    watchdog_ms: u64,
    crash_retries: u32,
    /// Best-of-reps wall seconds, unsupervised vs supervised-quiet.
    baseline_wall_s: f64,
    supervised_wall_s: f64,
    /// Minimum paired per-rep `supervised/baseline - 1`; asserted ≤
    /// `overhead_bound`. The min over pairs filters shared-box noise
    /// while still catching any systematic supervision cost.
    supervision_overhead_frac: f64,
    overhead_bound_frac: f64,
    /// Exactly-once ledger over all phases: every admitted request got
    /// exactly one response.
    zero_lost: bool,
    zero_duplicated: bool,
    phases: Vec<PhaseReport>,
    /// Snapshot of the hung-anneal phase, in the frozen schema.
    snapshot: MetricsSnapshot,
}

struct PhaseOutcome {
    latencies: Vec<u64>,
    shed_retries: u64,
    bit_identical: usize,
    wall_s: f64,
    span_count: usize,
    flight: FlightDump,
    snapshot: MetricsSnapshot,
}

/// Supervision stack used by phases 2–5: armed, generous enough that
/// only injected faults ever trip it.
fn supervised_config(watchdog: Duration) -> ServeConfig {
    ServeConfig::default()
        .workers(2)
        .coalesce(4)
        .queue_capacity(CLIENTS * 4)
        .linger(Duration::from_micros(500))
        .watchdog(watchdog)
        .crash_retries(CRASH_RETRIES)
}

/// Drives `stream` through a service in a closed client loop, verifying
/// every response against the serial reference as it arrives.
fn run_phase(
    model: &DsGlModel,
    guard: GuardedAnneal,
    windows: &[Vec<f64>],
    stream: &[(usize, u64)],
    config: ServeConfig,
    traced: bool,
    reference: &HashMap<(usize, u64), Vec<f64>>,
) -> PhaseOutcome {
    let sink = TelemetrySink::enabled();
    let spans = if traced {
        SpanCollector::enabled()
    } else {
        SpanCollector::noop()
    };
    let service = ForecastService::spawn_traced(model.clone(), guard, sink.clone(), spans, config)
        .expect("spawn service");
    let next = AtomicUsize::new(0);
    let shed = AtomicU64::new(0);
    let t0 = Instant::now();
    let mut latencies: Vec<u64> = Vec::with_capacity(stream.len());
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|_| {
                let service = &service;
                let next = &next;
                let shed = &shed;
                scope.spawn(move || {
                    let mut local: Vec<u64> = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= stream.len() {
                            break;
                        }
                        let (w, seed) = stream[i];
                        let response = loop {
                            match service.forecast(windows[w].clone(), seed) {
                                Ok(response) => break response,
                                Err(ServeError::Overloaded { .. }) => {
                                    shed.fetch_add(1, Ordering::Relaxed);
                                    std::thread::yield_now();
                                }
                                Err(e) => panic!("request {i}: {e}"),
                            }
                        };
                        assert_eq!(
                            &response.prediction,
                            &reference[&(w, seed)],
                            "request {i} (window {w}, seed {seed}) diverged from the \
                             serial reference"
                        );
                        local.push(response.latency_ns);
                    }
                    local
                })
            })
            .collect();
        for handle in handles {
            latencies.extend(handle.join().unwrap());
        }
    });
    let wall_s = t0.elapsed().as_secs_f64();
    assert_eq!(latencies.len(), stream.len(), "one response per request");
    PhaseOutcome {
        bit_identical: latencies.len(),
        latencies,
        shed_retries: shed.load(Ordering::Relaxed),
        wall_s,
        span_count: service.trace_spans().len(),
        flight: service.flight_dump(),
        snapshot: sink.snapshot(),
    }
}

/// The load-spike phase: one thread bursts the whole stream into a
/// tiny queue (retrying sheds), then waits every ticket. Shedding must
/// actually happen, and everything admitted must still answer.
fn run_spike(
    model: &DsGlModel,
    guard: GuardedAnneal,
    windows: &[Vec<f64>],
    stream: &[(usize, u64)],
    watchdog: Duration,
    reference: &HashMap<(usize, u64), Vec<f64>>,
) -> PhaseOutcome {
    let sink = TelemetrySink::enabled();
    let config = supervised_config(watchdog).queue_capacity(4);
    let service = ForecastService::spawn_traced(
        model.clone(),
        guard,
        sink.clone(),
        SpanCollector::enabled(),
        config,
    )
    .expect("spawn service");
    let mut shed_retries = 0u64;
    let t0 = Instant::now();
    let mut tickets = Vec::with_capacity(stream.len());
    for &(w, seed) in stream {
        let ticket = loop {
            match service.submit(windows[w].clone(), seed) {
                Ok(ticket) => break ticket,
                Err(ServeError::Overloaded { .. }) => {
                    shed_retries += 1;
                    std::thread::yield_now();
                }
                Err(e) => panic!("spike submit: {e}"),
            }
        };
        tickets.push((w, seed, ticket));
    }
    let mut latencies = Vec::with_capacity(stream.len());
    for (w, seed, ticket) in tickets {
        let response = ticket.wait().expect("admitted spike request answers");
        assert_eq!(
            &response.prediction,
            &reference[&(w, seed)],
            "spike (window {w}, seed {seed}) diverged from the serial reference"
        );
        latencies.push(response.latency_ns);
    }
    let wall_s = t0.elapsed().as_secs_f64();
    assert_eq!(latencies.len(), stream.len());
    PhaseOutcome {
        bit_identical: latencies.len(),
        latencies,
        shed_retries,
        wall_s,
        span_count: service.trace_spans().len(),
        flight: service.flight_dump(),
        snapshot: sink.snapshot(),
    }
}

fn phase_report(
    name: &str,
    stream_len: usize,
    outcome: &PhaseOutcome,
    p99_bound_us: Option<f64>,
) -> PhaseReport {
    let mut sorted = outcome.latencies.clone();
    sorted.sort_unstable();
    let pct =
        |q: f64| sorted[((q * sorted.len() as f64) as usize).min(sorted.len() - 1)] as f64 / 1e3;
    let snap = &outcome.snapshot;
    let report = PhaseReport {
        name: name.to_owned(),
        requests: stream_len,
        responses: outcome.latencies.len(),
        shed_retries: outcome.shed_retries,
        wall_s: outcome.wall_s,
        throughput_rps: stream_len as f64 / outcome.wall_s,
        p50_latency_us: pct(0.50),
        p99_latency_us: pct(0.99),
        p99_bound_us,
        bit_identical: outcome.bit_identical,
        admitted: snap.counter(instruments::REQUESTS),
        latency_observations: snap
            .get(instruments::LATENCY_NS)
            .map_or(0, |i| i.count),
        worker_panics: snap.counter(instruments::WORKER_PANICS),
        worker_respawns: snap.counter(instruments::WORKER_RESPAWNS),
        requeues: snap.counter(instruments::REQUEUES),
        crash_failures: snap.counter(instruments::CRASH_FAILURES),
        watchdog_cancels: snap.counter(instruments::WATCHDOG_CANCELS),
        watchdog_fallbacks: snap.counter(instruments::WATCHDOG_FALLBACKS),
        rejected: snap.counter(instruments::REJECTED),
        trace_spans: outcome.span_count,
        flight_events: outcome.flight.events.len(),
    };
    // The exactly-once ledger, phase-locally: every admitted request
    // produced exactly one response (latency is recorded once per
    // response sent), and no request was failed out of the budget.
    assert_eq!(report.responses, report.requests, "{name}: lost or extra responses");
    assert_eq!(
        report.latency_observations, report.admitted,
        "{name}: service sent {} responses for {} admitted requests",
        report.latency_observations, report.admitted
    );
    assert_eq!(report.crash_failures, 0, "{name}: requests failed out of retry budget");
    assert_eq!(
        report.bit_identical, report.responses,
        "{name}: responses diverged from the serial reference"
    );
    if let Some(bound) = p99_bound_us {
        assert!(
            report.p99_latency_us <= bound,
            "{name}: p99 {:.0} µs exceeds the degradation bound {:.0} µs",
            report.p99_latency_us,
            bound
        );
    }
    report
}

fn write_report(report: &ChaosBenchReport, out: &Path) -> std::io::Result<PathBuf> {
    std::fs::create_dir_all(out)?;
    let path = out.join("BENCH_chaos.json");
    let json = serde_json::to_string_pretty(report).expect("serialise chaos report");
    std::fs::write(&path, json + "\n")?;
    Ok(path)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut smoke = false;
    let mut seed = 7u64;
    let mut out = PathBuf::from("results");
    let mut dataset = "covid".to_string();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--smoke" => smoke = true,
            "--seed" => {
                i += 1;
                seed = args[i].parse().expect("--seed takes an integer");
            }
            "--out" => {
                i += 1;
                out = PathBuf::from(&args[i]);
            }
            "--dataset" => {
                i += 1;
                dataset = args[i].clone();
            }
            other => {
                eprintln!("unknown flag {other}");
                eprintln!("usage: chaos_campaign [--smoke] [--seed N] [--out DIR] [--dataset NAME]");
                std::process::exit(2);
            }
        }
        i += 1;
    }

    // Injected worker panics are the campaign working as intended;
    // keep their backtraces out of the log. Anything else still prints.
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let injected = info
            .payload()
            .downcast_ref::<&str>()
            .is_some_and(|s| s.contains("chaos: injected"));
        if !injected {
            default_hook(info);
        }
    }));

    let scale = if smoke { Scale::quick() } else { Scale::full() };
    let total = if smoke { 120 } else { 360 };
    let watchdog = if smoke { WATCHDOG_SMOKE } else { WATCHDOG_FULL };
    let started = Instant::now();

    let p = pipeline::prepare(&dataset, &scale, seed);
    let (model, _) = pipeline::train_dense(&p, &scale, seed);
    let guard = GuardedAnneal::new(AnnealConfig::default());
    let windows: Vec<Vec<f64>> = p.test.iter().map(|s| s.history.clone()).collect();
    assert!(!windows.is_empty(), "dataset produced no test windows");

    let stream: Vec<(usize, u64)> = (0..total).map(|i| stream_request(i, windows.len())).collect();
    let spike_stream = &stream[..total.min(60)];

    // The serial one-by-one reference every phase must reproduce.
    let sink = TelemetrySink::noop();
    let target_len = model.layout().target_len();
    let mut reference: HashMap<(usize, u64), Vec<f64>> = HashMap::new();
    for &(w, request_seed) in &stream {
        reference.entry((w, request_seed)).or_insert_with(|| {
            let sample = Sample {
                history: windows[w].clone(),
                target: vec![0.0; target_len],
            };
            infer_batch_guarded_seeded_instrumented(
                &model,
                std::slice::from_ref(&sample),
                &guard,
                &[request_seed],
                &FaultModel::none(),
                &sink,
            )
            .expect("serial reference")
            .remove(0)
            .0
        });
    }
    eprintln!(
        "[{} requests over {} distinct keys, {} clients]",
        total,
        reference.len(),
        CLIENTS
    );

    // Phases 1+2: the no-fault overhead race, best-of-REPS each.
    let baseline_config = || {
        ServeConfig::default()
            .workers(2)
            .coalesce(4)
            .queue_capacity(CLIENTS * 4)
            .linger(Duration::from_micros(500))
    };
    // Each rep runs baseline and supervised back to back, so the pair
    // shares the machine's load state; the *minimum* paired ratio is
    // the overhead estimate. A systematic supervision cost inflates
    // every pair and survives the min; a noise spike inflates one pair
    // and is filtered (closed-loop wall times on a shared box vary by
    // ~10% rep to rep, more than the bound being asserted).
    let mut baseline_best: Option<PhaseOutcome> = None;
    let mut supervised_best: Option<PhaseOutcome> = None;
    let mut overhead = f64::INFINITY;
    for rep in 0..REPS {
        let base = run_phase(
            &model,
            guard,
            &windows,
            &stream,
            baseline_config(),
            false,
            &reference,
        );
        let sup = run_phase(
            &model,
            guard,
            &windows,
            &stream,
            supervised_config(watchdog).brownout(dsgl_serve::BrownoutPolicy::default()),
            true,
            &reference,
        );
        eprintln!(
            "[rep {rep}: baseline {:.3}s, supervised-quiet {:.3}s, paired {:+.1}%]",
            base.wall_s,
            sup.wall_s,
            (sup.wall_s / base.wall_s - 1.0) * 100.0
        );
        overhead = overhead.min(sup.wall_s / base.wall_s - 1.0);
        if baseline_best.as_ref().is_none_or(|b| base.wall_s < b.wall_s) {
            baseline_best = Some(base);
        }
        if supervised_best.as_ref().is_none_or(|b| sup.wall_s < b.wall_s) {
            supervised_best = Some(sup);
        }
    }
    let baseline = baseline_best.expect("reps ran");
    let supervised = supervised_best.expect("reps ran");
    eprintln!(
        "[overhead: baseline {:.3}s, supervised {:.3}s, {:+.1}% (bound {:.0}%)]",
        baseline.wall_s,
        supervised.wall_s,
        overhead * 100.0,
        OVERHEAD_BOUND * 100.0
    );
    assert!(
        overhead <= OVERHEAD_BOUND,
        "quiet supervision costs {:.1}% wall time, over the {:.0}% bound",
        overhead * 100.0,
        OVERHEAD_BOUND * 100.0
    );

    let mut phases = Vec::new();
    let base_report = phase_report("baseline", total, &baseline, None);
    let quiet_p99_us = {
        let quiet = phase_report("supervised-quiet", total, &supervised, None);
        let p99 = quiet.p99_latency_us;
        // Quiet supervision must never trip a single supervision path.
        assert_eq!(quiet.worker_panics, 0);
        assert_eq!(quiet.watchdog_cancels, 0);
        assert_eq!(quiet.requeues, 0);
        // The traced phase really traced: at least the root span of
        // every request landed in the collector.
        assert!(
            quiet.trace_spans >= total,
            "expected >= {total} spans from the traced quiet phase, got {}",
            quiet.trace_spans
        );
        assert_eq!(base_report.trace_spans, 0, "the baseline runs untraced");
        phases.push(base_report);
        phases.push(quiet);
        p99
    };

    // Phase 3: worker panics. Budget strictly under the re-delivery
    // budget, so every orphan recovers to a real anneal.
    let panic_outcome = run_phase(
        &model,
        guard,
        &windows,
        &stream,
        supervised_config(watchdog).chaos(ChaosConfig::none().panic_on_seed(VICTIM_SEED, 2)),
        true,
        &reference,
    );
    let panic_bound = P99_FACTOR * quiet_p99_us + 150_000.0;
    let panic_phase = phase_report("worker-panics", total, &panic_outcome, Some(panic_bound));
    assert_eq!(panic_phase.worker_panics, 2, "both panic budgets must fire");
    assert_eq!(panic_phase.worker_respawns, 2);
    assert!(panic_phase.requeues >= 1, "orphans must be re-delivered");
    assert_eq!(
        panic_outcome
            .flight
            .events
            .iter()
            .filter(|e| e.kind == flight_events::WORKER_PANIC)
            .count(),
        2,
        "each injected panic must leave a flight event"
    );
    eprintln!(
        "[worker-panics: {} panics, {} requeues, p99 {:.0} µs]",
        panic_phase.worker_panics, panic_phase.requeues, panic_phase.p99_latency_us
    );
    phases.push(panic_phase);

    // Phase 4: hung anneals. The watchdog term dominates the bound:
    // a victim can be cancelled `hang_budget` times before recovering.
    let hang_outcome = run_phase(
        &model,
        guard,
        &windows,
        &stream,
        supervised_config(watchdog).chaos(ChaosConfig::none().hang_on_seed(VICTIM_SEED, 2)),
        true,
        &reference,
    );
    let hang_bound =
        P99_FACTOR * quiet_p99_us + 3.0 * watchdog.as_micros() as f64 + 150_000.0;
    let hang_phase = phase_report("hung-anneals", total, &hang_outcome, Some(hang_bound));
    assert!(hang_phase.watchdog_cancels >= 1, "the watchdog must fire");
    assert!(hang_phase.requeues >= 1, "cancelled windows must be re-delivered");
    assert!(
        hang_outcome
            .flight
            .events
            .iter()
            .any(|e| e.kind == flight_events::WATCHDOG_CANCEL),
        "the watchdog fire must leave a flight event"
    );
    assert_eq!(
        hang_phase.watchdog_fallbacks, 0,
        "budgeted chaos must recover to real anneals, not fallbacks"
    );
    eprintln!(
        "[hung-anneals: {} cancels, {} requeues, p99 {:.0} µs]",
        hang_phase.watchdog_cancels, hang_phase.requeues, hang_phase.p99_latency_us
    );
    let hang_snapshot = hang_outcome.snapshot.clone();
    phases.push(hang_phase);

    // Phase 5: load spike against a 4-deep queue.
    let spike_outcome = run_spike(&model, guard, &windows, spike_stream, watchdog, &reference);
    let spike_phase = phase_report("load-spike", spike_stream.len(), &spike_outcome, None);
    assert!(
        spike_phase.rejected >= 1,
        "a {}-request burst into a 4-deep queue must shed",
        spike_stream.len()
    );
    eprintln!(
        "[load-spike: {} shed retries, everything admitted answered]",
        spike_phase.shed_retries
    );
    phases.push(spike_phase);

    let report = ChaosBenchReport {
        command: format!(
            "chaos_campaign --seed {seed}{}",
            if smoke { " --smoke" } else { "" }
        ),
        dataset,
        seed,
        smoke,
        nodes: p.dataset.node_count(),
        history: scale.history,
        total_vars: model.layout().total(),
        clients: CLIENTS,
        watchdog_ms: watchdog.as_millis() as u64,
        crash_retries: CRASH_RETRIES,
        baseline_wall_s: baseline.wall_s,
        supervised_wall_s: supervised.wall_s,
        supervision_overhead_frac: overhead,
        overhead_bound_frac: OVERHEAD_BOUND,
        // phase_report asserted both properties for every phase.
        zero_lost: true,
        zero_duplicated: true,
        phases,
        snapshot: hang_snapshot,
    };
    let path = write_report(&report, &out).expect("write BENCH_chaos.json");
    eprintln!(
        "[chaos campaign clean: exactly-once everywhere, overhead {:+.1}%, report at {}]",
        overhead * 100.0,
        path.display()
    );
    if smoke {
        let parsed: MetricsSnapshot = serde_json::from_str(
            &serde_json::to_string(&report.snapshot).expect("re-serialise snapshot"),
        )
        .expect("snapshot round-trip");
        assert_eq!(parsed, report.snapshot);
        eprintln!("[smoke ok]");
    }
    eprintln!("[done in {:.1}s]", started.elapsed().as_secs_f64());
}
