//! Serve profile: synthetic closed-loop load against the
//! [`dsgl_serve::ForecastService`].
//!
//! ```text
//! serve_profile [--smoke] [--seed N] [--out DIR] [--dataset NAME]
//! ```
//!
//! Trains one forecaster, then drives it with a closed loop of client
//! threads whose traffic has a *hot head*: most requests ask for the
//! current forecast of the moment (same window, same seed — think
//! dashboards polling "the latest"), with the hot key rotating every
//! [`ROTATION`] requests, while the rest are distinct cold windows. The
//! coalesce-width sweep {1, 4, 8} measures what request coalescing buys
//! under that load: width 1 anneals every request individually, wider
//! batches collapse the duplicates into one anneal and fan the result
//! out.
//!
//! Every response of every run is verified bit-identical to the serial
//! one-by-one reference — the service's headline contract — and
//! `BENCH_serve.json` is written with throughput, exact latency
//! percentiles, anneal counts, and the final run's full
//! [`MetricsSnapshot`].
//!
//! `--smoke` runs the CI-sized load and additionally asserts the
//! documented acceptance bound: coalesce width 8 must deliver at least
//! [`SPEEDUP_BOUND`]× the width-1 throughput.

use dsgl_bench::pipeline::{self, Scale};
use dsgl_core::guard::infer_batch_guarded_seeded_instrumented;
use dsgl_core::{DsGlModel, GuardedAnneal, MetricsSnapshot, TelemetrySink};
use dsgl_data::Sample;
use dsgl_ising::fault::FaultModel;
use dsgl_ising::AnnealConfig;
use dsgl_serve::{ForecastService, ServeConfig, ServiceStats};
use serde::Serialize;
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

/// Documented acceptance bound (README "Serving"): coalesce width 8
/// must reach ≥ 2× the width-1 throughput under the hot-head load.
const SPEEDUP_BOUND: f64 = 2.0;
/// Fraction of traffic hitting the current hot key, per mille.
const HOT_PER_MILLE: u64 = 800;
/// The hot key rotates every this many requests.
const ROTATION: usize = 50;
/// Closed-loop client threads.
const CLIENTS: usize = 8;

/// Deterministic request stream: request `i` → (window index, seed).
/// Hot requests share the rotation period's (window, seed) pair; cold
/// requests get a unique seed, so they can never coalesce.
fn request_of(i: usize, n_windows: usize) -> (usize, u64) {
    let h = (i as u64).wrapping_mul(2_654_435_761) % 1000;
    if h < HOT_PER_MILLE {
        let key = i / ROTATION;
        (key % n_windows, 100_000 + key as u64)
    } else {
        (i % n_windows, 1_000_000 + i as u64)
    }
}

#[derive(Serialize)]
struct SweepPoint {
    coalesce: usize,
    workers: usize,
    requests: usize,
    wall_s: f64,
    throughput_rps: f64,
    /// Actual guarded anneals executed (`guard.runs`): the work that
    /// duplicate collapsing saved shows up here.
    anneals: u64,
    coalesced_hits: u64,
    mean_coalesce_width: f64,
    /// Exact percentiles over every request's admission-to-reply
    /// latency (client-side sort, not the bucketed estimate).
    p50_latency_us: f64,
    p99_latency_us: f64,
    stats: ServiceStats,
}

#[derive(Serialize)]
struct ServeBenchReport {
    command: String,
    dataset: String,
    seed: u64,
    smoke: bool,
    nodes: usize,
    history: usize,
    total_vars: usize,
    clients: usize,
    requests_per_width: usize,
    hot_fraction: f64,
    rotation: usize,
    sweep: Vec<SweepPoint>,
    /// Width-8 throughput over width-1 throughput.
    speedup_w8_vs_w1: f64,
    /// Documented minimum for `speedup_w8_vs_w1` (asserted in smoke).
    speedup_bound: f64,
    /// Snapshot of the width-8 run, in the frozen schema.
    snapshot: MetricsSnapshot,
}

/// Runs one closed-loop load at the given coalesce width and verifies
/// every response against `reference` (distinct key → expected bits).
fn run_width(
    model: &DsGlModel,
    guard: GuardedAnneal,
    windows: &[Vec<f64>],
    total: usize,
    coalesce: usize,
    reference: &HashMap<(usize, u64), Vec<f64>>,
) -> (SweepPoint, MetricsSnapshot) {
    let sink = TelemetrySink::enabled();
    let service = ForecastService::spawn(
        model.clone(),
        guard,
        sink.clone(),
        ServeConfig::default()
            .workers(1)
            .coalesce(coalesce)
            .queue_capacity(CLIENTS * 4)
            .linger(Duration::from_micros(500)),
    )
    .expect("spawn service");
    let next = AtomicUsize::new(0);
    let t0 = Instant::now();
    let mut latencies: Vec<u64> = Vec::with_capacity(total);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|_| {
                let service = &service;
                let next = &next;
                scope.spawn(move || {
                    let mut local: Vec<u64> = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= total {
                            break;
                        }
                        let (w, seed) = request_of(i, windows.len());
                        let response = loop {
                            // Closed-loop clients retry on shed load.
                            match service.forecast(windows[w].clone(), seed) {
                                Ok(response) => break response,
                                Err(dsgl_serve::ServeError::Overloaded { .. }) => {
                                    std::thread::yield_now();
                                }
                                Err(e) => panic!("request {i}: {e}"),
                            }
                        };
                        let expected = &reference[&(w, seed)];
                        assert_eq!(
                            &response.prediction, expected,
                            "request {i} (window {w}, seed {seed}) diverged from the \
                             serial reference at coalesce={coalesce}"
                        );
                        local.push(response.latency_ns);
                    }
                    local
                })
            })
            .collect();
        for handle in handles {
            latencies.extend(handle.join().unwrap());
        }
    });
    let wall = t0.elapsed().as_secs_f64();
    assert_eq!(latencies.len(), total);
    latencies.sort_unstable();
    let pct = |q: f64| latencies[((q * total as f64) as usize).min(total - 1)] as f64 / 1000.0;
    let snapshot = sink.snapshot();
    let stats = ServiceStats::from_snapshot(&snapshot);
    let point = SweepPoint {
        coalesce,
        workers: 1,
        requests: total,
        wall_s: wall,
        throughput_rps: total as f64 / wall,
        anneals: snapshot.counter("guard.runs"),
        coalesced_hits: stats.coalesced_hits,
        mean_coalesce_width: stats.mean_coalesce_width,
        p50_latency_us: pct(0.50),
        p99_latency_us: pct(0.99),
        stats,
    };
    (point, snapshot)
}

fn write_report(report: &ServeBenchReport, out: &Path) -> std::io::Result<PathBuf> {
    std::fs::create_dir_all(out)?;
    let path = out.join("BENCH_serve.json");
    let json = serde_json::to_string_pretty(report).expect("serialise serve report");
    std::fs::write(&path, json + "\n")?;
    Ok(path)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut smoke = false;
    let mut seed = 7u64;
    let mut out = PathBuf::from("results");
    let mut dataset = "covid".to_string();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--smoke" => smoke = true,
            "--seed" => {
                i += 1;
                seed = args[i].parse().expect("--seed takes an integer");
            }
            "--out" => {
                i += 1;
                out = PathBuf::from(&args[i]);
            }
            "--dataset" => {
                i += 1;
                dataset = args[i].clone();
            }
            other => {
                eprintln!("unknown flag {other}");
                eprintln!("usage: serve_profile [--smoke] [--seed N] [--out DIR] [--dataset NAME]");
                std::process::exit(2);
            }
        }
        i += 1;
    }

    let scale = if smoke { Scale::quick() } else { Scale::full() };
    let total = if smoke { 240 } else { 960 };
    let started = Instant::now();

    let p = pipeline::prepare(&dataset, &scale, seed);
    let (model, _) = pipeline::train_dense(&p, &scale, seed);
    let guard = GuardedAnneal::new(AnnealConfig::default());
    let windows: Vec<Vec<f64>> = p.test.iter().map(|s| s.history.clone()).collect();
    assert!(!windows.is_empty(), "dataset produced no test windows");

    // Serial one-by-one reference for every distinct key in the stream:
    // the bits each service run must reproduce exactly.
    let sink = TelemetrySink::noop();
    let target_len = model.layout().target_len();
    let mut reference: HashMap<(usize, u64), Vec<f64>> = HashMap::new();
    for i in 0..total {
        let (w, request_seed) = request_of(i, windows.len());
        reference.entry((w, request_seed)).or_insert_with(|| {
            let sample = Sample {
                history: windows[w].clone(),
                target: vec![0.0; target_len],
            };
            infer_batch_guarded_seeded_instrumented(
                &model,
                std::slice::from_ref(&sample),
                &guard,
                &[request_seed],
                &FaultModel::none(),
                &sink,
            )
            .expect("serial reference")
            .remove(0)
            .0
        });
    }
    eprintln!(
        "[{} requests per width over {} distinct (window, seed) keys, {} clients]",
        total,
        reference.len(),
        CLIENTS
    );

    let mut sweep = Vec::new();
    let mut final_snapshot = None;
    for coalesce in [1usize, 4, 8] {
        let (point, snapshot) = run_width(&model, guard, &windows, total, coalesce, &reference);
        eprintln!(
            "[coalesce {}: {:.0} req/s, {} anneals, {} hits, p50 {:.0} µs, p99 {:.0} µs]",
            point.coalesce,
            point.throughput_rps,
            point.anneals,
            point.coalesced_hits,
            point.p50_latency_us,
            point.p99_latency_us,
        );
        final_snapshot = Some(snapshot);
        sweep.push(point);
    }
    let speedup = sweep[2].throughput_rps / sweep[0].throughput_rps;
    let report = ServeBenchReport {
        command: format!(
            "serve_profile --seed {seed}{}",
            if smoke { " --smoke" } else { "" }
        ),
        dataset,
        seed,
        smoke,
        nodes: p.dataset.node_count(),
        history: scale.history,
        total_vars: model.layout().total(),
        clients: CLIENTS,
        requests_per_width: total,
        hot_fraction: HOT_PER_MILLE as f64 / 1000.0,
        rotation: ROTATION,
        sweep,
        speedup_w8_vs_w1: speedup,
        speedup_bound: SPEEDUP_BOUND,
        snapshot: final_snapshot.expect("sweep ran"),
    };
    let path = write_report(&report, &out).expect("write BENCH_serve.json");
    eprintln!(
        "[serve profile: speedup w8/w1 = {speedup:.2}x (bound {SPEEDUP_BOUND:.1}x), report at {}]",
        path.display()
    );
    if smoke {
        assert!(
            speedup >= SPEEDUP_BOUND,
            "coalescing speedup {speedup:.2}x below the documented {SPEEDUP_BOUND:.1}x bound"
        );
        // The snapshot must parse back under the frozen schema.
        let parsed: MetricsSnapshot = serde_json::from_str(
            &serde_json::to_string(&report.snapshot).expect("re-serialise snapshot"),
        )
        .expect("snapshot round-trip");
        assert_eq!(parsed, report.snapshot);
        eprintln!("[smoke ok: bit-identity verified for every response, speedup bound met]");
    }
    eprintln!("[done in {:.1}s]", started.elapsed().as_secs_f64());
}
