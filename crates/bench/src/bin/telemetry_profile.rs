//! Telemetry profile: full pipeline run with the metrics sink enabled.
//!
//! ```text
//! telemetry_profile [--smoke] [--seed N] [--out DIR] [--dataset NAME]
//! ```
//!
//! Runs train → decompose/map → guarded forecast three times — with
//! the noop [`TelemetrySink`], with an enabled sink, and (PR 9) with an
//! enabled sink *plus* an enabled [`SpanCollector`] — and writes
//! `BENCH_telemetry.json` under the output directory (default
//! `results/`) with the wall times, the overhead fractions, and the
//! full [`MetricsSnapshot`] of the instrumented run.
//!
//! `--smoke` runs the CI-sized workload and additionally asserts the
//! acceptance conditions: the snapshot contains the `anneal`, `guard`,
//! `train`, and `hw` instrument families at non-zero counts, and both
//! the enabled-sink and the traced wall times stay within the
//! documented bound (`OVERHEAD_BOUND`, plus a small absolute floor for
//! timer noise on seconds-scale runs).

use dsgl_bench::pipeline::{self, Scale, H_MAGNITUDE, LAMBDA_GRID};
use dsgl_core::guard::{infer_batch_guarded_traced, GuardedAnneal};
use dsgl_core::ridge::{fit_ridge_instrumented, fit_ridge_validated_instrumented};
use dsgl_core::{DsGlModel, MetricsSnapshot, PatternKind, SpanCollector, TelemetrySink, TraceScope};
use dsgl_hw::MappedMachine;
use dsgl_ising::AnnealConfig;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;
use std::path::{Path, PathBuf};
use std::time::Instant;

/// Documented relative overhead bound of the enabled sink (README
/// "Observability": ≤ 5 % end-to-end wall time).
const OVERHEAD_BOUND: f64 = 0.05;
/// Absolute slack absorbing scheduler/timer noise on short smoke runs.
const OVERHEAD_SLACK_S: f64 = 0.10;

#[derive(Serialize)]
struct TelemetryBenchReport {
    command: String,
    dataset: String,
    seed: u64,
    smoke: bool,
    /// Guarded forecast windows evaluated per run.
    windows: usize,
    /// Mapped (hardware-simulated) windows evaluated per run.
    mapped_windows: usize,
    /// Pooled RMSE of the guarded forecast (identical for all runs —
    /// neither the sink nor the span collector may change a bit).
    rmse: f64,
    wall_noop_s: f64,
    wall_enabled_s: f64,
    /// Enabled sink *and* enabled span collector.
    wall_traced_s: f64,
    /// `wall_enabled / wall_noop - 1`.
    overhead_fraction: f64,
    /// `wall_traced / wall_noop - 1`: metrics plus tracing, together.
    tracing_overhead_fraction: f64,
    /// Spans recorded by the traced pass.
    trace_spans: usize,
    snapshot: MetricsSnapshot,
}

/// One full pipeline pass under `sink`. Returns the guarded-forecast
/// RMSE so the work cannot be optimised away and bit-identity between
/// the noop and enabled runs can be asserted.
fn run_pipeline(
    dataset: &str,
    scale: &Scale,
    seed: u64,
    mapped_cap: usize,
    sink: &TelemetrySink,
    scope: &TraceScope,
) -> f64 {
    let p = pipeline::prepare(dataset, scale, seed);

    // Train: validated ridge fit, as in `pipeline::train_dense`, but on
    // the instrumented entry points.
    let mut model = DsGlModel::new(p.layout);
    model.h_mut().iter_mut().for_each(|h| *h = -H_MAGNITUDE);
    let rho = pipeline::lag1_autocorrelation(&p.train, p.layout.frame_len()).clamp(0.0, 0.99);
    model.init_diffusion_prior(&p.dataset.graph, 0.78 * rho, 0.20 * rho);
    let (head, val) = pipeline::head_val_split(&p.train);
    let lambda = fit_ridge_validated_instrumented(&mut model, head, val, &LAMBDA_GRID, sink)
        .expect("validated ridge fit");
    fit_ridge_instrumented(&mut model, &p.train, lambda, sink).expect("final ridge fit");

    // Guarded forecast over the held-out windows.
    let guard = GuardedAnneal::new(AnnealConfig::default());
    let results = infer_batch_guarded_traced(&model, &p.test, &guard, seed, sink, scope)
        .expect("guarded batch");
    let mut sse = 0.0;
    let mut count = 0usize;
    for ((pred, _, _), sample) in results.iter().zip(&p.test) {
        for (p, t) in pred.iter().zip(&sample.target) {
            sse += (p - t) * (p - t);
            count += 1;
        }
    }
    let rmse = (sse / count.max(1) as f64).sqrt();

    // Map onto the simulated mesh and co-anneal a few windows.
    let d = pipeline::decompose_model(&model, &p, scale, 0.2, PatternKind::DMesh, seed);
    let hw = pipeline::hw_config(&p, scale);
    let mut rng = StdRng::seed_from_u64(seed ^ 0x7e1e);
    // One machine serves every window: programming the mesh consumes no
    // RNG draws, and the machine-owned run buffers (and workspace) are
    // reused across samples, so the timed loop stays allocation-free
    // after the first window without changing a single result bit.
    let mut machine = MappedMachine::new(&d, hw.lanes).expect("mapping");
    machine.set_telemetry(sink.clone());
    machine.set_tracing(scope.clone());
    for sample in p.test.iter().take(mapped_cap) {
        machine.load_sample(sample, &mut rng).expect("load sample");
        let report = machine.run(&hw, &mut rng);
        assert!(report.anneal.sim_time_ns > 0.0);
    }
    rmse
}

/// Asserts the acceptance condition on the instrumented snapshot: all
/// four instrument families present at non-zero counts.
fn assert_families(snapshot: &MetricsSnapshot) {
    for (family, probe) in [
        ("anneal", "anneal.runs"),
        ("guard", "guard.runs"),
        ("train", "train.ridge_fits"),
        ("hw", "hw.coanneal_runs"),
    ] {
        assert!(
            snapshot.families().iter().any(|f| f == family),
            "family {family} missing from snapshot"
        );
        assert!(
            snapshot.counter(probe) > 0,
            "core instrument {probe} recorded no activity"
        );
    }
}

fn write_report(report: &TelemetryBenchReport, out: &Path) -> std::io::Result<PathBuf> {
    std::fs::create_dir_all(out)?;
    let path = out.join("BENCH_telemetry.json");
    let json = serde_json::to_string_pretty(report).expect("serialise telemetry report");
    std::fs::write(&path, json + "\n")?;
    Ok(path)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut smoke = false;
    let mut seed = 7u64;
    let mut out = PathBuf::from("results");
    let mut dataset = "covid".to_string();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--smoke" => smoke = true,
            "--seed" => {
                i += 1;
                seed = args[i].parse().expect("--seed takes an integer");
            }
            "--out" => {
                i += 1;
                out = PathBuf::from(&args[i]);
            }
            "--dataset" => {
                i += 1;
                dataset = args[i].clone();
            }
            other => {
                eprintln!("unknown flag {other}");
                eprintln!(
                    "usage: telemetry_profile [--smoke] [--seed N] [--out DIR] [--dataset NAME]"
                );
                std::process::exit(2);
            }
        }
        i += 1;
    }

    let scale = if smoke { Scale::quick() } else { Scale::full() };
    let mapped_cap = if smoke { 4 } else { 10 };
    let started = Instant::now();

    // Warm-up pass (page cache, allocator, thread pool), then timed
    // noop, enabled, and traced passes over the identical workload.
    let noop_scope = TraceScope::noop();
    run_pipeline(&dataset, &scale, seed, mapped_cap, &TelemetrySink::noop(), &noop_scope);
    let t0 = Instant::now();
    let rmse_noop =
        run_pipeline(&dataset, &scale, seed, mapped_cap, &TelemetrySink::noop(), &noop_scope);
    let wall_noop = t0.elapsed().as_secs_f64();
    let sink = TelemetrySink::enabled();
    let t1 = Instant::now();
    let rmse_enabled = run_pipeline(&dataset, &scale, seed, mapped_cap, &sink, &noop_scope);
    let wall_enabled = t1.elapsed().as_secs_f64();
    assert_eq!(
        rmse_noop.to_bits(),
        rmse_enabled.to_bits(),
        "telemetry sink changed pipeline bits"
    );
    // Third pass: metrics *and* per-window spans, against a fresh sink
    // so the reported snapshot stays that of the enabled pass.
    let spans = SpanCollector::enabled();
    let root = spans.reserve();
    let scope = TraceScope::new(spans.clone(), root, 0);
    let traced_start = spans.now();
    let t2 = Instant::now();
    let rmse_traced = run_pipeline(
        &dataset,
        &scale,
        seed,
        mapped_cap,
        &TelemetrySink::enabled(),
        &scope,
    );
    let wall_traced = t2.elapsed().as_secs_f64();
    spans.record_with_id(root, root, 0, "bench.pipeline", traced_start, &[]);
    assert_eq!(
        rmse_noop.to_bits(),
        rmse_traced.to_bits(),
        "span collector changed pipeline bits"
    );
    let trace_spans = spans.snapshot().len();
    assert!(
        trace_spans > 1,
        "the traced pass must record anneal spans, got {trace_spans}"
    );

    let snapshot = sink.snapshot();
    assert_families(&snapshot);
    let overhead = wall_enabled / wall_noop - 1.0;
    let tracing_overhead = wall_traced / wall_noop - 1.0;
    let report = TelemetryBenchReport {
        command: format!("telemetry_profile --seed {seed}{}", if smoke { " --smoke" } else { "" }),
        dataset,
        seed,
        smoke,
        windows: snapshot.counter("guard.runs") as usize,
        mapped_windows: mapped_cap,
        rmse: rmse_enabled,
        wall_noop_s: wall_noop,
        wall_enabled_s: wall_enabled,
        wall_traced_s: wall_traced,
        overhead_fraction: overhead,
        tracing_overhead_fraction: tracing_overhead,
        trace_spans,
        snapshot,
    };
    let path = write_report(&report, &out).expect("write BENCH_telemetry.json");
    println!("{}", report.snapshot.summary_table());
    eprintln!(
        "[telemetry profile: rmse {:.4}, noop {:.2}s, enabled {:.2}s ({:+.2}%), traced {:.2}s \
         ({:+.2}%, {} spans), report at {}]",
        report.rmse,
        wall_noop,
        wall_enabled,
        overhead * 100.0,
        wall_traced,
        tracing_overhead * 100.0,
        trace_spans,
        path.display()
    );
    if smoke {
        let bound = wall_noop * (1.0 + OVERHEAD_BOUND) + OVERHEAD_SLACK_S;
        assert!(
            wall_enabled <= bound,
            "smoke overhead bound violated: enabled {wall_enabled:.3}s > bound {bound:.3}s \
             (noop {wall_noop:.3}s)"
        );
        assert!(
            wall_traced <= bound,
            "smoke tracing bound violated: traced {wall_traced:.3}s > bound {bound:.3}s \
             (noop {wall_noop:.3}s)"
        );
        // The report must parse back under the frozen schema.
        let parsed: MetricsSnapshot = serde_json::from_str(
            &serde_json::to_string(&report.snapshot).expect("re-serialise snapshot"),
        )
        .expect("snapshot round-trip");
        assert_eq!(parsed, report.snapshot);
        eprintln!("[smoke ok: overhead bound {bound:.3}s, schema round-trip verified]");
    }
    eprintln!("[done in {:.1}s]", started.elapsed().as_secs_f64());
}
