//! Scaling profile: multigrid warm starts vs cold and chained anneals
//! on planted-partition graphs from 10k to 200k nodes.
//!
//! ```text
//! scaling_profile [--smoke] [--seed N] [--out DIR]
//! ```
//!
//! For each graph size the bench builds a sparse community-structured
//! machine (planted partition, 2% of nodes clamped to block-correlated
//! observations that drift across three forecast windows), computes the
//! analytic fixed point by damped Jacobi iteration as ground truth, and
//! solves every window three ways:
//!
//! * **cold** — fresh random free state per window;
//! * **chained** — window `w` starts from window `w-1`'s settled state;
//! * **multigrid** — fresh random free state, then a Louvain-coarsened
//!   coarse solve prolongated back as the warm start. The hierarchy is
//!   built once on the first window ([`dsgl_ising::build_hierarchy`])
//!   and reused across the drifting windows
//!   ([`dsgl_ising::warm_start_with`]) — partitions depend only on the
//!   coupling topology and clamp mask, not the clamp values.
//!
//! `BENCH_scaling.json` records wall time, integrator steps, and RMSE
//! against the fixed point for every (size, strategy) cell, plus the
//! multigrid hierarchy shape. `--smoke` runs one CI-sized graph and
//! asserts the determinism contract (two multigrid runs are
//! bit-identical) and the steps floor (multigrid saves at least
//! [`SMOKE_STEP_SAVINGS`] of the cold fine steps) — bounds that, unlike
//! wall time, are stable on shared CI runners.

use dsgl_graph::generators::planted_partition;
use dsgl_ising::{
    build_hierarchy, warm_start_with, AnnealConfig, EngineMode, MultigridHierarchy,
    MultigridOptions, RealValuedDspu, SparseCoupling,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;
use std::path::{Path, PathBuf};
use std::time::Instant;

/// Forecast windows per size; clamp observations drift between them.
const WINDOWS: usize = 3;
/// One node in `CLAMP_EVERY` is a clamped observation: sparse
/// anchoring, so inferred values must propagate through the graph —
/// many communities carry no observation at all and are informed only
/// through weak inter-community links.
const CLAMP_EVERY: usize = 50;
/// Smoke bound: multigrid must save at least this fraction of the cold
/// strategy's fine integrator steps.
const SMOKE_STEP_SAVINGS: f64 = 0.30;
/// Full-run bound (the README acceptance line): multigrid wall time
/// must be at least this factor below cold at 100k+ nodes.
const WALL_SPEEDUP_BOUND: f64 = 2.0;
/// RMSE parity bound: multigrid RMSE may exceed cold RMSE by at most
/// this relative margin.
const RMSE_PARITY: f64 = 0.01;
/// Diagonal dominance margin: `hᵢ = -(margin + Σⱼ|Jᵢⱼ|)`. The margin
/// sets the relaxation rate of the slowest (inter-community) modes —
/// exactly the modes the coarse grid solves — so a small margin is the
/// regime where warm starts matter.
const DIAGONAL_MARGIN: f64 = 0.05;

/// SplitMix64 finaliser → uniform in `[0, 1)`. Pure arithmetic so the
/// drifting clamp schedule is reproducible by construction.
fn hash01(mut x: u64) -> f64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^= x >> 31;
    (x >> 11) as f64 / (1u64 << 53) as f64
}

/// Clamp value for a node in `block` at forecast window `w`: a
/// block-correlated base level plus a small per-window drift, kept well
/// inside the rails. Observations are block-coherent, so the coarse
/// model sees them exactly.
fn clamp_value(block: usize, window: usize) -> f64 {
    let base = hash01(block as u64 + 1) - 0.5;
    let drift = (hash01((block as u64) << 20 | (window as u64 + 1)) - 0.5) * 0.5;
    (0.5 * base + drift).clamp(-0.8, 0.8)
}

struct Problem {
    machine: RealValuedDspu,
    /// Clamped node → its community block.
    clamped: Vec<(usize, usize)>,
    free: Vec<usize>,
    /// Free-node adjacency over the *full* node set, for Jacobi.
    adjacency: Vec<Vec<(u32, f64)>>,
    h: Vec<f64>,
    edge_count: usize,
    communities: usize,
}

/// Builds the sparse machine and ground-truth structures for one size.
fn build_problem(n: usize, seed: u64) -> Problem {
    let communities = (n / 256).max(4);
    let mut rng = StdRng::seed_from_u64(seed ^ n as u64);
    let graph = planted_partition(n, communities, 8, 2, &mut rng);
    let block_len = n.div_ceil(communities);
    let mut adjacency: Vec<Vec<(u32, f64)>> = vec![Vec::new(); n];
    let mut row_sum = vec![0.0f64; n];
    let entries: Vec<(u32, u32, f64)> = graph
        .edges()
        .iter()
        .map(|&(u, v, w)| {
            // Soften the generator's inter-community weight further:
            // cross-block information flows through many weak links, the
            // regime where a coarse-grid solve pays off.
            let w = if u / block_len == v / block_len { w } else { w * 0.2 };
            adjacency[u].push((v as u32, w));
            adjacency[v].push((u as u32, w));
            row_sum[u] += w.abs();
            row_sum[v] += w.abs();
            (u as u32, v as u32, w)
        })
        .collect();
    let h: Vec<f64> = row_sum.iter().map(|s| -(DIAGONAL_MARGIN + s)).collect();
    let coupling = SparseCoupling::from_entries(n, &entries).expect("valid entries");
    let mut machine = RealValuedDspu::from_sparse(coupling, h.clone()).expect("valid machine");
    let mut clamped = Vec::new();
    let mut free = Vec::new();
    for i in 0..n {
        if i % CLAMP_EVERY == 0 {
            clamped.push((i, i / block_len));
        } else {
            free.push(i);
        }
    }
    for &(i, b) in &clamped {
        machine.clamp(i, clamp_value(b, 0)).expect("in range");
    }
    Problem {
        machine,
        clamped,
        free,
        adjacency,
        h,
        edge_count: entries.len(),
        communities,
    }
}

/// Damped Jacobi iteration to the analytic fixed point of the free
/// subsystem for window `w`. Diagonal dominance (`|hᵢ| = 1 + Σ|Jᵢⱼ|`)
/// makes this a contraction, so it converges to the same point the
/// machine settles to.
fn fixed_point(p: &Problem, window: usize) -> Vec<f64> {
    let n = p.adjacency.len();
    let mut state = vec![0.0f64; n];
    for &(i, b) in &p.clamped {
        state[i] = clamp_value(b, window);
    }
    let mut next = state.clone();
    for _ in 0..2_000 {
        let mut max_delta = 0.0f64;
        for &i in &p.free {
            let mut dot = 0.0;
            for &(j, w) in &p.adjacency[i] {
                dot += w * state[j as usize];
            }
            let v = dot / (-p.h[i]);
            max_delta = max_delta.max((v - state[i]).abs());
            next[i] = v;
        }
        for &i in &p.free {
            state[i] = next[i];
        }
        if max_delta < 1e-12 {
            break;
        }
    }
    state
}

/// RMSE of the machine's free block against the ground-truth state.
fn free_rmse(machine: &RealValuedDspu, truth: &[f64], free: &[usize]) -> f64 {
    let sq: f64 = free
        .iter()
        .map(|&i| (machine.state()[i] - truth[i]).powi(2))
        .sum();
    (sq / free.len() as f64).sqrt()
}

#[derive(Clone, Copy, PartialEq)]
enum Strategy {
    Cold,
    Chained,
    Multigrid,
}

#[derive(Serialize)]
struct StrategyPoint {
    wall_s: f64,
    fine_steps: usize,
    rmse: f64,
    converged_windows: usize,
    /// Multigrid only: coarse integrator steps across all windows.
    #[serde(skip_serializing_if = "Option::is_none")]
    coarse_steps: Option<usize>,
    /// Multigrid only: hierarchy sizes of the last window's V-cycle.
    #[serde(skip_serializing_if = "Option::is_none")]
    coarse_nodes: Option<Vec<usize>>,
    /// Multigrid only: levels actually built (0 ⇒ fell back to cold).
    #[serde(skip_serializing_if = "Option::is_none")]
    levels: Option<usize>,
}

/// Runs one strategy over all windows and returns metrics plus the
/// final free-state bits (for the determinism check). `truths` holds
/// the precomputed per-window fixed points, so the timed region covers
/// only the solver work: clamp updates, warm starts, and the anneal.
fn run_strategy(
    p: &Problem,
    strategy: Strategy,
    cfg: &AnnealConfig,
    seed: u64,
    truths: &[Vec<f64>],
) -> (StrategyPoint, Vec<u64>) {
    let mut machine = p.machine.clone();
    let opts = MultigridOptions {
        levels: 3,
        coarse_tol: 1e-6,
    };
    let mut fine_steps = 0usize;
    let mut coarse_steps = 0usize;
    let mut levels = 0usize;
    let mut coarse_nodes = Vec::new();
    let mut converged = 0usize;
    let mut sq_sum = 0.0f64;
    let mut count = 0usize;
    let mut bits = Vec::new();
    let mut wall = 0.0f64;
    let mut hierarchy: Option<MultigridHierarchy> = None;
    for (w, truth) in truths.iter().enumerate().take(WINDOWS) {
        let t0 = Instant::now();
        for &(i, b) in &p.clamped {
            machine.clamp(i, clamp_value(b, w)).expect("in range");
        }
        // Chained keeps the previous window's settled free state; the
        // other strategies restart from the same seeded random state.
        if strategy != Strategy::Chained || w == 0 {
            let mut rng = StdRng::seed_from_u64(seed ^ (w as u64) << 32);
            machine.randomize_free(&mut rng);
        }
        if strategy == Strategy::Multigrid {
            // Louvain partitions depend only on topology and clamp
            // mask, so the first window pays the hierarchy build and
            // later windows only re-aggregate and re-solve.
            if hierarchy.is_none() {
                hierarchy = build_hierarchy(&machine, &opts);
            }
            if let Some(report) = hierarchy
                .as_ref()
                .and_then(|h| warm_start_with(&mut machine, h, &opts, cfg))
            {
                coarse_steps += report.coarse_steps;
                levels = report.levels;
                coarse_nodes = report.coarse_nodes.clone();
            }
        }
        let mut rng = StdRng::seed_from_u64(seed ^ 0xf1fe ^ (w as u64) << 32);
        let report = machine.run(cfg, &mut rng);
        wall += t0.elapsed().as_secs_f64();
        fine_steps += report.steps;
        converged += report.converged as usize;
        let r = free_rmse(&machine, truth, &p.free);
        sq_sum += r * r;
        count += 1;
        bits.extend(p.free.iter().map(|&i| machine.state()[i].to_bits()));
    }
    let point = StrategyPoint {
        wall_s: wall,
        fine_steps,
        rmse: (sq_sum / count as f64).sqrt(),
        converged_windows: converged,
        coarse_steps: (strategy == Strategy::Multigrid).then_some(coarse_steps),
        coarse_nodes: (strategy == Strategy::Multigrid).then_some(coarse_nodes),
        levels: (strategy == Strategy::Multigrid).then_some(levels),
    };
    (point, bits)
}

#[derive(Serialize)]
struct SizePoint {
    nodes: usize,
    edges: usize,
    communities: usize,
    clamped: usize,
    cold: StrategyPoint,
    chained: StrategyPoint,
    multigrid: StrategyPoint,
    wall_speedup_mg_vs_cold: f64,
    wall_speedup_mg_vs_chained: f64,
    step_savings_mg_vs_cold: f64,
}

#[derive(Serialize)]
struct ScalingReport {
    command: String,
    seed: u64,
    smoke: bool,
    windows: usize,
    clamp_fraction: f64,
    wall_speedup_bound: f64,
    rmse_parity: f64,
    sizes: Vec<SizePoint>,
}

fn write_report(report: &ScalingReport, out: &Path) -> std::io::Result<PathBuf> {
    std::fs::create_dir_all(out)?;
    let path = out.join("BENCH_scaling.json");
    let json = serde_json::to_string_pretty(report).expect("serialise scaling report");
    std::fs::write(&path, json + "\n")?;
    Ok(path)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut smoke = false;
    let mut seed = 7u64;
    let mut out = PathBuf::from("results");
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--smoke" => smoke = true,
            "--seed" => {
                i += 1;
                seed = args[i].parse().expect("--seed takes an integer");
            }
            "--out" => {
                i += 1;
                out = PathBuf::from(&args[i]);
            }
            other => {
                eprintln!("unknown flag {other}");
                eprintln!("usage: scaling_profile [--smoke] [--seed N] [--out DIR]");
                std::process::exit(2);
            }
        }
        i += 1;
    }

    let sizes: &[usize] = if smoke {
        &[4_000]
    } else {
        &[10_000, 25_000, 50_000, 100_000, 200_000]
    };
    let cfg = AnnealConfig {
        mode: EngineMode::adaptive(),
        max_time_ns: 25_000.0,
        tolerance: 1e-5,
        ..AnnealConfig::default()
    };
    let started = Instant::now();
    let mut points = Vec::new();
    for &n in sizes {
        let p = build_problem(n, seed);
        eprintln!(
            "[n={n}: {} edges, {} communities, {} clamped]",
            p.edge_count,
            p.communities,
            p.clamped.len()
        );
        let truths: Vec<Vec<f64>> = (0..WINDOWS).map(|w| fixed_point(&p, w)).collect();
        let (cold, _) = run_strategy(&p, Strategy::Cold, &cfg, seed, &truths);
        let (chained, _) = run_strategy(&p, Strategy::Chained, &cfg, seed, &truths);
        let (mg, mg_bits) = run_strategy(&p, Strategy::Multigrid, &cfg, seed, &truths);
        if smoke {
            let (_, again) = run_strategy(&p, Strategy::Multigrid, &cfg, seed, &truths);
            assert_eq!(
                mg_bits, again,
                "multigrid reruns must be bit-identical at n={n}"
            );
        }
        eprintln!(
            "[n={n}: cold {:.2}s/{} steps/rmse {:.2e} | chained {:.2}s/{} | mg {:.2}s/{} steps (+{} coarse, {} levels)/rmse {:.2e}]",
            cold.wall_s,
            cold.fine_steps,
            cold.rmse,
            chained.wall_s,
            chained.fine_steps,
            mg.wall_s,
            mg.fine_steps,
            mg.coarse_steps.unwrap_or(0),
            mg.levels.unwrap_or(0),
            mg.rmse,
        );
        points.push(SizePoint {
            nodes: n,
            edges: p.edge_count,
            communities: p.communities,
            clamped: p.clamped.len(),
            wall_speedup_mg_vs_cold: cold.wall_s / mg.wall_s,
            wall_speedup_mg_vs_chained: chained.wall_s / mg.wall_s,
            step_savings_mg_vs_cold: 1.0 - mg.fine_steps as f64 / cold.fine_steps as f64,
            cold,
            chained,
            multigrid: mg,
        });
    }
    let report = ScalingReport {
        command: format!(
            "scaling_profile --seed {seed}{}",
            if smoke { " --smoke" } else { "" }
        ),
        seed,
        smoke,
        windows: WINDOWS,
        clamp_fraction: 1.0 / CLAMP_EVERY as f64,
        wall_speedup_bound: WALL_SPEEDUP_BOUND,
        rmse_parity: RMSE_PARITY,
        sizes: points,
    };
    let path = write_report(&report, &out).expect("write BENCH_scaling.json");
    for sp in &report.sizes {
        // RMSE parity holds at every size, in smoke and full runs alike.
        assert!(
            sp.multigrid.rmse <= sp.cold.rmse * (1.0 + RMSE_PARITY) + 1e-12,
            "n={}: multigrid rmse {:.3e} exceeds cold {:.3e} beyond parity",
            sp.nodes,
            sp.multigrid.rmse,
            sp.cold.rmse
        );
        assert_eq!(
            sp.multigrid.converged_windows, WINDOWS,
            "n={}: multigrid windows must converge",
            sp.nodes
        );
    }
    if smoke {
        let sp = &report.sizes[0];
        assert!(
            sp.step_savings_mg_vs_cold >= SMOKE_STEP_SAVINGS,
            "step savings {:.2} below the {SMOKE_STEP_SAVINGS:.2} floor",
            sp.step_savings_mg_vs_cold
        );
        eprintln!(
            "[smoke ok: bit-identity verified, step savings {:.0}%, rmse parity held]",
            sp.step_savings_mg_vs_cold * 100.0
        );
    } else {
        for sp in report.sizes.iter().filter(|sp| sp.nodes >= 100_000) {
            assert!(
                sp.wall_speedup_mg_vs_cold >= WALL_SPEEDUP_BOUND,
                "n={}: wall speedup vs cold {:.2}x below the {WALL_SPEEDUP_BOUND:.1}x bound",
                sp.nodes,
                sp.wall_speedup_mg_vs_cold
            );
            assert!(
                sp.wall_speedup_mg_vs_chained >= WALL_SPEEDUP_BOUND,
                "n={}: wall speedup vs chained {:.2}x below the {WALL_SPEEDUP_BOUND:.1}x bound",
                sp.nodes,
                sp.wall_speedup_mg_vs_chained
            );
        }
    }
    eprintln!(
        "[scaling profile: report at {}, done in {:.1}s]",
        path.display(),
        started.elapsed().as_secs_f64()
    );
}
