//! Dense-kernel profile: naive vs cache-blocked vs SIMD GEMM family.
//!
//! ```text
//! gemm_profile [--smoke] [--seed N] [--out DIR]
//! ```
//!
//! Times every blocked kernel against its naive sequential reference
//! across three shape classes (small: below the blocked-dispatch
//! threshold; medium and large: panel-packed paths) and writes
//! `BENCH_gemm.json` under the output directory (default `results/`)
//! with per-entry wall times, speedups, and a bit-parity flag. Each
//! blocked kernel is timed twice in the same process — once with the
//! explicit-SIMD micro-kernels switched off (the scalar blocked path)
//! and once with them on — so the `simd_speedup` column isolates the
//! vectorisation win from the cache-blocking win. In builds without the
//! `simd` feature both runs take the scalar path and the column sits
//! near 1.0.
//!
//! Every entry also carries an FNV-1a checksum over the output bits.
//! The kernels' bit-exactness contract (naive == blocked == SIMD for
//! all inputs) means the checksums are build-invariant: CI runs this
//! profile under `--no-default-features --features parallel` and under
//! the default features and asserts the `output_checksum` fields match.
//!
//! `--smoke` runs the CI-sized workload and additionally asserts the
//! acceptance conditions: every entry is bit-identical to its naive
//! reference, the large-shape GEMM class (all five kernels at the
//! large shape, wall-time aggregated) shows at least
//! [`LARGE_CLASS_SPEEDUP_FLOOR`]× wall-time reduction over naive, and —
//! when the SIMD path is live — at least [`SIMD_SPEEDUP_FLOOR`]× over
//! the scalar blocked kernels. The large shape is sized so the packed
//! operand exceeds L2 — the regime the blocked kernels exist for; at
//! cache-resident shapes the naive loops are already near machine
//! balance and the JSON records that honestly.

use serde::Serialize;
use std::path::{Path, PathBuf};
use std::time::Instant;

use dsgl_nn::kernels;

/// Acceptance floor for the large-shape GEMM class (aggregate naive
/// wall over aggregate scalar-blocked wall) under `--smoke`.
const LARGE_CLASS_SPEEDUP_FLOOR: f64 = 2.0;

/// Acceptance floor for the SIMD micro-kernels on the large shape class
/// (aggregate scalar-blocked wall over aggregate SIMD wall) under
/// `--smoke`, checked only when [`kernels::simd_active`] reports the
/// vector path is live.
const SIMD_SPEEDUP_FLOOR: f64 = 1.5;

#[derive(Serialize)]
struct KernelEntry {
    class: String,
    op: String,
    m: usize,
    k: usize,
    n: usize,
    reps: usize,
    naive_s: f64,
    /// Blocked kernel with the SIMD micro-kernels switched off.
    blocked_s: f64,
    /// Blocked kernel with the SIMD micro-kernels on (equals the scalar
    /// path in builds without the `simd` feature).
    simd_s: f64,
    /// `naive_s / blocked_s` — above 1.0 means the blocked path wins.
    speedup: f64,
    /// `blocked_s / simd_s` — the vectorisation win in isolation.
    simd_speedup: f64,
    /// Blocked and SIMD outputs bit-identical (`f64::to_bits`) to the
    /// naive one.
    bit_identical: bool,
    /// FNV-1a over the blocked output bits — build-invariant by the
    /// bit-exactness contract.
    checksum: String,
}

#[derive(Serialize)]
struct GemmBenchReport {
    command: String,
    seed: u64,
    smoke: bool,
    /// Whether the explicit-SIMD micro-kernels were live for the
    /// `simd_s` timings (feature compiled in + AVX detected).
    simd_active: bool,
    /// Aggregate speedup of the large shape class: total naive wall
    /// time over total scalar-blocked wall time across all five kernels
    /// (the cache-blocking headline number).
    large_class_speedup: f64,
    /// Aggregate SIMD speedup of the large shape class: total
    /// scalar-blocked wall over total SIMD wall (the vectorisation
    /// headline number).
    large_class_simd_speedup: f64,
    /// Speedup of the plain large-shape `gemm` entry alone (naive over
    /// scalar-blocked).
    large_gemm_speedup: f64,
    /// FNV-1a over every entry checksum in order — one value CI can
    /// compare across scalar and SIMD builds.
    output_checksum: String,
    entries: Vec<KernelEntry>,
}

/// Deterministic xorshift fill with ~12 % exact zeros so the naive
/// zero-skip path is active, as in real couplings.
fn fill(len: usize, seed: u64) -> Vec<f64> {
    let mut x = seed | 1;
    (0..len)
        .map(|_| {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            if x.is_multiple_of(8) {
                0.0
            } else {
                (x % 2000) as f64 / 1000.0 - 1.0
            }
        })
        .collect()
}

fn bits_eq(a: &[f64], b: &[f64]) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits())
}

/// FNV-1a (64-bit) over the little-endian bit patterns of `values`.
fn fnv1a_bits(values: &[f64]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for v in values {
        for byte in v.to_bits().to_le_bytes() {
            h ^= u64::from(byte);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

/// FNV-1a (64-bit) over a byte string.
fn fnv1a_str(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in s.bytes() {
        h ^= u64::from(byte);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Times `reps` calls of `f` (each into a re-zeroed `out`), returning
/// (wall seconds, final output). One untimed warm-up call first.
fn time_reps(reps: usize, out_len: usize, mut f: impl FnMut(&mut [f64])) -> (f64, Vec<f64>) {
    let mut out = vec![0.0; out_len];
    f(&mut out);
    let t0 = Instant::now();
    for _ in 0..reps {
        out.iter_mut().for_each(|v| *v = 0.0);
        f(&mut out);
    }
    (t0.elapsed().as_secs_f64(), out)
}

/// Profiles one kernel: naive reference, blocked with SIMD off, blocked
/// with SIMD on — all in one process so the three timings share cache
/// and frequency state. Leaves the SIMD toggle on.
#[allow(clippy::too_many_arguments)]
fn profile_kernel(
    class: &str,
    op: &str,
    (m, k, n): (usize, usize, usize),
    reps: usize,
    out_len: usize,
    mut naive: impl FnMut(&mut [f64]),
    mut blocked: impl FnMut(&mut [f64]),
    entries: &mut Vec<KernelEntry>,
) {
    let (naive_s, naive_out) = time_reps(reps, out_len, &mut naive);
    kernels::set_simd_enabled(false);
    let (blocked_s, blocked_out) = time_reps(reps, out_len, &mut blocked);
    kernels::set_simd_enabled(true);
    let (simd_s, simd_out) = time_reps(reps, out_len, &mut blocked);
    entries.push(KernelEntry {
        class: class.into(),
        op: op.into(),
        m,
        k,
        n,
        reps,
        naive_s,
        blocked_s,
        simd_s,
        speedup: naive_s / blocked_s,
        simd_speedup: blocked_s / simd_s,
        bit_identical: bits_eq(&naive_out, &blocked_out) && bits_eq(&naive_out, &simd_out),
        checksum: format!("{:016x}", fnv1a_bits(&blocked_out)),
    });
}

fn profile_class(
    class: &str,
    m: usize,
    k: usize,
    n: usize,
    reps: usize,
    seed: u64,
    entries: &mut Vec<KernelEntry>,
) {
    let a = fill(m * k, seed);
    let b = fill(k * n, seed.rotate_left(17) ^ 0x9E37_79B9);
    let bt = fill(n * k, seed.rotate_left(29) ^ 0x7F4A_7C15);
    let xv = fill(k, seed.rotate_left(41) ^ 0x55AA);

    // out = A·B
    profile_kernel(
        class,
        "gemm",
        (m, k, n),
        reps,
        m * n,
        |o| kernels::naive_gemm_into(&a, m, k, &b, n, o),
        |o| kernels::gemm_into(&a, m, k, &b, n, o),
        entries,
    );

    // out = AᵀB with the shared row dim `m`: A is m×k, B here is m×n.
    let b2 = fill(m * n, seed.rotate_left(5) ^ 0x1B2C_3D4E);
    profile_kernel(
        class,
        "gemm_t",
        (m, k, n),
        reps,
        k * n,
        |o| kernels::naive_gemm_t_into(&a, m, k, &b2, n, o),
        |o| kernels::gemm_t_into(&a, m, k, &b2, n, o),
        entries,
    );

    // Gram: SYRK upper-triangle + mirror vs full naive AᵀA.
    profile_kernel(
        class,
        "syrk",
        (m, k, k),
        reps,
        k * k,
        |o| kernels::naive_gemm_t_into(&a, m, k, &a, k, o),
        |o| kernels::syrk_t_into(&a, m, k, o),
        entries,
    );

    // out = A·Bᵀ with B: n×k.
    profile_kernel(
        class,
        "gemm_nt",
        (m, k, n),
        reps,
        m * n,
        |o| kernels::naive_gemm_nt_into(&a, m, k, &bt, n, o),
        |o| kernels::gemm_nt_into(&a, m, k, &bt, n, o),
        entries,
    );

    // Mat-vec: 4-row blocked stream vs naive per-row dot.
    profile_kernel(
        class,
        "matvec",
        (m, k, 1),
        reps * 32,
        m,
        |o| kernels::naive_matvec_into(&a, k, &xv, o),
        |o| kernels::matvec_rows_into(&a, k, &xv, o),
        entries,
    );
}

fn write_report(report: &GemmBenchReport, out: &Path) -> std::io::Result<PathBuf> {
    std::fs::create_dir_all(out)?;
    let path = out.join("BENCH_gemm.json");
    let json = serde_json::to_string_pretty(report).expect("serialise gemm report");
    std::fs::write(&path, json + "\n")?;
    Ok(path)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut smoke = false;
    let mut seed = 7u64;
    let mut out = PathBuf::from("results");
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--smoke" => smoke = true,
            "--seed" => {
                i += 1;
                seed = args[i].parse().expect("--seed takes an integer");
            }
            "--out" => {
                i += 1;
                out = PathBuf::from(&args[i]);
            }
            other => {
                eprintln!("unknown flag {other}");
                eprintln!("usage: gemm_profile [--smoke] [--seed N] [--out DIR]");
                std::process::exit(2);
            }
        }
        i += 1;
    }

    let mut entries = Vec::new();
    // Small sits below the blocked-dispatch work threshold (the
    // kernels fall through to the naive loops; expected speedup ≈ 1),
    // medium and large engage the panel-packed paths.
    profile_class("small", 24, 32, 24, if smoke { 50 } else { 200 }, seed, &mut entries);
    profile_class("medium", 160, 192, 160, if smoke { 8 } else { 20 }, seed, &mut entries);
    // Large: the packed right-hand operand (k·n doubles) is 4.5 MiB
    // (smoke) / 8 MiB (full) — past any L2, the regime blocking is for.
    let (lm, lk, ln) = if smoke { (320, 768, 768) } else { (512, 1024, 1024) };
    profile_class("large", lm, lk, ln, if smoke { 3 } else { 5 }, seed, &mut entries);

    let large_gemm_speedup = entries
        .iter()
        .find(|e| e.class == "large" && e.op == "gemm")
        .map(|e| e.speedup)
        .unwrap_or(0.0);
    let (lnaive, lblocked, lsimd) = entries
        .iter()
        .filter(|e| e.class == "large")
        .fold((0.0, 0.0, 0.0), |(ns, bs, ss), e| {
            (ns + e.naive_s, bs + e.blocked_s, ss + e.simd_s)
        });
    let large_class_speedup = lnaive / lblocked;
    let large_class_simd_speedup = lblocked / lsimd;
    let simd_active = kernels::simd_active();
    let checksum_stream: String = entries.iter().map(|e| e.checksum.as_str()).collect();
    let report = GemmBenchReport {
        command: format!(
            "gemm_profile --seed {seed}{}",
            if smoke { " --smoke" } else { "" }
        ),
        seed,
        smoke,
        simd_active,
        large_class_speedup,
        large_class_simd_speedup,
        large_gemm_speedup,
        output_checksum: format!("{:016x}", fnv1a_str(&checksum_stream)),
        entries,
    };
    let path = write_report(&report, &out).expect("write BENCH_gemm.json");
    for e in &report.entries {
        eprintln!(
            "[{:<6} {:<7} {:>4}x{:<4}x{:<4} naive {:>8.4}s blocked {:>8.4}s simd {:>8.4}s  {:>5.2}x/{:>4.2}x  bits {}]",
            e.class,
            e.op,
            e.m,
            e.k,
            e.n,
            e.naive_s,
            e.blocked_s,
            e.simd_s,
            e.speedup,
            e.simd_speedup,
            if e.bit_identical { "ok" } else { "MISMATCH" }
        );
    }
    eprintln!(
        "[gemm profile: large class {:.2}x blocked, {:.2}x simd-over-blocked (simd {}), checksum {}, report at {}]",
        large_class_speedup,
        large_class_simd_speedup,
        if simd_active { "on" } else { "off" },
        report.output_checksum,
        path.display()
    );

    assert!(
        report.entries.iter().all(|e| e.bit_identical),
        "blocked/SIMD kernel diverged from naive reference bits"
    );
    if smoke {
        assert!(
            large_class_speedup >= LARGE_CLASS_SPEEDUP_FLOOR,
            "large-shape GEMM class speedup {large_class_speedup:.2}x below the \
             {LARGE_CLASS_SPEEDUP_FLOOR:.1}x acceptance floor"
        );
        if simd_active {
            assert!(
                large_class_simd_speedup >= SIMD_SPEEDUP_FLOOR,
                "large-shape SIMD speedup {large_class_simd_speedup:.2}x below the \
                 {SIMD_SPEEDUP_FLOOR:.1}x acceptance floor"
            );
        }
    }
}
