//! Dense-kernel profile: naive vs cache-blocked GEMM family.
//!
//! ```text
//! gemm_profile [--smoke] [--seed N] [--out DIR]
//! ```
//!
//! Times every blocked kernel against its naive sequential reference
//! across three shape classes (small: below the blocked-dispatch
//! threshold; medium and large: panel-packed paths) and writes
//! `BENCH_gemm.json` under the output directory (default `results/`)
//! with per-entry wall times, speedups, and a bit-parity flag.
//!
//! `--smoke` runs the CI-sized workload and additionally asserts the
//! acceptance conditions: every entry is bit-identical to its naive
//! reference, and the large-shape GEMM class (all five kernels at the
//! large shape, wall-time aggregated) shows at least
//! [`LARGE_CLASS_SPEEDUP_FLOOR`]× wall-time reduction. The large shape
//! is sized so the packed operand exceeds L2 — the regime the blocked
//! kernels exist for; at cache-resident shapes the naive loops are
//! already near machine balance and the JSON records that honestly.

use serde::Serialize;
use std::path::{Path, PathBuf};
use std::time::Instant;

use dsgl_nn::kernels;

/// Acceptance floor for the large-shape GEMM class (aggregate naive
/// wall over aggregate blocked wall) under `--smoke`.
const LARGE_CLASS_SPEEDUP_FLOOR: f64 = 2.0;

#[derive(Serialize)]
struct KernelEntry {
    class: String,
    op: String,
    m: usize,
    k: usize,
    n: usize,
    reps: usize,
    naive_s: f64,
    blocked_s: f64,
    /// `naive_s / blocked_s` — above 1.0 means the blocked path wins.
    speedup: f64,
    /// Blocked output bit-identical (`f64::to_bits`) to the naive one.
    bit_identical: bool,
}

#[derive(Serialize)]
struct GemmBenchReport {
    command: String,
    seed: u64,
    smoke: bool,
    /// Aggregate speedup of the large shape class: total naive wall
    /// time over total blocked wall time across all five kernels (the
    /// headline number).
    large_class_speedup: f64,
    /// Speedup of the plain large-shape `gemm` entry alone.
    large_gemm_speedup: f64,
    entries: Vec<KernelEntry>,
}

/// Deterministic xorshift fill with ~12 % exact zeros so the naive
/// zero-skip path is active, as in real couplings.
fn fill(len: usize, seed: u64) -> Vec<f64> {
    let mut x = seed | 1;
    (0..len)
        .map(|_| {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            if x.is_multiple_of(8) {
                0.0
            } else {
                (x % 2000) as f64 / 1000.0 - 1.0
            }
        })
        .collect()
}

fn bits_eq(a: &[f64], b: &[f64]) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits())
}

/// Times `reps` calls of `f` (each into a re-zeroed `out`), returning
/// (wall seconds, final output). One untimed warm-up call first.
fn time_reps(reps: usize, out_len: usize, mut f: impl FnMut(&mut [f64])) -> (f64, Vec<f64>) {
    let mut out = vec![0.0; out_len];
    f(&mut out);
    let t0 = Instant::now();
    for _ in 0..reps {
        out.iter_mut().for_each(|v| *v = 0.0);
        f(&mut out);
    }
    (t0.elapsed().as_secs_f64(), out)
}

#[allow(clippy::too_many_arguments)]
fn profile_class(
    class: &str,
    m: usize,
    k: usize,
    n: usize,
    reps: usize,
    seed: u64,
    entries: &mut Vec<KernelEntry>,
) {
    let a = fill(m * k, seed);
    let b = fill(k * n, seed.rotate_left(17) ^ 0x9E37_79B9);
    let bt = fill(n * k, seed.rotate_left(29) ^ 0x7F4A_7C15);
    let xv = fill(k, seed.rotate_left(41) ^ 0x55AA);

    // out = A·B
    let (naive_s, naive_out) = time_reps(reps, m * n, |o| kernels::naive_gemm_into(&a, m, k, &b, n, o));
    let (blocked_s, blocked_out) = time_reps(reps, m * n, |o| kernels::gemm_into(&a, m, k, &b, n, o));
    entries.push(KernelEntry {
        class: class.into(),
        op: "gemm".into(),
        m,
        k,
        n,
        reps,
        naive_s,
        blocked_s,
        speedup: naive_s / blocked_s,
        bit_identical: bits_eq(&naive_out, &blocked_out),
    });

    // out = AᵀB with the shared row dim `m`: A is m×k, B here is the
    // m×n slice of `b` (reuse the front of the buffer when it fits).
    let b2 = fill(m * n, seed.rotate_left(5) ^ 0x1B2C_3D4E);
    let (naive_s, naive_out) = time_reps(reps, k * n, |o| kernels::naive_gemm_t_into(&a, m, k, &b2, n, o));
    let (blocked_s, blocked_out) = time_reps(reps, k * n, |o| kernels::gemm_t_into(&a, m, k, &b2, n, o));
    entries.push(KernelEntry {
        class: class.into(),
        op: "gemm_t".into(),
        m,
        k,
        n,
        reps,
        naive_s,
        blocked_s,
        speedup: naive_s / blocked_s,
        bit_identical: bits_eq(&naive_out, &blocked_out),
    });

    // Gram: SYRK upper-triangle + mirror vs full naive AᵀA.
    let (naive_s, naive_out) = time_reps(reps, k * k, |o| kernels::naive_gemm_t_into(&a, m, k, &a, k, o));
    let (blocked_s, blocked_out) = time_reps(reps, k * k, |o| kernels::syrk_t_into(&a, m, k, o));
    entries.push(KernelEntry {
        class: class.into(),
        op: "syrk".into(),
        m,
        k,
        n: k,
        reps,
        naive_s,
        blocked_s,
        speedup: naive_s / blocked_s,
        bit_identical: bits_eq(&naive_out, &blocked_out),
    });

    // out = A·Bᵀ with B: n×k.
    let (naive_s, naive_out) = time_reps(reps, m * n, |o| kernels::naive_gemm_nt_into(&a, m, k, &bt, n, o));
    let (blocked_s, blocked_out) = time_reps(reps, m * n, |o| kernels::gemm_nt_into(&a, m, k, &bt, n, o));
    entries.push(KernelEntry {
        class: class.into(),
        op: "gemm_nt".into(),
        m,
        k,
        n,
        reps,
        naive_s,
        blocked_s,
        speedup: naive_s / blocked_s,
        bit_identical: bits_eq(&naive_out, &blocked_out),
    });

    // Mat-vec: 4-row blocked stream vs naive per-row dot.
    let mv_reps = reps * 32;
    let (naive_s, naive_out) = time_reps(mv_reps, m, |o| kernels::naive_matvec_into(&a, k, &xv, o));
    let (blocked_s, blocked_out) = time_reps(mv_reps, m, |o| kernels::matvec_rows_into(&a, k, &xv, o));
    entries.push(KernelEntry {
        class: class.into(),
        op: "matvec".into(),
        m,
        k,
        n: 1,
        reps: mv_reps,
        naive_s,
        blocked_s,
        speedup: naive_s / blocked_s,
        bit_identical: bits_eq(&naive_out, &blocked_out),
    });
}

fn write_report(report: &GemmBenchReport, out: &Path) -> std::io::Result<PathBuf> {
    std::fs::create_dir_all(out)?;
    let path = out.join("BENCH_gemm.json");
    let json = serde_json::to_string_pretty(report).expect("serialise gemm report");
    std::fs::write(&path, json + "\n")?;
    Ok(path)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut smoke = false;
    let mut seed = 7u64;
    let mut out = PathBuf::from("results");
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--smoke" => smoke = true,
            "--seed" => {
                i += 1;
                seed = args[i].parse().expect("--seed takes an integer");
            }
            "--out" => {
                i += 1;
                out = PathBuf::from(&args[i]);
            }
            other => {
                eprintln!("unknown flag {other}");
                eprintln!("usage: gemm_profile [--smoke] [--seed N] [--out DIR]");
                std::process::exit(2);
            }
        }
        i += 1;
    }

    let mut entries = Vec::new();
    // Small sits below the blocked-dispatch work threshold (the
    // kernels fall through to the naive loops; expected speedup ≈ 1),
    // medium and large engage the panel-packed paths.
    profile_class("small", 24, 32, 24, if smoke { 50 } else { 200 }, seed, &mut entries);
    profile_class("medium", 160, 192, 160, if smoke { 8 } else { 20 }, seed, &mut entries);
    // Large: the packed right-hand operand (k·n doubles) is 4.5 MiB
    // (smoke) / 8 MiB (full) — past any L2, the regime blocking is for.
    let (lm, lk, ln) = if smoke { (320, 768, 768) } else { (512, 1024, 1024) };
    profile_class("large", lm, lk, ln, if smoke { 3 } else { 5 }, seed, &mut entries);

    let large_gemm_speedup = entries
        .iter()
        .find(|e| e.class == "large" && e.op == "gemm")
        .map(|e| e.speedup)
        .unwrap_or(0.0);
    let (lnaive, lblocked) = entries
        .iter()
        .filter(|e| e.class == "large")
        .fold((0.0, 0.0), |(ns, bs), e| (ns + e.naive_s, bs + e.blocked_s));
    let large_class_speedup = lnaive / lblocked;
    let report = GemmBenchReport {
        command: format!(
            "gemm_profile --seed {seed}{}",
            if smoke { " --smoke" } else { "" }
        ),
        seed,
        smoke,
        large_class_speedup,
        large_gemm_speedup,
        entries,
    };
    let path = write_report(&report, &out).expect("write BENCH_gemm.json");
    for e in &report.entries {
        eprintln!(
            "[{:<6} {:<7} {:>4}x{:<4}x{:<4} naive {:>8.4}s blocked {:>8.4}s  {:>5.2}x  bits {}]",
            e.class,
            e.op,
            e.m,
            e.k,
            e.n,
            e.naive_s,
            e.blocked_s,
            e.speedup,
            if e.bit_identical { "ok" } else { "MISMATCH" }
        );
    }
    eprintln!(
        "[gemm profile: large class speedup {:.2}x (plain gemm {:.2}x), report at {}]",
        large_class_speedup,
        large_gemm_speedup,
        path.display()
    );

    assert!(
        report.entries.iter().all(|e| e.bit_identical),
        "blocked kernel diverged from naive reference bits"
    );
    if smoke {
        assert!(
            large_class_speedup >= LARGE_CLASS_SPEEDUP_FLOOR,
            "large-shape GEMM class speedup {large_class_speedup:.2}x below the \
             {LARGE_CLASS_SPEEDUP_FLOOR:.1}x acceptance floor"
        );
    }
}
