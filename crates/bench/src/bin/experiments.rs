//! Regenerates every table and figure of the DS-GL paper.
//!
//! ```text
//! experiments <fig4|fig10|fig11|fig12|fig13|table1|table2|table3|table4|ablation|all>
//!             [--quick] [--seed N] [--out DIR] [--datasets a,b,c]
//! ```
//!
//! Each experiment prints an aligned text table and writes a CSV under
//! the output directory (default `results/`). `--quick` runs a
//! minutes-scale configuration; the shipped `EXPERIMENTS.md` numbers
//! use the full scale.

use dsgl_bench::pipeline::{
    self, decompose_model, decompose_spatial, eval_mapped, hw_config, prepare,
    run_baseline, train_dense, BaselineKind, Prepared, Scale,
};
use dsgl_bench::report::{fixed, sci, Table};
use dsgl_core::{DsGlModel, PatternKind};
use dsgl_hw::platform::{dsgl_energy_mj, PLATFORMS};
use dsgl_hw::CostModel;
use dsgl_ising::{AnnealConfig, Brim, Coupling, FlipSchedule, NoiseModel, RealValuedDspu};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashMap;
use std::path::PathBuf;
use std::time::Instant;

struct Opts {
    scale: Scale,
    seed: u64,
    out: PathBuf,
    datasets: Vec<String>,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        eprintln!("usage: experiments <fig4|fig10|fig11|fig12|fig13|table1|table2|table3|table4|ablation|horizon|all> [--quick] [--seed N] [--out DIR] [--datasets a,b]");
        std::process::exit(2);
    }
    let cmd = args[0].clone();
    let mut opts = Opts {
        scale: Scale::full(),
        seed: 7,
        out: PathBuf::from("results"),
        datasets: dsgl_data::SINGLE_FEATURE_DATASETS
            .iter()
            .map(|s| s.to_string())
            .collect(),
    };
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--quick" => opts.scale = Scale::quick(),
            "--seed" => {
                i += 1;
                opts.seed = args[i].parse().expect("--seed takes an integer");
            }
            "--out" => {
                i += 1;
                opts.out = PathBuf::from(&args[i]);
            }
            "--datasets" => {
                i += 1;
                opts.datasets = args[i].split(',').map(|s| s.to_string()).collect();
            }
            other => {
                eprintln!("unknown flag {other}");
                std::process::exit(2);
            }
        }
        i += 1;
    }

    let started = Instant::now();
    match cmd.as_str() {
        "fig4" => fig4(&opts),
        "fig10" => fig10(&opts),
        "fig11" => fig11(&opts),
        "fig12" => fig12(&opts),
        "fig13" => fig13(&opts),
        "table1" => table1(&opts),
        "table2" => table2(&opts),
        "table3" => table3(&opts),
        "table4" => table4(&opts),
        "ablation" => ablation(&opts),
        "horizon" => horizon(&opts),
        "all" => {
            fig4(&opts);
            table1(&opts);
            table2(&opts);
            table3(&opts);
            fig10(&opts);
            fig11(&opts);
            fig12(&opts);
            fig13(&opts);
            table4(&opts);
            ablation(&opts);
            horizon(&opts);
        }
        other => {
            eprintln!("unknown experiment {other}");
            std::process::exit(2);
        }
    }
    eprintln!("[done in {:.1}s]", started.elapsed().as_secs_f64());
}

/// A trained dense model cache (several experiments share them).
struct DenseCache {
    scale: Scale,
    seed: u64,
    models: HashMap<String, (Prepared, DsGlModel)>,
}

impl DenseCache {
    fn new(opts: &Opts) -> Self {
        DenseCache {
            scale: opts.scale,
            seed: opts.seed,
            models: HashMap::new(),
        }
    }

    fn get(&mut self, name: &str) -> (Prepared, DsGlModel) {
        if !self.models.contains_key(name) {
            eprintln!("[training dense DS-GL on {name}]");
            let p = prepare(name, &self.scale, self.seed);
            let (model, _) = train_dense(&p, &self.scale, self.seed);
            self.models.insert(name.to_owned(), (p, model));
        }
        self.models[name].clone()
    }
}

/// Fig. 4: circuit-level validation — DSPU stabilises real values while
/// BRIM polarises, on the same 6-spin instance.
fn fig4(opts: &Opts) {
    let mut j = Coupling::zeros(6);
    // An arbitrary mixed-sign instance mirroring the paper's example.
    j.set(0, 1, 0.8);
    j.set(1, 2, -0.5);
    j.set(2, 3, 0.6);
    j.set(3, 4, -0.7);
    j.set(4, 5, 0.9);
    j.set(5, 0, 0.4);
    j.set(1, 4, 0.3);
    let inputs = [(0usize, 0.6), (2, -0.4), (4, 0.5)];

    let h = vec![-1.5; 6];
    let mut dspu = RealValuedDspu::new(j.clone(), h).unwrap();
    let mut brim = Brim::new(j, vec![0.0; 6]).unwrap();
    for &(node, v) in &inputs {
        dspu.clamp(node, v).unwrap();
        brim.clamp(node, v).unwrap();
    }
    let mut rng = StdRng::seed_from_u64(opts.seed);
    dspu.randomize_free(&mut rng);
    brim.randomize(&mut rng);

    let cfg = AnnealConfig {
        dt_ns: 1.0,
        max_time_ns: 500.0,
        ..AnnealConfig::default()
    };
    let (_, dspu_trace) = dspu.run_traced(&cfg, 10.0, &mut rng);
    let (_, brim_trace) = brim.anneal_traced(&cfg, &FlipSchedule::none(), 10.0, &mut rng);

    let mut t = Table::new(
        "Fig. 4 — circuit-level validation (voltages over time)",
        &[
            "t_ns", "dspu_v0", "dspu_v1", "dspu_v2", "dspu_v3", "dspu_v4", "dspu_v5",
            "brim_v0", "brim_v1", "brim_v2", "brim_v3", "brim_v4", "brim_v5",
        ],
    );
    for idx in 0..dspu_trace.len().min(brim_trace.len()) {
        let mut row = vec![fixed(dspu_trace.times()[idx], 0)];
        for v in dspu_trace.state_at(idx) {
            row.push(fixed(*v, 3));
        }
        for v in brim_trace.state_at(idx) {
            row.push(fixed(*v, 3));
        }
        t.row(row);
    }
    t.emit(&opts.out, "fig4_validation").expect("emit fig4");

    // Headline check mirrored from the paper: BRIM free nodes polarise,
    // DSPU free nodes settle strictly inside the rails.
    let free = [1usize, 3, 5];
    let dspu_final = dspu.state();
    let brim_final = brim.state();
    let mut s = Table::new(
        "Fig. 4 — final free-node voltages",
        &["node", "dspu", "brim"],
    );
    for &n in &free {
        s.row(vec![
            format!("v{n}"),
            fixed(dspu_final[n], 4),
            fixed(brim_final[n], 4),
        ]);
    }
    s.emit(&opts.out, "fig4_final").expect("emit fig4 final");
}

const FIG10_DENSITIES: [f64; 6] = [0.025, 0.05, 0.10, 0.15, 0.20, 0.25];

/// Fig. 10: RMSE vs coupling density per pattern, against the best GNN.
fn fig10(opts: &Opts) {
    let mut cache = DenseCache::new(opts);
    let mut t = Table::new(
        "Fig. 10 — RMSE vs coupling-matrix density (with wormholes)",
        &["dataset", "density", "Chain", "Mesh", "DMesh", "best_GNN"],
    );
    for name in &opts.datasets {
        let (p, dense) = cache.get(name);
        eprintln!("[fig10 {name}: training GNN reference]");
        let best_gnn = BaselineKind::ALL
            .iter()
            .map(|&k| run_baseline(k, &p, &opts.scale, opts.seed).rmse)
            .fold(f64::INFINITY, f64::min);
        let hw = hw_config(&p, &opts.scale);
        for &density in &FIG10_DENSITIES {
            let mut row = vec![name.clone(), fixed(density, 3)];
            for pattern in PatternKind::ALL {
                let d = decompose_model(&dense, &p, &opts.scale, density, pattern, opts.seed);
                let eval = eval_mapped(&d, &p, &hw, opts.seed);
                row.push(sci(eval.rmse));
            }
            row.push(sci(best_gnn));
            t.row(row);
            eprintln!("[fig10 {name} density {density} done]");
        }
    }
    t.emit(&opts.out, "fig10_density").expect("emit fig10");
}

/// Fig. 11: best RMSE vs inference latency (annealing budget) under
/// Temporal & Spatial co-annealing, on the *imputation* task (half the
/// target frame observed) where inter-PE information transport between
/// outputs is load-bearing.
fn fig11(opts: &Opts) {
    let budgets_us = [0.25, 0.5, 1.0, 2.0, 5.0, 10.0, 20.0];
    let mut t = Table::new(
        "Fig. 11 — imputation RMSE vs inference latency (T&S co-annealing)",
        &["dataset", "latency_us", "rmse", "converged_frac", "max_slices"],
    );
    for name in &opts.datasets {
        let p = prepare(name, &opts.scale, opts.seed);
        eprintln!("[fig11 {name}: training imputation model]");
        let dense = pipeline::train_dense_imputation(&p, &opts.scale, opts.seed);
        // High density forces temporal multiplexing: halve the lanes.
        let d = pipeline::decompose_model_imputation(
            &dense, &p, &opts.scale, 0.20, PatternKind::DMesh, opts.seed,
        );
        let mut hw = hw_config(&p, &opts.scale);
        hw.lanes = (hw.lanes / 2).max(1);
        let machine = dsgl_hw::MappedMachine::new(&d, hw.lanes).unwrap();
        for &b in &budgets_us {
            let hw_b = hw.with_budget(b * 1000.0);
            let mut rng = StdRng::seed_from_u64(opts.seed ^ 0xf16);
            let eval = dsgl_hw::coanneal::evaluate_mapped_imputation(
                &d, &p.test, 0.5, &hw_b, &mut rng,
            )
            .expect("imputation evaluation");
            t.row(vec![
                name.clone(),
                fixed(b, 2),
                sci(eval.rmse),
                fixed(eval.converged_fraction, 2),
                machine.max_slices().to_string(),
            ]);
        }
        eprintln!("[fig11 {name} done]");
    }
    t.emit(&opts.out, "fig11_latency").expect("emit fig11");
}

/// Fig. 12: RMSE vs inter-tile synchronisation interval.
fn fig12(opts: &Opts) {
    let sync_ns = [1.0, 10.0, 50.0, 100.0, 200.0, 500.0, 1000.0, 2000.0, 5000.0];
    let names = fig_subset(opts);
    let mut t = Table::new(
        "Fig. 12 — imputation RMSE vs synchronisation interval (DMesh)",
        &["dataset", "sync_ns", "rmse"],
    );
    for name in &names {
        let p = prepare(name, &opts.scale, opts.seed);
        eprintln!("[fig12 {name}: training imputation model]");
        let dense = pipeline::train_dense_imputation(&p, &opts.scale, opts.seed);
        let d = pipeline::decompose_model_imputation(
            &dense, &p, &opts.scale, 0.15, PatternKind::DMesh, opts.seed,
        );
        let hw = hw_config(&p, &opts.scale).with_budget(5_000.0);
        for &s in &sync_ns {
            let mut rng = StdRng::seed_from_u64(opts.seed ^ 0xf12);
            let eval = dsgl_hw::coanneal::evaluate_mapped_imputation(
                &d,
                &p.test,
                0.5,
                &hw.with_sync_interval(s),
                &mut rng,
            )
            .expect("imputation evaluation");
            t.row(vec![name.clone(), fixed(s, 0), sci(eval.rmse)]);
        }
        eprintln!("[fig12 {name} done]");
    }
    t.emit(&opts.out, "fig12_sync").expect("emit fig12");
}

/// The three datasets the paper uses for Figs. 12–13, intersected with
/// the user's `--datasets` filter.
fn fig_subset(opts: &Opts) -> Vec<String> {
    let wanted = ["stock", "no2", "traffic"];
    let filtered: Vec<String> = wanted
        .iter()
        .filter(|n| opts.datasets.iter().any(|d| d == *n))
        .map(|s| s.to_string())
        .collect();
    if filtered.is_empty() {
        opts.datasets.iter().take(1).cloned().collect()
    } else {
        filtered
    }
}

/// Fig. 13: RMSE vs density under dynamic Gaussian noise.
fn fig13(opts: &Opts) {
    let noise_pct = [0.0, 0.05, 0.10, 0.15];
    let densities = [0.05, 0.10, 0.15, 0.20];
    let names = fig_subset(opts);
    let mut cache = DenseCache::new(opts);
    let mut t = Table::new(
        "Fig. 13 — RMSE vs density under node+coupler noise (DMesh)",
        &["dataset", "density", "n=0%", "n=5%", "n=10%", "n=15%"],
    );
    for name in &names {
        let (p, dense) = cache.get(name);
        let hw0 = hw_config(&p, &opts.scale);
        for &density in &densities {
            let d =
                decompose_model(&dense, &p, &opts.scale, density, PatternKind::DMesh, opts.seed);
            let mut row = vec![name.clone(), fixed(density, 2)];
            for &n in &noise_pct {
                let mut hw = hw0;
                hw.anneal.noise = NoiseModel::relative(n);
                let eval = eval_mapped(&d, &p, &hw, opts.seed);
                row.push(sci(eval.rmse));
            }
            t.row(row);
        }
        eprintln!("[fig13 {name} done]");
    }
    t.emit(&opts.out, "fig13_noise").expect("emit fig13");
}

/// Table I: hardware comparison from the component cost model.
fn table1(opts: &Opts) {
    let model = CostModel::default();
    let mut t = Table::new(
        "Table I — hardware comparison",
        &["design", "effective_spins", "power_mW", "area_mm2", "scalable", "data_type"],
    );
    for c in model.table_one() {
        t.row(vec![
            c.name.clone(),
            c.effective_spins.to_string(),
            fixed(c.power_mw, 0),
            fixed(c.area_mm2, 2),
            if c.scalable { "Yes" } else { "No" }.into(),
            c.data_type.into(),
        ]);
    }
    t.emit(&opts.out, "table1_cost").expect("emit table1");

    // Scaling sweep (extension): dense crossbars grow quadratically in
    // couplers while the PE mesh grows linearly — the structural reason
    // DS-GL scales (paper Sec. IV.A).
    let mut sweep = Table::new(
        "Table I scaling sweep — dense crossbar vs PE mesh",
        &["spins", "dense_area_mm2", "dense_power_mW", "mesh_area_mm2", "mesh_power_mW", "mesh_grid"],
    );
    for (grid, k) in [((2usize, 2usize), 500usize), ((4, 4), 500), ((4, 8), 500), ((8, 8), 500)] {
        let spins = grid.0 * grid.1 * k;
        let dense = model.dspu_dense(spins);
        let mesh = model.dsgl(grid, k, 30);
        sweep.row(vec![
            spins.to_string(),
            fixed(dense.area_mm2, 1),
            fixed(dense.power_mw, 0),
            fixed(mesh.area_mm2, 1),
            fixed(mesh.power_mw, 0),
            format!("{}x{}x{k}", grid.0, grid.1),
        ]);
    }
    sweep.emit(&opts.out, "table1_scaling").expect("emit table1 scaling");
}

/// Table II: RMSE of the three GNNs and four DS-GL variants.
fn table2(opts: &Opts) {
    let mut cache = DenseCache::new(opts);
    let mut t = Table::new(
        "Table II — RMSE comparison (lower is better)",
        &[
            "dataset", "GWN", "MTGNN", "DDGCRN", "DS-GL-Spatial", "DS-GL-Chain",
            "DS-GL-Mesh", "DS-GL-DMesh", "spatial_lat_us",
        ],
    );
    for name in &opts.datasets {
        let (p, dense) = cache.get(name);
        let mut row = vec![name.clone()];
        for kind in BaselineKind::ALL {
            eprintln!("[table2 {name}: training {kind:?}]");
            row.push(sci(run_baseline(kind, &p, &opts.scale, opts.seed).rmse));
        }
        let hw = hw_config(&p, &opts.scale);
        // Spatial-only: low density so no link slices; lowest latency.
        let spatial = decompose_spatial(&dense, &p, &opts.scale, 0.15, opts.seed);
        let spatial_eval = eval_mapped(&spatial, &p, &hw, opts.seed);
        row.push(sci(spatial_eval.rmse));
        // Pattern variants with T&S co-annealing at a generous density.
        for pattern in PatternKind::ALL {
            let d = decompose_model(&dense, &p, &opts.scale, 0.22, pattern, opts.seed);
            let eval = eval_mapped(&d, &p, &hw, opts.seed);
            row.push(sci(eval.rmse));
        }
        row.push(fixed(spatial_eval.mean_latency_ns / 1000.0, 3));
        t.row(row);
        eprintln!("[table2 {name} done]");
    }
    t.emit(&opts.out, "table2_accuracy").expect("emit table2");
}

/// Table III: latency and energy per inference across platforms.
fn table3(opts: &Opts) {
    // Representative application datasets as the paper groups them.
    let apps = [
        ("covid", "covid"),
        ("pm25", "air"),
        ("traffic", "traffic"),
        ("stock", "stock"),
    ];
    let mut cache = DenseCache::new(opts);
    let chip = CostModel::default().dsgl(opts.scale.pe_grid, 64, 8);

    let mut t = Table::new(
        "Table III — inference latency (us) and energy (mJ) per platform",
        &["platform", "model", "app", "latency_us", "energy_mJ"],
    );
    for (ds_name, app) in apps {
        if !opts.datasets.iter().any(|d| d == ds_name) {
            continue;
        }
        let (p, dense) = cache.get(ds_name);
        for kind in BaselineKind::ALL {
            let flops = pipeline::paper_scale_flops(kind, app);
            let model_name = match kind {
                BaselineKind::Gwn => "GWN",
                BaselineKind::Mtgnn => "MTGNN",
                BaselineKind::Ddgcrn => "DDGCRN",
            };
            for platform in &PLATFORMS {
                t.row(vec![
                    platform.name.into(),
                    model_name.into(),
                    app.into(),
                    fixed(platform.latency_us(flops), 3),
                    sci(platform.energy_mj(flops)),
                ]);
            }
        }
        // DS-GL row: measured co-annealing latency on the mapped machine.
        let spatial = decompose_spatial(&dense, &p, &opts.scale, 0.15, opts.seed);
        let hw = hw_config(&p, &opts.scale);
        let eval = eval_mapped(&spatial, &p, &hw, opts.seed);
        let lat_us = eval.mean_latency_ns / 1000.0;
        t.row(vec![
            "DS-GL (this chip)".into(),
            "DS-GL".into(),
            app.into(),
            fixed(lat_us, 3),
            sci(dsgl_energy_mj(lat_us, chip.power_mw)),
        ]);
        eprintln!("[table3 {app} done]");
    }
    t.emit(&opts.out, "table3_platforms").expect("emit table3");
}

/// Table IV: multi-feature datasets (CA housing, climate).
fn table4(opts: &Opts) {
    let mut t = Table::new(
        "Table IV — multi-feature datasets: RMSE and latency",
        &["dataset", "model", "rmse", "latency_us"],
    );
    for name in ["ca_housing", "climate"] {
        let p = prepare(name, &opts.scale, opts.seed);
        for kind in BaselineKind::ALL {
            eprintln!("[table4 {name}: training {kind:?}]");
            let r = run_baseline(kind, &p, &opts.scale, opts.seed);
            // GNN latency on the GPU platform, at paper-scale model FLOPs
            // (accuracy is measured at our scale; see DESIGN.md).
            let gpu = PLATFORMS[4];
            let flops = pipeline::paper_scale_flops(kind, name);
            t.row(vec![
                name.into(),
                r.name.into(),
                sci(r.rmse),
                fixed(gpu.latency_us(flops), 2),
            ]);
        }
        eprintln!("[table4 {name}: training DS-GL]");
        let (dense, _) = train_dense(&p, &opts.scale, opts.seed);
        let d = decompose_model(&dense, &p, &opts.scale, 0.25, PatternKind::DMesh, opts.seed);
        let hw = hw_config(&p, &opts.scale);
        let eval = eval_mapped(&d, &p, &hw, opts.seed);
        t.row(vec![
            name.into(),
            "DS-GL".into(),
            sci(eval.rmse),
            fixed(eval.mean_latency_ns / 1000.0, 2),
        ]);
    }
    t.emit(&opts.out, "table4_multidim").expect("emit table4");
}

/// Horizon sweep (extension beyond the paper): multi-step forecasting
/// RMSE per horizon, against the iterated persistence baseline. The
/// machine anneals all `H` future frames *jointly* in one relaxation.
fn horizon(opts: &Opts) {
    let mut t = Table::new(
        "Horizon sweep — multi-step forecasting RMSE (joint annealing)",
        &["dataset", "horizon", "dsgl_rmse", "persistence_rmse", "latency_us"],
    );
    let names: Vec<String> = ["covid", "traffic"]
        .iter()
        .filter(|n| opts.datasets.iter().any(|d| d == *n))
        .map(|s| s.to_string())
        .collect();
    for name in &names {
        for h in [1usize, 2, 3, 4] {
            let p = pipeline::prepare_with_horizon(name, &opts.scale, h, opts.seed);
            let (dense, _) = train_dense(&p, &opts.scale, opts.seed);
            let mut rng = StdRng::seed_from_u64(opts.seed ^ 0x401);
            let eval = dsgl_core::inference::evaluate(
                &dense,
                &p.test,
                &dsgl_ising::AnnealConfig::default(),
                &mut rng,
            )
            .expect("horizon evaluation");
            // Persistence repeats the last observed frame H times.
            let frame = p.layout.frame_len();
            let mut sse = 0.0;
            let mut count = 0usize;
            for s in &p.test {
                let last = &s.history[s.history.len() - frame..];
                for (k, tv) in s.target.iter().enumerate() {
                    let pv = last[k % frame];
                    sse += (pv - tv) * (pv - tv);
                    count += 1;
                }
            }
            let persistence = (sse / count as f64).sqrt();
            t.row(vec![
                name.clone(),
                h.to_string(),
                sci(eval.rmse),
                sci(persistence),
                fixed(eval.mean_latency_ns / 1000.0, 3),
            ]);
            eprintln!("[horizon {name} H={h} done]");
        }
    }
    t.emit(&opts.out, "horizon_sweep").expect("emit horizon");
}

/// Ablation (extension beyond the paper): what each decomposition step
/// buys, on one representative dataset.
fn ablation(opts: &Opts) {
    let name = opts
        .datasets
        .first()
        .cloned()
        .unwrap_or_else(|| "no2".into());
    let p = prepare(&name, &opts.scale, opts.seed);
    let (dense, _) = train_dense(&p, &opts.scale, opts.seed);
    let hw = hw_config(&p, &opts.scale);
    let density = 0.10;

    let mut t = Table::new(
        &format!("Ablation — decomposition steps on {name} (density {density})"),
        &["variant", "rmse", "cross_pe_frac", "wormholes"],
    );
    // Full pipeline.
    let full = decompose_model(&dense, &p, &opts.scale, density, PatternKind::DMesh, opts.seed);
    let full_eval = eval_mapped(&full, &p, &hw, opts.seed);
    t.row(vec![
        "full (wormholes + fine-tune)".into(),
        sci(full_eval.rmse),
        fixed(full.stats.cross_pe_fraction, 3),
        full.stats.wormholes_used.to_string(),
    ]);
    // No fine-tune.
    let mut cfg = pipeline::decompose_config(&p, &opts.scale, density, PatternKind::DMesh);
    cfg.finetune = None;
    let mut rng = StdRng::seed_from_u64(opts.seed ^ 0xab1a);
    let raw = dsgl_core::decompose(&dense, &p.train, &cfg, &mut rng).unwrap();
    let raw_eval = eval_mapped(&raw, &p, &hw, opts.seed);
    t.row(vec![
        "no fine-tune".into(),
        sci(raw_eval.rmse),
        fixed(raw.stats.cross_pe_fraction, 3),
        raw.stats.wormholes_used.to_string(),
    ]);
    // No wormholes.
    let mut cfg = pipeline::decompose_config(&p, &opts.scale, density, PatternKind::DMesh);
    cfg.wormhole_budget = 0;
    let mut rng = StdRng::seed_from_u64(opts.seed ^ 0xab1b);
    let noworm = dsgl_core::decompose(&dense, &p.train, &cfg, &mut rng).unwrap();
    let noworm_eval = eval_mapped(&noworm, &p, &hw, opts.seed);
    t.row(vec![
        "no wormholes".into(),
        sci(noworm_eval.rmse),
        fixed(noworm.stats.cross_pe_fraction, 3),
        "0".into(),
    ]);
    // Chain instead of DMesh (cheapest interconnect).
    let chain = decompose_model(&dense, &p, &opts.scale, density, PatternKind::Chain, opts.seed);
    let chain_eval = eval_mapped(&chain, &p, &hw, opts.seed);
    t.row(vec![
        "chain interconnect".into(),
        sci(chain_eval.rmse),
        fixed(chain.stats.cross_pe_fraction, 3),
        chain.stats.wormholes_used.to_string(),
    ]);
    // The related-work topology: a structure-blind King's graph at the
    // node level (paper Sec. I's critique of uniform partial
    // interconnects). Variables sit in raster order, couple only to 8
    // neighbours, and the survivors are re-calibrated exactly like the
    // DS-GL variants.
    let total = p.layout.total();
    let cols = (total as f64).sqrt().ceil() as usize;
    let kings_mask = dsgl_core::patterns::kings_graph_mask(total, cols);
    let mut kings = dense.clone();
    kings.coupling_mut().apply_mask(&kings_mask);
    let (head, _) = pipeline::head_val_split(&p.train);
    dsgl_core::ridge::refit_ridge_masked(&mut kings, head, 10.0).expect("kings refit");
    let kings_rmse = pipeline::fixed_point_rmse(&kings, &p.test);
    t.row(vec![
        "king's graph (related work)".into(),
        sci(kings_rmse),
        "n/a".into(),
        "0".into(),
    ]);
    t.emit(&opts.out, "ablation").expect("emit ablation");
}
