//! Fault-injection campaign: RMSE degradation under persistent defects.
//!
//! The paper's Fig. 13 sweeps *transient* Gaussian noise; this module
//! extends the robustness story to *hard* faults — stuck nodes, dead
//! couplers, frozen conductance drift (see `dsgl_ising::fault`) and
//! mesh-level dead PEs / dead CU lanes (see `dsgl_hw::fault`). For each
//! fault class a rate is swept; at every point a population of
//! defective machines (one per test window, sampled deterministically
//! from the seed) runs guarded inference, and the campaign records the
//! test RMSE together with how hard the guard had to work (retries,
//! degraded windows). The result is written as `BENCH_faults.json`.

use crate::pipeline::{decompose_model, hw_config, prepare, train_dense, Prepared, Scale};
use dsgl_core::guard::infer_dense_guarded_pooled;
use dsgl_core::{DsGlModel, GuardedAnneal, PatternKind, TelemetrySink};
use dsgl_hw::coanneal::MappedMachine;
use dsgl_hw::{HwConfig, HwFaultModel};
use dsgl_ising::fault::FaultModel;
use dsgl_ising::AnnealConfig;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use serde::Serialize;
use std::path::Path;

/// Smoke-mode acceptance bound: at every swept fault rate the guarded
/// RMSE must stay below `clean_rmse · FACTOR` or the absolute floor,
/// whichever is larger. The floor covers datasets whose clean RMSE is
/// tiny (a 25× multiple of 0.003 would be stricter than the fault-free
/// noise floor); the factor covers everything else. Calibrated against
/// the quick-scale covid campaign at seed 7, whose worst point
/// (stuck_node at a 10% rate) reaches ≈0.31 — a ~1.6× margin under the
/// floor. The campaign is a pure function of its seed, so a CI breach
/// means the guard stopped containing faults, not statistical bad luck.
pub const SMOKE_RMSE_FACTOR: f64 = 25.0;
/// Absolute component of the smoke bound, in rail units.
pub const SMOKE_RMSE_FLOOR: f64 = 0.5;

/// One swept point of one fault class.
#[derive(Debug, Clone, Serialize)]
pub struct FaultPoint {
    /// The swept knob: a per-node/per-coupling fault probability, a
    /// drift σ, or a fraction of dead mesh resources, per class.
    pub rate: f64,
    /// Guarded test RMSE over all evaluated windows.
    pub rmse: f64,
    /// Total guard retries across windows.
    pub retries: usize,
    /// Windows whose result was degraded (sanitised output or
    /// fallback-clamped faulted readouts).
    pub degraded: usize,
    /// Windows evaluated.
    pub windows: usize,
}

/// The sweep of one fault class.
#[derive(Debug, Clone, Serialize)]
pub struct FaultClassReport {
    /// Fault class name (`stuck_node`, `dead_coupler`, `coupler_drift`,
    /// `dead_pe`, `dead_cu_lane`).
    pub class: String,
    /// Points in sweep order (first point is always the clean rate 0).
    pub points: Vec<FaultPoint>,
}

/// The full campaign result, serialised to `BENCH_faults.json`.
#[derive(Debug, Clone, Serialize)]
pub struct FaultCampaignReport {
    /// Dataset the model was trained on.
    pub dataset: String,
    /// Master seed of the campaign.
    pub seed: u64,
    /// Fault-free guarded RMSE (the degradation baseline).
    pub clean_rmse: f64,
    /// One sweep per fault class.
    pub classes: Vec<FaultClassReport>,
}

impl FaultCampaignReport {
    /// Largest RMSE across every class and point.
    pub fn worst_rmse(&self) -> f64 {
        self.classes
            .iter()
            .flat_map(|c| c.points.iter())
            .map(|p| p.rmse)
            .fold(self.clean_rmse, f64::max)
    }

    /// The smoke bound for this campaign's clean baseline.
    pub fn smoke_bound(&self) -> f64 {
        (self.clean_rmse * SMOKE_RMSE_FACTOR).max(SMOKE_RMSE_FLOOR)
    }
}

/// Campaign sizing.
#[derive(Debug, Clone)]
pub struct FaultCampaignConfig {
    /// Dataset name (see `dsgl_data::by_name`).
    pub dataset: String,
    /// Experiment scale (train size, test cap, PE grid).
    pub scale: Scale,
    /// Master seed; the whole campaign is a pure function of it.
    pub seed: u64,
    /// Per-node stuck / per-coupling dead probabilities swept.
    pub rates: Vec<f64>,
    /// Frozen conductance-drift σ values swept.
    pub drifts: Vec<f64>,
    /// Fraction of stuck nodes that read back NaN instead of a level.
    pub nan_fraction: f64,
}

impl FaultCampaignConfig {
    /// The default campaign: quick scale, covid, moderate sweeps.
    pub fn new(dataset: &str, seed: u64) -> Self {
        FaultCampaignConfig {
            dataset: dataset.to_owned(),
            scale: Scale::quick(),
            seed,
            rates: vec![0.0, 0.01, 0.02, 0.05, 0.10],
            drifts: vec![0.0, 0.05, 0.10, 0.20],
            nan_fraction: 0.25,
        }
    }

    /// CI smoke sizing: fewer windows and sweep points, same classes.
    pub fn smoke(dataset: &str, seed: u64) -> Self {
        let mut cfg = Self::new(dataset, seed);
        cfg.scale.test_cap = 6;
        cfg.rates = vec![0.0, 0.05, 0.10];
        cfg.drifts = vec![0.0, 0.10];
        cfg
    }
}

/// Evaluates one dense fault-class point: each test window runs on its
/// own defective machine sampled by `make_faults` from a per-window
/// seeded RNG, under guarded annealing.
fn dense_point(
    model: &DsGlModel,
    p: &Prepared,
    guard: &GuardedAnneal,
    rate: f64,
    seed: u64,
    make_faults: impl Fn(&DsGlModel, f64, &mut StdRng) -> FaultModel,
) -> FaultPoint {
    let mut sse = 0.0;
    let mut count = 0usize;
    let mut retries = 0usize;
    let mut degraded = 0usize;
    // One scratch workspace migrates across every window of the point,
    // so only the first pays the stage-buffer allocations (buffers carry
    // capacity, never values — RMSE bits are unchanged).
    let mut pool = None;
    let sink = TelemetrySink::noop();
    for (i, sample) in p.test.iter().enumerate() {
        let mut rng = StdRng::seed_from_u64(seed ^ (0xFA01 + i as u64).wrapping_mul(0x9E37_79B9));
        let faults = make_faults(model, rate, &mut rng);
        let (pred, _, health) =
            infer_dense_guarded_pooled(model, sample, guard, &faults, &sink, &mut pool, &mut rng)
                .expect("guarded faulted inference");
        assert!(
            pred.iter().all(|v| v.is_finite()),
            "guarded prediction must be finite"
        );
        retries += health.retries;
        degraded += usize::from(health.degraded);
        for (pv, tv) in pred.iter().zip(&sample.target) {
            sse += (pv - tv) * (pv - tv);
            count += 1;
        }
    }
    FaultPoint {
        rate,
        rmse: (sse / count.max(1) as f64).sqrt(),
        retries,
        degraded,
        windows: p.test.len(),
    }
}

/// Evaluates one mesh fault-class point: a [`MappedMachine`] programmed
/// around the declared-dead resources runs every test window; target
/// entries on dead PEs (and any non-finite readout) are degraded to the
/// historical target mean, mirroring the facade's fallback path.
fn mapped_point(
    d: &dsgl_core::DecomposedModel,
    p: &Prepared,
    hw: &HwConfig,
    faults: &HwFaultModel,
    fallback: &[f64],
    rate: f64,
    seed: u64,
) -> FaultPoint {
    let mut machine =
        MappedMachine::with_faults(d, hw.lanes, faults).expect("mapped fault machine");
    let faulted_targets = machine.faulted_target_indices();
    let mut sse = 0.0;
    let mut count = 0usize;
    let mut degraded = 0usize;
    let mut rng = StdRng::seed_from_u64(seed ^ 0xFA02);
    for sample in &p.test {
        machine.load_sample(sample, &mut rng).expect("load sample");
        machine.run(hw, &mut rng);
        let mut pred = machine.prediction();
        let mut patched = 0usize;
        for &idx in &faulted_targets {
            pred[idx] = fallback[idx];
            patched += 1;
        }
        for (v, &fb) in pred.iter_mut().zip(fallback) {
            if !v.is_finite() {
                *v = fb;
                patched += 1;
            }
        }
        degraded += usize::from(patched > 0);
        for (pv, tv) in pred.iter().zip(&sample.target) {
            sse += (pv - tv) * (pv - tv);
            count += 1;
        }
    }
    FaultPoint {
        rate,
        rmse: (sse / count.max(1) as f64).sqrt(),
        retries: 0,
        degraded,
        windows: p.test.len(),
    }
}

/// Per-index mean of the training targets — the fallback a dead PE's
/// outputs degrade to.
fn historical_means(p: &Prepared) -> Vec<f64> {
    let target_len = p.layout.target_len();
    let mut means = vec![0.0; target_len];
    if p.train.is_empty() {
        return means;
    }
    for s in &p.train {
        for (m, &t) in means.iter_mut().zip(&s.target) {
            *m += t;
        }
    }
    let inv = 1.0 / p.train.len() as f64;
    means.iter_mut().for_each(|m| *m *= inv);
    means
}

/// Runs the full campaign: trains the model once, then sweeps every
/// fault class. Deterministic in the config.
// Progress markers for the long-running campaign bins; stderr only, so
// machine-readable stdout/JSON artifacts stay clean.
#[allow(clippy::print_stderr)]
pub fn run_campaign(cfg: &FaultCampaignConfig) -> FaultCampaignReport {
    let p = prepare(&cfg.dataset, &cfg.scale, cfg.seed);
    let (model, _) = train_dense(&p, &cfg.scale, cfg.seed);
    let guard = GuardedAnneal::new(AnnealConfig::default());
    let nan_fraction = cfg.nan_fraction;

    eprintln!("[fault campaign: {} test windows]", p.test.len());
    let clean = dense_point(&model, &p, &guard, 0.0, cfg.seed, |_, _, _| FaultModel::none());

    let stuck = FaultClassReport {
        class: "stuck_node".into(),
        points: cfg
            .rates
            .iter()
            .map(|&r| {
                dense_point(&model, &p, &guard, r, cfg.seed, |m, rate, rng| {
                    FaultModel::sampled(m.coupling(), rate, 0.0, 0.0, nan_fraction, rng)
                })
            })
            .collect(),
    };
    eprintln!("[fault campaign: stuck_node done]");
    let dead = FaultClassReport {
        class: "dead_coupler".into(),
        points: cfg
            .rates
            .iter()
            .map(|&r| {
                dense_point(&model, &p, &guard, r, cfg.seed, |m, rate, rng| {
                    FaultModel::sampled(m.coupling(), 0.0, rate, 0.0, 0.0, rng)
                })
            })
            .collect(),
    };
    eprintln!("[fault campaign: dead_coupler done]");
    let drift = FaultClassReport {
        class: "coupler_drift".into(),
        points: cfg
            .drifts
            .iter()
            .map(|&sigma| {
                dense_point(&model, &p, &guard, sigma, cfg.seed, |m, s, rng| {
                    FaultModel::sampled(m.coupling(), 0.0, 0.0, s, 0.0, rng)
                })
            })
            .collect(),
    };
    eprintln!("[fault campaign: coupler_drift done]");

    // Mesh-level classes on the decomposed machine.
    let d = decompose_model(&model, &p, &cfg.scale, 0.15, PatternKind::DMesh, cfg.seed);
    let hw = hw_config(&p, &cfg.scale);
    let fallback = historical_means(&p);
    let pes = cfg.scale.pe_grid.0 * cfg.scale.pe_grid.1;
    let mut pe_rng = StdRng::seed_from_u64(cfg.seed ^ 0xDEAD);
    let dead_pe = FaultClassReport {
        class: "dead_pe".into(),
        points: [0.0, 1.0 / pes as f64, 2.0 / pes as f64]
            .iter()
            .map(|&frac| {
                let n_dead = (frac * pes as f64).round() as usize;
                let mut dead_pes = Vec::new();
                while dead_pes.len() < n_dead {
                    let pe = pe_rng.random_range(0..pes);
                    if !dead_pes.contains(&pe) {
                        dead_pes.push(pe);
                    }
                }
                let faults = HwFaultModel {
                    dead_pes,
                    dead_cu_lanes: vec![],
                };
                mapped_point(&d, &p, &hw, &faults, &fallback, frac, cfg.seed)
            })
            .collect(),
    };
    eprintln!("[fault campaign: dead_pe done]");
    // CU lanes: sever a growing subset of the PE-pair links actually in
    // use (adjacent grid pairs in row-major order).
    let mut pairs: Vec<(usize, usize)> = Vec::new();
    let (rows, cols) = cfg.scale.pe_grid;
    for r in 0..rows {
        for c in 0..cols {
            let pe = r * cols + c;
            if c + 1 < cols {
                pairs.push((pe, pe + 1));
            }
            if r + 1 < rows {
                pairs.push((pe, pe + cols));
            }
        }
    }
    let dead_lane = FaultClassReport {
        class: "dead_cu_lane".into(),
        points: [0.0, 0.25, 0.5]
            .iter()
            .map(|&frac| {
                let n_dead = (frac * pairs.len() as f64).round() as usize;
                let faults = HwFaultModel {
                    dead_pes: vec![],
                    dead_cu_lanes: pairs[..n_dead].to_vec(),
                };
                mapped_point(&d, &p, &hw, &faults, &fallback, frac, cfg.seed)
            })
            .collect(),
    };
    eprintln!("[fault campaign: dead_cu_lane done]");

    FaultCampaignReport {
        dataset: cfg.dataset.clone(),
        seed: cfg.seed,
        clean_rmse: clean.rmse,
        classes: vec![stuck, dead, drift, dead_pe, dead_lane],
    }
}

/// Serialises the report to `<dir>/BENCH_faults.json`.
///
/// # Errors
///
/// Returns I/O errors from directory creation or the file write.
pub fn write_report(report: &FaultCampaignReport, dir: &Path) -> std::io::Result<()> {
    std::fs::create_dir_all(dir)?;
    let json = serde_json::to_string_pretty(report).expect("report serialises");
    std::fs::write(dir.join("BENCH_faults.json"), json)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_campaign_is_deterministic_and_bounded() {
        let cfg = {
            let mut c = FaultCampaignConfig::smoke("covid", 7);
            // Keep the unit test fast: tiny model, one fault rate.
            c.scale.nodes = 10;
            c.scale.steps = 80;
            c.scale.test_cap = 3;
            c.rates = vec![0.0, 0.10];
            c.drifts = vec![0.10];
            c
        };
        let a = run_campaign(&cfg);
        let b = run_campaign(&cfg);
        assert_eq!(
            serde_json::to_string(&a).unwrap(),
            serde_json::to_string(&b).unwrap(),
            "campaign must be a pure function of its config"
        );
        assert_eq!(a.classes.len(), 5);
        assert!(a.clean_rmse.is_finite() && a.clean_rmse > 0.0);
        for class in &a.classes {
            for point in &class.points {
                assert!(
                    point.rmse.is_finite(),
                    "{}@{}: non-finite rmse",
                    class.class,
                    point.rate
                );
            }
        }
        // Faulted classes at nonzero rate must show *some* degradation
        // signal — either a worse RMSE or guard/fallback activity.
        let stuck = &a.classes[0];
        let worst = stuck.points.last().unwrap();
        assert!(
            worst.rmse >= a.clean_rmse || worst.degraded > 0 || worst.retries > 0,
            "a 10% stuck-node rate must leave a trace: {worst:?}"
        );
        assert!(a.worst_rmse() <= a.smoke_bound(), "bound: {}", a.smoke_bound());
    }
}
