//! Fig. 12 regeneration (scaled): mapped inference across
//! synchronisation intervals.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dsgl_bench::pipeline::{self, Scale};
use dsgl_core::PatternKind;
use std::hint::black_box;

fn bench_fig12(c: &mut Criterion) {
    let scale = Scale::quick();
    let p = pipeline::prepare("stock", &scale, 7);
    let (dense, _) = pipeline::train_dense(&p, &scale, 7);
    let d = pipeline::decompose_model(&dense, &p, &scale, 0.15, PatternKind::DMesh, 7);
    let hw = pipeline::hw_config(&p, &scale);
    let mut group = c.benchmark_group("fig12_sync_interval");
    for sync_ns in [10.0, 200.0, 2000.0] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{sync_ns}ns")),
            &sync_ns,
            |b, &sync_ns| {
                let hw_s = hw.with_sync_interval(sync_ns);
                b.iter(|| black_box(pipeline::eval_mapped(&d, &p, &hw_s, 7)))
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_fig12
}
criterion_main!(benches);
