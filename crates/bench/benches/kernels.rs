//! Micro-kernels underlying every experiment: mat-vec, DSPU steps,
//! Louvain, Cholesky, ridge fits.
//!
//! Besides the criterion benches, `cargo bench --bench kernels` writes a
//! machine-readable snapshot to `results/BENCH_kernels.json`:
//! per-kernel ns/op, a batch-forecast comparison of the strict
//! fixed-schedule integrator against the event-driven engine (cold and
//! warm-started) with steps-to-converge and active-set occupancy, and a
//! lockstep-vs-serial comparison of the W-window batched integrator
//! (per-window mat-vecs fused into one N×W GEMM per stage) against the
//! per-window serial loop — bit-identical by construction, timed under
//! sequential threading so the number isolates the GEMM-fusion win. Set
//! `DSGL_BENCH_JSON_ONLY=1` to emit just the snapshot and skip criterion.

use criterion::{criterion_group, BenchmarkId, Criterion};
use dsgl_core::inference::WarmStart;
use dsgl_core::ridge::fit_ridge;
use dsgl_core::{inference, DsGlModel, Threading, VariableLayout};
use dsgl_data::{covid, WindowConfig};
use dsgl_graph::{generators, Louvain};
use dsgl_ising::{
    AnnealConfig, Coupling, EngineMode, NoiseModel, RealValuedDspu, SparseCoupling, TiledCoupling,
};
use dsgl_nn::linalg::{cholesky, cholesky_solve};
use dsgl_nn::Matrix;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use serde::Serialize;
use std::hint::black_box;
use std::time::Instant;

fn random_coupling(n: usize, density: f64, seed: u64) -> Coupling {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut j = Coupling::zeros(n);
    for i in 0..n {
        for k in (i + 1)..n {
            if rng.random::<f64>() < density {
                j.set(i, k, rng.random::<f64>() - 0.5);
            }
        }
    }
    j
}

/// Couplings confined to contiguous blocks of `block` nodes — the shape
/// the PE-tiled kernel is built for.
fn blocked_coupling(n: usize, block: usize, density: f64, seed: u64) -> Coupling {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut j = Coupling::zeros(n);
    for i in 0..n {
        for k in (i + 1)..n {
            if i / block == k / block && rng.random::<f64>() < density {
                j.set(i, k, rng.random::<f64>() - 0.5);
            }
        }
    }
    j
}

fn bench_kernels(c: &mut Criterion) {
    let n = 256;
    let dense = random_coupling(n, 0.15, 1);
    let sparse = SparseCoupling::from_dense(&dense);
    let state: Vec<f64> = (0..n).map(|i| (i as f64 * 0.37).sin() * 0.5).collect();
    let mut out = vec![0.0; n];

    c.bench_function("dense_matvec_256", |b| {
        b.iter(|| dense.matvec(black_box(&state), black_box(&mut out)))
    });
    c.bench_function("sparse_matvec_256_d15", |b| {
        b.iter(|| sparse.matvec(black_box(&state), black_box(&mut out)))
    });

    let mut dspu = RealValuedDspu::new(dense.clone(), vec![-2.0; n]).unwrap();
    let mut rng = StdRng::seed_from_u64(2);
    dspu.randomize_free(&mut rng);
    c.bench_function("dspu_step_256", |b| {
        b.iter(|| dspu.step(2.0, &NoiseModel::none(), &mut rng))
    });

    let graph = generators::stochastic_block_model(&[40, 40, 40], 0.3, 0.01, &mut rng);
    c.bench_function("louvain_120", |b| {
        b.iter(|| {
            let mut r = StdRng::seed_from_u64(3);
            black_box(Louvain::new().run(&graph, &mut r))
        })
    });

    // SPD solve kernel at the harness's dense-fit size class.
    let m = 128;
    let mut g = Matrix::zeros(m, m);
    for i in 0..m {
        for j in 0..m {
            let v = ((i * 31 + j * 17) % 23) as f64 / 23.0 - 0.5;
            g.set(i, j, v);
        }
    }
    let spd = {
        let mut a = g.t_matmul(&g);
        for i in 0..m {
            a.set(i, i, a.get(i, i) + 1.0);
        }
        a
    };
    let rhs: Vec<f64> = (0..m).map(|i| (i as f64 * 0.11).cos()).collect();
    c.bench_function("cholesky_factor_128", |b| {
        b.iter(|| black_box(cholesky(black_box(&spd)).unwrap()))
    });
    let factor = cholesky(&spd).unwrap();
    c.bench_function("cholesky_solve_128", |b| {
        b.iter(|| black_box(cholesky_solve(black_box(&factor), black_box(&rhs))))
    });

    // End-to-end ridge fit on a small windowed dataset.
    let ds = covid::generate(1).truncate(20, 120);
    let (train, _, _) = ds.split_windows(&WindowConfig::one_step(3), 0.8, 0.0);
    let layout = VariableLayout::new(3, 20, 1);
    c.bench_function("ridge_fit_20n_w3", |b| {
        b.iter(|| {
            let mut model = DsGlModel::new(layout);
            fit_ridge(&mut model, black_box(&train), 1.0).unwrap();
            black_box(model)
        })
    });
}

/// Serial-vs-parallel sweep of the threaded kernels. Thread count 1 is
/// the serial baseline (the `parallel` feature's dispatch at one thread
/// takes the sequential path); higher counts show the scaling of the
/// same bit-identical computation. Override the `Auto` policy with
/// `RAYON_NUM_THREADS` when comparing machines.
fn bench_parallel_scaling(c: &mut Criterion) {
    let threads: Vec<usize> = [1usize, 2, 4, 8]
        .into_iter()
        .filter(|&t| t == 1 || t <= 2 * std::thread::available_parallelism().map_or(1, |p| p.get()))
        .collect();

    // Dense mat-vec large enough to clear the work threshold (n² ≥ 2²⁰).
    let n = 2048;
    let dense = random_coupling(n, 0.10, 7);
    let sparse = SparseCoupling::from_dense(&dense);
    let state: Vec<f64> = (0..n).map(|i| (i as f64 * 0.13).cos() * 0.4).collect();
    let mut out = vec![0.0; n];
    let mut group = c.benchmark_group("dense_matvec_2048_threads");
    for &t in &threads {
        group.bench_with_input(BenchmarkId::from_parameter(t), &t, |b, &t| {
            Threading::Fixed(t)
                .install(|| b.iter(|| dense.matvec(black_box(&state), black_box(&mut out))));
        });
    }
    group.finish();
    let mut group = c.benchmark_group("sparse_matvec_2048_d10_threads");
    for &t in &threads {
        group.bench_with_input(BenchmarkId::from_parameter(t), &t, |b, &t| {
            Threading::Fixed(t)
                .install(|| b.iter(|| sparse.matvec(black_box(&state), black_box(&mut out))));
        });
    }
    group.finish();

    // Training: ridge fit (per-target-column solves) on a wider window.
    let nodes = 40;
    let ds = covid::generate(2).truncate(nodes, 160);
    let wc = WindowConfig::one_step(4);
    let (train, _, test) = ds.split_windows(&wc, 0.7, 0.0);
    let layout = VariableLayout::new(4, nodes, 1);
    let mut group = c.benchmark_group("ridge_fit_40n_w4_threads");
    for &t in &threads {
        group.bench_with_input(BenchmarkId::from_parameter(t), &t, |b, &t| {
            Threading::Fixed(t).install(|| {
                b.iter(|| {
                    let mut model = DsGlModel::new(layout);
                    fit_ridge(&mut model, black_box(&train), 1.0).unwrap();
                    black_box(model)
                })
            });
        });
    }
    group.finish();

    // Batch annealing: many windows annealed concurrently.
    let mut model = DsGlModel::new(layout);
    model.init_persistence(0.9);
    fit_ridge(&mut model, &train, 1.0).unwrap();
    let windows = &test[..test.len().min(32)];
    let cfg = dsgl_ising::AnnealConfig::default();
    let mut group = c.benchmark_group("infer_batch_32w_threads");
    for &t in &threads {
        group.bench_with_input(BenchmarkId::from_parameter(t), &t, |b, &t| {
            Threading::Fixed(t).install(|| {
                b.iter(|| black_box(inference::infer_batch(&model, windows, &cfg, 42).unwrap()))
            });
        });
    }
    group.finish();
}

// ---------------------------------------------------------------------------
// Machine-readable snapshot: results/BENCH_kernels.json.
// ---------------------------------------------------------------------------

#[derive(Serialize)]
struct KernelEntry {
    name: String,
    ns_per_op: f64,
}

/// One engine/warm-start combination over the batch-forecast workload.
#[derive(Serialize)]
struct EngineRun {
    wall_ns: f64,
    /// Mean integrator steps to converge per window.
    mean_steps: f64,
    /// Mean steps taken on the event-driven sparse path (0 for strict).
    mean_sparse_steps: f64,
    /// Mean active-set occupancy per step (1.0 for strict).
    mean_active_fraction: f64,
    rmse: f64,
}

#[derive(Serialize)]
struct BatchForecast {
    windows: usize,
    nodes: usize,
    strict_cold: EngineRun,
    adaptive_cold: EngineRun,
    adaptive_warm: EngineRun,
    /// strict mean steps / adaptive-warm mean steps.
    step_reduction_vs_strict: f64,
    /// Per-node integrations: strict steps / (warm steps × occupancy).
    node_update_reduction_vs_strict: f64,
    wall_time_reduction_vs_strict: f64,
    /// Largest prediction disagreement, rail units.
    max_abs_delta_vs_strict: f64,
}

/// Lockstep batched annealing vs the per-window serial loop on the same
/// strict workload — same seeds, same bits, different wall clock.
#[derive(Serialize)]
struct LockstepComparison {
    windows: usize,
    /// System variables per window machine ((W+1)·N·F).
    variables: usize,
    /// Wall ns for per-window serial strict inference (lockstep off).
    serial_wall_ns: f64,
    /// Wall ns for the same batch through the lockstep fused-GEMM path.
    lockstep_wall_ns: f64,
    /// serial over lockstep — above 1.0 means the fused GEMM wins.
    wall_reduction: f64,
    /// Windows that actually rode the lockstep batch (telemetry probe),
    /// proving the fast path engaged rather than silently declining.
    lockstep_windows: u64,
    /// Lockstep predictions and reports bit-identical to serial.
    bit_identical: bool,
}

#[derive(Serialize)]
struct BenchSnapshot {
    command: String,
    /// Whether the SIMD micro-kernels were live for this snapshot.
    simd: bool,
    kernels: Vec<KernelEntry>,
    batch_forecast: BatchForecast,
    lockstep: LockstepComparison,
}

/// Mean wall-clock ns per call of `f` over `iters` calls (plus warm-up).
fn time_ns(iters: u32, mut f: impl FnMut()) -> f64 {
    for _ in 0..iters.div_ceil(10) {
        f();
    }
    let t0 = Instant::now();
    for _ in 0..iters {
        f();
    }
    t0.elapsed().as_nanos() as f64 / f64::from(iters)
}

fn kernel_entries() -> Vec<KernelEntry> {
    let n = 256;
    let dense = random_coupling(n, 0.15, 1);
    let sparse = SparseCoupling::from_dense(&dense);
    let state: Vec<f64> = (0..n).map(|i| (i as f64 * 0.37).sin() * 0.5).collect();
    let mut out = vec![0.0; n];
    let mut entries = vec![
        KernelEntry {
            name: "dense_matvec_256".into(),
            ns_per_op: time_ns(2000, || dense.matvec(black_box(&state), black_box(&mut out))),
        },
        KernelEntry {
            name: "csr_matvec_256_d15".into(),
            ns_per_op: time_ns(2000, || sparse.matvec(black_box(&state), black_box(&mut out))),
        },
    ];

    // PE-tiled vs CSR on the block-local couplings the tiles are built
    // for (8 PEs × 32 nodes).
    let block = 32;
    let blocked = blocked_coupling(n, block, 0.6, 5);
    let blocked_csr = SparseCoupling::from_dense(&blocked);
    let block_of: Vec<usize> = (0..n).map(|i| i / block).collect();
    let tiled = TiledCoupling::from_dense_partition(&blocked, &block_of);
    let mut gather = Vec::new();
    entries.push(KernelEntry {
        name: "csr_matvec_256_blocked".into(),
        ns_per_op: time_ns(2000, || {
            blocked_csr.matvec(black_box(&state), black_box(&mut out))
        }),
    });
    entries.push(KernelEntry {
        name: "tiled_matvec_256_8x32".into(),
        ns_per_op: time_ns(2000, || {
            tiled.matvec_with_scratch(black_box(&state), black_box(&mut out), &mut gather)
        }),
    });

    let mut dspu = RealValuedDspu::new(dense, vec![-2.0; n]).unwrap();
    let mut rng = StdRng::seed_from_u64(2);
    dspu.randomize_free(&mut rng);
    entries.push(KernelEntry {
        name: "dspu_step_256".into(),
        ns_per_op: time_ns(2000, || {
            dspu.step(2.0, &NoiseModel::none(), &mut rng);
        }),
    });
    entries
}

fn forecast_run(
    model: &DsGlModel,
    windows: &[dsgl_data::Sample],
    cfg: &AnnealConfig,
    warm: WarmStart,
) -> (EngineRun, Vec<Vec<f64>>) {
    let _ = inference::infer_batch_warm(model, windows, cfg, 42, warm).unwrap();
    let t0 = Instant::now();
    let results = inference::infer_batch_warm(model, windows, cfg, 42, warm).unwrap();
    let wall_ns = t0.elapsed().as_nanos() as f64;
    let n = results.len() as f64;
    let (mut steps, mut sparse_steps, mut frac) = (0.0, 0.0, 0.0);
    let (mut se, mut cnt) = (0.0, 0usize);
    for ((pred, report), sample) in results.iter().zip(windows) {
        steps += report.steps as f64;
        sparse_steps += report.sparse_steps as f64;
        frac += report.mean_active_fraction;
        for (p, t) in pred.iter().zip(&sample.target) {
            se += (p - t) * (p - t);
            cnt += 1;
        }
    }
    let preds = results.into_iter().map(|(p, _)| p).collect();
    (
        EngineRun {
            wall_ns,
            mean_steps: steps / n,
            mean_sparse_steps: sparse_steps / n,
            mean_active_fraction: frac / n,
            rmse: (se / cnt as f64).sqrt(),
        },
        preds,
    )
}

/// The shared snapshot workload — same shape as `infer_batch_32w_threads`
/// above: 32 covid windows through a ridge-fitted 40-node model.
fn bench_workload() -> (DsGlModel, Vec<dsgl_data::Sample>) {
    let nodes = 40;
    let ds = covid::generate(2).truncate(nodes, 160);
    let (train, _, test) = ds.split_windows(&WindowConfig::one_step(4), 0.7, 0.0);
    let layout = VariableLayout::new(4, nodes, 1);
    let mut model = DsGlModel::new(layout);
    model.init_persistence(0.9);
    fit_ridge(&mut model, &train, 1.0).unwrap();
    let windows = test[..test.len().min(32)].to_vec();
    (model, windows)
}

fn batch_forecast_snapshot(model: &DsGlModel, windows: &[dsgl_data::Sample]) -> BatchForecast {
    let nodes = model.layout().nodes();

    // Forecast error (~2e-3 RMSE) is model-dominated, so a 1e-4 rail/ns
    // rate tolerance is ample for this workload; both engines get it.
    let strict_cfg = AnnealConfig {
        tolerance: 1e-5,
        ..AnnealConfig::default()
    };
    // Let the sparse path engage as soon as any node settles; the dense
    // fallback only covers the fully-active opening transient.
    let adaptive_cfg = AnnealConfig {
        mode: EngineMode::Adaptive {
            config: dsgl_ising::AdaptiveConfig {
                dense_fraction: 0.95,
                ..dsgl_ising::AdaptiveConfig::default()
            },
        },
        ..strict_cfg
    };
    let (strict_cold, strict_preds) = forecast_run(model, windows, &strict_cfg, WarmStart::Cold);
    let (adaptive_cold, _) = forecast_run(model, windows, &adaptive_cfg, WarmStart::Cold);
    let (adaptive_warm, warm_preds) = forecast_run(
        model,
        windows,
        &adaptive_cfg,
        WarmStart::Chained { chunk: 16 },
    );

    let max_abs_delta = strict_preds
        .iter()
        .flatten()
        .zip(warm_preds.iter().flatten())
        .map(|(s, w)| (s - w).abs())
        .fold(0.0f64, f64::max);
    BatchForecast {
        windows: windows.len(),
        nodes,
        step_reduction_vs_strict: strict_cold.mean_steps / adaptive_warm.mean_steps,
        node_update_reduction_vs_strict: strict_cold.mean_steps
            / (adaptive_warm.mean_steps * adaptive_warm.mean_active_fraction),
        wall_time_reduction_vs_strict: strict_cold.wall_ns / adaptive_warm.wall_ns,
        max_abs_delta_vs_strict: max_abs_delta,
        strict_cold,
        adaptive_cold,
        adaptive_warm,
    }
}

/// Times the strict batch twice — lockstep off, then on — under
/// sequential threading so the ratio isolates the GEMM-fusion win from
/// thread scaling, and verifies bitwise agreement of every prediction
/// and report. Leaves the lockstep toggle at its default (on).
fn lockstep_snapshot(model: &DsGlModel, windows: &[dsgl_data::Sample]) -> LockstepComparison {
    let cfg = AnnealConfig {
        tolerance: 1e-5,
        ..AnnealConfig::default()
    };
    let run = |lockstep: bool| {
        dsgl_core::set_lockstep_enabled(lockstep);
        Threading::Sequential.install(|| {
            let _ = inference::infer_batch(model, windows, &cfg, 42).unwrap();
            let t0 = Instant::now();
            let out = inference::infer_batch(model, windows, &cfg, 42).unwrap();
            (t0.elapsed().as_nanos() as f64, out)
        })
    };
    let (serial_wall_ns, serial) = run(false);
    let (lockstep_wall_ns, lockstep) = run(true);
    let bit_identical = serial.len() == lockstep.len()
        && serial.iter().zip(&lockstep).all(|((p, r), (q, s))| {
            r == s && p.len() == q.len() && p.iter().zip(q).all(|(a, b)| a.to_bits() == b.to_bits())
        });
    // Untimed instrumented pass proving the fused path actually engaged
    // on this workload instead of silently declining to the serial loop.
    let probe = dsgl_core::TelemetrySink::enabled();
    let _ = inference::infer_batch_instrumented(model, windows, &cfg, 42, &probe).unwrap();
    let lockstep_windows = probe.snapshot().counter("anneal.lockstep_windows");
    dsgl_core::set_lockstep_enabled(true);
    LockstepComparison {
        windows: windows.len(),
        variables: model.layout().total(),
        serial_wall_ns,
        lockstep_wall_ns,
        wall_reduction: serial_wall_ns / lockstep_wall_ns,
        lockstep_windows,
        bit_identical,
    }
}

fn emit_snapshot() {
    let (model, windows) = bench_workload();
    let snapshot = BenchSnapshot {
        command: "cargo bench --bench kernels".into(),
        simd: dsgl_nn::kernels::simd_active(),
        kernels: kernel_entries(),
        batch_forecast: batch_forecast_snapshot(&model, &windows),
        lockstep: lockstep_snapshot(&model, &windows),
    };
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../results/BENCH_kernels.json");
    let json = serde_json::to_string_pretty(&snapshot).expect("serialise bench snapshot");
    std::fs::write(path, json + "\n").expect("write BENCH_kernels.json");
    println!("wrote {path}");
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_kernels, bench_parallel_scaling
}

fn main() {
    let json_only = std::env::var_os("DSGL_BENCH_JSON_ONLY").is_some();
    // `cargo bench` invokes harness-less benches with `--bench`; plain
    // `cargo test` runs them bare. Emit the snapshot only on real bench
    // runs so the test suite stays side-effect free.
    if json_only || std::env::args().any(|a| a == "--bench") {
        emit_snapshot();
    }
    if !json_only {
        benches();
    }
}
