//! Micro-kernels underlying every experiment: mat-vec, DSPU steps,
//! Louvain, Cholesky, ridge fits.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dsgl_core::ridge::fit_ridge;
use dsgl_core::{inference, DsGlModel, Threading, VariableLayout};
use dsgl_data::{covid, WindowConfig};
use dsgl_graph::{generators, Louvain};
use dsgl_ising::{Coupling, NoiseModel, RealValuedDspu, SparseCoupling};
use dsgl_nn::linalg::{cholesky, cholesky_solve};
use dsgl_nn::Matrix;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::hint::black_box;

fn random_coupling(n: usize, density: f64, seed: u64) -> Coupling {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut j = Coupling::zeros(n);
    for i in 0..n {
        for k in (i + 1)..n {
            if rng.random::<f64>() < density {
                j.set(i, k, rng.random::<f64>() - 0.5);
            }
        }
    }
    j
}

fn bench_kernels(c: &mut Criterion) {
    let n = 256;
    let dense = random_coupling(n, 0.15, 1);
    let sparse = SparseCoupling::from_dense(&dense);
    let state: Vec<f64> = (0..n).map(|i| (i as f64 * 0.37).sin() * 0.5).collect();
    let mut out = vec![0.0; n];

    c.bench_function("dense_matvec_256", |b| {
        b.iter(|| dense.matvec(black_box(&state), black_box(&mut out)))
    });
    c.bench_function("sparse_matvec_256_d15", |b| {
        b.iter(|| sparse.matvec(black_box(&state), black_box(&mut out)))
    });

    let mut dspu = RealValuedDspu::new(dense.clone(), vec![-2.0; n]).unwrap();
    let mut rng = StdRng::seed_from_u64(2);
    dspu.randomize_free(&mut rng);
    c.bench_function("dspu_step_256", |b| {
        b.iter(|| dspu.step(2.0, &NoiseModel::none(), &mut rng))
    });

    let graph = generators::stochastic_block_model(&[40, 40, 40], 0.3, 0.01, &mut rng);
    c.bench_function("louvain_120", |b| {
        b.iter(|| {
            let mut r = StdRng::seed_from_u64(3);
            black_box(Louvain::new().run(&graph, &mut r))
        })
    });

    // SPD solve kernel at the harness's dense-fit size class.
    let m = 128;
    let mut g = Matrix::zeros(m, m);
    for i in 0..m {
        for j in 0..m {
            let v = ((i * 31 + j * 17) % 23) as f64 / 23.0 - 0.5;
            g.set(i, j, v);
        }
    }
    let spd = {
        let mut a = g.t_matmul(&g);
        for i in 0..m {
            a.set(i, i, a.get(i, i) + 1.0);
        }
        a
    };
    let rhs: Vec<f64> = (0..m).map(|i| (i as f64 * 0.11).cos()).collect();
    c.bench_function("cholesky_factor_128", |b| {
        b.iter(|| black_box(cholesky(black_box(&spd)).unwrap()))
    });
    let factor = cholesky(&spd).unwrap();
    c.bench_function("cholesky_solve_128", |b| {
        b.iter(|| black_box(cholesky_solve(black_box(&factor), black_box(&rhs))))
    });

    // End-to-end ridge fit on a small windowed dataset.
    let ds = covid::generate(1).truncate(20, 120);
    let (train, _, _) = ds.split_windows(&WindowConfig::one_step(3), 0.8, 0.0);
    let layout = VariableLayout::new(3, 20, 1);
    c.bench_function("ridge_fit_20n_w3", |b| {
        b.iter(|| {
            let mut model = DsGlModel::new(layout);
            fit_ridge(&mut model, black_box(&train), 1.0).unwrap();
            black_box(model)
        })
    });
}

/// Serial-vs-parallel sweep of the threaded kernels. Thread count 1 is
/// the serial baseline (the `parallel` feature's dispatch at one thread
/// takes the sequential path); higher counts show the scaling of the
/// same bit-identical computation. Override the `Auto` policy with
/// `RAYON_NUM_THREADS` when comparing machines.
fn bench_parallel_scaling(c: &mut Criterion) {
    let threads: Vec<usize> = [1usize, 2, 4, 8]
        .into_iter()
        .filter(|&t| t == 1 || t <= 2 * std::thread::available_parallelism().map_or(1, |p| p.get()))
        .collect();

    // Dense mat-vec large enough to clear the work threshold (n² ≥ 2²⁰).
    let n = 2048;
    let dense = random_coupling(n, 0.10, 7);
    let sparse = SparseCoupling::from_dense(&dense);
    let state: Vec<f64> = (0..n).map(|i| (i as f64 * 0.13).cos() * 0.4).collect();
    let mut out = vec![0.0; n];
    let mut group = c.benchmark_group("dense_matvec_2048_threads");
    for &t in &threads {
        group.bench_with_input(BenchmarkId::from_parameter(t), &t, |b, &t| {
            Threading::Fixed(t)
                .install(|| b.iter(|| dense.matvec(black_box(&state), black_box(&mut out))));
        });
    }
    group.finish();
    let mut group = c.benchmark_group("sparse_matvec_2048_d10_threads");
    for &t in &threads {
        group.bench_with_input(BenchmarkId::from_parameter(t), &t, |b, &t| {
            Threading::Fixed(t)
                .install(|| b.iter(|| sparse.matvec(black_box(&state), black_box(&mut out))));
        });
    }
    group.finish();

    // Training: ridge fit (per-target-column solves) on a wider window.
    let nodes = 40;
    let ds = covid::generate(2).truncate(nodes, 160);
    let wc = WindowConfig::one_step(4);
    let (train, _, test) = ds.split_windows(&wc, 0.7, 0.0);
    let layout = VariableLayout::new(4, nodes, 1);
    let mut group = c.benchmark_group("ridge_fit_40n_w4_threads");
    for &t in &threads {
        group.bench_with_input(BenchmarkId::from_parameter(t), &t, |b, &t| {
            Threading::Fixed(t).install(|| {
                b.iter(|| {
                    let mut model = DsGlModel::new(layout);
                    fit_ridge(&mut model, black_box(&train), 1.0).unwrap();
                    black_box(model)
                })
            });
        });
    }
    group.finish();

    // Batch annealing: many windows annealed concurrently.
    let mut model = DsGlModel::new(layout);
    model.init_persistence(0.9);
    fit_ridge(&mut model, &train, 1.0).unwrap();
    let windows = &test[..test.len().min(32)];
    let cfg = dsgl_ising::AnnealConfig::default();
    let mut group = c.benchmark_group("infer_batch_32w_threads");
    for &t in &threads {
        group.bench_with_input(BenchmarkId::from_parameter(t), &t, |b, &t| {
            Threading::Fixed(t).install(|| {
                b.iter(|| black_box(inference::infer_batch(&model, windows, &cfg, 42).unwrap()))
            });
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_kernels, bench_parallel_scaling
}
criterion_main!(benches);
