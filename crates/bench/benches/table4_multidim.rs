//! Table IV regeneration (scaled): the multi-feature housing pipeline.

use criterion::{criterion_group, criterion_main, Criterion};
use dsgl_bench::pipeline::{self, Scale};
use dsgl_core::PatternKind;
use std::hint::black_box;

fn bench_table4(c: &mut Criterion) {
    let scale = Scale::quick();
    let p = pipeline::prepare("ca_housing", &scale, 7);
    c.bench_function("table4_housing_dsgl", |b| {
        b.iter(|| {
            let (dense, _) = pipeline::train_dense(&p, &scale, 7);
            let d = pipeline::decompose_model(&dense, &p, &scale, 0.15, PatternKind::DMesh, 7);
            let hw = pipeline::hw_config(&p, &scale);
            black_box(pipeline::eval_mapped(&d, &p, &hw, 7))
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_table4
}
criterion_main!(benches);
