//! Table II regeneration (scaled): train both arms on covid and
//! evaluate — the accuracy-comparison pipeline end to end.

use criterion::{criterion_group, criterion_main, Criterion};
use dsgl_bench::pipeline::{self, BaselineKind, Scale};
use dsgl_core::PatternKind;
use std::hint::black_box;

fn bench_table2(c: &mut Criterion) {
    let scale = Scale::quick();
    let p = pipeline::prepare("covid", &scale, 7);
    c.bench_function("table2_dsgl_train_map_eval", |b| {
        b.iter(|| {
            let (dense, _) = pipeline::train_dense(&p, &scale, 7);
            let d = pipeline::decompose_model(&dense, &p, &scale, 0.15, PatternKind::DMesh, 7);
            let hw = pipeline::hw_config(&p, &scale);
            black_box(pipeline::eval_mapped(&d, &p, &hw, 7))
        })
    });
    c.bench_function("table2_gwn_train_eval", |b| {
        b.iter(|| black_box(pipeline::run_baseline(BaselineKind::Gwn, &p, &scale, 7)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_table2
}
criterion_main!(benches);
