//! Table III regeneration: FLOP counting plus the platform
//! latency/energy model.

use criterion::{criterion_group, criterion_main, Criterion};
use dsgl_bench::pipeline::{self, BaselineKind, Scale};
use dsgl_hw::platform::PLATFORMS;
use std::hint::black_box;

fn bench_table3(c: &mut Criterion) {
    let scale = Scale::quick();
    let p = pipeline::prepare("covid", &scale, 7);
    c.bench_function("table3_flops_and_platforms", |b| {
        b.iter(|| {
            let mut total = 0.0;
            for kind in BaselineKind::ALL {
                let flops = pipeline::baseline_flops(kind, &p, &scale);
                for platform in &PLATFORMS {
                    total += platform.latency_us(flops) + platform.energy_mj(flops);
                }
            }
            black_box(total)
        })
    });
}

criterion_group!(benches, bench_table3);
criterion_main!(benches);
