//! Fig. 11 regeneration (scaled): mapped inference at two annealing
//! budgets under temporal & spatial co-annealing.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dsgl_bench::pipeline::{self, Scale};
use dsgl_core::PatternKind;
use std::hint::black_box;

fn bench_fig11(c: &mut Criterion) {
    let scale = Scale::quick();
    let p = pipeline::prepare("covid", &scale, 7);
    let (dense, _) = pipeline::train_dense(&p, &scale, 7);
    let d = pipeline::decompose_model(&dense, &p, &scale, 0.2, PatternKind::DMesh, 7);
    let mut hw = pipeline::hw_config(&p, &scale);
    hw.lanes = (hw.lanes / 2).max(1); // force temporal multiplexing
    let mut group = c.benchmark_group("fig11_budget");
    for budget_us in [0.5, 5.0] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{budget_us}us")),
            &budget_us,
            |b, &budget_us| {
                let hw_b = hw.with_budget(budget_us * 1000.0);
                b.iter(|| black_box(pipeline::eval_mapped(&d, &p, &hw_b, 7)))
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_fig11
}
criterion_main!(benches);
