//! Fig. 13 regeneration (scaled): mapped inference under analog noise.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dsgl_bench::pipeline::{self, Scale};
use dsgl_core::PatternKind;
use dsgl_ising::NoiseModel;
use std::hint::black_box;

fn bench_fig13(c: &mut Criterion) {
    let scale = Scale::quick();
    let p = pipeline::prepare("no2", &scale, 7);
    let (dense, _) = pipeline::train_dense(&p, &scale, 7);
    let d = pipeline::decompose_model(&dense, &p, &scale, 0.15, PatternKind::DMesh, 7);
    let hw0 = pipeline::hw_config(&p, &scale);
    let mut group = c.benchmark_group("fig13_noise_level");
    for pct in [0.0, 0.10] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{}pct", pct * 100.0)),
            &pct,
            |b, &pct| {
                let mut hw = hw0;
                hw.anneal.noise = NoiseModel::relative(pct);
                b.iter(|| black_box(pipeline::eval_mapped(&d, &p, &hw, 7)))
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_fig13
}
criterion_main!(benches);
