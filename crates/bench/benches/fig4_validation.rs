//! Fig. 4 regeneration: the six-spin DSPU-vs-BRIM validation run.

use criterion::{criterion_group, criterion_main, Criterion};
use dsgl_ising::{AnnealConfig, Brim, Coupling, FlipSchedule, RealValuedDspu};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn instance() -> Coupling {
    let mut j = Coupling::zeros(6);
    j.set(0, 1, 0.8);
    j.set(1, 2, -0.5);
    j.set(2, 3, 0.6);
    j.set(3, 4, -0.7);
    j.set(4, 5, 0.9);
    j.set(5, 0, 0.4);
    j.set(1, 4, 0.3);
    j
}

fn bench_fig4(c: &mut Criterion) {
    let cfg = AnnealConfig {
        dt_ns: 1.0,
        max_time_ns: 500.0,
        ..AnnealConfig::default()
    };
    c.bench_function("fig4_dspu_6spin_500ns", |b| {
        b.iter(|| {
            let mut dspu = RealValuedDspu::new(instance(), vec![-1.5; 6]).unwrap();
            dspu.clamp(0, 0.6).unwrap();
            dspu.clamp(2, -0.4).unwrap();
            dspu.clamp(4, 0.5).unwrap();
            let mut rng = StdRng::seed_from_u64(7);
            dspu.randomize_free(&mut rng);
            black_box(dspu.run(&cfg, &mut rng))
        })
    });
    c.bench_function("fig4_brim_6spin_500ns", |b| {
        b.iter(|| {
            let mut brim = Brim::new(instance(), vec![0.0; 6]).unwrap();
            brim.clamp(0, 0.6).unwrap();
            brim.clamp(2, -0.4).unwrap();
            brim.clamp(4, 0.5).unwrap();
            let mut rng = StdRng::seed_from_u64(7);
            brim.randomize(&mut rng);
            black_box(brim.anneal(&cfg, &FlipSchedule::none(), &mut rng))
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_fig4
}
criterion_main!(benches);
