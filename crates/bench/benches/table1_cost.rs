//! Table I regeneration: the component-level hardware cost model.

use criterion::{criterion_group, criterion_main, Criterion};
use dsgl_hw::CostModel;
use std::hint::black_box;

fn bench_table1(c: &mut Criterion) {
    let model = CostModel::default();
    c.bench_function("table1_three_designs", |b| {
        b.iter(|| black_box(model.table_one()))
    });
    c.bench_function("table1_scaling_sweep", |b| {
        b.iter(|| {
            // Cost curves behind the scalability argument.
            for k in [125, 250, 500] {
                black_box(model.dsgl((4, 4), k, 30));
                black_box(model.dspu_dense(16 * k));
            }
        })
    });
}

criterion_group!(benches, bench_table1);
criterion_main!(benches);
