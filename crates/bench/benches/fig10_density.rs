//! Fig. 10 regeneration (scaled): one density-sweep point per pattern —
//! decompose, refit, and co-anneal the covid system.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dsgl_bench::pipeline::{self, Scale};
use dsgl_core::PatternKind;
use std::hint::black_box;

fn bench_fig10(c: &mut Criterion) {
    let scale = Scale::quick();
    let p = pipeline::prepare("covid", &scale, 7);
    let (dense, _) = pipeline::train_dense(&p, &scale, 7);
    let hw = pipeline::hw_config(&p, &scale);
    let mut group = c.benchmark_group("fig10_density_point");
    for pattern in PatternKind::ALL {
        group.bench_with_input(
            BenchmarkId::from_parameter(pattern.name()),
            &pattern,
            |b, &pattern| {
                b.iter(|| {
                    let d = pipeline::decompose_model(&dense, &p, &scale, 0.15, pattern, 7);
                    black_box(pipeline::eval_mapped(&d, &p, &hw, 7))
                })
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_fig10
}
criterion_main!(benches);
