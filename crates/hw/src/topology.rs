//! The PE/CU mesh topology (paper Fig. 7).
//!
//! PEs tile a `(rows, cols)` grid. A Coupling Unit sits at every interior
//! intersection — between each 2×2 quad of PEs — so a `R×C` PE grid has
//! `(R-1)·(C-1)` CUs. Each CU exposes four portals, one toward each
//! corner PE, and a `4L × 3L` analog crossbar coupling nodes from
//! different corner PEs. Neighbouring CUs are joined by super
//! connections (the orange grid), which wormholes ride to couple remote
//! PEs.

use serde::{Deserialize, Serialize};

/// The static mesh of PEs and CUs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MeshTopology {
    rows: usize,
    cols: usize,
}

impl MeshTopology {
    /// Creates the topology of a `(rows, cols)` PE grid.
    ///
    /// # Panics
    ///
    /// Panics on an empty grid.
    pub fn new(grid: (usize, usize)) -> Self {
        assert!(grid.0 > 0 && grid.1 > 0, "PE grid must be non-empty");
        MeshTopology {
            rows: grid.0,
            cols: grid.1,
        }
    }

    /// Number of PEs.
    pub fn pe_count(&self) -> usize {
        self.rows * self.cols
    }

    /// Number of CUs (interior intersections).
    pub fn cu_count(&self) -> usize {
        self.rows.saturating_sub(1) * self.cols.saturating_sub(1)
    }

    /// Grid coordinate of a PE.
    ///
    /// # Panics
    ///
    /// Panics for out-of-range PEs.
    pub fn pe_coord(&self, pe: usize) -> (usize, usize) {
        assert!(pe < self.pe_count(), "PE index out of range");
        (pe / self.cols, pe % self.cols)
    }

    /// Grid coordinate of a CU (CU `(r, c)` touches PEs `(r, c)`,
    /// `(r, c+1)`, `(r+1, c)`, `(r+1, c+1)`).
    ///
    /// # Panics
    ///
    /// Panics for out-of-range CUs.
    pub fn cu_coord(&self, cu: usize) -> (usize, usize) {
        assert!(cu < self.cu_count(), "CU index out of range");
        (cu / (self.cols - 1), cu % (self.cols - 1))
    }

    /// The four PEs at the corners of a CU, row-major.
    ///
    /// # Panics
    ///
    /// Panics for out-of-range CUs.
    pub fn cu_corner_pes(&self, cu: usize) -> [usize; 4] {
        let (r, c) = self.cu_coord(cu);
        [
            r * self.cols + c,
            r * self.cols + c + 1,
            (r + 1) * self.cols + c,
            (r + 1) * self.cols + c + 1,
        ]
    }

    /// CUs whose crossbars can couple the two (distinct) PEs directly —
    /// i.e. CUs having both as corners. Horizontally/vertically adjacent
    /// interior PE pairs share two CUs; diagonal pairs share one; remote
    /// pairs share none (they need a wormhole).
    pub fn cus_between(&self, pe_a: usize, pe_b: usize) -> Vec<usize> {
        (0..self.cu_count())
            .filter(|&cu| {
                let corners = self.cu_corner_pes(cu);
                corners.contains(&pe_a) && corners.contains(&pe_b)
            })
            .collect()
    }

    /// The CU nearest to a PE (its top-left-most adjacent CU), used as a
    /// wormhole anchor.
    ///
    /// Returns `None` when the grid has no CUs at all (1×N or N×1).
    pub fn anchor_cu(&self, pe: usize) -> Option<usize> {
        if self.cu_count() == 0 {
            return None;
        }
        // The CU at (min(r, rows-2), min(c, cols-2)) always touches PE (r, c).
        let (r, c) = self.pe_coord(pe);
        let rr = r.min(self.rows - 2);
        let cc = c.min(self.cols - 2);
        Some(rr * (self.cols - 1) + cc)
    }

    /// Length (in CU-grid hops) of the super-connection route a wormhole
    /// between two PEs takes: Manhattan distance between their anchor
    /// CUs. `None` when the grid has no CUs.
    pub fn wormhole_route_len(&self, pe_a: usize, pe_b: usize) -> Option<usize> {
        let ca = self.anchor_cu(pe_a)?;
        let cb = self.anchor_cu(pe_b)?;
        let (ar, ac) = self.cu_coord(ca);
        let (br, bc) = self.cu_coord(cb);
        Some(ar.abs_diff(br) + ac.abs_diff(bc))
    }

    /// Ports per CU given `L` lanes per portal (four portals).
    pub fn cu_ports(&self, lanes: usize) -> usize {
        4 * lanes
    }

    /// Crossbar size of one CU: `4L × 3L` (nodes from the same PE are
    /// already coupled inside the PE, so a full `4L × 4L` is unneeded).
    pub fn cu_crossbar_couplers(&self, lanes: usize) -> usize {
        4 * lanes * 3 * lanes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts() {
        let t = MeshTopology::new((4, 4));
        assert_eq!(t.pe_count(), 16);
        assert_eq!(t.cu_count(), 9);
        assert_eq!(MeshTopology::new((1, 5)).cu_count(), 0);
    }

    #[test]
    fn cu_corners() {
        let t = MeshTopology::new((3, 3));
        // CU 0 at (0,0) touches PEs 0,1,3,4.
        assert_eq!(t.cu_corner_pes(0), [0, 1, 3, 4]);
        // CU 3 at (1,1) touches PEs 4,5,7,8.
        assert_eq!(t.cu_corner_pes(3), [4, 5, 7, 8]);
    }

    #[test]
    fn shared_cus() {
        let t = MeshTopology::new((3, 3));
        // Interior horizontal pair 4-5 shares CUs (0,1) and (1,1) = ids 1, 3.
        assert_eq!(t.cus_between(4, 5), vec![1, 3]);
        // Diagonal pair 0-4 shares exactly CU 0.
        assert_eq!(t.cus_between(0, 4), vec![0]);
        // Remote pair 0-8 shares none.
        assert!(t.cus_between(0, 8).is_empty());
    }

    #[test]
    fn anchors_touch_their_pe() {
        let t = MeshTopology::new((3, 4));
        for pe in 0..t.pe_count() {
            let cu = t.anchor_cu(pe).unwrap();
            assert!(
                t.cu_corner_pes(cu).contains(&pe),
                "anchor CU {cu} does not touch PE {pe}"
            );
        }
    }

    #[test]
    fn wormhole_routes() {
        let t = MeshTopology::new((4, 4));
        assert_eq!(t.wormhole_route_len(0, 15), Some(4)); // corner to corner
        assert_eq!(t.wormhole_route_len(0, 1), Some(1)); // neighbouring anchors
        assert_eq!(MeshTopology::new((1, 3)).wormhole_route_len(0, 2), None);
    }

    #[test]
    fn cu_crossbar_shape() {
        let t = MeshTopology::new((2, 2));
        assert_eq!(t.cu_ports(30), 120);
        assert_eq!(t.cu_crossbar_couplers(30), 10_800);
    }
}
