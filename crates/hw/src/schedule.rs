//! Lane allocation and temporal slicing (paper Fig. 9).
//!
//! Every cross-PE coupling must ride an analog lane through a CU. A PE
//! pair whose boundary demand fits within the `L` lanes per portal
//! anneals purely spatially; beyond that, the spatial scheduler hands
//! the node lists to the temporal scheduler, which divides them into
//! slices of at most `L` exported nodes per side and rotates the active
//! slice (switch-in-turn).

use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// One cross-PE coupling to be scheduled.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CrossCoupling {
    /// Variable on the first PE.
    pub var_a: usize,
    /// Variable on the second PE.
    pub var_b: usize,
    /// Coupling weight.
    pub weight: f64,
}

/// The schedule of one PE-pair link.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LinkSchedule {
    /// The PE pair (normalised `a < b`).
    pub pes: (usize, usize),
    /// Couplings grouped per slice; all slices of a link rotate in turn.
    pub slices: Vec<Vec<CrossCoupling>>,
    /// Distinct exported nodes on side `a` / side `b`.
    pub boundary: (usize, usize),
}

impl LinkSchedule {
    /// Number of slices (1 = pure spatial co-annealing).
    pub fn slice_count(&self) -> usize {
        self.slices.len()
    }

    /// Whether temporal multiplexing is engaged on this link.
    pub fn is_temporal(&self) -> bool {
        self.slices.len() > 1
    }

    /// Total couplings carried.
    pub fn coupling_count(&self) -> usize {
        self.slices.iter().map(Vec::len).sum()
    }

    /// The couplings of a purely spatial (single-slice) link, or `None`
    /// when temporal multiplexing is engaged. Spatial couplings are
    /// continuous analog paths and can be flattened into one hot list —
    /// see `MappedMachine` in `dsgl-hw`.
    pub fn spatial(&self) -> Option<&[CrossCoupling]> {
        if self.is_temporal() {
            None
        } else {
            self.slices.first().map(Vec::as_slice)
        }
    }
}

/// Builds the slice schedule for one PE pair given `lanes` per portal.
///
/// Couplings are grouped by exported node on the heavier side, and nodes
/// are packed into slices of at most `lanes` exports, so each slice's
/// demand fits the portal (the paper's "divide into slices, each size
/// not greater than L").
///
/// # Panics
///
/// Panics if `lanes == 0` or `couplings` is empty.
pub fn schedule_link(
    pe_a: usize,
    pe_b: usize,
    couplings: &[CrossCoupling],
    lanes: usize,
) -> LinkSchedule {
    assert!(lanes > 0, "need at least one lane");
    assert!(!couplings.is_empty(), "cannot schedule an empty link");
    let side_a: BTreeSet<usize> = couplings.iter().map(|c| c.var_a).collect();
    let side_b: BTreeSet<usize> = couplings.iter().map(|c| c.var_b).collect();
    let boundary = (side_a.len(), side_b.len());

    // Group couplings by their export node on the heavier side.
    let by_a = side_a.len() >= side_b.len();
    let mut groups: BTreeMap<usize, Vec<CrossCoupling>> = BTreeMap::new();
    for &c in couplings {
        let key = if by_a { c.var_a } else { c.var_b };
        groups.entry(key).or_default().push(c);
    }
    // Pack node groups into slices of ≤ `lanes` exported nodes.
    let mut slices: Vec<Vec<CrossCoupling>> = Vec::new();
    let mut current: Vec<CrossCoupling> = Vec::new();
    let mut current_nodes = 0usize;
    for (_, group) in groups {
        if current_nodes == lanes {
            slices.push(std::mem::take(&mut current));
            current_nodes = 0;
        }
        current.extend(group);
        current_nodes += 1;
    }
    if !current.is_empty() {
        slices.push(current);
    }
    LinkSchedule {
        pes: (pe_a.min(pe_b), pe_a.max(pe_b)),
        slices,
        boundary,
    }
}

/// The active slice of a rotating link at simulated time `t_ns`.
pub fn active_slice(slice_count: usize, dwell_ns: f64, t_ns: f64) -> usize {
    if slice_count <= 1 || dwell_ns <= 0.0 {
        return 0;
    }
    ((t_ns / dwell_ns).floor() as usize) % slice_count
}

#[cfg(test)]
mod tests {
    use super::*;

    fn coupling(a: usize, b: usize) -> CrossCoupling {
        CrossCoupling {
            var_a: a,
            var_b: b,
            weight: 1.0,
        }
    }

    #[test]
    fn fits_in_one_slice_when_demand_low() {
        let cs: Vec<CrossCoupling> = (0..5).map(|i| coupling(i, 100 + i)).collect();
        let s = schedule_link(0, 1, &cs, 30);
        assert_eq!(s.slice_count(), 1);
        assert!(!s.is_temporal());
        assert_eq!(s.boundary, (5, 5));
        assert_eq!(s.coupling_count(), 5);
    }

    #[test]
    fn slices_when_demand_exceeds_lanes() {
        // 7 exported nodes on side a, 2 lanes -> 4 slices.
        let cs: Vec<CrossCoupling> = (0..7).map(|i| coupling(i, 100)).collect();
        let s = schedule_link(0, 1, &cs, 2);
        assert_eq!(s.slice_count(), 4);
        assert!(s.is_temporal());
        // Every coupling appears exactly once across all slices.
        assert_eq!(s.coupling_count(), 7);
        let mut seen: Vec<usize> = s
            .slices
            .iter()
            .flatten()
            .map(|c| c.var_a)
            .collect();
        seen.sort_unstable();
        assert_eq!(seen, vec![0, 1, 2, 3, 4, 5, 6]);
    }

    #[test]
    fn slices_bound_exported_nodes() {
        // 5 nodes each exporting 3 couplings; 2 lanes -> each slice has ≤ 2 nodes.
        let mut cs = Vec::new();
        for node in 0..5 {
            for k in 0..3 {
                cs.push(coupling(node, 200 + k));
            }
        }
        let s = schedule_link(2, 1, &cs, 2);
        assert_eq!(s.pes, (1, 2), "normalised pair");
        for slice in &s.slices {
            let nodes: BTreeSet<usize> = slice.iter().map(|c| c.var_a).collect();
            assert!(nodes.len() <= 2, "slice exports {} nodes", nodes.len());
        }
    }

    #[test]
    fn groups_by_heavier_side() {
        // Side b has more distinct nodes; grouping should use b.
        let cs: Vec<CrossCoupling> = (0..6).map(|i| coupling(7, 100 + i)).collect();
        let s = schedule_link(0, 1, &cs, 3);
        assert_eq!(s.boundary, (1, 6));
        assert_eq!(s.slice_count(), 2);
    }

    #[test]
    fn rotation() {
        assert_eq!(active_slice(3, 10.0, 0.0), 0);
        assert_eq!(active_slice(3, 10.0, 9.9), 0);
        assert_eq!(active_slice(3, 10.0, 10.0), 1);
        assert_eq!(active_slice(3, 10.0, 25.0), 2);
        assert_eq!(active_slice(3, 10.0, 30.0), 0);
        assert_eq!(active_slice(1, 10.0, 99.0), 0);
    }

    #[test]
    #[should_panic(expected = "empty link")]
    fn empty_link_panics() {
        schedule_link(0, 1, &[], 2);
    }
}
