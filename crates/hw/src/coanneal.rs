//! Co-annealing simulation of a decomposed model on the PE/CU mesh
//! (paper Sec. IV.D).
//!
//! Three physical effects distinguish the mapped machine from an ideal
//! dense DSPU, and all three are modelled here:
//!
//! 1. **Synchronisation staleness**: time-multiplexed mappings see
//!    remote node voltages as snapshots refreshed every
//!    `sync_interval_ns` (Fig. 12's knob). Links annealing purely
//!    spatially are continuous analog paths and always see live values —
//!    the paper needs no synchronisation within a single mapping;
//! 2. **Temporal multiplexing**: links whose boundary demand exceeds the
//!    `L` portal lanes rotate through coupling slices (switch-in-turn).
//!    A coupling's remote value is *sampled and held* while its slice is
//!    active and the held value keeps driving the coupler between
//!    activations (the In-CU Weight Buffer plus hold capacitors), so the
//!    machine performs a Jacobi-style iteration with values whose
//!    staleness is the rotation period — converging to the same fixed
//!    point as the dense machine, just more slowly. This is why higher
//!    density (more slices) needs a longer annealing budget (Fig. 11);
//! 3. **Wormholes**: long-range couplings ride CU super-connections and
//!    behave like ordinary cross-PE couplings once routed.

use crate::config::HwConfig;
use crate::fault::HwFaultModel;
use crate::schedule::{active_slice, schedule_link, CrossCoupling, LinkSchedule};
use dsgl_core::inference::EvalReport;
use dsgl_core::metrics::{pooled_rmse, rmse};
use dsgl_core::{CoreError, DecomposedModel, TelemetrySink, TraceScope};
use dsgl_data::Sample;
use dsgl_ising::convergence::max_rate;
use dsgl_ising::noise::gaussian;
use dsgl_ising::{AnnealReport, Coupling, TiledCoupling, RC_NS};
use rand::{Rng, RngExt};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Outcome of one mapped inference.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CoAnnealReport {
    /// The underlying annealing run (latency = `anneal.sim_time_ns`).
    pub anneal: AnnealReport,
    /// Active PE-pair links.
    pub links: usize,
    /// Links that needed temporal multiplexing.
    pub temporal_links: usize,
    /// Largest slice count on any link.
    pub max_slices: usize,
    /// Wormhole super-connections in use.
    pub wormholes: usize,
}

/// A decomposed model loaded onto the simulated mesh hardware.
#[derive(Debug, Clone)]
pub struct MappedMachine {
    n: usize,
    /// Intra-PE couplings as dense per-PE tiles: `step_once` runs
    /// cache-resident tile kernels instead of CSR index chasing.
    intra: TiledCoupling,
    /// Scratch for the tiled mat-vec's gathered state.
    tile_gather: Vec<f64>,
    links: Vec<LinkSchedule>,
    /// Couplings of all purely spatial (single-slice) links, flattened
    /// into one contiguous list — these act on live voltages with no
    /// sample-and-hold state, so one hot loop covers them all.
    spatial: Vec<CrossCoupling>,
    /// Sample-and-hold values per sliced link: for each coupling of each
    /// slice, the held remote values `(held_of_b_for_a, held_of_a_for_b)`.
    held: Vec<Vec<Vec<(f64, f64)>>>,
    h: Vec<f64>,
    state: Vec<f64>,
    free: Vec<bool>,
    snapshot: Vec<f64>,
    /// Pooled run scratch: convergence snapshot, summed currents, and
    /// readout accumulator. Dead storage between runs, fully
    /// reinitialised at each use, so repeat runs allocate nothing.
    run_prev: Vec<f64>,
    run_currents: Vec<f64>,
    run_acc: Vec<f64>,
    rail: f64,
    capacitance: f64,
    target_range: std::ops::Range<usize>,
    history_len: usize,
    wormholes: usize,
    readout: Option<Vec<f64>>,
    /// Per-node mask: `true` for variables placed on a declared-dead PE.
    /// Such nodes are pinned to ground on every load and never anneal.
    faulted: Vec<bool>,
    /// Cross-PE couplings severed by dead CU lanes at programming time.
    severed_couplings: usize,
    /// Variables placed per PE (index = PE id), for occupancy telemetry.
    pe_occupancy: Vec<usize>,
    /// Portal lanes per PE pair the machine was built with.
    lanes: usize,
    /// Metrics sink; noop unless [`set_telemetry`](Self::set_telemetry)
    /// attached an enabled one.
    telemetry: TelemetrySink,
    /// Span scope; noop unless [`set_tracing`](Self::set_tracing)
    /// attached an enabled one.
    tracing: TraceScope,
}

impl MappedMachine {
    /// Programs the mesh with a decomposed model.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] if `lanes == 0`.
    pub fn new(decomposed: &DecomposedModel, lanes: usize) -> Result<Self, CoreError> {
        Self::with_faults(decomposed, lanes, &HwFaultModel::none())
    }

    /// Programs the mesh around declared-dead resources: cross-PE
    /// couplings through dead CU lanes are severed, and every variable
    /// placed on a dead PE is pinned to ground on each sample load (it
    /// neither anneals nor drives its couplers with anything but 0 V).
    /// Run [`crate::validate::validate_mapping_with_faults`] first to
    /// audit how much of the mapping the defects take out.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] if `lanes == 0` or a
    /// declared defect references a PE outside the grid.
    pub fn with_faults(
        decomposed: &DecomposedModel,
        lanes: usize,
        faults: &HwFaultModel,
    ) -> Result<Self, CoreError> {
        if lanes == 0 {
            return Err(CoreError::InvalidConfig {
                reason: "hardware must have at least one lane per portal".into(),
            });
        }
        let pe_count = decomposed.grid.0 * decomposed.grid.1;
        if let Some(max_pe) = faults.max_pe() {
            if max_pe >= pe_count {
                return Err(CoreError::InvalidConfig {
                    reason: format!(
                        "fault model references PE {max_pe}, grid has {pe_count} PEs"
                    ),
                });
            }
        }
        let model = &decomposed.model;
        let n = model.layout().total();
        let mut intra = Coupling::zeros(n);
        let mut cross: BTreeMap<(usize, usize), Vec<CrossCoupling>> = BTreeMap::new();
        let mut severed = 0usize;
        for (i, j, w) in model.coupling().nonzeros() {
            let (pa, pb) = (decomposed.var_to_pe[i], decomposed.var_to_pe[j]);
            if pa == pb {
                intra.set(i, j, w);
            } else {
                if faults.lane_dead(pa, pb) {
                    severed += 1;
                    continue;
                }
                let key = (pa.min(pb), pa.max(pb));
                let (va, vb) = if pa < pb { (i, j) } else { (j, i) };
                cross.entry(key).or_default().push(CrossCoupling {
                    var_a: va,
                    var_b: vb,
                    weight: w,
                });
            }
        }
        let faulted: Vec<bool> = decomposed
            .var_to_pe
            .iter()
            .map(|&pe| faults.pe_dead(pe))
            .collect();
        let mut pe_occupancy = vec![0usize; pe_count];
        for &pe in &decomposed.var_to_pe {
            pe_occupancy[pe] += 1;
        }
        let links: Vec<LinkSchedule> = cross
            .into_iter()
            .map(|((a, b), cs)| schedule_link(a, b, &cs, lanes))
            .collect();
        let held = links
            .iter()
            .map(|l| {
                l.slices
                    .iter()
                    .map(|s| vec![(0.0, 0.0); s.len()])
                    .collect()
            })
            .collect();
        let spatial: Vec<CrossCoupling> = links
            .iter()
            .filter_map(LinkSchedule::spatial)
            .flatten()
            .copied()
            .collect();
        let layout = model.layout();
        Ok(MappedMachine {
            n,
            intra: TiledCoupling::from_dense_partition(&intra, &decomposed.var_to_pe),
            tile_gather: Vec::new(),
            links,
            spatial,
            held,
            h: model.h().to_vec(),
            state: vec![0.0; n],
            free: vec![true; n],
            snapshot: vec![0.0; n],
            run_prev: Vec::new(),
            run_currents: Vec::new(),
            run_acc: Vec::new(),
            rail: 1.0,
            capacitance: RC_NS,
            target_range: layout.target_range(),
            history_len: layout.history_len(),
            wormholes: decomposed.wormholes.len(),
            readout: None,
            faulted,
            severed_couplings: severed,
            pe_occupancy,
            lanes,
            telemetry: TelemetrySink::noop(),
            tracing: TraceScope::noop(),
        })
    }

    /// Attaches a [`TelemetrySink`] and records the static mapping shape
    /// (`hw.mappings`, `hw.pes`, `hw.lanes`, `hw.links`,
    /// `hw.temporal_links`, `hw.max_slices`, `hw.wormholes`,
    /// `hw.pe_occupancy`, `hw.cu_lane_demand`) once. Subsequent
    /// [`run`](Self::run)s record the `hw.coanneal_runs`,
    /// `hw.slice_switches`, and `hw.sync_refreshes` counters. The sink
    /// never touches the RNG or the dynamics, so co-annealed results are
    /// bit-identical with or without it.
    pub fn set_telemetry(&mut self, sink: TelemetrySink) {
        self.telemetry = sink;
        self.record_mapping_metrics();
    }

    /// The attached telemetry sink (noop by default).
    pub fn telemetry(&self) -> &TelemetrySink {
        &self.telemetry
    }

    /// Attaches a [`TraceScope`]. Each subsequent [`run`](Self::run)
    /// records one `hw.coanneal` span (steps, sim time, convergence)
    /// into the scope's collector, parented to the scope's current
    /// parent span. Follows the telemetry contract: the span is built
    /// only after the dynamics finish, a noop scope costs one branch
    /// and reads no clock, so co-annealed results are bit-identical
    /// with or without tracing.
    pub fn set_tracing(&mut self, scope: TraceScope) {
        self.tracing = scope;
    }

    /// The attached trace scope (noop by default).
    pub fn tracing(&self) -> &TraceScope {
        &self.tracing
    }

    /// Gauges and histograms describing the programmed mapping.
    fn record_mapping_metrics(&self) {
        let sink = &self.telemetry;
        if !sink.is_enabled() {
            return;
        }
        sink.counter_add("hw.mappings", 1);
        sink.gauge_set("hw.pes", self.pe_occupancy.len() as f64);
        sink.gauge_set("hw.lanes", self.lanes as f64);
        sink.gauge_set("hw.links", self.link_count() as f64);
        sink.gauge_set("hw.temporal_links", self.temporal_link_count() as f64);
        sink.gauge_set("hw.max_slices", self.max_slices() as f64);
        sink.gauge_set("hw.wormholes", self.wormholes as f64);
        for &occ in &self.pe_occupancy {
            sink.record("hw.pe_occupancy", occ as f64);
        }
        // Per-link CU lane demand: the heavier side's boundary export
        // count — compared against the built lane budget `L`, this is
        // the slice pressure of the mapping.
        for link in &self.links {
            let (a, b) = link.boundary;
            sink.record("hw.cu_lane_demand", a.max(b) as f64);
        }
    }

    /// Variables placed on declared-dead PEs (pinned to ground).
    pub fn faulted_nodes(&self) -> Vec<usize> {
        self.faulted
            .iter()
            .enumerate()
            .filter_map(|(i, &f)| f.then_some(i))
            .collect()
    }

    /// Target-frame indices whose variable sits on a dead PE — the
    /// entries a caller should degrade to a fallback value after
    /// [`MappedMachine::prediction`].
    pub fn faulted_target_indices(&self) -> Vec<usize> {
        self.target_range
            .clone()
            .enumerate()
            .filter_map(|(frame_idx, v)| self.faulted[v].then_some(frame_idx))
            .collect()
    }

    /// Cross-PE couplings severed by dead CU lanes when programming.
    pub fn severed_couplings(&self) -> usize {
        self.severed_couplings
    }

    /// Whether any declared defect affects this machine.
    pub fn has_faults(&self) -> bool {
        self.severed_couplings > 0 || self.faulted.iter().any(|&f| f)
    }

    /// Pins every faulted node to ground: a dead PE's outputs read 0 V
    /// and must not be treated as free variables.
    fn pin_faulted(&mut self) {
        for (v, &dead) in self.faulted.iter().enumerate() {
            if dead {
                self.state[v] = 0.0;
                self.free[v] = false;
            }
        }
    }

    /// Number of PE-pair links.
    pub fn link_count(&self) -> usize {
        self.links.len()
    }

    /// Links requiring temporal multiplexing at the built lane count.
    pub fn temporal_link_count(&self) -> usize {
        self.links.iter().filter(|l| l.is_temporal()).count()
    }

    /// Largest slice count across links (1 = pure spatial).
    pub fn max_slices(&self) -> usize {
        self.links.iter().map(LinkSchedule::slice_count).max().unwrap_or(1)
    }

    /// Current node voltages.
    pub fn state(&self) -> &[f64] {
        &self.state
    }

    /// Loads a sample: history variables clamped, target variables
    /// randomised near zero.
    pub fn load_sample<R: Rng + ?Sized>(&mut self, sample: &Sample, rng: &mut R) -> Result<(), CoreError> {
        if sample.history.len() != self.history_len
            || sample.target.len() != self.target_range.len()
        {
            return Err(CoreError::SampleShapeMismatch {
                what: "sample",
                expected: self.n,
                actual: sample.history.len() + sample.target.len(),
            });
        }
        for (v, &obs) in sample.history.iter().enumerate() {
            self.state[v] = obs.clamp(-self.rail, self.rail);
            self.free[v] = false;
        }
        for v in self.target_range.clone() {
            self.state[v] = (rng.random::<f64>() - 0.5) * 0.2 * self.rail;
            self.free[v] = true;
        }
        self.pin_faulted();
        self.snapshot.copy_from_slice(&self.state);
        // Prime the sample-and-hold buffers with the loaded state.
        for (li, link) in self.links.iter().enumerate() {
            for (slice, helds) in link.slices.iter().zip(self.held[li].iter_mut()) {
                for (c, h) in slice.iter().zip(helds.iter_mut()) {
                    h.0 = self.snapshot[c.var_b];
                    h.1 = self.snapshot[c.var_a];
                }
            }
        }
        self.readout = None;
        Ok(())
    }

    /// One integrator step at simulated time `t` (shared by the main
    /// annealing loop and the integrating readout).
    fn step_once<R: Rng + ?Sized>(
        &mut self,
        t: f64,
        last_sync: &mut f64,
        config: &HwConfig,
        currents: &mut [f64],
        rng: &mut R,
    ) {
        let anneal = &config.anneal;
        // Inter-tile synchronisation: refresh remote views.
        if t - *last_sync >= config.sync_interval_ns {
            self.snapshot.copy_from_slice(&self.state);
            *last_sync = t;
        }
        // Intra-PE couplings act on live voltages: dense per-PE tile
        // kernels over gathered state.
        self.intra
            .matvec_with_scratch(&self.state, currents, &mut self.tile_gather);
        // Cross-PE couplings: spatially co-annealed links (one slice)
        // are continuous analog paths through the CU crossbar and act on
        // live voltages — the paper needs no synchronisation within a
        // mapping; all of them are flattened into one contiguous list.
        for c in &self.spatial {
            currents[c.var_a] += c.weight * self.state[c.var_b];
            currents[c.var_b] += c.weight * self.state[c.var_a];
        }
        // Time-multiplexed links sample-and-hold: the active slice
        // refreshes its held remote values (from the synchronised
        // snapshot), and every coupling keeps driving with its held
        // value between activations.
        for (li, link) in self.links.iter().enumerate() {
            let s = link.slice_count();
            if s == 1 {
                continue; // handled by the flattened spatial list
            }
            let active = active_slice(s, config.slice_dwell_ns, t);
            for (c, h) in link.slices[active]
                .iter()
                .zip(self.held[li][active].iter_mut())
            {
                h.0 = self.snapshot[c.var_b];
                h.1 = self.snapshot[c.var_a];
            }
            for (slice, helds) in link.slices.iter().zip(&self.held[li]) {
                for (c, h) in slice.iter().zip(helds) {
                    currents[c.var_a] += c.weight * h.0;
                    currents[c.var_b] += c.weight * h.1;
                }
            }
        }
        // Integrate.
        for (i, &ci) in currents.iter().enumerate().take(self.n) {
            if !self.free[i] {
                continue;
            }
            let mut current = ci;
            if anneal.noise.coupler_std > 0.0 {
                current *= 1.0 + anneal.noise.coupler_std * gaussian(rng);
            }
            let dv = (current + self.h[i] * self.state[i]) / self.capacitance;
            let mut next = self.state[i] + dv * anneal.dt_ns;
            if anneal.noise.node_std > 0.0 {
                let sigma = anneal.noise.node_std
                    * self.rail
                    * (2.0 * self.h[i].abs() * anneal.dt_ns / self.capacitance).sqrt();
                next += sigma * gaussian(rng);
            }
            self.state[i] = next.clamp(-self.rail, self.rail);
        }
    }

    /// Loads a sample in imputation mode: history variables *and* the
    /// listed target-frame entries are clamped to their true values;
    /// only the remaining targets anneal (paper: acquiring unknown node
    /// features from observed ones).
    ///
    /// # Errors
    ///
    /// Returns shape mismatches and out-of-range observed indices.
    pub fn load_sample_imputation<R: Rng + ?Sized>(
        &mut self,
        sample: &Sample,
        observed_targets: &[usize],
        rng: &mut R,
    ) -> Result<(), CoreError> {
        self.load_sample(sample, rng)?;
        let frame_len = self.target_range.len();
        for &t_idx in observed_targets {
            if t_idx >= frame_len {
                return Err(CoreError::SampleShapeMismatch {
                    what: "observed target index",
                    expected: frame_len,
                    actual: t_idx,
                });
            }
            let v = self.history_len + t_idx;
            self.state[v] = sample.target[t_idx].clamp(-self.rail, self.rail);
            self.free[v] = false;
        }
        self.pin_faulted();
        self.snapshot.copy_from_slice(&self.state);
        for (li, link) in self.links.iter().enumerate() {
            for (slice, helds) in link.slices.iter().zip(self.held[li].iter_mut()) {
                for (c, h) in slice.iter().zip(helds.iter_mut()) {
                    h.0 = self.snapshot[c.var_b];
                    h.1 = self.snapshot[c.var_a];
                }
            }
        }
        Ok(())
    }

    /// Runs co-annealing under `config`, returning the report.
    pub fn run<R: Rng + ?Sized>(&mut self, config: &HwConfig, rng: &mut R) -> CoAnnealReport {
        let span_start = self.tracing.start();
        let anneal = &config.anneal;
        let mut t = 0.0;
        let mut steps = 0usize;
        let mut last_sync = 0.0;
        let mut converged = false;
        let mut rate = f64::INFINITY;
        let mut prev = std::mem::take(&mut self.run_prev);
        prev.clear();
        prev.extend_from_slice(&self.state);
        let mut currents = std::mem::take(&mut self.run_currents);
        currents.clear();
        currents.resize(self.n, 0.0);
        self.snapshot.copy_from_slice(&self.state);

        while t < anneal.max_time_ns {
            self.step_once(t, &mut last_sync, config, &mut currents, rng);
            t += anneal.dt_ns;
            steps += 1;
            if steps.is_multiple_of(anneal.check_every) {
                rate = max_rate(
                    &prev,
                    &self.state,
                    &self.free,
                    anneal.dt_ns * anneal.check_every as f64,
                );
                prev.copy_from_slice(&self.state);
                if rate < anneal.tolerance {
                    converged = true;
                    break;
                }
            }
        }
        // Integrating readout: when slices rotate (or noise is injected),
        // the voltages ripple around the fixed point, so the node-control
        // unit integrates over one full rotation period before latching
        // the output — this is how analog machines average duty-cycled
        // couplings and dynamic noise out of the readout.
        self.readout = None;
        if self.max_slices() > 1 || !anneal.noise.is_none() {
            let mut period_ns = (self.max_slices() as f64 * config.slice_dwell_ns)
                .max(4.0 * anneal.dt_ns);
            if !anneal.noise.is_none() {
                // Average over several RC constants to filter noise.
                let min_h = self
                    .h
                    .iter()
                    .fold(f64::INFINITY, |m, h| m.min(h.abs()))
                    .max(1e-9);
                period_ns = period_ns.max(8.0 * self.capacitance / min_h);
            }
            let avg_steps = (period_ns / anneal.dt_ns).ceil() as usize;
            let mut acc = std::mem::take(&mut self.run_acc);
            acc.clear();
            acc.resize(self.n, 0.0);
            for _ in 0..avg_steps {
                self.step_once(t, &mut last_sync, config, &mut currents, rng);
                t += anneal.dt_ns;
                steps += 1;
                for (a, &s) in acc.iter_mut().zip(&self.state) {
                    *a += s;
                }
            }
            let inv = 1.0 / avg_steps as f64;
            self.readout = Some(acc.iter().map(|&a| a * inv).collect());
            self.run_acc = acc;
        }
        if self.telemetry.is_enabled() {
            self.telemetry.counter_add("hw.coanneal_runs", 1);
            // Both counters are derived arithmetically from simulated
            // time, so the hot loop stays untouched: snapshot refreshes
            // happen once per sync interval, and every temporal link
            // advances its active slice once per dwell period.
            if config.sync_interval_ns > 0.0 {
                self.telemetry.counter_add(
                    "hw.sync_refreshes",
                    (t / config.sync_interval_ns).floor().max(0.0) as u64,
                );
            }
            if self.max_slices() > 1 && config.slice_dwell_ns > 0.0 {
                self.telemetry.counter_add(
                    "hw.slice_switches",
                    (t / config.slice_dwell_ns).floor().max(0.0) as u64
                        * self.temporal_link_count() as u64,
                );
            }
        }
        self.run_prev = prev;
        self.run_currents = currents;
        self.tracing.record(
            "hw.coanneal",
            span_start,
            &[
                ("steps", steps as f64),
                ("sim_time_ns", t),
                ("converged", f64::from(u8::from(converged))),
            ],
        );
        CoAnnealReport {
            anneal: AnnealReport {
                converged,
                steps,
                sim_time_ns: t,
                final_rate: rate,
                energy: 0.0,
                sparse_steps: 0,
                mean_active_fraction: 1.0,
            },
            links: self.link_count(),
            temporal_links: self.temporal_link_count(),
            max_slices: self.max_slices(),
            wormholes: self.wormholes,
        }
    }

    /// The target-block prediction after a run: the integrated readout
    /// when one was latched, the instantaneous voltages otherwise.
    pub fn prediction(&self) -> Vec<f64> {
        let source = self.readout.as_deref().unwrap_or(&self.state);
        source[self.target_range.clone()].to_vec()
    }
}

/// One mapped inference: program, load, co-anneal, read out.
///
/// # Errors
///
/// Returns configuration and shape errors from machine construction.
pub fn infer_mapped<R: Rng + ?Sized>(
    decomposed: &DecomposedModel,
    sample: &Sample,
    config: &HwConfig,
    rng: &mut R,
) -> Result<(Vec<f64>, CoAnnealReport), CoreError> {
    let mut machine = MappedMachine::new(decomposed, config.lanes)?;
    machine.load_sample(sample, rng)?;
    let report = machine.run(config, rng);
    Ok((machine.prediction(), report))
}

/// Evaluates mapped inference over a test set (machine built once,
/// reloaded per sample).
///
/// # Errors
///
/// Returns [`CoreError::EmptyTrainingSet`] for an empty test set.
pub fn evaluate_mapped<R: Rng + ?Sized>(
    decomposed: &DecomposedModel,
    samples: &[Sample],
    config: &HwConfig,
    rng: &mut R,
) -> Result<EvalReport, CoreError> {
    if samples.is_empty() {
        return Err(CoreError::EmptyTrainingSet);
    }
    let mut machine = MappedMachine::new(decomposed, config.lanes)?;
    let mut per_sample = Vec::with_capacity(samples.len());
    let mut latency = 0.0;
    let mut converged = 0usize;
    for s in samples {
        machine.load_sample(s, rng)?;
        let report = machine.run(config, rng);
        let pred = machine.prediction();
        per_sample.push((rmse(&pred, &s.target), pred.len()));
        latency += report.anneal.sim_time_ns;
        converged += report.anneal.converged as usize;
    }
    Ok(EvalReport {
        rmse: pooled_rmse(&per_sample),
        mean_latency_ns: latency / samples.len() as f64,
        samples: samples.len(),
        converged_fraction: converged as f64 / samples.len() as f64,
    })
}

/// Evaluates mapped *imputation*: for each sample a seeded random
/// `observe_fraction` of the target frame is clamped to ground truth and
/// the rest is annealed; RMSE is pooled over the unobserved entries
/// only.
///
/// # Errors
///
/// Returns [`CoreError::EmptyTrainingSet`] for an empty test set and
/// [`CoreError::InvalidConfig`] for a fraction outside `[0, 1)`.
pub fn evaluate_mapped_imputation<R: Rng + ?Sized>(
    decomposed: &DecomposedModel,
    samples: &[Sample],
    observe_fraction: f64,
    config: &HwConfig,
    rng: &mut R,
) -> Result<EvalReport, CoreError> {
    if samples.is_empty() {
        return Err(CoreError::EmptyTrainingSet);
    }
    if !(0.0..1.0).contains(&observe_fraction) {
        return Err(CoreError::InvalidConfig {
            reason: format!("observe fraction {observe_fraction} outside [0, 1)"),
        });
    }
    let mut machine = MappedMachine::new(decomposed, config.lanes)?;
    let frame_len = decomposed.model.layout().frame_len();
    let observe_count = ((frame_len as f64) * observe_fraction).round() as usize;
    let mut per_sample = Vec::with_capacity(samples.len());
    let mut latency = 0.0;
    let mut converged = 0usize;
    for s in samples {
        // Seeded pseudo-random observed subset (shuffle of indices).
        let mut idx: Vec<usize> = (0..frame_len).collect();
        use rand::seq::SliceRandom;
        idx.shuffle(rng);
        let observed = &idx[..observe_count];
        machine.load_sample_imputation(s, observed, rng)?;
        let report = machine.run(config, rng);
        let pred = machine.prediction();
        let hidden: Vec<usize> = idx[observe_count..].to_vec();
        if hidden.is_empty() {
            continue;
        }
        let p: Vec<f64> = hidden.iter().map(|&i| pred[i]).collect();
        let t: Vec<f64> = hidden.iter().map(|&i| s.target[i]).collect();
        per_sample.push((rmse(&p, &t), p.len()));
        latency += report.anneal.sim_time_ns;
        converged += report.anneal.converged as usize;
    }
    Ok(EvalReport {
        rmse: pooled_rmse(&per_sample),
        mean_latency_ns: latency / samples.len() as f64,
        samples: samples.len(),
        converged_fraction: converged as f64 / samples.len() as f64,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsgl_core::inference::infer_fixed_point;
    use dsgl_core::{decompose, DecomposeConfig, DsGlModel, PatternKind, TrainConfig, Trainer, VariableLayout};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn trained_decomposed(
        nodes: usize,
        density: f64,
        seed: u64,
    ) -> (DecomposedModel, Vec<Sample>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let samples: Vec<Sample> = (0..40)
            .map(|_| {
                let hist: Vec<f64> = (0..nodes).map(|_| rng.random::<f64>() * 0.8).collect();
                let target: Vec<f64> = (0..nodes)
                    .map(|i| 0.55 * hist[i] + 0.25 * hist[(i + 1) % nodes])
                    .collect();
                Sample { history: hist, target }
            })
            .collect();
        let layout = VariableLayout::new(1, nodes, 1);
        let mut model = DsGlModel::new(layout);
        Trainer::new(TrainConfig {
            epochs: 50,
            lr: 0.05,
            lr_decay: 0.98,
            ..TrainConfig::default()
        })
        .fit(&mut model, &samples, &mut rng)
        .unwrap();
        let cfg = DecomposeConfig {
            density,
            pattern: PatternKind::DMesh,
            wormhole_budget: 2,
            pe_capacity: nodes.div_ceil(2),
            grid: (2, 2),
            finetune: Some(TrainConfig {
                epochs: 15,
                lr: 0.05,
                lr_decay: 0.98,
                ..TrainConfig::default()
            }),
        };
        let d = decompose(&model, &samples, &cfg, &mut rng).unwrap();
        (d, samples)
    }

    #[test]
    fn mapped_inference_close_to_fixed_point() {
        let (d, samples) = trained_decomposed(8, 0.6, 1);
        let mut rng = StdRng::seed_from_u64(2);
        let hw = HwConfig::default().with_sync_interval(10.0);
        let (pred, report) = infer_mapped(&d, &samples[0], &hw, &mut rng).unwrap();
        assert!(report.anneal.converged, "did not converge: {report:?}");
        let fp = infer_fixed_point(&d.model, &samples[0], 300).unwrap();
        let diff = rmse(&pred, &fp);
        assert!(diff < 0.02, "mapped vs fixed point rmse {diff}");
    }

    #[test]
    fn temporal_multiplexing_engages_with_few_lanes() {
        let (d, samples) = trained_decomposed(8, 0.6, 3);
        let mut rng = StdRng::seed_from_u64(4);
        let spacious = MappedMachine::new(&d, 30).unwrap();
        assert_eq!(spacious.max_slices(), 1, "30 lanes should be plenty");
        let tight = MappedMachine::new(&d, 1).unwrap();
        if tight.link_count() > 0 {
            // With one lane, any link exporting >1 node must slice.
            let boundary: usize = d
                .cross_pe_couplings()
                .len();
            if boundary > 1 {
                assert!(tight.max_slices() >= 1);
            }
        }
        // A sliced machine still anneals to a sensible answer.
        let hw = HwConfig {
            lanes: 1,
            slice_dwell_ns: 20.0,
            ..HwConfig::default()
        };
        let (pred, report) = infer_mapped(&d, &samples[0], &hw, &mut rng).unwrap();
        assert_eq!(pred.len(), samples[0].target.len());
        assert!(report.max_slices >= 1);
        let err = rmse(&pred, &samples[0].target);
        assert!(err < 0.3, "sliced inference way off: {err}");
    }

    #[test]
    fn stale_sync_hurts_accuracy() {
        let (d, samples) = trained_decomposed(8, 0.6, 5);
        if d.cross_pe_couplings().is_empty() {
            return; // placement happened to be fully local; nothing to test
        }
        let eval = |sync: f64, seed: u64| {
            let mut rng = StdRng::seed_from_u64(seed);
            let hw = HwConfig::default().with_sync_interval(sync).with_budget(4_000.0);
            evaluate_mapped(&d, &samples[..10], &hw, &mut rng).unwrap().rmse
        };
        let fresh = eval(10.0, 7);
        let stale = eval(4_000.0, 7);
        assert!(
            stale >= fresh - 1e-6,
            "staleness should not help: fresh {fresh}, stale {stale}"
        );
    }

    #[test]
    fn evaluate_mapped_reports() {
        let (d, samples) = trained_decomposed(8, 0.6, 8);
        let mut rng = StdRng::seed_from_u64(9);
        let hw = HwConfig::default();
        let report = evaluate_mapped(&d, &samples[..5], &hw, &mut rng).unwrap();
        assert_eq!(report.samples, 5);
        assert!(report.rmse < 0.2, "rmse {}", report.rmse);
        assert!(report.mean_latency_ns > 0.0);
    }

    #[test]
    fn zero_lanes_rejected() {
        let (d, _) = trained_decomposed(8, 0.6, 10);
        assert!(matches!(
            MappedMachine::new(&d, 0),
            Err(CoreError::InvalidConfig { .. })
        ));
    }

    #[test]
    fn imputation_clamps_observed_targets() {
        let (d, samples) = trained_decomposed(8, 0.6, 12);
        let mut machine = MappedMachine::new(&d, 30).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let observed = [0usize, 2, 4];
        machine
            .load_sample_imputation(&samples[0], &observed, &mut rng)
            .unwrap();
        let hw = HwConfig::default();
        machine.run(&hw, &mut rng);
        let pred = machine.prediction();
        for &i in &observed {
            assert!(
                (pred[i] - samples[0].target[i]).abs() < 1e-12,
                "observed target {i} must stay clamped"
            );
        }
        // Out-of-range observed index rejected.
        assert!(machine
            .load_sample_imputation(&samples[0], &[999], &mut rng)
            .is_err());
    }

    #[test]
    fn evaluate_mapped_imputation_reports() {
        let (d, samples) = trained_decomposed(8, 0.6, 13);
        let mut rng = StdRng::seed_from_u64(6);
        let hw = HwConfig::default();
        let report =
            evaluate_mapped_imputation(&d, &samples[..6], 0.5, &hw, &mut rng).unwrap();
        assert_eq!(report.samples, 6);
        assert!(report.rmse.is_finite() && report.rmse < 0.5);
        // Bad fraction rejected.
        assert!(evaluate_mapped_imputation(&d, &samples[..2], 1.5, &hw, &mut rng).is_err());
        assert!(evaluate_mapped_imputation(&d, &[], 0.5, &hw, &mut rng).is_err());
    }

    #[test]
    fn dead_pe_pins_its_variables_to_ground() {
        let (d, samples) = trained_decomposed(8, 0.6, 20);
        let pe = (0..d.pe_count()).find(|&p| !d.vars_on(p).is_empty()).unwrap();
        let faults = HwFaultModel {
            dead_pes: vec![pe],
            dead_cu_lanes: vec![],
        };
        let mut machine = MappedMachine::with_faults(&d, 30, &faults).unwrap();
        assert!(machine.has_faults());
        assert_eq!(machine.faulted_nodes(), d.vars_on(pe));
        let mut rng = StdRng::seed_from_u64(21);
        machine.load_sample(&samples[0], &mut rng).unwrap();
        machine.run(&HwConfig::default(), &mut rng);
        for &v in &machine.faulted_nodes() {
            assert_eq!(machine.state()[v], 0.0, "dead node {v} must read ground");
        }
        // The surviving fabric still produces finite output.
        assert!(machine.prediction().iter().all(|p| p.is_finite()));
        // Frame indices line up with the faulted target variables.
        for idx in machine.faulted_target_indices() {
            assert!(machine.faulted_nodes().contains(&(d.model.layout().history_len() + idx)));
        }
    }

    #[test]
    fn dead_cu_lane_severs_cross_couplings() {
        let (d, samples) = trained_decomposed(8, 0.6, 22);
        let healthy = MappedMachine::new(&d, 30).unwrap();
        let Some(first) = d.cross_pe_couplings().first().copied() else {
            return; // fully local placement; nothing to sever
        };
        let (pa, pb) = (d.var_to_pe[first.0], d.var_to_pe[first.1]);
        let faults = HwFaultModel {
            dead_pes: vec![],
            dead_cu_lanes: vec![(pa, pb)],
        };
        let mut machine = MappedMachine::with_faults(&d, 30, &faults).unwrap();
        assert!(machine.severed_couplings() > 0);
        assert!(machine.link_count() < healthy.link_count() || machine.severed_couplings() > 0);
        // Still anneals to finite output without the severed couplings.
        let mut rng = StdRng::seed_from_u64(23);
        machine.load_sample(&samples[0], &mut rng).unwrap();
        machine.run(&HwConfig::default(), &mut rng);
        assert!(machine.prediction().iter().all(|p| p.is_finite()));
    }

    #[test]
    fn fault_model_outside_grid_rejected() {
        let (d, _) = trained_decomposed(8, 0.6, 24);
        let faults = HwFaultModel {
            dead_pes: vec![99],
            dead_cu_lanes: vec![],
        };
        assert!(matches!(
            MappedMachine::with_faults(&d, 30, &faults),
            Err(CoreError::InvalidConfig { .. })
        ));
    }

    #[test]
    fn no_faults_is_bit_identical_to_new() {
        let (d, samples) = trained_decomposed(8, 0.6, 25);
        let run = |mut machine: MappedMachine| {
            let mut rng = StdRng::seed_from_u64(26);
            machine.load_sample(&samples[0], &mut rng).unwrap();
            machine.run(&HwConfig::default(), &mut rng);
            machine
                .prediction()
                .iter()
                .map(|p| p.to_bits())
                .collect::<Vec<_>>()
        };
        let plain = run(MappedMachine::new(&d, 30).unwrap());
        let faultless =
            run(MappedMachine::with_faults(&d, 30, &HwFaultModel::none()).unwrap());
        assert_eq!(plain, faultless);
    }

    #[test]
    fn bad_sample_shape_rejected() {
        let (d, _) = trained_decomposed(8, 0.6, 11);
        let mut machine = MappedMachine::new(&d, 30).unwrap();
        let mut rng = StdRng::seed_from_u64(0);
        let bad = Sample {
            history: vec![0.0; 3],
            target: vec![0.0; 8],
        };
        assert!(machine.load_sample(&bad, &mut rng).is_err());
    }
}
