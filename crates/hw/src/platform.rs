//! Platform latency/energy model (paper Table III).
//!
//! The paper compares DS-GL against GNNs running on five platforms —
//! four FPGA accelerators assumed to run at *peak* TFLOPS with full
//! utilisation, and an A100 GPU with measured (far-below-peak)
//! efficiency. The same methodology is reproduced here: accelerator
//! latency is `FLOPs / peak`, GPU latency applies a measured-derating
//! utilisation factor, and energy is `latency × typical power`.

use serde::{Deserialize, Serialize};

/// One hardware platform row of Table III.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Platform {
    /// Platform name.
    pub name: &'static str,
    /// Accelerator works evaluated on it in the paper.
    pub works: &'static str,
    /// Peak TFLOPS.
    pub peak_tflops: f64,
    /// Typical power in W (the paper uses typical, not max).
    pub typical_power_w: f64,
    /// Fraction of peak actually sustained. 1.0 for the accelerators
    /// (the paper's full-utilisation assumption); well below 1 for the
    /// GPU, matching the paper's measured-latency column where the A100
    /// lands orders of magnitude above its peak-FLOPS bound on small
    /// irregular GNN inference.
    pub utilization: f64,
}

impl Platform {
    /// Inference latency in µs for a model of `flops` floating-point
    /// operations.
    ///
    /// # Panics
    ///
    /// Panics if the platform constants are non-positive.
    pub fn latency_us(&self, flops: u64) -> f64 {
        assert!(self.peak_tflops > 0.0 && self.utilization > 0.0);
        flops as f64 / (self.peak_tflops * 1e12 * self.utilization) * 1e6
    }

    /// Energy per inference in mJ.
    pub fn energy_mj(&self, flops: u64) -> f64 {
        self.latency_us(flops) * 1e-6 * self.typical_power_w * 1e3
    }
}

/// The five platforms of paper Table III.
pub const PLATFORMS: [Platform; 5] = [
    Platform {
        name: "Stratix 10 SX",
        works: "AWB-GCN / I-GCN",
        peak_tflops: 2.7,
        typical_power_w: 137.0,
        utilization: 1.0,
    },
    Platform {
        name: "Alveo U200",
        works: "NTGAT",
        peak_tflops: 1.4,
        typical_power_w: 100.0,
        utilization: 1.0,
    },
    Platform {
        name: "Alveo U250",
        works: "GraphAGILE",
        peak_tflops: 2.8,
        typical_power_w: 110.0,
        utilization: 1.0,
    },
    Platform {
        name: "Alveo U280",
        works: "RACE",
        peak_tflops: 2.1,
        typical_power_w: 100.0,
        utilization: 1.0,
    },
    Platform {
        name: "A100 SXM",
        works: "GPU (measured-derated)",
        peak_tflops: 156.0,
        typical_power_w: 250.0,
        utilization: 0.002,
    },
];

/// The DS-GL row: latency is the measured co-annealing time; energy is
/// that latency times the chip power from the cost model.
pub fn dsgl_energy_mj(latency_us: f64, chip_power_mw: f64) -> f64 {
    latency_us * 1e-6 * chip_power_mw
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_scales_with_flops() {
        let p = PLATFORMS[0];
        assert!((p.latency_us(2_700_000_000) - 1000.0).abs() < 1e-9);
        assert_eq!(p.latency_us(0), 0.0);
    }

    #[test]
    fn energy_consistent() {
        let p = PLATFORMS[1]; // 1.4 TFLOPS, 100 W
        let flops = 1_400_000_000; // -> 1000 µs -> 0.1 J = 100 mJ
        assert!((p.energy_mj(flops) - 100.0).abs() < 1e-9);
    }

    #[test]
    fn gpu_is_slowest_per_flop() {
        // The paper's GPU column exceeds every accelerator's latency.
        let flops = 1_000_000_000;
        let gpu = PLATFORMS[4].latency_us(flops);
        for p in &PLATFORMS[..4] {
            assert!(gpu > p.latency_us(flops), "{} beat the GPU", p.name);
        }
    }

    #[test]
    fn dsgl_energy_matches_paper_decade() {
        // ~1 µs at 550 mW -> ~5.5e-4 mJ, the decade Table III reports.
        let e = dsgl_energy_mj(1.0, 550.0);
        assert!((e - 5.5e-4).abs() < 1e-12);
    }
}
