//! The Scalable DSPU architecture model (paper Sec. IV.C–D and the
//! hardware side of the evaluation).
//!
//! A Scalable DSPU is a 2-D grid of Processing Elements — each a small
//! fully-coupled Real-Valued DSPU of `K` nodes — joined through Coupling
//! Units (CUs) sitting at mesh intersections. This crate models:
//!
//! - [`topology`]: the PE/CU mesh — which CUs serve which PE pairs,
//!   portals, and wormhole routes over the CU super-connection grid;
//! - [`schedule`]: lane allocation. Each PE portal has `L` analog lanes;
//!   when a PE pair's boundary demand exceeds `L`, the coupling list is
//!   cut into slices that rotate in turn (Temporal & Spatial
//!   co-annealing, paper Fig. 9);
//! - [`coanneal`]: a cycle-level simulator of the mapped machine. Intra-PE
//!   couplings act on live voltages; cross-PE couplings act on snapshot
//!   values refreshed every synchronisation interval (paper Fig. 12), and
//!   time-multiplexed slices are driven at boosted conductance so their
//!   duty-cycled average matches the trained coupling;
//! - [`cost`]: the component-level power/area model behind paper
//!   Table I;
//! - [`platform`]: the peak-TFLOPS platform model behind paper
//!   Table III.
//!
//! # Example
//!
//! ```no_run
//! use dsgl_hw::{coanneal, HwConfig};
//! # use dsgl_core::{DsGlModel, VariableLayout, DecomposeConfig, decompose};
//! # use rand::SeedableRng;
//! # let mut rng = rand::rngs::StdRng::seed_from_u64(0);
//! # let model = DsGlModel::new(VariableLayout::new(1, 8, 1));
//! # let cfg = DecomposeConfig::fitting(16, 6);
//! # let decomposed = decompose(&model, &[], &cfg, &mut rng).unwrap();
//! # let sample = dsgl_data::Sample { history: vec![0.0; 8], target: vec![0.0; 8] };
//! let hw = HwConfig::default();
//! let (prediction, report) = coanneal::infer_mapped(&decomposed, &sample, &hw, &mut rng)?;
//! let latency_ns = report.anneal.sim_time_ns;
//! assert!(report.max_slices >= 1);
//! # let _ = (prediction, latency_ns);
//! # Ok::<(), dsgl_core::CoreError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![deny(clippy::print_stdout, clippy::print_stderr)]

pub mod coanneal;
pub mod config;
pub mod cost;
pub mod fault;
pub mod platform;
pub mod schedule;
pub mod topology;
pub mod validate;

pub use coanneal::{infer_mapped, CoAnnealReport, MappedMachine};
pub use config::HwConfig;
pub use cost::{CostModel, HwCost};
pub use fault::HwFaultModel;
pub use platform::{Platform, PLATFORMS};
pub use topology::MeshTopology;
pub use validate::{validate_mapping, validate_mapping_with_faults, MappingReport};
