//! Mapping legality checks: does a decomposed model actually fit the
//! physical machine?
//!
//! The decomposition pipeline produces placements and masks; this module
//! independently audits the result against the PE/CU topology — the kind
//! of checker a hardware compiler runs before programming a chip.

use crate::fault::HwFaultModel;
use crate::topology::MeshTopology;
use dsgl_core::patterns::pe_allowed;
use dsgl_core::DecomposedModel;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// One legality violation found by [`validate_mapping`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum Violation {
    /// A PE hosts more variables than its capacity.
    PeOverCapacity {
        /// The overloaded PE.
        pe: usize,
        /// Variables placed on it.
        load: usize,
        /// Its capacity.
        capacity: usize,
    },
    /// A coupling crosses PEs with no CU between them, no pattern link,
    /// and no wormhole.
    UnroutableCoupling {
        /// First variable.
        var_a: usize,
        /// Second variable.
        var_b: usize,
        /// Its PEs.
        pes: (usize, usize),
    },
    /// A wormhole references a PE outside the grid.
    WormholeOutOfGrid {
        /// The offending PE pair.
        pes: (usize, usize),
    },
    /// A variable index in the placement exceeds the model's variables.
    PlacementOutOfRange {
        /// Number of placed variables.
        placed: usize,
        /// Model variables.
        expected: usize,
    },
    /// The mapping lands work on a resource the fault model declares
    /// dead: variables on a dead PE, or cross-PE couplings routed
    /// through dead CU lanes. Programming such a mapping silently loses
    /// the affected work, so the audit flags it up front.
    FaultedResource {
        /// The dead resource being used.
        resource: FaultedResource,
        /// How many variables (dead PE) or couplings (dead CU lane) the
        /// defect takes out.
        affected: usize,
    },
}

/// The dead resource behind a [`Violation::FaultedResource`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultedResource {
    /// A Processing Element declared dead.
    DeadPe {
        /// The dead PE.
        pe: usize,
    },
    /// The CU lanes between a PE pair (normalised order) declared dead.
    DeadCuLane {
        /// The PE pair whose portal lanes are broken.
        pes: (usize, usize),
    },
}

/// Per-link lane-demand summary produced alongside validation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LinkDemand {
    /// The PE pair (normalised).
    pub pes: (usize, usize),
    /// Distinct exporting nodes on each side.
    pub boundary: (usize, usize),
    /// Couplings carried.
    pub couplings: usize,
    /// Slices needed at the given lane count.
    pub slices: usize,
}

/// Full validation report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MappingReport {
    /// All violations found (empty = legal mapping).
    pub violations: Vec<Violation>,
    /// Demand of every active PE-pair link.
    pub links: Vec<LinkDemand>,
    /// Fraction of links needing temporal multiplexing.
    pub temporal_fraction: f64,
}

impl MappingReport {
    /// Whether the mapping is legal.
    pub fn is_legal(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Audits a decomposed model against the machine topology at `lanes`
/// lanes per portal.
pub fn validate_mapping(d: &DecomposedModel, lanes: usize) -> MappingReport {
    validate_mapping_with_faults(d, lanes, &HwFaultModel::none())
}

/// Audits a decomposed model against a machine with declared-dead
/// resources: on top of [`validate_mapping`]'s legality checks, every
/// dead PE hosting variables and every dead CU lane carrying couplings
/// is reported as a [`Violation::FaultedResource`] — the pre-programming
/// signal that the mapping will run degraded on this unit.
pub fn validate_mapping_with_faults(
    d: &DecomposedModel,
    lanes: usize,
    faults: &HwFaultModel,
) -> MappingReport {
    let mut violations = Vec::new();
    let topo = MeshTopology::new(d.grid);
    let total = d.model.layout().total();
    if d.var_to_pe.len() != total {
        violations.push(Violation::PlacementOutOfRange {
            placed: d.var_to_pe.len(),
            expected: total,
        });
    }

    // Capacity.
    let mut loads = vec![0usize; topo.pe_count()];
    for &pe in &d.var_to_pe {
        if pe < loads.len() {
            loads[pe] += 1;
        }
    }
    for (pe, &load) in loads.iter().enumerate() {
        if load > d.pe_capacity {
            violations.push(Violation::PeOverCapacity {
                pe,
                load,
                capacity: d.pe_capacity,
            });
        }
    }

    // Wormholes reference real PEs.
    for &(a, b) in &d.wormholes {
        if a >= topo.pe_count() || b >= topo.pe_count() {
            violations.push(Violation::WormholeOutOfGrid { pes: (a, b) });
        }
    }

    // Routability + demand.
    // Per link: exporting nodes on each side plus the coupling count.
    type LinkExports = BTreeMap<(usize, usize), (Vec<usize>, Vec<usize>, usize)>;
    let mut per_link: LinkExports = BTreeMap::new();
    for (i, j, _) in d.model.coupling().nonzeros() {
        let (pa, pb) = (d.var_to_pe[i], d.var_to_pe[j]);
        if pa == pb {
            continue;
        }
        let key = (pa.min(pb), pa.max(pb));
        let routable = pe_allowed(d.pattern, d.grid, pa, pb) || d.wormholes.contains(&key);
        if !routable {
            violations.push(Violation::UnroutableCoupling {
                var_a: i,
                var_b: j,
                pes: (pa, pb),
            });
        }
        let entry = per_link.entry(key).or_default();
        let (va, vb) = if pa < pb { (i, j) } else { (j, i) };
        if !entry.0.contains(&va) {
            entry.0.push(va);
        }
        if !entry.1.contains(&vb) {
            entry.1.push(vb);
        }
        entry.2 += 1;
    }
    let lanes = lanes.max(1);
    let links: Vec<LinkDemand> = per_link
        .into_iter()
        .map(|(pes, (a, b, couplings))| {
            let demand = a.len().max(b.len());
            LinkDemand {
                pes,
                boundary: (a.len(), b.len()),
                couplings,
                slices: demand.div_ceil(lanes),
            }
        })
        .collect();
    // Declared-dead resources hosting work.
    for &pe in &faults.dead_pes {
        let load = loads.get(pe).copied().unwrap_or(0);
        if load > 0 {
            violations.push(Violation::FaultedResource {
                resource: FaultedResource::DeadPe { pe },
                affected: load,
            });
        }
    }
    for link in &links {
        if faults.lane_dead(link.pes.0, link.pes.1) {
            violations.push(Violation::FaultedResource {
                resource: FaultedResource::DeadCuLane { pes: link.pes },
                affected: link.couplings,
            });
        }
    }
    let temporal = links.iter().filter(|l| l.slices > 1).count();
    let temporal_fraction = if links.is_empty() {
        0.0
    } else {
        temporal as f64 / links.len() as f64
    };
    MappingReport {
        violations,
        links,
        temporal_fraction,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsgl_core::ridge::fit_ridge;
    use dsgl_core::{decompose, DecomposeConfig, DsGlModel, PatternKind, VariableLayout};
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    fn decomposed(seed: u64) -> DecomposedModel {
        let n = 10;
        let mut rng = StdRng::seed_from_u64(seed);
        let samples: Vec<dsgl_data::Sample> = (0..30)
            .map(|_| {
                let hist: Vec<f64> = (0..n).map(|_| rng.random::<f64>() * 0.8).collect();
                let target: Vec<f64> = (0..n)
                    .map(|i| 0.5 * hist[i] + 0.2 * hist[(i + 1) % n])
                    .collect();
                dsgl_data::Sample {
                    history: hist,
                    target,
                }
            })
            .collect();
        let layout = VariableLayout::new(1, n, 1);
        let mut model = DsGlModel::new(layout);
        fit_ridge(&mut model, &samples, 1.0).unwrap();
        let cfg = DecomposeConfig {
            density: 0.3,
            pattern: PatternKind::Mesh,
            wormhole_budget: 2,
            pe_capacity: 6,
            grid: (2, 2),
            finetune: None,
        };
        decompose(&model, &samples, &cfg, &mut rng).unwrap()
    }

    #[test]
    fn pipeline_output_is_legal() {
        let d = decomposed(1);
        let report = validate_mapping(&d, 30);
        assert!(report.is_legal(), "violations: {:?}", report.violations);
        assert_eq!(report.temporal_fraction, 0.0, "30 lanes is plenty here");
    }

    #[test]
    fn lane_starvation_flags_temporal_links() {
        let d = decomposed(2);
        let report = validate_mapping(&d, 1);
        assert!(report.is_legal());
        if report.links.iter().any(|l| l.boundary.0.max(l.boundary.1) > 1) {
            assert!(report.temporal_fraction > 0.0);
        }
        for link in &report.links {
            assert_eq!(
                link.slices,
                link.boundary.0.max(link.boundary.1),
                "one lane ⇒ one node per slice"
            );
        }
    }

    #[test]
    fn tampering_is_caught() {
        let mut d = decomposed(3);
        // Force a coupling between diagonal PEs with no wormhole.
        d.wormholes.clear();
        let a = d.vars_on(0)[0];
        let b = d.vars_on(3)[0];
        d.model.coupling_mut().set(a, b, 5.0);
        let report = validate_mapping(&d, 30);
        assert!(
            report
                .violations
                .iter()
                .any(|v| matches!(v, Violation::UnroutableCoupling { .. })),
            "violations: {:?}",
            report.violations
        );
    }

    #[test]
    fn dead_pe_with_work_is_flagged() {
        let d = decomposed(5);
        // Find a PE that actually hosts variables.
        let pe = (0..4).find(|&p| !d.vars_on(p).is_empty()).unwrap();
        let faults = HwFaultModel {
            dead_pes: vec![pe],
            dead_cu_lanes: vec![],
        };
        let report = validate_mapping_with_faults(&d, 30, &faults);
        assert!(!report.is_legal());
        let expected = d.vars_on(pe).len();
        assert!(report.violations.iter().any(|v| matches!(
            v,
            Violation::FaultedResource {
                resource: FaultedResource::DeadPe { pe: p },
                affected,
            } if *p == pe && *affected == expected
        )));
    }

    #[test]
    fn dead_cu_lane_with_couplings_is_flagged() {
        let d = decomposed(6);
        let base = validate_mapping(&d, 30);
        let Some(link) = base.links.first() else {
            return; // placement happened to be fully local
        };
        let faults = HwFaultModel {
            dead_pes: vec![],
            dead_cu_lanes: vec![(link.pes.1, link.pes.0)], // reversed order
        };
        let report = validate_mapping_with_faults(&d, 30, &faults);
        assert!(report.violations.iter().any(|v| matches!(
            v,
            Violation::FaultedResource {
                resource: FaultedResource::DeadCuLane { pes },
                affected,
            } if *pes == link.pes && *affected == link.couplings
        )));
    }

    #[test]
    fn idle_dead_resources_stay_silent() {
        let d = decomposed(7);
        // A dead PE hosting nothing and a dead lane carrying nothing
        // cost the mapping nothing — no violation.
        let idle_pe = (0..4).find(|&p| d.vars_on(p).is_empty());
        let base = validate_mapping(&d, 30);
        let unused_lane = (0..4)
            .flat_map(|a| (a + 1..4).map(move |b| (a, b)))
            .find(|&pes| !base.links.iter().any(|l| l.pes == pes));
        let faults = HwFaultModel {
            dead_pes: idle_pe.into_iter().collect(),
            dead_cu_lanes: unused_lane.into_iter().collect(),
        };
        let report = validate_mapping_with_faults(&d, 30, &faults);
        assert!(
            !report
                .violations
                .iter()
                .any(|v| matches!(v, Violation::FaultedResource { .. })),
            "violations: {:?}",
            report.violations
        );
    }

    #[test]
    fn no_faults_matches_plain_validation() {
        let d = decomposed(8);
        assert_eq!(
            validate_mapping(&d, 4),
            validate_mapping_with_faults(&d, 4, &HwFaultModel::none())
        );
    }

    #[test]
    fn capacity_violation_detected() {
        let mut d = decomposed(4);
        d.pe_capacity = 1; // pretend the PEs were tiny
        let report = validate_mapping(&d, 30);
        assert!(report
            .violations
            .iter()
            .any(|v| matches!(v, Violation::PeOverCapacity { .. })));
    }
}
