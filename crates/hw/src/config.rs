//! Hardware configuration of a Scalable DSPU.

use dsgl_ising::AnnealConfig;
use serde::{Deserialize, Serialize};

/// Physical parameters of the mapped machine.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HwConfig {
    /// Analog lanes per exporting portal (`L`). The paper sets 30 "for
    /// better performance and hardware tradeoff".
    pub lanes: usize,
    /// Inter-tile synchronisation interval in ns: how often a PE's view
    /// of remote node voltages is refreshed. The DS-GL hardware supports
    /// 1/200 ns (paper Sec. V.D).
    pub sync_interval_ns: f64,
    /// Dwell time of one temporal-co-annealing slice before the
    /// switch-in-turn rotation, in ns. Must be well below the node RC
    /// constant (≈100 ns) so the capacitors see the *duty-cycled
    /// average* of the rotating couplings rather than chasing each
    /// slice's own equilibrium.
    pub slice_dwell_ns: f64,
    /// The underlying annealing run configuration.
    pub anneal: AnnealConfig,
}

impl HwConfig {
    /// Same configuration with a different annealing-time budget — the
    /// latency knob of paper Fig. 11.
    pub fn with_budget(mut self, max_time_ns: f64) -> Self {
        self.anneal.max_time_ns = max_time_ns;
        self
    }

    /// Same configuration with a different synchronisation interval —
    /// the knob of paper Fig. 12.
    pub fn with_sync_interval(mut self, sync_interval_ns: f64) -> Self {
        self.sync_interval_ns = sync_interval_ns;
        self
    }
}

impl Default for HwConfig {
    /// `L = 30`, 200 ns synchronisation, 20 ns slice dwell, default
    /// annealing (2 µs budget).
    fn default() -> Self {
        HwConfig {
            lanes: 30,
            sync_interval_ns: 200.0,
            slice_dwell_ns: 20.0,
            anneal: AnnealConfig::default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = HwConfig::default();
        assert_eq!(c.lanes, 30);
        assert_eq!(c.sync_interval_ns, 200.0);
    }

    #[test]
    fn builders() {
        let c = HwConfig::default().with_budget(5_000.0).with_sync_interval(50.0);
        assert_eq!(c.anneal.max_time_ns, 5_000.0);
        assert_eq!(c.sync_interval_ns, 50.0);
        assert_eq!(c.lanes, 30);
    }
}
