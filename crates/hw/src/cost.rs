//! Component-level power and area model (paper Table I).
//!
//! The model prices each analog/digital component class at a 45 nm
//! technology node; the per-component constants are calibrated so the
//! three anchor designs of paper Table I come out right:
//!
//! | design | effective spins | power | area |
//! |---|---|---|---|
//! | BRIM | 2000 | 250 mW | 5 mm² |
//! | DSPU-2000 | 2000 | 260 mW | 5.1 mm² |
//! | DS-GL (4×4 mesh, K = 500, L = 30) | 8000 | 550 mW | 6.5 mm² |
//!
//! The interesting structure is *why* DS-GL scales: an all-to-all
//! machine needs `n(n-1)/2` couplers (quadratic), while the mesh needs
//! `P·K(K-1)/2` PE-internal couplers plus small fixed-size CU crossbars —
//! linear in the PE count. PE-internal couplers are also cheaper than
//! global ones (shorter programmable-resistor wiring), which is how 4×
//! the spins fit in +30 % area.

use crate::topology::MeshTopology;
use serde::{Deserialize, Serialize};

/// Per-component cost constants (area mm², power mW).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    /// One node: nano-capacitor, comparator, node-control share.
    pub node_area: f64,
    /// Node power.
    pub node_power: f64,
    /// One circulative resistor ring (the DSPU's real-value upgrade).
    pub ring_area: f64,
    /// Ring power.
    pub ring_power: f64,
    /// One coupler in a chip-spanning all-to-all crossbar.
    pub global_coupler_area: f64,
    /// One coupler inside a PE-local crossbar (shorter wires).
    pub local_coupler_area: f64,
    /// Coupler power (same either way; resistive).
    pub coupler_power: f64,
    /// One CU crossbar coupler.
    pub cu_coupler_area: f64,
    /// CU coupler power.
    pub cu_coupler_power: f64,
    /// Per-PE digital overhead (routers, schedulers, buffers).
    pub pe_digital_area: f64,
    /// Per-PE digital power.
    pub pe_digital_power: f64,
    /// Fixed chip overhead (programming units, column select).
    pub fixed_area: f64,
    /// Fixed power.
    pub fixed_power: f64,
}

impl Default for CostModel {
    /// Constants calibrated to the Table I anchors (see module docs).
    fn default() -> Self {
        CostModel {
            node_area: 2.0e-4,
            node_power: 0.025,
            ring_area: 5.0e-5,
            ring_power: 5.0e-3,
            global_coupler_area: 2.2511e-6,
            local_coupler_area: 2.05e-6,
            coupler_power: 1.0e-4,
            cu_coupler_area: 1.1e-6,
            cu_coupler_power: 1.0e-4,
            pe_digital_area: 0.012,
            pe_digital_power: 5.0,
            fixed_area: 0.1,
            fixed_power: 0.1,
        }
    }
}

/// The cost summary of one design (one row of Table I).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HwCost {
    /// Design name.
    pub name: String,
    /// Effective spins (nodes usable for problems).
    pub effective_spins: usize,
    /// Power in mW.
    pub power_mw: f64,
    /// Area in mm².
    pub area_mm2: f64,
    /// Whether the design scales beyond a single crossbar.
    pub scalable: bool,
    /// Data type the design supports.
    pub data_type: &'static str,
}

impl CostModel {
    /// Costs the baseline binary BRIM: `n` nodes, all-to-all global
    /// crossbar, no resistor rings.
    pub fn brim(&self, n: usize) -> HwCost {
        let couplers = n * n.saturating_sub(1) / 2;
        HwCost {
            name: format!("BRIM-{n}"),
            effective_spins: n,
            power_mw: self.fixed_power
                + n as f64 * self.node_power
                + couplers as f64 * self.coupler_power,
            area_mm2: self.fixed_area
                + n as f64 * self.node_area
                + couplers as f64 * self.global_coupler_area,
            scalable: false,
            data_type: "Binary",
        }
    }

    /// Costs a dense Real-Valued DSPU: BRIM plus one circulative
    /// resistor ring per node.
    pub fn dspu_dense(&self, n: usize) -> HwCost {
        let base = self.brim(n);
        HwCost {
            name: format!("DSPU-{n}"),
            effective_spins: n,
            power_mw: base.power_mw + n as f64 * self.ring_power,
            area_mm2: base.area_mm2 + n as f64 * self.ring_area,
            scalable: false,
            data_type: "Real-Value",
        }
    }

    /// Costs a Scalable DSPU: a `grid` of PEs with `k` nodes each
    /// (local crossbars + rings), CUs with `4L×3L` crossbars, and
    /// per-PE digital control.
    pub fn dsgl(&self, grid: (usize, usize), k: usize, lanes: usize) -> HwCost {
        let topo = MeshTopology::new(grid);
        let pes = topo.pe_count();
        let n = pes * k;
        let pe_couplers = pes * (k * k.saturating_sub(1) / 2);
        let cu_couplers = topo.cu_count() * topo.cu_crossbar_couplers(lanes);
        HwCost {
            name: format!("DS-GL-{}x{}x{k}", grid.0, grid.1),
            effective_spins: n,
            power_mw: self.fixed_power
                + n as f64 * (self.node_power + self.ring_power)
                + pe_couplers as f64 * self.coupler_power
                + cu_couplers as f64 * self.cu_coupler_power
                + pes as f64 * self.pe_digital_power,
            area_mm2: self.fixed_area
                + n as f64 * (self.node_area + self.ring_area)
                + pe_couplers as f64 * self.local_coupler_area
                + cu_couplers as f64 * self.cu_coupler_area
                + pes as f64 * self.pe_digital_area,
            scalable: true,
            data_type: "Real-Value",
        }
    }

    /// The three Table I rows: BRIM-2000, DSPU-2000, and the 4×4×500
    /// DS-GL with `L = 30`.
    pub fn table_one(&self) -> [HwCost; 3] {
        [
            self.brim(2000),
            self.dspu_dense(2000),
            self.dsgl((4, 4), 500, 30),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, rel: f64) -> bool {
        (a - b).abs() <= rel * b
    }

    #[test]
    fn brim_anchor() {
        let c = CostModel::default().brim(2000);
        assert!(close(c.power_mw, 250.0, 0.05), "power {}", c.power_mw);
        assert!(close(c.area_mm2, 5.0, 0.05), "area {}", c.area_mm2);
        assert!(!c.scalable);
        assert_eq!(c.data_type, "Binary");
    }

    #[test]
    fn dspu_anchor() {
        let c = CostModel::default().dspu_dense(2000);
        assert!(close(c.power_mw, 260.0, 0.05), "power {}", c.power_mw);
        assert!(close(c.area_mm2, 5.1, 0.05), "area {}", c.area_mm2);
        assert_eq!(c.data_type, "Real-Value");
    }

    #[test]
    fn dsgl_anchor() {
        let c = CostModel::default().dsgl((4, 4), 500, 30);
        assert_eq!(c.effective_spins, 8000);
        assert!(close(c.power_mw, 550.0, 0.10), "power {}", c.power_mw);
        assert!(close(c.area_mm2, 6.5, 0.10), "area {}", c.area_mm2);
        assert!(c.scalable);
    }

    #[test]
    fn table_shape_holds() {
        // The qualitative claims of Table I: real-value support is a few
        // per-cent; 4x spins for ~2.2x power and ~1.3x area.
        let m = CostModel::default();
        let [brim, dspu, dsgl] = m.table_one();
        assert!(dspu.power_mw / brim.power_mw < 1.08);
        assert!(dspu.area_mm2 / brim.area_mm2 < 1.08);
        assert_eq!(dsgl.effective_spins, 4 * brim.effective_spins);
        let power_ratio = dsgl.power_mw / brim.power_mw;
        assert!((1.8..2.6).contains(&power_ratio), "power ratio {power_ratio}");
        let area_ratio = dsgl.area_mm2 / brim.area_mm2;
        assert!((1.15..1.45).contains(&area_ratio), "area ratio {area_ratio}");
    }

    #[test]
    fn quadratic_vs_linear_scaling() {
        // Doubling spins on a dense machine roughly quadruples coupler
        // area; doubling PEs on DS-GL roughly doubles it.
        let m = CostModel::default();
        let dense_2k = m.dspu_dense(2000).area_mm2;
        let dense_4k = m.dspu_dense(4000).area_mm2;
        assert!(dense_4k / dense_2k > 3.0, "dense should scale ~quadratically");
        let mesh_16 = m.dsgl((4, 4), 500, 30).area_mm2;
        let mesh_32 = m.dsgl((4, 8), 500, 30).area_mm2;
        assert!(mesh_32 / mesh_16 < 2.3, "mesh should scale ~linearly");
    }
}
