//! Mesh-level hardware defects: dead Processing Elements and dead
//! Coupling-Unit lanes.
//!
//! `dsgl-ising`'s `FaultModel` covers node- and coupler-level defects of
//! a single analog fabric. At the Scalable-DSPU level (paper Sec. IV)
//! whole *resources* fail instead: a PE loses power or its node-control
//! unit, taking every variable placed on it down with it, or the analog
//! lanes of a CU serving one PE pair break, severing every cross-PE
//! coupling routed through that portal.
//!
//! A [`HwFaultModel`] declares these defects so that
//! [`crate::MappedMachine::with_faults`] can program around them
//! (severed couplings are dropped, dead-PE variables are pinned to
//! ground) and [`crate::validate::validate_mapping_with_faults`] can
//! flag a mapping that lands work on broken silicon *before*
//! programming.

use serde::{Deserialize, Serialize};

/// Declared-dead resources of one Scalable-DSPU mesh.
///
/// # Example
///
/// ```
/// use dsgl_hw::fault::HwFaultModel;
///
/// let mut faults = HwFaultModel::none();
/// assert!(faults.is_none());
/// faults.dead_pes.push(3);
/// faults.dead_cu_lanes.push((0, 1));
/// assert!(!faults.is_none());
/// assert!(faults.lane_dead(1, 0), "lane pairs are unordered");
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct HwFaultModel {
    /// PEs that are entirely dead: every variable placed on one reads
    /// ground and never anneals.
    pub dead_pes: Vec<usize>,
    /// Unordered PE pairs whose CU portal lanes are broken: every
    /// cross-PE coupling between the pair is severed.
    pub dead_cu_lanes: Vec<(usize, usize)>,
}

impl HwFaultModel {
    /// A defect-free mesh.
    pub fn none() -> Self {
        HwFaultModel::default()
    }

    /// Whether this model declares any defect at all.
    pub fn is_none(&self) -> bool {
        self.dead_pes.is_empty() && self.dead_cu_lanes.is_empty()
    }

    /// Whether PE `pe` is declared dead.
    pub fn pe_dead(&self, pe: usize) -> bool {
        self.dead_pes.contains(&pe)
    }

    /// Whether the CU lanes between `a` and `b` are dead (order-free).
    pub fn lane_dead(&self, a: usize, b: usize) -> bool {
        self.dead_cu_lanes.contains(&(a, b)) || self.dead_cu_lanes.contains(&(b, a))
    }

    /// Largest PE index referenced by any declared defect, if any.
    pub fn max_pe(&self) -> Option<usize> {
        self.dead_pes
            .iter()
            .copied()
            .chain(self.dead_cu_lanes.iter().flat_map(|&(a, b)| [a, b]))
            .max()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_declares_nothing() {
        let f = HwFaultModel::none();
        assert!(f.is_none());
        assert!(!f.pe_dead(0));
        assert!(!f.lane_dead(0, 1));
        assert_eq!(f.max_pe(), None);
    }

    #[test]
    fn membership_is_order_free_for_lanes() {
        let f = HwFaultModel {
            dead_pes: vec![2],
            dead_cu_lanes: vec![(3, 1)],
        };
        assert!(f.pe_dead(2) && !f.pe_dead(1));
        assert!(f.lane_dead(1, 3) && f.lane_dead(3, 1));
        assert!(!f.lane_dead(1, 2));
        assert_eq!(f.max_pe(), Some(3));
    }
}
