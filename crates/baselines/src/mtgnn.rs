//! MTGNN analogue (Wu et al., KDD 2020).
//!
//! Signature ingredients kept: graph structure is *entirely learned*
//! from node embeddings (no predefined adjacency is used), propagation
//! is mix-hop over the learned graph, and residual connections preserve
//! node-local information. Scaled down to thousands of parameters.

use crate::adaptive::AdaptiveAdjacency;
use crate::common::StGnn;
use dsgl_nn::activation::{relu, relu_grad};
use dsgl_nn::{Adam, GraphConv, Linear, Matrix};
use rand::Rng;

/// The MTGNN-like baseline.
#[derive(Debug, Clone)]
pub struct MtgnnModel {
    input: Linear,
    adaptive: AdaptiveAdjacency,
    hop1: GraphConv,
    hop2: GraphConv,
    head: Linear,
    cache: Vec<MtgnnCache>,
}

#[derive(Debug, Clone)]
struct MtgnnCache {
    h0_pre: Matrix,
    h1_pre: Matrix,
    h2_pre: Matrix,
}

impl MtgnnModel {
    /// Builds the model for `n` nodes, `w` history steps, `f` features,
    /// and hidden width `hidden`.
    pub fn new<R: Rng + ?Sized>(
        n: usize,
        w: usize,
        f: usize,
        hidden: usize,
        rng: &mut R,
    ) -> Self {
        MtgnnModel {
            input: Linear::new(w * f, hidden, rng),
            adaptive: AdaptiveAdjacency::new(n, 8.min(n), rng),
            hop1: GraphConv::new(hidden, hidden, rng),
            hop2: GraphConv::new(hidden, hidden, rng),
            head: Linear::new(hidden, f, rng),
            cache: Vec::new(),
        }
    }
}

impl StGnn for MtgnnModel {
    fn name(&self) -> &'static str {
        "MTGNN"
    }

    fn forward(&mut self, x: &Matrix) -> Matrix {
        let h0_pre = self.input.forward(x);
        let h0 = relu(&h0_pre);
        let a = self.adaptive.forward();
        let h1_pre = self.hop1.forward(&a, &h0);
        let h1 = relu(&h1_pre).add(&h0); // mix-hop residual
        let a2 = self.adaptive.forward();
        let h2_pre = self.hop2.forward(&a2, &h1);
        let h2 = relu(&h2_pre).add(&h1);
        let y = self.head.forward(&h2);
        self.cache.push(MtgnnCache {
            h0_pre,
            h1_pre,
            h2_pre,
        });
        y
    }

    fn forward_inference(&self, x: &Matrix) -> Matrix {
        let h0 = relu(&self.input.forward_inference(x));
        let a = self.adaptive.forward_inference();
        let h1 = relu(&self.hop1.forward_inference(&a, &h0)).add(&h0);
        let h2 = relu(&self.hop2.forward_inference(&a, &h1)).add(&h1);
        self.head.forward_inference(&h2)
    }

    fn backward(&mut self, grad_out: &Matrix) {
        let MtgnnCache {
            h0_pre,
            h1_pre,
            h2_pre,
        } = self.cache.pop().expect("backward before forward");
        let d_h2 = self.head.backward(grad_out);
        // h2 = relu(h2_pre) + h1
        let d_h2pre = d_h2.hadamard(&relu_grad(&h2_pre));
        let (d_h1_conv, d_a2) = self.hop2.backward(&d_h2pre);
        self.adaptive.backward(&d_a2);
        let d_h1 = d_h1_conv.add(&d_h2); // residual path
        // h1 = relu(h1_pre) + h0
        let d_h1pre = d_h1.hadamard(&relu_grad(&h1_pre));
        let (d_h0_conv, d_a1) = self.hop1.backward(&d_h1pre);
        self.adaptive.backward(&d_a1);
        let d_h0 = d_h0_conv.add(&d_h1);
        let d_h0pre = d_h0.hadamard(&relu_grad(&h0_pre));
        self.input.backward(&d_h0pre);
    }

    fn apply_gradients(&mut self, opt: &mut Adam) {
        self.input.apply_gradients(opt, 0);
        self.hop1.apply_gradients(opt, 2);
        self.hop2.apply_gradients(opt, 4);
        self.head.apply_gradients(opt, 6);
        self.adaptive.apply_gradients(opt, 8);
        self.cache.clear();
    }

    fn inference_flops(&self) -> u64 {
        let n = self.adaptive.n();
        self.input.flops(n)
            + self.adaptive.flops()
            + self.hop1.flops(n)
            + self.hop2.flops(n)
            + self.head.flops(n)
            + dsgl_nn::flops::elementwise(n, self.hop1.output_dim(), 4)
    }

    fn parameter_count(&self) -> usize {
        self.input.parameter_count()
            + self.adaptive.parameter_count()
            + self.hop1.parameter_count()
            + self.hop2.parameter_count()
            + self.head.parameter_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::{sample_to_input, target_to_matrix};
    use dsgl_nn::loss::{mse, mse_grad};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn toy() -> (MtgnnModel, Matrix, Matrix) {
        let mut rng = StdRng::seed_from_u64(1);
        let model = MtgnnModel::new(6, 3, 1, 8, &mut rng);
        let s = dsgl_data::Sample {
            history: (0..18).map(|i| ((i * 7) % 13) as f64 / 15.0).collect(),
            target: (0..6).map(|i| (i as f64) / 12.0).collect(),
        };
        let x = sample_to_input(&s, 3, 6, 1);
        let t = target_to_matrix(&s, 6, 1);
        (model, x, t)
    }

    #[test]
    fn shapes_and_metadata() {
        let (mut m, x, _) = toy();
        assert_eq!(m.forward(&x).shape(), (6, 1));
        assert_eq!(m.name(), "MTGNN");
        assert!(m.inference_flops() > 0);
    }

    #[test]
    fn trains_on_toy_sample() {
        let (mut m, x, t) = toy();
        let mut opt = Adam::new(0.01);
        let first = mse(&m.forward_inference(&x), &t);
        for _ in 0..200 {
            let y = m.forward(&x);
            m.backward(&mse_grad(&y, &t));
            m.apply_gradients(&mut opt);
        }
        let last = mse(&m.forward_inference(&x), &t);
        assert!(last < first / 4.0, "loss {first} -> {last}");
    }

    #[test]
    fn forward_modes_agree() {
        let (mut m, x, _) = toy();
        assert_eq!(m.forward(&x), m.forward_inference(&x));
    }
}
