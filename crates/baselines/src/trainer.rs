//! Training and evaluation loops shared by the GNN baselines.

use crate::common::{sample_to_input, target_to_matrix, StGnn};
use dsgl_data::Sample;
use dsgl_nn::loss::{mse, mse_grad};
use dsgl_nn::{Adam, Matrix};
use rand::seq::SliceRandom;
use rand::Rng;

/// Baseline training hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GnnTrainConfig {
    /// Passes over the training windows.
    pub epochs: usize,
    /// Adam learning rate.
    pub lr: f64,
    /// Samples per gradient step.
    pub batch_size: usize,
    /// History steps `W` of the windows.
    pub w: usize,
    /// Nodes `N`.
    pub n: usize,
    /// Features `F`.
    pub f: usize,
}

impl GnnTrainConfig {
    /// A configuration for a dataset's dimensions with default
    /// optimisation settings (30 epochs, lr 5e-3, batch 8).
    pub fn for_dims(w: usize, n: usize, f: usize) -> Self {
        GnnTrainConfig {
            epochs: 30,
            lr: 5e-3,
            batch_size: 8,
            w,
            n,
            f,
        }
    }
}

/// Trains a baseline on windowed samples; returns per-epoch mean MSE.
///
/// # Panics
///
/// Panics on an empty training set or dimension mismatches.
pub fn train_gnn<M: StGnn, R: Rng + ?Sized>(
    model: &mut M,
    samples: &[Sample],
    config: &GnnTrainConfig,
    rng: &mut R,
) -> Vec<f64> {
    assert!(!samples.is_empty(), "training set is empty");
    let inputs: Vec<(Matrix, Matrix)> = samples
        .iter()
        .map(|s| {
            (
                sample_to_input(s, config.w, config.n, config.f),
                target_to_matrix(s, config.n, config.f),
            )
        })
        .collect();
    let mut opt = Adam::new(config.lr);
    let mut order: Vec<usize> = (0..inputs.len()).collect();
    let mut losses = Vec::with_capacity(config.epochs);
    for _ in 0..config.epochs {
        order.shuffle(rng);
        let mut total = 0.0;
        for batch in order.chunks(config.batch_size) {
            for &i in batch {
                let (x, t) = &inputs[i];
                let y = model.forward(x);
                total += mse(&y, t);
                model.backward(&mse_grad(&y, t));
            }
            model.apply_gradients(&mut opt);
        }
        losses.push(total / inputs.len() as f64);
    }
    losses
}

/// Pooled RMSE of a trained baseline over a test set.
///
/// # Panics
///
/// Panics on an empty test set or dimension mismatches.
pub fn evaluate_gnn<M: StGnn>(model: &M, samples: &[Sample], config: &GnnTrainConfig) -> f64 {
    assert!(!samples.is_empty(), "test set is empty");
    let mut sse = 0.0;
    let mut count = 0usize;
    for s in samples {
        let x = sample_to_input(s, config.w, config.n, config.f);
        let y = model.forward_inference(&x);
        for (p, t) in y.as_slice().iter().zip(&s.target) {
            sse += (p - t) * (p - t);
            count += 1;
        }
    }
    (sse / count as f64).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::graph_to_adjacency;
    use crate::gwn::GwnModel;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    fn diffusion_samples(n: usize, count: usize, seed: u64) -> Vec<Sample> {
        // target = 0.7·last + 0.3·ring-neighbour mean
        let mut rng = StdRng::seed_from_u64(seed);
        (0..count)
            .map(|_| {
                let prev: Vec<f64> = (0..n).map(|_| rng.random::<f64>() * 0.8).collect();
                let last: Vec<f64> = (0..n).map(|_| rng.random::<f64>() * 0.8).collect();
                let target: Vec<f64> = (0..n)
                    .map(|i| {
                        0.7 * last[i] + 0.15 * last[(i + 1) % n] + 0.15 * last[(i + n - 1) % n]
                    })
                    .collect();
                let mut history = prev;
                history.extend(last);
                Sample { history, target }
            })
            .collect()
    }

    #[test]
    fn gwn_learns_diffusion_rule() {
        let n = 8;
        let samples = diffusion_samples(n, 60, 1);
        let g = dsgl_graph::generators::ring(n);
        let mut rng = StdRng::seed_from_u64(2);
        let mut model = GwnModel::new(&graph_to_adjacency(&g), 2, 1, 12, &mut rng);
        let cfg = GnnTrainConfig {
            epochs: 60,
            ..GnnTrainConfig::for_dims(2, n, 1)
        };
        let losses = train_gnn(&mut model, &samples, &cfg, &mut rng);
        assert!(
            losses.last().unwrap() < &(losses[0] / 5.0),
            "loss {} -> {}",
            losses[0],
            losses.last().unwrap()
        );
        let rmse = evaluate_gnn(&model, &samples[..20], &cfg);
        assert!(rmse < 0.12, "rmse {rmse}");
    }

    #[test]
    #[should_panic(expected = "training set is empty")]
    fn empty_training_panics() {
        let mut rng = StdRng::seed_from_u64(0);
        let g = dsgl_graph::generators::ring(4);
        let mut model = GwnModel::new(&graph_to_adjacency(&g), 2, 1, 4, &mut rng);
        train_gnn(&mut model, &[], &GnnTrainConfig::for_dims(2, 4, 1), &mut rng);
    }
}
