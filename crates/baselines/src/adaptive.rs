//! The learned adaptive adjacency shared by GWN and MTGNN:
//! `A = softmax_rows(relu(E₁ · E₂ᵀ))` with node embeddings `E₁, E₂`.

use dsgl_nn::init::uniform;
use dsgl_nn::{Adam, Matrix};
use rand::Rng;

/// A trainable adjacency generator over `n` nodes with embedding
/// dimension `d`.
#[derive(Debug, Clone)]
pub struct AdaptiveAdjacency {
    e1: Matrix,
    e2: Matrix,
    grad_e1: Matrix,
    grad_e2: Matrix,
    cache: Vec<AdaptiveCache>,
}

#[derive(Debug, Clone)]
struct AdaptiveCache {
    z: Matrix, // E1·E2ᵀ before relu
    a: Matrix, // softmax(relu(z))
}

impl AdaptiveAdjacency {
    /// Creates embeddings for `n` nodes with dimension `d`.
    pub fn new<R: Rng + ?Sized>(n: usize, d: usize, rng: &mut R) -> Self {
        AdaptiveAdjacency {
            e1: uniform(n, d, 0.5, rng),
            e2: uniform(n, d, 0.5, rng),
            grad_e1: Matrix::zeros(n, d),
            grad_e2: Matrix::zeros(n, d),
            cache: Vec::new(),
        }
    }

    /// Number of nodes.
    pub fn n(&self) -> usize {
        self.e1.rows()
    }

    /// Trainable parameter count.
    pub fn parameter_count(&self) -> usize {
        2 * self.e1.rows() * self.e1.cols()
    }

    /// Builds the adjacency, caching for backprop.
    pub fn forward(&mut self) -> Matrix {
        let z = self.e1.matmul_t(&self.e2);
        let a = z.map(|v| v.max(0.0)).softmax_rows();
        self.cache.push(AdaptiveCache { z: z.clone(), a: a.clone() });
        a
    }

    /// Builds the adjacency without caching.
    pub fn forward_inference(&self) -> Matrix {
        self.e1.matmul_t(&self.e2).map(|v| v.max(0.0)).softmax_rows()
    }

    /// Accumulates embedding gradients from `∂L/∂A` (pops one cache
    /// frame).
    ///
    /// # Panics
    ///
    /// Panics if no forward pass is cached.
    pub fn backward(&mut self, grad_a: &Matrix) {
        let AdaptiveCache { z, a } = self
            .cache
            .pop()
            .expect("backward called before forward");
        // Softmax backward per row: dZr = A ⊙ (dA - rowsum(dA ⊙ A)).
        let n = a.rows();
        let mut dzr = Matrix::zeros(n, n);
        for r in 0..n {
            let dot: f64 = grad_a
                .row(r)
                .iter()
                .zip(a.row(r))
                .map(|(&g, &p)| g * p)
                .sum();
            for c in 0..n {
                dzr.set(r, c, a.get(r, c) * (grad_a.get(r, c) - dot));
            }
        }
        // ReLU backward.
        let dz = dzr.hadamard(&z.map(|v| if v > 0.0 { 1.0 } else { 0.0 }));
        // Z = E1·E2ᵀ: dE1 = dZ·E2, dE2 = dZᵀ·E1.
        self.grad_e1.add_assign(&dz.matmul(&self.e2));
        self.grad_e2.add_assign(&dz.t_matmul(&self.e1));
    }

    /// Applies gradients (slots `base_slot`, `base_slot + 1`).
    pub fn apply_gradients(&mut self, opt: &mut Adam, base_slot: usize) {
        opt.update(base_slot, self.e1.as_mut_slice(), self.grad_e1.as_slice());
        opt.update(base_slot + 1, self.e2.as_mut_slice(), self.grad_e2.as_slice());
        self.grad_e1 = Matrix::zeros(self.e1.rows(), self.e1.cols());
        self.grad_e2 = Matrix::zeros(self.e2.rows(), self.e2.cols());
        self.cache.clear();
    }

    /// FLOPs to build the adjacency once.
    pub fn flops(&self) -> u64 {
        let n = self.n();
        let d = self.e1.cols();
        dsgl_nn::flops::matmul(n, d, n) + dsgl_nn::flops::elementwise(n, n, 4)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn rows_are_distributions() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut adj = AdaptiveAdjacency::new(5, 3, &mut rng);
        let a = adj.forward();
        for r in 0..5 {
            let sum: f64 = a.row(r).iter().sum();
            assert!((sum - 1.0).abs() < 1e-9);
            assert!(a.row(r).iter().all(|&v| v >= 0.0));
        }
    }

    #[test]
    fn embedding_gradient_matches_finite_difference() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut adj = AdaptiveAdjacency::new(4, 2, &mut rng);
        // Loss = Σ A ⊙ T for a fixed random "target weight" T.
        let t = uniform(4, 4, 1.0, &mut rng);
        let a = adj.forward();
        let _ = &a;
        adj.backward(&t);
        let eps = 1e-6;
        for &(r, c) in &[(0, 0), (2, 1), (3, 0)] {
            let orig = adj.e1.get(r, c);
            adj.e1.set(r, c, orig + eps);
            let lp: f64 = adj
                .forward_inference()
                .as_slice()
                .iter()
                .zip(t.as_slice())
                .map(|(&x, &w)| x * w)
                .sum();
            adj.e1.set(r, c, orig - eps);
            let lm: f64 = adj
                .forward_inference()
                .as_slice()
                .iter()
                .zip(t.as_slice())
                .map(|(&x, &w)| x * w)
                .sum();
            adj.e1.set(r, c, orig);
            let fd = (lp - lm) / (2.0 * eps);
            assert!(
                (adj.grad_e1.get(r, c) - fd).abs() < 1e-5,
                "dE1[{r}][{c}] {} vs fd {fd}",
                adj.grad_e1.get(r, c)
            );
        }
    }

    #[test]
    fn training_shapes_adjacency() {
        // Push A[0][1] up via gradient descent on loss = -A[0][1].
        let mut rng = StdRng::seed_from_u64(2);
        let mut adj = AdaptiveAdjacency::new(3, 2, &mut rng);
        let mut opt = Adam::new(0.05);
        let before = adj.forward_inference().get(0, 1);
        for _ in 0..100 {
            let _ = adj.forward();
            let mut g = Matrix::zeros(3, 3);
            g.set(0, 1, -1.0);
            adj.backward(&g);
            adj.apply_gradients(&mut opt, 0);
        }
        let after = adj.forward_inference().get(0, 1);
        assert!(after > before, "A[0][1] {before} -> {after}");
    }
}
