//! DDGCRN analogue (Weng et al., Pattern Recognition 2023).
//!
//! Signature ingredients kept: a *recurrent* graph-convolutional
//! network unrolled over the history window, and a signal
//! *decomposition* — the raw series and its first difference are
//! processed by separate GRU branches (the original is GRU-based) and
//! fused at the readout, standing in for its normal/fluctuation
//! decomposition.

use crate::common::StGnn;
use dsgl_nn::activation::{relu, relu_grad};
use dsgl_nn::gcn::normalize_adjacency;
use dsgl_nn::{Adam, GraphConv, GruCell, Linear, Matrix};
use rand::Rng;

/// The DDGCRN-like baseline.
#[derive(Debug, Clone)]
pub struct DdgcrnModel {
    a_hat: Matrix,
    w: usize,
    f: usize,
    gc_raw: GraphConv,
    rnn_raw: GruCell,
    gc_diff: GraphConv,
    rnn_diff: GruCell,
    head: Linear,
    cache: Vec<DdgcrnCache>,
}

#[derive(Debug, Clone)]
struct DdgcrnCache {
    u_pres: Vec<Matrix>,
    v_pres: Vec<Matrix>,
}

impl DdgcrnModel {
    /// Builds the model for the given dense `adjacency`, `w` history
    /// steps, `f` features, and hidden width `hidden`.
    pub fn new<R: Rng + ?Sized>(
        adjacency: &Matrix,
        w: usize,
        f: usize,
        hidden: usize,
        rng: &mut R,
    ) -> Self {
        DdgcrnModel {
            a_hat: normalize_adjacency(adjacency),
            w,
            f,
            gc_raw: GraphConv::new(f, hidden, rng),
            rnn_raw: GruCell::new(hidden, hidden, rng),
            gc_diff: GraphConv::new(f, hidden, rng),
            rnn_diff: GruCell::new(hidden, hidden, rng),
            head: Linear::new(2 * hidden, f, rng),
            cache: Vec::new(),
        }
    }

    /// Splits the `N × (W·F)` stacked input into per-frame `N × F`
    /// matrices.
    fn frames(&self, x: &Matrix) -> Vec<Matrix> {
        let n = x.rows();
        (0..self.w)
            .map(|t| {
                let mut frame = Matrix::zeros(n, self.f);
                for i in 0..n {
                    for k in 0..self.f {
                        frame.set(i, k, x.get(i, t * self.f + k));
                    }
                }
                frame
            })
            .collect()
    }

    fn concat(a: &Matrix, b: &Matrix) -> Matrix {
        let (n, da) = a.shape();
        let db = b.cols();
        let mut out = Matrix::zeros(n, da + db);
        for i in 0..n {
            for j in 0..da {
                out.set(i, j, a.get(i, j));
            }
            for j in 0..db {
                out.set(i, da + j, b.get(i, j));
            }
        }
        out
    }

    fn split(g: &Matrix, da: usize) -> (Matrix, Matrix) {
        let (n, total) = g.shape();
        let db = total - da;
        let mut a = Matrix::zeros(n, da);
        let mut b = Matrix::zeros(n, db);
        for i in 0..n {
            for j in 0..da {
                a.set(i, j, g.get(i, j));
            }
            for j in 0..db {
                b.set(i, j, g.get(i, da + j));
            }
        }
        (a, b)
    }
}

impl StGnn for DdgcrnModel {
    fn name(&self) -> &'static str {
        "DDGCRN"
    }

    fn forward(&mut self, x: &Matrix) -> Matrix {
        let frames = self.frames(x);
        let n = x.rows();
        let mut h_raw = self.rnn_raw.zero_state(n);
        let mut h_diff = self.rnn_diff.zero_state(n);
        self.rnn_raw.reset();
        self.rnn_diff.reset();
        let mut u_pres = Vec::with_capacity(self.w);
        let mut v_pres = Vec::with_capacity(self.w);
        for t in 0..self.w {
            let u_pre = self.gc_raw.forward(&self.a_hat, &frames[t]);
            let u = relu(&u_pre);
            h_raw = self.rnn_raw.forward_step(&u, &h_raw);
            u_pres.push(u_pre);

            let diff = if t == 0 {
                frames[0].clone()
            } else {
                frames[t].sub(&frames[t - 1])
            };
            let v_pre = self.gc_diff.forward(&self.a_hat, &diff);
            let v = relu(&v_pre);
            h_diff = self.rnn_diff.forward_step(&v, &h_diff);
            v_pres.push(v_pre);
        }
        let fused = Self::concat(&h_raw, &h_diff);
        let y = self.head.forward(&fused);
        self.cache.push(DdgcrnCache { u_pres, v_pres });
        y
    }

    fn forward_inference(&self, x: &Matrix) -> Matrix {
        let frames = self.frames(x);
        let n = x.rows();
        let mut h_raw = self.rnn_raw.zero_state(n);
        let mut h_diff = self.rnn_diff.zero_state(n);
        for t in 0..self.w {
            let u = relu(&self.gc_raw.forward_inference(&self.a_hat, &frames[t]));
            h_raw = self.rnn_raw.forward_step_inference(&u, &h_raw);
            let diff = if t == 0 {
                frames[0].clone()
            } else {
                frames[t].sub(&frames[t - 1])
            };
            let v = relu(&self.gc_diff.forward_inference(&self.a_hat, &diff));
            h_diff = self.rnn_diff.forward_step_inference(&v, &h_diff);
        }
        self.head
            .forward_inference(&Self::concat(&h_raw, &h_diff))
    }

    fn backward(&mut self, grad_out: &Matrix) {
        let DdgcrnCache { u_pres, v_pres } = self.cache.pop().expect("backward before forward");
        let hidden = self.rnn_raw.hidden_dim();
        let d_fused = self.head.backward(grad_out);
        let (mut gh_raw, mut gh_diff) = Self::split(&d_fused, hidden);
        for t in (0..self.w).rev() {
            let (gu, gh_raw_prev) = self.rnn_raw.backward_step(&gh_raw);
            let gu_pre = gu.hadamard(&relu_grad(&u_pres[t]));
            let _ = self.gc_raw.backward(&gu_pre);
            gh_raw = gh_raw_prev;

            let (gv, gh_diff_prev) = self.rnn_diff.backward_step(&gh_diff);
            let gv_pre = gv.hadamard(&relu_grad(&v_pres[t]));
            let _ = self.gc_diff.backward(&gv_pre);
            gh_diff = gh_diff_prev;
        }
    }

    fn apply_gradients(&mut self, opt: &mut Adam) {
        self.gc_raw.apply_gradients(opt, 0);
        self.rnn_raw.apply_gradients(opt, 2);
        self.gc_diff.apply_gradients(opt, 12);
        self.rnn_diff.apply_gradients(opt, 14);
        self.head.apply_gradients(opt, 24);
        self.cache.clear();
    }

    fn inference_flops(&self) -> u64 {
        let n = self.a_hat.rows();
        let per_step = self.gc_raw.flops(n)
            + self.rnn_raw.flops(n)
            + self.gc_diff.flops(n)
            + self.rnn_diff.flops(n)
            + dsgl_nn::flops::elementwise(n, self.rnn_raw.hidden_dim(), 3);
        per_step * self.w as u64 + self.head.flops(n)
    }

    fn parameter_count(&self) -> usize {
        self.gc_raw.parameter_count()
            + self.rnn_raw.parameter_count()
            + self.gc_diff.parameter_count()
            + self.rnn_diff.parameter_count()
            + self.head.parameter_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::{graph_to_adjacency, sample_to_input, target_to_matrix};
    use dsgl_nn::loss::{mse, mse_grad};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn toy() -> (DdgcrnModel, Matrix, Matrix) {
        let mut rng = StdRng::seed_from_u64(2);
        let g = dsgl_graph::generators::ring(5);
        let adj = graph_to_adjacency(&g);
        let model = DdgcrnModel::new(&adj, 3, 1, 6, &mut rng);
        let s = dsgl_data::Sample {
            history: (0..15).map(|i| ((i * 3) % 11) as f64 / 12.0).collect(),
            target: (0..5).map(|i| (i as f64) / 9.0).collect(),
        };
        let x = sample_to_input(&s, 3, 5, 1);
        let t = target_to_matrix(&s, 5, 1);
        (model, x, t)
    }

    #[test]
    fn shapes_and_metadata() {
        let (mut m, x, _) = toy();
        assert_eq!(m.forward(&x).shape(), (5, 1));
        assert_eq!(m.name(), "DDGCRN");
        assert!(m.inference_flops() > 0);
        assert!(m.parameter_count() > 0);
    }

    #[test]
    fn trains_on_toy_sample() {
        let (mut m, x, t) = toy();
        let mut opt = Adam::new(0.01);
        let first = mse(&m.forward_inference(&x), &t);
        for _ in 0..200 {
            let y = m.forward(&x);
            m.backward(&mse_grad(&y, &t));
            m.apply_gradients(&mut opt);
        }
        let last = mse(&m.forward_inference(&x), &t);
        assert!(last < first / 4.0, "loss {first} -> {last}");
    }

    #[test]
    fn forward_modes_agree() {
        let (mut m, x, _) = toy();
        assert_eq!(m.forward(&x), m.forward_inference(&x));
    }

    #[test]
    fn concat_split_roundtrip() {
        let a = Matrix::from_vec(2, 2, vec![1., 2., 3., 4.]).unwrap();
        let b = Matrix::from_vec(2, 1, vec![5., 6.]).unwrap();
        let c = DdgcrnModel::concat(&a, &b);
        assert_eq!(c.row(0), &[1., 2., 5.]);
        let (a2, b2) = DdgcrnModel::split(&c, 2);
        assert_eq!(a, a2);
        assert_eq!(b, b2);
    }
}
