//! Graph WaveNet analogue (Wu et al., IJCAI 2019).
//!
//! The signature ingredients kept from the original: a gated temporal
//! unit (`tanh ⊙ sigmoid`) over the history window, diffusion graph
//! convolution over the *given* adjacency, a second convolution over a
//! *learned adaptive* adjacency `softmax(relu(E₁E₂ᵀ))`, and a linear
//! readout. Scaled down to thousands of parameters.

use crate::adaptive::AdaptiveAdjacency;
use crate::common::StGnn;
use dsgl_nn::activation::{relu, relu_grad};
use dsgl_nn::gcn::normalize_adjacency;
use dsgl_nn::{Adam, GatedTemporal, GraphConv, Linear, Matrix};
use rand::Rng;

/// The GWN-like baseline.
#[derive(Debug, Clone)]
pub struct GwnModel {
    a_hat: Matrix,
    temporal: GatedTemporal,
    gc_fixed: GraphConv,
    gc_adapt: GraphConv,
    adaptive: AdaptiveAdjacency,
    head: Linear,
    cache: Vec<(Matrix, Matrix)>, // (g1_pre, g2_pre) per forward
}

impl GwnModel {
    /// Builds the model for `n` nodes, `w` history steps, `f` features,
    /// and hidden width `hidden`.
    ///
    /// `adjacency` is the raw (unnormalised) dense graph adjacency.
    pub fn new<R: Rng + ?Sized>(
        adjacency: &Matrix,
        w: usize,
        f: usize,
        hidden: usize,
        rng: &mut R,
    ) -> Self {
        let n = adjacency.rows();
        GwnModel {
            a_hat: normalize_adjacency(adjacency),
            temporal: GatedTemporal::new(w * f, hidden, rng),
            gc_fixed: GraphConv::new(hidden, hidden, rng),
            gc_adapt: GraphConv::new(hidden, hidden, rng),
            adaptive: AdaptiveAdjacency::new(n, 8.min(n), rng),
            head: Linear::new(hidden, f, rng),
            cache: Vec::new(),
        }
    }
}

impl StGnn for GwnModel {
    fn name(&self) -> &'static str {
        "GWN"
    }

    fn forward(&mut self, x: &Matrix) -> Matrix {
        // Residual (skip) connections after each conv block, as in the
        // original architecture — without them the near-uniform initial
        // adaptive adjacency would average node identity away.
        let t = self.temporal.forward(x);
        let g1_pre = self.gc_fixed.forward(&self.a_hat, &t);
        let g1 = relu(&g1_pre).add(&t);
        let a_adp = self.adaptive.forward();
        let g2_pre = self.gc_adapt.forward(&a_adp, &g1);
        let g2 = relu(&g2_pre).add(&g1);
        let y = self.head.forward(&g2);
        self.cache.push((g1_pre, g2_pre));
        y
    }

    fn forward_inference(&self, x: &Matrix) -> Matrix {
        let t = self.temporal.forward_inference(x);
        let g1 = relu(&self.gc_fixed.forward_inference(&self.a_hat, &t)).add(&t);
        let a_adp = self.adaptive.forward_inference();
        let g2 = relu(&self.gc_adapt.forward_inference(&a_adp, &g1)).add(&g1);
        self.head.forward_inference(&g2)
    }

    fn backward(&mut self, grad_out: &Matrix) {
        let (g1_pre, g2_pre) = self.cache.pop().expect("backward before forward");
        let d_g2 = self.head.backward(grad_out);
        let d_g2pre = d_g2.hadamard(&relu_grad(&g2_pre));
        let (d_g1_conv, d_a) = self.gc_adapt.backward(&d_g2pre);
        self.adaptive.backward(&d_a);
        let d_g1 = d_g1_conv.add(&d_g2); // residual path
        let d_g1pre = d_g1.hadamard(&relu_grad(&g1_pre));
        let (d_t_conv, _fixed_adjacency_grad) = self.gc_fixed.backward(&d_g1pre);
        let d_t = d_t_conv.add(&d_g1);
        self.temporal.backward(&d_t);
    }

    fn apply_gradients(&mut self, opt: &mut Adam) {
        self.temporal.apply_gradients(opt, 0);
        self.gc_fixed.apply_gradients(opt, 4);
        self.gc_adapt.apply_gradients(opt, 6);
        self.head.apply_gradients(opt, 8);
        self.adaptive.apply_gradients(opt, 10);
        self.cache.clear();
    }

    fn inference_flops(&self) -> u64 {
        let n = self.a_hat.rows();
        self.temporal.flops(n)
            + self.gc_fixed.flops(n)
            + self.gc_adapt.flops(n)
            + self.adaptive.flops()
            + self.head.flops(n)
            + dsgl_nn::flops::elementwise(n, self.gc_fixed.output_dim(), 2)
    }

    fn parameter_count(&self) -> usize {
        self.temporal.parameter_count()
            + self.gc_fixed.parameter_count()
            + self.gc_adapt.parameter_count()
            + self.adaptive.parameter_count()
            + self.head.parameter_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::{graph_to_adjacency, sample_to_input, target_to_matrix};
    use dsgl_nn::loss::{mse, mse_grad};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn toy() -> (GwnModel, Matrix, Matrix) {
        let mut rng = StdRng::seed_from_u64(0);
        let g = dsgl_graph::generators::ring(6);
        let adj = graph_to_adjacency(&g);
        let model = GwnModel::new(&adj, 3, 1, 8, &mut rng);
        let s = dsgl_data::Sample {
            history: (0..18).map(|i| (i as f64) / 20.0).collect(),
            target: (0..6).map(|i| (i as f64) / 10.0).collect(),
        };
        let x = sample_to_input(&s, 3, 6, 1);
        let t = target_to_matrix(&s, 6, 1);
        (model, x, t)
    }

    #[test]
    fn shapes() {
        let (mut m, x, _) = toy();
        let y = m.forward(&x);
        assert_eq!(y.shape(), (6, 1));
        assert!(m.inference_flops() > 0);
        assert!(m.parameter_count() > 0);
        assert_eq!(m.name(), "GWN");
    }

    #[test]
    fn input_gradient_sanity_via_training() {
        let (mut m, x, t) = toy();
        let mut opt = Adam::new(0.01);
        let first = mse(&m.forward_inference(&x), &t);
        for _ in 0..600 {
            let y = m.forward(&x);
            m.backward(&mse_grad(&y, &t));
            m.apply_gradients(&mut opt);
        }
        let last = mse(&m.forward_inference(&x), &t);
        assert!(last < first / 4.0, "loss {first} -> {last}");
    }

    #[test]
    fn forward_inference_matches_forward() {
        let (mut m, x, _) = toy();
        let a = m.forward(&x);
        let b = m.forward_inference(&x);
        assert_eq!(a, b);
    }
}
