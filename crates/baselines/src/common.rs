//! Shared interface and data plumbing for the GNN baselines.

use dsgl_data::Sample;
use dsgl_nn::{Adam, Matrix};

/// A trainable spatio-temporal GNN operating on windowed samples.
///
/// The input is an `N × (W·F)` matrix (per node, the stacked history
/// features, oldest frame first); the output is the `N × F` prediction
/// of the next frame.
pub trait StGnn {
    /// Model name as the paper cites it.
    fn name(&self) -> &'static str;

    /// Forward pass with caching for backprop.
    fn forward(&mut self, x: &Matrix) -> Matrix;

    /// Forward pass without caching.
    fn forward_inference(&self, x: &Matrix) -> Matrix;

    /// Backward pass from the output gradient (accumulates parameter
    /// gradients).
    fn backward(&mut self, grad_out: &Matrix);

    /// Applies and clears accumulated gradients.
    fn apply_gradients(&mut self, opt: &mut Adam);

    /// Exact FLOPs of one inference.
    fn inference_flops(&self) -> u64;

    /// Trainable parameter count.
    fn parameter_count(&self) -> usize;
}

/// Reshapes a sample's history into the `N × (W·F)` input matrix.
///
/// # Panics
///
/// Panics if the sample does not match `(w, n, f)`.
pub fn sample_to_input(sample: &Sample, w: usize, n: usize, f: usize) -> Matrix {
    assert_eq!(sample.history.len(), w * n * f, "history shape mismatch");
    let mut m = Matrix::zeros(n, w * f);
    for t in 0..w {
        for i in 0..n {
            for k in 0..f {
                m.set(i, t * f + k, sample.history[(t * n + i) * f + k]);
            }
        }
    }
    m
}

/// Reshapes a sample's target frame into an `N × F` matrix.
///
/// # Panics
///
/// Panics if the target does not match `(n, f)`.
pub fn target_to_matrix(sample: &Sample, n: usize, f: usize) -> Matrix {
    assert_eq!(sample.target.len(), n * f, "target shape mismatch");
    Matrix::from_vec(n, f, sample.target.clone()).expect("sized buffer")
}

/// Dense adjacency matrix of a graph (weights kept), used to build the
/// normalised propagation matrix.
pub fn graph_to_adjacency(graph: &dsgl_graph::CsrGraph) -> Matrix {
    let n = graph.node_count();
    let mut a = Matrix::zeros(n, n);
    for u in 0..n {
        for (v, w) in graph.neighbors(u) {
            a.set(u, v, w);
        }
    }
    a
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn input_reshape() {
        // W=2, N=2, F=1: history = [t0n0, t0n1, t1n0, t1n1]
        let s = Sample {
            history: vec![1.0, 2.0, 3.0, 4.0],
            target: vec![5.0, 6.0],
        };
        let m = sample_to_input(&s, 2, 2, 1);
        assert_eq!(m.shape(), (2, 2));
        assert_eq!(m.row(0), &[1.0, 3.0]); // node 0: t0, t1
        assert_eq!(m.row(1), &[2.0, 4.0]);
        let t = target_to_matrix(&s, 2, 1);
        assert_eq!(t.as_slice(), &[5.0, 6.0]);
    }

    #[test]
    fn multi_feature_reshape() {
        // W=1, N=2, F=2.
        let s = Sample {
            history: vec![1.0, 2.0, 3.0, 4.0],
            target: vec![0.0; 4],
        };
        let m = sample_to_input(&s, 1, 2, 2);
        assert_eq!(m.row(0), &[1.0, 2.0]);
        assert_eq!(m.row(1), &[3.0, 4.0]);
    }

    #[test]
    fn adjacency_conversion() {
        let g = dsgl_graph::CsrGraph::from_edges(3, &[(0, 1, 2.0)]).unwrap();
        let a = graph_to_adjacency(&g);
        assert_eq!(a.get(0, 1), 2.0);
        assert_eq!(a.get(1, 0), 2.0);
        assert_eq!(a.get(0, 2), 0.0);
    }

    #[test]
    #[should_panic(expected = "history shape mismatch")]
    fn bad_shape_panics() {
        let s = Sample {
            history: vec![0.0; 3],
            target: vec![],
        };
        sample_to_input(&s, 2, 2, 1);
    }
}
