//! Spatio-temporal GNN baselines (the competitors of paper Table II).
//!
//! The paper benchmarks DS-GL against three SOTA spatio-temporal GNNs.
//! This crate implements faithful *small-scale analogues* of each on the
//! manual-backprop substrate of [`dsgl_nn`]:
//!
//! - [`GwnModel`] ≈ **Graph WaveNet** (Wu et al., 2019): a gated
//!   temporal unit feeding diffusion graph convolutions over both the
//!   given adjacency and a learned adaptive adjacency `softmax(relu(E₁E₂ᵀ))`;
//! - [`MtgnnModel`] ≈ **MTGNN** (Wu et al., 2020): graph structure is
//!   *only* learned (no predefined adjacency), with mix-hop propagation
//!   and residual connections;
//! - [`DdgcrnModel`] ≈ **DDGCRN** (Weng et al., 2023): a recurrent
//!   graph-convolutional network over the history window with a
//!   signal-decomposition flavour (raw and differenced branches).
//!
//! All three consume the same windowed samples DS-GL consumes, train
//! with Adam on MSE, and report exact inference FLOPs for the platform
//! latency model (paper Table III). They are deliberately compact —
//! thousands of parameters, not millions — which is documented in
//! `EXPERIMENTS.md` when comparing absolute latencies with the paper.

#![forbid(unsafe_code)]
#![deny(clippy::print_stdout, clippy::print_stderr)]
#![warn(missing_docs)]

pub mod adaptive;
pub mod common;
pub mod ddgcrn;
pub mod gwn;
pub mod mtgnn;
pub mod trainer;

pub use common::{sample_to_input, target_to_matrix, StGnn};
pub use ddgcrn::DdgcrnModel;
pub use gwn::GwnModel;
pub use mtgnn::MtgnnModel;
pub use trainer::{evaluate_gnn, train_gnn, GnnTrainConfig};
