//! Cache-blocked dense kernels with a hard bit-exactness contract.
//!
//! Every routine here is a drop-in replacement for the naive scalar
//! loop it accelerates — not approximately, but **bit-for-bit** on
//! `f64`. The contract that makes this possible:
//!
//! - **Blocking is over output rows and columns only.** The reduction
//!   (`k`) dimension is never split: every output element accumulates
//!   its partial products in exactly the sequential order of the naive
//!   triple loop, so no floating-point reassociation ever happens.
//! - **Zero-skips are replicated.** The naive `matmul` / `t_matmul`
//!   loops skip a rank-1 update when the first factor is exactly
//!   `0.0`. That skip is *not* a bitwise no-op in IEEE 754 edge cases
//!   (`-0.0 + 0.0 == +0.0`, `0.0 * inf == NaN`), so the blocked
//!   kernels test the same factor against zero at the same point of
//!   the same loop.
//!
//! What the blocked kernels change is purely *where data lives while
//! the same arithmetic happens*: the right-hand operand is packed into
//! a contiguous panel that stays cache-resident across all output
//! rows, output is updated through narrow row chunks that fit L1, and
//! independent output elements are interleaved to break accumulator
//! dependency chains (each chain still sums in naive order).
//!
//! The panel/tile sizes below are deliberately conservative so the
//! working set fits a ~1 MiB L2 on any contemporary core; see
//! DESIGN.md "Dense kernels" for the capacity arithmetic.
//!
//! Inputs are raw row-major slices plus dimensions; the [`crate::Matrix`]
//! methods (`matmul`, `t_matmul`, `matmul_t`, `gram_t`) are the
//! checked, shape-aware entry points. All `*_into` routines require a
//! **zeroed** `out` buffer and accumulate into it, exactly like the
//! naive loops they mirror.
//!
//! With the default-on `simd` feature on x86-64, the full-size register
//! micro-kernels additionally run through explicit AVX vectors whose
//! lanes span *independent output columns* (rows for the matvec), so
//! each output element's reduction chain is still the scalar sequence
//! of mul-then-add — no FMA, no horizontal reduction, `k` never split —
//! and the SIMD path is bit-identical to the scalar path, which stays
//! compiled in as the dispatch fallback and parity reference (see
//! [`simd_active`] / [`set_simd_enabled`]). The vector kernels engage
//! only for all-finite operands: with a NaN among the inputs, two
//! NaNs with different bits can meet in one add, where x86 keeps
//! whichever operand the code generator placed first — not a property
//! any kernel arrangement can pin down — so those calls stay on the
//! scalar reference kernels and parity is preserved by identity (see
//! [`simd`] for the full argument).

/// Packed right-hand panel width (columns) for [`gemm_into`]: the
/// `k × NC` panel is `8·k·NC` bytes, ≤ 1 MiB for `k ≤ 1024`.
pub const GEMM_NC: usize = 128;
/// Output rows advanced per micro-kernel pass in [`gemm_into`]: four
/// independent accumulator rows share one packed micro-panel stream.
pub const GEMM_MR: usize = 4;
/// Micro-tile columns in [`gemm_into`]: each `MR × JR` tile holds its
/// 16 partial sums in registers for the whole `k` reduction (8 SSE2
/// vectors), so the inner loop touches no output memory at all.
pub const GEMM_JR: usize = 4;
/// Output-tile rows for [`gemm_t_into`] / [`syrk_t_into`]; the
/// `MC × NC` f64 tile is 16 KiB — half of a 32 KiB L1d.
pub const GT_MC: usize = 16;
/// Output-tile columns for [`gemm_t_into`] / [`syrk_t_into`].
pub const GT_NC: usize = 128;
/// Right-hand row-block for [`gemm_nt_into`]: `JB` rows of B stay
/// cache-resident while every row of A streams past them once.
pub const NT_JB: usize = 32;
/// Below this flop estimate the naive loop wins (no packing cost, no
/// panel allocation). Dispatch is a pure performance decision — both
/// paths produce identical bits.
pub const BLOCK_MIN_WORK: usize = 1 << 16;

// ---------------------------------------------------------------------------
// SIMD dispatch. The AVX micro-kernels in `simd` run their vector lanes
// across *independent output columns*: each output element's reduction
// chain stays a scalar-ordered sequence of mul-then-add (no FMA, `k`
// never split), so the vector path is bit-identical to the scalar path
// by construction, not by tolerance. Dispatch is runtime (CPU detection
// plus a process-wide toggle) and per-call, with the scalar kernels kept
// as the bit-parity reference.
// ---------------------------------------------------------------------------

use std::sync::atomic::{AtomicBool, Ordering};

/// Process-wide SIMD opt-out, flipped by [`set_simd_enabled`].
static SIMD_DISABLED: AtomicBool = AtomicBool::new(false);

/// Enables or disables the explicit-SIMD micro-kernels at runtime.
///
/// Both paths produce identical bits, so this is a pure performance
/// switch — it exists so benches and parity tests can compare the
/// vector and scalar paths within one process. Concurrent kernel calls
/// observe the flag once at entry; flipping it mid-flight is harmless
/// precisely because the two paths agree bit-for-bit.
pub fn set_simd_enabled(on: bool) {
    SIMD_DISABLED.store(!on, Ordering::Relaxed);
}

/// Whether the vectorised micro-kernels are live: the `simd` feature is
/// compiled in, the target is x86-64 with AVX detected at runtime, and
/// [`set_simd_enabled`] has not switched them off.
#[cfg(all(feature = "simd", target_arch = "x86_64"))]
pub fn simd_active() -> bool {
    !SIMD_DISABLED.load(Ordering::Relaxed) && std::arch::is_x86_feature_detected!("avx")
}

/// Whether the vectorised micro-kernels are live (`false` in builds
/// without the `simd` feature or on non-x86-64 targets).
#[cfg(not(all(feature = "simd", target_arch = "x86_64")))]
pub fn simd_active() -> bool {
    false
}

#[cfg(all(feature = "simd", target_arch = "x86_64"))]
#[allow(unsafe_code)]
mod simd {
    //! AVX (f64×4) variants of the register micro-kernels.
    //!
    //! Lane layout: one vector register holds four *independent output
    //! columns* of a micro-tile row. The reduction coefficient is a
    //! scalar broadcast, each step is `acc = add(acc, mul(c, panel))` —
    //! multiply then add, never fused — and `k` advances one step per
    //! iteration for every lane simultaneously. Each lane therefore
    //! executes exactly the scalar chain `acc += c * pv` in exactly the
    //! scalar order; lanes never exchange or combine values, so no
    //! horizontal reduction (the classic source of SIMD reassociation)
    //! exists anywhere on the path.
    //!
    //! **Finite inputs only.** Dispatch routes the GEMM-family kernels
    //! here only after both operands scanned all-finite (the matvec
    //! instead detects the hazard *after the fact*: a NaN output lane
    //! sends the block back to the scalar body, whose result wins).
    //! With finite operands every
    //! multiply is fully IEEE-determined (products overflow to `±inf`
    //! but are never NaN), so at most one NaN — the hardware-canonical
    //! indefinite from `inf + -inf`, identical bits on the scalar and
    //! vector units — can ever reach an add, and single-NaN propagation
    //! does not depend on operand order. Bits are therefore determined
    //! by the arithmetic alone, not by how the compiler happens to
    //! order commutative operands. With a NaN among the *inputs* that
    //! guarantee is unattainable (two NaNs with different bits can meet
    //! in one add, and x86 keeps whichever the code generator put
    //! first), so such calls stay on the scalar reference kernels —
    //! which also makes the zero-skip `CHECK` variants unnecessary
    //! here: non-finite panels never reach this module.
    use super::{GEMM_JR, GEMM_MR};
    use core::arch::x86_64::{
        _mm256_add_pd, _mm256_broadcast_sd, _mm256_loadu_pd, _mm256_mul_pd, _mm256_permute2f128_pd,
        _mm256_set1_pd, _mm256_setzero_pd, _mm256_storeu_pd, _mm256_unpackhi_pd,
        _mm256_unpacklo_pd,
    };

    /// AVX [`super::micro_gemm_4x4`] for all-finite operands; same
    /// contract, same bits (no zero-skip: for finite panels the skip is
    /// a bitwise no-op, see [`super::micro_gemm_4x4`]).
    #[inline]
    pub(super) fn micro_gemm_4x4(
        arows: &[&[f64]; GEMM_MR],
        mp: &[f64],
        acc: &mut [[f64; GEMM_JR]; GEMM_MR],
    ) {
        // SAFETY: dispatch reaches this module only after
        // `simd_active()` has confirmed AVX support on this CPU.
        unsafe { micro_gemm_4x4_avx(arows, mp, acc) }
    }

    #[target_feature(enable = "avx")]
    unsafe fn micro_gemm_4x4_avx(
        arows: &[&[f64]; GEMM_MR],
        mp: &[f64],
        acc: &mut [[f64; GEMM_JR]; GEMM_MR],
    ) {
        let steps = mp.len() / GEMM_JR;
        let (a0, a1, a2, a3) = (arows[0], arows[1], arows[2], arows[3]);
        let mut v0 = _mm256_loadu_pd(acc[0].as_ptr());
        let mut v1 = _mm256_loadu_pd(acc[1].as_ptr());
        let mut v2 = _mm256_loadu_pd(acc[2].as_ptr());
        let mut v3 = _mm256_loadu_pd(acc[3].as_ptr());
        for kk in 0..steps {
            let p = _mm256_loadu_pd(mp.as_ptr().add(kk * GEMM_JR));
            v0 = _mm256_add_pd(v0, _mm256_mul_pd(_mm256_set1_pd(a0[kk]), p));
            v1 = _mm256_add_pd(v1, _mm256_mul_pd(_mm256_set1_pd(a1[kk]), p));
            v2 = _mm256_add_pd(v2, _mm256_mul_pd(_mm256_set1_pd(a2[kk]), p));
            v3 = _mm256_add_pd(v3, _mm256_mul_pd(_mm256_set1_pd(a3[kk]), p));
        }
        _mm256_storeu_pd(acc[0].as_mut_ptr(), v0);
        _mm256_storeu_pd(acc[1].as_mut_ptr(), v1);
        _mm256_storeu_pd(acc[2].as_mut_ptr(), v2);
        _mm256_storeu_pd(acc[3].as_mut_ptr(), v3);
    }

    /// AVX [`super::micro_tt_4x4`] for all-finite operands; same
    /// contract, same bits (no zero-skip, as above).
    #[inline]
    pub(super) fn micro_tt_4x4(pa: &[f64], pb: &[f64], acc: &mut [[f64; 4]; 4]) {
        // SAFETY: dispatch reaches this module only after
        // `simd_active()` has confirmed AVX support on this CPU.
        unsafe { micro_tt_4x4_avx(pa, pb, acc) }
    }

    #[target_feature(enable = "avx")]
    unsafe fn micro_tt_4x4_avx(pa: &[f64], pb: &[f64], acc: &mut [[f64; 4]; 4]) {
        let steps = pa.len() / 4;
        let mut v0 = _mm256_loadu_pd(acc[0].as_ptr());
        let mut v1 = _mm256_loadu_pd(acc[1].as_ptr());
        let mut v2 = _mm256_loadu_pd(acc[2].as_ptr());
        let mut v3 = _mm256_loadu_pd(acc[3].as_ptr());
        for r in 0..steps {
            let bv = _mm256_loadu_pd(pb.as_ptr().add(r * 4));
            v0 = _mm256_add_pd(v0, _mm256_mul_pd(_mm256_set1_pd(pa[r * 4]), bv));
            v1 = _mm256_add_pd(v1, _mm256_mul_pd(_mm256_set1_pd(pa[r * 4 + 1]), bv));
            v2 = _mm256_add_pd(v2, _mm256_mul_pd(_mm256_set1_pd(pa[r * 4 + 2]), bv));
            v3 = _mm256_add_pd(v3, _mm256_mul_pd(_mm256_set1_pd(pa[r * 4 + 3]), bv));
        }
        _mm256_storeu_pd(acc[0].as_mut_ptr(), v0);
        _mm256_storeu_pd(acc[1].as_mut_ptr(), v1);
        _mm256_storeu_pd(acc[2].as_mut_ptr(), v2);
        _mm256_storeu_pd(acc[3].as_mut_ptr(), v3);
    }

    /// Four-row AVX matvec block: 4×4 tiles of `a` are transposed in
    /// registers so each lane carries one output *row*; `x[kk]` is
    /// broadcast and the four adds per tile happen in ascending `k`
    /// (four separate mul-then-add steps), replaying the four scalar
    /// accumulator chains of the scalar kernel exactly. The `k` tail
    /// (`cols % 4`) finishes scalar, still in ascending `k` per lane.
    #[inline]
    pub(super) fn matvec4(r0: &[f64], r1: &[f64], r2: &[f64], r3: &[f64], x: &[f64]) -> [f64; 4] {
        // SAFETY: dispatch reaches this module only after
        // `simd_active()` has confirmed AVX support on this CPU.
        unsafe { matvec4_avx(r0, r1, r2, r3, x) }
    }

    #[target_feature(enable = "avx")]
    unsafe fn matvec4_avx(r0: &[f64], r1: &[f64], r2: &[f64], r3: &[f64], x: &[f64]) -> [f64; 4] {
        let cols = x.len();
        let full = cols & !3;
        let mut acc = _mm256_setzero_pd();
        let mut kk = 0;
        while kk < full {
            let a0 = _mm256_loadu_pd(r0.as_ptr().add(kk));
            let a1 = _mm256_loadu_pd(r1.as_ptr().add(kk));
            let a2 = _mm256_loadu_pd(r2.as_ptr().add(kk));
            let a3 = _mm256_loadu_pd(r3.as_ptr().add(kk));
            // 4×4 in-register transpose: `c_t` holds column `kk + t` of
            // the four rows, i.e. one reduction step for all four lanes.
            let t0 = _mm256_unpacklo_pd(a0, a1);
            let t1 = _mm256_unpackhi_pd(a0, a1);
            let t2 = _mm256_unpacklo_pd(a2, a3);
            let t3 = _mm256_unpackhi_pd(a2, a3);
            let c0 = _mm256_permute2f128_pd::<0x20>(t0, t2);
            let c1 = _mm256_permute2f128_pd::<0x20>(t1, t3);
            let c2 = _mm256_permute2f128_pd::<0x31>(t0, t2);
            let c3 = _mm256_permute2f128_pd::<0x31>(t1, t3);
            acc = _mm256_add_pd(acc, _mm256_mul_pd(c0, _mm256_broadcast_sd(&x[kk])));
            acc = _mm256_add_pd(acc, _mm256_mul_pd(c1, _mm256_broadcast_sd(&x[kk + 1])));
            acc = _mm256_add_pd(acc, _mm256_mul_pd(c2, _mm256_broadcast_sd(&x[kk + 2])));
            acc = _mm256_add_pd(acc, _mm256_mul_pd(c3, _mm256_broadcast_sd(&x[kk + 3])));
            kk += 4;
        }
        let mut s = [0.0f64; 4];
        _mm256_storeu_pd(s.as_mut_ptr(), acc);
        for t in full..cols {
            let xv = x[t];
            s[0] += r0[t] * xv;
            s[1] += r1[t] * xv;
            s[2] += r2[t] * xv;
            s[3] += r3[t] * xv;
        }
        s
    }
}

/// Runs the branch-free (all-finite) 4×4 GEMM micro-kernel through the
/// AVX path when `use_simd` is set, the scalar path otherwise.
/// Identical bits either way (see [`simd`] for the lane argument).
/// Callers only set `use_simd` after scanning *both* operands finite;
/// non-finite panels stay on the scalar `CHECK = true` kernels.
#[cfg(all(feature = "simd", target_arch = "x86_64"))]
#[inline]
fn dispatch_micro_gemm(
    use_simd: bool,
    arows: &[&[f64]; GEMM_MR],
    mp: &[f64],
    acc: &mut [[f64; GEMM_JR]; GEMM_MR],
) {
    if use_simd {
        simd::micro_gemm_4x4(arows, mp, acc);
    } else {
        micro_gemm_4x4::<false>(arows, mp, acc);
    }
}

/// Scalar-only build of [`dispatch_micro_gemm`].
#[cfg(not(all(feature = "simd", target_arch = "x86_64")))]
#[inline]
fn dispatch_micro_gemm(
    _use_simd: bool,
    arows: &[&[f64]; GEMM_MR],
    mp: &[f64],
    acc: &mut [[f64; GEMM_JR]; GEMM_MR],
) {
    micro_gemm_4x4::<false>(arows, mp, acc);
}

/// Runs the branch-free (all-finite) 4×4 transposed micro-kernel
/// through the AVX path when `use_simd` is set, the scalar path
/// otherwise. Identical bits either way; same finite-only caller
/// contract as [`dispatch_micro_gemm`].
#[cfg(all(feature = "simd", target_arch = "x86_64"))]
#[inline]
fn dispatch_micro_tt(use_simd: bool, pa: &[f64], pb: &[f64], acc: &mut [[f64; 4]; 4]) {
    if use_simd {
        simd::micro_tt_4x4(pa, pb, acc);
    } else {
        micro_tt_4x4::<false>(pa, pb, acc);
    }
}

/// Scalar-only build of [`dispatch_micro_tt`].
#[cfg(not(all(feature = "simd", target_arch = "x86_64")))]
#[inline]
fn dispatch_micro_tt(_use_simd: bool, pa: &[f64], pb: &[f64], acc: &mut [[f64; 4]; 4]) {
    micro_tt_4x4::<false>(pa, pb, acc);
}

// ---------------------------------------------------------------------------
// Naive references. These are the semantics; the blocked kernels must
// match them bit-for-bit (asserted by unit, property, and bench-side
// parity tests). Public so tests and the gemm_profile bench can time
// and compare against them.
// ---------------------------------------------------------------------------

/// Naive `out += A·B` (`A` is `m×k`, `B` is `k×n`), i-k-j loop with the
/// historical `a == 0.0` row-update skip.
pub fn naive_gemm_into(a: &[f64], m: usize, k: usize, b: &[f64], n: usize, out: &mut [f64]) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(out.len(), m * n);
    for i in 0..m {
        for kk in 0..k {
            let av = a[i * k + kk];
            if av == 0.0 {
                continue;
            }
            let brow = &b[kk * n..(kk + 1) * n];
            let orow = &mut out[i * n..(i + 1) * n];
            for (o, &bv) in orow.iter_mut().zip(brow) {
                *o += av * bv;
            }
        }
    }
}

/// Naive `out += Aᵀ·B` (`A` is `r×m`, `B` is `r×n`), r-i-j loop with
/// the `a[r][i] == 0.0` skip. `r` ascends for every output element.
pub fn naive_gemm_t_into(a: &[f64], rdim: usize, m: usize, b: &[f64], n: usize, out: &mut [f64]) {
    debug_assert_eq!(a.len(), rdim * m);
    debug_assert_eq!(b.len(), rdim * n);
    debug_assert_eq!(out.len(), m * n);
    for r in 0..rdim {
        for i in 0..m {
            let av = a[r * m + i];
            if av == 0.0 {
                continue;
            }
            let brow = &b[r * n..(r + 1) * n];
            let orow = &mut out[i * n..(i + 1) * n];
            for (o, &bv) in orow.iter_mut().zip(brow) {
                *o += av * bv;
            }
        }
    }
}

/// Naive `out += A·Bᵀ` (`A` is `m×k`, `B` is `nb×k`): one sequential-k
/// dot product per output element, no zero skip.
pub fn naive_gemm_nt_into(a: &[f64], m: usize, k: usize, b: &[f64], nb: usize, out: &mut [f64]) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), nb * k);
    debug_assert_eq!(out.len(), m * nb);
    for i in 0..m {
        let arow = &a[i * k..(i + 1) * k];
        for j in 0..nb {
            let brow = &b[j * k..(j + 1) * k];
            let mut acc = 0.0;
            for (&av, &bv) in arow.iter().zip(brow) {
                acc += av * bv;
            }
            out[i * nb + j] += acc;
        }
    }
}

/// Naive matvec `out[i] = Σ_k a[i][k]·x[k]`, sequential k per row.
pub fn naive_matvec_into(a: &[f64], cols: usize, x: &[f64], out: &mut [f64]) {
    debug_assert_eq!(a.len(), out.len() * cols);
    debug_assert_eq!(x.len(), cols);
    for (i, o) in out.iter_mut().enumerate() {
        let row = &a[i * cols..(i + 1) * cols];
        let mut acc = 0.0;
        for (&av, &xv) in row.iter().zip(x) {
            acc += av * xv;
        }
        *o = acc;
    }
}



// ---------------------------------------------------------------------------
// GEMM: out += A·B, cache-blocked.
// ---------------------------------------------------------------------------

/// The `MR × JR` register micro-kernel: every partial sum lives in a
/// register for the whole `k` reduction, each summing in ascending `k`.
///
/// `CHECK` selects whether the naive `a == 0.0` skip is tested per
/// element. When the packed panel is known to be **all finite**, the
/// skip is a bitwise no-op — adding `c·pv` with `c == ±0.0` and finite
/// `pv` contributes `±0.0`, which cannot change any accumulator
/// because a running sum that starts at `+0.0` can never reach `-0.0`
/// (in round-to-nearest, `x + y == -0.0` only when both `x` and `y`
/// are `-0.0`). The caller therefore scans the panel once at pack time
/// and dispatches `CHECK = false`, making the hot loop branch-free;
/// panels containing `±inf`/`NaN` (where `0 · inf = NaN` would differ)
/// take the `CHECK = true` path, which replays the naive skip exactly.
#[inline]
fn micro_gemm_4x4<const CHECK: bool>(
    arows: &[&[f64]; GEMM_MR],
    mp: &[f64],
    acc: &mut [[f64; GEMM_JR]; GEMM_MR],
) {
    for (kk, p) in mp.chunks_exact(GEMM_JR).enumerate() {
        for r in 0..GEMM_MR {
            let c = arows[r][kk];
            if CHECK && c == 0.0 {
                continue;
            }
            for (av, &pv) in acc[r].iter_mut().zip(p) {
                *av += c * pv;
            }
        }
    }
}

/// Ragged-edge companion of [`micro_gemm_4x4`]: up to `MR` rows and a
/// runtime column width `< JR`. Same ordering and skip contract.
#[inline]
fn micro_gemm_ragged<const CHECK: bool>(
    arows: &[&[f64]],
    mp: &[f64],
    width: usize,
    acc: &mut [[f64; GEMM_JR]],
) {
    for (kk, p) in mp.chunks_exact(width).enumerate() {
        for (r, arow) in arows.iter().enumerate() {
            let c = arow[kk];
            if CHECK && c == 0.0 {
                continue;
            }
            for (av, &pv) in acc[r][..width].iter_mut().zip(p) {
                *av += c * pv;
            }
        }
    }
}

/// Cache-blocked `out += A·B`, bit-identical to [`naive_gemm_into`].
///
/// `B` columns are processed in panels of [`GEMM_NC`], packed in
/// micro-panel order: each [`GEMM_JR`]-column tile is laid out
/// `k`-major so the reduction streams unit-stride. An `MR × JR`
/// register tile then carries all 16 partial sums through the entire
/// `k` loop — the inner loop reads one packed micro-panel row and four
/// `A` coefficients per step and touches no output memory, and for
/// all-finite panels it is fully branch-free (see [`micro_gemm_4x4`]
/// for why the zero-skip may be elided there). Each accumulator still
/// sums in ascending `k`, so the result is the naive loop's exact bits
/// (the contract requires `out` zeroed, so register sums starting at
/// `+0.0` replay the naive accumulation verbatim).
pub fn gemm_into(a: &[f64], m: usize, k: usize, b: &[f64], n: usize, out: &mut [f64]) {
    let mut panel = Vec::new();
    gemm_into_scratch(a, m, k, b, n, out, &mut panel);
}

/// [`gemm_into`] with a caller-owned packing buffer: `panel` is cleared
/// and resized as needed, but its capacity persists across calls, so
/// steady-state callers (the lockstep batched integrator's per-stage
/// GEMMs) allocate nothing after warm-up. Bit-identical to
/// [`gemm_into`] — the buffer carries capacity, never values.
pub fn gemm_into_scratch(
    a: &[f64],
    m: usize,
    k: usize,
    b: &[f64],
    n: usize,
    out: &mut [f64],
    panel: &mut Vec<f64>,
) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(out.len(), m * n);
    if m.saturating_mul(k).saturating_mul(n) < BLOCK_MIN_WORK {
        naive_gemm_into(a, m, k, b, n, out);
        return;
    }
    // SIMD requires *both* operands all-finite (the panel scan below
    // covers `B`): finite operands pin every NaN that can arise to the
    // hardware-canonical indefinite, making the vector path's bits
    // compiler-independent. Any non-finite value keeps the whole call
    // on the scalar reference kernels. The scan is one O(m·k) pass
    // against O(m·k·n) multiply work.
    let use_simd = simd_active() && a.iter().all(|v| v.is_finite());
    panel.clear();
    panel.resize(k * GEMM_NC.min(n), 0.0);
    let mut jc = 0;
    while jc < n {
        let ncw = GEMM_NC.min(n - jc);
        let full_jt = ncw / GEMM_JR;
        let tail = ncw % GEMM_JR;
        // Micro-panel pack: full JR-wide tiles k-major, then the
        // ragged column tail (also k-major) at the end.
        for jt in 0..full_jt {
            let src = jc + jt * GEMM_JR;
            let dst = jt * k * GEMM_JR;
            for kk in 0..k {
                panel[dst + kk * GEMM_JR..dst + (kk + 1) * GEMM_JR]
                    .copy_from_slice(&b[kk * n + src..kk * n + src + GEMM_JR]);
            }
        }
        let toff = full_jt * k * GEMM_JR;
        if tail > 0 {
            let src = jc + full_jt * GEMM_JR;
            for kk in 0..k {
                panel[toff + kk * tail..toff + (kk + 1) * tail]
                    .copy_from_slice(&b[kk * n + src..kk * n + src + tail]);
            }
        }
        let panel = &panel[..k * ncw];
        // One scan at pack time decides whether the zero-skip branch
        // can be elided from every micro-kernel over this panel.
        let finite = panel.iter().all(|v| v.is_finite());
        let mut i0 = 0;
        while i0 + GEMM_MR <= m {
            let arows = [
                &a[i0 * k..(i0 + 1) * k],
                &a[(i0 + 1) * k..(i0 + 2) * k],
                &a[(i0 + 2) * k..(i0 + 3) * k],
                &a[(i0 + 3) * k..(i0 + 4) * k],
            ];
            for jt in 0..full_jt {
                let mp = &panel[jt * k * GEMM_JR..(jt + 1) * k * GEMM_JR];
                let mut acc = [[0.0f64; GEMM_JR]; GEMM_MR];
                if finite {
                    dispatch_micro_gemm(use_simd, &arows, mp, &mut acc);
                } else {
                    micro_gemm_4x4::<true>(&arows, mp, &mut acc);
                }
                let j0 = jc + jt * GEMM_JR;
                for (r, row) in acc.iter().enumerate() {
                    out[(i0 + r) * n + j0..(i0 + r) * n + j0 + GEMM_JR].copy_from_slice(row);
                }
            }
            if tail > 0 {
                // Ragged column tail: same register accumulation with a
                // short row (at most JR-1 live accumulators).
                let mp = &panel[toff..toff + k * tail];
                let mut acc = [[0.0f64; GEMM_JR]; GEMM_MR];
                if finite {
                    micro_gemm_ragged::<false>(&arows, mp, tail, &mut acc);
                } else {
                    micro_gemm_ragged::<true>(&arows, mp, tail, &mut acc);
                }
                let j0 = jc + full_jt * GEMM_JR;
                for (r, row) in acc.iter().enumerate() {
                    out[(i0 + r) * n + j0..(i0 + r) * n + j0 + tail].copy_from_slice(&row[..tail]);
                }
            }
            i0 += GEMM_MR;
        }
        // Remainder rows (< GEMM_MR): single-row register tiles over the
        // same packed micro-panels.
        for i in i0..m {
            let arows = [&a[i * k..(i + 1) * k]];
            for jt in 0..full_jt {
                let mp = &panel[jt * k * GEMM_JR..(jt + 1) * k * GEMM_JR];
                let mut acc = [[0.0f64; GEMM_JR]; 1];
                if finite {
                    micro_gemm_ragged::<false>(&arows, mp, GEMM_JR, &mut acc);
                } else {
                    micro_gemm_ragged::<true>(&arows, mp, GEMM_JR, &mut acc);
                }
                let j0 = jc + jt * GEMM_JR;
                out[i * n + j0..i * n + j0 + GEMM_JR].copy_from_slice(&acc[0]);
            }
            if tail > 0 {
                let mp = &panel[toff..toff + k * tail];
                let mut acc = [[0.0f64; GEMM_JR]; 1];
                if finite {
                    micro_gemm_ragged::<false>(&arows, mp, tail, &mut acc);
                } else {
                    micro_gemm_ragged::<true>(&arows, mp, tail, &mut acc);
                }
                let j0 = jc + full_jt * GEMM_JR;
                out[i * n + j0..i * n + j0 + tail].copy_from_slice(&acc[0][..tail]);
            }
        }
        jc += ncw;
    }
}

// ---------------------------------------------------------------------------
// GEMM-T: out += Aᵀ·B, cache-blocked (the Gram-matrix workhorse).
// ---------------------------------------------------------------------------

/// Cache-blocked `out += Aᵀ·B`, bit-identical to [`naive_gemm_t_into`].
///
/// The output is tiled [`GT_MC`]`×`[`GT_NC`] (16 KiB, L1-resident).
/// Per tile, the relevant columns of `A` and `B` are packed into
/// contiguous `r`-major panels so the reduction streams unit-stride,
/// then `r` ascends over the whole reduction at once — never split —
/// with the naive `a[r][i] == 0.0` skip intact.
pub fn gemm_t_into(a: &[f64], rdim: usize, m: usize, b: &[f64], n: usize, out: &mut [f64]) {
    debug_assert_eq!(a.len(), rdim * m);
    debug_assert_eq!(b.len(), rdim * n);
    debug_assert_eq!(out.len(), m * n);
    if rdim.saturating_mul(m).saturating_mul(n) < BLOCK_MIN_WORK {
        naive_gemm_t_into(a, rdim, m, b, n, out);
        return;
    }
    gemm_t_tiles(a, rdim, m, b, n, out, false);
}

/// The 4×4 register micro-kernel for the transposed product: both
/// operands arrive as `r`-major micro-panels of four columns, so each
/// `r` step is two unit-stride quad loads plus 16 register FMAs. `r`
/// ascends over the whole reduction per accumulator — never split —
/// and `CHECK` carries the naive `a[r][i] == 0.0` skip (elided when
/// the `B` panel is all finite; see [`micro_gemm_4x4`] for the IEEE
/// argument).
#[inline]
fn micro_tt_4x4<const CHECK: bool>(pa: &[f64], pb: &[f64], acc: &mut [[f64; 4]; 4]) {
    for (av, bv) in pa.chunks_exact(4).zip(pb.chunks_exact(4)) {
        for ii in 0..4 {
            let c = av[ii];
            if CHECK && c == 0.0 {
                continue;
            }
            for (s, &pv) in acc[ii].iter_mut().zip(bv) {
                *s += c * pv;
            }
        }
    }
}

/// Ragged-edge companion of [`micro_tt_4x4`]: runtime row width `wi`
/// and column width `wj`, both at most 4.
#[inline]
fn micro_tt_ragged<const CHECK: bool>(
    pa: &[f64],
    wi: usize,
    pb: &[f64],
    wj: usize,
    acc: &mut [[f64; 4]; 4],
) {
    for (av, bv) in pa.chunks_exact(wi).zip(pb.chunks_exact(wj)) {
        for (ii, &c) in av.iter().enumerate() {
            if CHECK && c == 0.0 {
                continue;
            }
            for (s, &pv) in acc[ii][..wj].iter_mut().zip(bv) {
                *s += c * pv;
            }
        }
    }
}

/// Shared tile driver for [`gemm_t_into`] and [`syrk_t_into`].
/// `upper_only` skips output tiles that lie entirely below the
/// diagonal (SYRK computes them by mirroring instead).
///
/// Both operands are packed into `r`-major micro-panels of four
/// columns (`A` per [`GT_MC`]-row tile, `B` per [`GT_NC`]-column
/// panel) and every 4×4 output tile is register-accumulated over the
/// full reduction by [`micro_tt_4x4`].
fn gemm_t_tiles(
    a: &[f64],
    rdim: usize,
    m: usize,
    b: &[f64],
    n: usize,
    out: &mut [f64],
    upper_only: bool,
) {
    // Same finite-only SIMD gate as `gemm_into_scratch`: the per-panel
    // scan below covers the packed `B` side, this O(r·m) pass covers
    // `A` (for SYRK the two are the same slice).
    let use_simd = simd_active() && a.iter().all(|v| v.is_finite());
    let mut pa = vec![0.0; rdim * GT_MC.min(m)];
    let mut pb = vec![0.0; rdim * GT_NC.min(n)];
    let mut jc = 0;
    while jc < n {
        let ncw = GT_NC.min(n - jc);
        let full_jt = ncw / 4;
        let jtail = ncw % 4;
        for jt in 0..full_jt {
            let src = jc + jt * 4;
            let dst = jt * rdim * 4;
            for r in 0..rdim {
                pb[dst + r * 4..dst + (r + 1) * 4]
                    .copy_from_slice(&b[r * n + src..r * n + src + 4]);
            }
        }
        let jtoff = full_jt * rdim * 4;
        if jtail > 0 {
            let src = jc + full_jt * 4;
            for r in 0..rdim {
                pb[jtoff + r * jtail..jtoff + (r + 1) * jtail]
                    .copy_from_slice(&b[r * n + src..r * n + src + jtail]);
            }
        }
        let pbp = &pb[..rdim * ncw];
        // One scan per packed panel decides whether the zero-skip can
        // be elided from the micro-kernels (all-finite B).
        let finite = pbp.iter().all(|v| v.is_finite());
        let mut ic = 0;
        while ic < m {
            let mcw = GT_MC.min(m - ic);
            // A tile entirely below the diagonal: SYRK fills it by
            // mirroring the transposed tile, skip the compute.
            if upper_only && jc + ncw <= ic {
                ic += mcw;
                continue;
            }
            let full_it = mcw / 4;
            let mtail = mcw % 4;
            for it in 0..full_it {
                let src = ic + it * 4;
                let dst = it * rdim * 4;
                for r in 0..rdim {
                    pa[dst + r * 4..dst + (r + 1) * 4]
                        .copy_from_slice(&a[r * m + src..r * m + src + 4]);
                }
            }
            let itoff = full_it * rdim * 4;
            if mtail > 0 {
                let src = ic + full_it * 4;
                for r in 0..rdim {
                    pa[itoff + r * mtail..itoff + (r + 1) * mtail]
                        .copy_from_slice(&a[r * m + src..r * m + src + mtail]);
                }
            }
            for it in 0..full_it {
                let pat = &pa[it * rdim * 4..(it + 1) * rdim * 4];
                let i0 = ic + it * 4;
                for jt in 0..full_jt {
                    let pbt = &pbp[jt * rdim * 4..(jt + 1) * rdim * 4];
                    let mut acc = [[0.0f64; 4]; 4];
                    if finite {
                        dispatch_micro_tt(use_simd, pat, pbt, &mut acc);
                    } else {
                        micro_tt_4x4::<true>(pat, pbt, &mut acc);
                    }
                    let j0 = jc + jt * 4;
                    for (ii, row) in acc.iter().enumerate() {
                        out[(i0 + ii) * n + j0..(i0 + ii) * n + j0 + 4].copy_from_slice(row);
                    }
                }
                if jtail > 0 {
                    let pbt = &pbp[jtoff..jtoff + rdim * jtail];
                    let mut acc = [[0.0f64; 4]; 4];
                    if finite {
                        micro_tt_ragged::<false>(pat, 4, pbt, jtail, &mut acc);
                    } else {
                        micro_tt_ragged::<true>(pat, 4, pbt, jtail, &mut acc);
                    }
                    let j0 = jc + full_jt * 4;
                    for (ii, row) in acc.iter().enumerate() {
                        out[(i0 + ii) * n + j0..(i0 + ii) * n + j0 + jtail]
                            .copy_from_slice(&row[..jtail]);
                    }
                }
            }
            if mtail > 0 {
                let pat = &pa[itoff..itoff + rdim * mtail];
                let i0 = ic + full_it * 4;
                for jt in 0..full_jt {
                    let pbt = &pbp[jt * rdim * 4..(jt + 1) * rdim * 4];
                    let mut acc = [[0.0f64; 4]; 4];
                    if finite {
                        micro_tt_ragged::<false>(pat, mtail, pbt, 4, &mut acc);
                    } else {
                        micro_tt_ragged::<true>(pat, mtail, pbt, 4, &mut acc);
                    }
                    let j0 = jc + jt * 4;
                    for (ii, row) in acc[..mtail].iter().enumerate() {
                        out[(i0 + ii) * n + j0..(i0 + ii) * n + j0 + 4].copy_from_slice(row);
                    }
                }
                if jtail > 0 {
                    let pbt = &pbp[jtoff..jtoff + rdim * jtail];
                    let mut acc = [[0.0f64; 4]; 4];
                    if finite {
                        micro_tt_ragged::<false>(pat, mtail, pbt, jtail, &mut acc);
                    } else {
                        micro_tt_ragged::<true>(pat, mtail, pbt, jtail, &mut acc);
                    }
                    let j0 = jc + full_jt * 4;
                    for (ii, row) in acc[..mtail].iter().enumerate() {
                        out[(i0 + ii) * n + j0..(i0 + ii) * n + j0 + jtail]
                            .copy_from_slice(&row[..jtail]);
                    }
                }
            }
            ic += mcw;
        }
        jc += ncw;
    }
}

// ---------------------------------------------------------------------------
// SYRK: out = AᵀA by upper triangle + mirror.
// ---------------------------------------------------------------------------

/// Symmetric rank-k product `out += Aᵀ·A` (`A` is `r×m`, `out` is
/// `m×m`): computes only output tiles on or above the diagonal — the
/// naive convention, bit-for-bit — and fills the strict lower triangle
/// by mirroring, halving the flop count of a full [`gemm_t_into`].
///
/// For finite inputs the mirror is exact: `G[j][i]` and `G[i][j]` sum
/// the same products `a[r][i]·a[r][j]` in the same `r` order. The only
/// deviation from naive `Aᵀ·A` is in the *strict lower triangle* under
/// signed-zero/∞ pathologies, where the naive zero-skip (keyed on
/// column `j` instead of column `i`) is itself asymmetric; the upper
/// triangle always matches naive bit-for-bit, and the result is
/// symmetric by construction (which naive `Aᵀ·A` is not guaranteed to
/// be in those same pathologies).
pub fn syrk_t_into(a: &[f64], rdim: usize, m: usize, out: &mut [f64]) {
    debug_assert_eq!(a.len(), rdim * m);
    debug_assert_eq!(out.len(), m * m);
    if rdim.saturating_mul(m).saturating_mul(m) < BLOCK_MIN_WORK {
        naive_gemm_t_into(a, rdim, m, a, m, out);
        return;
    }
    gemm_t_tiles(a, rdim, m, a, m, out, true);
    for i in 1..m {
        for j in 0..i {
            out[i * m + j] = out[j * m + i];
        }
    }
}

// ---------------------------------------------------------------------------
// GEMM-NT: out += A·Bᵀ (dot-product form).
// ---------------------------------------------------------------------------

/// Cache-blocked `out += A·Bᵀ`, bit-identical to [`naive_gemm_nt_into`].
///
/// `B` rows are processed in blocks of [`NT_JB`] that stay
/// cache-resident while every row of `A` streams past once. Output
/// elements are produced in 2×2 groups — four independent sequential-k
/// accumulator chains — so the dot products overlap instead of
/// serialising on FP-add latency. Each chain still sums in ascending
/// `k`, so every element matches the naive dot bit-for-bit.
pub fn gemm_nt_into(a: &[f64], m: usize, k: usize, b: &[f64], nb: usize, out: &mut [f64]) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), nb * k);
    debug_assert_eq!(out.len(), m * nb);
    if m.saturating_mul(k).saturating_mul(nb) < BLOCK_MIN_WORK {
        naive_gemm_nt_into(a, m, k, b, nb, out);
        return;
    }
    if gemm_nt_simd(a, m, k, b, nb, out) {
        return;
    }
    let mut jb = 0;
    while jb < nb {
        let jbw = NT_JB.min(nb - jb);
        let mut i = 0;
        while i + 2 <= m {
            let a0 = &a[i * k..(i + 1) * k];
            let a1 = &a[(i + 1) * k..(i + 2) * k];
            let mut j = jb;
            while j + 2 <= jb + jbw {
                let b0 = &b[j * k..(j + 1) * k];
                let b1 = &b[(j + 1) * k..(j + 2) * k];
                let (mut s00, mut s01, mut s10, mut s11) = (0.0, 0.0, 0.0, 0.0);
                for kk in 0..k {
                    let (av0, av1) = (a0[kk], a1[kk]);
                    let (bv0, bv1) = (b0[kk], b1[kk]);
                    s00 += av0 * bv0;
                    s01 += av0 * bv1;
                    s10 += av1 * bv0;
                    s11 += av1 * bv1;
                }
                out[i * nb + j] += s00;
                out[i * nb + j + 1] += s01;
                out[(i + 1) * nb + j] += s10;
                out[(i + 1) * nb + j + 1] += s11;
                j += 2;
            }
            if j < jb + jbw {
                out[i * nb + j] += dot(a0, &b[j * k..(j + 1) * k]);
                out[(i + 1) * nb + j] += dot(a1, &b[j * k..(j + 1) * k]);
            }
            i += 2;
        }
        if i < m {
            let arow = &a[i * k..(i + 1) * k];
            for j in jb..jb + jbw {
                out[i * nb + j] += dot(arow, &b[j * k..(j + 1) * k]);
            }
        }
        jb += jbw;
    }
}

/// The AVX `A·Bᵀ` path: four B rows are packed transposed (`k`-major,
/// four columns wide), turning the dot-product form into the same
/// micro-panel shape as [`gemm_into`] so the AVX micro-kernel's lanes
/// run across four independent output columns. `naive_gemm_nt_into`
/// has no zero-skip, so the unconditional branch-free accumulation
/// replays the naive sequential-`k` dot; the writeback stays scalar
/// `out += acc` to replicate the naive element update on `-0.0` edges
/// (a plain copy would diverge there). Ragged row/column tails take
/// the scalar dot, which is the naive reduction itself.
///
/// Returns `false` (having written nothing) when SIMD is inactive or
/// either operand holds a non-finite value (see [`simd`] for why the
/// vector path only guarantees bit-parity on finite inputs), so the
/// caller falls through to the scalar blocked path.
#[cfg(all(feature = "simd", target_arch = "x86_64"))]
fn gemm_nt_simd(a: &[f64], m: usize, k: usize, b: &[f64], nb: usize, out: &mut [f64]) -> bool {
    if !simd_active() {
        return false;
    }
    if !a.iter().chain(b.iter()).all(|v| v.is_finite()) {
        return false;
    }
    let mut panel = vec![0.0; k * GEMM_JR];
    let mut j = 0;
    while j + GEMM_JR <= nb {
        for kk in 0..k {
            for l in 0..GEMM_JR {
                panel[kk * GEMM_JR + l] = b[(j + l) * k + kk];
            }
        }
        let mut i0 = 0;
        while i0 + GEMM_MR <= m {
            let arows = [
                &a[i0 * k..(i0 + 1) * k],
                &a[(i0 + 1) * k..(i0 + 2) * k],
                &a[(i0 + 2) * k..(i0 + 3) * k],
                &a[(i0 + 3) * k..(i0 + 4) * k],
            ];
            let mut acc = [[0.0f64; GEMM_JR]; GEMM_MR];
            simd::micro_gemm_4x4(&arows, &panel, &mut acc);
            for (r, row) in acc.iter().enumerate() {
                let orow = &mut out[(i0 + r) * nb + j..(i0 + r) * nb + j + GEMM_JR];
                for (o, &v) in orow.iter_mut().zip(row) {
                    *o += v;
                }
            }
            i0 += GEMM_MR;
        }
        for i in i0..m {
            let arow = &a[i * k..(i + 1) * k];
            for l in 0..GEMM_JR {
                out[i * nb + j + l] += dot(arow, &b[(j + l) * k..(j + l + 1) * k]);
            }
        }
        j += GEMM_JR;
    }
    for jj in j..nb {
        let brow = &b[jj * k..(jj + 1) * k];
        for (i, orow) in out.chunks_exact_mut(nb).enumerate() {
            orow[jj] += dot(&a[i * k..(i + 1) * k], brow);
        }
    }
    true
}

/// Scalar-only build of [`gemm_nt_simd`]: never takes the SIMD path.
#[cfg(not(all(feature = "simd", target_arch = "x86_64")))]
fn gemm_nt_simd(
    _a: &[f64],
    _m: usize,
    _k: usize,
    _b: &[f64],
    _nb: usize,
    _out: &mut [f64],
) -> bool {
    false
}

/// Sequential-k dot product — the naive per-element reduction.
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    let mut acc = 0.0;
    for (&av, &bv) in a.iter().zip(b) {
        acc += av * bv;
    }
    acc
}

// ---------------------------------------------------------------------------
// Matvec: out[i] = row_i · x, multi-row blocked.
// ---------------------------------------------------------------------------

/// Row-blocked matvec, bit-identical to [`naive_matvec_into`]: four
/// rows share one streaming pass over `x` (four independent
/// accumulator chains), amortising the vector's cache traffic that
/// dominates the dense annealing matvec. Allocation-free, so it is
/// safe inside the zero-allocation annealing hot path.
pub fn matvec_rows_into(a: &[f64], cols: usize, x: &[f64], out: &mut [f64]) {
    debug_assert_eq!(a.len(), out.len() * cols);
    debug_assert_eq!(x.len(), cols);
    if matvec_rows_simd(a, cols, x, out) {
        return;
    }
    let nrows = out.len();
    let mut i = 0;
    while i + 4 <= nrows {
        let s = matvec4_scalar(
            &a[i * cols..(i + 1) * cols],
            &a[(i + 1) * cols..(i + 2) * cols],
            &a[(i + 2) * cols..(i + 3) * cols],
            &a[(i + 3) * cols..(i + 4) * cols],
            x,
        );
        out[i..i + 4].copy_from_slice(&s);
        i += 4;
    }
    for o in out[i..].iter_mut() {
        *o = dot(&a[i * cols..(i + 1) * cols], x);
        i += 1;
    }
}

/// The scalar four-row matvec block: four independent accumulator
/// chains over one streaming pass of `x`, each in ascending `k` — the
/// naive per-row reduction, four rows at a time.
///
/// `inline(never)` is load-bearing: this exact compiled body serves
/// both [`matvec_rows_into`] and the non-finite fallback inside
/// [`matvec_rows_simd`], so a block that is ineligible for the vector
/// path produces the same bits whichever entry reached it (inlining
/// could otherwise specialise the two call sites differently, and NaN
/// operand-order choices are codegen-dependent).
#[inline(never)]
fn matvec4_scalar(r0: &[f64], r1: &[f64], r2: &[f64], r3: &[f64], x: &[f64]) -> [f64; 4] {
    let (mut s0, mut s1, mut s2, mut s3) = (0.0, 0.0, 0.0, 0.0);
    for (kk, &xv) in x.iter().enumerate() {
        s0 += r0[kk] * xv;
        s1 += r1[kk] * xv;
        s2 += r2[kk] * xv;
        s3 += r3[kk] * xv;
    }
    [s0, s1, s2, s3]
}

/// The AVX matvec path: lanes run across four independent output
/// *rows* via an in-register 4×4 transpose (see [`simd::matvec4`]).
/// Row tails (`rows % 4`) take the scalar dot — the naive reduction.
///
/// The matvec reads each matrix element exactly once, so a pre-scan of
/// the operands would double its memory traffic. Instead the NaN gate
/// runs *after the fact*: NaN is absorbing under add and multiply, so
/// a non-NaN output lane proves no NaN ever entered that reduction
/// chain — every operation on it was fully IEEE-determined and the
/// vector bits equal the scalar bits. A NaN lane is the one case where
/// vector/scalar agreement is codegen-dependent (see [`simd`]), so the
/// whole block replays through [`matvec4_scalar`] — the same compiled
/// body the scalar path runs — whose result is authoritative.
///
/// Returns `false` (having written nothing) when SIMD is inactive.
#[cfg(all(feature = "simd", target_arch = "x86_64"))]
fn matvec_rows_simd(a: &[f64], cols: usize, x: &[f64], out: &mut [f64]) -> bool {
    if !simd_active() {
        return false;
    }
    let nrows = out.len();
    let mut i = 0;
    while i + 4 <= nrows {
        let r0 = &a[i * cols..(i + 1) * cols];
        let r1 = &a[(i + 1) * cols..(i + 2) * cols];
        let r2 = &a[(i + 2) * cols..(i + 3) * cols];
        let r3 = &a[(i + 3) * cols..(i + 4) * cols];
        let mut s = simd::matvec4(r0, r1, r2, r3, x);
        if s.iter().any(|v| v.is_nan()) {
            s = matvec4_scalar(r0, r1, r2, r3, x);
        }
        out[i..i + 4].copy_from_slice(&s);
        i += 4;
    }
    for o in out[i..].iter_mut() {
        *o = dot(&a[i * cols..(i + 1) * cols], x);
        i += 1;
    }
    true
}

/// Scalar-only build of [`matvec_rows_simd`]: never takes the SIMD
/// path.
#[cfg(not(all(feature = "simd", target_arch = "x86_64")))]
fn matvec_rows_simd(_a: &[f64], _cols: usize, _x: &[f64], _out: &mut [f64]) -> bool {
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    fn fill(rng: &mut StdRng, len: usize, zero_frac: f64) -> Vec<f64> {
        (0..len)
            .map(|_| {
                if rng.random::<f64>() < zero_frac {
                    0.0
                } else {
                    rng.random::<f64>() * 2.0 - 1.0
                }
            })
            .collect()
    }

    fn bits(v: &[f64]) -> Vec<u64> {
        v.iter().map(|x| x.to_bits()).collect()
    }

    /// Shapes spanning the ragged cases the property suite also
    /// covers: unit, prime, tall/skinny, wide/flat, and sizes large
    /// enough to cross the blocked-dispatch threshold and panel edges.
    const SHAPES: &[(usize, usize, usize)] = &[
        (1, 1, 1),
        (3, 5, 7),
        (17, 13, 11),
        (97, 4, 3),
        (2, 151, 2),
        (129, 33, 130),
        (40, 257, 41),
        (64, 64, 64),
    ];

    #[test]
    fn gemm_matches_naive_bitwise() {
        let mut rng = StdRng::seed_from_u64(11);
        for &(m, k, n) in SHAPES {
            for zf in [0.0, 0.4] {
                let a = fill(&mut rng, m * k, zf);
                let b = fill(&mut rng, k * n, zf);
                let mut naive = vec![0.0; m * n];
                let mut blocked = vec![0.0; m * n];
                naive_gemm_into(&a, m, k, &b, n, &mut naive);
                gemm_into(&a, m, k, &b, n, &mut blocked);
                assert_eq!(bits(&naive), bits(&blocked), "gemm {m}x{k}x{n} zf={zf}");
            }
        }
    }

    #[test]
    fn gemm_t_matches_naive_bitwise() {
        let mut rng = StdRng::seed_from_u64(13);
        for &(r, m, n) in SHAPES {
            for zf in [0.0, 0.4] {
                let a = fill(&mut rng, r * m, zf);
                let b = fill(&mut rng, r * n, zf);
                let mut naive = vec![0.0; m * n];
                let mut blocked = vec![0.0; m * n];
                naive_gemm_t_into(&a, r, m, &b, n, &mut naive);
                gemm_t_into(&a, r, m, &b, n, &mut blocked);
                assert_eq!(bits(&naive), bits(&blocked), "gemm_t {r}x{m}x{n} zf={zf}");
            }
        }
    }

    #[test]
    fn gemm_nt_matches_naive_bitwise() {
        let mut rng = StdRng::seed_from_u64(17);
        for &(m, k, nb) in SHAPES {
            let a = fill(&mut rng, m * k, 0.1);
            let b = fill(&mut rng, nb * k, 0.1);
            let mut naive = vec![0.0; m * nb];
            let mut blocked = vec![0.0; m * nb];
            naive_gemm_nt_into(&a, m, k, &b, nb, &mut naive);
            gemm_nt_into(&a, m, k, &b, nb, &mut blocked);
            assert_eq!(bits(&naive), bits(&blocked), "gemm_nt {m}x{k}x{nb}");
        }
    }

    #[test]
    fn syrk_upper_matches_naive_and_is_symmetric() {
        let mut rng = StdRng::seed_from_u64(19);
        for &(r, m, _) in SHAPES {
            for zf in [0.0, 0.4] {
                let a = fill(&mut rng, r * m, zf);
                let mut naive = vec![0.0; m * m];
                let mut syrk = vec![0.0; m * m];
                naive_gemm_t_into(&a, r, m, &a, m, &mut naive);
                syrk_t_into(&a, r, m, &mut syrk);
                for i in 0..m {
                    for j in i..m {
                        assert_eq!(
                            naive[i * m + j].to_bits(),
                            syrk[i * m + j].to_bits(),
                            "syrk upper ({i},{j}) r={r} m={m}"
                        );
                    }
                    for j in 0..i {
                        assert_eq!(
                            syrk[i * m + j].to_bits(),
                            syrk[j * m + i].to_bits(),
                            "syrk mirror ({i},{j})"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn matvec_matches_naive_bitwise() {
        let mut rng = StdRng::seed_from_u64(23);
        for rows in [1usize, 2, 3, 4, 5, 7, 31, 64, 129] {
            for cols in [1usize, 3, 17, 64, 251] {
                let a = fill(&mut rng, rows * cols, 0.2);
                let x = fill(&mut rng, cols, 0.0);
                let mut naive = vec![0.0; rows];
                let mut blocked = vec![0.0; rows];
                naive_matvec_into(&a, cols, &x, &mut naive);
                matvec_rows_into(&a, cols, &x, &mut blocked);
                assert_eq!(bits(&naive), bits(&blocked), "matvec {rows}x{cols}");
            }
        }
    }

    #[test]
    fn zero_skip_signed_zero_edge_is_replicated() {
        // -0.0 rows exercise the IEEE edge where skipping vs adding
        // 0.0·b is visible in the sign bit of a -0.0 accumulator.
        let m = 8;
        let k = 70;
        let n = 130;
        let mut a = vec![0.0; m * k];
        let mut b = vec![0.0; k * n];
        for (idx, v) in a.iter_mut().enumerate() {
            *v = match idx % 3 {
                0 => 0.0,
                1 => -0.0,
                _ => -1.0,
            };
        }
        for (idx, v) in b.iter_mut().enumerate() {
            *v = if idx % 2 == 0 { 0.0 } else { 1.0 };
        }
        let mut naive = vec![0.0; m * n];
        let mut blocked = vec![0.0; m * n];
        naive_gemm_into(&a, m, k, &b, n, &mut naive);
        gemm_into(&a, m, k, &b, n, &mut blocked);
        assert_eq!(bits(&naive), bits(&blocked));
    }

    #[test]
    fn simd_toggle_never_changes_bits() {
        // Every kernel, above and below the blocked threshold, with the
        // SIMD path forced off and (where the build and CPU allow) on.
        // The toggle is process-global but both paths agree bitwise, so
        // flipping it cannot perturb concurrent tests.
        let mut rng = StdRng::seed_from_u64(29);
        for &(m, k, n) in SHAPES {
            let a = fill(&mut rng, m * k, 0.3);
            let b = fill(&mut rng, k * n, 0.3);
            let bt = fill(&mut rng, m * n, 0.3);
            let x = fill(&mut rng, k, 0.0);
            let run = || {
                let mut gemm = vec![0.0; m * n];
                gemm_into(&a, m, k, &b, n, &mut gemm);
                // A reinterpreted as rdim=m rows of k columns.
                let mut gemm_t = vec![0.0; k * n];
                gemm_t_into(&a, m, k, &bt, n, &mut gemm_t);
                let mut nt = vec![0.0; m * m];
                gemm_nt_into(&a, m, k, &a, m, &mut nt);
                let mut syrk = vec![0.0; k * k];
                syrk_t_into(&a, m, k, &mut syrk);
                let mut mv = vec![0.0; m];
                matvec_rows_into(&a, k, &x, &mut mv);
                (bits(&gemm), bits(&gemm_t), bits(&nt), bits(&syrk), bits(&mv))
            };
            set_simd_enabled(false);
            let scalar = run();
            set_simd_enabled(true);
            let vector = run();
            assert_eq!(scalar, vector, "simd toggle changed bits at {m}x{k}x{n}");
        }
        set_simd_enabled(true);
    }
}
