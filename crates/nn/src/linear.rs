//! Fully-connected layer.

use crate::adam::Adam;
use crate::init::xavier_uniform;
use crate::matrix::Matrix;
use rand::Rng;

/// A dense layer `y = x·W + b` with manual backpropagation.
///
/// `forward` caches the input; `backward` accumulates `∂L/∂W`, `∂L/∂b`
/// and returns `∂L/∂x`. Gradients accumulate across calls until
/// [`zero_grad`](Self::zero_grad) — this is what lets models sum
/// gradients over a mini-batch processed sample by sample.
#[derive(Debug, Clone)]
pub struct Linear {
    w: Matrix,
    b: Vec<f64>,
    grad_w: Matrix,
    grad_b: Vec<f64>,
    cached_input: Option<Matrix>,
}

impl Linear {
    /// Creates a layer mapping `input_dim` to `output_dim` features with
    /// Xavier-initialised weights and zero bias.
    pub fn new<R: Rng + ?Sized>(input_dim: usize, output_dim: usize, rng: &mut R) -> Self {
        Linear {
            w: xavier_uniform(input_dim, output_dim, rng),
            b: vec![0.0; output_dim],
            grad_w: Matrix::zeros(input_dim, output_dim),
            grad_b: vec![0.0; output_dim],
            cached_input: None,
        }
    }

    /// Input feature dimension.
    pub fn input_dim(&self) -> usize {
        self.w.rows()
    }

    /// Output feature dimension.
    pub fn output_dim(&self) -> usize {
        self.w.cols()
    }

    /// The weight matrix.
    pub fn weights(&self) -> &Matrix {
        &self.w
    }

    /// Number of trainable parameters.
    pub fn parameter_count(&self) -> usize {
        self.w.rows() * self.w.cols() + self.b.len()
    }

    /// Forward pass `y = x·W + b`, caching `x` for the backward pass.
    ///
    /// # Panics
    ///
    /// Panics if `x.cols() != input_dim()`.
    pub fn forward(&mut self, x: &Matrix) -> Matrix {
        let y = x.matmul(&self.w).add_row_broadcast(&self.b);
        self.cached_input = Some(x.clone());
        y
    }

    /// Forward pass without caching (inference only).
    ///
    /// # Panics
    ///
    /// Panics if `x.cols() != input_dim()`.
    pub fn forward_inference(&self, x: &Matrix) -> Matrix {
        x.matmul(&self.w).add_row_broadcast(&self.b)
    }

    /// Backward pass: accumulates parameter gradients from `grad_out`
    /// (`∂L/∂y`) and returns `∂L/∂x`.
    ///
    /// # Panics
    ///
    /// Panics if no forward pass is cached or shapes mismatch.
    pub fn backward(&mut self, grad_out: &Matrix) -> Matrix {
        let x = self
            .cached_input
            .as_ref()
            .expect("backward called before forward");
        self.grad_w.add_assign(&x.t_matmul(grad_out));
        for (gb, s) in self.grad_b.iter_mut().zip(grad_out.col_sums()) {
            *gb += s;
        }
        grad_out.matmul_t(&self.w)
    }

    /// Clears accumulated gradients.
    pub fn zero_grad(&mut self) {
        self.grad_w = Matrix::zeros(self.w.rows(), self.w.cols());
        self.grad_b.iter_mut().for_each(|g| *g = 0.0);
    }

    /// Applies accumulated gradients with `opt`, consuming slot ids
    /// `base_slot` (weights) and `base_slot + 1` (bias), then zeroes them.
    pub fn apply_gradients(&mut self, opt: &mut Adam, base_slot: usize) {
        opt.update(base_slot, self.w.as_mut_slice(), self.grad_w.as_slice());
        opt.update(base_slot + 1, &mut self.b, &self.grad_b);
        self.zero_grad();
    }

    /// FLOPs of one forward pass over a batch of `batch` rows.
    pub fn flops(&self, batch: usize) -> u64 {
        crate::flops::matmul(batch, self.w.rows(), self.w.cols())
            + crate::flops::elementwise(batch, self.w.cols(), 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loss::{mse, mse_grad};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn forward_shape_and_bias() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut l = Linear::new(4, 2, &mut rng);
        let y = l.forward(&Matrix::zeros(3, 4));
        assert_eq!(y.shape(), (3, 2));
        assert_eq!(y.as_slice(), &[0.0; 6], "zero input, zero bias");
    }

    #[test]
    fn gradients_match_finite_difference() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut l = Linear::new(3, 2, &mut rng);
        let x = Matrix::from_vec(2, 3, vec![0.1, -0.4, 0.3, 0.9, 0.2, -0.7]).unwrap();
        let target = Matrix::from_vec(2, 2, vec![0.5, -0.5, 0.1, 0.8]).unwrap();

        let y = l.forward(&x);
        let gy = mse_grad(&y, &target);
        let gx = l.backward(&gy);

        // Check dL/dW numerically for a few entries.
        let eps = 1e-6;
        for &(r, c) in &[(0, 0), (2, 1), (1, 0)] {
            let orig = l.w.get(r, c);
            l.w.set(r, c, orig + eps);
            let lp = mse(&l.forward_inference(&x), &target);
            l.w.set(r, c, orig - eps);
            let lm = mse(&l.forward_inference(&x), &target);
            l.w.set(r, c, orig);
            let fd = (lp - lm) / (2.0 * eps);
            assert!(
                (l.grad_w.get(r, c) - fd).abs() < 1e-6,
                "dW[{r}][{c}] analytic {} vs fd {fd}",
                l.grad_w.get(r, c)
            );
        }

        // Check dL/dx numerically for one entry.
        let mut xp = x.clone();
        xp.set(0, 1, x.get(0, 1) + eps);
        let lp = mse(&l.forward_inference(&xp), &target);
        xp.set(0, 1, x.get(0, 1) - eps);
        let lm = mse(&l.forward_inference(&xp), &target);
        let fd = (lp - lm) / (2.0 * eps);
        assert!((gx.get(0, 1) - fd).abs() < 1e-6);
    }

    #[test]
    fn training_reduces_loss() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut l = Linear::new(2, 1, &mut rng);
        let mut opt = Adam::new(0.05);
        // Learn y = x0 + 2 x1.
        let x = Matrix::from_vec(4, 2, vec![0., 0., 1., 0., 0., 1., 1., 1.]).unwrap();
        let t = Matrix::from_vec(4, 1, vec![0., 1., 2., 3.]).unwrap();
        let first = mse(&l.forward_inference(&x), &t);
        for _ in 0..500 {
            let y = l.forward(&x);
            let gy = mse_grad(&y, &t);
            l.backward(&gy);
            l.apply_gradients(&mut opt, 0);
        }
        let last = mse(&l.forward_inference(&x), &t);
        assert!(last < first / 100.0, "loss {first} -> {last}");
    }

    #[test]
    #[should_panic(expected = "backward called before forward")]
    fn backward_requires_forward() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut l = Linear::new(2, 2, &mut rng);
        l.backward(&Matrix::zeros(1, 2));
    }

    #[test]
    fn gradients_accumulate_until_zeroed() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut l = Linear::new(2, 1, &mut rng);
        let x = Matrix::ones(1, 2);
        let g = Matrix::ones(1, 1);
        l.forward(&x);
        l.backward(&g);
        let once = l.grad_w.clone();
        l.forward(&x);
        l.backward(&g);
        assert_eq!(l.grad_w, once.scale(2.0));
        l.zero_grad();
        assert_eq!(l.grad_w.frobenius_norm(), 0.0);
    }

    #[test]
    fn parameter_count() {
        let mut rng = StdRng::seed_from_u64(5);
        assert_eq!(Linear::new(3, 4, &mut rng).parameter_count(), 16);
    }
}
