//! Weight initialisation.

use crate::matrix::Matrix;
use rand::{Rng, RngExt};

/// Xavier/Glorot-uniform initialisation: entries drawn uniformly from
/// `±sqrt(6 / (fan_in + fan_out))`.
pub fn xavier_uniform<R: Rng + ?Sized>(fan_in: usize, fan_out: usize, rng: &mut R) -> Matrix {
    let bound = (6.0 / (fan_in + fan_out) as f64).sqrt();
    let data = (0..fan_in * fan_out)
        .map(|_| (rng.random::<f64>() * 2.0 - 1.0) * bound)
        .collect();
    Matrix::from_vec(fan_in, fan_out, data).expect("sized buffer")
}

/// Small uniform initialisation in `±bound`, used for node embeddings.
pub fn uniform<R: Rng + ?Sized>(rows: usize, cols: usize, bound: f64, rng: &mut R) -> Matrix {
    let data = (0..rows * cols)
        .map(|_| (rng.random::<f64>() * 2.0 - 1.0) * bound)
        .collect();
    Matrix::from_vec(rows, cols, data).expect("sized buffer")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn xavier_within_bound() {
        let mut rng = StdRng::seed_from_u64(0);
        let m = xavier_uniform(10, 20, &mut rng);
        let bound = (6.0f64 / 30.0).sqrt();
        assert!(m.as_slice().iter().all(|v| v.abs() <= bound));
        assert_eq!(m.shape(), (10, 20));
        // Not all identical.
        assert!(m.as_slice().iter().any(|&v| v != m.as_slice()[0]));
    }

    #[test]
    fn uniform_within_bound() {
        let mut rng = StdRng::seed_from_u64(1);
        let m = uniform(4, 4, 0.1, &mut rng);
        assert!(m.as_slice().iter().all(|v| v.abs() <= 0.1));
    }

    #[test]
    fn deterministic() {
        let a = xavier_uniform(3, 3, &mut StdRng::seed_from_u64(5));
        let b = xavier_uniform(3, 3, &mut StdRng::seed_from_u64(5));
        assert_eq!(a, b);
    }
}
