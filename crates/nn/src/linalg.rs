//! Dense linear algebra: Cholesky factorisation and SPD solves.

use crate::matrix::Matrix;

/// Cholesky factor `L` (lower triangular, `A = L·Lᵀ`) of a symmetric
/// positive-definite matrix.
///
/// Returns `None` when the matrix is not positive definite (a pivot
/// fails), which callers treat as "increase the ridge".
pub fn cholesky(a: &Matrix) -> Option<Matrix> {
    let (n, m) = a.shape();
    assert_eq!(n, m, "cholesky needs a square matrix");
    let mut l = Matrix::zeros(n, n);
    // The inner reduction runs on contiguous row slices (rows i and j
    // of L up to column j) instead of element-wise get/set — same
    // subtraction order, so the factor is bit-identical to the
    // historical loop, without per-element bounds asserts.
    for i in 0..n {
        for j in 0..=i {
            let lv = l.as_slice();
            let li = &lv[i * n..i * n + j];
            let lj = &lv[j * n..j * n + j];
            let mut sum = a.get(i, j);
            for (&x, &y) in li.iter().zip(lj) {
                sum -= x * y;
            }
            if i == j {
                if sum <= 0.0 || !sum.is_finite() {
                    return None;
                }
                l.as_mut_slice()[i * n + j] = sum.sqrt();
            } else {
                let pivot = lv[j * n + j];
                l.as_mut_slice()[i * n + j] = sum / pivot;
            }
        }
    }
    Some(l)
}

/// Solves `A·x = b` given the Cholesky factor `L` of `A` (forward then
/// backward substitution).
///
/// # Panics
///
/// Panics on shape mismatches.
pub fn cholesky_solve(l: &Matrix, b: &[f64]) -> Vec<f64> {
    let n = l.rows();
    assert_eq!(b.len(), n, "rhs length mismatch");
    let lv = l.as_slice();
    // Forward: L y = b. The reduction is a contiguous row-slice dot
    // (same subtraction order as the historical get() loop).
    let mut y = vec![0.0; n];
    for i in 0..n {
        let mut sum = b[i];
        let lrow = &lv[i * n..i * n + i];
        for (&lik, &yk) in lrow.iter().zip(&y) {
            sum -= lik * yk;
        }
        y[i] = sum / lv[i * n + i];
    }
    // Backward: Lᵀ x = y. Column access is inherently strided; direct
    // indexing still avoids the per-element bounds asserts of get().
    let mut x = vec![0.0; n];
    for i in (0..n).rev() {
        let mut sum = y[i];
        for (k, &xk) in x.iter().enumerate().take(n).skip(i + 1) {
            sum -= lv[k * n + i] * xk;
        }
        x[i] = sum / lv[i * n + i];
    }
    x
}

/// Solves the ridge-regularised normal equations
/// `(G + λI)·x = b` where `G` is symmetric positive semi-definite,
/// escalating `λ` by 10× (up to 6 times) if factorisation fails.
///
/// # Panics
///
/// Panics if factorisation keeps failing (pathological input) or on
/// shape mismatches.
pub fn ridge_solve(g: &Matrix, b: &[f64], lambda: f64) -> Vec<f64> {
    let n = g.rows();
    assert_eq!(g.cols(), n, "gram matrix must be square");
    assert_eq!(b.len(), n, "rhs length mismatch");
    let mut lam = lambda.max(1e-12);
    for _ in 0..7 {
        let mut a = g.clone();
        for i in 0..n {
            a.set(i, i, a.get(i, i) + lam);
        }
        if let Some(l) = cholesky(&a) {
            return cholesky_solve(&l, b);
        }
        lam *= 10.0;
    }
    panic!("ridge solve failed even with inflated regularisation");
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spd_example() -> Matrix {
        // A = Mᵀ M + I for a random-ish M is SPD.
        let m = Matrix::from_vec(3, 3, vec![1., 2., 0., -1., 1., 3., 0.5, 0., 1.]).unwrap();
        let mut a = m.t_matmul(&m);
        for i in 0..3 {
            a.set(i, i, a.get(i, i) + 1.0);
        }
        a
    }

    #[test]
    fn factor_reconstructs() {
        let a = spd_example();
        let l = cholesky(&a).unwrap();
        let recon = l.matmul_t(&l);
        for i in 0..3 {
            for j in 0..3 {
                assert!((recon.get(i, j) - a.get(i, j)).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn solve_matches_direct() {
        let a = spd_example();
        let l = cholesky(&a).unwrap();
        let b = [1.0, -2.0, 0.5];
        let x = cholesky_solve(&l, &b);
        // A x ≈ b
        for (i, &bi) in b.iter().enumerate() {
            let ax: f64 = (0..3).map(|j| a.get(i, j) * x[j]).sum();
            assert!((ax - bi).abs() < 1e-10, "row {i}: {ax} vs {bi}");
        }
    }

    #[test]
    fn non_spd_rejected() {
        let a = Matrix::from_vec(2, 2, vec![1.0, 2.0, 2.0, 1.0]).unwrap(); // indefinite
        assert!(cholesky(&a).is_none());
    }

    #[test]
    fn ridge_solve_handles_singular() {
        // Rank-deficient Gram matrix: ridge makes it solvable.
        let g = Matrix::from_vec(2, 2, vec![1.0, 1.0, 1.0, 1.0]).unwrap();
        let x = ridge_solve(&g, &[2.0, 2.0], 1e-6);
        // Minimum-norm-ish solution: x0 ≈ x1 ≈ 1.
        assert!((x[0] - 1.0).abs() < 1e-3, "{x:?}");
        assert!((x[1] - 1.0).abs() < 1e-3, "{x:?}");
    }

    #[test]
    fn identity_solve() {
        let g = Matrix::eye(3);
        let x = ridge_solve(&g, &[3.0, 6.0, 9.0], 0.0);
        for (xi, want) in x.iter().zip([3.0, 6.0, 9.0]) {
            assert!((xi - want).abs() < 1e-9);
        }
    }
}
