//! A tanh recurrent cell with backpropagation through time.

use crate::activation::tanh_grad_from_output;
use crate::adam::Adam;
use crate::init::xavier_uniform;
use crate::matrix::Matrix;
use rand::Rng;

/// An Elman-style recurrent cell `h_t = tanh(x_t·Wx + h_{t-1}·Wh + b)`.
///
/// `forward_step` pushes a cache frame per timestep; `backward_step` pops
/// them in reverse, so BPTT is a matter of calling `backward_step` once
/// per `forward_step` in opposite order. Call [`reset`](Self::reset)
/// before each new sequence.
#[derive(Debug, Clone)]
pub struct RnnCell {
    wx: Matrix,
    wh: Matrix,
    b: Vec<f64>,
    grad_wx: Matrix,
    grad_wh: Matrix,
    grad_b: Vec<f64>,
    stack: Vec<StepCache>,
}

#[derive(Debug, Clone)]
struct StepCache {
    x: Matrix,
    h_prev: Matrix,
    h: Matrix,
}

impl RnnCell {
    /// Creates a cell with `input_dim` inputs and `hidden_dim` hidden units.
    pub fn new<R: Rng + ?Sized>(input_dim: usize, hidden_dim: usize, rng: &mut R) -> Self {
        RnnCell {
            wx: xavier_uniform(input_dim, hidden_dim, rng),
            wh: xavier_uniform(hidden_dim, hidden_dim, rng),
            b: vec![0.0; hidden_dim],
            grad_wx: Matrix::zeros(input_dim, hidden_dim),
            grad_wh: Matrix::zeros(hidden_dim, hidden_dim),
            grad_b: vec![0.0; hidden_dim],
            stack: Vec::new(),
        }
    }

    /// Hidden dimension.
    pub fn hidden_dim(&self) -> usize {
        self.wh.rows()
    }

    /// Number of trainable parameters.
    pub fn parameter_count(&self) -> usize {
        self.wx.rows() * self.wx.cols() + self.wh.rows() * self.wh.cols() + self.b.len()
    }

    /// A zero initial hidden state for `rows` parallel sequences.
    pub fn zero_state(&self, rows: usize) -> Matrix {
        Matrix::zeros(rows, self.hidden_dim())
    }

    /// Clears the BPTT cache (start of a new sequence).
    pub fn reset(&mut self) {
        self.stack.clear();
    }

    /// One timestep forward; caches for BPTT and returns `h_t`.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatches.
    pub fn forward_step(&mut self, x: &Matrix, h_prev: &Matrix) -> Matrix {
        let pre = x
            .matmul(&self.wx)
            .add(&h_prev.matmul(&self.wh))
            .add_row_broadcast(&self.b);
        let h = pre.map(f64::tanh);
        self.stack.push(StepCache {
            x: x.clone(),
            h_prev: h_prev.clone(),
            h: h.clone(),
        });
        h
    }

    /// One timestep forward without caching.
    pub fn forward_step_inference(&self, x: &Matrix, h_prev: &Matrix) -> Matrix {
        x.matmul(&self.wx)
            .add(&h_prev.matmul(&self.wh))
            .add_row_broadcast(&self.b)
            .map(f64::tanh)
    }

    /// One timestep backward (pops the most recent cache frame).
    ///
    /// `grad_h` is `∂L/∂h_t` *including* any gradient flowing back from
    /// the next timestep. Returns `(∂L/∂x_t, ∂L/∂h_{t-1})`.
    ///
    /// # Panics
    ///
    /// Panics if the cache stack is empty.
    pub fn backward_step(&mut self, grad_h: &Matrix) -> (Matrix, Matrix) {
        let frame = self
            .stack
            .pop()
            .expect("backward_step called without matching forward_step");
        let grad_pre = grad_h.hadamard(&tanh_grad_from_output(&frame.h));
        self.grad_wx.add_assign(&frame.x.t_matmul(&grad_pre));
        self.grad_wh.add_assign(&frame.h_prev.t_matmul(&grad_pre));
        for (gb, s) in self.grad_b.iter_mut().zip(grad_pre.col_sums()) {
            *gb += s;
        }
        let grad_x = grad_pre.matmul_t(&self.wx);
        let grad_h_prev = grad_pre.matmul_t(&self.wh);
        (grad_x, grad_h_prev)
    }

    /// Clears accumulated gradients and the cache stack.
    pub fn zero_grad(&mut self) {
        self.grad_wx = Matrix::zeros(self.wx.rows(), self.wx.cols());
        self.grad_wh = Matrix::zeros(self.wh.rows(), self.wh.cols());
        self.grad_b.iter_mut().for_each(|g| *g = 0.0);
        self.stack.clear();
    }

    /// Applies gradients (slots `base_slot..base_slot+3`).
    pub fn apply_gradients(&mut self, opt: &mut Adam, base_slot: usize) {
        opt.update(base_slot, self.wx.as_mut_slice(), self.grad_wx.as_slice());
        opt.update(base_slot + 1, self.wh.as_mut_slice(), self.grad_wh.as_slice());
        opt.update(base_slot + 2, &mut self.b, &self.grad_b);
        self.zero_grad();
    }

    /// FLOPs of one timestep over `batch` rows.
    pub fn flops(&self, batch: usize) -> u64 {
        crate::flops::matmul(batch, self.wx.rows(), self.wx.cols())
            + crate::flops::matmul(batch, self.wh.rows(), self.wh.cols())
            + crate::flops::elementwise(batch, self.hidden_dim(), 3)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Full-sequence loss for finite differencing: run T steps, loss is
    /// sum of squared final hidden values.
    fn seq_loss(cell: &RnnCell, xs: &[Matrix]) -> f64 {
        let mut h = cell.zero_state(xs[0].rows());
        for x in xs {
            h = cell.forward_step_inference(x, &h);
        }
        h.as_slice().iter().map(|v| v * v).sum()
    }

    #[test]
    fn bptt_gradient_matches_finite_difference() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut cell = RnnCell::new(2, 3, &mut rng);
        let xs: Vec<Matrix> = (0..3)
            .map(|t| {
                Matrix::from_vec(1, 2, vec![0.3 * (t as f64 + 1.0), -0.2 * (t as f64)]).unwrap()
            })
            .collect();

        // Forward with caching.
        let mut h = cell.zero_state(1);
        for x in &xs {
            h = cell.forward_step(x, &h);
        }
        // dL/dh_T for L = Σ h².
        let mut gh = h.scale(2.0);
        for _ in (0..xs.len()).rev() {
            let (_, gh_prev) = cell.backward_step(&gh);
            gh = gh_prev;
        }

        // Finite-difference a few weights.
        let eps = 1e-6;
        for &(r, c) in &[(0, 0), (1, 2)] {
            let orig = cell.wx.get(r, c);
            cell.wx.set(r, c, orig + eps);
            let lp = seq_loss(&cell, &xs);
            cell.wx.set(r, c, orig - eps);
            let lm = seq_loss(&cell, &xs);
            cell.wx.set(r, c, orig);
            let fd = (lp - lm) / (2.0 * eps);
            assert!(
                (cell.grad_wx.get(r, c) - fd).abs() < 1e-5,
                "dWx[{r}][{c}] {} vs fd {fd}",
                cell.grad_wx.get(r, c)
            );
        }
        for &(r, c) in &[(0, 1), (2, 2)] {
            let orig = cell.wh.get(r, c);
            cell.wh.set(r, c, orig + eps);
            let lp = seq_loss(&cell, &xs);
            cell.wh.set(r, c, orig - eps);
            let lm = seq_loss(&cell, &xs);
            cell.wh.set(r, c, orig);
            let fd = (lp - lm) / (2.0 * eps);
            assert!(
                (cell.grad_wh.get(r, c) - fd).abs() < 1e-5,
                "dWh[{r}][{c}] {} vs fd {fd}",
                cell.grad_wh.get(r, c)
            );
        }
    }

    #[test]
    fn learns_to_remember() {
        // Task: output ≈ first input after 2 steps (needs memory).
        let mut rng = StdRng::seed_from_u64(1);
        let mut cell = RnnCell::new(1, 4, &mut rng);
        let mut head = crate::linear::Linear::new(4, 1, &mut rng);
        let mut opt = Adam::new(0.02);
        let samples: Vec<f64> = vec![0.8, -0.5, 0.3, -0.9, 0.1, 0.6];
        let mut first_loss = 0.0;
        let mut last_loss = 0.0;
        for epoch in 0..300 {
            let mut total = 0.0;
            for &v in &samples {
                cell.reset();
                let x0 = Matrix::from_vec(1, 1, vec![v]).unwrap();
                let zero = Matrix::zeros(1, 1);
                let mut h = cell.zero_state(1);
                h = cell.forward_step(&x0, &h);
                h = cell.forward_step(&zero, &h);
                let y = head.forward(&h);
                let err = y.get(0, 0) - v;
                total += err * err;
                let gy = Matrix::from_vec(1, 1, vec![2.0 * err]).unwrap();
                let gh = head.backward(&gy);
                let (_, gh1) = cell.backward_step(&gh);
                cell.backward_step(&gh1);
            }
            cell.apply_gradients(&mut opt, 0);
            head.apply_gradients(&mut opt, 10);
            if epoch == 0 {
                first_loss = total;
            }
            last_loss = total;
        }
        assert!(
            last_loss < first_loss / 10.0,
            "loss {first_loss} -> {last_loss}"
        );
    }

    #[test]
    #[should_panic(expected = "without matching forward_step")]
    fn backward_without_forward_panics() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut cell = RnnCell::new(1, 1, &mut rng);
        cell.backward_step(&Matrix::zeros(1, 1));
    }

    #[test]
    fn reset_clears_stack() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut cell = RnnCell::new(1, 2, &mut rng);
        let h0 = cell.zero_state(1);
        cell.forward_step(&Matrix::ones(1, 1), &h0);
        cell.reset();
        assert!(cell.stack.is_empty());
    }
}
