//! Loss functions.

use crate::matrix::Matrix;

/// Mean squared error over all elements.
///
/// # Panics
///
/// Panics on shape mismatch or empty matrices.
pub fn mse(pred: &Matrix, target: &Matrix) -> f64 {
    assert_eq!(pred.shape(), target.shape(), "loss shape mismatch");
    let n = pred.as_slice().len();
    assert!(n > 0, "loss of empty matrices");
    pred.as_slice()
        .iter()
        .zip(target.as_slice())
        .map(|(&p, &t)| (p - t) * (p - t))
        .sum::<f64>()
        / n as f64
}

/// Gradient of [`mse`] with respect to `pred`: `2 (pred - target) / n`.
///
/// # Panics
///
/// Panics on shape mismatch.
pub fn mse_grad(pred: &Matrix, target: &Matrix) -> Matrix {
    assert_eq!(pred.shape(), target.shape(), "loss shape mismatch");
    let n = pred.as_slice().len() as f64;
    pred.sub(target).scale(2.0 / n)
}

/// Root mean squared error — the paper's accuracy metric.
///
/// # Panics
///
/// Panics on shape mismatch or empty matrices.
pub fn rmse(pred: &Matrix, target: &Matrix) -> f64 {
    mse(pred, target).sqrt()
}

/// RMSE over plain slices.
///
/// # Panics
///
/// Panics on length mismatch or empty slices.
pub fn rmse_slice(pred: &[f64], target: &[f64]) -> f64 {
    assert_eq!(pred.len(), target.len(), "loss length mismatch");
    assert!(!pred.is_empty(), "loss of empty slices");
    let ss: f64 = pred
        .iter()
        .zip(target)
        .map(|(&p, &t)| (p - t) * (p - t))
        .sum();
    (ss / pred.len() as f64).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mse_known() {
        let p = Matrix::from_vec(1, 2, vec![1.0, 3.0]).unwrap();
        let t = Matrix::from_vec(1, 2, vec![0.0, 1.0]).unwrap();
        assert!((mse(&p, &t) - 2.5).abs() < 1e-12);
        assert!((rmse(&p, &t) - 2.5f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn grad_matches_fd() {
        let p = Matrix::from_vec(1, 3, vec![0.5, -0.2, 1.0]).unwrap();
        let t = Matrix::from_vec(1, 3, vec![0.0, 0.3, 0.9]).unwrap();
        let g = mse_grad(&p, &t);
        let eps = 1e-6;
        for i in 0..3 {
            let mut pp = p.clone();
            pp.set(0, i, p.get(0, i) + eps);
            let lp = mse(&pp, &t);
            pp.set(0, i, p.get(0, i) - eps);
            let lm = mse(&pp, &t);
            assert!((g.get(0, i) - (lp - lm) / (2.0 * eps)).abs() < 1e-6);
        }
    }

    #[test]
    fn slice_rmse() {
        assert!((rmse_slice(&[3.0, 0.0], &[0.0, 4.0]) - (12.5f64).sqrt()).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn mismatch_panics() {
        mse(&Matrix::zeros(1, 2), &Matrix::zeros(2, 1));
    }
}
