//! Graph convolution over a fixed or learned adjacency.

use crate::adam::Adam;
use crate::init::xavier_uniform;
use crate::matrix::Matrix;
use rand::Rng;

/// A graph-convolution layer `y = Â · x · W + b`.
///
/// The (normalised) adjacency `Â` is supplied per call rather than
/// stored, because models like MTGNN learn their adjacency and GWN mixes
/// a fixed diffusion matrix with an adaptive one. `backward` returns both
/// the input gradient and the adjacency gradient so learned adjacencies
/// can be trained.
///
/// Forward passes push cache frames onto a stack and backward passes pop
/// them, so the layer can be applied repeatedly inside a recurrent model
/// (one `backward` per `forward`, in reverse order — the same BPTT
/// contract as [`crate::RnnCell`]).
#[derive(Debug, Clone)]
pub struct GraphConv {
    w: Matrix,
    b: Vec<f64>,
    grad_w: Matrix,
    grad_b: Vec<f64>,
    cache: Vec<GcnCache>,
}

#[derive(Debug, Clone)]
struct GcnCache {
    x: Matrix,
    ax: Matrix,
    a_hat: Matrix,
}

impl GraphConv {
    /// Creates a layer mapping `input_dim` to `output_dim` node features.
    pub fn new<R: Rng + ?Sized>(input_dim: usize, output_dim: usize, rng: &mut R) -> Self {
        GraphConv {
            w: xavier_uniform(input_dim, output_dim, rng),
            b: vec![0.0; output_dim],
            grad_w: Matrix::zeros(input_dim, output_dim),
            grad_b: vec![0.0; output_dim],
            cache: Vec::new(),
        }
    }

    /// Input feature dimension.
    pub fn input_dim(&self) -> usize {
        self.w.rows()
    }

    /// Output feature dimension.
    pub fn output_dim(&self) -> usize {
        self.w.cols()
    }

    /// Number of trainable parameters.
    pub fn parameter_count(&self) -> usize {
        self.w.rows() * self.w.cols() + self.b.len()
    }

    /// Forward pass `y = Â·x·W + b` with `x` of shape `nodes x features`.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatches.
    pub fn forward(&mut self, a_hat: &Matrix, x: &Matrix) -> Matrix {
        let ax = a_hat.matmul(x);
        let y = ax.matmul(&self.w).add_row_broadcast(&self.b);
        self.cache.push(GcnCache {
            x: x.clone(),
            ax,
            a_hat: a_hat.clone(),
        });
        y
    }

    /// Forward pass without caching (inference only).
    pub fn forward_inference(&self, a_hat: &Matrix, x: &Matrix) -> Matrix {
        a_hat.matmul(x).matmul(&self.w).add_row_broadcast(&self.b)
    }

    /// Backward pass (pops the most recent cache frame). Accumulates
    /// `∂L/∂W`, `∂L/∂b`; returns `(∂L/∂x, ∂L/∂Â)`.
    ///
    /// `∂L/∂x = Âᵀ·(g·Wᵀ)` and `∂L/∂Â = (g·Wᵀ)·xᵀ`.
    ///
    /// # Panics
    ///
    /// Panics if no forward pass is cached.
    pub fn backward(&mut self, grad_out: &Matrix) -> (Matrix, Matrix) {
        let cache = self
            .cache
            .pop()
            .expect("backward called before forward");
        self.grad_w.add_assign(&cache.ax.t_matmul(grad_out));
        for (gb, s) in self.grad_b.iter_mut().zip(grad_out.col_sums()) {
            *gb += s;
        }
        let gw = grad_out.matmul_t(&self.w); // ∂L/∂(Âx)
        let grad_x = cache.a_hat.t_matmul(&gw);
        let grad_a = gw.matmul_t(&cache.x);
        (grad_x, grad_a)
    }

    /// Clears accumulated gradients and any pending cache frames.
    pub fn zero_grad(&mut self) {
        self.grad_w = Matrix::zeros(self.w.rows(), self.w.cols());
        self.grad_b.iter_mut().for_each(|g| *g = 0.0);
        self.cache.clear();
    }

    /// Applies accumulated gradients (slots `base_slot`, `base_slot+1`).
    pub fn apply_gradients(&mut self, opt: &mut Adam, base_slot: usize) {
        opt.update(base_slot, self.w.as_mut_slice(), self.grad_w.as_slice());
        opt.update(base_slot + 1, &mut self.b, &self.grad_b);
        self.zero_grad();
    }

    /// FLOPs of one forward pass for `nodes` nodes and a dense adjacency.
    pub fn flops(&self, nodes: usize) -> u64 {
        crate::flops::matmul(nodes, nodes, self.w.rows())
            + crate::flops::matmul(nodes, self.w.rows(), self.w.cols())
            + crate::flops::elementwise(nodes, self.w.cols(), 1)
    }
}

/// Symmetric degree-normalised adjacency with self-loops:
/// `Â = D^{-1/2} (A + I) D^{-1/2}` — the standard GCN propagation matrix.
///
/// # Panics
///
/// Panics if `adjacency` is not square.
pub fn normalize_adjacency(adjacency: &Matrix) -> Matrix {
    let (n, m) = adjacency.shape();
    assert_eq!(n, m, "adjacency must be square");
    let mut a = adjacency.clone();
    for i in 0..n {
        a.set(i, i, a.get(i, i) + 1.0);
    }
    let mut deg = vec![0.0; n];
    for (i, d) in deg.iter_mut().enumerate() {
        *d = a.row(i).iter().sum::<f64>().max(1e-12);
    }
    let mut out = Matrix::zeros(n, n);
    for i in 0..n {
        for j in 0..n {
            out.set(i, j, a.get(i, j) / (deg[i].sqrt() * deg[j].sqrt()));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loss::{mse, mse_grad};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn path_adjacency() -> Matrix {
        // 3-node path 0-1-2.
        Matrix::from_vec(3, 3, vec![0., 1., 0., 1., 0., 1., 0., 1., 0.]).unwrap()
    }

    #[test]
    fn normalized_adjacency_rows() {
        let a_hat = normalize_adjacency(&path_adjacency());
        // Symmetric and nonzero only on the path + self-loops.
        for i in 0..3 {
            for j in 0..3 {
                assert!((a_hat.get(i, j) - a_hat.get(j, i)).abs() < 1e-12);
            }
        }
        assert_eq!(a_hat.get(0, 2), 0.0);
        assert!(a_hat.get(0, 0) > 0.0);
    }

    #[test]
    fn forward_mixes_neighbours() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut gcn = GraphConv::new(1, 1, &mut rng);
        let a_hat = normalize_adjacency(&path_adjacency());
        // Node 0 has signal; after one conv, node 1 sees it but node 2 not.
        let x = Matrix::from_vec(3, 1, vec![1.0, 0.0, 0.0]).unwrap();
        let y = gcn.forward(&a_hat, &x);
        let w = gcn.w.get(0, 0);
        if w.abs() > 1e-9 {
            assert!(y.get(1, 0).abs() > 1e-9, "neighbour saw nothing");
            assert!(y.get(2, 0).abs() < 1e-12, "two hops leaked in one conv");
        }
    }

    #[test]
    fn gradients_match_finite_difference() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut gcn = GraphConv::new(2, 2, &mut rng);
        let a_hat = normalize_adjacency(&path_adjacency());
        let x = Matrix::from_vec(3, 2, vec![0.2, -0.1, 0.4, 0.3, -0.5, 0.6]).unwrap();
        let t = Matrix::from_vec(3, 2, vec![0.0, 0.1, -0.2, 0.3, 0.4, -0.5]).unwrap();

        let y = gcn.forward(&a_hat, &x);
        let gy = mse_grad(&y, &t);
        let (gx, ga) = gcn.backward(&gy);

        let eps = 1e-6;
        // dL/dW
        let orig = gcn.w.get(1, 0);
        gcn.w.set(1, 0, orig + eps);
        let lp = mse(&gcn.forward_inference(&a_hat, &x), &t);
        gcn.w.set(1, 0, orig - eps);
        let lm = mse(&gcn.forward_inference(&a_hat, &x), &t);
        gcn.w.set(1, 0, orig);
        assert!((gcn.grad_w.get(1, 0) - (lp - lm) / (2.0 * eps)).abs() < 1e-6);

        // dL/dx
        let mut xp = x.clone();
        xp.set(2, 1, x.get(2, 1) + eps);
        let lp = mse(&gcn.forward_inference(&a_hat, &xp), &t);
        xp.set(2, 1, x.get(2, 1) - eps);
        let lm = mse(&gcn.forward_inference(&a_hat, &xp), &t);
        assert!((gx.get(2, 1) - (lp - lm) / (2.0 * eps)).abs() < 1e-6);

        // dL/dÂ
        let mut ap = a_hat.clone();
        ap.set(0, 1, a_hat.get(0, 1) + eps);
        let lp = mse(&gcn.forward_inference(&ap, &x), &t);
        ap.set(0, 1, a_hat.get(0, 1) - eps);
        let lm = mse(&gcn.forward_inference(&ap, &x), &t);
        assert!((ga.get(0, 1) - (lp - lm) / (2.0 * eps)).abs() < 1e-6);
    }

    #[test]
    fn flops_positive() {
        let mut rng = StdRng::seed_from_u64(2);
        let gcn = GraphConv::new(4, 8, &mut rng);
        assert!(gcn.flops(10) > 0);
    }
}
