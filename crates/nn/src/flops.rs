//! Floating-point-operation accounting.
//!
//! Paper Table III derives accelerator latency from model FLOPs at the
//! platform's peak TFLOPS with full utilisation; these helpers give the
//! exact counts for the layers in this crate.

/// FLOPs of a dense `m×k · k×n` matrix product (multiply + add).
pub fn matmul(m: usize, k: usize, n: usize) -> u64 {
    2 * (m as u64) * (k as u64) * (n as u64)
}

/// FLOPs of `ops_per_element` element-wise operations over an `m×n`
/// matrix.
pub fn elementwise(m: usize, n: usize, ops_per_element: usize) -> u64 {
    (m as u64) * (n as u64) * (ops_per_element as u64)
}

/// FLOPs of a sparse mat-vec with `nnz` stored nonzeros.
pub fn spmv(nnz: usize) -> u64 {
    2 * nnz as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts() {
        assert_eq!(matmul(2, 3, 4), 48);
        assert_eq!(elementwise(5, 5, 2), 50);
        assert_eq!(spmv(10), 20);
        assert_eq!(matmul(0, 3, 4), 0);
    }
}
