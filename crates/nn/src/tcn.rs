//! Gated temporal unit (WaveNet-style `tanh ⊙ sigmoid` gate).

use crate::activation::{sigmoid, sigmoid_grad_from_output, tanh, tanh_grad_from_output};
use crate::adam::Adam;
use crate::linear::Linear;
use crate::matrix::Matrix;
use rand::Rng;

/// The gated temporal block used by Graph WaveNet:
/// `y = tanh(x·Wa + ba) ⊙ σ(x·Wb + bb)`.
///
/// Operating on a window of history stacked into the feature dimension,
/// this is the dilated-causal-convolution stand-in for fixed-length
/// windows (a causal conv over a full window *is* a dense map of the
/// stacked window).
#[derive(Debug, Clone)]
pub struct GatedTemporal {
    filter: Linear,
    gate: Linear,
    cache: Option<(Matrix, Matrix)>,
}

impl GatedTemporal {
    /// Creates a gated block mapping `input_dim` to `output_dim`.
    pub fn new<R: Rng + ?Sized>(input_dim: usize, output_dim: usize, rng: &mut R) -> Self {
        GatedTemporal {
            filter: Linear::new(input_dim, output_dim, rng),
            gate: Linear::new(input_dim, output_dim, rng),
            cache: None,
        }
    }

    /// Number of trainable parameters.
    pub fn parameter_count(&self) -> usize {
        self.filter.parameter_count() + self.gate.parameter_count()
    }

    /// Forward pass, caching gate activations.
    pub fn forward(&mut self, x: &Matrix) -> Matrix {
        let f = tanh(&self.filter.forward(x));
        let g = sigmoid(&self.gate.forward(x));
        let y = f.hadamard(&g);
        self.cache = Some((f, g));
        y
    }

    /// Forward pass without caching.
    pub fn forward_inference(&self, x: &Matrix) -> Matrix {
        let f = tanh(&self.filter.forward_inference(x));
        let g = sigmoid(&self.gate.forward_inference(x));
        f.hadamard(&g)
    }

    /// Backward pass; returns `∂L/∂x`.
    ///
    /// # Panics
    ///
    /// Panics if no forward pass is cached.
    pub fn backward(&mut self, grad_out: &Matrix) -> Matrix {
        let (f, g) = self
            .cache
            .as_ref()
            .expect("backward called before forward");
        let grad_f = grad_out.hadamard(g).hadamard(&tanh_grad_from_output(f));
        let grad_g = grad_out.hadamard(f).hadamard(&sigmoid_grad_from_output(g));
        let gx_f = self.filter.backward(&grad_f);
        let gx_g = self.gate.backward(&grad_g);
        gx_f.add(&gx_g)
    }

    /// Clears accumulated gradients.
    pub fn zero_grad(&mut self) {
        self.filter.zero_grad();
        self.gate.zero_grad();
    }

    /// Applies gradients (consumes slots `base_slot..base_slot+4`).
    pub fn apply_gradients(&mut self, opt: &mut Adam, base_slot: usize) {
        self.filter.apply_gradients(opt, base_slot);
        self.gate.apply_gradients(opt, base_slot + 2);
    }

    /// FLOPs of one forward pass over `batch` rows.
    pub fn flops(&self, batch: usize) -> u64 {
        self.filter.flops(batch)
            + self.gate.flops(batch)
            + crate::flops::elementwise(batch, self.filter.output_dim(), 3)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loss::{mse, mse_grad};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn output_bounded_by_gate() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut b = GatedTemporal::new(3, 2, &mut rng);
        let x = Matrix::from_vec(2, 3, vec![10.0, -5.0, 3.0, 0.1, 0.2, -0.3]).unwrap();
        let y = b.forward(&x);
        // tanh ∈ (-1,1) and sigmoid ∈ (0,1) so |y| < 1.
        assert!(y.as_slice().iter().all(|v| v.abs() < 1.0));
    }

    #[test]
    fn gradient_matches_finite_difference() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut blk = GatedTemporal::new(2, 2, &mut rng);
        let x = Matrix::from_vec(2, 2, vec![0.3, -0.7, 0.5, 0.2]).unwrap();
        let t = Matrix::from_vec(2, 2, vec![0.1, 0.1, -0.1, 0.4]).unwrap();
        let y = blk.forward(&x);
        let gy = mse_grad(&y, &t);
        let gx = blk.backward(&gy);

        let eps = 1e-6;
        let mut xp = x.clone();
        xp.set(1, 0, x.get(1, 0) + eps);
        let lp = mse(&blk.forward_inference(&xp), &t);
        xp.set(1, 0, x.get(1, 0) - eps);
        let lm = mse(&blk.forward_inference(&xp), &t);
        let fd = (lp - lm) / (2.0 * eps);
        assert!((gx.get(1, 0) - fd).abs() < 1e-6, "{} vs {fd}", gx.get(1, 0));
    }

    #[test]
    fn trains() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut blk = GatedTemporal::new(2, 1, &mut rng);
        let mut opt = Adam::new(0.05);
        let x = Matrix::from_vec(4, 2, vec![0., 0., 1., 0., 0., 1., 1., 1.]).unwrap();
        let t = Matrix::from_vec(4, 1, vec![0.0, 0.3, 0.5, 0.6]).unwrap();
        let first = mse(&blk.forward_inference(&x), &t);
        for _ in 0..800 {
            let y = blk.forward(&x);
            blk.backward(&mse_grad(&y, &t));
            blk.apply_gradients(&mut opt, 0);
        }
        let last = mse(&blk.forward_inference(&x), &t);
        assert!(last < first / 5.0, "loss {first} -> {last}");
    }
}
