//! Minimal neural-network substrate with manual backpropagation.
//!
//! The DS-GL evaluation compares against three spatio-temporal GNN
//! baselines (GWN, MTGNN, DDGCRN). Rather than bind to an external ML
//! framework, this crate provides exactly the pieces those baselines
//! need, built from scratch:
//!
//! - [`Matrix`]: a dense row-major `f64` matrix with the usual algebra;
//! - [`Linear`]: a fully-connected layer with cached activations;
//! - [`GraphConv`]: a graph convolution `Â · X · W` over a normalised
//!   adjacency;
//! - [`GatedTemporal`]: the `tanh ⊙ sigmoid` gated temporal unit used by
//!   WaveNet-style forecasters;
//! - [`RnnCell`]: a tanh recurrent cell with backpropagation through time;
//! - [`Adam`]: the Adam optimiser;
//! - [`flops`]: exact floating-point-operation accounting, which feeds
//!   the platform latency model of paper Table III.
//!
//! Every layer follows the same contract: `forward` caches whatever the
//! backward pass needs; `backward` consumes the output gradient, accumulates
//! parameter gradients, and returns the input gradient.
//!
//! # Example
//!
//! ```
//! use dsgl_nn::{Linear, Matrix, Adam};
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(0);
//! let mut layer = Linear::new(3, 2, &mut rng);
//! let x = Matrix::from_vec(1, 3, vec![0.5, -1.0, 2.0]).unwrap();
//! let y = layer.forward(&x);
//! assert_eq!(y.shape(), (1, 2));
//! let grad_in = layer.backward(&Matrix::ones(1, 2));
//! assert_eq!(grad_in.shape(), (1, 3));
//! let mut opt = Adam::new(1e-2);
//! layer.apply_gradients(&mut opt, 0);
//! ```

// `deny` rather than `forbid`: the one sanctioned exception is the
// explicit-AVX micro-kernel module in `kernels`, which scopes its own
// `#[allow(unsafe_code)]` around the intrinsic calls.
#![deny(unsafe_code)]
#![deny(clippy::print_stdout, clippy::print_stderr)]
#![warn(missing_docs)]

pub mod activation;
pub mod adam;
pub mod flops;
pub mod gcn;
pub mod gru;
pub mod init;
pub mod kernels;
pub mod linalg;
pub mod linear;
pub mod loss;
pub mod matrix;
pub mod rnn;
pub mod tcn;

pub use adam::Adam;
pub use gcn::GraphConv;
pub use gru::GruCell;
pub use linear::Linear;
pub use matrix::{Matrix, ShapeError};
pub use rnn::RnnCell;
pub use tcn::GatedTemporal;
