//! Element-wise activations and their derivatives.

use crate::matrix::Matrix;

/// ReLU applied element-wise.
pub fn relu(x: &Matrix) -> Matrix {
    x.map(|v| v.max(0.0))
}

/// Derivative of ReLU with respect to its input, evaluated at `x`.
pub fn relu_grad(x: &Matrix) -> Matrix {
    x.map(|v| if v > 0.0 { 1.0 } else { 0.0 })
}

/// tanh applied element-wise.
pub fn tanh(x: &Matrix) -> Matrix {
    x.map(f64::tanh)
}

/// Derivative of tanh given its *output* `y = tanh(x)`: `1 - y²`.
pub fn tanh_grad_from_output(y: &Matrix) -> Matrix {
    y.map(|v| 1.0 - v * v)
}

/// Logistic sigmoid applied element-wise.
pub fn sigmoid(x: &Matrix) -> Matrix {
    x.map(|v| 1.0 / (1.0 + (-v).exp()))
}

/// Derivative of sigmoid given its *output* `y = σ(x)`: `y (1 - y)`.
pub fn sigmoid_grad_from_output(y: &Matrix) -> Matrix {
    y.map(|v| v * (1.0 - v))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fd_check(f: impl Fn(f64) -> f64, g: impl Fn(f64) -> f64, x: f64) {
        let eps = 1e-6;
        let fd = (f(x + eps) - f(x - eps)) / (2.0 * eps);
        assert!((fd - g(x)).abs() < 1e-6, "fd {fd} vs analytic {}", g(x));
    }

    #[test]
    fn relu_values() {
        let x = Matrix::from_vec(1, 3, vec![-1.0, 0.0, 2.0]).unwrap();
        assert_eq!(relu(&x).as_slice(), &[0.0, 0.0, 2.0]);
        assert_eq!(relu_grad(&x).as_slice(), &[0.0, 0.0, 1.0]);
    }

    #[test]
    fn tanh_derivative_matches_fd() {
        for &x in &[-1.5, 0.0, 0.7] {
            fd_check(f64::tanh, |v| 1.0 - v.tanh() * v.tanh(), x);
        }
        let x = Matrix::from_vec(1, 1, vec![0.7]).unwrap();
        let y = tanh(&x);
        let g = tanh_grad_from_output(&y);
        assert!((g.get(0, 0) - (1.0 - 0.7f64.tanh().powi(2))).abs() < 1e-12);
    }

    #[test]
    fn sigmoid_derivative_matches_fd() {
        let s = |v: f64| 1.0 / (1.0 + (-v).exp());
        for &x in &[-2.0, 0.0, 1.3] {
            fd_check(s, |v| s(v) * (1.0 - s(v)), x);
        }
        let x = Matrix::from_vec(1, 1, vec![1.3]).unwrap();
        let y = sigmoid(&x);
        let g = sigmoid_grad_from_output(&y);
        assert!((g.get(0, 0) - s(1.3) * (1.0 - s(1.3))).abs() < 1e-12);
    }
}
