//! A gated recurrent unit (GRU) cell with backpropagation through time.

use crate::activation::{sigmoid_grad_from_output, tanh_grad_from_output};
use crate::adam::Adam;
use crate::init::xavier_uniform;
use crate::matrix::Matrix;
use rand::Rng;

/// A GRU cell (Cho et al., 2014):
///
/// ```text
/// z = σ(x·Wxz + h·Whz + bz)        update gate
/// r = σ(x·Wxr + h·Whr + br)        reset gate
/// n = tanh(x·Wxn + (r ⊙ h)·Whn + bn)
/// h' = (1 - z) ⊙ n + z ⊙ h
/// ```
///
/// Same BPTT contract as [`crate::RnnCell`]: `forward_step` pushes a
/// cache frame, `backward_step` pops them in reverse order.
#[derive(Debug, Clone)]
pub struct GruCell {
    wx: [Matrix; 3], // z, r, n
    wh: [Matrix; 3],
    b: [Vec<f64>; 3],
    grad_wx: [Matrix; 3],
    grad_wh: [Matrix; 3],
    grad_b: [Vec<f64>; 3],
    stack: Vec<GruCache>,
}

#[derive(Debug, Clone)]
struct GruCache {
    x: Matrix,
    h_prev: Matrix,
    z: Matrix,
    r: Matrix,
    n: Matrix,
    rh: Matrix, // r ⊙ h_prev
}

impl GruCell {
    /// Creates a cell with `input_dim` inputs and `hidden_dim` units.
    pub fn new<R: Rng + ?Sized>(input_dim: usize, hidden_dim: usize, rng: &mut R) -> Self {
        let wx = [
            xavier_uniform(input_dim, hidden_dim, rng),
            xavier_uniform(input_dim, hidden_dim, rng),
            xavier_uniform(input_dim, hidden_dim, rng),
        ];
        let wh = [
            xavier_uniform(hidden_dim, hidden_dim, rng),
            xavier_uniform(hidden_dim, hidden_dim, rng),
            xavier_uniform(hidden_dim, hidden_dim, rng),
        ];
        let b = [
            vec![0.0; hidden_dim],
            vec![0.0; hidden_dim],
            vec![0.0; hidden_dim],
        ];
        GruCell {
            grad_wx: wx.clone().map(|m| Matrix::zeros(m.rows(), m.cols())),
            grad_wh: wh.clone().map(|m| Matrix::zeros(m.rows(), m.cols())),
            grad_b: [b[0].clone(), b[1].clone(), b[2].clone()],
            wx,
            wh,
            b,
            stack: Vec::new(),
        }
    }

    /// Hidden dimension.
    pub fn hidden_dim(&self) -> usize {
        self.wh[0].rows()
    }

    /// Number of trainable parameters.
    pub fn parameter_count(&self) -> usize {
        3 * (self.wx[0].rows() * self.wx[0].cols()
            + self.wh[0].rows() * self.wh[0].cols()
            + self.b[0].len())
    }

    /// A zero initial hidden state for `rows` parallel sequences.
    pub fn zero_state(&self, rows: usize) -> Matrix {
        Matrix::zeros(rows, self.hidden_dim())
    }

    /// Clears the BPTT cache (start of a new sequence).
    pub fn reset(&mut self) {
        self.stack.clear();
    }

    fn gates(&self, x: &Matrix, h_prev: &Matrix) -> (Matrix, Matrix, Matrix, Matrix) {
        let pre_z = x
            .matmul(&self.wx[0])
            .add(&h_prev.matmul(&self.wh[0]))
            .add_row_broadcast(&self.b[0]);
        let z = pre_z.map(|v| 1.0 / (1.0 + (-v).exp()));
        let pre_r = x
            .matmul(&self.wx[1])
            .add(&h_prev.matmul(&self.wh[1]))
            .add_row_broadcast(&self.b[1]);
        let r = pre_r.map(|v| 1.0 / (1.0 + (-v).exp()));
        let rh = r.hadamard(h_prev);
        let pre_n = x
            .matmul(&self.wx[2])
            .add(&rh.matmul(&self.wh[2]))
            .add_row_broadcast(&self.b[2]);
        let n = pre_n.map(f64::tanh);
        (z, r, n, rh)
    }

    /// One timestep forward; caches for BPTT and returns `h_t`.
    pub fn forward_step(&mut self, x: &Matrix, h_prev: &Matrix) -> Matrix {
        let (z, r, n, rh) = self.gates(x, h_prev);
        let h = z
            .hadamard(h_prev)
            .add(&z.map(|v| 1.0 - v).hadamard(&n));
        self.stack.push(GruCache {
            x: x.clone(),
            h_prev: h_prev.clone(),
            z,
            r,
            n,
            rh,
        });
        h
    }

    /// One timestep forward without caching.
    pub fn forward_step_inference(&self, x: &Matrix, h_prev: &Matrix) -> Matrix {
        let (z, _, n, _) = self.gates(x, h_prev);
        z.hadamard(h_prev).add(&z.map(|v| 1.0 - v).hadamard(&n))
    }

    /// One timestep backward (pops the most recent cache frame).
    ///
    /// Returns `(∂L/∂x_t, ∂L/∂h_{t-1})`.
    ///
    /// # Panics
    ///
    /// Panics if the cache stack is empty.
    pub fn backward_step(&mut self, grad_h: &Matrix) -> (Matrix, Matrix) {
        let GruCache {
            x,
            h_prev,
            z,
            r,
            n,
            rh,
        } = self
            .stack
            .pop()
            .expect("backward_step called without matching forward_step");

        // h = z⊙h_prev + (1-z)⊙n
        let d_n = grad_h.hadamard(&z.map(|v| 1.0 - v));
        let d_z = grad_h.hadamard(&h_prev.sub(&n));
        let mut d_hprev = grad_h.hadamard(&z);

        // n = tanh(pre_n), pre_n = x·Wxn + rh·Whn + bn
        let d_pre_n = d_n.hadamard(&tanh_grad_from_output(&n));
        self.grad_wx[2].add_assign(&x.t_matmul(&d_pre_n));
        self.grad_wh[2].add_assign(&rh.t_matmul(&d_pre_n));
        for (g, s) in self.grad_b[2].iter_mut().zip(d_pre_n.col_sums()) {
            *g += s;
        }
        let mut d_x = d_pre_n.matmul_t(&self.wx[2]);
        let d_rh = d_pre_n.matmul_t(&self.wh[2]);
        // rh = r ⊙ h_prev
        let d_r = d_rh.hadamard(&h_prev);
        d_hprev.add_assign(&d_rh.hadamard(&r));

        // r = σ(pre_r)
        let d_pre_r = d_r.hadamard(&sigmoid_grad_from_output(&r));
        self.grad_wx[1].add_assign(&x.t_matmul(&d_pre_r));
        self.grad_wh[1].add_assign(&h_prev.t_matmul(&d_pre_r));
        for (g, s) in self.grad_b[1].iter_mut().zip(d_pre_r.col_sums()) {
            *g += s;
        }
        d_x.add_assign(&d_pre_r.matmul_t(&self.wx[1]));
        d_hprev.add_assign(&d_pre_r.matmul_t(&self.wh[1]));

        // z = σ(pre_z)
        let d_pre_z = d_z.hadamard(&sigmoid_grad_from_output(&z));
        self.grad_wx[0].add_assign(&x.t_matmul(&d_pre_z));
        self.grad_wh[0].add_assign(&h_prev.t_matmul(&d_pre_z));
        for (g, s) in self.grad_b[0].iter_mut().zip(d_pre_z.col_sums()) {
            *g += s;
        }
        d_x.add_assign(&d_pre_z.matmul_t(&self.wx[0]));
        d_hprev.add_assign(&d_pre_z.matmul_t(&self.wh[0]));

        (d_x, d_hprev)
    }

    /// Clears accumulated gradients and the cache stack.
    pub fn zero_grad(&mut self) {
        for g in self.grad_wx.iter_mut().chain(self.grad_wh.iter_mut()) {
            *g = Matrix::zeros(g.rows(), g.cols());
        }
        for g in self.grad_b.iter_mut() {
            g.iter_mut().for_each(|v| *v = 0.0);
        }
        self.stack.clear();
    }

    /// Applies gradients (slots `base_slot..base_slot+9`).
    pub fn apply_gradients(&mut self, opt: &mut Adam, base_slot: usize) {
        for k in 0..3 {
            opt.update(
                base_slot + 3 * k,
                self.wx[k].as_mut_slice(),
                self.grad_wx[k].as_slice(),
            );
            opt.update(
                base_slot + 3 * k + 1,
                self.wh[k].as_mut_slice(),
                self.grad_wh[k].as_slice(),
            );
            opt.update(base_slot + 3 * k + 2, &mut self.b[k], &self.grad_b[k]);
        }
        self.zero_grad();
    }

    /// FLOPs of one timestep over `batch` rows.
    pub fn flops(&self, batch: usize) -> u64 {
        let (i, h) = (self.wx[0].rows(), self.hidden_dim());
        3 * (crate::flops::matmul(batch, i, h) + crate::flops::matmul(batch, h, h))
            + crate::flops::elementwise(batch, h, 10)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn seq_loss(cell: &GruCell, xs: &[Matrix]) -> f64 {
        let mut h = cell.zero_state(xs[0].rows());
        for x in xs {
            h = cell.forward_step_inference(x, &h);
        }
        h.as_slice().iter().map(|v| v * v).sum()
    }

    #[test]
    fn bptt_gradients_match_finite_difference() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut cell = GruCell::new(2, 3, &mut rng);
        let xs: Vec<Matrix> = (0..3)
            .map(|t| {
                Matrix::from_vec(1, 2, vec![0.4 * (t as f64 + 1.0), -0.3 * (t as f64 + 0.5)])
                    .unwrap()
            })
            .collect();
        let mut h = cell.zero_state(1);
        for x in &xs {
            h = cell.forward_step(x, &h);
        }
        let mut gh = h.scale(2.0);
        for _ in (0..xs.len()).rev() {
            let (_, gh_prev) = cell.backward_step(&gh);
            gh = gh_prev;
        }
        let eps = 1e-6;
        // Spot-check one weight from each tensor family.
        for k in 0..3 {
            let orig = cell.wx[k].get(0, 1);
            cell.wx[k].set(0, 1, orig + eps);
            let lp = seq_loss(&cell, &xs);
            cell.wx[k].set(0, 1, orig - eps);
            let lm = seq_loss(&cell, &xs);
            cell.wx[k].set(0, 1, orig);
            let fd = (lp - lm) / (2.0 * eps);
            assert!(
                (cell.grad_wx[k].get(0, 1) - fd).abs() < 1e-5,
                "dWx[{k}] {} vs fd {fd}",
                cell.grad_wx[k].get(0, 1)
            );
            let orig = cell.wh[k].get(1, 2);
            cell.wh[k].set(1, 2, orig + eps);
            let lp = seq_loss(&cell, &xs);
            cell.wh[k].set(1, 2, orig - eps);
            let lm = seq_loss(&cell, &xs);
            cell.wh[k].set(1, 2, orig);
            let fd = (lp - lm) / (2.0 * eps);
            assert!(
                (cell.grad_wh[k].get(1, 2) - fd).abs() < 1e-5,
                "dWh[{k}] {} vs fd {fd}",
                cell.grad_wh[k].get(1, 2)
            );
        }
    }

    #[test]
    fn learns_to_remember() {
        // Output ≈ the first input after two blank steps.
        let mut rng = StdRng::seed_from_u64(1);
        let mut cell = GruCell::new(1, 6, &mut rng);
        let mut head = crate::linear::Linear::new(6, 1, &mut rng);
        let mut opt = Adam::new(0.02);
        let samples = [0.8, -0.5, 0.3, -0.9, 0.1, 0.6];
        let mut first = 0.0;
        let mut last = 0.0;
        for epoch in 0..300 {
            let mut total = 0.0;
            for &v in &samples {
                cell.reset();
                let x0 = Matrix::from_vec(1, 1, vec![v]).unwrap();
                let zero = Matrix::zeros(1, 1);
                let mut h = cell.zero_state(1);
                h = cell.forward_step(&x0, &h);
                h = cell.forward_step(&zero, &h);
                let y = head.forward(&h);
                let err = y.get(0, 0) - v;
                total += err * err;
                let gy = Matrix::from_vec(1, 1, vec![2.0 * err]).unwrap();
                let gh = head.backward(&gy);
                let (_, gh1) = cell.backward_step(&gh);
                cell.backward_step(&gh1);
            }
            cell.apply_gradients(&mut opt, 0);
            head.apply_gradients(&mut opt, 20);
            if epoch == 0 {
                first = total;
            }
            last = total;
        }
        assert!(last < first / 10.0, "loss {first} -> {last}");
    }

    #[test]
    fn forward_modes_agree() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut cell = GruCell::new(2, 4, &mut rng);
        let x = Matrix::from_vec(3, 2, vec![0.1, 0.2, -0.3, 0.4, 0.5, -0.6]).unwrap();
        let h0 = cell.zero_state(3);
        let a = cell.forward_step(&x, &h0);
        let b = cell.forward_step_inference(&x, &h0);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "without matching forward_step")]
    fn backward_without_forward_panics() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut cell = GruCell::new(1, 1, &mut rng);
        cell.backward_step(&Matrix::zeros(1, 1));
    }
}
