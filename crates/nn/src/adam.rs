//! The Adam optimiser.

use std::collections::HashMap;

/// Adam (Kingma & Ba, 2015) with per-tensor state keyed by a slot id.
///
/// Each parameter tensor in a model is given a distinct slot; the
/// optimiser lazily allocates first/second-moment buffers per slot.
///
/// # Example
///
/// ```
/// use dsgl_nn::Adam;
///
/// let mut opt = Adam::new(0.1);
/// let mut w = vec![1.0, -2.0];
/// // Gradient steadily pointing up drives the parameters down.
/// for _ in 0..100 {
///     opt.update(0, &mut w, &[1.0, 1.0]);
/// }
/// assert!(w[0] < 1.0 && w[1] < -2.0);
/// ```
#[derive(Debug, Clone)]
pub struct Adam {
    lr: f64,
    beta1: f64,
    beta2: f64,
    eps: f64,
    state: HashMap<usize, AdamSlot>,
}

#[derive(Debug, Clone)]
struct AdamSlot {
    m: Vec<f64>,
    v: Vec<f64>,
    t: u64,
}

impl Adam {
    /// Creates an optimiser with learning rate `lr` and the standard
    /// `β₁ = 0.9`, `β₂ = 0.999`, `ε = 1e-8`.
    ///
    /// # Panics
    ///
    /// Panics unless `lr` is finite and positive.
    pub fn new(lr: f64) -> Self {
        assert!(lr.is_finite() && lr > 0.0, "learning rate must be positive");
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            state: HashMap::new(),
        }
    }

    /// Current learning rate.
    pub fn learning_rate(&self) -> f64 {
        self.lr
    }

    /// Replaces the learning rate (for decay schedules).
    ///
    /// # Panics
    ///
    /// Panics unless `lr` is finite and positive.
    pub fn set_learning_rate(&mut self, lr: f64) {
        assert!(lr.is_finite() && lr > 0.0, "learning rate must be positive");
        self.lr = lr;
    }

    /// Applies one Adam update to `params` using `grads`, under slot id
    /// `slot`.
    ///
    /// # Panics
    ///
    /// Panics if `params.len() != grads.len()` or if a slot is reused
    /// with a different tensor size.
    pub fn update(&mut self, slot: usize, params: &mut [f64], grads: &[f64]) {
        assert_eq!(params.len(), grads.len(), "params/grads length mismatch");
        let entry = self.state.entry(slot).or_insert_with(|| AdamSlot {
            m: vec![0.0; params.len()],
            v: vec![0.0; params.len()],
            t: 0,
        });
        assert_eq!(
            entry.m.len(),
            params.len(),
            "slot {slot} reused with a different tensor size"
        );
        entry.t += 1;
        let t = entry.t as i32;
        let bc1 = 1.0 - self.beta1.powi(t);
        let bc2 = 1.0 - self.beta2.powi(t);
        for i in 0..params.len() {
            entry.m[i] = self.beta1 * entry.m[i] + (1.0 - self.beta1) * grads[i];
            entry.v[i] = self.beta2 * entry.v[i] + (1.0 - self.beta2) * grads[i] * grads[i];
            let m_hat = entry.m[i] / bc1;
            let v_hat = entry.v[i] / bc2;
            params[i] -= self.lr * m_hat / (v_hat.sqrt() + self.eps);
        }
    }

    /// Drops all moment state (restart).
    pub fn reset(&mut self) {
        self.state.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimises_quadratic() {
        // f(w) = (w - 3)², gradient 2(w - 3).
        let mut opt = Adam::new(0.05);
        let mut w = vec![0.0];
        for _ in 0..2000 {
            let g = 2.0 * (w[0] - 3.0);
            opt.update(0, &mut w, &[g]);
        }
        assert!((w[0] - 3.0).abs() < 1e-2, "w = {}", w[0]);
    }

    #[test]
    fn slots_independent() {
        let mut opt = Adam::new(0.1);
        let mut a = vec![0.0];
        let mut b = vec![0.0];
        opt.update(0, &mut a, &[1.0]);
        opt.update(1, &mut b, &[-1.0]);
        assert!(a[0] < 0.0);
        assert!(b[0] > 0.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn length_mismatch_panics() {
        Adam::new(0.1).update(0, &mut [0.0], &[1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "different tensor size")]
    fn slot_reuse_panics() {
        let mut opt = Adam::new(0.1);
        opt.update(0, &mut [0.0], &[1.0]);
        opt.update(0, &mut [0.0, 0.0], &[1.0, 1.0]);
    }

    #[test]
    #[should_panic(expected = "learning rate")]
    fn bad_lr_panics() {
        Adam::new(0.0);
    }

    #[test]
    fn reset_clears_momentum() {
        let mut opt = Adam::new(0.1);
        let mut w = vec![0.0];
        opt.update(0, &mut w, &[1.0]);
        opt.reset();
        let before = w[0];
        // After reset, the first step is exactly -lr (bias-corrected).
        opt.update(0, &mut w, &[1.0]);
        assert!((w[0] - (before - 0.1)).abs() < 1e-9);
    }
}
