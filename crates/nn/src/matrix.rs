//! Dense row-major matrices.

use std::fmt;

/// A dense `rows x cols` matrix of `f64` in row-major order.
///
/// # Example
///
/// ```
/// use dsgl_nn::Matrix;
///
/// let a = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]).unwrap();
/// let b = Matrix::eye(2);
/// assert_eq!(a.matmul(&b), a);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// All-zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// All-ones matrix.
    pub fn ones(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![1.0; rows * cols],
        }
    }

    /// Identity matrix.
    pub fn eye(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m.set(i, i, 1.0);
        }
        m
    }

    /// Builds a matrix from a row-major buffer.
    ///
    /// Returns `None` when `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Option<Self> {
        if data.len() != rows * cols {
            return None;
        }
        Some(Matrix { rows, cols, data })
    }

    /// `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics when out of range.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        assert!(r < self.rows && c < self.cols, "index out of range");
        self.data[r * self.cols + c]
    }

    /// Sets element `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics when out of range.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        assert!(r < self.rows && c < self.cols, "index out of range");
        self.data[r * self.cols + c] = v;
    }

    /// Row `r` as a slice.
    ///
    /// # Panics
    ///
    /// Panics when `r` is out of range.
    pub fn row(&self, r: usize) -> &[f64] {
        assert!(r < self.rows, "row out of range");
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable row `r`.
    ///
    /// # Panics
    ///
    /// Panics when `r` is out of range.
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        assert!(r < self.rows, "row out of range");
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// The underlying row-major buffer.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable access to the underlying buffer.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Matrix product `self · other`.
    ///
    /// # Panics
    ///
    /// Panics on incompatible shapes.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, other.rows,
            "matmul shape mismatch: {}x{} · {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        let mut out = Matrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self.data[i * self.cols + k];
                if a == 0.0 {
                    continue;
                }
                let orow = &other.data[k * other.cols..(k + 1) * other.cols];
                let out_row = &mut out.data[i * other.cols..(i + 1) * other.cols];
                for (o, &b) in out_row.iter_mut().zip(orow) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// `selfᵀ · other`.
    ///
    /// # Panics
    ///
    /// Panics on incompatible shapes.
    pub fn t_matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.rows, other.rows, "t_matmul shape mismatch");
        let mut out = Matrix::zeros(self.cols, other.cols);
        for r in 0..self.rows {
            for i in 0..self.cols {
                let a = self.data[r * self.cols + i];
                if a == 0.0 {
                    continue;
                }
                let orow = &other.data[r * other.cols..(r + 1) * other.cols];
                let out_row = &mut out.data[i * other.cols..(i + 1) * other.cols];
                for (o, &b) in out_row.iter_mut().zip(orow) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// `self · otherᵀ`.
    ///
    /// # Panics
    ///
    /// Panics on incompatible shapes.
    pub fn matmul_t(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.cols, "matmul_t shape mismatch");
        let mut out = Matrix::zeros(self.rows, other.rows);
        for i in 0..self.rows {
            for j in 0..other.rows {
                let mut acc = 0.0;
                let arow = &self.data[i * self.cols..(i + 1) * self.cols];
                let brow = &other.data[j * other.cols..(j + 1) * other.cols];
                for (&a, &b) in arow.iter().zip(brow) {
                    acc += a * b;
                }
                out.data[i * other.rows + j] = acc;
            }
        }
        out
    }

    /// The transpose.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
        out
    }

    /// Element-wise sum.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn add(&self, other: &Matrix) -> Matrix {
        self.zip_with(other, |a, b| a + b)
    }

    /// Element-wise difference.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn sub(&self, other: &Matrix) -> Matrix {
        self.zip_with(other, |a, b| a - b)
    }

    /// Element-wise (Hadamard) product.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn hadamard(&self, other: &Matrix) -> Matrix {
        self.zip_with(other, |a, b| a * b)
    }

    fn zip_with(&self, other: &Matrix, f: impl Fn(f64, f64) -> f64) -> Matrix {
        assert_eq!(self.shape(), other.shape(), "element-wise shape mismatch");
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&other.data)
                .map(|(&a, &b)| f(a, b))
                .collect(),
        }
    }

    /// Adds `other` into `self` in place.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn add_assign(&mut self, other: &Matrix) {
        assert_eq!(self.shape(), other.shape(), "element-wise shape mismatch");
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// Scales all elements by `k`.
    pub fn scale(&self, k: f64) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&a| a * k).collect(),
        }
    }

    /// Applies `f` element-wise.
    pub fn map(&self, f: impl Fn(f64) -> f64) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&a| f(a)).collect(),
        }
    }

    /// Adds a row vector to every row (bias broadcast).
    ///
    /// # Panics
    ///
    /// Panics when `bias.len() != cols`.
    pub fn add_row_broadcast(&self, bias: &[f64]) -> Matrix {
        assert_eq!(bias.len(), self.cols, "bias length mismatch");
        let mut out = self.clone();
        for r in 0..self.rows {
            for (o, &b) in out.row_mut(r).iter_mut().zip(bias) {
                *o += b;
            }
        }
        out
    }

    /// Column-wise sums (shape `cols`), used for bias gradients.
    pub fn col_sums(&self) -> Vec<f64> {
        let mut sums = vec![0.0; self.cols];
        for r in 0..self.rows {
            for (s, &v) in sums.iter_mut().zip(self.row(r)) {
                *s += v;
            }
        }
        sums
    }

    /// Mean of all elements (0 for an empty matrix).
    pub fn mean(&self) -> f64 {
        if self.data.is_empty() {
            return 0.0;
        }
        self.data.iter().sum::<f64>() / self.data.len() as f64
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|&a| a * a).sum::<f64>().sqrt()
    }

    /// Row-wise softmax (each row sums to 1). Rows of `-inf` are not
    /// supported; all inputs must be finite.
    pub fn softmax_rows(&self) -> Matrix {
        let mut out = self.clone();
        for r in 0..self.rows {
            let row = out.row_mut(r);
            let max = row.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            let mut total = 0.0;
            for v in row.iter_mut() {
                *v = (*v - max).exp();
                total += *v;
            }
            for v in row.iter_mut() {
                *v /= total;
            }
        }
        out
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{}", self.rows, self.cols)?;
        for r in 0..self.rows.min(8) {
            let cells: Vec<String> = self.row(r).iter().take(8).map(|v| format!("{v:8.4}")).collect();
            writeln!(f, "  [{}]", cells.join(", "))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction() {
        assert!(Matrix::from_vec(2, 2, vec![1.0; 3]).is_none());
        let m = Matrix::from_vec(2, 3, vec![0.0; 6]).unwrap();
        assert_eq!(m.shape(), (2, 3));
        assert_eq!(Matrix::eye(3).get(1, 1), 1.0);
        assert_eq!(Matrix::eye(3).get(0, 1), 0.0);
    }

    #[test]
    fn matmul_known() {
        let a = Matrix::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]).unwrap();
        let b = Matrix::from_vec(3, 2, vec![7., 8., 9., 10., 11., 12.]).unwrap();
        let c = a.matmul(&b);
        assert_eq!(c.as_slice(), &[58., 64., 139., 154.]);
    }

    #[test]
    fn transpose_products_agree() {
        let a = Matrix::from_vec(3, 2, vec![1., 2., 3., 4., 5., 6.]).unwrap();
        let b = Matrix::from_vec(3, 4, (0..12).map(|i| i as f64).collect()).unwrap();
        let direct = a.transpose().matmul(&b);
        assert_eq!(a.t_matmul(&b), direct);

        let c = Matrix::from_vec(5, 2, (0..10).map(|i| i as f64 * 0.5).collect()).unwrap();
        let direct2 = a.matmul(&c.transpose());
        assert_eq!(a.matmul_t(&c), direct2);
    }

    #[test]
    #[should_panic(expected = "matmul shape mismatch")]
    fn matmul_shape_panics() {
        Matrix::zeros(2, 3).matmul(&Matrix::zeros(2, 3));
    }

    #[test]
    fn elementwise_ops() {
        let a = Matrix::from_vec(1, 3, vec![1., 2., 3.]).unwrap();
        let b = Matrix::from_vec(1, 3, vec![4., 5., 6.]).unwrap();
        assert_eq!(a.add(&b).as_slice(), &[5., 7., 9.]);
        assert_eq!(b.sub(&a).as_slice(), &[3., 3., 3.]);
        assert_eq!(a.hadamard(&b).as_slice(), &[4., 10., 18.]);
        assert_eq!(a.scale(2.0).as_slice(), &[2., 4., 6.]);
        let mut c = a.clone();
        c.add_assign(&b);
        assert_eq!(c.as_slice(), &[5., 7., 9.]);
    }

    #[test]
    fn broadcast_and_sums() {
        let a = Matrix::from_vec(2, 2, vec![1., 2., 3., 4.]).unwrap();
        assert_eq!(a.add_row_broadcast(&[10., 20.]).as_slice(), &[11., 22., 13., 24.]);
        assert_eq!(a.col_sums(), vec![4., 6.]);
        assert_eq!(a.mean(), 2.5);
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let a = Matrix::from_vec(2, 3, vec![1., 2., 3., -1., 0., 1.]).unwrap();
        let s = a.softmax_rows();
        for r in 0..2 {
            let sum: f64 = s.row(r).iter().sum();
            assert!((sum - 1.0).abs() < 1e-12);
            assert!(s.row(r).iter().all(|&v| v > 0.0));
        }
        // Larger logits get larger probabilities.
        assert!(s.get(0, 2) > s.get(0, 0));
    }

    #[test]
    fn norms_and_map() {
        let a = Matrix::from_vec(1, 2, vec![3., 4.]).unwrap();
        assert!((a.frobenius_norm() - 5.0).abs() < 1e-12);
        assert_eq!(a.map(|v| v * v).as_slice(), &[9., 16.]);
    }

    #[test]
    fn display_nonempty() {
        let s = format!("{}", Matrix::eye(2));
        assert!(s.contains("Matrix 2x2"));
    }
}
