//! Dense row-major matrices.

use crate::kernels;
use std::fmt;

/// Shape mismatch reported by the `try_*` matrix products.
///
/// Carries the operation name and both operand shapes so callers can
/// log a precise diagnostic instead of unwinding (the library-facing
/// no-panic policy for invalid parameters).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShapeError {
    /// Operation that rejected the operands (`"matmul"`, …).
    pub op: &'static str,
    /// Shape of the left operand.
    pub lhs: (usize, usize),
    /// Shape of the right operand.
    pub rhs: (usize, usize),
}

impl fmt::Display for ShapeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} shape mismatch: {}x{} · {}x{}",
            self.op, self.lhs.0, self.lhs.1, self.rhs.0, self.rhs.1
        )
    }
}

impl std::error::Error for ShapeError {}

/// A dense `rows x cols` matrix of `f64` in row-major order.
///
/// # Example
///
/// ```
/// use dsgl_nn::Matrix;
///
/// let a = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]).unwrap();
/// let b = Matrix::eye(2);
/// assert_eq!(a.matmul(&b), a);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// All-zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// All-ones matrix.
    pub fn ones(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![1.0; rows * cols],
        }
    }

    /// Identity matrix.
    pub fn eye(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m.set(i, i, 1.0);
        }
        m
    }

    /// Builds a matrix from a row-major buffer.
    ///
    /// Returns `None` when `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Option<Self> {
        if data.len() != rows * cols {
            return None;
        }
        Some(Matrix { rows, cols, data })
    }

    /// `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics when out of range.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        assert!(r < self.rows && c < self.cols, "index out of range");
        self.data[r * self.cols + c]
    }

    /// Sets element `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics when out of range.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        assert!(r < self.rows && c < self.cols, "index out of range");
        self.data[r * self.cols + c] = v;
    }

    /// Row `r` as a slice.
    ///
    /// # Panics
    ///
    /// Panics when `r` is out of range.
    pub fn row(&self, r: usize) -> &[f64] {
        assert!(r < self.rows, "row out of range");
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable row `r`.
    ///
    /// # Panics
    ///
    /// Panics when `r` is out of range.
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        assert!(r < self.rows, "row out of range");
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// The underlying row-major buffer.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable access to the underlying buffer.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Matrix product `self · other` through the cache-blocked kernel
    /// layer ([`crate::kernels`]); bit-identical to the naive loop.
    ///
    /// Returns [`ShapeError`] when `self.cols != other.rows`.
    pub fn try_matmul(&self, other: &Matrix) -> Result<Matrix, ShapeError> {
        if self.cols != other.rows {
            return Err(ShapeError {
                op: "matmul",
                lhs: self.shape(),
                rhs: other.shape(),
            });
        }
        let mut out = Matrix::zeros(self.rows, other.cols);
        kernels::gemm_into(
            &self.data, self.rows, self.cols, &other.data, other.cols, &mut out.data,
        );
        Ok(out)
    }

    /// Matrix product `self · other`.
    ///
    /// # Panics
    ///
    /// Panics on incompatible shapes; [`Self::try_matmul`] is the
    /// non-panicking entry point.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        self.try_matmul(other).unwrap_or_else(|e| panic!("{e}"))
    }

    /// `selfᵀ · other` through the cache-blocked kernel layer;
    /// bit-identical to the naive loop.
    ///
    /// Returns [`ShapeError`] when the row counts differ.
    pub fn try_t_matmul(&self, other: &Matrix) -> Result<Matrix, ShapeError> {
        if self.rows != other.rows {
            return Err(ShapeError {
                op: "t_matmul",
                lhs: self.shape(),
                rhs: other.shape(),
            });
        }
        let mut out = Matrix::zeros(self.cols, other.cols);
        kernels::gemm_t_into(
            &self.data, self.rows, self.cols, &other.data, other.cols, &mut out.data,
        );
        Ok(out)
    }

    /// `selfᵀ · other`.
    ///
    /// # Panics
    ///
    /// Panics on incompatible shapes; [`Self::try_t_matmul`] is the
    /// non-panicking entry point.
    pub fn t_matmul(&self, other: &Matrix) -> Matrix {
        self.try_t_matmul(other).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Symmetric Gram product `selfᵀ · self` via the SYRK kernel:
    /// computes the upper triangle only and mirrors it, halving the
    /// cost of `self.t_matmul(&self)`. The upper triangle is
    /// bit-identical to `t_matmul`; the result is exactly symmetric.
    pub fn gram_t(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.cols);
        kernels::syrk_t_into(&self.data, self.rows, self.cols, &mut out.data);
        out
    }

    /// `self · otherᵀ` through the cache-blocked kernel layer;
    /// bit-identical to the naive loop.
    ///
    /// Returns [`ShapeError`] when the column counts differ.
    pub fn try_matmul_t(&self, other: &Matrix) -> Result<Matrix, ShapeError> {
        if self.cols != other.cols {
            return Err(ShapeError {
                op: "matmul_t",
                lhs: self.shape(),
                rhs: other.shape(),
            });
        }
        let mut out = Matrix::zeros(self.rows, other.rows);
        kernels::gemm_nt_into(
            &self.data, self.rows, self.cols, &other.data, other.rows, &mut out.data,
        );
        Ok(out)
    }

    /// `self · otherᵀ`.
    ///
    /// # Panics
    ///
    /// Panics on incompatible shapes; [`Self::try_matmul_t`] is the
    /// non-panicking entry point.
    pub fn matmul_t(&self, other: &Matrix) -> Matrix {
        self.try_matmul_t(other).unwrap_or_else(|e| panic!("{e}"))
    }

    /// The transpose.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
        out
    }

    /// Element-wise sum.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn add(&self, other: &Matrix) -> Matrix {
        self.zip_with(other, |a, b| a + b)
    }

    /// Element-wise difference.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn sub(&self, other: &Matrix) -> Matrix {
        self.zip_with(other, |a, b| a - b)
    }

    /// Element-wise (Hadamard) product.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn hadamard(&self, other: &Matrix) -> Matrix {
        self.zip_with(other, |a, b| a * b)
    }

    fn zip_with(&self, other: &Matrix, f: impl Fn(f64, f64) -> f64) -> Matrix {
        assert_eq!(self.shape(), other.shape(), "element-wise shape mismatch");
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&other.data)
                .map(|(&a, &b)| f(a, b))
                .collect(),
        }
    }

    /// Adds `other` into `self` in place.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn add_assign(&mut self, other: &Matrix) {
        assert_eq!(self.shape(), other.shape(), "element-wise shape mismatch");
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// Scales all elements by `k`.
    pub fn scale(&self, k: f64) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&a| a * k).collect(),
        }
    }

    /// Applies `f` element-wise.
    pub fn map(&self, f: impl Fn(f64) -> f64) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&a| f(a)).collect(),
        }
    }

    /// Adds a row vector to every row (bias broadcast).
    ///
    /// # Panics
    ///
    /// Panics when `bias.len() != cols`.
    pub fn add_row_broadcast(&self, bias: &[f64]) -> Matrix {
        assert_eq!(bias.len(), self.cols, "bias length mismatch");
        let mut out = self.clone();
        for r in 0..self.rows {
            for (o, &b) in out.row_mut(r).iter_mut().zip(bias) {
                *o += b;
            }
        }
        out
    }

    /// Column-wise sums (shape `cols`), used for bias gradients.
    pub fn col_sums(&self) -> Vec<f64> {
        let mut sums = vec![0.0; self.cols];
        for r in 0..self.rows {
            for (s, &v) in sums.iter_mut().zip(self.row(r)) {
                *s += v;
            }
        }
        sums
    }

    /// Mean of all elements (0 for an empty matrix).
    pub fn mean(&self) -> f64 {
        if self.data.is_empty() {
            return 0.0;
        }
        self.data.iter().sum::<f64>() / self.data.len() as f64
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|&a| a * a).sum::<f64>().sqrt()
    }

    /// Row-wise softmax (each row sums to 1). Rows of `-inf` are not
    /// supported; all inputs must be finite.
    pub fn softmax_rows(&self) -> Matrix {
        let mut out = self.clone();
        for r in 0..self.rows {
            let row = out.row_mut(r);
            let max = row.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            let mut total = 0.0;
            for v in row.iter_mut() {
                *v = (*v - max).exp();
                total += *v;
            }
            for v in row.iter_mut() {
                *v /= total;
            }
        }
        out
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{}", self.rows, self.cols)?;
        for r in 0..self.rows.min(8) {
            let cells: Vec<String> = self.row(r).iter().take(8).map(|v| format!("{v:8.4}")).collect();
            writeln!(f, "  [{}]", cells.join(", "))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction() {
        assert!(Matrix::from_vec(2, 2, vec![1.0; 3]).is_none());
        let m = Matrix::from_vec(2, 3, vec![0.0; 6]).unwrap();
        assert_eq!(m.shape(), (2, 3));
        assert_eq!(Matrix::eye(3).get(1, 1), 1.0);
        assert_eq!(Matrix::eye(3).get(0, 1), 0.0);
    }

    #[test]
    fn matmul_known() {
        let a = Matrix::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]).unwrap();
        let b = Matrix::from_vec(3, 2, vec![7., 8., 9., 10., 11., 12.]).unwrap();
        let c = a.matmul(&b);
        assert_eq!(c.as_slice(), &[58., 64., 139., 154.]);
    }

    #[test]
    fn transpose_products_agree() {
        let a = Matrix::from_vec(3, 2, vec![1., 2., 3., 4., 5., 6.]).unwrap();
        let b = Matrix::from_vec(3, 4, (0..12).map(|i| i as f64).collect()).unwrap();
        let direct = a.transpose().matmul(&b);
        assert_eq!(a.t_matmul(&b), direct);

        let c = Matrix::from_vec(5, 2, (0..10).map(|i| i as f64 * 0.5).collect()).unwrap();
        let direct2 = a.matmul(&c.transpose());
        assert_eq!(a.matmul_t(&c), direct2);
    }

    #[test]
    #[should_panic(expected = "matmul shape mismatch")]
    fn matmul_shape_panics() {
        Matrix::zeros(2, 3).matmul(&Matrix::zeros(2, 3));
    }

    #[test]
    fn try_products_report_shapes_instead_of_panicking() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let err = a.try_matmul(&b).unwrap_err();
        assert_eq!(err.op, "matmul");
        assert_eq!((err.lhs, err.rhs), ((2, 3), (2, 3)));
        assert_eq!(err.to_string(), "matmul shape mismatch: 2x3 · 2x3");
        assert!(Matrix::zeros(2, 3).try_t_matmul(&Matrix::zeros(3, 2)).is_err());
        assert!(Matrix::zeros(2, 3).try_matmul_t(&Matrix::zeros(3, 2)).is_err());
        // Compatible shapes succeed through the same entry points.
        assert!(Matrix::zeros(2, 3).try_matmul(&Matrix::zeros(3, 4)).is_ok());
        assert!(Matrix::zeros(2, 3).try_t_matmul(&Matrix::zeros(2, 4)).is_ok());
        assert!(Matrix::zeros(2, 3).try_matmul_t(&Matrix::zeros(5, 3)).is_ok());
    }

    #[test]
    fn gram_t_matches_t_matmul() {
        let a = Matrix::from_vec(4, 3, (0..12).map(|i| i as f64 * 0.25 - 1.0).collect()).unwrap();
        let full = a.t_matmul(&a);
        let gram = a.gram_t();
        assert_eq!(gram, full);
    }

    #[test]
    fn elementwise_ops() {
        let a = Matrix::from_vec(1, 3, vec![1., 2., 3.]).unwrap();
        let b = Matrix::from_vec(1, 3, vec![4., 5., 6.]).unwrap();
        assert_eq!(a.add(&b).as_slice(), &[5., 7., 9.]);
        assert_eq!(b.sub(&a).as_slice(), &[3., 3., 3.]);
        assert_eq!(a.hadamard(&b).as_slice(), &[4., 10., 18.]);
        assert_eq!(a.scale(2.0).as_slice(), &[2., 4., 6.]);
        let mut c = a.clone();
        c.add_assign(&b);
        assert_eq!(c.as_slice(), &[5., 7., 9.]);
    }

    #[test]
    fn broadcast_and_sums() {
        let a = Matrix::from_vec(2, 2, vec![1., 2., 3., 4.]).unwrap();
        assert_eq!(a.add_row_broadcast(&[10., 20.]).as_slice(), &[11., 22., 13., 24.]);
        assert_eq!(a.col_sums(), vec![4., 6.]);
        assert_eq!(a.mean(), 2.5);
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let a = Matrix::from_vec(2, 3, vec![1., 2., 3., -1., 0., 1.]).unwrap();
        let s = a.softmax_rows();
        for r in 0..2 {
            let sum: f64 = s.row(r).iter().sum();
            assert!((sum - 1.0).abs() < 1e-12);
            assert!(s.row(r).iter().all(|&v| v > 0.0));
        }
        // Larger logits get larger probabilities.
        assert!(s.get(0, 2) > s.get(0, 0));
    }

    #[test]
    fn norms_and_map() {
        let a = Matrix::from_vec(1, 2, vec![3., 4.]).unwrap();
        assert!((a.frobenius_norm() - 5.0).abs() < 1e-12);
        assert_eq!(a.map(|v| v * v).as_slice(), &[9., 16.]);
    }

    #[test]
    fn display_nonempty() {
        let s = format!("{}", Matrix::eye(2));
        assert!(s.contains("Matrix 2x2"));
    }
}
