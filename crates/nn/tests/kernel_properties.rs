//! Property tests for the cache-blocked dense kernels: across ragged
//! shapes and zero densities, every blocked routine must be
//! **bit-identical** (`f64::to_bits`) to its naive sequential
//! reference, and the SYRK mirror must reproduce the full `AᵀA`
//! product. These are the load-bearing guarantees behind routing all
//! `Matrix` products through `dsgl_nn::kernels` — the repo-wide
//! determinism suite assumes products never changed a single bit.

use dsgl_nn::kernels;
use dsgl_nn::Matrix;
use proptest::prelude::*;

/// Dimension strategy biased toward awkward cases: 1, primes, and
/// sizes straddling the blocking constants (4, 16, 32, 128).
fn dim() -> impl Strategy<Value = usize> {
    const AWKWARD: [usize; 10] = [1, 2, 3, 5, 7, 13, 17, 31, 33, 48];
    (0usize..64).prop_map(|i| {
        if i < AWKWARD.len() {
            AWKWARD[i]
        } else {
            i - AWKWARD.len() + 1
        }
    })
}

/// A coin flip (the shim has no `bool` strategy).
fn flag() -> impl Strategy<Value = bool> {
    (0usize..2).prop_map(|b| b == 1)
}

/// Deterministic xorshift fill with a controllable share of exact
/// zeros (the naive loops skip zero coefficients, so the skip must be
/// exercised) including negative zeros, which would expose any skip
/// divergence through the sign bit of the accumulated result.
fn fill(len: usize, seed: u64, zero_bias: bool) -> Vec<f64> {
    let mut x = seed | 1;
    (0..len)
        .map(|_| {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            if zero_bias && x.is_multiple_of(4) {
                if x.is_multiple_of(8) {
                    -0.0
                } else {
                    0.0
                }
            } else {
                (x % 2000) as f64 / 1000.0 - 1.0
            }
        })
        .collect()
}

fn bits(v: &[f64]) -> Vec<u64> {
    v.iter().map(|x| x.to_bits()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn blocked_gemm_bit_identical_to_naive(
        m in dim(),
        k in dim(),
        n in dim(),
        zero_bias in flag(),
        seed in 0u64..u64::MAX,
    ) {
        let a = fill(m * k, seed, zero_bias);
        let b = fill(k * n, seed.rotate_left(17) ^ 0x9E37, false);
        let mut blocked = vec![0.0; m * n];
        let mut naive = vec![0.0; m * n];
        kernels::gemm_into(&a, m, k, &b, n, &mut blocked);
        kernels::naive_gemm_into(&a, m, k, &b, n, &mut naive);
        prop_assert_eq!(bits(&blocked), bits(&naive));
    }

    #[test]
    fn blocked_gemm_t_bit_identical_to_naive(
        r in dim(),
        m in dim(),
        n in dim(),
        zero_bias in flag(),
        seed in 0u64..u64::MAX,
    ) {
        let a = fill(r * m, seed, zero_bias);
        let b = fill(r * n, seed.rotate_left(29) ^ 0x7F4A, false);
        let mut blocked = vec![0.0; m * n];
        let mut naive = vec![0.0; m * n];
        kernels::gemm_t_into(&a, r, m, &b, n, &mut blocked);
        kernels::naive_gemm_t_into(&a, r, m, &b, n, &mut naive);
        prop_assert_eq!(bits(&blocked), bits(&naive));
    }

    #[test]
    fn blocked_gemm_nt_bit_identical_to_naive(
        m in dim(),
        k in dim(),
        n in dim(),
        seed in 0u64..u64::MAX,
    ) {
        let a = fill(m * k, seed, false);
        let b = fill(n * k, seed.rotate_left(41) ^ 0x1B2C, false);
        let mut blocked = vec![0.0; m * n];
        let mut naive = vec![0.0; m * n];
        kernels::gemm_nt_into(&a, m, k, &b, n, &mut blocked);
        kernels::naive_gemm_nt_into(&a, m, k, &b, n, &mut naive);
        prop_assert_eq!(bits(&blocked), bits(&naive));
    }

    #[test]
    fn syrk_mirror_matches_full_t_matmul(
        r in dim(),
        m in dim(),
        zero_bias in flag(),
        seed in 0u64..u64::MAX,
    ) {
        let a = fill(r * m, seed, zero_bias);
        let x = Matrix::from_vec(r, m, a).unwrap();
        let full = x.t_matmul(&x);
        let gram = x.gram_t();
        // Upper triangle (incl. diagonal) is bit-identical by contract;
        // products commute, so the mirrored lower triangle matches the
        // independently-computed full product bit-for-bit as well.
        prop_assert_eq!(bits(gram.as_slice()), bits(full.as_slice()));
        for i in 0..m {
            for j in 0..m {
                prop_assert_eq!(gram.get(i, j).to_bits(), gram.get(j, i).to_bits());
            }
        }
    }

    #[test]
    fn raw_syrk_upper_triangle_matches_naive_gemm_t(
        r in dim(),
        m in dim(),
        zero_bias in flag(),
        seed in 0u64..u64::MAX,
    ) {
        let a = fill(r * m, seed, zero_bias);
        let mut syrk = vec![0.0; m * m];
        let mut naive = vec![0.0; m * m];
        kernels::syrk_t_into(&a, r, m, &mut syrk);
        kernels::naive_gemm_t_into(&a, r, m, &a, m, &mut naive);
        for i in 0..m {
            for j in 0..m {
                prop_assert_eq!(syrk[i * m + j].to_bits(), naive[i * m + j].to_bits());
            }
        }
    }

    #[test]
    fn blocked_matvec_bit_identical_to_naive(
        rows in dim(),
        cols in dim(),
        zero_bias in flag(),
        seed in 0u64..u64::MAX,
    ) {
        let a = fill(rows * cols, seed, zero_bias);
        let x = fill(cols, seed.rotate_left(7) ^ 0x55AA, false);
        let mut blocked = vec![0.0; rows];
        let mut naive = vec![0.0; rows];
        kernels::matvec_rows_into(&a, cols, &x, &mut blocked);
        kernels::naive_matvec_into(&a, cols, &x, &mut naive);
        prop_assert_eq!(bits(&blocked), bits(&naive));
    }
}

/// Deterministic large-shape spot checks above the blocked-dispatch
/// threshold (proptest dims stay small; these pin the panel-packed
/// paths on shapes that actually engage them).
#[test]
fn large_shapes_cross_dispatch_threshold_bit_identically() {
    let (m, k, n) = (129, 257, 131);
    let a = fill(m * k, 0x5DEECE66D, true);
    let b = fill(k * n, 0x2545F4914F6CDD1D, false);

    let mut blocked = vec![0.0; m * n];
    let mut naive = vec![0.0; m * n];
    kernels::gemm_into(&a, m, k, &b, n, &mut blocked);
    kernels::naive_gemm_into(&a, m, k, &b, n, &mut naive);
    assert_eq!(bits(&blocked), bits(&naive), "gemm diverged at large shape");

    // AᵀB with A: 129×257 (shared row dim 129) and B: 129×131.
    let c = fill(m * n, 0xA076_1D64_78BD_642F, false);
    let mut bt = vec![0.0; k * n];
    let mut nt = vec![0.0; k * n];
    kernels::gemm_t_into(&a, m, k, &c, n, &mut bt);
    kernels::naive_gemm_t_into(&a, m, k, &c, n, &mut nt);
    assert_eq!(bits(&bt), bits(&nt), "gemm_t diverged at large shape");

    // SYRK on a 257-column Gram above the dispatch threshold.
    let mut syrk = vec![0.0; k * k];
    let mut full = vec![0.0; k * k];
    kernels::syrk_t_into(&a, m, k, &mut syrk);
    kernels::naive_gemm_t_into(&a, m, k, &a, k, &mut full);
    assert_eq!(bits(&syrk), bits(&full), "syrk diverged at large shape");

    // ABᵀ with B: 131×257.
    let d = fill(n * k, 0xE220_A839_7B1D_CDAF, false);
    let mut bnt = vec![0.0; m * n];
    let mut nnt = vec![0.0; m * n];
    kernels::gemm_nt_into(&a, m, k, &d, n, &mut bnt);
    kernels::naive_gemm_nt_into(&a, m, k, &d, n, &mut nnt);
    assert_eq!(bits(&bnt), bits(&nnt), "gemm_nt diverged at large shape");
}

/// Non-finite right-hand operands force the blocked kernels onto the
/// checked (zero-skip-replaying) path: `0 · inf = NaN` makes the skip
/// bit-observable, so the branch-free fast path must not be taken.
/// Still bit-identical to naive, NaN payloads included.
#[test]
fn non_finite_panels_stay_bit_identical() {
    let (m, k, n) = (68, 96, 72);
    let mut a = fill(m * k, 0xDEAD_BEEF, true);
    let mut b = fill(k * n, 0xFACE_FEED, false);
    // Sprinkle infinities and NaNs into B, and pair some against exact
    // zeros in A so the skip actually matters.
    for idx in (0..b.len()).step_by(97) {
        b[idx] = f64::INFINITY;
    }
    for idx in (13..b.len()).step_by(131) {
        b[idx] = f64::NAN;
    }
    for idx in (0..a.len()).step_by(7) {
        a[idx] = 0.0;
    }
    assert!(m * k * n >= 1 << 16, "shape must engage the blocked path");

    let mut blocked = vec![0.0; m * n];
    let mut naive = vec![0.0; m * n];
    kernels::gemm_into(&a, m, k, &b, n, &mut blocked);
    kernels::naive_gemm_into(&a, m, k, &b, n, &mut naive);
    assert_eq!(bits(&blocked), bits(&naive), "gemm diverged on non-finite B");

    let b2 = fill(m * n, 0x0DDBA11, false);
    let mut b2 = b2;
    for idx in (5..b2.len()).step_by(89) {
        b2[idx] = f64::NEG_INFINITY;
    }
    let mut bt = vec![0.0; k * n];
    let mut nt = vec![0.0; k * n];
    kernels::gemm_t_into(&a, m, k, &b2, n, &mut bt);
    kernels::naive_gemm_t_into(&a, m, k, &b2, n, &mut nt);
    assert_eq!(bits(&bt), bits(&nt), "gemm_t diverged on non-finite B");
}

/// Serialises the process-global SIMD toggle across concurrently
/// running tests in this binary, so a "scalar" measurement can't race
/// with another test re-enabling SIMD mid-call.
static SIMD_TOGGLE: std::sync::Mutex<()> = std::sync::Mutex::new(());

/// Runs `op` once with SIMD force-disabled and once with it allowed,
/// returning both results' bit patterns. With the `simd` feature off
/// (or no AVX at runtime) the two runs coincide and the comparison is
/// trivially true — the scalar build stays the bit-parity reference.
fn scalar_vs_simd<F: Fn() -> Vec<f64>>(op: F) -> (Vec<u64>, Vec<u64>) {
    let _guard = SIMD_TOGGLE.lock().unwrap_or_else(|e| e.into_inner());
    kernels::set_simd_enabled(false);
    let scalar = bits(&op());
    kernels::set_simd_enabled(true);
    let simd = bits(&op());
    (scalar, simd)
}

/// Sprinkles a few non-finite values (NaN, ±∞) into `v`, seeded
/// deterministically — SIMD lanes must propagate them with exactly the
/// scalar payload/sign behaviour.
fn poison(mut v: Vec<f64>, seed: u64) -> Vec<f64> {
    if v.is_empty() {
        return v;
    }
    let specials = [f64::NAN, f64::INFINITY, f64::NEG_INFINITY];
    let mut x = seed | 1;
    for &s in specials.iter().take(1 + (seed as usize) % 3) {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        let idx = (x as usize) % v.len();
        v[idx] = s;
    }
    v
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// GEMM with SIMD lanes on vs off, over ragged shapes, signed
    /// zeros, and optionally poisoned operands (0: clean, 1: NaN/∞ in
    /// A, 2: in B) — every output bit must match the scalar kernels.
    #[test]
    fn simd_gemm_bit_identical_to_scalar(
        m in dim(),
        k in dim(),
        n in dim(),
        zero_bias in flag(),
        poison_which in 0usize..3,
        seed in 0u64..u64::MAX,
    ) {
        let mut a = fill(m * k, seed, zero_bias);
        let mut b = fill(k * n, seed.rotate_left(23) ^ 0xD1CE, zero_bias);
        match poison_which {
            1 => a = poison(a, seed),
            2 => b = poison(b, seed.rotate_left(9)),
            _ => {}
        }
        let (scalar, simd) = scalar_vs_simd(|| {
            let mut out = vec![0.0; m * n];
            kernels::gemm_into(&a, m, k, &b, n, &mut out);
            out
        });
        prop_assert_eq!(scalar, simd);
    }

    #[test]
    fn simd_gemm_t_bit_identical_to_scalar(
        r in dim(),
        m in dim(),
        n in dim(),
        zero_bias in flag(),
        poison_which in 0usize..3,
        seed in 0u64..u64::MAX,
    ) {
        let mut a = fill(r * m, seed, zero_bias);
        let mut b = fill(r * n, seed.rotate_left(31) ^ 0xBEEF, zero_bias);
        match poison_which {
            1 => a = poison(a, seed),
            2 => b = poison(b, seed.rotate_left(5)),
            _ => {}
        }
        let (scalar, simd) = scalar_vs_simd(|| {
            let mut out = vec![0.0; m * n];
            kernels::gemm_t_into(&a, r, m, &b, n, &mut out);
            out
        });
        prop_assert_eq!(scalar, simd);
    }

    #[test]
    fn simd_gemm_nt_bit_identical_to_scalar(
        m in dim(),
        k in dim(),
        n in dim(),
        zero_bias in flag(),
        poison_which in 0usize..3,
        seed in 0u64..u64::MAX,
    ) {
        let mut a = fill(m * k, seed, zero_bias);
        let mut b = fill(n * k, seed.rotate_left(37) ^ 0xCAFE, zero_bias);
        match poison_which {
            1 => a = poison(a, seed),
            2 => b = poison(b, seed.rotate_left(3)),
            _ => {}
        }
        let (scalar, simd) = scalar_vs_simd(|| {
            let mut out = vec![0.0; m * n];
            kernels::gemm_nt_into(&a, m, k, &b, n, &mut out);
            out
        });
        prop_assert_eq!(scalar, simd);
    }

    #[test]
    fn simd_syrk_bit_identical_to_scalar(
        r in dim(),
        m in dim(),
        zero_bias in flag(),
        poisoned in flag(),
        seed in 0u64..u64::MAX,
    ) {
        let mut a = fill(r * m, seed, zero_bias);
        if poisoned {
            a = poison(a, seed);
        }
        let (scalar, simd) = scalar_vs_simd(|| {
            let mut out = vec![0.0; m * m];
            kernels::syrk_t_into(&a, r, m, &mut out);
            out
        });
        prop_assert_eq!(scalar, simd);
    }

    #[test]
    fn simd_matvec_bit_identical_to_scalar(
        rows in dim(),
        cols in dim(),
        zero_bias in flag(),
        poison_which in 0usize..3,
        seed in 0u64..u64::MAX,
    ) {
        let mut a = fill(rows * cols, seed, zero_bias);
        let mut x = fill(cols, seed.rotate_left(11) ^ 0xF00D, zero_bias);
        match poison_which {
            1 => a = poison(a, seed),
            2 => x = poison(x, seed.rotate_left(7)),
            _ => {}
        }
        let (scalar, simd) = scalar_vs_simd(|| {
            let mut out = vec![0.0; rows];
            kernels::matvec_rows_into(&a, cols, &x, &mut out);
            out
        });
        prop_assert_eq!(scalar, simd);
    }
}

/// Deterministic SIMD-vs-scalar check on shapes large enough to engage
/// the panel-packed blocked paths (the proptest dims mostly stay under
/// the dispatch threshold).
#[test]
fn simd_large_shapes_bit_identical_to_scalar() {
    let (m, k, n) = (129, 257, 131);
    assert!(m * k * n >= 1 << 16, "shape must engage the blocked path");
    let a = fill(m * k, 0x1234_5678_9ABC_DEF0, true);
    let mut b = fill(k * n, 0x0F1E_2D3C_4B5A_6978, false);
    for idx in (19..b.len()).step_by(151) {
        b[idx] = f64::INFINITY;
    }
    for idx in (7..b.len()).step_by(173) {
        b[idx] = f64::NAN;
    }
    let (scalar, simd) = scalar_vs_simd(|| {
        let mut out = vec![0.0; m * n];
        kernels::gemm_into(&a, m, k, &b, n, &mut out);
        out
    });
    assert_eq!(scalar, simd, "large-shape gemm diverged between SIMD and scalar");

    let x = fill(k, 0x5A5A_5A5A_5A5A_5A5A, false);
    let big_a = fill(512 * k, 0xDEAD_10CC_DEAD_10CC, true);
    let (scalar, simd) = scalar_vs_simd(|| {
        let mut out = vec![0.0; 512];
        kernels::matvec_rows_into(&big_a, k, &x, &mut out);
        out
    });
    assert_eq!(scalar, simd, "large-shape matvec diverged between SIMD and scalar");
}
