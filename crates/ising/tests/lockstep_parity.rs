//! Lockstep batched annealing must be bit-identical to serial runs.
//!
//! `run_lockstep` advances W machines as one `n × W` GEMM per
//! integrator stage; its contract is that every window's final state
//! and report match a serial `run` of the same machine **bit for bit**
//! (see `dsgl_ising::lockstep`). These tests build realistic window
//! batches — differing clamps, seeds, free masks, even NaN-stuck fault
//! nodes — and compare against the serial integrator exactly.

use dsgl_ising::fault::{FaultModel, StuckNode};
use dsgl_ising::{
    anneal::Integrator, AnnealConfig, Coupling, EngineMode, NoiseModel, RealValuedDspu, Workspace,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

const N: usize = 14;

/// A dense symmetric coupling (well above the lockstep density gate)
/// with deterministic pseudo-random weights, none of them zero.
fn dense_coupling() -> Coupling {
    let mut j = Coupling::zeros(N);
    for a in 0..N {
        for b in (a + 1)..N {
            // Deterministic, sign-alternating, never exactly zero.
            let v = 0.05 + 0.9 * (((a * 31 + b * 17) % 97) as f64) / 97.0;
            let v = if (a + b) % 2 == 0 { v } else { -v };
            j.set(a, b, 0.3 * v);
        }
    }
    j
}

/// One window's machine: shared coupling, window-specific clamps and
/// free-node seeds, optional faults.
fn window_machine(j: &Coupling, seed: u64, faults: &FaultModel) -> RealValuedDspu {
    let h = vec![-1.2; N];
    let mut m = RealValuedDspu::new(j.clone(), h).expect("valid machine");
    let mut rng = StdRng::seed_from_u64(seed);
    let clamp0 = 0.8 - 0.07 * (seed as f64 % 10.0);
    m.clamp(0, clamp0).expect("clamp in rails");
    m.clamp(1, -0.4).expect("clamp in rails");
    m.inject_faults(faults, &mut rng).expect("valid faults");
    m.randomize_free(&mut rng);
    m
}

fn state_bits(m: &RealValuedDspu) -> Vec<u64> {
    m.state().iter().map(|v| v.to_bits()).collect()
}

/// Runs the batch serially (reference) and in lockstep, asserting
/// bitwise state parity and identical reports per window.
fn assert_lockstep_parity(mut batch: Vec<RealValuedDspu>, config: &AnnealConfig, what: &str) {
    let mut serial = batch.clone();
    let serial_reports: Vec<_> = serial
        .iter_mut()
        .enumerate()
        .map(|(w, m)| {
            let mut rng = StdRng::seed_from_u64(0xFEED ^ w as u64);
            m.run(config, &mut rng)
        })
        .collect();

    let mut ws = Workspace::new();
    let lockstep_reports = dsgl_ising::run_lockstep(&mut batch, config, &mut ws)
        .unwrap_or_else(|| panic!("{what}: batch should be lockstep-eligible"));

    assert_eq!(lockstep_reports.len(), serial_reports.len());
    for (w, (ls, sr)) in lockstep_reports.iter().zip(&serial_reports).enumerate() {
        assert_eq!(
            state_bits(&batch[w]),
            state_bits(&serial[w]),
            "{what}: window {w} state diverged from serial bits"
        );
        assert_eq!(ls.converged, sr.converged, "{what}: window {w} converged");
        assert_eq!(ls.steps, sr.steps, "{what}: window {w} steps");
        assert_eq!(
            ls.sim_time_ns.to_bits(),
            sr.sim_time_ns.to_bits(),
            "{what}: window {w} sim_time_ns"
        );
        assert_eq!(
            ls.final_rate.to_bits(),
            sr.final_rate.to_bits(),
            "{what}: window {w} final_rate"
        );
        assert_eq!(
            ls.energy.to_bits(),
            sr.energy.to_bits(),
            "{what}: window {w} energy"
        );
        assert_eq!(ls.sparse_steps, 0);
        assert_eq!(ls.mean_active_fraction, 1.0);
    }
}

#[test]
fn euler_lockstep_matches_serial_bitwise() {
    let j = dense_coupling();
    let batch: Vec<_> = (0..7)
        .map(|w| window_machine(&j, 100 + w, &FaultModel::none()))
        .collect();
    assert_lockstep_parity(batch, &AnnealConfig::default(), "euler");
}

#[test]
fn rk4_lockstep_matches_serial_bitwise() {
    let j = dense_coupling();
    let batch: Vec<_> = (0..6)
        .map(|w| window_machine(&j, 300 + w, &FaultModel::none()))
        .collect();
    let config = AnnealConfig {
        integrator: Integrator::Rk4,
        ..AnnealConfig::default()
    };
    assert_lockstep_parity(batch, &config, "rk4");
}

#[test]
fn lockstep_matches_serial_when_budget_truncates() {
    // A budget too short to converge: every window must stop on the
    // same step with the serial integrator's exact state and rate.
    let j = dense_coupling();
    let batch: Vec<_> = (0..5)
        .map(|w| window_machine(&j, 500 + w, &FaultModel::none()))
        .collect();
    let config = AnnealConfig {
        max_time_ns: 24.0, // 12 Euler steps, one convergence check
        ..AnnealConfig::default()
    };
    assert_lockstep_parity(batch, &config, "truncated");
}

#[test]
fn lockstep_isolates_nan_stuck_windows() {
    // Window 2 carries a NaN-stuck fault node: its own outputs go NaN
    // exactly as in a serial run, and — crucially — neighbouring
    // windows in the same GEMM batch stay bit-identical to their
    // serial runs (column independence).
    let j = dense_coupling();
    let nan_fault = FaultModel {
        stuck_nodes: vec![StuckNode {
            idx: 3,
            value: f64::NAN,
        }],
        ..FaultModel::default()
    };
    let batch: Vec<_> = (0..5)
        .map(|w| {
            let faults = if w == 2 {
                nan_fault.clone()
            } else {
                FaultModel::none()
            };
            window_machine(&j, 700 + w, &faults)
        })
        .collect();

    let mut serial = batch.clone();
    for (w, m) in serial.iter_mut().enumerate() {
        let mut rng = StdRng::seed_from_u64(0xFEED ^ w as u64);
        m.run(&AnnealConfig::default(), &mut rng);
    }
    let mut lockstep = batch;
    let mut ws = Workspace::new();
    let reports =
        dsgl_ising::run_lockstep(&mut lockstep, &AnnealConfig::default(), &mut ws)
            .expect("NaN states do not affect eligibility");
    assert_eq!(reports.len(), 5);
    assert!(
        lockstep[2].state().iter().any(|v| v.is_nan()),
        "faulted window should have propagated NaN"
    );
    for w in 0..5 {
        assert_eq!(
            state_bits(&lockstep[w]),
            state_bits(&serial[w]),
            "window {w} state diverged (NaN isolation)"
        );
    }
}

#[test]
fn lockstep_reuses_workspace_capacity_across_batches() {
    let j = dense_coupling();
    let config = AnnealConfig::default();
    let mut ws = Workspace::new();

    let mut first: Vec<_> = (0..4)
        .map(|w| window_machine(&j, 900 + w, &FaultModel::none()))
        .collect();
    dsgl_ising::run_lockstep(&mut first, &config, &mut ws).expect("eligible");
    let after_first = ws.reuses();

    let mut second: Vec<_> = (0..4)
        .map(|w| window_machine(&j, 950 + w, &FaultModel::none()))
        .collect();
    dsgl_ising::run_lockstep(&mut second, &config, &mut ws).expect("eligible");
    assert!(
        ws.reuses() > after_first,
        "second batch of the same shape must reuse pooled capacity"
    );
}

#[test]
fn lockstep_declines_ineligible_batches() {
    let j = dense_coupling();
    let config = AnnealConfig::default();
    let mut ws = Workspace::new();

    // Single window: no fusion to be had.
    let mut one = vec![window_machine(&j, 1, &FaultModel::none())];
    assert!(dsgl_ising::run_lockstep(&mut one, &config, &mut ws).is_none());

    // Dynamic noise draws per-machine RNG: must stay serial.
    let noisy = AnnealConfig {
        noise: NoiseModel {
            node_std: 0.01,
            coupler_std: 0.0,
        },
        ..config
    };
    let mut batch: Vec<_> = (0..3)
        .map(|w| window_machine(&j, 10 + w, &FaultModel::none()))
        .collect();
    assert!(dsgl_ising::run_lockstep(&mut batch, &noisy, &mut ws).is_none());

    // Adaptive engine has its own event-driven loop: must stay serial.
    let adaptive = AnnealConfig {
        mode: EngineMode::adaptive(),
        ..config
    };
    assert!(dsgl_ising::run_lockstep(&mut batch, &adaptive, &mut ws).is_none());

    // Couplings that differ across windows cannot share one GEMM.
    let mut j2 = dense_coupling();
    j2.set(0, 2, -0.123);
    let mut mixed = vec![
        window_machine(&j, 20, &FaultModel::none()),
        window_machine(&j2, 21, &FaultModel::none()),
    ];
    assert!(dsgl_ising::run_lockstep(&mut mixed, &config, &mut ws).is_none());

    // A near-empty coupling fails the density gate.
    let mut sparse = Coupling::zeros(N);
    sparse.set(0, 1, 0.4);
    let mut sparse_batch = vec![
        window_machine(&sparse, 30, &FaultModel::none()),
        window_machine(&sparse, 31, &FaultModel::none()),
    ];
    assert!(dsgl_ising::run_lockstep(&mut sparse_batch, &config, &mut ws).is_none());

    // Declining must leave the machines untouched.
    let untouched = window_machine(&j, 40, &FaultModel::none());
    let mut probe = vec![untouched.clone()];
    assert!(dsgl_ising::run_lockstep(&mut probe, &config, &mut ws).is_none());
    assert_eq!(state_bits(&probe[0]), state_bits(&untouched));
}
