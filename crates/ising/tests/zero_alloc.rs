//! Proves the zero-allocation contract on the hot integration path:
//! after one warm-up call populates the machine-owned [`Workspace`],
//! repeated `step_rk4` / `step` calls perform **zero** heap
//! allocations. A counting `#[global_allocator]` wrapper makes the
//! claim empirical rather than structural (the library itself forbids
//! `unsafe`, so the allocator shim lives here in an integration test).
//!
//! The counter is thread-local: the libtest harness allocates on its
//! own bookkeeping threads, and only allocations made *by the thread
//! running the test* belong in the measurement window.
//!
//! The machine is kept small enough that the mat-vec stays on the
//! serial path (`n·n` well under the parallel work threshold), so the
//! count covers exactly the integrator and kernel code.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

use dsgl_ising::{Coupling, NoiseModel, RealValuedDspu};
use rand::rngs::StdRng;
use rand::SeedableRng;

thread_local! {
    static TL_ALLOCS: Cell<usize> = const { Cell::new(0) };
}

fn local_allocs() -> usize {
    TL_ALLOCS.with(|c| c.get())
}

/// Passes every request straight to [`System`] while counting calls
/// made by the current thread. `try_with` keeps the allocator safe
/// during TLS teardown, when the slot is no longer accessible.
struct CountingAlloc;

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let _ = TL_ALLOCS.try_with(|c| c.set(c.get() + 1));
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let _ = TL_ALLOCS.try_with(|c| c.set(c.get() + 1));
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn ring_machine(n: usize) -> RealValuedDspu {
    let mut j = vec![0.0; n * n];
    for i in 0..n {
        let next = (i + 1) % n;
        j[i * n + next] = 0.4;
        j[next * n + i] = 0.4;
    }
    let coupling = Coupling::from_dense(n, &j).unwrap();
    RealValuedDspu::new(coupling, vec![-1.0; n]).unwrap()
}

#[test]
fn step_rk4_allocates_nothing_after_warmup() {
    let n = 96;
    let mut dspu = ring_machine(n);
    let noise = NoiseModel::none();
    let mut rng = StdRng::seed_from_u64(42);

    // Warm-up: first call sizes the RK4 stage buffers.
    dspu.step_rk4(0.05, &noise, &mut rng);
    let reuses_before = dspu.workspace().reuses();

    let before = local_allocs();
    for _ in 0..200 {
        dspu.step_rk4(0.05, &noise, &mut rng);
    }
    let after = local_allocs();

    assert_eq!(
        after - before,
        0,
        "step_rk4 allocated {} times across 200 warm steps",
        after - before
    );
    assert!(
        dspu.workspace().reuses() >= reuses_before + 200,
        "workspace reuse counter did not advance: {} -> {}",
        reuses_before,
        dspu.workspace().reuses()
    );
}

#[test]
fn euler_step_allocates_nothing_after_warmup() {
    let n = 96;
    let mut dspu = ring_machine(n);
    let noise = NoiseModel::none();
    let mut rng = StdRng::seed_from_u64(7);

    dspu.step(0.05, &noise, &mut rng);

    let before = local_allocs();
    for _ in 0..200 {
        dspu.step(0.05, &noise, &mut rng);
    }
    let after = local_allocs();

    assert_eq!(
        after - before,
        0,
        "step allocated {} times across 200 warm steps",
        after - before
    );
}

#[test]
fn energy_and_rate_probes_reuse_pooled_buffer() {
    let n = 96;
    let mut dspu = ring_machine(n);

    // Warm the probe buffer once.
    let _ = dspu.energy();
    let before = local_allocs();
    for _ in 0..100 {
        let _ = dspu.energy();
        let _ = dspu.max_free_rate();
    }
    let after = local_allocs();
    assert_eq!(
        after - before,
        0,
        "energy/max_free_rate allocated {} times across warm probes",
        after - before
    );
}
