//! Property tests for [`InstrumentSnapshot::quantile`]: monotone in
//! `q`, exact on single-bucket data, zero on empty instruments, and
//! bounded by the observed extremes — over distributions recorded
//! through a real [`TelemetrySink`], not hand-built snapshots.

use dsgl_ising::telemetry::{InstrumentSnapshot, TelemetrySink};
use proptest::prelude::*;

/// Records `values` into a live histogram instrument and freezes it.
fn recorded_snapshot(values: &[f64]) -> InstrumentSnapshot {
    let sink = TelemetrySink::enabled();
    for &v in values {
        sink.record("test.hist", v);
    }
    sink.snapshot()
        .get("test.hist")
        .expect("instrument recorded")
        .clone()
}

proptest! {
    /// For any recorded distribution, `quantile` never decreases as `q`
    /// grows, and every estimate stays within `[0, max]` — including
    /// samples past the top bucket bound, which resolve to `max`.
    #[test]
    fn quantile_is_monotone_in_q_and_bounded(
        values in proptest::collection::vec(1e-9f64..1e13, 48),
        take in 1usize..=48,
        qs in proptest::collection::vec(0.0f64..1.0, 6),
    ) {
        let values = &values[..take];
        let snap = recorded_snapshot(values);
        let mut qs = qs;
        qs.push(0.0);
        qs.push(1.0);
        qs.sort_by(f64::total_cmp);
        let estimates: Vec<f64> = qs.iter().map(|&q| snap.quantile(q)).collect();
        for (pair_q, pair_v) in qs.windows(2).zip(estimates.windows(2)) {
            prop_assert!(
                pair_v[0] <= pair_v[1],
                "quantile({}) = {} > quantile({}) = {}",
                pair_q[0], pair_v[0], pair_q[1], pair_v[1],
            );
        }
        let max = values.iter().copied().fold(f64::MIN, f64::max);
        for &e in &estimates {
            prop_assert!(e >= 0.0 && e <= max, "estimate {e} outside [0, {max}]");
        }
    }

    /// When every sample is the same value, the whole distribution sits
    /// in one bucket and the clamp against `max` makes every quantile
    /// exact — not just bucket-bound accurate.
    #[test]
    fn single_bucket_data_reports_the_exact_value(
        value in 1e-9f64..1e12,
        copies in 1usize..32,
        q in 0.0f64..1.0,
    ) {
        let snap = recorded_snapshot(&vec![value; copies]);
        prop_assert_eq!(snap.quantile(q), value);
        prop_assert_eq!(snap.quantile(1.0), value);
    }

    /// Out-of-range `q` values clamp to the `[0, 1]` endpoints instead
    /// of panicking or extrapolating.
    #[test]
    fn out_of_range_q_clamps(
        values in proptest::collection::vec(1e-6f64..1e6, 32),
        take in 1usize..=32,
    ) {
        let snap = recorded_snapshot(&values[..take]);
        prop_assert_eq!(snap.quantile(-1.0).to_bits(), snap.quantile(0.0).to_bits());
        prop_assert_eq!(snap.quantile(2.0).to_bits(), snap.quantile(1.0).to_bits());
    }
}

#[test]
fn empty_snapshot_reports_zero() {
    let empty = InstrumentSnapshot {
        name: "anneal.steps".into(),
        kind: "histogram".into(),
        count: 0,
        sum: 0.0,
        min: 0.0,
        max: 0.0,
        last: 0.0,
        buckets: vec![],
        overflow: 0,
    };
    for q in [0.0, 0.5, 0.99, 1.0] {
        assert_eq!(empty.quantile(q), 0.0, "empty instrument at q={q}");
    }
}

#[test]
fn counters_and_gauges_fall_back_to_last() {
    let sink = TelemetrySink::enabled();
    sink.counter_add("c.events", 5);
    sink.gauge_set("g.level", 0.75);
    let snap = sink.snapshot();
    let counter = snap.get("c.events").expect("counter present");
    assert_eq!(counter.quantile(0.9), counter.last);
    let gauge = snap.get("g.level").expect("gauge present");
    assert_eq!(gauge.quantile(0.5), 0.75);
}
