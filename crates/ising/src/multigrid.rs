//! Multigrid warm starts: Louvain-coarsened coarse solves prolonged
//! back onto the fine machine (the multi-resolution annealing layer).
//!
//! Natural annealing of a [`RealValuedDspu`] spends most of its steps
//! moving *long-wavelength* error: the mean voltage of a strongly-coupled
//! community drifts toward equilibrium at the pace of its slowest
//! inter-community interaction. A coarse machine — one node per
//! community — moves exactly that component at a fraction of the cost,
//! because it has orders of magnitude fewer nodes. This module builds
//! that coarse machine, anneals it, and injects the result back into the
//! fine machine as a warm start, so the expensive fine anneal only has
//! to correct the *intra-community* residual.
//!
//! # Construction
//!
//! Only the free subgraph participates. With `A, B` ranging over
//! communities of the free nodes:
//!
//! - coarse coupling `J̃_AB = Σ_{i∈A, j∈B} J_ij` (signed block sum);
//! - coarse self-reaction `h̃_A = Σ_{i∈A} h_i + 2·Σ_{i<j∈A} J_ij`
//!   (intra-community couplings fold into the quadratic self-term,
//!   since a piecewise-constant state has `σᵢ = σⱼ` inside `A`);
//! - the drive from clamped fine nodes, `B_A = Σ_{i∈A, j clamped}
//!   J_ij·σⱼ`, is carried by one extra *bias node* clamped at `+rail`
//!   and coupled to `A` with weight `B_A / rail`.
//!
//! On piecewise-constant states the fine and coarse Hamiltonians then
//! agree exactly, up to a state-independent constant (the clamped-clamped
//! and clamped-self terms the coarse machine does not model) — the
//! property test below checks energy *differences* to machine precision.
//! If any `h̃_A` fails the negativity invariant the coarsening is
//! rejected and the caller falls back to a cold start.
//!
//! # Determinism contract
//!
//! The warm start is a pure function of the machine (couplings, `h`,
//! clamps, state): Louvain runs from a fixed internal seed, the coarse
//! init restricts the already-randomized fine state (zero extra RNG
//! draws), and coarse anneals are noiseless. Fixed seed in, identical
//! warm start out — across reruns, thread counts, and SIMD builds.

use crate::anneal::{AnnealConfig, Integrator};
use crate::dspu::RealValuedDspu;
use crate::engine::EngineMode;
use crate::noise::NoiseModel;
use crate::sparse::SparseCoupling;
use crate::workspace::Workspace;
use dsgl_graph::{Coarsening, CsrGraph, Louvain};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::BTreeMap;

/// Metric names of the `mg.*` instrument family reported by multigrid
/// warm starts. Names are frozen (dashboards key on them).
pub mod instruments {
    /// Distribution: coarse levels actually built per warm start.
    pub const LEVELS: &str = "mg.levels";
    /// Counter: integration steps spent on coarse machines.
    pub const COARSE_STEPS: &str = "mg.coarse_steps";
    /// Counter: prolongations (coarse→fine state injections).
    pub const PROLONGATIONS: &str = "mg.prolongations";
    /// Counter: fine-level steps saved versus the annealing budget
    /// (recorded by the inference driver after the fine run).
    pub const FINE_STEPS_SAVED: &str = "mg.fine_steps_saved";
}

/// Fixed internal Louvain seed: the warm start must be a pure function
/// of the machine, never of caller RNG state, so request coalescing and
/// batch grouping stay bit-invisible.
const COARSEN_SEED: u64 = 0x6473_676c_2d6d_6721;

/// Below this many free nodes a coarse solve cannot pay for itself;
/// the warm start degrades to a no-op (`None` → cold start).
const MIN_COARSEN_FREE: usize = 16;

/// A coarsening must shrink the free set by at least 10% to be worth a
/// level (Louvain occasionally returns near-singleton partitions on
/// structureless graphs).
const MAX_KEEP_NUM: usize = 9;
/// Denominator of the shrink requirement (`coarse·10 ≤ fine·9`).
const MAX_KEEP_DEN: usize = 10;

/// Sweep/level caps for the internal Louvain runs: the partition only
/// seeds a warm start, so a near-modular partition found quickly beats
/// a converged one found slowly (Louvain wall time counts against the
/// multigrid speedup).
const MG_LOUVAIN_SWEEPS: usize = 8;
const MG_LOUVAIN_LEVELS: usize = 3;

/// Tuning knobs of a multigrid warm start.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MultigridOptions {
    /// Maximum number of coarse levels to build (each level coarsens
    /// the previous one; building stops early when a level stops
    /// shrinking). `0` is treated as `1`.
    pub levels: usize,
    /// Convergence tolerance for the coarse solves, in rail fractions
    /// per ns. Typically much looser than the fine tolerance: the fine
    /// anneal polishes whatever the coarse solve leaves.
    pub coarse_tol: f64,
}

impl Default for MultigridOptions {
    /// One coarse level, coarse tolerance `1e-3`.
    fn default() -> Self {
        MultigridOptions {
            levels: 1,
            coarse_tol: 1e-3,
        }
    }
}

/// What a multigrid warm start actually did.
#[derive(Debug, Clone, PartialEq)]
pub struct MultigridReport {
    /// Coarse levels built and solved.
    pub levels: usize,
    /// Total integration steps across all coarse solves.
    pub coarse_steps: usize,
    /// Prolongations performed (one per level, coarsest last).
    pub prolongations: usize,
    /// Free-node count of each coarse level, finest first (excludes
    /// each level's clamped bias node).
    pub coarse_nodes: Vec<usize>,
}

/// One level of the multigrid hierarchy: a coarse machine plus the
/// operators tying it to its parent.
struct Level {
    machine: RealValuedDspu,
    /// Parent free-node position → coarse block.
    assignment: Vec<usize>,
    /// Parent node ids of the free nodes, ascending.
    parent_free: Vec<usize>,
}

/// The window-invariant part of one coarse level: which parent free
/// node belongs to which block. Discovering this (Louvain) dominates
/// the cost of a warm start; everything else — coupling aggregation,
/// drive folding, state restriction — is a cheap linear pass.
struct LevelPartition {
    /// Parent free-node position → coarse block.
    assignment: Vec<usize>,
    /// Parent node ids of the free nodes, ascending.
    parent_free: Vec<usize>,
    /// Coarse block count (excluding the bias node).
    coarse: usize,
}

/// A reusable multigrid partition hierarchy.
///
/// The Louvain partitions depend only on the machine's coupling
/// *topology* and clamp mask, not on clamp values or state — so when
/// many machines share one graph (batch windows over one model, or
/// consecutive forecast windows), the hierarchy can be built once with
/// [`build_hierarchy`] and applied per machine with [`warm_start_with`],
/// skipping the dominant Louvain cost on all but the first call.
///
/// Applying a hierarchy to a machine with a *different* coupling
/// pattern or clamp mask is rejected (`None` → cold start) rather than
/// silently producing a bad warm start.
pub struct MultigridHierarchy {
    levels: Vec<LevelPartition>,
}

impl MultigridHierarchy {
    /// Number of coarse levels in the hierarchy.
    pub fn depth(&self) -> usize {
        self.levels.len()
    }
}

/// Free subgraph of a machine: `(free node ids (ascending), half-open
/// free-free coupling entries as positions into the free list,
/// per-free-node clamped drive)`.
type FreeSubgraph = (Vec<usize>, Vec<(u32, u32, f64)>, Vec<f64>);

/// Collects the free subgraph of `parent`: free node ids, ascending,
/// the half-open free-free coupling entries (positions into the free
/// list), and the per-free-node clamped drive `b_i = Σ_{j clamped}
/// J_ij σ_j`.
fn free_subgraph(parent: &RealValuedDspu) -> FreeSubgraph {
    let n = parent.n();
    let parent_free: Vec<usize> = (0..n).filter(|&i| parent.free[i]).collect();
    let nf = parent_free.len();
    let mut free_idx = vec![usize::MAX; n];
    for (fi, &i) in parent_free.iter().enumerate() {
        free_idx[i] = fi;
    }
    let mut ff_entries: Vec<(u32, u32, f64)> = Vec::new();
    let mut drive = vec![0.0f64; nf];
    for (fi, &i) in parent_free.iter().enumerate() {
        for (j, w) in parent.coupling.row(i) {
            if parent.free[j] {
                if j > i {
                    ff_entries.push((fi as u32, free_idx[j] as u32, w));
                }
            } else {
                drive[fi] += w * parent.state[j];
            }
        }
    }
    (parent_free, ff_entries, drive)
}

/// Discovers one level's partition on `parent`'s free subgraph, or
/// `None` when coarsening is not applicable (too few free nodes or no
/// useful shrink).
fn partition_of(parent: &RealValuedDspu, seed: u64) -> Option<LevelPartition> {
    let (parent_free, ff_entries, _) = free_subgraph(parent);
    let nf = parent_free.len();
    if nf < MIN_COARSEN_FREE {
        return None;
    }
    // Louvain clusters on coupling magnitude (sign encodes correlation
    // direction, magnitude encodes interaction strength).
    let abs_edges: Vec<(usize, usize, f64)> = ff_entries
        .iter()
        .filter(|&&(_, _, w)| w != 0.0)
        .map(|&(a, b, w)| (a as usize, b as usize, w.abs()))
        .collect();
    let graph = CsrGraph::from_edges(nf, &abs_edges).ok()?;
    let louvain = Louvain::new()
        .max_sweeps(MG_LOUVAIN_SWEEPS)
        .max_levels(MG_LOUVAIN_LEVELS);
    let mut rng = StdRng::seed_from_u64(seed);
    let communities = louvain.run(&graph, &mut rng);
    let coarsening = Coarsening::from_communities(&communities);
    let nc = coarsening.coarse_count();
    if nc == 0 || coarsening.is_trivial() || nc * MAX_KEEP_DEN > nf * MAX_KEEP_NUM {
        return None;
    }
    Some(LevelPartition {
        assignment: coarsening.assignment().to_vec(),
        parent_free,
        coarse: nc,
    })
}

/// Assembles the coarse machine of one level from its cached partition:
/// aggregates couplings and self-reactions, folds the clamped drive
/// into the bias node, and restricts the parent's state as the coarse
/// init. `None` when the partition does not match `parent`'s topology
/// or an aggregated self-reaction loses its negativity invariant.
fn assemble_level(parent: &RealValuedDspu, part: &LevelPartition) -> Option<Level> {
    let (parent_free, ff_entries, drive) = free_subgraph(parent);
    if parent_free != part.parent_free {
        return None;
    }
    let nf = parent_free.len();
    let nc = part.coarse;
    let assign = &part.assignment;
    if assign.len() != nf || assign.iter().any(|&c| c >= nc) {
        return None;
    }
    // Signed block aggregation of the free-free couplings.
    let mut intra = vec![0.0f64; nc];
    let mut inter: BTreeMap<(usize, usize), f64> = BTreeMap::new();
    for &(a, b, w) in &ff_entries {
        let (ca, cb) = (assign[a as usize], assign[b as usize]);
        if ca == cb {
            intra[ca] += w;
        } else {
            let key = if ca < cb { (ca, cb) } else { (cb, ca) };
            *inter.entry(key).or_insert(0.0) += w;
        }
    }
    // h̃_A = Σ h_i + 2·intra_A; the machine invariant h < 0 must
    // survive aggregation or the coarse system has no Lyapunov bound.
    let mut h_c = vec![0.0f64; nc + 1];
    for (fi, &i) in parent_free.iter().enumerate() {
        h_c[assign[fi]] += parent.h[i];
    }
    for (hc, &ia) in h_c.iter_mut().zip(&intra) {
        *hc += 2.0 * ia;
        if *hc >= 0.0 {
            return None;
        }
    }
    h_c[nc] = -1.0; // bias node: clamped, value irrelevant but must be < 0
    let rail = parent.rail;
    let mut block_drive = vec![0.0f64; nc];
    for (fi, &d) in drive.iter().enumerate() {
        block_drive[assign[fi]] += d;
    }
    let mut entries: Vec<(u32, u32, f64)> = inter
        .into_iter()
        .map(|((a, b), w)| (a as u32, b as u32, w))
        .collect();
    for (c, &bd) in block_drive.iter().enumerate() {
        if bd != 0.0 {
            // Bias node clamped at +rail × weight B_A/rail injects
            // exactly the aggregated clamped drive B_A into block A.
            entries.push((c as u32, nc as u32, bd / rail));
        }
    }
    let coupling = SparseCoupling::from_entries(nc + 1, &entries).ok()?;
    let mut machine = RealValuedDspu::from_sparse(coupling, h_c).ok()?;
    machine.set_rail(rail).ok()?;
    // Aggregated |h̃| grows with block size; stretch the coarse RC
    // constant to keep the Euler step dt·|h̃|/C inside the parent's
    // stability margin. Pure time reparametrisation — the fixed point
    // σ = -J̃σ/h̃ is untouched.
    let h_fine_max = parent_free
        .iter()
        .map(|&i| parent.h[i].abs())
        .fold(0.0f64, f64::max);
    let h_coarse_max = machine.h[..nc].iter().map(|v| v.abs()).fold(0.0f64, f64::max);
    let cap_scale = if h_fine_max > 0.0 {
        (h_coarse_max / h_fine_max).max(1.0)
    } else {
        1.0
    };
    machine
        .set_capacitance(parent.capacitance * cap_scale)
        .ok()?;
    machine.clamp(nc, rail).ok()?;
    // Coarse init restricts the parent's (already randomized) free
    // state — the warm start consumes zero RNG draws of its own.
    let mut sums = vec![0.0f64; nc];
    let mut counts = vec![0usize; nc];
    for (fi, &i) in parent_free.iter().enumerate() {
        sums[assign[fi]] += parent.state[i];
        counts[assign[fi]] += 1;
    }
    let mut init = vec![0.0f64; nc + 1];
    for ((v, s), &c) in init.iter_mut().zip(&sums).zip(&counts) {
        if c == 0 {
            return None;
        }
        *v = (s / c as f64).clamp(-rail, rail);
    }
    init[nc] = rail;
    machine.set_state(&init).ok()?;
    if let Some(token) = &parent.cancel {
        machine.set_cancel(token.clone());
    }
    Some(Level {
        machine,
        assignment: assign.clone(),
        parent_free,
    })
}

/// Writes the coarse block values of `level` onto its parent's free
/// nodes (piecewise-constant prolongation), clamped to the parent's
/// rails. Returns `false` if the prolonged state was rejected.
fn prolong_into(level: &Level, coarse_state: &[f64], parent: &mut RealValuedDspu) -> bool {
    let rail = parent.rail;
    let mut state = parent.state.clone();
    for (fi, &i) in level.parent_free.iter().enumerate() {
        state[i] = coarse_state[level.assignment[fi]].clamp(-rail, rail);
    }
    parent.set_state(&state).is_ok()
}

/// Builds the reusable partition hierarchy for `dspu`: up to
/// `opts.levels` Louvain coarsenings of the free subgraph, each level
/// partitioning the previous one's coarse machine.
///
/// The result depends only on the coupling topology and clamp mask, so
/// it can be shared across machines over the same graph (batch windows,
/// coalesced requests) via [`warm_start_with`] — amortising the Louvain
/// cost, which dominates a one-shot [`multigrid_warm_start`]. `None`
/// when no level can be built (the caller should cold-start).
pub fn build_hierarchy(
    dspu: &RealValuedDspu,
    opts: &MultigridOptions,
) -> Option<MultigridHierarchy> {
    if dspu.cancel_requested() {
        return None;
    }
    let max_levels = opts.levels.max(1);
    let mut partitions: Vec<LevelPartition> = Vec::new();
    // Levels below the first need their parent's *machine* to partition
    // against, so assemble transiently while building.
    let mut machines: Vec<RealValuedDspu> = Vec::new();
    for level in 0..max_levels {
        let parent: &RealValuedDspu = match machines.last() {
            Some(m) => m,
            None => dspu,
        };
        let Some(part) = partition_of(parent, COARSEN_SEED.wrapping_add(level as u64)) else {
            break;
        };
        let Some(built) = assemble_level(parent, &part) else {
            break;
        };
        partitions.push(part);
        machines.push(built.machine);
    }
    if partitions.is_empty() {
        return None;
    }
    Some(MultigridHierarchy { levels: partitions })
}

/// Multigrid warm start: builds up to `opts.levels` coarse machines,
/// anneals them coarsest-first (cascadic V-cycle), and prolongs the
/// result onto `dspu`'s free nodes. The fine machine is modified **only
/// on success**: any fallback or cancellation returns `None` with
/// `dspu`'s state untouched, so callers degrade to a cold start with
/// bit-identical legacy behaviour.
///
/// Coarse solves run the noiseless adaptive engine with
/// `opts.coarse_tol`, inheriting `base`'s timestep; each level's time
/// budget stretches with its capacitance rescaling so the same number
/// of RC constants fit. `mg.levels`, `mg.coarse_steps` and
/// `mg.prolongations` are recorded into `dspu`'s telemetry sink
/// ([`instruments`]); an attached [`crate::cancel::CancelToken`] is
/// polled by every coarse solve.
///
/// Equivalent to [`build_hierarchy`] followed by [`warm_start_with`];
/// callers annealing many machines over one graph should use that pair
/// to pay the Louvain cost once.
pub fn multigrid_warm_start(
    dspu: &mut RealValuedDspu,
    opts: &MultigridOptions,
    base: &AnnealConfig,
) -> Option<MultigridReport> {
    let hierarchy = build_hierarchy(dspu, opts)?;
    warm_start_with(dspu, &hierarchy, opts, base)
}

/// Applies a prebuilt [`MultigridHierarchy`] to `dspu` as a warm start:
/// re-aggregates each level's couplings and clamped drive from the
/// machine's *current* values, anneals coarsest-first, and prolongs
/// down. Semantics otherwise match [`multigrid_warm_start`]: the fine
/// machine is modified only on success, and `None` (topology mismatch,
/// invariant violation, cancellation) means the caller cold-starts.
pub fn warm_start_with(
    dspu: &mut RealValuedDspu,
    hierarchy: &MultigridHierarchy,
    opts: &MultigridOptions,
    base: &AnnealConfig,
) -> Option<MultigridReport> {
    if !opts.coarse_tol.is_finite() || opts.coarse_tol <= 0.0 {
        return None;
    }
    if dspu.cancel_requested() {
        return None;
    }
    let mut chain: Vec<Level> = Vec::new();
    for part in &hierarchy.levels {
        let parent: &RealValuedDspu = match chain.last() {
            Some(l) => &l.machine,
            None => dspu,
        };
        match assemble_level(parent, part) {
            Some(l) => chain.push(l),
            None => return None,
        }
    }
    if chain.is_empty() {
        return None;
    }
    let base_budget = base.max_time_ns;
    // Noiseless adaptive Euler: dispatches to the event-driven engine,
    // consumes zero RNG draws, and drains the active set quickly at the
    // loose coarse tolerance.
    let mut coarse_cfg = *base;
    coarse_cfg.tolerance = opts.coarse_tol;
    coarse_cfg.noise = NoiseModel::none();
    coarse_cfg.integrator = Integrator::Euler;
    coarse_cfg.mode = EngineMode::adaptive();
    // Never drawn from (coarse solves are noiseless); `run` just needs
    // an RNG by signature.
    let mut rng = StdRng::seed_from_u64(COARSEN_SEED);
    let mut coarse_steps = 0usize;
    let mut prolongations = 0usize;
    let mut pool = Workspace::new();
    let fine_capacitance = dspu.capacitance;
    for l in (0..chain.len()).rev() {
        {
            let m = &mut chain[l].machine;
            coarse_cfg.max_time_ns = base_budget * (m.capacitance / fine_capacitance).max(1.0);
            m.adopt_workspace(pool);
            let report = m.run(&coarse_cfg, &mut rng);
            coarse_steps += report.steps;
            pool = m.take_workspace();
            if m.cancel_requested() {
                return None;
            }
        }
        let coarse_state = chain[l].machine.state.clone();
        let ok = if l == 0 {
            prolong_into(&chain[l], &coarse_state, dspu)
        } else {
            let (head, tail) = chain.split_at_mut(l);
            prolong_into(&tail[0], &coarse_state, &mut head[l - 1].machine)
        };
        if !ok {
            return None;
        }
        prolongations += 1;
    }
    let levels = chain.len();
    let sink = dspu.telemetry();
    if sink.is_enabled() {
        sink.record(instruments::LEVELS, levels as f64);
        sink.counter_add(instruments::COARSE_STEPS, coarse_steps as u64);
        sink.counter_add(instruments::PROLONGATIONS, prolongations as u64);
    }
    Some(MultigridReport {
        levels,
        coarse_steps,
        prolongations,
        coarse_nodes: chain
            .iter()
            .map(|l| l.machine.n().saturating_sub(1))
            .collect(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cancel::CancelToken;
    use crate::coupling::Coupling;
    use proptest::prelude::*;

    /// A machine with `blocks` planted communities of `per` nodes:
    /// strong intra-block couplings, weak cross-block couplings, the
    /// first `clamped` nodes clamped to alternating ±0.5.
    fn community_machine(blocks: usize, per: usize, clamped: usize) -> RealValuedDspu {
        let n = blocks * per;
        let mut j = Coupling::zeros(n);
        let mut x = 0x1234_5678_9abc_def0u64;
        let mut next = || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            (x % 1000) as f64 / 1000.0
        };
        for b in 0..blocks {
            let lo = b * per;
            for i in lo..lo + per {
                for k in (i + 1)..lo + per {
                    if next() < 0.7 {
                        j.set(i, k, 0.5 + 0.5 * next());
                    }
                }
            }
            if b + 1 < blocks {
                // sparse weak bridges to the next block
                j.set(lo, lo + per, 0.05);
                j.set(lo + 1, lo + per + 1, -0.05);
            }
        }
        let h: Vec<f64> = (0..n).map(|i| -(1.0 + j.row_abs_sum(i))).collect();
        let mut m = RealValuedDspu::new(j, h).unwrap();
        for i in 0..clamped {
            m.clamp(i, if i % 2 == 0 { 0.5 } else { -0.5 }).unwrap();
        }
        m
    }

    /// One-shot level build: the partition-then-assemble pair the
    /// public drivers compose.
    fn coarsen_machine(parent: &RealValuedDspu, seed: u64) -> Option<Level> {
        let part = partition_of(parent, seed)?;
        assemble_level(parent, &part)
    }

    fn fine_state_for(level: &Level, parent: &RealValuedDspu, block_vals: &[f64]) -> Vec<f64> {
        let mut s = parent.state().to_vec();
        for (fi, &i) in level.parent_free.iter().enumerate() {
            s[i] = block_vals[level.assignment[fi]];
        }
        s
    }

    #[test]
    fn coarse_energy_differences_match_fine_on_piecewise_constant_states() {
        let mut fine = community_machine(4, 8, 6);
        let mut rng = StdRng::seed_from_u64(3);
        fine.randomize_free(&mut rng);
        let level = coarsen_machine(&fine, 1).expect("coarsenable");
        let nc = level.machine.n() - 1;
        assert!(nc >= 2);
        let vals_a: Vec<f64> = (0..nc).map(|c| 0.3 - 0.11 * c as f64).collect();
        let vals_b: Vec<f64> = (0..nc).map(|c| -0.2 + 0.07 * c as f64).collect();
        // Fine energies of the two piecewise-constant states.
        let sa = fine_state_for(&level, &fine, &vals_a);
        let sb = fine_state_for(&level, &fine, &vals_b);
        fine.set_state(&sa).unwrap();
        let ea_fine = fine.energy();
        fine.set_state(&sb).unwrap();
        let eb_fine = fine.energy();
        // Coarse energies of the matching coarse states.
        let mut coarse = level.machine.clone();
        let mut ca: Vec<f64> = vals_a.clone();
        ca.push(coarse.rail());
        let mut cb: Vec<f64> = vals_b.clone();
        cb.push(coarse.rail());
        coarse.set_state(&ca).unwrap();
        let ea_coarse = coarse.energy();
        coarse.set_state(&cb).unwrap();
        let eb_coarse = coarse.energy();
        // The offsets differ (clamped-clamped terms) but the
        // differences must agree to machine precision.
        let d_fine = ea_fine - eb_fine;
        let d_coarse = ea_coarse - eb_coarse;
        assert!(
            (d_fine - d_coarse).abs() <= 1e-9 * d_fine.abs().max(1.0),
            "fine ΔH {d_fine} vs coarse ΔH {d_coarse}"
        );
    }

    #[test]
    fn warm_start_reduces_fine_steps_at_same_answer() {
        let config = AnnealConfig {
            mode: EngineMode::adaptive(),
            ..AnnealConfig::default()
        };
        let opts = MultigridOptions::default();
        let mut cold = community_machine(4, 10, 8);
        let mut rng = StdRng::seed_from_u64(11);
        cold.randomize_free(&mut rng);
        let mut warm = cold.clone();
        let cold_report = cold.run(&config, &mut StdRng::seed_from_u64(0));
        let mg = multigrid_warm_start(&mut warm, &opts, &config).expect("applies");
        assert_eq!(mg.levels, 1);
        assert!(mg.prolongations == 1);
        assert!(mg.coarse_steps > 0);
        assert!(!mg.coarse_nodes.is_empty());
        let warm_report = warm.run(&config, &mut StdRng::seed_from_u64(0));
        assert!(cold_report.converged && warm_report.converged);
        assert!(
            warm_report.steps < cold_report.steps,
            "warm {} vs cold {} steps",
            warm_report.steps,
            cold_report.steps
        );
        // Same unique fixed point (the system is diagonally dominant).
        for (a, b) in cold.state().iter().zip(warm.state()) {
            assert!((a - b).abs() < 5e-3, "{a} vs {b}");
        }
    }

    #[test]
    fn warm_start_is_bit_deterministic_across_reruns() {
        let config = AnnealConfig::adaptive();
        let opts = MultigridOptions {
            levels: 2,
            coarse_tol: 1e-3,
        };
        let make = || {
            let mut m = community_machine(4, 10, 8);
            m.randomize_free(&mut StdRng::seed_from_u64(5));
            m
        };
        let mut a = make();
        let mut b = make();
        let ra = multigrid_warm_start(&mut a, &opts, &config).expect("applies");
        let rb = multigrid_warm_start(&mut b, &opts, &config).expect("applies");
        assert_eq!(ra, rb);
        let bits_a: Vec<u64> = a.state().iter().map(|v| v.to_bits()).collect();
        let bits_b: Vec<u64> = b.state().iter().map(|v| v.to_bits()).collect();
        assert_eq!(bits_a, bits_b);
    }

    #[test]
    fn cached_hierarchy_matches_one_shot_bitwise() {
        let config = AnnealConfig::adaptive();
        let opts = MultigridOptions {
            levels: 2,
            coarse_tol: 1e-3,
        };
        let make = |seed: u64| {
            let mut m = community_machine(4, 10, 8);
            m.randomize_free(&mut StdRng::seed_from_u64(seed));
            m
        };
        let mut one_shot = make(5);
        let hier = build_hierarchy(&one_shot, &opts).expect("coarsenable");
        assert!(hier.depth() >= 1);
        let mut cached = one_shot.clone();
        let ra = multigrid_warm_start(&mut one_shot, &opts, &config).expect("applies");
        let rb = warm_start_with(&mut cached, &hier, &opts, &config).expect("applies");
        assert_eq!(ra, rb);
        let bits = |m: &RealValuedDspu| -> Vec<u64> {
            m.state().iter().map(|v| v.to_bits()).collect()
        };
        assert_eq!(bits(&one_shot), bits(&cached));
        // The hierarchy depends only on topology and the clamp mask, so
        // it stays valid when clamp values and free states change.
        let mut next_one_shot = make(9);
        for i in 0..8 {
            next_one_shot
                .clamp(i, if i % 2 == 0 { -0.3 } else { 0.7 })
                .unwrap();
        }
        let mut next_cached = next_one_shot.clone();
        let rc = multigrid_warm_start(&mut next_one_shot, &opts, &config).expect("applies");
        let rd = warm_start_with(&mut next_cached, &hier, &opts, &config).expect("applies");
        assert_eq!(rc, rd);
        assert_eq!(bits(&next_one_shot), bits(&next_cached));
        // A machine with a different clamp mask invalidates the cache.
        let mut other = community_machine(4, 10, 9);
        other.randomize_free(&mut StdRng::seed_from_u64(5));
        assert!(warm_start_with(&mut other, &hier, &opts, &config).is_none());
    }

    #[test]
    fn cancelled_machine_is_left_untouched() {
        let mut m = community_machine(3, 8, 4);
        m.randomize_free(&mut StdRng::seed_from_u64(2));
        let token = CancelToken::new();
        token.cancel();
        m.set_cancel(token);
        let before = m.state().to_vec();
        let result = multigrid_warm_start(
            &mut m,
            &MultigridOptions::default(),
            &AnnealConfig::default(),
        );
        assert!(result.is_none());
        assert_eq!(before, m.state());
    }

    #[test]
    fn degenerate_machines_fall_back_to_cold() {
        let config = AnnealConfig::default();
        let opts = MultigridOptions::default();
        // Too few free nodes.
        let mut tiny = RealValuedDspu::new(Coupling::zeros(4), vec![-1.0; 4]).unwrap();
        assert!(multigrid_warm_start(&mut tiny, &opts, &config).is_none());
        // No couplings at all: Louvain yields singletons (trivial).
        let mut loose = RealValuedDspu::new(Coupling::zeros(32), vec![-1.0; 32]).unwrap();
        assert!(multigrid_warm_start(&mut loose, &opts, &config).is_none());
        // Invalid tolerance.
        let mut m = community_machine(4, 10, 8);
        let bad = MultigridOptions {
            levels: 1,
            coarse_tol: 0.0,
        };
        assert!(multigrid_warm_start(&mut m, &bad, &config).is_none());
    }

    #[test]
    fn positive_aggregated_self_reaction_is_rejected() {
        // Strong ferromagnetic intra-couplings with barely-negative h:
        // h̃ = Σh + 2·intra goes non-negative, so coarsening must bail.
        let n = 24;
        let mut j = Coupling::zeros(n);
        for i in 0..n - 1 {
            j.set(i, i + 1, 1.0);
        }
        let h = vec![-0.5; n];
        let mut m = RealValuedDspu::new(j, h).unwrap();
        m.randomize_free(&mut StdRng::seed_from_u64(1));
        assert!(multigrid_warm_start(
            &mut m,
            &MultigridOptions::default(),
            &AnnealConfig::default()
        )
        .is_none());
    }

    #[test]
    fn telemetry_reports_mg_counters() {
        let sink = crate::telemetry::TelemetrySink::enabled();
        let mut m = community_machine(4, 10, 8);
        m.randomize_free(&mut StdRng::seed_from_u64(7));
        m.set_telemetry(sink.clone());
        let report = multigrid_warm_start(
            &mut m,
            &MultigridOptions::default(),
            &AnnealConfig::adaptive(),
        )
        .expect("applies");
        let snap = sink.snapshot();
        assert_eq!(snap.counter(instruments::COARSE_STEPS), report.coarse_steps as u64);
        assert_eq!(snap.counter(instruments::PROLONGATIONS), 1);
        let levels = snap.get(instruments::LEVELS).expect("recorded");
        assert_eq!(levels.count, 1);
        assert_eq!(levels.sum, report.levels as f64);
    }

    proptest! {
        /// The coarse Hamiltonian equals the block-aggregated fine
        /// Hamiltonian on piecewise-constant states, up to the fixed
        /// clamped-state offset: energy differences agree.
        #[test]
        fn energy_difference_identity(
            weights in proptest::collection::vec(-1.0f64..1.0, 40),
            va in proptest::collection::vec(-0.9f64..0.9, 8),
            vb in proptest::collection::vec(-0.9f64..0.9, 8),
        ) {
            let n = 20;
            let mut j = Coupling::zeros(n);
            // Fixed sparse pattern, random weights: ring + long chords.
            let mut wi = 0usize;
            for i in 0..n {
                j.set(i, (i + 1) % n, weights[wi]);
                wi += 1;
            }
            for i in 0..n / 2 {
                j.set(i, i + n / 2, weights[wi]);
                wi += 1;
            }
            let h: Vec<f64> = (0..n).map(|i| -(1.0 + j.row_abs_sum(i))).collect();
            let mut fine = RealValuedDspu::new(j, h).unwrap();
            for i in 0..3 {
                fine.clamp(i, 0.4 - 0.3 * i as f64).unwrap();
            }
            fine.randomize_free(&mut StdRng::seed_from_u64(9));
            if let Some(level) = coarsen_machine(&fine, 2) {
                let nc = level.machine.n() - 1;
                let vals_a: Vec<f64> = (0..nc).map(|c| va[c % va.len()]).collect();
                let vals_b: Vec<f64> = (0..nc).map(|c| vb[c % vb.len()]).collect();
                let sa = fine_state_for(&level, &fine, &vals_a);
                let sb = fine_state_for(&level, &fine, &vals_b);
                fine.set_state(&sa).unwrap();
                let ea = fine.energy();
                fine.set_state(&sb).unwrap();
                let eb = fine.energy();
                let mut coarse = level.machine.clone();
                let mut ca = vals_a.clone();
                ca.push(coarse.rail());
                let mut cb = vals_b.clone();
                cb.push(coarse.rail());
                coarse.set_state(&ca).unwrap();
                let fa = coarse.energy();
                coarse.set_state(&cb).unwrap();
                let fb = coarse.energy();
                let d_fine = ea - eb;
                let d_coarse = fa - fb;
                prop_assert!(
                    (d_fine - d_coarse).abs() <= 1e-9 * d_fine.abs().max(1.0),
                    "fine ΔH {} vs coarse ΔH {}", d_fine, d_coarse
                );
            }
        }
    }
}
