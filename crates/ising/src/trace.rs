//! Voltage-vs-time recording of annealing runs (paper Fig. 4).

use serde::{Deserialize, Serialize};

/// A sampled record of machine state over simulated time.
///
/// Recording is strided: a snapshot is kept only when at least
/// `stride_ns` of simulated time has elapsed since the previous one (the
/// first offered sample is always kept). An optional ring-buffer cap
/// ([`with_capacity_bound`](Self::with_capacity_bound)) bounds the
/// retained history so telemetry-heavy runs (e.g. long adaptive anneals
/// traced step-by-step) never grow unbounded state snapshots.
///
/// # Example
///
/// ```
/// use dsgl_ising::Trace;
///
/// let mut t = Trace::new(1.0);
/// t.record(0.0, &[0.1]);
/// t.record(0.5, &[0.2]); // dropped, within stride
/// t.record(1.0, &[0.3]);
/// assert_eq!(t.len(), 2);
/// assert_eq!(t.series(0), vec![(0.0, 0.1), (1.0, 0.3)]);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Trace {
    stride_ns: f64,
    times: Vec<f64>,
    states: Vec<Vec<f64>>,
    /// Ring-buffer bound on kept samples; `None` keeps everything.
    #[serde(default)]
    capacity_bound: Option<usize>,
}

impl Trace {
    /// Creates a trace that keeps at most one sample per `stride_ns`.
    ///
    /// # Panics
    ///
    /// Panics if `stride_ns` is negative or non-finite.
    pub fn new(stride_ns: f64) -> Self {
        assert!(
            stride_ns.is_finite() && stride_ns >= 0.0,
            "stride must be a non-negative finite time"
        );
        Trace {
            stride_ns,
            times: Vec::new(),
            states: Vec::new(),
            capacity_bound: None,
        }
    }

    /// Like [`new`](Self::new), but keeps at most `max_samples` samples:
    /// once full, recording a new sample drops the oldest one
    /// (ring-buffer semantics), so memory stays bounded on arbitrarily
    /// long runs while the trace always holds the most recent window of
    /// the dynamics.
    ///
    /// # Panics
    ///
    /// Panics if `stride_ns` is negative or non-finite, or if
    /// `max_samples` is zero.
    pub fn with_capacity_bound(stride_ns: f64, max_samples: usize) -> Self {
        assert!(max_samples > 0, "capacity bound must be at least one sample");
        let mut trace = Trace::new(stride_ns);
        trace.capacity_bound = Some(max_samples);
        trace
    }

    /// The ring-buffer bound, when one was set.
    pub fn capacity_bound(&self) -> Option<usize> {
        self.capacity_bound
    }

    /// Offers a sample; it is kept if the stride has elapsed. When a
    /// [capacity bound](Self::with_capacity_bound) is set and reached,
    /// the oldest kept sample is evicted first.
    pub fn record(&mut self, t_ns: f64, state: &[f64]) {
        if let Some(&last) = self.times.last() {
            if t_ns - last < self.stride_ns {
                return;
            }
        }
        if let Some(bound) = self.capacity_bound {
            if self.times.len() >= bound {
                self.times.remove(0);
                self.states.remove(0);
            }
        }
        self.times.push(t_ns);
        self.states.push(state.to_vec());
    }

    /// Number of kept samples.
    pub fn len(&self) -> usize {
        self.times.len()
    }

    /// Whether no samples were kept.
    pub fn is_empty(&self) -> bool {
        self.times.is_empty()
    }

    /// Sample timestamps in ns.
    pub fn times(&self) -> &[f64] {
        &self.times
    }

    /// The state snapshot at sample `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= len()`.
    pub fn state_at(&self, idx: usize) -> &[f64] {
        &self.states[idx]
    }

    /// Time series of one node as `(t_ns, value)` pairs.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range for the recorded states.
    pub fn series(&self, node: usize) -> Vec<(f64, f64)> {
        self.times
            .iter()
            .zip(&self.states)
            .map(|(&t, s)| (t, s[node]))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stride_filtering() {
        let mut t = Trace::new(2.0);
        t.record(0.0, &[1.0]);
        t.record(1.0, &[2.0]);
        t.record(2.0, &[3.0]);
        t.record(5.0, &[4.0]);
        assert_eq!(t.times(), &[0.0, 2.0, 5.0]);
        assert_eq!(t.state_at(1), &[3.0]);
    }

    #[test]
    fn zero_stride_keeps_everything() {
        let mut t = Trace::new(0.0);
        for i in 0..5 {
            t.record(i as f64 * 0.1, &[i as f64]);
        }
        assert_eq!(t.len(), 5);
    }

    #[test]
    fn empty_trace() {
        let t = Trace::new(1.0);
        assert!(t.is_empty());
        assert_eq!(t.len(), 0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_stride_panics() {
        Trace::new(-1.0);
    }

    #[test]
    fn capacity_bound_evicts_oldest() {
        let mut t = Trace::with_capacity_bound(0.0, 3);
        assert_eq!(t.capacity_bound(), Some(3));
        for i in 0..10 {
            t.record(i as f64, &[i as f64]);
        }
        assert_eq!(t.len(), 3);
        assert_eq!(t.times(), &[7.0, 8.0, 9.0]);
        assert_eq!(t.state_at(0), &[7.0]);
        assert_eq!(t.state_at(2), &[9.0]);
    }

    #[test]
    fn capacity_bound_respects_stride() {
        let mut t = Trace::with_capacity_bound(2.0, 2);
        t.record(0.0, &[0.0]);
        t.record(1.0, &[1.0]); // dropped: within stride
        t.record(2.0, &[2.0]);
        t.record(4.0, &[4.0]); // evicts t=0
        assert_eq!(t.times(), &[2.0, 4.0]);
    }

    #[test]
    #[should_panic(expected = "at least one sample")]
    fn zero_capacity_bound_panics() {
        Trace::with_capacity_bound(1.0, 0);
    }

    #[test]
    fn unbounded_trace_reports_no_bound() {
        assert_eq!(Trace::new(1.0).capacity_bound(), None);
    }

    #[test]
    fn per_node_series() {
        let mut t = Trace::new(0.0);
        t.record(0.0, &[1.0, 10.0]);
        t.record(1.0, &[2.0, 20.0]);
        assert_eq!(t.series(1), vec![(0.0, 10.0), (1.0, 20.0)]);
    }
}
