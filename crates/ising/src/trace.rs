//! Voltage-vs-time recording of annealing runs (paper Fig. 4).

use serde::{Deserialize, Serialize};

/// A sampled record of machine state over simulated time.
///
/// Recording is strided: a snapshot is kept only when at least
/// `stride_ns` of simulated time has elapsed since the previous one (the
/// first offered sample is always kept).
///
/// # Example
///
/// ```
/// use dsgl_ising::Trace;
///
/// let mut t = Trace::new(1.0);
/// t.record(0.0, &[0.1]);
/// t.record(0.5, &[0.2]); // dropped, within stride
/// t.record(1.0, &[0.3]);
/// assert_eq!(t.len(), 2);
/// assert_eq!(t.series(0), vec![(0.0, 0.1), (1.0, 0.3)]);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Trace {
    stride_ns: f64,
    times: Vec<f64>,
    states: Vec<Vec<f64>>,
}

impl Trace {
    /// Creates a trace that keeps at most one sample per `stride_ns`.
    ///
    /// # Panics
    ///
    /// Panics if `stride_ns` is negative or non-finite.
    pub fn new(stride_ns: f64) -> Self {
        assert!(
            stride_ns.is_finite() && stride_ns >= 0.0,
            "stride must be a non-negative finite time"
        );
        Trace {
            stride_ns,
            times: Vec::new(),
            states: Vec::new(),
        }
    }

    /// Offers a sample; it is kept if the stride has elapsed.
    pub fn record(&mut self, t_ns: f64, state: &[f64]) {
        if let Some(&last) = self.times.last() {
            if t_ns - last < self.stride_ns {
                return;
            }
        }
        self.times.push(t_ns);
        self.states.push(state.to_vec());
    }

    /// Number of kept samples.
    pub fn len(&self) -> usize {
        self.times.len()
    }

    /// Whether no samples were kept.
    pub fn is_empty(&self) -> bool {
        self.times.is_empty()
    }

    /// Sample timestamps in ns.
    pub fn times(&self) -> &[f64] {
        &self.times
    }

    /// The state snapshot at sample `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= len()`.
    pub fn state_at(&self, idx: usize) -> &[f64] {
        &self.states[idx]
    }

    /// Time series of one node as `(t_ns, value)` pairs.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range for the recorded states.
    pub fn series(&self, node: usize) -> Vec<(f64, f64)> {
        self.times
            .iter()
            .zip(&self.states)
            .map(|(&t, s)| (t, s[node]))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stride_filtering() {
        let mut t = Trace::new(2.0);
        t.record(0.0, &[1.0]);
        t.record(1.0, &[2.0]);
        t.record(2.0, &[3.0]);
        t.record(5.0, &[4.0]);
        assert_eq!(t.times(), &[0.0, 2.0, 5.0]);
        assert_eq!(t.state_at(1), &[3.0]);
    }

    #[test]
    fn zero_stride_keeps_everything() {
        let mut t = Trace::new(0.0);
        for i in 0..5 {
            t.record(i as f64 * 0.1, &[i as f64]);
        }
        assert_eq!(t.len(), 5);
    }

    #[test]
    fn empty_trace() {
        let t = Trace::new(1.0);
        assert!(t.is_empty());
        assert_eq!(t.len(), 0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_stride_panics() {
        Trace::new(-1.0);
    }

    #[test]
    fn per_node_series() {
        let mut t = Trace::new(0.0);
        t.record(0.0, &[1.0, 10.0]);
        t.record(1.0, &[2.0, 20.0]);
        assert_eq!(t.series(1), vec![(0.0, 10.0), (1.0, 20.0)]);
    }
}
