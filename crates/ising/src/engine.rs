//! Event-driven adaptive annealing: active-set integration of the
//! Real-Valued DSPU.
//!
//! The analog machine reaches equilibrium quickly precisely because
//! settled nodes stop contributing: a capacitor whose net current is
//! zero costs nothing. The fixed-schedule simulator, by contrast, pays
//! the full coupling mat-vec for every node at every step until a
//! *global* convergence check fires. This module removes that wasted
//! work.
//!
//! The engine tracks, per free node, the effective rate
//! `|Δσᵢ|/dt` the next Euler step would produce, and keeps an **active
//! set** of nodes whose rate is at or above the convergence tolerance.
//! Only active nodes are integrated; the coupling currents
//! `jsᵢ = Σⱼ Jᵢⱼσⱼ` are maintained *incrementally* — when node `i`
//! moves by `Δ`, only its CSR row is walked to update the neighbours'
//! currents, and any neighbour whose rate climbs back above tolerance
//! re-enters the active set. Annealing exits the moment the active set
//! drains (validated against a fresh full mat-vec), so convergence is
//! detected per-step rather than at `check_every` granularity.
//!
//! Two guard rails keep the fast path equilibrium-equivalent to the
//! full integrator:
//!
//! - while the active fraction is above
//!   [`AdaptiveConfig::dense_fraction`], the engine takes plain
//!   full-matvec steps (dense early-phase dynamics pay no event
//!   bookkeeping overhead, and the trajectory matches the strict
//!   integrator's Jacobi updates);
//! - every [`AdaptiveConfig::refresh_every`] sparse steps the
//!   incremental currents are recomputed from scratch and the active
//!   set rebuilt over all free nodes, bounding floating-point drift.
//!
//! The engine is selected with [`EngineMode::Adaptive`] on
//! [`AnnealConfig::mode`](crate::AnnealConfig); the default
//! [`EngineMode::Strict`] preserves the fixed-schedule integrator
//! bit-for-bit. Noisy runs and RK4 integration always take the strict
//! path (noise keeps every node active, so there is nothing to skip).

use crate::anneal::{AnnealConfig, AnnealReport};
use crate::dspu::RealValuedDspu;
use crate::trace::Trace;
use serde::{Deserialize, Serialize};

/// Tuning of the event-driven integration path.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AdaptiveConfig {
    /// Active-set fraction (of free nodes) above which the engine takes
    /// full-matvec steps instead of event-driven sparse steps. `0.0`
    /// forces sparse stepping always; `1.0` disables it.
    pub dense_fraction: f64,
    /// Sparse steps between full recomputations of the incremental
    /// coupling currents (and a full active-set rescan). Bounds the
    /// floating-point drift of the incremental updates.
    pub refresh_every: usize,
}

impl Default for AdaptiveConfig {
    /// Sparse stepping below 50 % active occupancy, refresh every 64
    /// sparse steps.
    fn default() -> Self {
        AdaptiveConfig {
            dense_fraction: 0.5,
            refresh_every: 64,
        }
    }
}

/// Which integration engine an annealing run uses.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub enum EngineMode {
    /// The fixed-schedule integrator: every node steps every `dt`,
    /// convergence is checked every `check_every` steps. Bit-exact with
    /// the pre-engine behaviour.
    #[default]
    Strict,
    /// Event-driven active-set integration (noiseless Euler only; other
    /// configurations silently fall back to [`EngineMode::Strict`]).
    /// Equilibrium-equivalent to strict within the run's tolerance.
    Adaptive {
        /// Tuning of the event-driven path.
        config: AdaptiveConfig,
    },
}

impl EngineMode {
    /// The adaptive engine with default tuning.
    pub fn adaptive() -> Self {
        EngineMode::Adaptive {
            config: AdaptiveConfig::default(),
        }
    }
}

/// The effective per-step rate of node `i`: `|clamp(σ + dv·dt) - σ|/dt`.
/// Matches [`crate::convergence::max_rate`]'s view that a node pinned at
/// the rail has stopped moving.
#[inline]
fn eff_rate(js: &[f64], state: &[f64], h: &[f64], i: usize, cap: f64, dt: f64, rail: f64) -> f64 {
    let dv = (js[i] + h[i] * state[i]) / cap;
    let next = (state[i] + dv * dt).clamp(-rail, rail);
    (next - state[i]).abs() / dt
}

/// Runs the event-driven engine on a machine. Called from
/// [`RealValuedDspu::run`] when [`AnnealConfig::mode`] selects
/// [`EngineMode::Adaptive`] and the configuration is noiseless Euler.
pub(crate) fn run_adaptive(
    dspu: &mut RealValuedDspu,
    config: &AnnealConfig,
    acfg: &AdaptiveConfig,
    mut trace: Option<&mut Trace>,
) -> AnnealReport {
    let dt = config.dt_ns;
    assert!(dt > 0.0, "dt must be positive");
    let tol = config.tolerance;
    let cap = dspu.capacitance;
    let rail = dspu.rail;
    let n = dspu.n();

    if let Some(tr) = trace.as_deref_mut() {
        tr.record(0.0, &dspu.state);
    }

    // The engine's five scratch vectors all come from the machine's
    // pooled workspace (detached for the run, restored at the end), so
    // repeat runs on a warm machine allocate nothing.
    let mut ws = std::mem::take(&mut dspu.workspace);
    let js_reused = crate::workspace::Workspace::ensure_f64(&mut ws.js, n);
    ws.note(js_reused);
    ws.note(ws.marked.capacity() >= n);

    // Split borrows: the loop mutates `state` and reads the rest. The
    // cancel token is cloned out first (an `Option<Arc>` clone) so the
    // loop can poll it without touching the borrowed machine.
    let cancel = dspu.cancel.clone();
    let coupling = &dspu.coupling;
    let h = &dspu.h;
    let free = &dspu.free;
    let state = &mut dspu.state;
    let crate::workspace::Workspace {
        js,
        queue,
        marked,
        moved,
        candidates,
        ..
    } = &mut ws;
    marked.clear();
    marked.resize(n, false);
    moved.clear();
    candidates.clear();

    coupling.matvec(state, js);
    let free_count = free.iter().filter(|&&f| f).count();

    let rescan = |js: &[f64], state: &[f64], queue: &mut Vec<u32>| {
        queue.clear();
        for (i, &is_free) in free.iter().enumerate() {
            if is_free && eff_rate(js, state, h, i, cap, dt, rail) >= tol {
                queue.push(i as u32);
            }
        }
    };
    rescan(js, state, queue);

    let mut t = 0.0;
    let mut steps = 0usize;
    let mut sparse_steps = 0usize;
    let mut frac_sum = 0.0;
    let mut since_refresh = 0usize;
    let mut converged = false;
    let mut drain_validations = 0u64;
    let mut active_peak = queue.len();

    loop {
        if cancel.as_ref().is_some_and(|c| c.is_cancelled()) {
            break;
        }
        if queue.is_empty() {
            // Validate the drained set against fresh currents before
            // declaring convergence (incremental updates carry drift).
            drain_validations += 1;
            coupling.matvec(state, js);
            since_refresh = 0;
            rescan(js, state, queue);
            if queue.is_empty() {
                converged = true;
                break;
            }
        }
        active_peak = active_peak.max(queue.len());
        if t >= config.max_time_ns {
            break;
        }
        let frac = queue.len() as f64 / free_count.max(1) as f64;
        frac_sum += frac;
        if frac > acfg.dense_fraction {
            // Dense phase: a plain Jacobi full step from the current
            // currents — identical work profile to the strict path.
            for i in 0..n {
                if !free[i] {
                    continue;
                }
                let dv = (js[i] + h[i] * state[i]) / cap;
                state[i] = (state[i] + dv * dt).clamp(-rail, rail);
            }
            coupling.matvec(state, js);
            since_refresh = 0;
            rescan(js, state, queue);
        } else {
            // Sparse phase: integrate only the active set, propagate
            // each move through the CSR rows, and re-examine exactly
            // the nodes whose currents changed.
            sparse_steps += 1;
            since_refresh += 1;
            moved.clear();
            for &iu in queue.iter() {
                let i = iu as usize;
                let dv = (js[i] + h[i] * state[i]) / cap;
                let next = (state[i] + dv * dt).clamp(-rail, rail);
                let delta = next - state[i];
                if delta != 0.0 {
                    moved.push((iu, delta, next));
                }
            }
            for &(iu, _, next) in moved.iter() {
                state[iu as usize] = next;
            }
            candidates.clear();
            for &iu in queue.iter() {
                let i = iu as usize;
                if !marked[i] {
                    marked[i] = true;
                    candidates.push(iu);
                }
            }
            for &(iu, delta, _) in moved.iter() {
                for (j, w) in coupling.row(iu as usize) {
                    js[j] += w * delta;
                    if free[j] && !marked[j] {
                        marked[j] = true;
                        candidates.push(j as u32);
                    }
                }
            }
            if since_refresh >= acfg.refresh_every.max(1) {
                coupling.matvec(state, js);
                since_refresh = 0;
                for &ju in candidates.iter() {
                    marked[ju as usize] = false;
                }
                rescan(js, state, queue);
            } else {
                queue.clear();
                for &ju in candidates.iter() {
                    let j = ju as usize;
                    marked[j] = false;
                    if eff_rate(js, state, h, j, cap, dt, rail) >= tol {
                        queue.push(ju);
                    }
                }
            }
        }
        t += dt;
        steps += 1;
        if let Some(tr) = trace.as_deref_mut() {
            tr.record(t, state);
        }
    }

    // Final rate from fresh currents (the convergence path left `js`
    // fresh; the budget-exhausted path may not have).
    if !converged {
        coupling.matvec(state, js);
    }
    let final_rate = (0..n)
        .filter(|&i| free[i])
        .map(|i| eff_rate(js, state, h, i, cap, dt, rail))
        .fold(0.0, f64::max);

    dspu.workspace = ws;
    if dspu.telemetry.is_enabled() {
        dspu.telemetry
            .counter_add("anneal.drain_validations", drain_validations);
        dspu.telemetry
            .record("anneal.active_set_peak", active_peak as f64);
    }
    AnnealReport {
        converged,
        steps,
        sim_time_ns: t,
        final_rate,
        energy: dspu.energy(),
        sparse_steps,
        mean_active_fraction: if steps > 0 { frac_sum / steps as f64 } else { 0.0 },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::convergence::max_abs_diff;
    use crate::coupling::Coupling;
    use crate::noise::NoiseModel;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    fn random_machine(n: usize, density: f64, seed: u64) -> RealValuedDspu {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut j = Coupling::zeros(n);
        for i in 0..n {
            for k in (i + 1)..n {
                if rng.random::<f64>() < density {
                    j.set(i, k, (rng.random::<f64>() - 0.5) * 0.6);
                }
            }
        }
        let h: Vec<f64> = (0..n).map(|_| -1.5 - rng.random::<f64>()).collect();
        let mut d = RealValuedDspu::new(j, h).unwrap();
        for i in 0..n / 2 {
            d.clamp(i, (rng.random::<f64>() - 0.5) * 1.2).unwrap();
        }
        d.randomize_free(&mut rng);
        d
    }

    fn adaptive_config() -> AnnealConfig {
        AnnealConfig {
            mode: EngineMode::adaptive(),
            ..AnnealConfig::default()
        }
    }

    #[test]
    fn adaptive_matches_strict_equilibrium() {
        for seed in 0..5 {
            let mut strict = random_machine(24, 0.3, seed);
            let mut adaptive = strict.clone();
            let mut rng = StdRng::seed_from_u64(99);
            let rs = strict.run(&AnnealConfig::default(), &mut rng);
            let ra = adaptive.run(&adaptive_config(), &mut rng);
            assert!(rs.converged && ra.converged, "seed {seed}: {rs:?} {ra:?}");
            let diff = max_abs_diff(strict.state(), adaptive.state());
            assert!(diff < 1e-3, "seed {seed}: equilibria diverged by {diff}");
            assert!(ra.sparse_steps > 0, "sparse path never engaged");
            assert!(
                ra.mean_active_fraction < 1.0,
                "active set never shrank: {}",
                ra.mean_active_fraction
            );
        }
    }

    #[test]
    fn adaptive_tight_tolerance_matches_within_1e6() {
        let tight = |mode| AnnealConfig {
            tolerance: 1e-9,
            max_time_ns: 20_000.0,
            mode,
            ..AnnealConfig::default()
        };
        for seed in 0..3 {
            let mut strict = random_machine(16, 0.4, seed);
            let mut adaptive = strict.clone();
            let mut rng = StdRng::seed_from_u64(7);
            let rs = strict.run(&tight(EngineMode::Strict), &mut rng);
            let ra = adaptive.run(&tight(EngineMode::adaptive()), &mut rng);
            assert!(rs.converged && ra.converged);
            let diff = max_abs_diff(strict.state(), adaptive.state());
            assert!(diff < 1e-6, "seed {seed}: {diff}");
        }
    }

    #[test]
    fn adaptive_converges_immediately_from_equilibrium() {
        let mut d = random_machine(20, 0.3, 3);
        let mut rng = StdRng::seed_from_u64(1);
        d.run(&adaptive_config(), &mut rng);
        // Re-running from the reached equilibrium drains instantly.
        let report = d.run(&adaptive_config(), &mut rng);
        assert!(report.converged);
        assert!(
            report.steps <= 2,
            "warm re-run should be nearly free: {} steps",
            report.steps
        );
    }

    #[test]
    fn adaptive_respects_budget() {
        let mut d = random_machine(16, 0.4, 4);
        let cfg = AnnealConfig {
            tolerance: 0.0, // unreachable: every free node always active
            max_time_ns: 10.0,
            mode: EngineMode::adaptive(),
            ..AnnealConfig::default()
        };
        let mut rng = StdRng::seed_from_u64(5);
        let report = d.run(&cfg, &mut rng);
        assert!(!report.converged);
        assert!(report.sim_time_ns <= 10.0 + 1e-9);
    }

    #[test]
    fn noise_falls_back_to_strict() {
        let mut d = random_machine(12, 0.3, 6);
        let mut cfg = adaptive_config();
        cfg.noise = NoiseModel::relative(0.02);
        let mut rng = StdRng::seed_from_u64(2);
        let report = d.run(&cfg, &mut rng);
        // Strict path reports full occupancy and no sparse steps.
        assert_eq!(report.sparse_steps, 0);
        assert_eq!(report.mean_active_fraction, 1.0);
    }

    #[test]
    fn strict_mode_bit_identical_to_legacy_default() {
        // EngineMode::Strict is the default: running with an explicit
        // Strict mode must reproduce the default config bit-for-bit.
        let run = |cfg: AnnealConfig| {
            let mut d = random_machine(10, 0.4, 8);
            let mut rng = StdRng::seed_from_u64(3);
            d.run(&cfg, &mut rng);
            d.state().iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        };
        assert_eq!(
            run(AnnealConfig::default()),
            run(AnnealConfig {
                mode: EngineMode::Strict,
                ..AnnealConfig::default()
            })
        );
    }

    #[test]
    fn fully_clamped_machine_converges_instantly() {
        let mut j = Coupling::zeros(3);
        j.set(0, 1, 0.5);
        let mut d = RealValuedDspu::new(j, vec![-1.0; 3]).unwrap();
        for i in 0..3 {
            d.clamp(i, 0.1 * i as f64).unwrap();
        }
        let mut rng = StdRng::seed_from_u64(0);
        let report = d.run(&adaptive_config(), &mut rng);
        assert!(report.converged);
        assert_eq!(report.steps, 0);
        assert_eq!(d.state(), &[0.0, 0.1, 0.2]);
    }

    #[test]
    fn traced_adaptive_records_every_step() {
        let mut d = random_machine(12, 0.4, 9);
        let cfg = AnnealConfig {
            dt_ns: 1.0,
            mode: EngineMode::adaptive(),
            ..AnnealConfig::default()
        };
        let mut rng = StdRng::seed_from_u64(4);
        let (report, trace) = d.run_traced(&cfg, 1.0, &mut rng);
        assert!(report.converged);
        assert!(trace.len() >= report.steps.min(2));
    }
}
