//! Energy functions: the classic Ising Hamiltonian and the real-valued
//! Hamiltonian of DS-GL.
//!
//! With `J` symmetric (zero diagonal) we use the quadratic-form convention
//!
//! - classic Ising (paper Eq. 1):
//!   `H_ising(σ) = -½ σᵀ J σ - hᵀ σ`
//! - real-valued DS-GL (paper Eq. 4, after the substitution
//!   `Jᵢⱼ+Jⱼᵢ→Jᵢⱼ`, `2hᵢ→hᵢ`):
//!   `H_RV(σ) = -½ σᵀ J σ - ½ Σᵢ hᵢ σᵢ²`
//!
//! so that `∂H_RV/∂σᵢ = -Σⱼ Jᵢⱼσⱼ - hᵢσᵢ` and the node dynamics
//! `C·dσᵢ/dt = -∂H_RV/∂σᵢ` stabilise at `σᵢ = -Σⱼ Jᵢⱼσⱼ / hᵢ`
//! (paper Eq. 5/10). With every `hᵢ < 0` the self term adds
//! `+½|hᵢ|σᵢ²`, the "energy regulator" that bounds `H_RV` from below
//! and prevents the polarisation BRIM exhibits.

use crate::coupling::Coupling;
use crate::sparse::SparseCoupling;

/// Classic Ising energy `-½ σᵀJσ - hᵀσ` (paper Eq. 1).
///
/// # Panics
///
/// Panics on length mismatches between `coupling`, `h`, and `state`.
pub fn ising_energy(coupling: &Coupling, h: &[f64], state: &[f64]) -> f64 {
    let n = coupling.n();
    assert_eq!(h.len(), n, "h length mismatch");
    assert_eq!(state.len(), n, "state length mismatch");
    let mut js = vec![0.0; n];
    coupling.matvec(state, &mut js);
    let quad: f64 = state.iter().zip(&js).map(|(s, js)| s * js).sum();
    let lin: f64 = state.iter().zip(h).map(|(s, h)| s * h).sum();
    -0.5 * quad - lin
}

/// Real-valued DS-GL energy `-½ σᵀJσ - ½ Σ hᵢσᵢ²` (paper Eq. 4).
///
/// # Panics
///
/// Panics on length mismatches.
pub fn rv_energy(coupling: &Coupling, h: &[f64], state: &[f64]) -> f64 {
    let n = coupling.n();
    assert_eq!(h.len(), n, "h length mismatch");
    assert_eq!(state.len(), n, "state length mismatch");
    let mut js = vec![0.0; n];
    coupling.matvec(state, &mut js);
    rv_energy_from_matvec(&js, h, state)
}

/// Real-valued energy given a precomputed `J·σ` product (shared with the
/// sparse path).
pub(crate) fn rv_energy_from_matvec(js: &[f64], h: &[f64], state: &[f64]) -> f64 {
    let quad: f64 = state.iter().zip(js).map(|(s, js)| s * js).sum();
    let self_term: f64 = state.iter().zip(h).map(|(s, h)| h * s * s).sum();
    -0.5 * quad - 0.5 * self_term
}

/// Sparse variant of [`rv_energy`].
///
/// # Panics
///
/// Panics on length mismatches.
pub fn rv_energy_sparse(coupling: &SparseCoupling, h: &[f64], state: &[f64]) -> f64 {
    let n = coupling.n();
    assert_eq!(h.len(), n, "h length mismatch");
    assert_eq!(state.len(), n, "state length mismatch");
    let mut js = vec![0.0; n];
    coupling.matvec(state, &mut js);
    rv_energy_from_matvec(&js, h, state)
}

/// Gradient of `H_RV`: `grad[i] = -Σⱼ Jᵢⱼσⱼ - hᵢσᵢ`.
///
/// The node dynamics are `C·dσᵢ/dt = -grad[i]`.
///
/// # Panics
///
/// Panics on length mismatches.
pub fn rv_gradient(coupling: &Coupling, h: &[f64], state: &[f64], grad: &mut [f64]) {
    let n = coupling.n();
    assert_eq!(h.len(), n, "h length mismatch");
    assert_eq!(state.len(), n, "state length mismatch");
    assert_eq!(grad.len(), n, "grad length mismatch");
    coupling.matvec(state, grad);
    for i in 0..n {
        grad[i] = -grad[i] - h[i] * state[i];
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> (Coupling, Vec<f64>) {
        let mut j = Coupling::zeros(2);
        j.set(0, 1, 2.0);
        (j, vec![-1.0, -4.0])
    }

    #[test]
    fn ising_energy_known_value() {
        let (j, _) = small();
        let h = vec![0.5, -0.5];
        // H = -J01*s0*s1 - (h0 s0 + h1 s1) = -2*1*(-1) - (0.5 - (-1)*(-0.5))... compute:
        // s = [1, -1]: quad term: -½ σᵀJσ = -½ (2*1*(-1)*2) = 2; lin: -(0.5*1 + (-0.5)*(-1)) = -1
        let e = ising_energy(&j, &h, &[1.0, -1.0]);
        assert!((e - (2.0 - 1.0)).abs() < 1e-12);
    }

    #[test]
    fn rv_energy_known_value() {
        let (j, h) = small();
        // σ = [1, 0.5]: -½(2*1*0.5*2)/... σᵀJσ = 2*J01*σ0σ1 = 2*2*0.5 = 2, so -1.
        // self: -½(h0 σ0² + h1 σ1²) = -½(-1 - 1) = 1. Total 0.
        let e = rv_energy(&j, &h, &[1.0, 0.5]);
        assert!(e.abs() < 1e-12);
    }

    #[test]
    fn gradient_matches_finite_difference() {
        let mut j = Coupling::zeros(3);
        j.set(0, 1, 1.3);
        j.set(1, 2, -0.7);
        j.set(0, 2, 0.4);
        let h = vec![-2.0, -1.5, -3.0];
        let state = vec![0.2, -0.6, 0.9];
        let mut grad = vec![0.0; 3];
        rv_gradient(&j, &h, &state, &mut grad);
        let eps = 1e-6;
        for i in 0..3 {
            let mut plus = state.clone();
            let mut minus = state.clone();
            plus[i] += eps;
            minus[i] -= eps;
            let fd = (rv_energy(&j, &h, &plus) - rv_energy(&j, &h, &minus)) / (2.0 * eps);
            assert!(
                (grad[i] - fd).abs() < 1e-6,
                "grad[{i}] = {} but finite difference = {fd}",
                grad[i]
            );
        }
    }

    #[test]
    fn rv_energy_bounded_below_with_negative_h() {
        // With h < 0 and |h| > row sums, H_RV is positive definite:
        // scaling any state up increases energy.
        let (j, h) = small();
        let base = rv_energy(&j, &h, &[0.3, -0.2]);
        let scaled = rv_energy(&j, &h, &[3.0, -2.0]);
        assert!(scaled > base);
    }

    #[test]
    fn sparse_energy_agrees() {
        let mut j = Coupling::zeros(4);
        j.set(0, 1, 1.0);
        j.set(2, 3, -2.5);
        let h = vec![-1.0; 4];
        let s = vec![0.1, 0.2, -0.3, 0.4];
        let sparse = SparseCoupling::from_dense(&j);
        assert!((rv_energy(&j, &h, &s) - rv_energy_sparse(&sparse, &h, &s)).abs() < 1e-12);
    }

    #[test]
    fn fixed_point_is_zero_gradient() {
        // σ1 free with σ0 clamped: at σ1 = -J01 σ0 / h1 the gradient is 0.
        let (j, h) = small();
        let s0 = 0.8;
        let s1 = -j.get(0, 1) * s0 / h[1];
        let mut grad = vec![0.0; 2];
        rv_gradient(&j, &h, &[s0, s1], &mut grad);
        assert!(grad[1].abs() < 1e-12);
    }
}
