//! Annealing configuration and reporting.

use crate::engine::EngineMode;
use crate::noise::NoiseModel;
use serde::{Deserialize, Serialize};

/// Numerical integrator for the node ODEs.
///
/// The analog machine itself is continuous; the integrator only controls
/// how faithfully (and at what cost) the simulator follows it. Euler
/// needs `dt ≲ C / (|h| + Σ|J|)` for stability; RK4 tracks the trajectory
/// far more accurately at the same `dt` for 4× the mat-vec work.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum Integrator {
    /// Forward Euler (default; one mat-vec per step).
    #[default]
    Euler,
    /// Classical fourth-order Runge–Kutta (four mat-vecs per step).
    Rk4,
}

/// Configuration of one natural-annealing run.
///
/// Time is simulated analog time in nanoseconds. The machine integrates
/// its node ODEs with timestep [`dt_ns`](Self::dt_ns) until either the
/// state rate falls below [`tolerance`](Self::tolerance) (convergence) or
/// [`max_time_ns`](Self::max_time_ns) elapses.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AnnealConfig {
    /// Integrator timestep in ns.
    pub dt_ns: f64,
    /// Numerical integration scheme.
    pub integrator: Integrator,
    /// Annealing-time budget in ns (the machine's inference latency cap).
    pub max_time_ns: f64,
    /// Convergence threshold on `max_i |dσᵢ/dt|`, in rail fractions per ns.
    pub tolerance: f64,
    /// How many steps between convergence checks.
    pub check_every: usize,
    /// Dynamic noise injected while annealing.
    pub noise: NoiseModel,
    /// Integration engine. Defaults to [`EngineMode::Strict`], which
    /// reproduces the fixed-schedule integrator bit-for-bit; configs
    /// serialised before this field existed deserialise to `Strict`.
    #[serde(default)]
    pub mode: EngineMode,
}

impl AnnealConfig {
    /// A budget-only configuration: run for `max_time_ns` with defaults.
    pub fn with_budget(max_time_ns: f64) -> Self {
        AnnealConfig {
            max_time_ns,
            ..AnnealConfig::default()
        }
    }

    /// The default configuration with the event-driven adaptive engine
    /// enabled (see [`EngineMode::Adaptive`]).
    pub fn adaptive() -> Self {
        AnnealConfig {
            mode: EngineMode::adaptive(),
            ..AnnealConfig::default()
        }
    }
}

impl Default for AnnealConfig {
    /// 2 ns steps, 2 µs budget, 1e-6 rail/ns tolerance, no noise.
    ///
    /// With the machines' default node time constant
    /// ([`crate::RC_NS`] ≈ 100 ns) these settings converge dense
    /// inference in a few hundred ns — the latency regime the paper
    /// reports for DS-GL (0.15–1.1 µs).
    fn default() -> Self {
        AnnealConfig {
            dt_ns: 2.0,
            integrator: Integrator::Euler,
            max_time_ns: 2_000.0,
            tolerance: 1e-6,
            check_every: 10,
            noise: NoiseModel::none(),
            mode: EngineMode::Strict,
        }
    }
}

/// Outcome of an annealing run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AnnealReport {
    /// Whether the state rate fell below tolerance before the budget ended.
    pub converged: bool,
    /// Integrator steps taken.
    pub steps: usize,
    /// Simulated analog time elapsed, ns (the inference latency).
    pub sim_time_ns: f64,
    /// Final `max_i |dσᵢ/dt|` over free nodes.
    pub final_rate: f64,
    /// Final Hamiltonian value.
    pub energy: f64,
    /// Steps taken on the event-driven sparse path (0 for strict runs).
    #[serde(default)]
    pub sparse_steps: usize,
    /// Mean fraction of free nodes in the active set per step. Strict
    /// runs integrate every free node every step, so they report 1.0.
    #[serde(default = "full_occupancy")]
    pub mean_active_fraction: f64,
}

fn full_occupancy() -> f64 {
    1.0
}

/// Random-flip schedule used by the binary BRIM machine to escape local
/// minima: each free node flips with probability
/// `initial_rate · exp(-t / decay_ns) · dt` per step.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FlipSchedule {
    /// Initial flip rate per node per ns.
    pub initial_rate: f64,
    /// Exponential decay constant in ns.
    pub decay_ns: f64,
}

impl FlipSchedule {
    /// Flip probability per step of length `dt` at time `t`.
    pub fn probability(&self, t_ns: f64, dt_ns: f64) -> f64 {
        (self.initial_rate * (-t_ns / self.decay_ns).exp() * dt_ns).clamp(0.0, 1.0)
    }

    /// A schedule that never flips (pure gradient descent).
    pub fn none() -> Self {
        FlipSchedule {
            initial_rate: 0.0,
            decay_ns: 1.0,
        }
    }
}

impl Default for FlipSchedule {
    /// 0.05 flips per node per ns, decaying with a 100 ns constant.
    fn default() -> Self {
        FlipSchedule {
            initial_rate: 0.05,
            decay_ns: 100.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_sane() {
        let c = AnnealConfig::default();
        assert!(c.dt_ns > 0.0);
        assert!(c.max_time_ns > c.dt_ns);
        assert!(c.noise.is_none());
    }

    #[test]
    fn with_budget_overrides_time() {
        let c = AnnealConfig::with_budget(50.0);
        assert_eq!(c.max_time_ns, 50.0);
        assert_eq!(c.dt_ns, AnnealConfig::default().dt_ns);
    }

    #[test]
    fn flip_probability_decays() {
        let f = FlipSchedule {
            initial_rate: 0.1,
            decay_ns: 10.0,
        };
        let p0 = f.probability(0.0, 1.0);
        let p1 = f.probability(10.0, 1.0);
        assert!((p0 - 0.1).abs() < 1e-12);
        assert!(p1 < p0);
        assert!((p1 - 0.1 * (-1.0f64).exp()).abs() < 1e-12);
    }

    #[test]
    fn flip_probability_clamped() {
        let f = FlipSchedule {
            initial_rate: 10.0,
            decay_ns: 1.0,
        };
        assert_eq!(f.probability(0.0, 1.0), 1.0);
        assert_eq!(FlipSchedule::none().probability(0.0, 1.0), 0.0);
    }
}
