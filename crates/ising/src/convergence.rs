//! Convergence detection for annealing runs.
//!
//! These helpers sit on the integrator hot path (the strict engine calls
//! [`max_rate`] every `check_every` steps; the event-driven engine's
//! validation rescans call it on every drain), so length agreement is a
//! documented caller contract checked with `debug_assert!` rather than a
//! release-mode branch. All in-tree callers pass slices derived from the
//! same machine, which guarantees the contract structurally.

/// Maximum absolute rate `|Δσᵢ| / dt` over the masked (free) nodes.
///
/// `free[i] == true` marks nodes whose rate is considered; clamped input
/// nodes are held by the node-control unit and excluded.
///
/// # Contract
///
/// `prev`, `next`, and `free` must have equal lengths and `dt` must be
/// positive. Violations are caught by `debug_assert!` in debug builds;
/// in release builds a length mismatch truncates the iteration to the
/// shortest slice and a non-positive `dt` yields a meaningless (but
/// non-panicking) rate.
pub fn max_rate(prev: &[f64], next: &[f64], free: &[bool], dt: f64) -> f64 {
    debug_assert_eq!(prev.len(), next.len(), "state length mismatch");
    debug_assert_eq!(prev.len(), free.len(), "mask length mismatch");
    debug_assert!(dt > 0.0, "dt must be positive");
    prev.iter()
        .zip(next)
        .zip(free)
        .filter(|&(_, &f)| f)
        .map(|((&p, &n), _)| (n - p).abs() / dt)
        .fold(0.0, f64::max)
}

/// Maximum absolute element-wise difference between two states.
///
/// # Contract
///
/// `a` and `b` must have equal lengths (`debug_assert!`-checked; release
/// builds truncate to the shorter slice).
pub fn max_abs_diff(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len(), "state length mismatch");
    a.iter()
        .zip(b)
        .map(|(&x, &y)| (x - y).abs())
        .fold(0.0, f64::max)
}

/// Root-mean-square difference between two states (0 for empty slices).
///
/// # Contract
///
/// `a` and `b` must have equal lengths (`debug_assert!`-checked; release
/// builds truncate to the shorter slice, normalising by `a.len()`).
pub fn rms_diff(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len(), "state length mismatch");
    if a.is_empty() {
        return 0.0;
    }
    let ss: f64 = a.iter().zip(b).map(|(&x, &y)| (x - y) * (x - y)).sum();
    (ss / a.len() as f64).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn max_rate_ignores_clamped() {
        let prev = [0.0, 0.0, 0.0];
        let next = [1.0, 0.1, 0.0];
        let free = [false, true, true];
        assert!((max_rate(&prev, &next, &free, 0.1) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn max_rate_all_clamped_is_zero() {
        assert_eq!(max_rate(&[1.0], &[2.0], &[false], 1.0), 0.0);
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "dt must be positive")]
    fn max_rate_bad_dt() {
        max_rate(&[0.0], &[0.0], &[true], 0.0);
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "state length mismatch")]
    fn max_rate_bad_lengths() {
        max_rate(&[0.0, 1.0], &[0.0], &[true], 1.0);
    }

    #[test]
    fn diffs() {
        assert_eq!(max_abs_diff(&[1.0, 2.0], &[1.5, 1.0]), 1.0);
        assert!((rms_diff(&[0.0, 0.0], &[3.0, 4.0]) - (12.5f64).sqrt()).abs() < 1e-12);
        assert_eq!(rms_diff(&[], &[]), 0.0);
    }
}
