//! Persistent hardware defects of analog Ising machines.
//!
//! [`crate::NoiseModel`] covers *transient* per-step jitter — the paper's
//! Fig. 13 robustness sweep. Real CMOS Ising machines (the BRIM line of
//! work and its almost-linear descendants) also suffer *persistent*
//! defects that no amount of time-averaging filters out:
//!
//! - **Stuck nodes**: a node's latch, comparator, or DAC fails and the
//!   capacitor voltage pins at a fixed level — ground, a rail, or (for a
//!   floating readout) garbage that reads as NaN;
//! - **Dead couplers**: a programmable resistor's switch is stuck open,
//!   so the coupling between two nodes simply vanishes;
//! - **Coupler drift**: process variation and aging shift every
//!   programmed conductance by a multiplicative factor — unlike the
//!   [`crate::NoiseModel`] jitter this offset is frozen at program time
//!   and biases the fixed point itself.
//!
//! A [`FaultModel`] bundles one machine's defects. It is applied once,
//! before annealing, by [`crate::RealValuedDspu::inject_faults`] (the
//! event-driven engine inherits the result automatically: a stuck node
//! is never free, so the active set skips it). Mesh-level defects —
//! dead PEs and dead CU lanes — live in `dsgl-hw`, which consumes this
//! module's node/coupler classes for the per-PE fabric.

use crate::coupling::Coupling;
use crate::error::IsingError;
use crate::noise::gaussian;
use rand::{Rng, RngExt};
use serde::{Deserialize, Serialize};

/// A node whose voltage is pinned by a defect.
///
/// `value` may be non-finite: a dead readout chain returns garbage, and
/// the simulator propagates it exactly like the silicon would, so that
/// guarded annealing (see `dsgl-core`) can be tested against NaN
/// contamination.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StuckNode {
    /// The defective node.
    pub idx: usize,
    /// The level it is stuck at (non-finite = garbage readout).
    pub value: f64,
}

/// Persistent defects of one analog machine.
///
/// # Example
///
/// ```
/// use dsgl_ising::fault::{FaultModel, StuckNode};
///
/// let mut faults = FaultModel::none();
/// assert!(faults.is_none());
/// faults.stuck_nodes.push(StuckNode { idx: 2, value: 0.0 });
/// faults.dead_couplers.push((0, 1));
/// faults.coupler_drift = 0.05;
/// assert!(!faults.is_none());
/// ```
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct FaultModel {
    /// Nodes pinned at a fixed (possibly garbage) voltage.
    pub stuck_nodes: Vec<StuckNode>,
    /// Unordered node pairs whose coupling resistor is stuck open.
    pub dead_couplers: Vec<(usize, usize)>,
    /// Relative σ of the frozen multiplicative conductance offset
    /// applied to every surviving coupling (`0.0` = no drift).
    pub coupler_drift: f64,
}

impl FaultModel {
    /// A defect-free machine.
    pub fn none() -> Self {
        FaultModel::default()
    }

    /// Whether this model describes any defect at all.
    pub fn is_none(&self) -> bool {
        self.stuck_nodes.is_empty() && self.dead_couplers.is_empty() && self.coupler_drift == 0.0
    }

    /// Samples a fault population for a fault-rate campaign: each node is
    /// stuck (at a uniform level in the rails, or NaN with probability
    /// `nan_fraction` among the stuck) with probability `stuck_rate`, and
    /// each *present* coupling of `j` dies with probability `dead_rate`.
    /// `drift` is copied through. Deterministic in `(rng, j)`.
    pub fn sampled<R: Rng + ?Sized>(
        j: &Coupling,
        stuck_rate: f64,
        dead_rate: f64,
        drift: f64,
        nan_fraction: f64,
        rng: &mut R,
    ) -> Self {
        let mut faults = FaultModel {
            coupler_drift: drift,
            ..FaultModel::default()
        };
        for idx in 0..j.n() {
            if rng.random::<f64>() < stuck_rate {
                let value = if rng.random::<f64>() < nan_fraction {
                    f64::NAN
                } else {
                    rng.random::<f64>() * 2.0 - 1.0
                };
                faults.stuck_nodes.push(StuckNode { idx, value });
            }
        }
        for (a, b, _) in j.nonzeros() {
            if rng.random::<f64>() < dead_rate {
                faults.dead_couplers.push((a, b));
            }
        }
        faults
    }

    /// Validates indices against a machine of `n` nodes.
    ///
    /// # Errors
    ///
    /// Returns [`IsingError::NodeOutOfRange`] for any out-of-range node
    /// and [`IsingError::InvalidParameter`] for a non-finite or negative
    /// drift σ. (Non-finite *stuck values* are deliberately legal — they
    /// model garbage readouts.)
    pub fn validate(&self, n: usize) -> Result<(), IsingError> {
        for s in &self.stuck_nodes {
            if s.idx >= n {
                return Err(IsingError::NodeOutOfRange { node: s.idx, len: n });
            }
        }
        for &(a, b) in &self.dead_couplers {
            let bad = a.max(b);
            if bad >= n {
                return Err(IsingError::NodeOutOfRange { node: bad, len: n });
            }
        }
        if !self.coupler_drift.is_finite() || self.coupler_drift < 0.0 {
            return Err(IsingError::InvalidParameter {
                what: "coupler drift sigma",
                value: self.coupler_drift,
            });
        }
        Ok(())
    }

    /// Applies the coupler-level defects to a dense coupling matrix:
    /// dead couplers are zeroed, then every surviving coupling is scaled
    /// by a frozen `1 + drift·𝒩(0,1)` factor. Drift draws consume `rng`
    /// in ascending `(i, j)` order, so the defect pattern is a pure
    /// function of the seed.
    pub fn apply_to_coupling<R: Rng + ?Sized>(&self, j: &mut Coupling, rng: &mut R) {
        for &(a, b) in &self.dead_couplers {
            if a != b && a < j.n() && b < j.n() {
                j.set(a, b, 0.0);
            }
        }
        if self.coupler_drift > 0.0 {
            for (a, b, w) in j.nonzeros() {
                j.set(a, b, w * (1.0 + self.coupler_drift * gaussian(rng)));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::anneal::AnnealConfig;
    use crate::dspu::RealValuedDspu;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn chain3() -> Coupling {
        let mut j = Coupling::zeros(3);
        j.set(0, 1, 0.5);
        j.set(1, 2, 0.5);
        j
    }

    #[test]
    fn none_is_none() {
        assert!(FaultModel::none().is_none());
        let f = FaultModel {
            coupler_drift: 0.1,
            ..FaultModel::none()
        };
        assert!(!f.is_none());
    }

    #[test]
    fn validation_catches_bad_indices() {
        let f = FaultModel {
            stuck_nodes: vec![StuckNode { idx: 5, value: 0.0 }],
            ..FaultModel::none()
        };
        assert!(matches!(
            f.validate(3),
            Err(IsingError::NodeOutOfRange { node: 5, len: 3 })
        ));
        let f = FaultModel {
            dead_couplers: vec![(0, 9)],
            ..FaultModel::none()
        };
        assert!(f.validate(3).is_err());
        let f = FaultModel {
            coupler_drift: -0.5,
            ..FaultModel::none()
        };
        assert!(matches!(
            f.validate(3),
            Err(IsingError::InvalidParameter { .. })
        ));
        // NaN stuck values are legal: they model garbage readouts.
        let f = FaultModel {
            stuck_nodes: vec![StuckNode {
                idx: 1,
                value: f64::NAN,
            }],
            ..FaultModel::none()
        };
        assert!(f.validate(3).is_ok());
    }

    #[test]
    fn dead_coupler_zeroes_symmetrically() {
        let mut j = chain3();
        let f = FaultModel {
            dead_couplers: vec![(1, 0)],
            ..FaultModel::none()
        };
        let mut rng = StdRng::seed_from_u64(0);
        f.apply_to_coupling(&mut j, &mut rng);
        assert_eq!(j.get(0, 1), 0.0);
        assert_eq!(j.get(1, 0), 0.0);
        assert_eq!(j.get(1, 2), 0.5, "unrelated coupling untouched");
    }

    #[test]
    fn drift_is_seed_deterministic_and_scales() {
        let apply = |seed: u64| {
            let mut j = chain3();
            let f = FaultModel {
                coupler_drift: 0.1,
                ..FaultModel::none()
            };
            let mut rng = StdRng::seed_from_u64(seed);
            f.apply_to_coupling(&mut j, &mut rng);
            (j.get(0, 1), j.get(1, 2))
        };
        assert_eq!(apply(3), apply(3), "same seed, same frozen drift");
        let (a, b) = apply(3);
        assert_ne!(a, 0.5, "drift must actually move the weight");
        assert!((a - 0.5).abs() < 0.25 && (b - 0.5).abs() < 0.25, "±5σ bound");
    }

    #[test]
    fn sampled_rates_zero_yields_no_faults() {
        let j = chain3();
        let mut rng = StdRng::seed_from_u64(1);
        let f = FaultModel::sampled(&j, 0.0, 0.0, 0.0, 0.0, &mut rng);
        assert!(f.is_none());
    }

    #[test]
    fn sampled_rates_one_faults_everything() {
        let j = chain3();
        let mut rng = StdRng::seed_from_u64(2);
        let f = FaultModel::sampled(&j, 1.0, 1.0, 0.0, 0.0, &mut rng);
        assert_eq!(f.stuck_nodes.len(), 3);
        assert_eq!(f.dead_couplers.len(), 2);
        assert!(f.stuck_nodes.iter().all(|s| s.value.is_finite()));
        let mut rng = StdRng::seed_from_u64(2);
        let f = FaultModel::sampled(&j, 1.0, 0.0, 0.0, 1.0, &mut rng);
        assert!(f.stuck_nodes.iter().all(|s| s.value.is_nan()));
    }

    #[test]
    fn injected_stuck_node_excluded_from_annealing() {
        let mut d = RealValuedDspu::new(chain3(), vec![-1.5; 3]).unwrap();
        d.clamp(0, 0.9).unwrap();
        let faults = FaultModel {
            stuck_nodes: vec![StuckNode { idx: 2, value: 0.25 }],
            ..FaultModel::none()
        };
        let mut rng = StdRng::seed_from_u64(4);
        d.inject_faults(&faults, &mut rng).unwrap();
        assert!(!d.free_mask()[2]);
        d.randomize_free(&mut rng);
        let report = d.run(&AnnealConfig::default(), &mut rng);
        assert!(report.converged);
        assert_eq!(d.state()[2], 0.25, "stuck node must hold its level");
        // σ1 sees the stuck neighbour: σ1 = (0.5·0.9 + 0.5·0.25)/1.5.
        let expect = (0.5 * 0.9 + 0.5 * 0.25) / 1.5;
        assert!((d.state()[1] - expect).abs() < 1e-3, "σ1 = {}", d.state()[1]);
    }

    #[test]
    fn injected_dead_coupler_isolates() {
        let mut d = RealValuedDspu::new(chain3(), vec![-1.5; 3]).unwrap();
        d.clamp(0, 0.9).unwrap();
        let faults = FaultModel {
            dead_couplers: vec![(1, 2)],
            ..FaultModel::none()
        };
        let mut rng = StdRng::seed_from_u64(5);
        d.inject_faults(&faults, &mut rng).unwrap();
        d.randomize_free(&mut rng);
        let report = d.run(&AnnealConfig::default(), &mut rng);
        assert!(report.converged);
        // Node 2 lost its only coupling: it decays to 0.
        assert!(d.state()[2].abs() < 1e-3, "σ2 = {}", d.state()[2]);
        assert!((d.state()[1] - 0.3).abs() < 1e-3, "σ1 = {}", d.state()[1]);
    }

    #[test]
    fn injected_nan_stuck_node_contaminates_state() {
        let mut d = RealValuedDspu::new(chain3(), vec![-1.5; 3]).unwrap();
        d.clamp(0, 0.9).unwrap();
        let faults = FaultModel {
            stuck_nodes: vec![StuckNode {
                idx: 1,
                value: f64::NAN,
            }],
            ..FaultModel::none()
        };
        let mut rng = StdRng::seed_from_u64(6);
        d.inject_faults(&faults, &mut rng).unwrap();
        d.randomize_free(&mut rng);
        d.run(&AnnealConfig::with_budget(50.0), &mut rng);
        // NaN spreads into the coupled free node — the failure mode
        // guarded annealing must catch.
        assert!(d.state().iter().any(|v| !v.is_finite()));
        // Sanitising replaces the garbage and reports how much there was.
        let replaced = d.sanitize(0.0);
        assert!(replaced >= 1);
        assert!(d.state().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn inject_rejects_bad_model() {
        let mut d = RealValuedDspu::new(chain3(), vec![-1.5; 3]).unwrap();
        let faults = FaultModel {
            stuck_nodes: vec![StuckNode { idx: 9, value: 0.0 }],
            ..FaultModel::none()
        };
        let mut rng = StdRng::seed_from_u64(7);
        assert!(d.inject_faults(&faults, &mut rng).is_err());
    }
}
