//! Dynamical-system substrate for DS-GL: the Ising model, the BRIM
//! bistable Ising machine, and the Real-Valued DSPU.
//!
//! This crate is the software embodiment of the analog hardware the paper
//! builds on. It provides:
//!
//! - [`Coupling`]: the symmetric coupling matrix `J` (the programmable
//!   resistor network), dense and sparse forms, pruning and masking;
//! - [`hamiltonian`]: the classic Ising energy and the paper's modified
//!   real-valued Hamiltonian `H_RV` with its quadratic self-reaction term;
//! - [`Brim`]: a simulator of the baseline binary BRIM machine
//!   (Afoakwa et al., HPCA'21) whose free nodes polarise to ±1;
//! - [`RealValuedDspu`]: the upgraded machine of paper Sec. III whose
//!   circulative resistor ring (negative `h`, quadratic energy) lets node
//!   voltages stabilise at real values — natural annealing solves
//!   `σᵢ = -Σⱼ Jᵢⱼσⱼ / hᵢ` for the free nodes;
//! - [`NoiseModel`]: per-step Gaussian disturbance of nodes and couplers
//!   for the robustness study (paper Fig. 13);
//! - [`Trace`]: voltage-vs-time recording (paper Fig. 4);
//! - [`TelemetrySink`]: run-level metrics (steps, simulated time,
//!   residuals, active-set occupancy) reported by every annealing run
//!   into a thread-safe registry — see [`telemetry`];
//! - [`SpanCollector`]: per-request hierarchical tracing spans plus a
//!   [`FlightRecorder`] black box and Prometheus / Chrome-trace
//!   exporters — see [`tracing`].
//!
//! Simulated time is explicit: the integrator advances in nanosecond
//! timesteps, so "annealing latency" in the evaluation is simply the
//! simulated time to convergence.
//!
//! # Example
//!
//! ```
//! use dsgl_ising::{Coupling, RealValuedDspu, AnnealConfig};
//! use rand::SeedableRng;
//!
//! let mut j = Coupling::zeros(3);
//! j.set(0, 1, 0.4);
//! j.set(1, 2, -0.3);
//! let h = vec![-1.0; 3];
//! let mut dspu = RealValuedDspu::new(j, h).unwrap();
//! dspu.clamp(0, 0.8).unwrap();
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! dspu.randomize_free(&mut rng);
//! let report = dspu.run(&AnnealConfig::default(), &mut rng);
//! assert!(report.converged);
//! assert!(dspu.state()[1].abs() < 1.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![deny(clippy::print_stdout, clippy::print_stderr)]

pub mod anneal;
pub mod brim;
pub mod cancel;
pub mod convergence;
pub mod coupling;
pub mod dspu;
pub mod engine;
pub mod error;
pub mod fault;
pub mod hamiltonian;
pub mod lockstep;
pub mod multigrid;
pub mod noise;
pub(crate) mod par;
pub mod sparse;
pub mod telemetry;
pub mod trace;
pub mod tracing;
pub mod workspace;

/// Default node time constant in nanoseconds: the product of a node's
/// nano-scale capacitor and its resistor ring is ≈ 100 ns, which makes a
/// 2000-node machine anneal in a few hundred ns to ~1 µs — the latency
/// regime BRIM and DS-GL report.
pub const RC_NS: f64 = 100.0;

pub use anneal::{AnnealConfig, AnnealReport, FlipSchedule};
pub use brim::Brim;
pub use cancel::CancelToken;
pub use coupling::Coupling;
pub use dspu::RealValuedDspu;
pub use engine::{AdaptiveConfig, EngineMode};
pub use error::IsingError;
pub use fault::{FaultModel, StuckNode};
pub use lockstep::run_lockstep;
pub use multigrid::{
    build_hierarchy, multigrid_warm_start, warm_start_with, MultigridHierarchy, MultigridOptions,
    MultigridReport,
};
pub use noise::NoiseModel;
pub use sparse::{SparseCoupling, TiledCoupling};
pub use telemetry::{MetricsRegistry, MetricsSnapshot, TelemetrySink};
pub use trace::Trace;
pub use tracing::{
    chrome_trace_json, prometheus_text, FlightDump, FlightEvent, FlightRecorder, SpanArg,
    SpanCollector, SpanRecord, TraceScope, TRACE_SCHEMA_VERSION,
};
pub use workspace::Workspace;
