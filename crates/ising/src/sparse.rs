//! Sparse (CSR) form of the coupling matrix for fast annealing of
//! decomposed systems.

use crate::coupling::Coupling;
use serde::{Deserialize, Serialize};

/// A compressed-sparse-row view of a symmetric coupling matrix.
///
/// Each undirected coupling is stored in both row `i` and row `j`, so the
/// mat-vec is a plain CSR product. Built from a dense [`Coupling`], whose
/// symmetry and zero-diagonal invariants it inherits.
///
/// # Example
///
/// ```
/// use dsgl_ising::{Coupling, SparseCoupling};
///
/// let mut j = Coupling::zeros(3);
/// j.set(0, 2, 2.0);
/// let s = SparseCoupling::from_dense(&j);
/// assert_eq!(s.nnz(), 1);
/// let mut out = [0.0; 3];
/// s.matvec(&[1.0, 0.0, 0.5], &mut out);
/// assert_eq!(out, [1.0, 0.0, 2.0]);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SparseCoupling {
    n: usize,
    offsets: Vec<usize>,
    cols: Vec<u32>,
    vals: Vec<f64>,
}

impl SparseCoupling {
    /// Converts a dense coupling matrix to CSR, dropping explicit zeros.
    pub fn from_dense(dense: &Coupling) -> Self {
        let n = dense.n();
        let mut offsets = Vec::with_capacity(n + 1);
        let mut cols = Vec::new();
        let mut vals = Vec::new();
        offsets.push(0);
        for i in 0..n {
            let row = dense.row(i);
            for (j, &w) in row.iter().enumerate() {
                if w != 0.0 {
                    cols.push(j as u32);
                    vals.push(w);
                }
            }
            offsets.push(cols.len());
        }
        SparseCoupling {
            n,
            offsets,
            cols,
            vals,
        }
    }

    /// Number of nodes.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of nonzero couplings (unordered pairs).
    pub fn nnz(&self) -> usize {
        self.vals.len() / 2
    }

    /// Iterates the nonzero entries of row `i` as `(col, weight)`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= n()`.
    pub fn row(&self, i: usize) -> impl Iterator<Item = (usize, f64)> + '_ {
        let (s, e) = (self.offsets[i], self.offsets[i + 1]);
        self.cols[s..e]
            .iter()
            .zip(&self.vals[s..e])
            .map(|(&c, &w)| (c as usize, w))
    }

    /// Sparse mat-vec `out = J * s`.
    ///
    /// Rows are computed in parallel when the `parallel` feature is on
    /// and the system is large enough; each row accumulates in column
    /// order either way, so results are bit-identical across thread
    /// counts.
    ///
    /// # Panics
    ///
    /// Panics if `s` or `out` have wrong length.
    pub fn matvec(&self, s: &[f64], out: &mut [f64]) {
        assert_eq!(s.len(), self.n, "state length mismatch");
        assert_eq!(out.len(), self.n, "output length mismatch");
        let work_per_row = self.vals.len() / self.n.max(1) + 1;
        crate::par::fill_rows(out, work_per_row, |i| {
            let mut acc = 0.0;
            for (j, w) in self.row(i) {
                acc += w * s[j];
            }
            acc
        });
    }

    /// Sum of `|J[i][j]|` over row `i`.
    pub fn row_abs_sum(&self, i: usize) -> f64 {
        self.row(i).map(|(_, w)| w.abs()).sum()
    }

    /// Converts back to a dense [`Coupling`].
    pub fn to_dense(&self) -> Coupling {
        let mut dense = Coupling::zeros(self.n);
        for i in 0..self.n {
            for (j, w) in self.row(i) {
                if j > i {
                    dense.set(i, j, w);
                }
            }
        }
        dense
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Coupling {
        let mut j = Coupling::zeros(4);
        j.set(0, 1, 1.0);
        j.set(1, 2, -2.0);
        j.set(0, 3, 0.5);
        j
    }

    #[test]
    fn roundtrip_dense_sparse_dense() {
        let dense = sample();
        let sparse = SparseCoupling::from_dense(&dense);
        assert_eq!(sparse.to_dense(), dense);
    }

    #[test]
    fn nnz_counts_pairs() {
        let sparse = SparseCoupling::from_dense(&sample());
        assert_eq!(sparse.nnz(), 3);
    }

    #[test]
    fn matvec_agrees_with_dense() {
        let dense = sample();
        let sparse = SparseCoupling::from_dense(&dense);
        let s = [0.3, -1.0, 0.7, 2.0];
        let mut d_out = [0.0; 4];
        let mut s_out = [0.0; 4];
        dense.matvec(&s, &mut d_out);
        sparse.matvec(&s, &mut s_out);
        for k in 0..4 {
            assert!((d_out[k] - s_out[k]).abs() < 1e-12);
        }
    }

    #[test]
    fn row_abs_sum_agrees() {
        let dense = sample();
        let sparse = SparseCoupling::from_dense(&dense);
        for i in 0..4 {
            assert!((dense.row_abs_sum(i) - sparse.row_abs_sum(i)).abs() < 1e-12);
        }
    }

    #[test]
    fn empty_matrix() {
        let sparse = SparseCoupling::from_dense(&Coupling::zeros(3));
        assert_eq!(sparse.nnz(), 0);
        let mut out = [1.0; 3];
        sparse.matvec(&[1.0; 3], &mut out);
        assert_eq!(out, [0.0; 3]);
    }

    #[test]
    fn random_symmetric_roundtrip_preserves_bits() {
        // Pseudo-random symmetric matrix with ~35% density: CSR must
        // reproduce the dense form exactly, including value bits.
        let n = 24;
        let mut j = Coupling::zeros(n);
        let mut x = 0x2545_F491_4F6C_DD1Du64;
        for i in 0..n {
            for k in (i + 1)..n {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                if x % 100 < 35 {
                    j.set(i, k, (x % 1000) as f64 / 500.0 - 1.0);
                }
            }
        }
        let sparse = SparseCoupling::from_dense(&j);
        let back = sparse.to_dense();
        assert_eq!(back, j);
        for i in 0..n {
            assert_eq!(
                back.row(i)
                    .iter()
                    .map(|v| v.to_bits())
                    .collect::<Vec<_>>(),
                j.row(i).iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "row {i} bits changed in roundtrip"
            );
        }
    }

    #[test]
    fn empty_row_roundtrip() {
        // Node 2 is isolated: its CSR row is empty, and the roundtrip
        // and matvec must both handle the zero-length span.
        let mut j = Coupling::zeros(5);
        j.set(0, 1, 1.5);
        j.set(3, 4, -0.5);
        let sparse = SparseCoupling::from_dense(&j);
        assert_eq!(sparse.row(2).count(), 0);
        assert_eq!(sparse.to_dense(), j);
        let mut out = [9.0; 5];
        sparse.matvec(&[1.0, 2.0, 3.0, 4.0, 5.0], &mut out);
        assert_eq!(out[2], 0.0);
        assert_eq!(sparse.row_abs_sum(2), 0.0);
    }

    #[test]
    fn fully_pruned_roundtrip() {
        // prune_to_density(0) leaves no couplings at all: every row is
        // empty and the roundtrip yields the zero matrix.
        let mut j = sample();
        j.prune_to_density(0.0);
        let sparse = SparseCoupling::from_dense(&j);
        assert_eq!(sparse.nnz(), 0);
        assert_eq!(sparse.to_dense(), Coupling::zeros(4));
        for i in 0..4 {
            assert_eq!(sparse.row(i).count(), 0);
        }
    }
}
