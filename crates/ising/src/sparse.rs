//! Sparse (CSR) form of the coupling matrix for fast annealing of
//! decomposed systems.

use crate::coupling::Coupling;
use crate::error::IsingError;
use serde::{Deserialize, Serialize};

/// A compressed-sparse-row view of a symmetric coupling matrix.
///
/// Each undirected coupling is stored in both row `i` and row `j`, so the
/// mat-vec is a plain CSR product. Built from a dense [`Coupling`], whose
/// symmetry and zero-diagonal invariants it inherits.
///
/// # Example
///
/// ```
/// use dsgl_ising::{Coupling, SparseCoupling};
///
/// let mut j = Coupling::zeros(3);
/// j.set(0, 2, 2.0);
/// let s = SparseCoupling::from_dense(&j);
/// assert_eq!(s.nnz(), 1);
/// let mut out = [0.0; 3];
/// s.matvec(&[1.0, 0.0, 0.5], &mut out);
/// assert_eq!(out, [1.0, 0.0, 2.0]);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SparseCoupling {
    n: usize,
    offsets: Vec<usize>,
    cols: Vec<u32>,
    vals: Vec<f64>,
}

impl SparseCoupling {
    /// Converts a dense coupling matrix to CSR, dropping explicit zeros.
    pub fn from_dense(dense: &Coupling) -> Self {
        let n = dense.n();
        let mut offsets = Vec::with_capacity(n + 1);
        let mut cols = Vec::new();
        let mut vals = Vec::new();
        offsets.push(0);
        for i in 0..n {
            let row = dense.row(i);
            for (j, &w) in row.iter().enumerate() {
                if w != 0.0 {
                    cols.push(j as u32);
                    vals.push(w);
                }
            }
            offsets.push(cols.len());
        }
        SparseCoupling {
            n,
            offsets,
            cols,
            vals,
        }
    }

    /// Builds a sparse coupling directly from an undirected entry list
    /// `(i, j, w)` without ever materialising a dense matrix — the only
    /// constructor that scales to the 100k+ node systems the multigrid
    /// annealing pipeline sweeps (a dense 200k×200k coupling would need
    /// 320 GB).
    ///
    /// Duplicate `(i, j)` pairs are summed in input order; explicit
    /// zeros are dropped. The result is bit-identical to
    /// [`SparseCoupling::from_dense`] on the equivalent dense matrix:
    /// both directions of each coupling are stored and every row's
    /// columns are ascending.
    ///
    /// # Errors
    ///
    /// - [`IsingError::NodeOutOfRange`] if an endpoint is `>= n`;
    /// - [`IsingError::InvalidParameter`] for a self-coupling `i == j`
    ///   (the diagonal belongs to the self-reaction `h`, not `J`);
    /// - [`IsingError::NonFinite`] for a NaN or infinite weight.
    pub fn from_entries(n: usize, entries: &[(u32, u32, f64)]) -> Result<Self, IsingError> {
        for &(i, j, w) in entries {
            if i as usize >= n {
                return Err(IsingError::NodeOutOfRange { node: i as usize, len: n });
            }
            if j as usize >= n {
                return Err(IsingError::NodeOutOfRange { node: j as usize, len: n });
            }
            if i == j {
                return Err(IsingError::InvalidParameter {
                    what: "coupling diagonal (self-coupling)",
                    value: w,
                });
            }
            if !w.is_finite() {
                return Err(IsingError::NonFinite { what: "coupling entries" });
            }
        }
        let mut directed: Vec<(u32, u32, f64)> = Vec::with_capacity(entries.len() * 2);
        for &(i, j, w) in entries {
            if w != 0.0 {
                directed.push((i, j, w));
                directed.push((j, i, w));
            }
        }
        // Stable sort: duplicate (row, col) pairs keep input order, so
        // their sum accumulates in a deterministic order.
        directed.sort_by_key(|&(r, c, _)| (r, c));
        let mut counts = vec![0usize; n];
        let mut cols: Vec<u32> = Vec::with_capacity(directed.len());
        let mut vals: Vec<f64> = Vec::with_capacity(directed.len());
        let mut last: Option<(u32, u32)> = None;
        for &(r, c, w) in &directed {
            if last == Some((r, c)) {
                if let Some(v) = vals.last_mut() {
                    *v += w;
                }
            } else {
                counts[r as usize] += 1;
                cols.push(c);
                vals.push(w);
                last = Some((r, c));
            }
        }
        let mut offsets = Vec::with_capacity(n + 1);
        offsets.push(0usize);
        let mut acc = 0usize;
        for &c in &counts {
            acc += c;
            offsets.push(acc);
        }
        Ok(SparseCoupling {
            n,
            offsets,
            cols,
            vals,
        })
    }

    /// Number of nodes.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of nonzero couplings (unordered pairs).
    pub fn nnz(&self) -> usize {
        self.vals.len() / 2
    }

    /// Iterates the nonzero entries of row `i` as `(col, weight)`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= n()`.
    pub fn row(&self, i: usize) -> impl Iterator<Item = (usize, f64)> + '_ {
        let (s, e) = (self.offsets[i], self.offsets[i + 1]);
        self.cols[s..e]
            .iter()
            .zip(&self.vals[s..e])
            .map(|(&c, &w)| (c as usize, w))
    }

    /// Sparse mat-vec `out = J * s`.
    ///
    /// Rows are computed in parallel when the `parallel` feature is on
    /// and the system is large enough; each row accumulates in column
    /// order either way, so results are bit-identical across thread
    /// counts.
    ///
    /// # Panics
    ///
    /// Panics if `s` or `out` have wrong length.
    pub fn matvec(&self, s: &[f64], out: &mut [f64]) {
        assert_eq!(s.len(), self.n, "state length mismatch");
        assert_eq!(out.len(), self.n, "output length mismatch");
        let work_per_row = self.vals.len() / self.n.max(1) + 1;
        crate::par::fill_rows(out, work_per_row, |i| {
            let mut acc = 0.0;
            for (j, w) in self.row(i) {
                acc += w * s[j];
            }
            acc
        });
    }

    /// Sum of `|J[i][j]|` over row `i`.
    pub fn row_abs_sum(&self, i: usize) -> f64 {
        self.row(i).map(|(_, w)| w.abs()).sum()
    }

    /// Converts back to a dense [`Coupling`].
    pub fn to_dense(&self) -> Coupling {
        let mut dense = Coupling::zeros(self.n);
        for i in 0..self.n {
            for (j, w) in self.row(i) {
                if j > i {
                    dense.set(i, j, w);
                }
            }
        }
        dense
    }
}

/// One processing element's couplings as a dense `K×K` block over the
/// nodes mapped to that PE.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tile {
    /// Node indices in this tile, ascending.
    nodes: Vec<u32>,
    /// Row-major `K×K` weights: `weights[r*K + c] = J[nodes[r]][nodes[c]]`.
    weights: Vec<f64>,
}

impl Tile {
    /// Nodes mapped to this tile, ascending.
    pub fn nodes(&self) -> &[u32] {
        &self.nodes
    }

    /// Tile dimension `K`.
    pub fn dim(&self) -> usize {
        self.nodes.len()
    }
}

/// PE-tiled block-sparse form of the intra-PE coupling structure.
///
/// The mapped mesh machine partitions nodes onto processing elements;
/// couplings between nodes on the *same* PE form a dense block no larger
/// than the PE capacity. Storing each block as a contiguous row-major
/// tile turns the intra-PE mat-vec into a sequence of small dense
/// kernels over gathered state — cache-resident and free of CSR index
/// chasing. Cross-PE couplings are *not* represented here; the machine
/// keeps them in per-portal lists (see `dsgl-hw`).
///
/// Within a tile, each output row accumulates over the tile's nodes in
/// ascending order — the same order a CSR row restricted to intra-PE
/// entries would use — so results match [`SparseCoupling::matvec`] on
/// the same couplings bit-for-bit (dense zeros only add `+0.0` terms).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TiledCoupling {
    n: usize,
    tiles: Vec<Tile>,
    /// Total multiply-add estimate `Σ K²`, used for fork decisions.
    work: usize,
}

impl TiledCoupling {
    /// Builds tiles from a dense coupling matrix and a node→block
    /// partition (`block_of[i]` is node `i`'s PE). Only couplings whose
    /// endpoints share a block are captured; cross-block couplings are
    /// ignored (callers route those separately).
    ///
    /// # Panics
    ///
    /// Panics if `block_of.len() != dense.n()`.
    pub fn from_dense_partition(dense: &Coupling, block_of: &[usize]) -> Self {
        let n = dense.n();
        assert_eq!(block_of.len(), n, "partition length mismatch");
        let mut groups: std::collections::BTreeMap<usize, Vec<u32>> =
            std::collections::BTreeMap::new();
        for (i, &b) in block_of.iter().enumerate() {
            groups.entry(b).or_default().push(i as u32);
        }
        let mut tiles = Vec::with_capacity(groups.len());
        let mut work = 0usize;
        for nodes in groups.into_values() {
            let k = nodes.len();
            let mut weights = vec![0.0; k * k];
            for (r, &ir) in nodes.iter().enumerate() {
                let row = dense.row(ir as usize);
                for (c, &ic) in nodes.iter().enumerate() {
                    weights[r * k + c] = row[ic as usize];
                }
            }
            work += k * k;
            tiles.push(Tile { nodes, weights });
        }
        TiledCoupling { n, tiles, work }
    }

    /// Number of nodes.
    pub fn n(&self) -> usize {
        self.n
    }

    /// The tiles, one per occupied PE.
    pub fn tiles(&self) -> &[Tile] {
        &self.tiles
    }

    /// Tiled mat-vec `out = J_intra * s`.
    ///
    /// `gather` is a caller-owned scratch buffer (grown as needed) that
    /// holds each tile's gathered state and products, letting the hot
    /// loop run allocation-free on contiguous memory via the row-blocked
    /// kernel [`dsgl_nn::kernels::matvec_rows_into`]. Tiles are
    /// processed in parallel when the `parallel` feature is on and the
    /// total tile work clears the fork threshold; per-row accumulation
    /// order is fixed either way, so results are bit-identical across
    /// thread counts.
    ///
    /// # Panics
    ///
    /// Panics if `s` or `out` have wrong length.
    pub fn matvec_with_scratch(&self, s: &[f64], out: &mut [f64], gather: &mut Vec<f64>) {
        assert_eq!(s.len(), self.n, "state length mismatch");
        assert_eq!(out.len(), self.n, "output length mismatch");
        out.fill(0.0);
        #[cfg(feature = "parallel")]
        if self.work >= crate::par::PAR_MIN_WORK {
            // forbid(unsafe_code) rules out disjoint scatter from
            // threads: compute per-tile products in parallel, scatter
            // serially (the scatter is O(n), the products O(Σ K²)).
            let products = crate::par::map_indexed(self.tiles.len(), self.work / self.tiles.len().max(1), |t| {
                let tile = &self.tiles[t];
                let k = tile.nodes.len();
                let mut local = vec![0.0; 2 * k];
                let (gs, prod) = local.split_at_mut(k);
                for (g, &j) in gs.iter_mut().zip(&tile.nodes) {
                    *g = s[j as usize];
                }
                dsgl_nn::kernels::matvec_rows_into(&tile.weights, k, gs, prod);
                local
            });
            for (tile, local) in self.tiles.iter().zip(products) {
                let k = tile.nodes.len();
                for (&node, &v) in tile.nodes.iter().zip(&local[k..]) {
                    out[node as usize] = v;
                }
            }
            return;
        }
        for tile in &self.tiles {
            let k = tile.nodes.len();
            // One scratch buffer holds both halves: gathered state in
            // [0, k), the tile's products in [k, 2k).
            gather.clear();
            gather.resize(2 * k, 0.0);
            let (gs, prod) = gather.split_at_mut(k);
            for (g, &j) in gs.iter_mut().zip(&tile.nodes) {
                *g = s[j as usize];
            }
            dsgl_nn::kernels::matvec_rows_into(&tile.weights, k, gs, prod);
            for (&node, &v) in tile.nodes.iter().zip(prod.iter()) {
                out[node as usize] = v;
            }
        }
    }

    /// Tiled mat-vec with an internal scratch buffer (convenience for
    /// tests and one-off callers; hot paths should hold their own
    /// scratch and use [`TiledCoupling::matvec_with_scratch`]).
    pub fn matvec(&self, s: &[f64], out: &mut [f64]) {
        let mut gather = Vec::new();
        self.matvec_with_scratch(s, out, &mut gather);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Coupling {
        let mut j = Coupling::zeros(4);
        j.set(0, 1, 1.0);
        j.set(1, 2, -2.0);
        j.set(0, 3, 0.5);
        j
    }

    #[test]
    fn roundtrip_dense_sparse_dense() {
        let dense = sample();
        let sparse = SparseCoupling::from_dense(&dense);
        assert_eq!(sparse.to_dense(), dense);
    }

    #[test]
    fn nnz_counts_pairs() {
        let sparse = SparseCoupling::from_dense(&sample());
        assert_eq!(sparse.nnz(), 3);
    }

    #[test]
    fn matvec_agrees_with_dense() {
        let dense = sample();
        let sparse = SparseCoupling::from_dense(&dense);
        let s = [0.3, -1.0, 0.7, 2.0];
        let mut d_out = [0.0; 4];
        let mut s_out = [0.0; 4];
        dense.matvec(&s, &mut d_out);
        sparse.matvec(&s, &mut s_out);
        for k in 0..4 {
            assert!((d_out[k] - s_out[k]).abs() < 1e-12);
        }
    }

    #[test]
    fn row_abs_sum_agrees() {
        let dense = sample();
        let sparse = SparseCoupling::from_dense(&dense);
        for i in 0..4 {
            assert!((dense.row_abs_sum(i) - sparse.row_abs_sum(i)).abs() < 1e-12);
        }
    }

    #[test]
    fn empty_matrix() {
        let sparse = SparseCoupling::from_dense(&Coupling::zeros(3));
        assert_eq!(sparse.nnz(), 0);
        let mut out = [1.0; 3];
        sparse.matvec(&[1.0; 3], &mut out);
        assert_eq!(out, [0.0; 3]);
    }

    #[test]
    fn random_symmetric_roundtrip_preserves_bits() {
        // Pseudo-random symmetric matrix with ~35% density: CSR must
        // reproduce the dense form exactly, including value bits.
        let n = 24;
        let mut j = Coupling::zeros(n);
        let mut x = 0x2545_F491_4F6C_DD1Du64;
        for i in 0..n {
            for k in (i + 1)..n {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                if x % 100 < 35 {
                    j.set(i, k, (x % 1000) as f64 / 500.0 - 1.0);
                }
            }
        }
        let sparse = SparseCoupling::from_dense(&j);
        let back = sparse.to_dense();
        assert_eq!(back, j);
        for i in 0..n {
            assert_eq!(
                back.row(i)
                    .iter()
                    .map(|v| v.to_bits())
                    .collect::<Vec<_>>(),
                j.row(i).iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "row {i} bits changed in roundtrip"
            );
        }
    }

    #[test]
    fn empty_row_roundtrip() {
        // Node 2 is isolated: its CSR row is empty, and the roundtrip
        // and matvec must both handle the zero-length span.
        let mut j = Coupling::zeros(5);
        j.set(0, 1, 1.5);
        j.set(3, 4, -0.5);
        let sparse = SparseCoupling::from_dense(&j);
        assert_eq!(sparse.row(2).count(), 0);
        assert_eq!(sparse.to_dense(), j);
        let mut out = [9.0; 5];
        sparse.matvec(&[1.0, 2.0, 3.0, 4.0, 5.0], &mut out);
        assert_eq!(out[2], 0.0);
        assert_eq!(sparse.row_abs_sum(2), 0.0);
    }

    #[test]
    fn from_entries_matches_from_dense_bitwise() {
        let dense = sample();
        let entries: Vec<(u32, u32, f64)> = vec![(1, 0, 1.0), (1, 2, -2.0), (3, 0, 0.5)];
        let a = SparseCoupling::from_dense(&dense);
        let b = SparseCoupling::from_entries(4, &entries).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn from_entries_sums_duplicates_and_drops_zeros() {
        let s = SparseCoupling::from_entries(
            3,
            &[(0, 1, 1.0), (1, 0, 0.5), (0, 2, 0.0)],
        )
        .unwrap();
        assert_eq!(s.nnz(), 1);
        let mut out = [0.0; 3];
        s.matvec(&[1.0, 1.0, 1.0], &mut out);
        assert_eq!(out, [1.5, 1.5, 0.0]);
    }

    #[test]
    fn from_entries_rejects_bad_input() {
        assert!(matches!(
            SparseCoupling::from_entries(2, &[(0, 2, 1.0)]),
            Err(IsingError::NodeOutOfRange { node: 2, len: 2 })
        ));
        assert!(matches!(
            SparseCoupling::from_entries(2, &[(1, 1, 1.0)]),
            Err(IsingError::InvalidParameter { .. })
        ));
        assert!(matches!(
            SparseCoupling::from_entries(2, &[(0, 1, f64::NAN)]),
            Err(IsingError::NonFinite { .. })
        ));
    }

    #[test]
    fn from_entries_empty() {
        let s = SparseCoupling::from_entries(4, &[]).unwrap();
        assert_eq!(s.nnz(), 0);
        assert_eq!(s.n(), 4);
        let mut out = [3.0; 4];
        s.matvec(&[1.0; 4], &mut out);
        assert_eq!(out, [0.0; 4]);
    }

    #[test]
    fn tiled_matvec_matches_csr_on_intra_block_couplings() {
        // Build a matrix with only intra-block couplings: tiled and CSR
        // mat-vecs must agree bit-for-bit.
        let n = 12;
        let block_of: Vec<usize> = (0..n).map(|i| i / 4).collect();
        let mut j = Coupling::zeros(n);
        let mut x = 0x9E37_79B9_7F4A_7C15u64;
        for i in 0..n {
            for k in (i + 1)..n {
                if block_of[i] == block_of[k] {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    j.set(i, k, (x % 1000) as f64 / 500.0 - 1.0);
                }
            }
        }
        let csr = SparseCoupling::from_dense(&j);
        let tiled = TiledCoupling::from_dense_partition(&j, &block_of);
        assert_eq!(tiled.tiles().len(), 3);
        let s: Vec<f64> = (0..n).map(|i| (i as f64 * 0.37).sin()).collect();
        let mut csr_out = vec![0.0; n];
        let mut tiled_out = vec![0.0; n];
        csr.matvec(&s, &mut csr_out);
        tiled.matvec(&s, &mut tiled_out);
        for i in 0..n {
            assert_eq!(
                csr_out[i].to_bits(),
                tiled_out[i].to_bits(),
                "row {i}: {} vs {}",
                csr_out[i],
                tiled_out[i]
            );
        }
    }

    #[test]
    fn tiled_ignores_cross_block_couplings() {
        let mut j = Coupling::zeros(4);
        j.set(0, 1, 1.0); // intra (block 0)
        j.set(1, 2, 9.0); // cross: dropped from tiles
        j.set(2, 3, -0.5); // intra (block 1)
        let tiled = TiledCoupling::from_dense_partition(&j, &[0, 0, 1, 1]);
        let mut out = vec![0.0; 4];
        tiled.matvec(&[1.0, 1.0, 1.0, 1.0], &mut out);
        assert_eq!(out, [1.0, 1.0, -0.5, -0.5]);
    }

    #[test]
    fn tiled_handles_singleton_and_empty_gaps() {
        // Non-contiguous block ids with a singleton tile.
        let mut j = Coupling::zeros(3);
        j.set(0, 2, 2.0);
        let tiled = TiledCoupling::from_dense_partition(&j, &[7, 3, 7]);
        assert_eq!(tiled.tiles().len(), 2);
        let mut out = vec![9.0; 3];
        tiled.matvec(&[0.5, 1.0, 1.0], &mut out);
        assert_eq!(out, [2.0, 0.0, 1.0]);
    }

    #[test]
    fn fully_pruned_roundtrip() {
        // prune_to_density(0) leaves no couplings at all: every row is
        // empty and the roundtrip yields the zero matrix.
        let mut j = sample();
        j.prune_to_density(0.0);
        let sparse = SparseCoupling::from_dense(&j);
        assert_eq!(sparse.nnz(), 0);
        assert_eq!(sparse.to_dense(), Coupling::zeros(4));
        for i in 0..4 {
            assert_eq!(sparse.row(i).count(), 0);
        }
    }
}
