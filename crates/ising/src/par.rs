//! Row-parallel kernel dispatch.
//!
//! Every parallel kernel in this crate funnels through [`fill_rows`]:
//! output element `i` is produced by an independent closure call `f(i)`,
//! and the parallel path only changes *which thread* evaluates each row,
//! never the order of floating-point operations inside a row. Results
//! are therefore bit-identical across thread counts and to the serial
//! build (`--no-default-features`).

/// Minimum estimated flop count before forking threads is worth it.
///
/// Threads are spawned per call (scoped fork-join), so a kernel must
/// carry roughly a millisecond of work to amortise the spawn cost.
#[cfg(feature = "parallel")]
pub(crate) const PAR_MIN_WORK: usize = 1 << 20;

/// Computes `out[i] = f(i)` for every `i`, splitting rows across
/// threads when the `parallel` feature is enabled and the total work
/// (`out.len() * work_per_row` operation estimate) is large enough.
#[cfg(feature = "parallel")]
pub(crate) fn fill_rows<F>(out: &mut [f64], work_per_row: usize, f: F)
where
    F: Fn(usize) -> f64 + Sync,
{
    use rayon::prelude::*;
    let total_work = out.len().saturating_mul(work_per_row.max(1));
    if total_work < PAR_MIN_WORK || rayon::current_num_threads() <= 1 {
        for (i, o) in out.iter_mut().enumerate() {
            *o = f(i);
        }
        return;
    }
    out.par_iter_mut().enumerate().for_each(|(i, o)| *o = f(i));
}

/// Serial fallback when the `parallel` feature is disabled.
#[cfg(not(feature = "parallel"))]
pub(crate) fn fill_rows<F>(out: &mut [f64], _work_per_row: usize, f: F)
where
    F: Fn(usize) -> f64 + Sync,
{
    for (i, o) in out.iter_mut().enumerate() {
        *o = f(i);
    }
}

/// Computes `vec![f(0), f(1), …, f(len-1)]`, mapping items across
/// threads when the `parallel` feature is enabled and the estimated
/// work (`len * work_per_item`) is large enough. Order-preserving, so
/// results are position-identical to the serial build. Unlike
/// [`fill_rows`] the item type is generic — used by kernels that
/// produce a buffer per item and scatter afterwards (the crate forbids
/// unsafe code, so disjoint parallel scatter is not an option).
#[cfg(feature = "parallel")]
pub(crate) fn map_indexed<T, F>(len: usize, work_per_item: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    use rayon::prelude::*;
    let total_work = len.saturating_mul(work_per_item.max(1));
    if total_work < PAR_MIN_WORK || rayon::current_num_threads() <= 1 {
        return (0..len).map(f).collect();
    }
    (0..len).into_par_iter().map(f).collect()
}

/// Serial fallback when the `parallel` feature is disabled. Only the
/// parallel tile path calls this from the library, so the serial build
/// keeps it for the shared unit test alone.
#[cfg(not(feature = "parallel"))]
#[cfg_attr(not(test), allow(dead_code))]
pub(crate) fn map_indexed<T, F>(len: usize, _work_per_item: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    (0..len).map(f).collect()
}

/// Computes `f(start_row, chunk)` over consecutive `chunk`-row slabs of
/// `out`, splitting slabs across threads when the `parallel` feature is
/// enabled and the estimated work (`out.len() * work_per_row`) is large
/// enough. The closure owns each slab exclusively, so multi-row blocked
/// kernels (which share input streams across a few accumulator chains)
/// can run under the same bit-exactness contract as [`fill_rows`]: the
/// slab boundaries are identical in the serial and parallel paths, and
/// per-row accumulation order never depends on which thread runs a slab.
#[cfg(feature = "parallel")]
pub(crate) fn fill_row_chunks<F>(out: &mut [f64], chunk: usize, work_per_row: usize, f: F)
where
    F: Fn(usize, &mut [f64]) + Sync,
{
    use rayon::prelude::*;
    let chunk = chunk.max(1);
    let total_work = out.len().saturating_mul(work_per_row.max(1));
    if total_work < PAR_MIN_WORK || rayon::current_num_threads() <= 1 {
        for (ci, slab) in out.chunks_mut(chunk).enumerate() {
            f(ci * chunk, slab);
        }
        return;
    }
    out.par_chunks_mut(chunk)
        .enumerate()
        .for_each(|(ci, slab)| f(ci * chunk, slab));
}

/// Serial fallback when the `parallel` feature is disabled.
#[cfg(not(feature = "parallel"))]
pub(crate) fn fill_row_chunks<F>(out: &mut [f64], chunk: usize, _work_per_row: usize, f: F)
where
    F: Fn(usize, &mut [f64]) + Sync,
{
    let chunk = chunk.max(1);
    for (ci, slab) in out.chunks_mut(chunk).enumerate() {
        f(ci * chunk, slab);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fills_every_row_small() {
        let mut out = vec![0.0; 300];
        fill_rows(&mut out, 1, |i| i as f64 * 1.5);
        assert!(out.iter().enumerate().all(|(i, &v)| v == i as f64 * 1.5));
    }

    #[test]
    fn fills_every_row_above_threshold() {
        let mut out = vec![0.0; 2048];
        fill_rows(&mut out, 2048, |i| (i as f64).sqrt());
        assert!(out
            .iter()
            .enumerate()
            .all(|(i, &v)| v.to_bits() == (i as f64).sqrt().to_bits()));
    }

    #[test]
    fn map_indexed_preserves_order() {
        for work in [1, 4096] {
            let out: Vec<usize> = map_indexed(1024, work, |i| i * 3);
            assert!(out.iter().enumerate().all(|(i, &v)| v == i * 3));
        }
    }

    #[test]
    fn fill_row_chunks_covers_ragged_tail() {
        for (len, work) in [(10usize, 1usize), (2050, 4096)] {
            let mut out = vec![0.0; len];
            fill_row_chunks(&mut out, 4, work, |start, slab| {
                for (r, o) in slab.iter_mut().enumerate() {
                    *o = (start + r) as f64 * 2.0;
                }
            });
            assert!(out.iter().enumerate().all(|(i, &v)| v == i as f64 * 2.0));
        }
    }
}
