//! Row-parallel kernel dispatch.
//!
//! Every parallel kernel in this crate funnels through [`fill_rows`]:
//! output element `i` is produced by an independent closure call `f(i)`,
//! and the parallel path only changes *which thread* evaluates each row,
//! never the order of floating-point operations inside a row. Results
//! are therefore bit-identical across thread counts and to the serial
//! build (`--no-default-features`).

/// Minimum estimated flop count before forking threads is worth it.
///
/// Threads are spawned per call (scoped fork-join), so a kernel must
/// carry roughly a millisecond of work to amortise the spawn cost.
#[cfg(feature = "parallel")]
pub(crate) const PAR_MIN_WORK: usize = 1 << 20;

/// Computes `out[i] = f(i)` for every `i`, splitting rows across
/// threads when the `parallel` feature is enabled and the total work
/// (`out.len() * work_per_row` operation estimate) is large enough.
#[cfg(feature = "parallel")]
pub(crate) fn fill_rows<F>(out: &mut [f64], work_per_row: usize, f: F)
where
    F: Fn(usize) -> f64 + Sync,
{
    use rayon::prelude::*;
    let total_work = out.len().saturating_mul(work_per_row.max(1));
    if total_work < PAR_MIN_WORK || rayon::current_num_threads() <= 1 {
        for (i, o) in out.iter_mut().enumerate() {
            *o = f(i);
        }
        return;
    }
    out.par_iter_mut().enumerate().for_each(|(i, o)| *o = f(i));
}

/// Serial fallback when the `parallel` feature is disabled.
#[cfg(not(feature = "parallel"))]
pub(crate) fn fill_rows<F>(out: &mut [f64], _work_per_row: usize, f: F)
where
    F: Fn(usize) -> f64 + Sync,
{
    for (i, o) in out.iter_mut().enumerate() {
        *o = f(i);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fills_every_row_small() {
        let mut out = vec![0.0; 300];
        fill_rows(&mut out, 1, |i| i as f64 * 1.5);
        assert!(out.iter().enumerate().all(|(i, &v)| v == i as f64 * 1.5));
    }

    #[test]
    fn fills_every_row_above_threshold() {
        let mut out = vec![0.0; 2048];
        fill_rows(&mut out, 2048, |i| (i as f64).sqrt());
        assert!(out
            .iter()
            .enumerate()
            .all(|(i, &v)| v.to_bits() == (i as f64).sqrt().to_bits()));
    }
}
