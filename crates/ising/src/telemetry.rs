//! Workspace-wide telemetry: a lightweight, thread-safe metrics
//! registry with named counters, gauges, and fixed-bucket histograms.
//!
//! The paper's whole argument rests on *dynamics you can see* —
//! convergence time, anneal steps, retry behaviour, PE/CU utilisation —
//! so every layer of the workspace reports run-level statistics through
//! a [`TelemetrySink`]:
//!
//! - **annealing** (`anneal.*`): steps, simulated time, convergence
//!   residuals, active-set occupancy, drain validations, rail
//!   saturations (recorded by [`crate::RealValuedDspu`] and the
//!   event-driven engine);
//! - **guarded inference** (`guard.*`): attempts, retries per
//!   mitigation rung, degraded windows, fault sanitisations (recorded
//!   by `dsgl-core`'s guard);
//! - **training** (`train.*`): ridge solves, λ escalations, per-phase
//!   durations (recorded by `dsgl-core`'s trainer and ridge solver);
//! - **hw mapping** (`hw.*`): PE occupancy, CU lane demand vs. `L`,
//!   wormhole count, co-anneal slice switches (recorded by `dsgl-hw`'s
//!   mapped machine).
//!
//! The sink is a cheap cloneable handle. The default [noop
//! sink](TelemetrySink::noop) carries no registry: every recording
//! method returns after one branch, no allocation, no lock, no clock
//! read — hot paths pay nothing when telemetry is off. An [enabled
//! sink](TelemetrySink::enabled) shares one [`MetricsRegistry`] across
//! every clone; recording never touches machine state or RNG streams,
//! so strict-path outputs stay bit-identical with telemetry on (locked
//! in by the determinism suite).
//!
//! Values are recorded at *run* granularity (a handful of updates per
//! annealing run, never per integration step), and durations are
//! simulated time in ns wherever the dynamics define one; wall-clock is
//! only used by the coarse [phase spans](TelemetrySink::time_phase)
//! around pipeline stages.
//!
//! A [`MetricsSnapshot`] freezes the registry into a serde-stable,
//! sorted form for JSON export (`results/BENCH_telemetry.json` in the
//! bench harness) and renders a human-readable
//! [summary table](MetricsSnapshot::summary_table).

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Fixed histogram bucket upper bounds: a 1–2–5 log series spanning
/// `1e-9 ..= 1e12`, wide enough for convergence residuals (rail
/// fractions per ns), active-set fractions, step counts, and simulated
/// or wall nanoseconds alike. Samples above the top bound land in the
/// snapshot's `overflow` count.
pub fn bucket_bounds() -> Vec<f64> {
    let mut bounds = Vec::with_capacity(66);
    for exp in -9..=12i32 {
        for mantissa in [1.0, 2.0, 5.0] {
            bounds.push(mantissa * 10f64.powi(exp));
        }
    }
    bounds
}

/// One live instrument inside the registry.
#[derive(Debug, Clone)]
enum Slot {
    /// Monotonic event count.
    Counter(u64),
    /// Last-write-wins level with min/max/set-count tracking.
    Gauge {
        value: f64,
        min: f64,
        max: f64,
        sets: u64,
    },
    /// Fixed-bucket histogram over [`bucket_bounds`].
    Histogram {
        counts: Vec<u64>,
        overflow: u64,
        count: u64,
        sum: f64,
        min: f64,
        max: f64,
        last: f64,
    },
}

impl Slot {
    fn new_histogram() -> Slot {
        Slot::Histogram {
            counts: vec![0; bucket_bounds().len()],
            overflow: 0,
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            last: 0.0,
        }
    }
}

/// Thread-safe named-instrument store shared by every clone of an
/// enabled [`TelemetrySink`].
///
/// Instruments are created on first use; the first recording determines
/// an instrument's kind, and later recordings of a different kind are
/// ignored (with a debug assertion) rather than corrupting the slot.
/// All updates take one short mutex-guarded map operation — recording
/// happens at run granularity, so contention is negligible.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    slots: Mutex<BTreeMap<String, Slot>>,
}

impl MetricsRegistry {
    fn update(&self, name: &str, make: impl FnOnce() -> Slot, apply: impl FnOnce(&mut Slot)) {
        let mut slots = self.slots.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(slot) = slots.get_mut(name) {
            apply(slot);
        } else {
            let mut slot = make();
            apply(&mut slot);
            slots.insert(name.to_owned(), slot);
        }
    }

    fn snapshot(&self) -> MetricsSnapshot {
        let slots = self.slots.lock().unwrap_or_else(|e| e.into_inner());
        let bounds = bucket_bounds();
        let instruments = slots
            .iter()
            .map(|(name, slot)| match slot {
                Slot::Counter(v) => InstrumentSnapshot {
                    name: name.clone(),
                    kind: "counter".to_owned(),
                    count: *v,
                    sum: *v as f64,
                    min: 0.0,
                    max: 0.0,
                    last: *v as f64,
                    buckets: Vec::new(),
                    overflow: 0,
                },
                Slot::Gauge {
                    value,
                    min,
                    max,
                    sets,
                } => InstrumentSnapshot {
                    name: name.clone(),
                    kind: "gauge".to_owned(),
                    count: *sets,
                    sum: *value,
                    min: if *sets > 0 { *min } else { 0.0 },
                    max: if *sets > 0 { *max } else { 0.0 },
                    last: *value,
                    buckets: Vec::new(),
                    overflow: 0,
                },
                Slot::Histogram {
                    counts,
                    overflow,
                    count,
                    sum,
                    min,
                    max,
                    last,
                } => InstrumentSnapshot {
                    name: name.clone(),
                    kind: "histogram".to_owned(),
                    count: *count,
                    sum: *sum,
                    min: if *count > 0 { *min } else { 0.0 },
                    max: if *count > 0 { *max } else { 0.0 },
                    last: *last,
                    buckets: counts
                        .iter()
                        .zip(&bounds)
                        .filter(|(&c, _)| c > 0)
                        .map(|(&c, &le)| HistogramBucket { le, count: c })
                        .collect(),
                    overflow: *overflow,
                },
            })
            .collect();
        MetricsSnapshot {
            schema_version: SCHEMA_VERSION,
            instruments,
        }
    }
}

/// Handle through which instrumented code reports metrics.
///
/// Cloning is cheap (an `Arc` bump at most); every clone of an enabled
/// sink records into the same shared [`MetricsRegistry`]. The default
/// handle is the no-op sink.
#[derive(Debug, Clone, Default)]
pub struct TelemetrySink {
    registry: Option<Arc<MetricsRegistry>>,
}

impl TelemetrySink {
    /// The disabled sink: every recording method is a single branch.
    pub fn noop() -> Self {
        TelemetrySink { registry: None }
    }

    /// A fresh enabled sink backed by its own registry.
    pub fn enabled() -> Self {
        TelemetrySink {
            registry: Some(Arc::new(MetricsRegistry::default())),
        }
    }

    /// Whether this sink records anywhere.
    pub fn is_enabled(&self) -> bool {
        self.registry.is_some()
    }

    /// Adds `delta` to the named counter (created at zero on first use).
    pub fn counter_add(&self, name: &str, delta: u64) {
        let Some(registry) = &self.registry else {
            return;
        };
        registry.update(
            name,
            || Slot::Counter(0),
            |slot| {
                if let Slot::Counter(v) = slot {
                    *v += delta;
                } else {
                    debug_assert!(false, "instrument {name} is not a counter");
                }
            },
        );
    }

    /// Sets the named gauge to `value` (last write wins; min/max and the
    /// number of sets are tracked).
    pub fn gauge_set(&self, name: &str, value: f64) {
        let Some(registry) = &self.registry else {
            return;
        };
        registry.update(
            name,
            || Slot::Gauge {
                value: 0.0,
                min: f64::INFINITY,
                max: f64::NEG_INFINITY,
                sets: 0,
            },
            |slot| {
                if let Slot::Gauge {
                    value: v,
                    min,
                    max,
                    sets,
                } = slot
                {
                    *v = value;
                    *min = min.min(value);
                    *max = max.max(value);
                    *sets += 1;
                } else {
                    debug_assert!(false, "instrument {name} is not a gauge");
                }
            },
        );
    }

    /// Records `value` into the named fixed-bucket histogram.
    pub fn record(&self, name: &str, value: f64) {
        let Some(registry) = &self.registry else {
            return;
        };
        registry.update(name, Slot::new_histogram, |slot| {
            if let Slot::Histogram {
                counts,
                overflow,
                count,
                sum,
                min,
                max,
                last,
            } = slot
            {
                let bounds = bucket_bounds();
                match bounds.iter().position(|&le| value <= le) {
                    Some(i) => counts[i] += 1,
                    None => *overflow += 1,
                }
                *count += 1;
                *sum += value;
                *min = min.min(value);
                *max = max.max(value);
                *last = value;
            } else {
                debug_assert!(false, "instrument {name} is not a histogram");
            }
        });
    }

    /// Opens a span-style scoped timer: on drop, the elapsed wall time
    /// in ns is recorded into the named histogram. Intended for coarse
    /// pipeline phases (training, mapping, batch inference), never for
    /// per-step hot paths — those report simulated time instead. On a
    /// noop sink the span never reads the clock.
    pub fn time_phase(&self, name: &'static str) -> PhaseSpan {
        PhaseSpan {
            sink: self.clone(),
            name,
            start: self.is_enabled().then(Instant::now),
        }
    }

    /// Freezes the registry into a sorted, serialisable snapshot. The
    /// noop sink yields an empty snapshot.
    pub fn snapshot(&self) -> MetricsSnapshot {
        match &self.registry {
            Some(registry) => registry.snapshot(),
            None => MetricsSnapshot {
                schema_version: SCHEMA_VERSION,
                instruments: Vec::new(),
            },
        }
    }
}

/// Scoped wall-clock timer returned by [`TelemetrySink::time_phase`];
/// records its lifetime into a histogram when dropped.
#[derive(Debug)]
pub struct PhaseSpan {
    sink: TelemetrySink,
    name: &'static str,
    start: Option<Instant>,
}

impl Drop for PhaseSpan {
    fn drop(&mut self) {
        if let Some(start) = self.start {
            self.sink.record(self.name, start.elapsed().as_nanos() as f64);
        }
    }
}

/// Version of the exported snapshot schema; bumped only when the JSON
/// shape below changes incompatibly.
pub const SCHEMA_VERSION: u32 = 1;

/// One occupied histogram bucket: `count` samples at or below `le`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HistogramBucket {
    /// Inclusive upper bound of the bucket (from [`bucket_bounds`]).
    pub le: f64,
    /// Samples that landed in this bucket.
    pub count: u64,
}

/// The frozen state of one instrument.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InstrumentSnapshot {
    /// Dotted instrument name, e.g. `anneal.steps`; the prefix before
    /// the first dot is the instrument family.
    pub name: String,
    /// `"counter"`, `"gauge"`, or `"histogram"`.
    pub kind: String,
    /// Counter value, number of gauge sets, or histogram sample count.
    pub count: u64,
    /// Counter value, last gauge value, or histogram sample sum.
    pub sum: f64,
    /// Smallest recorded value (0 when nothing was recorded).
    pub min: f64,
    /// Largest recorded value (0 when nothing was recorded).
    pub max: f64,
    /// Most recent recorded value.
    pub last: f64,
    /// Occupied histogram buckets (empty for counters and gauges).
    pub buckets: Vec<HistogramBucket>,
    /// Histogram samples above the top bucket bound.
    pub overflow: u64,
}

impl InstrumentSnapshot {
    /// Mean recorded value (0 when nothing was recorded).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Bucket-based quantile estimate for `q` in `[0, 1]` (e.g. `0.5`
    /// for p50, `0.99` for p99).
    ///
    /// Scans the cumulative bucket counts and returns the upper bound
    /// of the first bucket whose cumulative count reaches `q · count`,
    /// clamped to the observed `max` so a coarse top bucket can't
    /// over-report. Samples past the top bound (`overflow`) resolve to
    /// `max`. For non-histogram instruments this falls back to `last`;
    /// an empty instrument reports 0.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        if self.buckets.is_empty() && self.overflow == 0 {
            // Counter or gauge: no distribution to interrogate.
            return self.last;
        }
        let rank = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut cumulative = 0u64;
        for bucket in &self.buckets {
            cumulative += bucket.count;
            if cumulative >= rank {
                return bucket.le.min(self.max);
            }
        }
        // Rank lands in the overflow region above the top bound.
        self.max
    }
}

/// A sorted, serde-stable export of every instrument in a registry.
///
/// The JSON field names of this type and its children are a stable
/// interface (locked in by `tests/serialization.rs`); downstream
/// dashboards may parse `results/BENCH_telemetry.json` without tracking
/// this crate's internals.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// Snapshot schema version ([`SCHEMA_VERSION`]).
    pub schema_version: u32,
    /// Every instrument, sorted by name.
    pub instruments: Vec<InstrumentSnapshot>,
}

impl MetricsSnapshot {
    /// Looks up an instrument by exact name.
    pub fn get(&self, name: &str) -> Option<&InstrumentSnapshot> {
        self.instruments.iter().find(|i| i.name == name)
    }

    /// Value of a counter, or 0 when absent.
    pub fn counter(&self, name: &str) -> u64 {
        self.get(name).map_or(0, |i| i.count)
    }

    /// Instrument families present (name prefix before the first dot),
    /// sorted and deduplicated.
    pub fn families(&self) -> Vec<String> {
        let mut families: Vec<String> = self
            .instruments
            .iter()
            .map(|i| {
                i.name
                    .split('.')
                    .next()
                    .unwrap_or(i.name.as_str())
                    .to_owned()
            })
            .collect();
        families.sort();
        families.dedup();
        families
    }

    /// Renders the snapshot as a fixed-width human-readable table, one
    /// instrument per row.
    pub fn summary_table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<34} {:<9} {:>10} {:>14} {:>14} {:>14}\n",
            "instrument", "kind", "count", "mean", "min", "max"
        ));
        for i in &self.instruments {
            let (mean, min, max) = match i.kind.as_str() {
                "counter" => (i.sum, 0.0, 0.0),
                _ => (i.mean(), i.min, i.max),
            };
            out.push_str(&format!(
                "{:<34} {:<9} {:>10} {:>14} {:>14} {:>14}\n",
                i.name,
                i.kind,
                i.count,
                format_value(mean),
                format_value(min),
                format_value(max),
            ));
        }
        out
    }
}

/// Compact numeric formatting for the summary table.
fn format_value(v: f64) -> String {
    if v == 0.0 {
        "0".to_owned()
    } else if v.abs() >= 1e6 || v.abs() < 1e-3 {
        format!("{v:.3e}")
    } else if v.fract() == 0.0 && v.abs() < 1e6 {
        format!("{v:.0}")
    } else {
        format!("{v:.3}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_sink_records_nothing() {
        let sink = TelemetrySink::noop();
        assert!(!sink.is_enabled());
        sink.counter_add("a.b", 3);
        sink.gauge_set("a.g", 1.5);
        sink.record("a.h", 42.0);
        drop(sink.time_phase("a.phase_ns"));
        let snap = sink.snapshot();
        assert!(snap.instruments.is_empty());
        assert_eq!(snap.counter("a.b"), 0);
    }

    #[test]
    fn counters_gauges_histograms_accumulate() {
        let sink = TelemetrySink::enabled();
        sink.counter_add("anneal.runs", 2);
        sink.counter_add("anneal.runs", 1);
        sink.gauge_set("hw.lanes", 30.0);
        sink.gauge_set("hw.lanes", 12.0);
        sink.record("anneal.steps", 100.0);
        sink.record("anneal.steps", 300.0);
        sink.record("anneal.steps", 1e15); // overflow
        let snap = sink.snapshot();
        assert_eq!(snap.counter("anneal.runs"), 3);
        let lanes = snap.get("hw.lanes").unwrap();
        assert_eq!(lanes.last, 12.0);
        assert_eq!(lanes.min, 12.0);
        assert_eq!(lanes.max, 30.0);
        assert_eq!(lanes.count, 2);
        let steps = snap.get("anneal.steps").unwrap();
        assert_eq!(steps.count, 3);
        assert_eq!(steps.min, 100.0);
        assert_eq!(steps.max, 1e15);
        assert_eq!(steps.overflow, 1);
        assert_eq!(steps.buckets.iter().map(|b| b.count).sum::<u64>(), 2);
        for b in &steps.buckets {
            assert!(bucket_bounds().contains(&b.le));
        }
    }

    #[test]
    fn clones_share_one_registry() {
        let sink = TelemetrySink::enabled();
        let clone = sink.clone();
        sink.counter_add("guard.retries", 1);
        clone.counter_add("guard.retries", 4);
        assert_eq!(sink.snapshot().counter("guard.retries"), 5);
    }

    #[test]
    fn clones_share_registry_across_threads() {
        let sink = TelemetrySink::enabled();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let worker = sink.clone();
                scope.spawn(move || {
                    for _ in 0..100 {
                        worker.counter_add("t.n", 1);
                        worker.record("t.h", 7.0);
                    }
                });
            }
        });
        let snap = sink.snapshot();
        assert_eq!(snap.counter("t.n"), 400);
        assert_eq!(snap.get("t.h").unwrap().count, 400);
    }

    #[test]
    fn kind_mismatch_is_ignored_in_release() {
        // First writer wins the kind; a mismatched later op must not
        // corrupt the slot (debug builds assert instead).
        if cfg!(debug_assertions) {
            return;
        }
        let sink = TelemetrySink::enabled();
        sink.counter_add("x", 2);
        sink.record("x", 9.0);
        assert_eq!(sink.snapshot().counter("x"), 2);
    }

    #[test]
    fn phase_span_records_wall_time() {
        let sink = TelemetrySink::enabled();
        {
            let _span = sink.time_phase("train.phase.fit_ns");
            std::hint::black_box(0u64);
        }
        let snap = sink.snapshot();
        let span = snap.get("train.phase.fit_ns").unwrap();
        assert_eq!(span.count, 1);
        assert!(span.last >= 0.0);
    }

    #[test]
    fn snapshot_is_sorted_and_reports_families() {
        let sink = TelemetrySink::enabled();
        sink.counter_add("hw.wormholes", 1);
        sink.counter_add("anneal.runs", 1);
        sink.counter_add("guard.runs", 1);
        let snap = sink.snapshot();
        let names: Vec<&str> = snap.instruments.iter().map(|i| i.name.as_str()).collect();
        let mut sorted = names.clone();
        sorted.sort();
        assert_eq!(names, sorted);
        assert_eq!(snap.families(), vec!["anneal", "guard", "hw"]);
    }

    #[test]
    fn summary_table_lists_every_instrument() {
        let sink = TelemetrySink::enabled();
        sink.counter_add("anneal.runs", 7);
        sink.record("anneal.sim_time_ns", 420.0);
        let table = sink.snapshot().summary_table();
        assert!(table.contains("anneal.runs"));
        assert!(table.contains("anneal.sim_time_ns"));
        assert!(table.lines().count() >= 3);
    }

    #[test]
    fn quantile_estimates_track_bucket_bounds() {
        let sink = TelemetrySink::enabled();
        // 90 fast samples, 10 slow ones: p50 must sit in a low bucket,
        // p99 in a high one.
        for _ in 0..90 {
            sink.record("serve.latency_ns", 800.0);
        }
        for _ in 0..10 {
            sink.record("serve.latency_ns", 90_000.0);
        }
        let snap = sink.snapshot();
        let lat = snap.get("serve.latency_ns").unwrap();
        let p50 = lat.quantile(0.5);
        let p99 = lat.quantile(0.99);
        // 800 falls in the (500, 1000] bucket; 90_000 in (50_000, 100_000].
        assert_eq!(p50, 1000.0);
        assert_eq!(p99, 90_000.0); // le=1e5 bucket clamped to observed max
        assert!(p50 <= p99);
        // Extremes.
        assert_eq!(lat.quantile(0.0), 1000.0); // rank clamps to 1 → first bucket
        assert_eq!(lat.quantile(1.0), 90_000.0);

        // Overflow samples resolve to max.
        sink.record("serve.latency_ns", 1e15);
        let lat = sink.snapshot();
        let lat = lat.get("serve.latency_ns").unwrap();
        assert_eq!(lat.quantile(1.0), 1e15);

        // Empty and non-histogram instruments degrade gracefully.
        sink.counter_add("serve.requests", 5);
        let snap = sink.snapshot();
        assert_eq!(snap.get("serve.requests").unwrap().quantile(0.99), 5.0);
        let empty = InstrumentSnapshot {
            name: "x".into(),
            kind: "histogram".into(),
            count: 0,
            sum: 0.0,
            min: 0.0,
            max: 0.0,
            last: 0.0,
            buckets: Vec::new(),
            overflow: 0,
        };
        assert_eq!(empty.quantile(0.5), 0.0);
    }

    #[test]
    fn bucket_bounds_are_sorted_and_positive() {
        let bounds = bucket_bounds();
        assert!(bounds.windows(2).all(|w| w[0] < w[1]));
        assert!(bounds[0] > 0.0);
        assert!(*bounds.last().unwrap() >= 1e12);
    }
}
