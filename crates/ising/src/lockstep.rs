//! Lockstep batched annealing: advance many windows as one GEMM.
//!
//! Batch inference integrates W independent machines that share one
//! coupling matrix `J` (every window of a forecast batch is built from
//! the same trained model; only the clamped history values and the
//! free-node seeds differ). Integrating them serially costs W sparse
//! mat-vecs per step — each a memory-bound pass over `J`. This module
//! packs the W states into one `n × W` matrix `S` (window-minor, so
//! window `w`'s state lives in column `w`) and fuses the per-window
//! `J·σ` products into a single `J · S` GEMM per integrator stage,
//! which re-uses each loaded row of `J` across all W columns and rides
//! the cache-blocked (and, when enabled, SIMD) kernels of `dsgl-nn`.
//!
//! ## Bit-exactness contract
//!
//! Lockstep output is **bit-identical** to running each machine
//! serially, by construction:
//!
//! - Column independence: `(J·S)[i][w]` depends only on row `i` of `J`
//!   and column `w` of `S`, and every per-element update below touches
//!   only its own column — windows cannot contaminate each other, even
//!   when one column holds non-finite (fault-stuck) values.
//! - Term order: the naive GEMM reference sums `J[i][k]·S[k][w]` over
//!   ascending `k`, skipping `J[i][k] == 0.0` — exactly the stored-entry
//!   order of the CSR row accumulation in the serial mat-vec, provided
//!   `J` has no *stored* zeros (the CSR would add them, the GEMM skip
//!   drops them; [`run_lockstep`] refuses such matrices). The blocked
//!   and SIMD kernels replicate the naive reference bit-for-bit for all
//!   inputs (see `dsgl_nn::kernels`), closing the chain.
//! - Identical per-element arithmetic: the Euler and RK4 updates below
//!   are copied operation-for-operation from the serial integrator, and
//!   convergence uses the same `max`-fold as
//!   [`crate::convergence::max_rate`], per window.
//! - RNG silence: strict noiseless integration consumes no randomness,
//!   so per-window RNG streams (seeding, fault injection) are untouched
//!   and a serial re-run of any window replays identically.
//!
//! Windows converge independently: a converged column is frozen (no
//! further writes) while the rest keep stepping on the shared time
//! grid, which is the same `t` sequence each serial run would see.
//!
//! [`run_lockstep`] records **no telemetry metrics** — callers report
//! each window via [`crate::RealValuedDspu::record_anneal`] so accepted
//! lockstep windows and serial fallbacks count identically. It *does*
//! record one `anneal.lockstep` span per window into each machine's
//! attached [`TraceScope`](crate::tracing::TraceScope), after the
//! dynamics finish: span recording happens from the outside here
//! because the per-machine `run` never executes, and the serial
//! fallback's `anneal.strict` spans come from `run` itself.

use crate::anneal::{AnnealConfig, AnnealReport, Integrator};
use crate::dspu::RealValuedDspu;
use crate::engine::EngineMode;
use crate::workspace::Workspace;
use dsgl_nn::kernels::gemm_into_scratch;

/// Minimum stored-entry density (fraction of `n²`) below which the
/// densified GEMM loses to W sparse mat-vecs and lockstep declines.
/// Stored entries are `2·nnz()` (unordered pairs, symmetric storage);
/// the gate is `2·nnz·8 ≥ n²`, i.e. ≥ 12.5 % dense.
const DENSITY_GATE_INV: usize = 8;

/// Advances every machine to completion in lockstep, fusing the
/// per-window `J·σ` products into one `J·S` GEMM per integrator stage.
///
/// Returns `None` — with every machine untouched — when the batch is
/// ineligible: fewer than two windows, a non-[`EngineMode::Strict`]
/// config, dynamic noise (whose RNG draws are inherently per-machine),
/// couplings that differ across windows, a coupling with non-finite or
/// explicitly stored zero values, or one too sparse for a densified
/// GEMM to win. Callers fall back to the serial path; because strict
/// noiseless runs consume no RNG, the fallback replays bit-identically.
///
/// On success the returned reports match what each machine's own
/// [`run`](RealValuedDspu::run) would have produced, bit for bit, and
/// each machine's state is the corresponding serial final state. No
/// telemetry metrics are recorded (see the module docs); one
/// `anneal.lockstep` span per window goes to each machine's tracing
/// scope once the dynamics finish.
pub fn run_lockstep(
    machines: &mut [RealValuedDspu],
    config: &AnnealConfig,
    ws: &mut Workspace,
) -> Option<Vec<AnnealReport>> {
    let wn = machines.len();
    if wn < 2 || !matches!(config.mode, EngineMode::Strict) || !config.noise.is_none() {
        return None;
    }
    let n = machines[0].coupling.n();
    if n == 0 {
        return None;
    }
    if machines[1..].iter().any(|m| m.coupling != machines[0].coupling) {
        return None;
    }
    if machines[0].coupling.nnz() * 2 * DENSITY_GATE_INV < n * n {
        return None;
    }
    // Densify J, rejecting values the GEMM zero-skip would treat
    // differently from the CSR accumulation (stored ±0.0) and
    // non-finite couplings (kept on the sparse reference path).
    let rk4 = config.integrator == Integrator::Rk4;
    ws.ensure_batch(n, wn, rk4);
    for i in 0..n {
        let row = &mut ws.batch_j[i * n..(i + 1) * n];
        for (j, v) in machines[0].coupling.row(i) {
            if v == 0.0 || !v.is_finite() {
                return None;
            }
            row[j] = v;
        }
    }

    // Span clocks are read only for machines with an enabled scope, and
    // only before the dynamics start — never inside the loop.
    let span_starts: Vec<Option<std::time::Instant>> =
        machines.iter().map(|m| m.tracing().start()).collect();

    // Pack states window-minor: column w of `S` is machine w's state.
    for (i, row) in ws.batch_states.chunks_exact_mut(wn).enumerate() {
        for (w, machine) in machines.iter().enumerate() {
            row[w] = machine.state[i];
        }
    }
    ws.batch_prev.copy_from_slice(&ws.batch_states);

    let mut active = vec![true; wn];
    let mut n_active = wn;
    let mut converged = vec![false; wn];
    let mut steps_rec = vec![0usize; wn];
    let mut time_rec = vec![0.0f64; wn];
    let mut rate_rec = vec![f64::INFINITY; wn];
    let mut t = 0.0;
    let mut steps = 0usize;

    while t < config.max_time_ns && n_active > 0 {
        // Cooperative cancellation: any window's token stops the whole
        // batch (they share the GEMM). Already-frozen windows keep their
        // converged, bit-identical states; the rest report unconverged
        // and the guard's serial rebuild sees the latched token.
        if machines.iter().any(|m| m.cancel_requested()) {
            break;
        }
        if rk4 {
            step_rk4_batch(machines, config.dt_ns, n, wn, ws, &active);
        } else {
            step_euler_batch(machines, config.dt_ns, n, wn, ws, &active);
        }
        t += config.dt_ns;
        steps += 1;
        if steps.is_multiple_of(config.check_every) {
            let dtc = config.dt_ns * config.check_every as f64;
            for (w, machine) in machines.iter().enumerate() {
                if !active[w] {
                    continue;
                }
                // Same fold as `convergence::max_rate`, over column w.
                let mut rate = 0.0f64;
                let states = &ws.batch_states;
                let prev = &mut ws.batch_prev;
                for i in 0..n {
                    if machine.free[i] {
                        let idx = i * wn + w;
                        rate = f64::max(rate, (states[idx] - prev[idx]).abs() / dtc);
                    }
                }
                for i in 0..n {
                    prev[i * wn + w] = states[i * wn + w];
                }
                rate_rec[w] = rate;
                if rate < config.tolerance {
                    converged[w] = true;
                    steps_rec[w] = steps;
                    time_rec[w] = t;
                    active[w] = false;
                    n_active -= 1;
                }
            }
        }
    }

    let mut reports = Vec::with_capacity(wn);
    for (w, machine) in machines.iter_mut().enumerate() {
        for i in 0..n {
            machine.state[i] = ws.batch_states[i * wn + w];
        }
        if !converged[w] {
            steps_rec[w] = steps;
            time_rec[w] = t;
        }
        let report = AnnealReport {
            converged: converged[w],
            steps: steps_rec[w],
            sim_time_ns: time_rec[w],
            final_rate: rate_rec[w],
            energy: machine.energy(),
            sparse_steps: 0,
            mean_active_fraction: 1.0,
        };
        machine.record_anneal_span("anneal.lockstep", span_starts[w], &report);
        reports.push(report);
    }
    Some(reports)
}

/// One forward-Euler step over the whole batch: `J·S` once, then the
/// serial per-element update per active column.
fn step_euler_batch(
    machines: &[RealValuedDspu],
    dt_ns: f64,
    n: usize,
    wn: usize,
    ws: &mut Workspace,
    active: &[bool],
) {
    ws.batch_js.fill(0.0);
    gemm_into_scratch(
        &ws.batch_j,
        n,
        n,
        &ws.batch_states,
        wn,
        &mut ws.batch_js,
        &mut ws.batch_panel,
    );
    for i in 0..n {
        let row = i * wn;
        for (w, machine) in machines.iter().enumerate() {
            if !active[w] || !machine.free[i] {
                continue;
            }
            let s = ws.batch_states[row + w];
            let dv = (ws.batch_js[row + w] + machine.h[i] * s) / machine.capacitance;
            let next = s + dv * dt_ns;
            ws.batch_states[row + w] = next.clamp(-machine.rail, machine.rail);
        }
    }
}

/// The RK4 stage derivative over the whole batch: `out = J·src`, then
/// the serial per-element transform for every column (frozen columns
/// included — their results are simply never written back).
fn batch_deriv(
    machines: &[RealValuedDspu],
    n: usize,
    wn: usize,
    j: &[f64],
    src: &[f64],
    out: &mut [f64],
    panel: &mut Vec<f64>,
) {
    out.fill(0.0);
    gemm_into_scratch(j, n, n, src, wn, out, panel);
    for i in 0..n {
        let row = i * wn;
        for (w, machine) in machines.iter().enumerate() {
            let o = &mut out[row + w];
            *o = if machine.free[i] {
                (*o + machine.h[i] * src[row + w]) / machine.capacitance
            } else {
                0.0
            };
        }
    }
}

/// One classical RK4 step over the whole batch: four `J·S` GEMMs, with
/// stage states formed for every element exactly as the serial
/// integrator does, and the combined update applied per active column.
fn step_rk4_batch(
    machines: &[RealValuedDspu],
    dt_ns: f64,
    n: usize,
    wn: usize,
    ws: &mut Workspace,
    active: &[bool],
) {
    let half = 0.5 * dt_ns;
    batch_deriv(
        machines,
        n,
        wn,
        &ws.batch_j,
        &ws.batch_states,
        &mut ws.batch_k1,
        &mut ws.batch_panel,
    );
    for ((stage, s), k) in ws
        .batch_stage
        .iter_mut()
        .zip(&ws.batch_states)
        .zip(&ws.batch_k1)
    {
        *stage = *s + half * *k;
    }
    batch_deriv(
        machines,
        n,
        wn,
        &ws.batch_j,
        &ws.batch_stage,
        &mut ws.batch_k2,
        &mut ws.batch_panel,
    );
    for ((stage, s), k) in ws
        .batch_stage
        .iter_mut()
        .zip(&ws.batch_states)
        .zip(&ws.batch_k2)
    {
        *stage = *s + half * *k;
    }
    batch_deriv(
        machines,
        n,
        wn,
        &ws.batch_j,
        &ws.batch_stage,
        &mut ws.batch_k3,
        &mut ws.batch_panel,
    );
    for ((stage, s), k) in ws
        .batch_stage
        .iter_mut()
        .zip(&ws.batch_states)
        .zip(&ws.batch_k3)
    {
        *stage = *s + dt_ns * *k;
    }
    batch_deriv(
        machines,
        n,
        wn,
        &ws.batch_j,
        &ws.batch_stage,
        &mut ws.batch_k4,
        &mut ws.batch_panel,
    );
    for i in 0..n {
        let row = i * wn;
        for (w, machine) in machines.iter().enumerate() {
            if !active[w] || !machine.free[i] {
                continue;
            }
            let idx = row + w;
            let dv = (ws.batch_k1[idx]
                + 2.0 * ws.batch_k2[idx]
                + 2.0 * ws.batch_k3[idx]
                + ws.batch_k4[idx])
                / 6.0;
            let next = ws.batch_states[idx] + dv * dt_ns;
            ws.batch_states[idx] = next.clamp(-machine.rail, machine.rail);
        }
    }
}
