//! Per-request tracing spans, a black-box flight recorder, and text
//! exporters (Prometheus exposition, Chrome trace-event JSON).
//!
//! [`crate::telemetry`] answers *how much* — aggregate counters and
//! histograms. This module answers *why this request*: a bounded
//! [`SpanCollector`] records hierarchical spans with causal parent ids
//! (`serve.request` → `serve.admission`/`serve.queue_wait` →
//! `serve.batch` → `anneal.{strict,adaptive,lockstep}` →
//! `guard.retry` → `serve.fallback`), and a fixed-capacity
//! [`FlightRecorder`] keeps the most recent structured events
//! (brownout edges, worker panics, watchdog fires, SLO fallbacks) for
//! post-mortem dumps.
//!
//! Both follow the telemetry contract established in the metrics layer:
//!
//! - **Disabled is one branch.** The [noop](SpanCollector::noop)
//!   collector carries no storage; every recording method returns after
//!   a single `Option` check — no allocation, no lock, no clock read.
//! - **Record only after dynamics finish.** Spans are written once a
//!   run (or batch, or request) completes; nothing is recorded inside
//!   integrator loops, and recording never touches machine state or RNG
//!   streams, so traced runs are bit-identical to untraced ones (locked
//!   in by the determinism suite).
//!
//! "Lock-free" here means the *claim* is: a recording thread claims its
//! ring slot with one atomic `fetch_add` and then owns that slot
//! exclusively until the ring wraps all the way around, so the per-slot
//! mutex guarding the write is uncontended by construction — it exists
//! only to keep the collector safe (and `unsafe`-free) if a snapshot
//! races a wrap-around overwrite.
//!
//! The exporters render standard tooling formats without any JSON
//! dependency: [`prometheus_text`] emits the Prometheus text exposition
//! of a [`MetricsSnapshot`], and [`chrome_trace_json`] emits Chrome
//! trace-event JSON (the `traceEvents` array form) that loads directly
//! in Perfetto / `chrome://tracing`.

use crate::telemetry::MetricsSnapshot;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Version of the exported span/flight schema; bumped only when the
/// JSON shapes below change incompatibly.
pub const TRACE_SCHEMA_VERSION: u32 = 1;

/// Default span ring capacity of [`SpanCollector::enabled`].
const DEFAULT_SPAN_CAPACITY: usize = 4096;

/// One key/value annotation on a span (numeric by design: span args
/// carry step counts, simulated times, and queue depths, never text).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpanArg {
    /// Annotation name, e.g. `steps`.
    pub key: String,
    /// Annotation value.
    pub value: f64,
}

/// One completed span. Field names are a stable serde interface
/// (locked in by `tests/serialization.rs`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpanRecord {
    /// Request-scoped correlation id shared by every span of one trace.
    pub trace_id: u64,
    /// Unique id of this span (ids are never 0; 0 means "none").
    pub span_id: u64,
    /// Causal parent span id, 0 for a root span.
    pub parent_id: u64,
    /// Span name, e.g. `anneal.strict` or `serve.queue_wait`.
    pub name: String,
    /// Start offset in ns from the collector's epoch (its creation).
    pub start_ns: u64,
    /// Wall-clock duration in ns.
    pub duration_ns: u64,
    /// Numeric annotations.
    pub args: Vec<SpanArg>,
}

/// Backing storage of an enabled collector.
#[derive(Debug)]
struct CollectorInner {
    /// All `start_ns` offsets are relative to this creation instant.
    epoch: Instant,
    /// Next span id; starts at 1 so 0 can mean "no span".
    next_id: AtomicU64,
    /// Total slots ever claimed; `cursor % capacity` is the ring slot.
    cursor: AtomicUsize,
    /// The bounded ring. See the module docs for why the per-slot mutex
    /// is uncontended by construction.
    slots: Vec<Mutex<Option<SpanRecord>>>,
    /// Spans overwritten by ring wrap-around (oldest-first eviction).
    dropped: AtomicU64,
}

/// A lock-free, bounded collector of completed spans.
///
/// Cloning is cheap (an `Arc` bump at most); every clone of an enabled
/// collector records into the same shared ring. The default handle is
/// the [noop](SpanCollector::noop) collector. When the ring is full the
/// *oldest* spans are overwritten (flight-recorder semantics) and
/// [`dropped`](SpanCollector::dropped) counts the evictions.
#[derive(Debug, Clone, Default)]
pub struct SpanCollector {
    inner: Option<Arc<CollectorInner>>,
}

impl SpanCollector {
    /// The disabled collector: every method is a single branch.
    pub fn noop() -> Self {
        SpanCollector { inner: None }
    }

    /// A fresh enabled collector with the default ring capacity.
    pub fn enabled() -> Self {
        Self::with_capacity(DEFAULT_SPAN_CAPACITY)
    }

    /// A fresh enabled collector keeping at most `capacity` spans
    /// (clamped to at least 1).
    pub fn with_capacity(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        SpanCollector {
            inner: Some(Arc::new(CollectorInner {
                epoch: Instant::now(),
                next_id: AtomicU64::new(1),
                cursor: AtomicUsize::new(0),
                slots: (0..capacity).map(|_| Mutex::new(None)).collect(),
                dropped: AtomicU64::new(0),
            })),
        }
    }

    /// Whether this collector records anywhere.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Reads the clock iff enabled — the noop collector never touches
    /// it. Pass the result to [`record`](Self::record) once the timed
    /// work finishes.
    pub fn now(&self) -> Option<Instant> {
        self.inner.is_some().then(Instant::now)
    }

    /// Reserves a span id without recording anything (0 when noop).
    /// Lets a parent hand its id to children *before* the parent span
    /// itself is recorded — e.g. a `serve.batch` span is recorded after
    /// the anneal spans that nest under it.
    pub fn reserve(&self) -> u64 {
        match &self.inner {
            Some(inner) => inner.next_id.fetch_add(1, Ordering::Relaxed),
            None => 0,
        }
    }

    /// Records a completed span under a pre-[reserved](Self::reserve)
    /// id. `start` of `None` (from a noop [`now`](Self::now)) is a
    /// no-op, so callers thread `Option<Instant>` straight through.
    /// Returns the span id (0 when nothing was recorded).
    #[allow(clippy::too_many_arguments)]
    pub fn record_with_id(
        &self,
        span_id: u64,
        trace_id: u64,
        parent_id: u64,
        name: &str,
        start: Option<Instant>,
        args: &[(&str, f64)],
    ) -> u64 {
        let Some(inner) = &self.inner else {
            return 0;
        };
        let Some(start) = start else {
            return 0;
        };
        if span_id == 0 {
            return 0;
        }
        let start_ns = start.saturating_duration_since(inner.epoch).as_nanos() as u64;
        let duration_ns = start.elapsed().as_nanos() as u64;
        let record = SpanRecord {
            trace_id,
            span_id,
            parent_id,
            name: name.to_owned(),
            start_ns,
            duration_ns,
            args: args
                .iter()
                .map(|&(key, value)| SpanArg {
                    key: key.to_owned(),
                    value,
                })
                .collect(),
        };
        let claim = inner.cursor.fetch_add(1, Ordering::Relaxed);
        if claim >= inner.slots.len() {
            inner.dropped.fetch_add(1, Ordering::Relaxed);
        }
        let slot = claim % inner.slots.len();
        *inner.slots[slot].lock().unwrap_or_else(|e| e.into_inner()) = Some(record);
        span_id
    }

    /// Records a completed span under a fresh id and returns it
    /// (0 when noop or `start` is `None`).
    pub fn record(
        &self,
        trace_id: u64,
        parent_id: u64,
        name: &str,
        start: Option<Instant>,
        args: &[(&str, f64)],
    ) -> u64 {
        if self.inner.is_none() || start.is_none() {
            return 0;
        }
        self.record_with_id(self.reserve(), trace_id, parent_id, name, start, args)
    }

    /// Spans evicted by ring wrap-around since creation. A dropped
    /// parent may be absent from a snapshot while its children survive;
    /// children keep the stale parent id rather than re-parenting.
    pub fn dropped(&self) -> u64 {
        match &self.inner {
            Some(inner) => inner.dropped.load(Ordering::Relaxed),
            None => 0,
        }
    }

    /// Copies out every retained span, sorted by span id (creation
    /// order). The noop collector yields an empty vec.
    pub fn snapshot(&self) -> Vec<SpanRecord> {
        let Some(inner) = &self.inner else {
            return Vec::new();
        };
        let mut spans: Vec<SpanRecord> = inner
            .slots
            .iter()
            .filter_map(|slot| slot.lock().unwrap_or_else(|e| e.into_inner()).clone())
            .collect();
        spans.sort_by_key(|s| s.span_id);
        spans
    }
}

/// A collector handle bound to one trace and one causal parent — the
/// unit threaded through machines and the guard so deep layers record
/// correctly-parented spans without any signature churn.
///
/// The default scope is the noop scope: machines constructed without
/// [`set_tracing`](crate::RealValuedDspu::set_tracing) pay one branch
/// per run and record nothing.
#[derive(Debug, Clone, Default)]
pub struct TraceScope {
    collector: SpanCollector,
    trace_id: u64,
    parent_id: u64,
}

impl TraceScope {
    /// The disabled scope (records nothing).
    pub fn noop() -> Self {
        TraceScope::default()
    }

    /// A scope recording into `collector` under `trace_id`, parenting
    /// new spans to `parent_id` (0 = root).
    pub fn new(collector: SpanCollector, trace_id: u64, parent_id: u64) -> Self {
        TraceScope {
            collector,
            trace_id,
            parent_id,
        }
    }

    /// Whether spans recorded through this scope go anywhere.
    pub fn is_enabled(&self) -> bool {
        self.collector.is_enabled()
    }

    /// The underlying collector.
    pub fn collector(&self) -> &SpanCollector {
        &self.collector
    }

    /// The trace id every span of this scope carries.
    pub fn trace_id(&self) -> u64 {
        self.trace_id
    }

    /// The parent id new spans are recorded under.
    pub fn parent_id(&self) -> u64 {
        self.parent_id
    }

    /// Reads the clock iff enabled (see [`SpanCollector::now`]).
    pub fn start(&self) -> Option<Instant> {
        self.collector.now()
    }

    /// Records a completed span in this scope; returns its id (0 when
    /// disabled).
    pub fn record(&self, name: &str, start: Option<Instant>, args: &[(&str, f64)]) -> u64 {
        self.collector
            .record(self.trace_id, self.parent_id, name, start, args)
    }

    /// A scope for children of span `parent_id` within the same trace.
    pub fn child_of(&self, parent_id: u64) -> TraceScope {
        TraceScope {
            collector: self.collector.clone(),
            trace_id: self.trace_id,
            parent_id,
        }
    }
}

/// One structured flight-recorder event. Field names are a stable serde
/// interface (locked in by `tests/serialization.rs`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FlightEvent {
    /// Monotonic sequence number (gaps mean evicted events).
    pub seq: u64,
    /// Offset in ns from the recorder's epoch (its creation).
    pub at_ns: u64,
    /// Event kind, e.g. `worker.panic` (frozen constants live beside
    /// the emitters).
    pub kind: String,
    /// Human-readable detail, e.g. the orphaned request count.
    pub detail: String,
    /// Correlated trace id, 0 when the event spans no single request.
    pub trace_id: u64,
}

/// A serde-stable dump of the flight recorder: the last
/// [`capacity`](FlightDump::capacity) events, oldest first.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FlightDump {
    /// Dump schema version ([`TRACE_SCHEMA_VERSION`]).
    pub schema_version: u32,
    /// Ring capacity of the recorder that produced the dump.
    pub capacity: usize,
    /// Events evicted before this dump was taken.
    pub dropped: u64,
    /// Retained events, oldest first (`seq` strictly increasing).
    pub events: Vec<FlightEvent>,
}

/// Mutable state of a flight recorder (one short lock per event —
/// events are rare by design: panics, watchdog fires, brownout edges).
#[derive(Debug, Default)]
struct FlightState {
    events: VecDeque<FlightEvent>,
    next_seq: u64,
    dropped: u64,
}

/// A fixed-capacity black-box recorder of recent structured events.
///
/// Unlike [`SpanCollector`] this is always on — the events it keeps
/// (panics, cancellations, brownout transitions) are exactly the ones
/// wanted *after* a crash, when nobody thought to enable tracing
/// beforehand. It stays off every hot path: recording happens only on
/// failure edges, never per request.
#[derive(Debug, Clone)]
pub struct FlightRecorder {
    capacity: usize,
    state: Arc<(Instant, Mutex<FlightState>)>,
}

impl FlightRecorder {
    /// A recorder keeping the last `capacity` events (at least 1).
    pub fn with_capacity(capacity: usize) -> Self {
        FlightRecorder {
            capacity: capacity.max(1),
            state: Arc::new((Instant::now(), Mutex::new(FlightState::default()))),
        }
    }

    /// Appends an event, evicting the oldest past capacity.
    pub fn record(&self, kind: &str, detail: String, trace_id: u64) {
        let at_ns = self.state.0.elapsed().as_nanos() as u64;
        let mut state = self.state.1.lock().unwrap_or_else(|e| e.into_inner());
        let seq = state.next_seq;
        state.next_seq += 1;
        if state.events.len() == self.capacity {
            state.events.pop_front();
            state.dropped += 1;
        }
        state.events.push_back(FlightEvent {
            seq,
            at_ns,
            kind: kind.to_owned(),
            detail,
            trace_id,
        });
    }

    /// Events recorded since creation (including evicted ones).
    pub fn recorded(&self) -> u64 {
        self.state.1.lock().unwrap_or_else(|e| e.into_inner()).next_seq
    }

    /// Freezes the ring into a serde-stable dump, oldest event first.
    pub fn dump(&self) -> FlightDump {
        let state = self.state.1.lock().unwrap_or_else(|e| e.into_inner());
        FlightDump {
            schema_version: TRACE_SCHEMA_VERSION,
            capacity: self.capacity,
            dropped: state.dropped,
            events: state.events.iter().cloned().collect(),
        }
    }
}

/// Renders a [`MetricsSnapshot`] in the Prometheus text exposition
/// format (version 0.0.4).
///
/// Instrument names are prefixed `dsgl_` with dots mapped to
/// underscores (`anneal.sim_time_ns` → `dsgl_anneal_sim_time_ns`).
/// Counters and gauges emit one sample each; histograms emit the
/// standard cumulative `_bucket{le="..."}` series (occupied buckets
/// plus `+Inf`), `_sum`, and `_count`. Output is deterministic for a
/// given snapshot — snapshots are sorted by name — which is what the
/// golden-file test relies on.
pub fn prometheus_text(snapshot: &MetricsSnapshot) -> String {
    let mut out = String::new();
    for i in &snapshot.instruments {
        let name = format!("dsgl_{}", i.name.replace('.', "_"));
        match i.kind.as_str() {
            "counter" => {
                out.push_str(&format!("# TYPE {name} counter\n"));
                out.push_str(&format!("{name} {}\n", i.count));
            }
            "histogram" => {
                out.push_str(&format!("# TYPE {name} histogram\n"));
                let mut cumulative = 0u64;
                for bucket in &i.buckets {
                    cumulative += bucket.count;
                    out.push_str(&format!(
                        "{name}_bucket{{le=\"{}\"}} {cumulative}\n",
                        bucket.le
                    ));
                }
                out.push_str(&format!("{name}_bucket{{le=\"+Inf\"}} {}\n", i.count));
                out.push_str(&format!("{name}_sum {}\n", i.sum));
                out.push_str(&format!("{name}_count {}\n", i.count));
            }
            // Gauges, and any future kind, export last-value samples.
            _ => {
                out.push_str(&format!("# TYPE {name} gauge\n"));
                out.push_str(&format!("{name} {}\n", i.last));
            }
        }
    }
    out
}

/// Escapes a string for embedding in a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Formats an `f64` as a JSON number (JSON has no NaN/Infinity; those
/// degrade to 0, which no exported field should ever carry anyway).
fn json_number(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "0".to_owned()
    }
}

/// Renders spans as Chrome trace-event JSON (the object form with a
/// `traceEvents` array), loadable in Perfetto and `chrome://tracing`.
///
/// Each span becomes one complete event (`"ph":"X"`): `ts`/`dur` are
/// the span's start offset and duration in microseconds, `tid` is the
/// trace id (so one request's spans share a track), and `args` carries
/// the span/parent ids plus every numeric annotation. Written by hand
/// so the ising crate needs no JSON dependency; `tests/serialization.rs`
/// parses it back with a real JSON parser to pin validity.
pub fn chrome_trace_json(spans: &[SpanRecord]) -> String {
    let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    for (i, span) in spans.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"name\":\"{}\",\"cat\":\"dsgl\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\
             \"pid\":1,\"tid\":{},\"args\":{{\"span_id\":{},\"parent_id\":{}",
            json_escape(&span.name),
            json_number(span.start_ns as f64 / 1000.0),
            json_number(span.duration_ns as f64 / 1000.0),
            span.trace_id,
            span.span_id,
            span.parent_id,
        ));
        for arg in &span.args {
            out.push_str(&format!(
                ",\"{}\":{}",
                json_escape(&arg.key),
                json_number(arg.value)
            ));
        }
        out.push_str("}}");
    }
    out.push_str("]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_collector_records_nothing() {
        let collector = SpanCollector::noop();
        assert!(!collector.is_enabled());
        assert_eq!(collector.now(), None);
        assert_eq!(collector.reserve(), 0);
        assert_eq!(collector.record(1, 0, "x", None, &[]), 0);
        assert!(collector.snapshot().is_empty());
        assert_eq!(collector.dropped(), 0);
        let scope = TraceScope::noop();
        assert!(!scope.is_enabled());
        assert_eq!(scope.start(), None);
        assert_eq!(scope.record("x", None, &[]), 0);
    }

    #[test]
    fn spans_record_hierarchy_in_creation_order() {
        let collector = SpanCollector::enabled();
        let root = collector.reserve();
        let t0 = collector.now();
        let child = collector.record(7, root, "anneal.strict", t0, &[("steps", 42.0)]);
        assert!(child > root);
        collector.record_with_id(root, 7, 0, "serve.request", t0, &[]);
        let spans = collector.snapshot();
        assert_eq!(spans.len(), 2);
        // Sorted by span id: the pre-reserved root sorts first even
        // though it was recorded last.
        assert_eq!(spans[0].span_id, root);
        assert_eq!(spans[0].name, "serve.request");
        assert_eq!(spans[0].parent_id, 0);
        assert_eq!(spans[1].parent_id, root);
        assert_eq!(spans[1].trace_id, 7);
        assert_eq!(spans[1].args, vec![SpanArg { key: "steps".into(), value: 42.0 }]);
    }

    #[test]
    fn ring_keeps_newest_spans_and_counts_evictions() {
        let collector = SpanCollector::with_capacity(3);
        for i in 0..5u64 {
            let t = collector.now();
            collector.record(i, 0, "s", t, &[]);
        }
        assert_eq!(collector.dropped(), 2);
        let spans = collector.snapshot();
        assert_eq!(spans.len(), 3);
        // The two oldest were overwritten.
        let traces: Vec<u64> = spans.iter().map(|s| s.trace_id).collect();
        assert_eq!(traces, vec![2, 3, 4]);
    }

    #[test]
    fn clones_share_one_ring_across_threads() {
        let collector = SpanCollector::with_capacity(1024);
        std::thread::scope(|scope| {
            for t in 0..4u64 {
                let worker = collector.clone();
                scope.spawn(move || {
                    for _ in 0..100 {
                        let start = worker.now();
                        worker.record(t, 0, "t.span", start, &[]);
                    }
                });
            }
        });
        let spans = collector.snapshot();
        assert_eq!(spans.len(), 400);
        assert_eq!(collector.dropped(), 0);
        // Ids are unique.
        let mut ids: Vec<u64> = spans.iter().map(|s| s.span_id).collect();
        ids.dedup();
        assert_eq!(ids.len(), 400);
    }

    #[test]
    fn trace_scope_threads_trace_and_parent_ids() {
        let collector = SpanCollector::enabled();
        let scope = TraceScope::new(collector.clone(), 9, 0);
        let start = scope.start();
        let outer = scope.record("outer", start, &[]);
        let inner_scope = scope.child_of(outer);
        assert_eq!(inner_scope.trace_id(), 9);
        assert_eq!(inner_scope.parent_id(), outer);
        let start = inner_scope.start();
        inner_scope.record("inner", start, &[("depth", 1.0)]);
        let spans = collector.snapshot();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[1].parent_id, outer);
        assert_eq!(spans[1].trace_id, 9);
    }

    #[test]
    fn flight_recorder_rotates_and_dumps_oldest_first() {
        let recorder = FlightRecorder::with_capacity(2);
        recorder.record("worker.panic", "batch of 3".into(), 11);
        recorder.record("watchdog.cancel", "slot 0".into(), 12);
        recorder.record("brownout.transition", "0 -> 1".into(), 0);
        assert_eq!(recorder.recorded(), 3);
        let dump = recorder.dump();
        assert_eq!(dump.schema_version, TRACE_SCHEMA_VERSION);
        assert_eq!(dump.capacity, 2);
        assert_eq!(dump.dropped, 1);
        assert_eq!(dump.events.len(), 2);
        assert_eq!(dump.events[0].kind, "watchdog.cancel");
        assert_eq!(dump.events[1].kind, "brownout.transition");
        assert!(dump.events[0].seq < dump.events[1].seq);
        assert!(dump.events[0].at_ns <= dump.events[1].at_ns);
    }

    #[test]
    fn prometheus_exposition_covers_every_kind() {
        let sink = crate::telemetry::TelemetrySink::enabled();
        sink.counter_add("serve.requests", 5);
        sink.gauge_set("serve.queue_depth", 3.0);
        sink.record("anneal.steps", 120.0);
        sink.record("anneal.steps", 450.0);
        let text = prometheus_text(&sink.snapshot());
        assert!(text.contains("# TYPE dsgl_serve_requests counter\n"));
        assert!(text.contains("dsgl_serve_requests 5\n"));
        assert!(text.contains("# TYPE dsgl_serve_queue_depth gauge\n"));
        assert!(text.contains("dsgl_serve_queue_depth 3\n"));
        assert!(text.contains("# TYPE dsgl_anneal_steps histogram\n"));
        assert!(text.contains("dsgl_anneal_steps_bucket{le=\"+Inf\"} 2\n"));
        assert!(text.contains("dsgl_anneal_steps_sum 570\n"));
        assert!(text.contains("dsgl_anneal_steps_count 2\n"));
        // Bucket series is cumulative: the last finite bucket carries
        // the full count.
        let last_finite = text
            .lines()
            .rfind(|l| l.contains("_bucket{le=\"") && !l.contains("+Inf"))
            .unwrap();
        assert!(last_finite.ends_with(" 2"));
        // Every non-comment line is `name[{labels}] value`.
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            assert_eq!(line.split_whitespace().count(), 2, "bad line: {line}");
        }
    }

    #[test]
    fn chrome_trace_json_has_complete_events() {
        let collector = SpanCollector::enabled();
        let t = collector.now();
        let root = collector.record(3, 0, "serve.request", t, &[]);
        collector.record(3, root, "anneal.strict", t, &[("steps", 12.0)]);
        let json = chrome_trace_json(&collector.snapshot());
        assert!(json.starts_with("{\"displayTimeUnit\":\"ms\",\"traceEvents\":["));
        assert!(json.ends_with("]}"));
        assert!(json.contains("\"name\":\"serve.request\""));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"tid\":3"));
        assert!(json.contains("\"steps\":12"));
        assert_eq!(json.matches("{\"name\":").count(), 2);
        // Balanced braces/brackets (the serialization suite parses it
        // with a real JSON parser; this is the in-crate sanity check).
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn json_escaping_and_nonfinite_numbers_stay_valid() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
        assert_eq!(json_number(f64::NAN), "0");
        assert_eq!(json_number(f64::INFINITY), "0");
        assert_eq!(json_number(2.5), "2.5");
    }

    #[test]
    fn empty_span_list_is_still_a_valid_document() {
        assert_eq!(
            chrome_trace_json(&[]),
            "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[]}"
        );
    }
}
