//! Error type for the dynamical-system substrate.

use std::error::Error;
use std::fmt;

/// Errors produced while constructing or driving Ising machines.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum IsingError {
    /// A vector length did not match the machine's node count.
    DimensionMismatch {
        /// What was being supplied.
        what: &'static str,
        /// Expected length.
        expected: usize,
        /// Actual length.
        actual: usize,
    },
    /// A self-reaction parameter `h` was not strictly negative.
    ///
    /// The Real-Valued DSPU requires `h < 0`; otherwise the quadratic
    /// energy regulator does not bound the Hamiltonian from below and the
    /// voltages diverge (paper Sec. III.A).
    NonNegativeSelfReaction {
        /// Node with the invalid parameter.
        node: usize,
        /// The offending value.
        value: f64,
    },
    /// A node index was out of range.
    NodeOutOfRange {
        /// The offending node index.
        node: usize,
        /// Node count of the machine.
        len: usize,
    },
    /// A clamp value was outside the machine's voltage rails.
    ClampOutOfRails {
        /// Node being clamped.
        node: usize,
        /// Requested value.
        value: f64,
        /// Rail magnitude.
        rail: f64,
    },
    /// A non-finite parameter or state value was supplied.
    NonFinite {
        /// What was being supplied.
        what: &'static str,
    },
    /// A scalar hardware parameter was outside its valid range
    /// (non-finite, non-positive, or otherwise physically meaningless).
    InvalidParameter {
        /// Which parameter was being set.
        what: &'static str,
        /// The offending value.
        value: f64,
    },
}

impl fmt::Display for IsingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IsingError::DimensionMismatch {
                what,
                expected,
                actual,
            } => write!(f, "{what} has length {actual}, expected {expected}"),
            IsingError::NonNegativeSelfReaction { node, value } => write!(
                f,
                "self-reaction h[{node}] = {value} must be strictly negative for real-valued annealing"
            ),
            IsingError::NodeOutOfRange { node, len } => {
                write!(f, "node {node} out of range for machine of {len} nodes")
            }
            IsingError::ClampOutOfRails { node, value, rail } => write!(
                f,
                "clamp value {value} for node {node} outside voltage rails ±{rail}"
            ),
            IsingError::NonFinite { what } => write!(f, "{what} contains a non-finite value"),
            IsingError::InvalidParameter { what, value } => {
                write!(f, "invalid {what}: {value}")
            }
        }
    }
}

impl Error for IsingError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = IsingError::DimensionMismatch {
            what: "h",
            expected: 4,
            actual: 3,
        };
        assert_eq!(e.to_string(), "h has length 3, expected 4");
        assert!(IsingError::NonNegativeSelfReaction { node: 2, value: 0.5 }
            .to_string()
            .contains("strictly negative"));
        assert_eq!(
            IsingError::InvalidParameter {
                what: "capacitance",
                value: -1.0
            }
            .to_string(),
            "invalid capacitance: -1"
        );
    }

    #[test]
    fn is_error_send_sync() {
        fn assert_traits<T: Error + Send + Sync>() {}
        assert_traits::<IsingError>();
    }
}
