//! Machine-owned scratch buffers for allocation-free annealing.
//!
//! Every hot path of the DSPU used to allocate per call: `step_rk4`
//! built five `vec![0.0; n]` buffers per step, `max_free_rate` /
//! `energy` one each, the run loop a convergence snapshot and a noise
//! accumulator, and the event-driven engine four active-set vectors per
//! run. A [`Workspace`] pools all of them on the machine itself: the
//! first use of each buffer sizes it, every later use reuses the
//! existing capacity, and a reuse counter (surfaced as the
//! `anneal.workspace_reuses` telemetry instrument) proves the hot path
//! stopped allocating.
//!
//! ## Lifetime rules
//!
//! - The workspace belongs to one [`crate::RealValuedDspu`] and holds
//!   **no observable state**: buffers are dead storage between calls,
//!   and every consumer fully overwrites (or re-initialises) what it
//!   reads. Swapping, clearing, or replacing a workspace can therefore
//!   never change machine output — only allocation traffic.
//! - Hot paths borrow buffers either by disjoint field borrows or by
//!   `std::mem::take` (leaving a cheap empty pool in place) and restore
//!   them before returning, so a panic can at worst cost the pooled
//!   capacity, never correctness.
//! - Batch drivers may migrate a workspace between consecutive machines
//!   ([`crate::RealValuedDspu::take_workspace`] /
//!   [`adopt_workspace`](crate::RealValuedDspu::adopt_workspace)) so
//!   per-window machines stop paying the warm-up allocations — the
//!   buffers carry capacity, not values, across windows.

/// Pooled scratch buffers owned by a [`crate::RealValuedDspu`].
///
/// All fields are dead storage between uses; see the module docs for
/// the lifetime rules. `Default` yields an empty pool that sizes itself
/// on first use.
#[derive(Debug, Clone, Default)]
pub struct Workspace {
    /// Coupling currents `J·σ` (Euler step, residual, energy).
    pub(crate) js: Vec<f64>,
    /// RK4 stage slopes.
    pub(crate) k1: Vec<f64>,
    /// RK4 stage slopes.
    pub(crate) k2: Vec<f64>,
    /// RK4 stage slopes.
    pub(crate) k3: Vec<f64>,
    /// RK4 stage slopes.
    pub(crate) k4: Vec<f64>,
    /// RK4 staged state `σ + c·dt·k`.
    pub(crate) stage: Vec<f64>,
    /// Convergence-check snapshot of the previous state (run loop).
    pub(crate) prev: Vec<f64>,
    /// Integrating-readout accumulator (noisy runs).
    pub(crate) acc: Vec<f64>,
    /// Event engine: active-set queue.
    pub(crate) queue: Vec<u32>,
    /// Event engine: per-node membership marks.
    pub(crate) marked: Vec<bool>,
    /// Event engine: staged moves `(node, Δ, new value)`.
    pub(crate) moved: Vec<(u32, f64, f64)>,
    /// Event engine: nodes whose currents changed this step.
    pub(crate) candidates: Vec<u32>,
    /// Lockstep batch: densified shared coupling (`n × n`).
    pub(crate) batch_j: Vec<f64>,
    /// Lockstep batch: packed window states (`n × W`, window-minor).
    pub(crate) batch_states: Vec<f64>,
    /// Lockstep batch: fused coupling currents `J·S` (`n × W`).
    pub(crate) batch_js: Vec<f64>,
    /// Lockstep batch: per-window convergence snapshots (`n × W`).
    pub(crate) batch_prev: Vec<f64>,
    /// Lockstep batch: RK4 stage slopes (`n × W`).
    pub(crate) batch_k1: Vec<f64>,
    /// Lockstep batch: RK4 stage slopes (`n × W`).
    pub(crate) batch_k2: Vec<f64>,
    /// Lockstep batch: RK4 stage slopes (`n × W`).
    pub(crate) batch_k3: Vec<f64>,
    /// Lockstep batch: RK4 stage slopes (`n × W`).
    pub(crate) batch_k4: Vec<f64>,
    /// Lockstep batch: RK4 staged states (`n × W`).
    pub(crate) batch_stage: Vec<f64>,
    /// Lockstep batch: GEMM packing scratch (managed by
    /// `gemm_into_scratch`, capacity persists across stages).
    pub(crate) batch_panel: Vec<f64>,
    /// Buffer preparations served from existing capacity, total.
    reuses_total: u64,
    /// Reuses since the last telemetry report (drained per run).
    reuses_unreported: u64,
}

impl Workspace {
    /// An empty pool; buffers size themselves on first use.
    pub fn new() -> Self {
        Workspace::default()
    }

    /// Buffer preparations served without allocating, since this
    /// workspace was created. Monotonic; the per-run telemetry drain
    /// does not reset it.
    pub fn reuses(&self) -> u64 {
        self.reuses_total
    }

    /// Resizes `buf` to `len` zeros; true when the existing capacity
    /// already covered it (no allocation happened).
    pub(crate) fn ensure_f64(buf: &mut Vec<f64>, len: usize) -> bool {
        let reused = buf.capacity() >= len;
        buf.clear();
        buf.resize(len, 0.0);
        reused
    }

    /// Tallies one buffer-preparation event.
    pub(crate) fn note(&mut self, reused: bool) {
        if reused {
            self.reuses_total += 1;
            self.reuses_unreported += 1;
        }
    }

    /// Reuses accumulated since the previous drain — reported as the
    /// `anneal.workspace_reuses` counter at run level.
    pub(crate) fn drain_unreported(&mut self) -> u64 {
        std::mem::take(&mut self.reuses_unreported)
    }

    /// Prepares the Euler-step current buffer.
    pub(crate) fn ensure_step(&mut self, n: usize) {
        let reused = Self::ensure_f64(&mut self.js, n);
        self.note(reused);
    }

    /// Prepares the five RK4 buffers in one go (counted as one event —
    /// either the whole step allocated or none of it did).
    pub(crate) fn ensure_rk4(&mut self, n: usize) {
        let mut reused = true;
        reused &= Self::ensure_f64(&mut self.k1, n);
        reused &= Self::ensure_f64(&mut self.k2, n);
        reused &= Self::ensure_f64(&mut self.k3, n);
        reused &= Self::ensure_f64(&mut self.k4, n);
        reused &= Self::ensure_f64(&mut self.stage, n);
        self.note(reused);
    }

    /// Prepares the lockstep batch buffers for `w` windows of `n` nodes
    /// (counted as one event, like [`ensure_rk4`](Self::ensure_rk4)).
    /// The RK4 stage buffers are only touched when the batch will
    /// integrate with RK4.
    pub(crate) fn ensure_batch(&mut self, n: usize, w: usize, rk4: bool) {
        let mut reused = true;
        reused &= Self::ensure_f64(&mut self.batch_j, n * n);
        reused &= Self::ensure_f64(&mut self.batch_states, n * w);
        reused &= Self::ensure_f64(&mut self.batch_js, n * w);
        reused &= Self::ensure_f64(&mut self.batch_prev, n * w);
        if rk4 {
            reused &= Self::ensure_f64(&mut self.batch_k1, n * w);
            reused &= Self::ensure_f64(&mut self.batch_k2, n * w);
            reused &= Self::ensure_f64(&mut self.batch_k3, n * w);
            reused &= Self::ensure_f64(&mut self.batch_k4, n * w);
            reused &= Self::ensure_f64(&mut self.batch_stage, n * w);
        }
        self.note(reused);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ensure_counts_reuse_only_after_capacity_exists() {
        let mut ws = Workspace::new();
        ws.ensure_step(8);
        assert_eq!(ws.reuses(), 0, "first preparation allocates");
        ws.ensure_step(8);
        ws.ensure_step(4); // shrinking reuses capacity too
        assert_eq!(ws.reuses(), 2);
        ws.ensure_step(16); // growth allocates again
        assert_eq!(ws.reuses(), 2);
        assert_eq!(ws.drain_unreported(), 2);
        assert_eq!(ws.drain_unreported(), 0, "drain resets the unreported tally");
        assert_eq!(ws.reuses(), 2, "total survives the drain");
    }

    #[test]
    fn rk4_preparation_counts_once() {
        let mut ws = Workspace::new();
        ws.ensure_rk4(6);
        ws.ensure_rk4(6);
        ws.ensure_rk4(6);
        assert_eq!(ws.reuses(), 2);
    }
}
