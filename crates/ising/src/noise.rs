//! Gaussian disturbance of nodes and coupling units (paper Sec. V.G).

use rand::{Rng, RngExt};
use serde::{Deserialize, Serialize};

/// Dynamic noise injected into the analog machine while it anneals.
///
/// `node_std` is the *stationary* standard deviation of the node-voltage
/// fluctuation as a fraction of the rail: white current noise is scaled
/// so that, filtered by the node's own RC dynamics, the voltage jitters
/// with exactly this RMS amplitude (making results insensitive to both
/// the integrator timestep and the node time constant). `coupler_std`
/// is the relative standard deviation of the aggregate coupling current
/// into each node, modelling fluctuation of the programmable resistors.
/// The paper's `n = 5 %` corresponds to `NoiseModel::relative(0.05)`.
///
/// # Example
///
/// ```
/// use dsgl_ising::NoiseModel;
///
/// let quiet = NoiseModel::none();
/// assert!(quiet.is_none());
/// let noisy = NoiseModel::relative(0.10);
/// assert!(!noisy.is_none());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NoiseModel {
    /// Std of additive node-voltage noise per √ns, relative to the rail.
    pub node_std: f64,
    /// Relative std of the combined coupling current into each node.
    pub coupler_std: f64,
}

impl NoiseModel {
    /// No noise at all.
    pub fn none() -> Self {
        NoiseModel {
            node_std: 0.0,
            coupler_std: 0.0,
        }
    }

    /// Equal relative noise `n` on both nodes and couplers — the paper's
    /// single-parameter sweep (`n ∈ {5 %, 10 %, 15 %}`).
    pub fn relative(n: f64) -> Self {
        NoiseModel {
            node_std: n,
            coupler_std: n,
        }
    }

    /// Whether this model injects no noise.
    pub fn is_none(&self) -> bool {
        self.node_std == 0.0 && self.coupler_std == 0.0
    }
}

impl Default for NoiseModel {
    fn default() -> Self {
        NoiseModel::none()
    }
}

/// Draws a standard normal sample via the Box–Muller transform.
///
/// Kept local so the workspace does not need the `rand_distr` crate.
pub fn gaussian<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    loop {
        let u1: f64 = rng.random();
        if u1 <= f64::MIN_POSITIVE {
            continue;
        }
        let u2: f64 = rng.random();
        return (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn none_is_none() {
        assert!(NoiseModel::none().is_none());
        assert!(NoiseModel::default().is_none());
        assert!(!NoiseModel::relative(0.05).is_none());
    }

    #[test]
    fn gaussian_moments() {
        let mut rng = StdRng::seed_from_u64(123);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| gaussian(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "variance {var}");
    }

    #[test]
    fn gaussian_deterministic() {
        let a = gaussian(&mut StdRng::seed_from_u64(9));
        let b = gaussian(&mut StdRng::seed_from_u64(9));
        assert_eq!(a, b);
    }

    #[test]
    fn relative_sets_both_channels_equally() {
        for n in [0.05, 0.10, 0.15] {
            let m = NoiseModel::relative(n);
            assert_eq!(m.node_std, n);
            assert_eq!(m.coupler_std, n);
        }
        // One-sided models are not "none": each channel counts alone.
        let node_only = NoiseModel {
            node_std: 0.1,
            coupler_std: 0.0,
        };
        let coupler_only = NoiseModel {
            node_std: 0.0,
            coupler_std: 0.1,
        };
        assert!(!node_only.is_none() && !coupler_only.is_none());
    }

    #[test]
    fn none_fast_path_consumes_no_rng() {
        // A noiseless step must not touch the RNG: the fast path keeps
        // clean runs bit-reproducible regardless of how many steps ran.
        use crate::coupling::Coupling;
        use crate::dspu::RealValuedDspu;
        let mut j = Coupling::zeros(3);
        j.set(0, 1, 0.5);
        j.set(1, 2, 0.5);
        let mut d = RealValuedDspu::new(j, vec![-1.5; 3]).unwrap();
        d.clamp(0, 0.6).unwrap();
        let mut rng = StdRng::seed_from_u64(31);
        for _ in 0..20 {
            d.step(1.0, &NoiseModel::none(), &mut rng);
        }
        let after_run: f64 = rng.random();
        let untouched: f64 = StdRng::seed_from_u64(31).random();
        assert_eq!(after_run, untouched, "noiseless steps consumed RNG");
    }

    #[test]
    fn noisy_run_deterministic_under_fixed_seed() {
        use crate::anneal::AnnealConfig;
        use crate::coupling::Coupling;
        use crate::dspu::RealValuedDspu;
        let run = |seed: u64| {
            let mut j = Coupling::zeros(4);
            j.set(0, 1, 0.4);
            j.set(1, 2, -0.3);
            j.set(2, 3, 0.2);
            let mut d = RealValuedDspu::new(j, vec![-1.2; 4]).unwrap();
            d.clamp(0, 0.7).unwrap();
            let mut rng = StdRng::seed_from_u64(seed);
            d.randomize_free(&mut rng);
            let mut cfg = AnnealConfig::with_budget(300.0);
            cfg.noise = NoiseModel::relative(0.10);
            d.run(&cfg, &mut rng);
            d.state().iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        };
        assert_eq!(run(42), run(42), "same seed must be bit-identical");
        assert_ne!(run(42), run(43), "different seeds should diverge");
    }
}
