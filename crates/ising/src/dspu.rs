//! The Real-Valued DSPU: a dynamical system whose natural annealing
//! settles on real-valued solutions (paper Sec. III).

use crate::anneal::{AnnealConfig, AnnealReport, Integrator};
use crate::convergence::max_rate;
use crate::coupling::Coupling;
use crate::error::IsingError;
use crate::hamiltonian::rv_energy_from_matvec;
use crate::noise::{gaussian, NoiseModel};
use crate::sparse::SparseCoupling;
use crate::trace::Trace;
use crate::workspace::Workspace;
use rand::{Rng, RngExt};

/// A simulated Real-Valued Dynamical-System Processing Unit.
///
/// Every node is a capacitor voltage `σᵢ ∈ [-rail, +rail]`; couplings are
/// programmable resistors and each node carries a circulative resistor
/// ring of conductance `|hᵢ|` (the quadratic self-reaction). The machine
/// integrates
///
/// ```text
/// C · dσᵢ/dt = Σⱼ Jᵢⱼ σⱼ + hᵢ σᵢ        (hᵢ < 0)
/// ```
///
/// so the Hamiltonian `H_RV = -½σᵀJσ - ½Σhᵢσᵢ²` decreases monotonically
/// (Lyapunov) and free voltages stabilise at `σᵢ = -Σⱼ Jᵢⱼσⱼ / hᵢ`.
/// Observed graph nodes are *clamped* — the node-control unit holds their
/// capacitors at the observed voltage — and the rest anneal freely.
///
/// # Example
///
/// ```
/// use dsgl_ising::{Coupling, RealValuedDspu, AnnealConfig};
/// use rand::SeedableRng;
///
/// let mut j = Coupling::zeros(2);
/// j.set(0, 1, 0.5);
/// let mut dspu = RealValuedDspu::new(j, vec![-1.0, -1.0]).unwrap();
/// dspu.clamp(0, 0.6).unwrap();
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let report = dspu.run(&AnnealConfig::default(), &mut rng);
/// assert!(report.converged);
/// // Fixed point: σ1 = -J01·σ0/h1 = 0.5·0.6 = 0.3.
/// assert!((dspu.state()[1] - 0.3).abs() < 1e-3);
/// ```
#[derive(Debug, Clone)]
pub struct RealValuedDspu {
    pub(crate) coupling: SparseCoupling,
    pub(crate) h: Vec<f64>,
    pub(crate) state: Vec<f64>,
    pub(crate) free: Vec<bool>,
    pub(crate) rail: f64,
    pub(crate) capacitance: f64,
    pub(crate) workspace: Workspace,
    pub(crate) telemetry: crate::telemetry::TelemetrySink,
    pub(crate) tracing: crate::tracing::TraceScope,
    pub(crate) cancel: Option<crate::cancel::CancelToken>,
}

impl RealValuedDspu {
    /// Builds a machine from a coupling matrix and self-reaction vector.
    ///
    /// # Errors
    ///
    /// Returns [`IsingError::DimensionMismatch`] when `h.len() != n`,
    /// [`IsingError::NonNegativeSelfReaction`] when any `hᵢ >= 0`, and
    /// [`IsingError::NonFinite`] for non-finite `h`.
    pub fn new(coupling: Coupling, h: Vec<f64>) -> Result<Self, IsingError> {
        let n = coupling.n();
        if h.len() != n {
            return Err(IsingError::DimensionMismatch {
                what: "h",
                expected: n,
                actual: h.len(),
            });
        }
        if h.iter().any(|v| !v.is_finite()) {
            return Err(IsingError::NonFinite { what: "h" });
        }
        if let Some((node, &value)) = h.iter().enumerate().find(|(_, &v)| v >= 0.0) {
            return Err(IsingError::NonNegativeSelfReaction { node, value });
        }
        Ok(RealValuedDspu {
            coupling: SparseCoupling::from_dense(&coupling),
            h,
            state: vec![0.0; n],
            free: vec![true; n],
            rail: 1.0,
            capacitance: crate::RC_NS,
            workspace: Workspace::new(),
            telemetry: crate::telemetry::TelemetrySink::noop(),
            tracing: crate::tracing::TraceScope::noop(),
            cancel: None,
        })
    }

    /// Builds a machine directly from a sparse coupling — the
    /// constructor for large decomposed systems (100k+ nodes) where a
    /// dense [`Coupling`] would not fit in memory. Pair with
    /// [`SparseCoupling::from_entries`].
    ///
    /// # Errors
    ///
    /// Same contract as [`RealValuedDspu::new`]:
    /// [`IsingError::DimensionMismatch`] when `h.len() != coupling.n()`,
    /// [`IsingError::NonNegativeSelfReaction`] when any `hᵢ >= 0`, and
    /// [`IsingError::NonFinite`] for non-finite `h`.
    pub fn from_sparse(coupling: SparseCoupling, h: Vec<f64>) -> Result<Self, IsingError> {
        let n = coupling.n();
        if h.len() != n {
            return Err(IsingError::DimensionMismatch {
                what: "h",
                expected: n,
                actual: h.len(),
            });
        }
        if h.iter().any(|v| !v.is_finite()) {
            return Err(IsingError::NonFinite { what: "h" });
        }
        if let Some((node, &value)) = h.iter().enumerate().find(|(_, &v)| v >= 0.0) {
            return Err(IsingError::NonNegativeSelfReaction { node, value });
        }
        Ok(RealValuedDspu {
            coupling,
            h,
            state: vec![0.0; n],
            free: vec![true; n],
            rail: 1.0,
            capacitance: crate::RC_NS,
            workspace: Workspace::new(),
            telemetry: crate::telemetry::TelemetrySink::noop(),
            tracing: crate::tracing::TraceScope::noop(),
            cancel: None,
        })
    }

    /// Attaches a telemetry sink: every subsequent annealing run reports
    /// its `anneal.*` instruments (steps, simulated time, residual,
    /// active-set occupancy, rail saturations) into it. The default
    /// [noop sink](crate::telemetry::TelemetrySink::noop) costs nothing
    /// and recording never perturbs machine state or RNG streams.
    pub fn set_telemetry(&mut self, sink: crate::telemetry::TelemetrySink) {
        self.telemetry = sink;
    }

    /// The attached telemetry sink (noop unless
    /// [`set_telemetry`](Self::set_telemetry) was called).
    pub fn telemetry(&self) -> &crate::telemetry::TelemetrySink {
        &self.telemetry
    }

    /// Attaches a tracing scope: every subsequent annealing run records
    /// one `anneal.{strict,adaptive,lockstep}` span into the scope's
    /// [`SpanCollector`](crate::tracing::SpanCollector), carrying the
    /// step count and simulated time as args. Spans are recorded only
    /// after the dynamics finish, per the telemetry contract, so traced
    /// runs stay bit-identical; the default
    /// [noop scope](crate::tracing::TraceScope::noop) costs one branch.
    pub fn set_tracing(&mut self, scope: crate::tracing::TraceScope) {
        self.tracing = scope;
    }

    /// The attached tracing scope (noop unless
    /// [`set_tracing`](Self::set_tracing) was called).
    pub fn tracing(&self) -> &crate::tracing::TraceScope {
        &self.tracing
    }

    /// Attaches a cooperative cancellation token: every subsequent
    /// annealing run polls it once per integration step and stops early
    /// — with an unconverged report — once it fires. A token that never
    /// fires is bit-invisible (no state reads, no RNG draws, no
    /// allocation); without a token the check is a single `Option`
    /// branch.
    pub fn set_cancel(&mut self, token: crate::cancel::CancelToken) {
        self.cancel = Some(token);
    }

    /// Whether an attached [`CancelToken`](crate::cancel::CancelToken)
    /// has fired. `false` when no token is attached. Tokens latch, so
    /// after a cancelled run this keeps returning `true` — callers
    /// (e.g. `GuardedAnneal`) use it to tell a cancellation apart from
    /// an ordinary non-convergence.
    pub fn cancel_requested(&self) -> bool {
        self.cancel.as_ref().is_some_and(|t| t.is_cancelled())
    }

    /// Node capacitance in ns·Ω (the RC time constant at unit `|h|`).
    pub fn capacitance(&self) -> f64 {
        self.capacitance
    }

    /// Overrides the node capacitance.
    ///
    /// # Errors
    ///
    /// Returns [`IsingError::InvalidParameter`] unless `c` is finite and
    /// positive.
    pub fn set_capacitance(&mut self, c: f64) -> Result<(), IsingError> {
        if !c.is_finite() || c <= 0.0 {
            return Err(IsingError::InvalidParameter {
                what: "capacitance",
                value: c,
            });
        }
        self.capacitance = c;
        Ok(())
    }

    /// Number of nodes.
    pub fn n(&self) -> usize {
        self.h.len()
    }

    /// Voltage rail magnitude (default 1.0).
    pub fn rail(&self) -> f64 {
        self.rail
    }

    /// Sets the voltage rail magnitude.
    ///
    /// # Errors
    ///
    /// Returns [`IsingError::InvalidParameter`] unless `rail` is finite
    /// and positive.
    pub fn set_rail(&mut self, rail: f64) -> Result<(), IsingError> {
        if !rail.is_finite() || rail <= 0.0 {
            return Err(IsingError::InvalidParameter {
                what: "rail",
                value: rail,
            });
        }
        self.rail = rail;
        Ok(())
    }

    /// Clamps node `i` to `value` (an observed input).
    ///
    /// # Errors
    ///
    /// Returns [`IsingError::NodeOutOfRange`] or
    /// [`IsingError::ClampOutOfRails`].
    pub fn clamp(&mut self, i: usize, value: f64) -> Result<(), IsingError> {
        if i >= self.n() {
            return Err(IsingError::NodeOutOfRange {
                node: i,
                len: self.n(),
            });
        }
        if !value.is_finite() || value.abs() > self.rail {
            return Err(IsingError::ClampOutOfRails {
                node: i,
                value,
                rail: self.rail,
            });
        }
        self.free[i] = false;
        self.state[i] = value;
        Ok(())
    }

    /// Releases node `i` back to free evolution.
    ///
    /// # Errors
    ///
    /// Returns [`IsingError::NodeOutOfRange`] for bad indices.
    pub fn release(&mut self, i: usize) -> Result<(), IsingError> {
        if i >= self.n() {
            return Err(IsingError::NodeOutOfRange {
                node: i,
                len: self.n(),
            });
        }
        self.free[i] = true;
        Ok(())
    }

    /// Releases all nodes.
    pub fn release_all(&mut self) {
        self.free.fill(true);
    }

    /// Current node voltages.
    pub fn state(&self) -> &[f64] {
        &self.state
    }

    /// Which nodes are free (not clamped).
    pub fn free_mask(&self) -> &[bool] {
        &self.free
    }

    /// Overwrites the full state (clamped and free alike).
    ///
    /// # Errors
    ///
    /// Returns [`IsingError::DimensionMismatch`] on length mismatch and
    /// [`IsingError::NonFinite`] for non-finite values.
    pub fn set_state(&mut self, state: &[f64]) -> Result<(), IsingError> {
        if state.len() != self.n() {
            return Err(IsingError::DimensionMismatch {
                what: "state",
                expected: self.n(),
                actual: state.len(),
            });
        }
        if state.iter().any(|v| !v.is_finite()) {
            return Err(IsingError::NonFinite { what: "state" });
        }
        self.state.copy_from_slice(state);
        Ok(())
    }

    /// Initialises free nodes uniformly in `[-rail/10, rail/10]`
    /// (the random initialisation of unknown nodes, paper Sec. III.C).
    pub fn randomize_free<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        for i in 0..self.n() {
            if self.free[i] {
                self.state[i] = (rng.random::<f64>() - 0.5) * 0.2 * self.rail;
            }
        }
    }

    /// Injects persistent hardware defects described by a
    /// [`crate::fault::FaultModel`]: dead couplers are removed from the
    /// fabric, coupler drift freezes a multiplicative offset onto every
    /// surviving weight (drawn from `rng`), and stuck nodes are pinned —
    /// removed from the free set with their voltage forced to the stuck
    /// level, *even when that level is non-finite*, so garbage readouts
    /// propagate exactly as they would on silicon.
    ///
    /// Call after clamping inputs and before annealing. The event-driven
    /// engine needs no special handling: stuck nodes are not free, so the
    /// active set never integrates them.
    ///
    /// # Errors
    ///
    /// Returns the validation error of
    /// [`crate::fault::FaultModel::validate`] and leaves the machine
    /// untouched.
    pub fn inject_faults<R: Rng + ?Sized>(
        &mut self,
        faults: &crate::fault::FaultModel,
        rng: &mut R,
    ) -> Result<(), IsingError> {
        faults.validate(self.n())?;
        if faults.is_none() {
            return Ok(());
        }
        if !faults.dead_couplers.is_empty() || faults.coupler_drift > 0.0 {
            let mut dense = self.coupling.to_dense();
            faults.apply_to_coupling(&mut dense, rng);
            self.coupling = SparseCoupling::from_dense(&dense);
        }
        for s in &faults.stuck_nodes {
            // Deliberately bypasses `clamp` validation: a stuck level may
            // sit outside the rails or be NaN.
            self.free[s.idx] = false;
            self.state[s.idx] = s.value;
        }
        Ok(())
    }

    /// Replaces every non-finite state entry with `fallback`, returning
    /// how many entries were replaced. The recovery primitive used by
    /// guarded annealing after NaN contamination.
    pub fn sanitize(&mut self, fallback: f64) -> usize {
        let mut replaced = 0;
        for v in &mut self.state {
            if !v.is_finite() {
                *v = fallback;
                replaced += 1;
            }
        }
        replaced
    }

    /// Instantaneous maximum free-node rate `|dσ/dt|` at the current
    /// state, in rail fractions per ns — the residual of the equilibrium
    /// condition `σᵢ = -Σⱼ Jᵢⱼσⱼ / hᵢ`. Nodes pinned at a rail with
    /// outward drive are stationary (the clamp holds them) and excluded.
    ///
    /// Unlike the in-run convergence check, which compares states a full
    /// check window apart and can be aliased by an even-period
    /// oscillation, this is a point-in-time measurement: it is large at
    /// any point of a limit cycle. One mat-vec; consumes no RNG.
    ///
    /// Takes `&mut self` only to reuse the machine's pooled current
    /// buffer; observable state is untouched.
    pub fn max_free_rate(&mut self) -> f64 {
        let n = self.h.len();
        self.workspace.ensure_step(n);
        let ws = &mut self.workspace;
        self.coupling.matvec(&self.state, &mut ws.js);
        let mut rate = 0.0f64;
        for (i, &jsi) in ws.js.iter().enumerate() {
            if !self.free[i] {
                continue;
            }
            let dv = (jsi + self.h[i] * self.state[i]) / self.capacitance;
            let pinned = (self.state[i] >= self.rail && dv > 0.0)
                || (self.state[i] <= -self.rail && dv < 0.0);
            if !pinned {
                rate = rate.max(dv.abs());
            }
        }
        rate
    }

    /// Current Hamiltonian `H_RV`.
    ///
    /// Takes `&mut self` only to reuse the machine's pooled current
    /// buffer; observable state is untouched.
    pub fn energy(&mut self) -> f64 {
        let n = self.h.len();
        self.workspace.ensure_step(n);
        let ws = &mut self.workspace;
        self.coupling.matvec(&self.state, &mut ws.js);
        rv_energy_from_matvec(&ws.js, &self.h, &self.state)
    }

    /// Detaches the machine's scratch [`Workspace`], leaving an empty
    /// pool behind. Batch drivers hand the detached workspace to the
    /// next machine via [`adopt_workspace`](Self::adopt_workspace) so
    /// consecutive windows share warmed-up buffers instead of paying
    /// the first-use allocations again. Buffers carry capacity, never
    /// values, so migration cannot change any result.
    pub fn take_workspace(&mut self) -> Workspace {
        std::mem::take(&mut self.workspace)
    }

    /// Installs a scratch [`Workspace`] (typically detached from a
    /// previous machine with [`take_workspace`](Self::take_workspace)),
    /// replacing the current pool.
    pub fn adopt_workspace(&mut self, ws: Workspace) {
        self.workspace = ws;
    }

    /// The machine's scratch [`Workspace`] — exposes the buffer-reuse
    /// counters that prove the annealing hot path stopped allocating.
    pub fn workspace(&self) -> &Workspace {
        &self.workspace
    }

    /// Advances the machine one Euler step of `dt_ns`, returning the
    /// maximum free-node rate `|dσ/dt|` observed.
    ///
    /// The dominant cost, the coupling mat-vec, runs multi-threaded
    /// under the `parallel` feature (bit-identically to the serial
    /// build). The per-node integration stays serial so that noise
    /// draws consume the RNG in node order, keeping noisy runs
    /// reproducible for a given seed at any thread count.
    ///
    /// # Panics
    ///
    /// Panics if `dt_ns <= 0`.
    pub fn step<R: Rng + ?Sized>(
        &mut self,
        dt_ns: f64,
        noise: &NoiseModel,
        rng: &mut R,
    ) -> f64 {
        assert!(dt_ns > 0.0, "dt must be positive");
        let n = self.h.len();
        self.workspace.ensure_step(n);
        // Disjoint field borrows: the workspace lends its current buffer
        // while coupling/state/h stay borrowed through `self`.
        let ws = &mut self.workspace;
        self.coupling.matvec(&self.state, &mut ws.js);
        let mut rate = 0.0f64;
        for (i, &jsi) in ws.js.iter().enumerate() {
            if !self.free[i] {
                continue;
            }
            let mut current = jsi;
            if noise.coupler_std > 0.0 {
                current *= 1.0 + noise.coupler_std * gaussian(rng);
            }
            let dv = (current + self.h[i] * self.state[i]) / self.capacitance;
            rate = rate.max(dv.abs());
            let mut next = self.state[i] + dv * dt_ns;
            if noise.node_std > 0.0 {
                // White current noise scaled so the RC-filtered voltage
                // fluctuates with stationary std = node_std·rail.
                let sigma = noise.node_std
                    * self.rail
                    * (2.0 * self.h[i].abs() * dt_ns / self.capacitance).sqrt();
                next += sigma * gaussian(rng);
            }
            self.state[i] = next.clamp(-self.rail, self.rail);
        }
        rate
    }

    /// Advances one classical RK4 step of `dt_ns` on the noiseless
    /// dynamics, then injects noise Euler–Maruyama style. Four mat-vecs
    /// per step, but follows the analog trajectory far more accurately
    /// than Euler at the same `dt`.
    ///
    /// All four mat-vecs run multi-threaded under the `parallel`
    /// feature; noise injection stays serial in node order (see
    /// [`RealValuedDspu::step`]).
    ///
    /// # Panics
    ///
    /// Panics if `dt_ns <= 0`.
    pub fn step_rk4<R: Rng + ?Sized>(
        &mut self,
        dt_ns: f64,
        noise: &NoiseModel,
        rng: &mut R,
    ) -> f64 {
        assert!(dt_ns > 0.0, "dt must be positive");
        let n = self.n();
        let deriv = |machine: &Self, state: &[f64], out: &mut [f64]| {
            machine.coupling.matvec(state, out);
            for i in 0..n {
                out[i] = if machine.free[i] {
                    (out[i] + machine.h[i] * state[i]) / machine.capacitance
                } else {
                    0.0
                };
            }
        };
        // `deriv` borrows the whole machine, so the stage buffers are
        // detached for the duration of the step (`mem::take` leaves an
        // empty pool in place) and restored afterwards — no per-step
        // allocation once the pool is warm.
        self.workspace.ensure_rk4(n);
        let mut ws = std::mem::take(&mut self.workspace);
        deriv(self, &self.state, &mut ws.k1);
        for i in 0..n {
            ws.stage[i] = self.state[i] + 0.5 * dt_ns * ws.k1[i];
        }
        deriv(self, &ws.stage, &mut ws.k2);
        for i in 0..n {
            ws.stage[i] = self.state[i] + 0.5 * dt_ns * ws.k2[i];
        }
        deriv(self, &ws.stage, &mut ws.k3);
        for i in 0..n {
            ws.stage[i] = self.state[i] + dt_ns * ws.k3[i];
        }
        deriv(self, &ws.stage, &mut ws.k4);
        let mut rate = 0.0f64;
        for i in 0..n {
            if !self.free[i] {
                continue;
            }
            let dv = (ws.k1[i] + 2.0 * ws.k2[i] + 2.0 * ws.k3[i] + ws.k4[i]) / 6.0;
            rate = rate.max(dv.abs());
            let mut next = self.state[i] + dv * dt_ns;
            if noise.node_std > 0.0 {
                let sigma = noise.node_std
                    * self.rail
                    * (2.0 * self.h[i].abs() * dt_ns / self.capacitance).sqrt();
                next += sigma * gaussian(rng);
            }
            if noise.coupler_std > 0.0 {
                next += noise.coupler_std * dv.abs() * dt_ns * gaussian(rng);
            }
            self.state[i] = next.clamp(-self.rail, self.rail);
        }
        self.workspace = ws;
        rate
    }

    /// Runs natural annealing until convergence or the time budget.
    pub fn run<R: Rng + ?Sized>(&mut self, config: &AnnealConfig, rng: &mut R) -> AnnealReport {
        self.run_inner(config, rng, None)
    }

    /// Runs natural annealing while recording a [`Trace`] with the given
    /// sampling stride.
    pub fn run_traced<R: Rng + ?Sized>(
        &mut self,
        config: &AnnealConfig,
        stride_ns: f64,
        rng: &mut R,
    ) -> (AnnealReport, Trace) {
        let mut trace = Trace::new(stride_ns);
        let report = self.run_inner(config, rng, Some(&mut trace));
        (report, trace)
    }

    fn run_inner<R: Rng + ?Sized>(
        &mut self,
        config: &AnnealConfig,
        rng: &mut R,
        mut trace: Option<&mut Trace>,
    ) -> AnnealReport {
        let span_start = self.tracing.start();
        // The event-driven engine handles noiseless Euler runs; noise
        // keeps every node active (nothing to skip) and RK4's staged
        // mat-vecs defeat incremental current maintenance, so both fall
        // back to the strict fixed-schedule path below.
        if let crate::engine::EngineMode::Adaptive { config: acfg } = config.mode {
            if config.noise.is_none() && config.integrator == Integrator::Euler {
                let report = crate::engine::run_adaptive(self, config, &acfg, trace);
                self.record_anneal_metrics(&report);
                self.record_anneal_span("anneal.adaptive", span_start, &report);
                return report;
            }
        }
        let mut t = 0.0;
        let mut steps = 0;
        let mut converged = false;
        // Convergence snapshot from the pool: detached because `step`
        // below needs the workspace, restored before returning.
        let mut prev = std::mem::take(&mut self.workspace.prev);
        let reused = Workspace::ensure_f64(&mut prev, self.n());
        self.workspace.note(reused);
        prev.copy_from_slice(&self.state);
        let mut rate = f64::INFINITY;
        if let Some(tr) = trace.as_deref_mut() {
            tr.record(0.0, &self.state);
        }
        while t < config.max_time_ns {
            if self.cancel_requested() {
                break;
            }
            match config.integrator {
                Integrator::Euler => self.step(config.dt_ns, &config.noise, rng),
                Integrator::Rk4 => self.step_rk4(config.dt_ns, &config.noise, rng),
            };
            t += config.dt_ns;
            steps += 1;
            if let Some(tr) = trace.as_deref_mut() {
                tr.record(t, &self.state);
            }
            if steps % config.check_every == 0 {
                rate = max_rate(
                    &prev,
                    &self.state,
                    &self.free,
                    config.dt_ns * config.check_every as f64,
                );
                prev.copy_from_slice(&self.state);
                if rate < config.tolerance {
                    converged = true;
                    break;
                }
            }
        }
        // Integrating readout under noise: the node-control unit latches
        // the output as a time-average over several RC constants, which
        // filters the voltage jitter out of the reading (paper Fig. 13's
        // "natural good tolerance of physical dynamical systems").
        // A cancelled run skips the readout rather than burn the full
        // averaging window after the supervisor already gave up on it.
        if !config.noise.is_none() && !self.cancel_requested() {
            let min_h = self
                .h
                .iter()
                .fold(f64::INFINITY, |m, h| m.min(h.abs()))
                .max(1e-9);
            let window_ns = 8.0 * self.capacitance / min_h;
            let avg_steps = ((window_ns / config.dt_ns).ceil() as usize).max(1);
            let mut acc = std::mem::take(&mut self.workspace.acc);
            let reused = Workspace::ensure_f64(&mut acc, self.n());
            self.workspace.note(reused);
            for _ in 0..avg_steps {
                match config.integrator {
                    Integrator::Euler => self.step(config.dt_ns, &config.noise, rng),
                    Integrator::Rk4 => self.step_rk4(config.dt_ns, &config.noise, rng),
                };
                t += config.dt_ns;
                steps += 1;
                if let Some(tr) = trace.as_deref_mut() {
                    tr.record(t, &self.state);
                }
                for (a, &s) in acc.iter_mut().zip(&self.state) {
                    *a += s;
                }
            }
            let inv = 1.0 / avg_steps as f64;
            for (i, &a) in acc.iter().enumerate() {
                if self.free[i] {
                    self.state[i] = a * inv;
                }
            }
            self.workspace.acc = acc;
        }
        self.workspace.prev = prev;
        let report = AnnealReport {
            converged,
            steps,
            sim_time_ns: t,
            final_rate: rate,
            energy: self.energy(),
            sparse_steps: 0,
            mean_active_fraction: 1.0,
        };
        self.record_anneal_metrics(&report);
        self.record_anneal_span("anneal.strict", span_start, &report);
        report
    }

    /// Records one `anneal.*` phase span into the attached tracing
    /// scope. Called only after the dynamics finish (the telemetry
    /// contract); with a noop scope `start` is `None` and this is a
    /// single branch.
    pub(crate) fn record_anneal_span(
        &self,
        name: &str,
        start: Option<std::time::Instant>,
        report: &AnnealReport,
    ) {
        self.tracing.record(
            name,
            start,
            &[
                ("steps", report.steps as f64),
                ("sim_time_ns", report.sim_time_ns),
                ("converged", f64::from(u8::from(report.converged))),
            ],
        );
    }

    /// Reports an externally-integrated annealing run to the attached
    /// telemetry sink, exactly as an in-machine [`run`](Self::run)
    /// would have. Used by the lockstep batch driver
    /// ([`crate::lockstep::run_lockstep`]), which integrates many
    /// machines at once and therefore records per-window metrics from
    /// the outside; calling it for a run the machine already recorded
    /// would double-count.
    pub fn record_anneal(&mut self, report: &AnnealReport) {
        self.record_anneal_metrics(report);
    }

    /// Reports one finished annealing run to the attached telemetry
    /// sink. Every value is run-level (simulated time, not wall time);
    /// the rail-saturation scan only runs when the sink is enabled, so
    /// the noop path stays a single branch. The workspace-reuse tally is
    /// drained either way so a later enabled run never reports stale
    /// counts.
    fn record_anneal_metrics(&mut self, report: &AnnealReport) {
        let reuses = self.workspace.drain_unreported();
        let sink = &self.telemetry;
        if !sink.is_enabled() {
            return;
        }
        sink.counter_add("anneal.workspace_reuses", reuses);
        sink.counter_add("anneal.runs", 1);
        if report.converged {
            sink.counter_add("anneal.converged", 1);
        }
        sink.record("anneal.steps", report.steps as f64);
        sink.record("anneal.sim_time_ns", report.sim_time_ns);
        if report.final_rate.is_finite() {
            sink.record("anneal.final_rate", report.final_rate);
        }
        sink.record("anneal.sparse_steps", report.sparse_steps as f64);
        sink.record("anneal.active_fraction", report.mean_active_fraction);
        let railed = self
            .state
            .iter()
            .zip(&self.free)
            .filter(|(v, &free)| free && v.abs() >= self.rail)
            .count();
        sink.record("anneal.rail_saturated_nodes", railed as f64);
    }

    /// The analytic fixed point the free nodes should reach, obtained by
    /// damped fixed-point iteration of `σ_F = D⁻¹(J σ)` with clamped
    /// nodes held. Useful as ground truth in tests.
    pub fn analytic_fixed_point(&self, iterations: usize) -> Vec<f64> {
        let n = self.n();
        let mut s = self.state.clone();
        let mut js = vec![0.0; n];
        for _ in 0..iterations {
            self.coupling.matvec(&s, &mut js);
            for i in 0..n {
                if self.free[i] {
                    let target = (-js[i] / self.h[i]).clamp(-self.rail, self.rail);
                    s[i] = 0.5 * s[i] + 0.5 * target;
                }
            }
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hamiltonian::rv_energy;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn chain3() -> RealValuedDspu {
        let mut j = Coupling::zeros(3);
        j.set(0, 1, 0.5);
        j.set(1, 2, 0.5);
        RealValuedDspu::new(j, vec![-1.5; 3]).unwrap()
    }

    #[test]
    fn construction_validates() {
        let j = Coupling::zeros(2);
        assert!(matches!(
            RealValuedDspu::new(j.clone(), vec![-1.0]),
            Err(IsingError::DimensionMismatch { .. })
        ));
        assert!(matches!(
            RealValuedDspu::new(j.clone(), vec![-1.0, 0.0]),
            Err(IsingError::NonNegativeSelfReaction { node: 1, .. })
        ));
        assert!(matches!(
            RealValuedDspu::new(j, vec![-1.0, f64::NAN]),
            Err(IsingError::NonFinite { .. })
        ));
    }

    #[test]
    fn clamp_validation() {
        let mut d = chain3();
        assert!(matches!(
            d.clamp(7, 0.0),
            Err(IsingError::NodeOutOfRange { .. })
        ));
        assert!(matches!(
            d.clamp(0, 2.0),
            Err(IsingError::ClampOutOfRails { .. })
        ));
        d.clamp(0, 0.5).unwrap();
        assert!(!d.free_mask()[0]);
        d.release(0).unwrap();
        assert!(d.free_mask()[0]);
    }

    #[test]
    fn setter_validation_returns_errors() {
        let mut d = chain3();
        for bad in [0.0, -3.0, f64::NAN, f64::INFINITY] {
            assert!(matches!(
                d.set_capacitance(bad),
                Err(IsingError::InvalidParameter {
                    what: "capacitance",
                    ..
                })
            ));
            assert!(matches!(
                d.set_rail(bad),
                Err(IsingError::InvalidParameter { what: "rail", .. })
            ));
        }
        // Failed setters leave the machine untouched.
        assert_eq!(d.capacitance(), crate::RC_NS);
        assert_eq!(d.rail(), 1.0);
        d.set_capacitance(50.0).unwrap();
        d.set_rail(2.0).unwrap();
        assert_eq!(d.capacitance(), 50.0);
        assert_eq!(d.rail(), 2.0);
    }

    #[test]
    fn converges_to_fixed_point() {
        let mut d = chain3();
        d.clamp(0, 0.9).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        d.randomize_free(&mut rng);
        let report = d.run(&AnnealConfig::default(), &mut rng);
        assert!(report.converged, "did not converge: {report:?}");
        // Solve by substitution: σ1 = (J01 σ0 + J12 σ2)/1.5, σ2 = J12 σ1 / 1.5
        // => σ1 = (0.45 + 0.5 σ2)/1.5, σ2 = σ1/3 => σ1 = 0.45/1.5 / (1 - 0.5/(3*1.5))
        let s1 = 0.3 / (1.0 - 0.5 / 4.5);
        let s2 = s1 / 3.0;
        assert!((d.state()[1] - s1).abs() < 1e-3, "σ1 = {}", d.state()[1]);
        assert!((d.state()[2] - s2).abs() < 1e-3, "σ2 = {}", d.state()[2]);
        // Matches the analytic helper too.
        let fp = d.analytic_fixed_point(200);
        assert!((d.state()[1] - fp[1]).abs() < 1e-3);
    }

    #[test]
    fn fully_clamped_machine_is_inert() {
        // Every node clamped: no free variables remain, annealing must
        // converge immediately and leave every value exactly in place.
        let mut d = chain3();
        d.clamp(0, 0.3).unwrap();
        d.clamp(1, -0.2).unwrap();
        d.clamp(2, 0.8).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        d.randomize_free(&mut rng); // no-op: nothing is free
        let report = d.run(&AnnealConfig::default(), &mut rng);
        assert!(report.converged);
        assert_eq!(d.state(), &[0.3, -0.2, 0.8]);
        // The analytic fixed point of a fully-clamped machine is its
        // clamped state.
        assert_eq!(d.analytic_fixed_point(50), vec![0.3, -0.2, 0.8]);
    }

    #[test]
    fn energy_decreases_without_noise() {
        let mut d = chain3();
        d.clamp(0, 0.7).unwrap();
        let mut rng = StdRng::seed_from_u64(11);
        d.randomize_free(&mut rng);
        let mut last = f64::INFINITY;
        for _ in 0..50 {
            d.step(0.05, &NoiseModel::none(), &mut rng);
            let e = d.energy();
            assert!(e <= last + 1e-9, "energy rose: {e} > {last}");
            last = e;
        }
    }

    #[test]
    fn values_stay_within_rails() {
        // Strong couplings but rails must bound everything.
        let mut j = Coupling::zeros(2);
        j.set(0, 1, 10.0);
        let mut d = RealValuedDspu::new(j, vec![-1.0, -1.0]).unwrap();
        d.clamp(0, 1.0).unwrap();
        let mut rng = StdRng::seed_from_u64(0);
        d.run(&AnnealConfig::with_budget(100.0), &mut rng);
        assert!(d.state()[1] <= 1.0 && d.state()[1] >= -1.0);
        assert_eq!(d.state()[1], 1.0, "saturates at the rail");
    }

    #[test]
    fn deterministic_given_seed() {
        let run = |seed| {
            let mut d = chain3();
            d.clamp(0, 0.4).unwrap();
            let mut rng = StdRng::seed_from_u64(seed);
            d.randomize_free(&mut rng);
            d.run(&AnnealConfig::default(), &mut rng);
            d.state().to_vec()
        };
        assert_eq!(run(5), run(5));
    }

    #[test]
    fn noise_perturbs_but_stays_close() {
        let mut d = chain3();
        d.clamp(0, 0.9).unwrap();
        let mut rng = StdRng::seed_from_u64(7);
        d.randomize_free(&mut rng);
        let mut cfg = AnnealConfig::with_budget(200.0);
        cfg.noise = NoiseModel::relative(0.05);
        d.run(&cfg, &mut rng);
        let s1 = 0.3 / (1.0 - 0.5 / 4.5);
        assert!((d.state()[1] - s1).abs() < 0.15, "noisy σ1 = {}", d.state()[1]);
    }

    #[test]
    fn energy_method_matches_free_function() {
        let mut j = Coupling::zeros(3);
        j.set(0, 1, 0.3);
        j.set(1, 2, -0.2);
        let h = vec![-1.0, -2.0, -1.5];
        let mut d = RealValuedDspu::new(j.clone(), h.clone()).unwrap();
        d.set_state(&[0.1, -0.4, 0.6]).unwrap();
        assert!((d.energy() - rv_energy(&j, &h, &[0.1, -0.4, 0.6])).abs() < 1e-12);
    }

    #[test]
    fn traced_run_records() {
        let mut d = chain3();
        d.clamp(0, 0.5).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let cfg = AnnealConfig {
            dt_ns: 0.5,
            max_time_ns: 10.0,
            ..AnnealConfig::default()
        };
        let (report, trace) = d.run_traced(&cfg, 1.0, &mut rng);
        assert!(trace.len() >= 10, "trace too short: {}", trace.len());
        assert!(report.sim_time_ns <= 10.0 + 1e-9);
        // Clamped node constant throughout.
        for (_, v) in trace.series(0) {
            assert_eq!(v, 0.5);
        }
    }
}

#[cfg(test)]
mod rk4_tests {
    use super::*;
    use crate::anneal::Integrator;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn chain3() -> RealValuedDspu {
        let mut j = Coupling::zeros(3);
        j.set(0, 1, 0.5);
        j.set(1, 2, 0.5);
        RealValuedDspu::new(j, vec![-1.5; 3]).unwrap()
    }

    #[test]
    fn rk4_reaches_same_fixed_point_as_euler() {
        let run = |integrator: Integrator| {
            let mut d = chain3();
            d.clamp(0, 0.9).unwrap();
            let mut rng = StdRng::seed_from_u64(3);
            d.randomize_free(&mut rng);
            let cfg = AnnealConfig {
                integrator,
                ..AnnealConfig::default()
            };
            let report = d.run(&cfg, &mut rng);
            assert!(report.converged, "{integrator:?} did not converge");
            d.state().to_vec()
        };
        let euler = run(Integrator::Euler);
        let rk4 = run(Integrator::Rk4);
        for (a, b) in euler.iter().zip(&rk4) {
            assert!((a - b).abs() < 1e-4, "euler {a} vs rk4 {b}");
        }
    }

    #[test]
    fn rk4_stable_at_larger_dt() {
        // A stiff instance where Euler at dt = 60 diverges (rate grows)
        // but RK4 still lands on the fixed point.
        let mut j = Coupling::zeros(2);
        j.set(0, 1, 1.2);
        let make = || {
            let mut d = RealValuedDspu::new(j.clone(), vec![-3.0, -3.0]).unwrap();
            d.clamp(0, 0.6).unwrap();
            d.set_state(&[0.6, 0.0]).unwrap();
            d
        };
        let target = 1.2 * 0.6 / 3.0;
        let mut rng = StdRng::seed_from_u64(0);
        let cfg = AnnealConfig {
            dt_ns: 60.0,
            integrator: Integrator::Rk4,
            max_time_ns: 3_000.0,
            ..AnnealConfig::default()
        };
        let mut d = make();
        d.run(&cfg, &mut rng);
        assert!(
            (d.state()[1] - target).abs() < 1e-3,
            "rk4 fixed point {} vs {target}",
            d.state()[1]
        );
    }

    #[test]
    fn rk4_more_accurate_mid_trajectory() {
        // Against the analytic solution of a single free node driven by
        // a clamped neighbour: σ(t) = target·(1 - exp(-|h| t / C)).
        let mut j = Coupling::zeros(2);
        j.set(0, 1, 1.0);
        let target = 0.8 / 2.0;
        let run = |integrator: Integrator, steps: usize, dt: f64| {
            let mut d = RealValuedDspu::new(j.clone(), vec![-2.0, -2.0]).unwrap();
            d.clamp(0, 0.8).unwrap();
            d.set_state(&[0.8, 0.0]).unwrap();
            let mut rng = StdRng::seed_from_u64(0);
            for _ in 0..steps {
                match integrator {
                    Integrator::Euler => d.step(dt, &NoiseModel::none(), &mut rng),
                    Integrator::Rk4 => d.step_rk4(dt, &NoiseModel::none(), &mut rng),
                };
            }
            d.state()[1]
        };
        let t = 40.0;
        let exact = target * (1.0 - (-2.0 * t / crate::RC_NS).exp());
        let euler_err = (run(Integrator::Euler, 2, 20.0) - exact).abs();
        let rk4_err = (run(Integrator::Rk4, 2, 20.0) - exact).abs();
        assert!(
            rk4_err < euler_err / 10.0,
            "rk4 err {rk4_err} vs euler err {euler_err}"
        );
    }
}
