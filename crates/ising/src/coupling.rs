//! The symmetric coupling matrix `J` of a dynamical system.

use crate::error::IsingError;
use serde::{Deserialize, Serialize};

/// A dense, symmetric coupling matrix with zero diagonal.
///
/// On hardware this is the programmable-resistor crossbar: entry
/// `J[i][j]` is the conductance coupling node `i` and node `j`
/// (two circulative resistor rings per pair to realise both signs,
/// paper Fig. 3). The type maintains two invariants at all times:
/// `J[i][j] == J[j][i]` and `J[i][i] == 0`.
///
/// # Example
///
/// ```
/// use dsgl_ising::Coupling;
///
/// let mut j = Coupling::zeros(3);
/// j.set(0, 2, -1.5);
/// assert_eq!(j.get(2, 0), -1.5);
/// assert_eq!(j.nnz(), 1);
/// assert!((j.density() - 1.0 / 3.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Coupling {
    n: usize,
    data: Vec<f64>,
}

impl Coupling {
    /// Creates an `n x n` all-zero coupling matrix.
    pub fn zeros(n: usize) -> Self {
        Coupling {
            n,
            data: vec![0.0; n * n],
        }
    }

    /// Builds a coupling matrix from a row-major dense matrix, symmetrising
    /// it as the paper does (`Jᵢⱼ + Jⱼᵢ → Jᵢⱼ`, then halved so the
    /// symmetric matrix represents the same quadratic form) and zeroing
    /// the diagonal.
    ///
    /// # Errors
    ///
    /// Returns [`IsingError::DimensionMismatch`] if `data.len() != n * n`
    /// and [`IsingError::NonFinite`] if any entry is not finite.
    pub fn from_dense(n: usize, data: &[f64]) -> Result<Self, IsingError> {
        if data.len() != n * n {
            return Err(IsingError::DimensionMismatch {
                what: "coupling data",
                expected: n * n,
                actual: data.len(),
            });
        }
        if data.iter().any(|v| !v.is_finite()) {
            return Err(IsingError::NonFinite { what: "coupling data" });
        }
        let mut out = Coupling::zeros(n);
        for i in 0..n {
            for j in (i + 1)..n {
                let w = (data[i * n + j] + data[j * n + i]) / 2.0;
                out.set_raw(i, j, w);
            }
        }
        Ok(out)
    }

    /// Number of nodes.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Sets `J[i][j] = J[j][i] = w` (no-op with `w` kept symmetric).
    ///
    /// # Panics
    ///
    /// Panics if `i == j` (diagonal must stay zero) or either index is out
    /// of range.
    pub fn set(&mut self, i: usize, j: usize, w: f64) {
        assert!(i != j, "coupling diagonal must stay zero");
        assert!(i < self.n && j < self.n, "coupling index out of range");
        self.set_raw(i, j, w);
    }

    fn set_raw(&mut self, i: usize, j: usize, w: f64) {
        self.data[i * self.n + j] = w;
        self.data[j * self.n + i] = w;
    }

    /// Returns `J[i][j]`.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn get(&self, i: usize, j: usize) -> f64 {
        assert!(i < self.n && j < self.n, "coupling index out of range");
        self.data[i * self.n + j]
    }

    /// Row `i` as a slice (length `n`).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.n..(i + 1) * self.n]
    }

    /// The underlying row-major buffer.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Number of nonzero couplings (unordered pairs).
    pub fn nnz(&self) -> usize {
        let mut count = 0;
        for i in 0..self.n {
            for j in (i + 1)..self.n {
                if self.data[i * self.n + j] != 0.0 {
                    count += 1;
                }
            }
        }
        count
    }

    /// Fraction of possible couplings that are nonzero
    /// (`nnz / (n(n-1)/2)`), the paper's "density" knob. Zero for `n < 2`.
    pub fn density(&self) -> f64 {
        if self.n < 2 {
            return 0.0;
        }
        self.nnz() as f64 / (self.n * (self.n - 1) / 2) as f64
    }

    /// Sum of `|J[i][j]|` over row `i` — the diagonal-dominance budget used
    /// to keep annealing contractive.
    pub fn row_abs_sum(&self, i: usize) -> f64 {
        self.row(i).iter().map(|w| w.abs()).sum()
    }

    /// Dense mat-vec `out = J * s`.
    ///
    /// Runs on the row-blocked kernel
    /// [`dsgl_nn::kernels::matvec_rows_into`] (four rows stream `s`
    /// once), with four-row slabs computed in parallel when the
    /// `parallel` feature is on and the system is large enough. Each
    /// row still accumulates in column order, so results are
    /// bit-identical to the historical per-row loop and across thread
    /// counts.
    ///
    /// # Panics
    ///
    /// Panics if `s` or `out` have wrong length.
    pub fn matvec(&self, s: &[f64], out: &mut [f64]) {
        assert_eq!(s.len(), self.n, "state length mismatch");
        assert_eq!(out.len(), self.n, "output length mismatch");
        let n = self.n;
        crate::par::fill_row_chunks(out, 4, n, |start, slab| {
            let rows = &self.data[start * n..(start + slab.len()) * n];
            dsgl_nn::kernels::matvec_rows_into(rows, n, s, slab);
        });
    }

    /// Prunes the weakest couplings so that at most a `target_density`
    /// fraction of pairs remain (keeping the strongest `|J|`), in place.
    /// This is step (i) of the decomposition pipeline (paper Fig. 5).
    ///
    /// Values of `target_density >= current density` leave the matrix
    /// unchanged. `target_density` is clamped to `[0, 1]`.
    pub fn prune_to_density(&mut self, target_density: f64) {
        let target_density = target_density.clamp(0.0, 1.0);
        let pairs_total = self.n * self.n.saturating_sub(1) / 2;
        let keep = (target_density * pairs_total as f64).round() as usize;
        let mut mags: Vec<(f64, usize, usize)> = Vec::new();
        for i in 0..self.n {
            for j in (i + 1)..self.n {
                let w = self.data[i * self.n + j];
                if w != 0.0 {
                    mags.push((w.abs(), i, j));
                }
            }
        }
        if mags.len() <= keep {
            return;
        }
        mags.sort_by(|a, b| b.0.partial_cmp(&a.0).expect("finite magnitudes"));
        for &(_, i, j) in &mags[keep..] {
            self.set_raw(i, j, 0.0);
        }
    }

    /// Zeroes every coupling where `mask` is false. `mask` is indexed
    /// `i * n + j` and is expected to be symmetric; the entry is kept only
    /// when both orientations allow it.
    ///
    /// # Panics
    ///
    /// Panics if `mask.len() != n * n`.
    pub fn apply_mask(&mut self, mask: &[bool]) {
        assert_eq!(mask.len(), self.n * self.n, "mask length mismatch");
        for i in 0..self.n {
            for j in (i + 1)..self.n {
                if !(mask[i * self.n + j] && mask[j * self.n + i]) {
                    self.set_raw(i, j, 0.0);
                }
            }
        }
    }

    /// Enumerates nonzero couplings as `(i, j, w)` with `i < j`.
    pub fn nonzeros(&self) -> Vec<(usize, usize, f64)> {
        let mut out = Vec::new();
        for i in 0..self.n {
            for j in (i + 1)..self.n {
                let w = self.data[i * self.n + j];
                if w != 0.0 {
                    out.push((i, j, w));
                }
            }
        }
        out
    }

    /// Largest |J| entry (0 for an empty matrix).
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0, |m, w| m.max(w.abs()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn symmetry_maintained() {
        let mut j = Coupling::zeros(4);
        j.set(1, 3, 2.5);
        assert_eq!(j.get(1, 3), 2.5);
        assert_eq!(j.get(3, 1), 2.5);
        assert_eq!(j.get(0, 0), 0.0);
    }

    #[test]
    #[should_panic(expected = "diagonal")]
    fn diagonal_set_panics() {
        Coupling::zeros(3).set(1, 1, 1.0);
    }

    #[test]
    fn from_dense_symmetrises() {
        // Asymmetric input: J01=2, J10=4 -> symmetric 3.
        let data = vec![9.0, 2.0, 4.0, 0.0];
        let j = Coupling::from_dense(2, &data).unwrap();
        assert_eq!(j.get(0, 1), 3.0);
        assert_eq!(j.get(0, 0), 0.0, "diagonal dropped");
    }

    #[test]
    fn from_dense_errors() {
        assert!(matches!(
            Coupling::from_dense(2, &[1.0; 3]),
            Err(IsingError::DimensionMismatch { .. })
        ));
        assert!(matches!(
            Coupling::from_dense(1, &[f64::NAN]),
            Err(IsingError::NonFinite { .. })
        ));
    }

    #[test]
    fn density_and_nnz() {
        let mut j = Coupling::zeros(4); // 6 possible pairs
        j.set(0, 1, 1.0);
        j.set(2, 3, -1.0);
        assert_eq!(j.nnz(), 2);
        assert!((j.density() - 2.0 / 6.0).abs() < 1e-12);
        assert_eq!(Coupling::zeros(1).density(), 0.0);
    }

    #[test]
    fn matvec_matches_manual() {
        let mut j = Coupling::zeros(3);
        j.set(0, 1, 2.0);
        j.set(1, 2, -1.0);
        let s = [1.0, 0.5, -2.0];
        let mut out = [0.0; 3];
        j.matvec(&s, &mut out);
        assert_eq!(out, [1.0, 4.0, -0.5]);
    }

    #[test]
    fn prune_keeps_strongest() {
        let mut j = Coupling::zeros(4);
        j.set(0, 1, 5.0);
        j.set(0, 2, 0.1);
        j.set(1, 2, -3.0);
        j.set(2, 3, 0.2);
        j.prune_to_density(2.0 / 6.0); // keep 2 of 6 pairs
        assert_eq!(j.nnz(), 2);
        assert_eq!(j.get(0, 1), 5.0);
        assert_eq!(j.get(1, 2), -3.0);
        assert_eq!(j.get(0, 2), 0.0);
    }

    #[test]
    fn prune_noop_when_sparse_enough() {
        let mut j = Coupling::zeros(4);
        j.set(0, 1, 1.0);
        let before = j.clone();
        j.prune_to_density(0.9);
        assert_eq!(j, before);
    }

    #[test]
    fn prune_to_zero_density() {
        let mut j = Coupling::zeros(3);
        j.set(0, 1, 1.0);
        j.set(1, 2, 2.0);
        j.prune_to_density(0.0);
        assert_eq!(j.nnz(), 0);
    }

    #[test]
    fn mask_application() {
        let mut j = Coupling::zeros(3);
        j.set(0, 1, 1.0);
        j.set(1, 2, 2.0);
        let mut mask = vec![true; 9];
        mask[3 + 2] = false; // forbid (1,2): index row·n + col = 1·3 + 2
        j.apply_mask(&mask);
        assert_eq!(j.get(0, 1), 1.0);
        assert_eq!(j.get(1, 2), 0.0);
    }

    #[test]
    fn row_abs_sum_and_max_abs() {
        let mut j = Coupling::zeros(3);
        j.set(0, 1, -2.0);
        j.set(0, 2, 1.5);
        assert!((j.row_abs_sum(0) - 3.5).abs() < 1e-12);
        assert_eq!(j.max_abs(), 2.0);
    }

    #[test]
    fn nonzeros_listing() {
        let mut j = Coupling::zeros(3);
        j.set(2, 0, 7.0);
        assert_eq!(j.nonzeros(), vec![(0, 2, 7.0)]);
    }
}
