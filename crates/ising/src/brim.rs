//! The baseline binary BRIM machine (Afoakwa et al., HPCA'21).
//!
//! BRIM nodes have *no* regulating resistor: incoming coupling current
//! charges the nano-capacitor until it saturates at a rail, so free nodes
//! polarise to ±1 — the behaviour paper Fig. 4 contrasts with the DSPU.
//! A small bistable latch gain models the positive feedback that makes
//! the node genuinely two-state, and a random-flip schedule provides the
//! annealing control used for combinatorial problems such as max-cut.

use crate::anneal::{AnnealConfig, AnnealReport, FlipSchedule};
use crate::coupling::Coupling;
use crate::error::IsingError;
use crate::hamiltonian::ising_energy;
use crate::noise::{gaussian, NoiseModel};
use crate::sparse::SparseCoupling;
use crate::trace::Trace;
use rand::{Rng, RngExt};

/// A simulated BRIM: bistable resistively-coupled Ising machine.
///
/// # Example
///
/// ```
/// use dsgl_ising::{Coupling, Brim, AnnealConfig, FlipSchedule};
/// use rand::SeedableRng;
///
/// // Antiferromagnetic pair: ground states are (+1, -1) / (-1, +1).
/// let mut j = Coupling::zeros(2);
/// j.set(0, 1, -1.0);
/// let mut brim = Brim::new(j, vec![0.0, 0.0]).unwrap();
/// let mut rng = rand::rngs::StdRng::seed_from_u64(4);
/// brim.randomize(&mut rng);
/// brim.anneal(&AnnealConfig::with_budget(200.0), &FlipSchedule::default(), &mut rng);
/// let s = brim.spins();
/// assert_eq!(s[0] * s[1], -1);
/// ```
#[derive(Debug, Clone)]
pub struct Brim {
    coupling: SparseCoupling,
    dense: Coupling,
    h: Vec<f64>,
    state: Vec<f64>,
    free: Vec<bool>,
    rail: f64,
    capacitance: f64,
    latch_gain: f64,
}

impl Brim {
    /// Builds a BRIM from a coupling matrix and external-field vector.
    ///
    /// # Errors
    ///
    /// Returns [`IsingError::DimensionMismatch`] when `h.len() != n` and
    /// [`IsingError::NonFinite`] for non-finite `h`.
    pub fn new(coupling: Coupling, h: Vec<f64>) -> Result<Self, IsingError> {
        let n = coupling.n();
        if h.len() != n {
            return Err(IsingError::DimensionMismatch {
                what: "h",
                expected: n,
                actual: h.len(),
            });
        }
        if h.iter().any(|v| !v.is_finite()) {
            return Err(IsingError::NonFinite { what: "h" });
        }
        Ok(Brim {
            coupling: SparseCoupling::from_dense(&coupling),
            dense: coupling,
            h,
            state: vec![0.0; n],
            free: vec![true; n],
            rail: 1.0,
            capacitance: crate::RC_NS,
            latch_gain: 0.5,
        })
    }

    /// Number of nodes.
    pub fn n(&self) -> usize {
        self.h.len()
    }

    /// Overrides the node capacitance (default [`crate::RC_NS`]).
    ///
    /// # Errors
    ///
    /// Returns [`IsingError::InvalidParameter`] unless `c` is finite and
    /// positive.
    pub fn set_capacitance(&mut self, c: f64) -> Result<(), IsingError> {
        if !c.is_finite() || c <= 0.0 {
            return Err(IsingError::InvalidParameter {
                what: "capacitance",
                value: c,
            });
        }
        self.capacitance = c;
        Ok(())
    }

    /// Current node voltages.
    pub fn state(&self) -> &[f64] {
        &self.state
    }

    /// Binary spin readout: the sign of each voltage (`+1` for zero).
    pub fn spins(&self) -> Vec<i8> {
        self.state
            .iter()
            .map(|&v| if v < 0.0 { -1 } else { 1 })
            .collect()
    }

    /// Clamps node `i` to a rail-bounded value (an input node).
    ///
    /// # Errors
    ///
    /// Same contract as [`crate::RealValuedDspu::clamp`].
    pub fn clamp(&mut self, i: usize, value: f64) -> Result<(), IsingError> {
        if i >= self.n() {
            return Err(IsingError::NodeOutOfRange {
                node: i,
                len: self.n(),
            });
        }
        if !value.is_finite() || value.abs() > self.rail {
            return Err(IsingError::ClampOutOfRails {
                node: i,
                value,
                rail: self.rail,
            });
        }
        self.free[i] = false;
        self.state[i] = value;
        Ok(())
    }

    /// Initialises free nodes uniformly in `[-rail/10, rail/10]`.
    pub fn randomize<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        for i in 0..self.n() {
            if self.free[i] {
                self.state[i] = (rng.random::<f64>() - 0.5) * 0.2 * self.rail;
            }
        }
    }

    /// Current Ising energy of the (binarised) spins.
    pub fn energy(&self) -> f64 {
        let spins: Vec<f64> = self.spins().iter().map(|&s| s as f64).collect();
        ising_energy(&self.dense, &self.h, &spins)
    }

    /// Advances one Euler step: `C·dσᵢ/dt = ΣⱼJᵢⱼσⱼ + hᵢ + λσᵢ`.
    ///
    /// The positive latch gain `λ` destabilises the origin, so free nodes
    /// polarise towards a rail (contrast with the DSPU's negative `h`).
    ///
    /// # Panics
    ///
    /// Panics if `dt_ns <= 0`.
    pub fn step<R: Rng + ?Sized>(&mut self, dt_ns: f64, noise: &NoiseModel, rng: &mut R) {
        assert!(dt_ns > 0.0, "dt must be positive");
        let n = self.n();
        let mut js = vec![0.0; n];
        self.coupling.matvec(&self.state, &mut js);
        // Same stationary-percentage noise convention as the DSPU, with
        // the latch gain setting the node bandwidth.
        let node_sigma = noise.node_std
            * self.rail
            * (2.0 * self.latch_gain * dt_ns / self.capacitance).sqrt();
        for (i, &jsi) in js.iter().enumerate().take(n) {
            if !self.free[i] {
                continue;
            }
            let mut current = jsi + self.h[i];
            if noise.coupler_std > 0.0 {
                current *= 1.0 + noise.coupler_std * gaussian(rng);
            }
            let dv = (current + self.latch_gain * self.state[i]) / self.capacitance;
            let mut next = self.state[i] + dv * dt_ns;
            if node_sigma > 0.0 {
                next += node_sigma * gaussian(rng);
            }
            self.state[i] = next.clamp(-self.rail, self.rail);
        }
    }

    /// Runs annealing: continuous dynamics plus scheduled random flips
    /// (the node-control unit flipping binary values at runtime).
    pub fn anneal<R: Rng + ?Sized>(
        &mut self,
        config: &AnnealConfig,
        flips: &FlipSchedule,
        rng: &mut R,
    ) -> AnnealReport {
        self.anneal_inner(config, flips, rng, None)
    }

    /// Like [`anneal`](Self::anneal) but records a voltage [`Trace`].
    pub fn anneal_traced<R: Rng + ?Sized>(
        &mut self,
        config: &AnnealConfig,
        flips: &FlipSchedule,
        stride_ns: f64,
        rng: &mut R,
    ) -> (AnnealReport, Trace) {
        let mut trace = Trace::new(stride_ns);
        let report = self.anneal_inner(config, flips, rng, Some(&mut trace));
        (report, trace)
    }

    fn anneal_inner<R: Rng + ?Sized>(
        &mut self,
        config: &AnnealConfig,
        flips: &FlipSchedule,
        rng: &mut R,
        mut trace: Option<&mut Trace>,
    ) -> AnnealReport {
        let mut t = 0.0;
        let mut steps = 0;
        let mut best_energy = self.energy();
        let mut best_state = self.state.clone();
        if let Some(tr) = trace.as_deref_mut() {
            tr.record(0.0, &self.state);
        }
        while t < config.max_time_ns {
            let p = flips.probability(t, config.dt_ns);
            if p > 0.0 {
                for i in 0..self.n() {
                    if self.free[i] && rng.random::<f64>() < p {
                        self.state[i] = -self.state[i];
                    }
                }
            }
            self.step(config.dt_ns, &config.noise, rng);
            t += config.dt_ns;
            steps += 1;
            if let Some(tr) = trace.as_deref_mut() {
                tr.record(t, &self.state);
            }
            if steps % config.check_every == 0 {
                let e = self.energy();
                if e < best_energy {
                    best_energy = e;
                    best_state.copy_from_slice(&self.state);
                }
            }
        }
        // Keep the best configuration visited (standard annealing readout).
        if self.energy() > best_energy {
            self.state.copy_from_slice(&best_state);
        }
        AnnealReport {
            converged: true,
            steps,
            sim_time_ns: t,
            final_rate: 0.0,
            energy: self.energy(),
            sparse_steps: 0,
            mean_active_fraction: 1.0,
        }
    }

    /// Cut value of the current spin configuration for a max-cut instance
    /// programmed as `Jᵢⱼ = -wᵢⱼ`: the total weight of edges whose
    /// endpoints disagree.
    pub fn cut_value(&self) -> f64 {
        let spins = self.spins();
        let mut cut = 0.0;
        for i in 0..self.n() {
            for (j, w) in self.coupling.row(i) {
                if j > i && spins[i] != spins[j] {
                    cut += -w; // J = -w  =>  w = -J
                }
            }
        }
        cut
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn construction_validates() {
        let j = Coupling::zeros(2);
        assert!(Brim::new(j.clone(), vec![0.0]).is_err());
        assert!(Brim::new(j, vec![0.0, f64::INFINITY]).is_err());
    }

    #[test]
    fn capacitance_setter_validates() {
        let mut b = Brim::new(Coupling::zeros(2), vec![0.0; 2]).unwrap();
        for bad in [0.0, -1.0, f64::NAN, f64::INFINITY] {
            assert!(matches!(
                b.set_capacitance(bad),
                Err(IsingError::InvalidParameter { .. })
            ));
        }
        b.set_capacitance(25.0).unwrap();
    }

    #[test]
    fn free_nodes_polarise() {
        // Ferromagnetic chain driven by a clamped node: every free node
        // should saturate at a rail, not an interior value.
        let mut j = Coupling::zeros(4);
        j.set(0, 1, 1.0);
        j.set(1, 2, 1.0);
        j.set(2, 3, 1.0);
        let mut brim = Brim::new(j, vec![0.0; 4]).unwrap();
        brim.clamp(0, 0.4).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        brim.randomize(&mut rng);
        brim.anneal(
            &AnnealConfig::with_budget(3_000.0),
            &FlipSchedule::none(),
            &mut rng,
        );
        for i in 1..4 {
            assert!(
                brim.state()[i].abs() > 0.99,
                "node {i} did not polarise: {}",
                brim.state()[i]
            );
        }
    }

    #[test]
    fn maxcut_triangle() {
        // Unit triangle: best cut = 2. Program J = -w.
        let mut j = Coupling::zeros(3);
        j.set(0, 1, -1.0);
        j.set(1, 2, -1.0);
        j.set(0, 2, -1.0);
        let mut brim = Brim::new(j, vec![0.0; 3]).unwrap();
        let mut rng = StdRng::seed_from_u64(8);
        brim.randomize(&mut rng);
        brim.anneal(
            &AnnealConfig::with_budget(5_000.0),
            &FlipSchedule::default(),
            &mut rng,
        );
        assert_eq!(brim.cut_value(), 2.0);
    }

    #[test]
    fn maxcut_bipartite_optimal() {
        // K_{3,3} has max cut 9 (all 9 edges cross).
        let mut j = Coupling::zeros(6);
        for a in 0..3 {
            for b in 3..6 {
                j.set(a, b, -1.0);
            }
        }
        let mut brim = Brim::new(j, vec![0.0; 6]).unwrap();
        let mut rng = StdRng::seed_from_u64(21);
        brim.randomize(&mut rng);
        brim.anneal(
            &AnnealConfig::with_budget(5_000.0),
            &FlipSchedule::default(),
            &mut rng,
        );
        assert_eq!(brim.cut_value(), 9.0);
    }

    #[test]
    fn spins_sign_readout() {
        let j = Coupling::zeros(3);
        let mut brim = Brim::new(j, vec![0.0; 3]).unwrap();
        brim.clamp(0, -0.5).unwrap();
        brim.clamp(1, 0.5).unwrap();
        assert_eq!(brim.spins(), vec![-1, 1, 1]);
    }

    #[test]
    fn traced_anneal_records_polarisation() {
        let mut j = Coupling::zeros(2);
        j.set(0, 1, 1.0);
        let mut brim = Brim::new(j, vec![0.0; 2]).unwrap();
        brim.clamp(0, 0.5).unwrap();
        let mut rng = StdRng::seed_from_u64(4);
        brim.randomize(&mut rng);
        let (report, trace) = brim.anneal_traced(
            &AnnealConfig::with_budget(2_000.0),
            &FlipSchedule::none(),
            100.0,
            &mut rng,
        );
        assert!(trace.len() >= 10, "trace too short: {}", trace.len());
        assert!(report.sim_time_ns >= 2_000.0 - 1.0);
        // The free node's trajectory is monotone toward the +1 rail.
        let series = trace.series(1);
        assert!(series.last().unwrap().1 > 0.99, "did not polarise");
        for win in series.windows(2) {
            assert!(win[1].1 >= win[0].1 - 1e-9, "trajectory not monotone");
        }
    }

    #[test]
    fn capacitance_override_speeds_polarisation() {
        let make = |c: f64| {
            let mut j = Coupling::zeros(2);
            j.set(0, 1, 1.0);
            let mut b = Brim::new(j, vec![0.0; 2]).unwrap();
            b.set_capacitance(c).unwrap();
            b.clamp(0, 0.5).unwrap();
            let mut rng = StdRng::seed_from_u64(5);
            b.randomize(&mut rng);
            b.anneal(
                &AnnealConfig::with_budget(300.0),
                &FlipSchedule::none(),
                &mut rng,
            );
            b.state()[1]
        };
        let fast = make(10.0); // RC = 10 ns
        let slow = make(400.0);
        assert!(fast > slow, "smaller C should polarise faster: {fast} vs {slow}");
    }

    #[test]
    fn deterministic() {
        let run = |seed| {
            let mut j = Coupling::zeros(4);
            j.set(0, 1, -1.0);
            j.set(2, 3, -1.0);
            let mut brim = Brim::new(j, vec![0.0; 4]).unwrap();
            let mut rng = StdRng::seed_from_u64(seed);
            brim.randomize(&mut rng);
            brim.anneal(
                &AnnealConfig::with_budget(1_000.0),
                &FlipSchedule::default(),
                &mut rng,
            );
            brim.spins()
        };
        assert_eq!(run(3), run(3));
    }
}
