//! Cooperative cancellation of in-flight annealing runs.
//!
//! A wedged integration — an effectively infinite-stiffness window, an
//! unreachable tolerance, a pathological budget — would otherwise hold
//! its worker thread forever: the integrator loops are pure compute
//! with no I/O a supervisor could interrupt. [`CancelToken`] is the
//! cooperative escape hatch: the integrators ([`run`], the adaptive
//! engine, [`run_lockstep`]) poll the token once per integration step
//! and bail out with an unconverged report the moment it fires.
//!
//! Design constraints, in order:
//!
//! - **Bit-invisible when never fired.** Polling is one relaxed atomic
//!   load behind an `Option` branch; it reads no machine state, draws
//!   no randomness, and allocates nothing. A run whose token never
//!   fires is arithmetically identical to a run without a token.
//! - **Cheap enough for the hot loop.** One load per step is noise next
//!   to the `O(n²)` mat-vec each step performs.
//! - **Level-triggered, one-shot.** Once fired a token stays fired:
//!   every subsequent run observing it returns immediately (zero
//!   steps), which is what lets a guarded batch drain instantly after
//!   a watchdog cancellation.
//!
//! [`run`]: crate::RealValuedDspu::run
//! [`run_lockstep`]: crate::lockstep::run_lockstep

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// A shared one-shot cancellation flag.
///
/// Clones observe the same flag; firing any clone fires them all.
/// Attach one to a machine with
/// [`RealValuedDspu::set_cancel`](crate::RealValuedDspu::set_cancel)
/// and fire it from a supervisor thread to stop a hung anneal at the
/// next integration step.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    fired: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, unfired token.
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// Fires the token. Idempotent; every clone observes it.
    pub fn cancel(&self) {
        self.fired.store(true, Ordering::Release);
    }

    /// Whether the token has fired.
    pub fn is_cancelled(&self) -> bool {
        self.fired.load(Ordering::Acquire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_share_the_flag() {
        let token = CancelToken::new();
        let clone = token.clone();
        assert!(!token.is_cancelled() && !clone.is_cancelled());
        clone.cancel();
        assert!(token.is_cancelled() && clone.is_cancelled());
        // Idempotent.
        token.cancel();
        assert!(clone.is_cancelled());
    }

    #[test]
    fn fresh_tokens_are_independent() {
        let a = CancelToken::new();
        let b = CancelToken::new();
        a.cancel();
        assert!(!b.is_cancelled());
    }
}
