//! Multi-feature housing dataset (stand-in for the Zillow California
//! house-price data \[26\], paper Table IV).
//!
//! Census regions form a proximity graph; each node carries eight
//! features (price, inventory, rent index, income, …) that co-evolve:
//! prices diffuse between neighbouring regions and features of one
//! region pull toward each other. Slow-moving and fairly predictable
//! (paper RMSE ≈ 1.6e-2).

use crate::dataset::Dataset;
use crate::synth::{generate as synth_generate, DiffusionConfig, GraphKind};

/// Features per node (price plus seven auxiliary indicators).
pub const FEATURES: usize = 8;

/// The generator configuration for the CA-housing stand-in.
pub fn config() -> DiffusionConfig {
    DiffusionConfig {
        nodes: 64,
        steps: 260,
        features: FEATURES,
        graph: GraphKind::Geometric { radius: 0.22 },
        diffusion: 0.22,
        persistence: 0.985,
        season_amp: 0.18,
        season_period: 52.0, // annual cycle in weekly steps
        trend: 0.0005,
        shock_prob: 0.001,
        shock_amp: 0.15,
        innovation_std: 0.0145,
        feature_coupling: 0.15,
        heterogeneity: 0.6,
        shock_correlation: 0.35,
    }
}

/// Generates the CA-housing dataset deterministically from `seed`.
pub fn generate(seed: u64) -> Dataset {
    synth_generate("ca_housing", &config(), seed.wrapping_add(0xca_405))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn multi_feature_shape() {
        let ds = generate(0);
        assert_eq!(ds.name, "ca_housing");
        assert_eq!(ds.feature_count(), FEATURES);
        assert_eq!(ds.node_count(), 64);
    }
}
