//! Dataset and time-series containers.

use crate::split::{make_windows, Sample, WindowConfig};
use dsgl_graph::CsrGraph;
use serde::{Deserialize, Serialize};

/// A `T × N × F` spatio-temporal series: `T` timesteps, `N` graph nodes,
/// `F` features per node.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TimeSeries {
    t: usize,
    n: usize,
    f: usize,
    data: Vec<f64>,
}

impl TimeSeries {
    /// Creates an all-zero series.
    pub fn zeros(t: usize, n: usize, f: usize) -> Self {
        TimeSeries {
            t,
            n,
            f,
            data: vec![0.0; t * n * f],
        }
    }

    /// Number of timesteps.
    pub fn len_t(&self) -> usize {
        self.t
    }

    /// Number of nodes.
    pub fn len_n(&self) -> usize {
        self.n
    }

    /// Features per node.
    pub fn len_f(&self) -> usize {
        self.f
    }

    #[inline]
    fn idx(&self, t: usize, i: usize, k: usize) -> usize {
        debug_assert!(t < self.t && i < self.n && k < self.f);
        (t * self.n + i) * self.f + k
    }

    /// Value at `(t, node, feature)`.
    ///
    /// # Panics
    ///
    /// Panics when out of range (debug builds check all three indices).
    pub fn get(&self, t: usize, i: usize, k: usize) -> f64 {
        self.data[self.idx(t, i, k)]
    }

    /// Sets the value at `(t, node, feature)`.
    ///
    /// # Panics
    ///
    /// Panics when out of range.
    pub fn set(&mut self, t: usize, i: usize, k: usize, v: f64) {
        let idx = self.idx(t, i, k);
        self.data[idx] = v;
    }

    /// The `N·F` frame at timestep `t`, node-major.
    ///
    /// # Panics
    ///
    /// Panics when `t` is out of range.
    pub fn frame(&self, t: usize) -> &[f64] {
        &self.data[t * self.n * self.f..(t + 1) * self.n * self.f]
    }

    /// Mutable frame at timestep `t`.
    ///
    /// # Panics
    ///
    /// Panics when `t` is out of range.
    pub fn frame_mut(&mut self, t: usize) -> &mut [f64] {
        &mut self.data[t * self.n * self.f..(t + 1) * self.n * self.f]
    }

    /// The raw buffer.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable raw buffer.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Minimum and maximum values (`None` when empty).
    pub fn value_range(&self) -> Option<(f64, f64)> {
        if self.data.is_empty() {
            return None;
        }
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for &v in &self.data {
            lo = lo.min(v);
            hi = hi.max(v);
        }
        Some((lo, hi))
    }
}

/// A named evaluation dataset: a spatial graph plus a normalised series.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Dataset {
    /// Short machine-readable name (e.g. `"pm25"`).
    pub name: String,
    /// The spatial graph connecting nodes.
    pub graph: CsrGraph,
    /// Normalised node signals over time.
    pub series: TimeSeries,
}

impl Dataset {
    /// Number of graph nodes.
    pub fn node_count(&self) -> usize {
        self.series.len_n()
    }

    /// Features per node.
    pub fn feature_count(&self) -> usize {
        self.series.len_f()
    }

    /// Number of timesteps.
    pub fn time_steps(&self) -> usize {
        self.series.len_t()
    }

    /// Restricts the dataset to its first `nodes` nodes and `steps`
    /// timesteps (taking induced subgraph and series prefix). Caps
    /// larger than the dataset are no-ops. Used to scale experiments to
    /// the available compute.
    ///
    /// # Panics
    ///
    /// Panics if either cap is zero.
    pub fn truncate(&self, nodes: usize, steps: usize) -> Dataset {
        assert!(nodes > 0 && steps > 0, "caps must be positive");
        let n = nodes.min(self.node_count());
        let t = steps.min(self.time_steps());
        let f = self.feature_count();
        let keep: Vec<usize> = (0..n).collect();
        let graph = self.graph.subgraph(&keep).expect("prefix nodes exist");
        let mut series = TimeSeries::zeros(t, n, f);
        for ti in 0..t {
            for i in 0..n {
                for k in 0..f {
                    series.set(ti, i, k, self.series.get(ti, i, k));
                }
            }
        }
        Dataset {
            name: self.name.clone(),
            graph,
            series,
        }
    }

    /// Chronological train/validation/test windowing.
    ///
    /// `train_frac` and `val_frac` are fractions of the *windows* (the
    /// remainder is test). Windows never straddle split boundaries'
    /// targets, keeping evaluation honest.
    ///
    /// # Panics
    ///
    /// Panics if the fractions are not in `[0, 1]` or sum above 1.
    pub fn split_windows(
        &self,
        config: &WindowConfig,
        train_frac: f64,
        val_frac: f64,
    ) -> (Vec<Sample>, Vec<Sample>, Vec<Sample>) {
        assert!(
            (0.0..=1.0).contains(&train_frac)
                && (0.0..=1.0).contains(&val_frac)
                && train_frac + val_frac <= 1.0,
            "invalid split fractions"
        );
        let windows = make_windows(&self.series, config);
        let n = windows.len();
        let n_train = (n as f64 * train_frac).floor() as usize;
        let n_val = (n as f64 * val_frac).floor() as usize;
        let mut it = windows.into_iter();
        let train: Vec<Sample> = it.by_ref().take(n_train).collect();
        let val: Vec<Sample> = it.by_ref().take(n_val).collect();
        let test: Vec<Sample> = it.collect();
        (train, val, test)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn series_indexing() {
        let mut s = TimeSeries::zeros(3, 2, 2);
        s.set(1, 1, 0, 7.0);
        assert_eq!(s.get(1, 1, 0), 7.0);
        assert_eq!(s.get(0, 0, 0), 0.0);
        assert_eq!(s.frame(1), &[0.0, 0.0, 7.0, 0.0]);
    }

    #[test]
    fn value_range() {
        let mut s = TimeSeries::zeros(1, 2, 1);
        s.set(0, 0, 0, -1.0);
        s.set(0, 1, 0, 3.0);
        assert_eq!(s.value_range(), Some((-1.0, 3.0)));
        assert_eq!(TimeSeries::zeros(0, 0, 0).value_range(), None);
    }

    #[test]
    fn split_is_chronological_and_complete() {
        let mut s = TimeSeries::zeros(20, 1, 1);
        for t in 0..20 {
            s.set(t, 0, 0, t as f64);
        }
        let ds = Dataset {
            name: "test".into(),
            graph: CsrGraph::empty(1),
            series: s,
        };
        let cfg = WindowConfig::one_step(3);
        let (train, val, test) = ds.split_windows(&cfg, 0.5, 0.25);
        let total = train.len() + val.len() + test.len();
        assert_eq!(total, 17); // 20 - 3 windows
        // Chronological: last train target < first test target.
        let last_train = train.last().unwrap().target[0];
        let first_test = test.first().unwrap().target[0];
        assert!(last_train < first_test);
    }

    #[test]
    fn truncate_takes_prefix() {
        let mut s = TimeSeries::zeros(5, 3, 1);
        for t in 0..5 {
            for i in 0..3 {
                s.set(t, i, 0, (t * 3 + i) as f64);
            }
        }
        let ds = Dataset {
            name: "x".into(),
            graph: CsrGraph::from_edges(3, &[(0, 1, 1.0), (1, 2, 1.0)]).unwrap(),
            series: s,
        };
        let small = ds.truncate(2, 3);
        assert_eq!(small.node_count(), 2);
        assert_eq!(small.time_steps(), 3);
        assert_eq!(small.graph.edge_count(), 1); // edge (0,1) kept, (1,2) cut
        assert_eq!(small.series.get(2, 1, 0), 7.0);
        // Caps beyond the size are no-ops.
        let same = ds.truncate(99, 99);
        assert_eq!(same.node_count(), 3);
        assert_eq!(same.time_steps(), 5);
    }

    #[test]
    #[should_panic(expected = "invalid split fractions")]
    fn bad_fractions_panic() {
        let ds = Dataset {
            name: "x".into(),
            graph: CsrGraph::empty(1),
            series: TimeSeries::zeros(5, 1, 1),
        };
        ds.split_windows(&WindowConfig::one_step(1), 0.9, 0.5);
    }
}
