//! Value normalisation.

use crate::dataset::TimeSeries;

/// Min-max normalises a series in place into `[lo, hi]`.
///
/// Degenerate (constant) series map to the midpoint. Returns the original
/// `(min, max)` so predictions can be denormalised.
///
/// # Panics
///
/// Panics if `lo >= hi` or the series is empty.
pub fn min_max_normalize(series: &mut TimeSeries, lo: f64, hi: f64) -> (f64, f64) {
    assert!(lo < hi, "lo must be below hi");
    let (min, max) = series.value_range().expect("non-empty series");
    let span = max - min;
    let mid = (lo + hi) / 2.0;
    for v in series.as_mut_slice() {
        *v = if span == 0.0 {
            mid
        } else {
            lo + (*v - min) / span * (hi - lo)
        };
    }
    (min, max)
}

/// The standard normalisation band for capacitor voltages: `[0.05, 0.95]`
/// leaves headroom below the rails for annealing transients.
pub const VOLTAGE_BAND: (f64, f64) = (0.05, 0.95);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalises_range() {
        let mut s = TimeSeries::zeros(2, 2, 1);
        s.set(0, 0, 0, -10.0);
        s.set(0, 1, 0, 0.0);
        s.set(1, 0, 0, 10.0);
        s.set(1, 1, 0, 5.0);
        let (min, max) = min_max_normalize(&mut s, 0.0, 1.0);
        assert_eq!((min, max), (-10.0, 10.0));
        assert_eq!(s.get(0, 0, 0), 0.0);
        assert_eq!(s.get(1, 0, 0), 1.0);
        assert_eq!(s.get(0, 1, 0), 0.5);
    }

    #[test]
    fn constant_series_maps_to_midpoint() {
        let mut s = TimeSeries::zeros(2, 1, 1);
        s.set(0, 0, 0, 4.0);
        s.set(1, 0, 0, 4.0);
        min_max_normalize(&mut s, 0.0, 1.0);
        assert_eq!(s.get(0, 0, 0), 0.5);
        assert_eq!(s.get(1, 0, 0), 0.5);
    }

    #[test]
    #[should_panic(expected = "lo must be below hi")]
    fn bad_band_panics() {
        let mut s = TimeSeries::zeros(1, 1, 1);
        min_max_normalize(&mut s, 1.0, 0.0);
    }
}
