//! Traffic-flow dataset (stand-in for the Japan traffic dataset \[20\]).
//!
//! Road sensors form a proximity graph; flow has a pronounced daily
//! cycle, moderate spatial diffusion (congestion propagates), and a high
//! innovation level — traffic is the noisiest of the paper's datasets
//! (reported RMSE ≈ 8e-2, an order above the air-quality series).

use crate::dataset::Dataset;
use crate::synth::{generate as synth_generate, DiffusionConfig, GraphKind};

/// The generator configuration for the traffic stand-in.
pub fn config() -> DiffusionConfig {
    DiffusionConfig {
        nodes: 120,
        steps: 480,
        features: 1,
        graph: GraphKind::Geometric { radius: 0.18 },
        diffusion: 0.30,
        persistence: 0.75,
        season_amp: 0.55,
        season_period: 24.0,
        trend: 0.0,
        shock_prob: 0.01,
        shock_amp: 0.4,
        innovation_std: 0.30,
        feature_coupling: 0.0,
        heterogeneity: 0.6,
        shock_correlation: 0.35,
    }
}

/// Generates the traffic dataset deterministically from `seed`.
pub fn generate(seed: u64) -> Dataset {
    synth_generate("traffic", &config(), seed.wrapping_add(0x7261_6666))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::generate_with_stats;

    #[test]
    fn shape_and_name() {
        let ds = generate(1);
        assert_eq!(ds.name, "traffic");
        assert_eq!(ds.node_count(), 120);
        assert_eq!(ds.feature_count(), 1);
    }

    #[test]
    fn noisiest_single_feature_dataset() {
        // Traffic's irreducible error should be clearly above the
        // air-quality datasets' (paper: ~8e-2 vs ~2e-2).
        let (_, traffic) = generate_with_stats("traffic", &config(), 1);
        let (_, o3) =
            generate_with_stats("o3", &crate::air::config(crate::air::Pollutant::O3), 1);
        assert!(
            traffic.noise_floor > 2.0 * o3.noise_floor,
            "traffic {} vs o3 {}",
            traffic.noise_floor,
            o3.noise_floor
        );
    }

    #[test]
    fn floor_in_papers_decade() {
        // Paper Table II reports traffic RMSE ≈ 7.8e-2.
        let (_, stats) = generate_with_stats("traffic", &config(), 1);
        assert!(
            (0.04..0.12).contains(&stats.noise_floor),
            "floor {}",
            stats.noise_floor
        );
    }
}
