//! Windowing a series into supervised samples.

use crate::dataset::TimeSeries;
use serde::{Deserialize, Serialize};

/// Windowing configuration: `history` observed steps predict the next
/// `horizon` steps (the paper's tables use one-step RMSE; multi-step
/// forecasting is the natural extension of "predicting future states").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct WindowConfig {
    /// Number of observed history steps `W`.
    pub history: usize,
    /// Number of predicted future steps `H` (default 1).
    #[serde(default = "default_horizon")]
    pub horizon: usize,
}

fn default_horizon() -> usize {
    1
}

impl WindowConfig {
    /// One-step-ahead windows with the given history.
    pub fn one_step(history: usize) -> Self {
        WindowConfig {
            history,
            horizon: 1,
        }
    }
}

impl Default for WindowConfig {
    /// Four history steps, one-step horizon.
    fn default() -> Self {
        WindowConfig {
            history: 4,
            horizon: 1,
        }
    }
}

/// One supervised sample: `W` frames of history and the next `H` frames.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Sample {
    /// Flattened history, ordered oldest→newest, each frame node-major
    /// (`W · N · F` values).
    pub history: Vec<f64>,
    /// The target frames, oldest→newest, each node-major (`H · N · F`
    /// values).
    pub target: Vec<f64>,
}

impl Sample {
    /// Number of history frames given the frame size.
    pub fn history_steps(&self, frame_len: usize) -> usize {
        self.history.len().checked_div(frame_len).unwrap_or(0)
    }

    /// The `i`-th history frame (0 = oldest).
    ///
    /// # Panics
    ///
    /// Panics when out of range.
    pub fn history_frame(&self, i: usize, frame_len: usize) -> &[f64] {
        &self.history[i * frame_len..(i + 1) * frame_len]
    }
}

/// Slides a length-`W+1` window over the series producing one [`Sample`]
/// per position. Returns an empty vector when the series is shorter than
/// `W + 1`.
///
/// # Panics
///
/// Panics if `config.history == 0`.
pub fn make_windows(series: &TimeSeries, config: &WindowConfig) -> Vec<Sample> {
    assert!(config.history > 0, "history must be at least 1");
    assert!(config.horizon > 0, "horizon must be at least 1");
    let w = config.history;
    let h = config.horizon;
    let t_total = series.len_t();
    if t_total < w + h {
        return Vec::new();
    }
    let frame_len = series.len_n() * series.len_f();
    let mut out = Vec::with_capacity(t_total - w - h + 1);
    for t0 in 0..=(t_total - w - h) {
        let mut history = Vec::with_capacity(w * frame_len);
        for t in t0..t0 + w {
            history.extend_from_slice(series.frame(t));
        }
        let mut target = Vec::with_capacity(h * frame_len);
        for t in t0 + w..t0 + w + h {
            target.extend_from_slice(series.frame(t));
        }
        out.push(Sample { history, target });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counting_series(t: usize, n: usize) -> TimeSeries {
        let mut s = TimeSeries::zeros(t, n, 1);
        for ti in 0..t {
            for i in 0..n {
                s.set(ti, i, 0, (ti * 10 + i) as f64);
            }
        }
        s
    }

    #[test]
    fn window_contents() {
        let s = counting_series(5, 2);
        let ws = make_windows(&s, &WindowConfig::one_step(2));
        assert_eq!(ws.len(), 3);
        // First window: frames t=0,1 history, t=2 target.
        assert_eq!(ws[0].history, vec![0.0, 1.0, 10.0, 11.0]);
        assert_eq!(ws[0].target, vec![20.0, 21.0]);
        assert_eq!(ws[0].history_steps(2), 2);
        assert_eq!(ws[0].history_frame(1, 2), &[10.0, 11.0]);
    }

    #[test]
    fn too_short_series() {
        let s = counting_series(3, 1);
        assert!(make_windows(&s, &WindowConfig::one_step(3)).is_empty());
        assert_eq!(make_windows(&s, &WindowConfig::one_step(2)).len(), 1);
    }

    #[test]
    #[should_panic(expected = "history must be at least 1")]
    fn zero_history_panics() {
        make_windows(&counting_series(3, 1), &WindowConfig { history: 0, horizon: 1 });
    }
}
