//! Power-grid load dataset (extension).
//!
//! The paper's introduction motivates DS-GL with *power-grid cascading
//! failure prediction* even though its evaluation does not include a
//! grid dataset; this module provides one so downstream users can try
//! the motivating application. Buses form an IEEE-style meshed ring
//! (a ring backbone with chords — transmission grids are sparse but
//! 2-connected); bus loads follow strong daily cycles with occasional
//! load-shedding shocks, and neighbouring buses share flow (diffusion).

use crate::dataset::Dataset;
use crate::normalize::{min_max_normalize, VOLTAGE_BAND};
use crate::synth::{generate_with_stats, DiffusionConfig, GenStats, GraphKind};
use dsgl_graph::{CsrGraph, GraphBuilder};
use rand::rngs::StdRng;
use rand::{Rng, RngExt, SeedableRng};

/// The generator configuration for the power-grid stand-in. The graph
/// from this config is replaced by [`grid_topology`]; only the dynamics
/// fields are used.
pub fn config() -> DiffusionConfig {
    DiffusionConfig {
        nodes: 96,
        steps: 480,
        features: 1,
        graph: GraphKind::Sbm {
            blocks: 6,
            p_in: 0.3,
            p_out: 0.01,
        }, // placeholder; replaced below
        diffusion: 0.35, // power flow couples neighbours strongly
        persistence: 0.92,
        season_amp: 0.6, // pronounced daily load curve
        season_period: 24.0,
        trend: 0.0,
        shock_prob: 0.004,
        shock_amp: 0.6, // load shedding / outages
        innovation_std: 0.05,
        feature_coupling: 0.0,
        heterogeneity: 0.5,
        shock_correlation: 0.4, // system-wide frequency events
    }
}

/// An IEEE-style meshed ring over `n` buses: a ring backbone plus a
/// deterministic set of chords every `chord_stride` buses and a few
/// seeded long lines — sparse, 2-connected, with the low diameter real
/// transmission grids have.
///
/// # Panics
///
/// Panics if `n < 4`.
pub fn grid_topology<R: Rng + ?Sized>(n: usize, rng: &mut R) -> CsrGraph {
    assert!(n >= 4, "a grid needs at least 4 buses");
    let mut b = GraphBuilder::new(n);
    for u in 0..n {
        b.add_edge(u, (u + 1) % n, 1.0).expect("ring edge");
    }
    // Chords: every 7th bus ties across a quarter of the ring.
    let mut u = 0;
    while u < n {
        let v = (u + n / 4) % n;
        if v != u {
            b.add_edge(u, v, 0.7).expect("chord edge");
        }
        u += 7;
    }
    // A few random long interties.
    for _ in 0..(n / 16).max(1) {
        let a = rng.random_range(0..n);
        let c = rng.random_range(0..n);
        if a != c {
            b.add_edge(a, c, 0.5).expect("intertie edge");
        }
    }
    b.build()
}

/// Generates the power-grid dataset deterministically from `seed`.
pub fn generate(seed: u64) -> Dataset {
    generate_full(seed).0
}

/// Like [`generate`] but also reports calibration statistics.
pub fn generate_full(seed: u64) -> (Dataset, GenStats) {
    let cfg = config();
    // Generate dynamics on a placeholder graph, then rebuild on the
    // grid topology so the diffusion actually flows over power lines.
    let mut rng = StdRng::seed_from_u64(seed.wrapping_add(0x9f1d));
    let graph = grid_topology(cfg.nodes, &mut rng);

    // Re-run the shared engine manually over the grid graph: reuse the
    // synth generator by temporarily treating the topology as given.
    // (The engine's graph field only supports its own families, so the
    // level dynamics are re-integrated here with the same conventions.)
    let (mut dataset, stats) =
        generate_with_stats("powergrid", &cfg, seed.wrapping_add(0x9f1d));
    // Replace the series with one diffused over the actual grid.
    let n = cfg.nodes;
    let mut series = crate::dataset::TimeSeries::zeros(cfg.steps, n, 1);
    let norm: Vec<f64> = (0..n)
        .map(|i| {
            let s: f64 = graph.neighbors(i).map(|(_, w)| w).sum();
            if s > 0.0 {
                1.0 / s
            } else {
                0.0
            }
        })
        .collect();
    let mut phase = vec![0.0; n];
    for p in phase.iter_mut() {
        *p = rng.random::<f64>();
    }
    let mut level = vec![0.0; n];
    for l in level.iter_mut() {
        *l = (rng.random::<f64>() - 0.5) * 0.5;
    }
    let mut next = vec![0.0; n];
    for t in 0..cfg.steps {
        for i in 0..n {
            let season = cfg.season_amp
                * (std::f64::consts::TAU * (t as f64 / cfg.season_period + phase[i])).sin();
            series.set(t, i, 0, level[i] + season);
        }
        let common = gaussian(&mut rng);
        for i in 0..n {
            let mut neigh = 0.0;
            for (j, w) in graph.neighbors(i) {
                neigh += w * level[j];
            }
            neigh *= norm[i];
            let innovation = cfg.innovation_std
                * ((1.0 - cfg.shock_correlation).sqrt() * gaussian(&mut rng)
                    + cfg.shock_correlation.sqrt() * common);
            let mut v = cfg.persistence * level[i]
                + cfg.diffusion * (neigh - level[i])
                + innovation;
            if rng.random::<f64>() < cfg.shock_prob {
                v += (rng.random::<f64>() * 2.0 - 1.0) * cfg.shock_amp;
            }
            next[i] = v;
        }
        level.copy_from_slice(&next);
    }
    min_max_normalize(&mut series, VOLTAGE_BAND.0, VOLTAGE_BAND.1);
    dataset.graph = graph;
    dataset.series = series;
    (dataset, stats)
}

fn gaussian<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    loop {
        let u1: f64 = rng.random();
        if u1 <= f64::MIN_POSITIVE {
            continue;
        }
        let u2: f64 = rng.random();
        return (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::persistence_rmse;

    #[test]
    fn topology_is_two_connected_ring_with_chords() {
        let mut rng = StdRng::seed_from_u64(0);
        let g = grid_topology(48, &mut rng);
        assert_eq!(g.node_count(), 48);
        // Ring alone would have 48 edges; chords/interties add more.
        assert!(g.edge_count() > 48);
        // Connected, and no bus is isolated by a single line cut:
        // minimum degree 2.
        assert_eq!(g.connected_components().len(), 1);
        for u in 0..48 {
            assert!(g.degree(u) >= 2, "bus {u} degree {}", g.degree(u));
        }
    }

    #[test]
    fn deterministic_and_normalised() {
        let a = generate(5);
        let b = generate(5);
        assert_eq!(a, b);
        let (lo, hi) = a.series.value_range().unwrap();
        assert!(lo >= VOLTAGE_BAND.0 - 1e-12 && hi <= VOLTAGE_BAND.1 + 1e-12);
        assert_eq!(a.name, "powergrid");
    }

    #[test]
    fn grid_load_is_predictable() {
        // Strong daily cycles + high persistence: the naive predictor
        // should sit in the air-quality difficulty band, not traffic's.
        let ds = generate(1);
        let p = persistence_rmse(&ds.series);
        assert!((0.01..0.12).contains(&p), "persistence rmse {p}");
    }
}
