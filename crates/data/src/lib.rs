//! Synthetic spatio-temporal datasets for the DS-GL evaluation suite.
//!
//! The paper evaluates on seven single-feature real-world datasets —
//! traffic flow (Japan), four air-quality series (PM2.5, PM10, NO₂, O₃
//! from the Chinese Air Quality Reanalysis), COVID-19 daily case
//! increments (CDC), and NASDAQ stock prices — plus two multi-feature
//! ones (California housing, world climate). Those datasets are
//! paywalled or impractically large to redistribute, so this crate
//! generates *synthetic stand-ins* that preserve the properties the
//! experiments actually exercise:
//!
//! 1. node signals live on a graph with community structure;
//! 2. the dynamics have a strong diffusive/spatial component (neighbour
//!    values are informative) plus seasonality, trend, and shocks;
//! 3. per-dataset innovation noise is calibrated so that the best
//!    achievable one-step RMSE lands in the same decade as the paper's
//!    reported numbers (e.g. covid ≈ 1e-3, traffic ≈ 8e-2).
//!
//! All generators are deterministic given a seed. Values are min-max
//! normalised into `[0.05, 0.95]`, directly usable as capacitor voltages.
//!
//! # Example
//!
//! ```
//! use dsgl_data::{covid, WindowConfig};
//!
//! let ds = covid::generate(42);
//! assert_eq!(ds.name, "covid");
//! let (train, _val, test) = ds.split_windows(&WindowConfig::default(), 0.7, 0.1);
//! assert!(!train.is_empty() && !test.is_empty());
//! ```

#![forbid(unsafe_code)]
#![deny(clippy::print_stdout, clippy::print_stderr)]
#![warn(missing_docs)]

pub mod air;
pub mod climate;
pub mod covid;
pub mod dataset;
pub mod housing;
pub mod normalize;
pub mod powergrid;
pub mod split;
pub mod stock;
pub mod synth;
pub mod traffic;

pub use dataset::{Dataset, TimeSeries};
pub use split::{Sample, WindowConfig};
pub use synth::DiffusionConfig;

/// Names of the seven single-feature evaluation datasets, in the order
/// the paper's figures present them.
pub const SINGLE_FEATURE_DATASETS: [&str; 7] =
    ["no2", "covid", "o3", "traffic", "pm25", "pm10", "stock"];

/// Generates a single-feature dataset by name (see
/// [`SINGLE_FEATURE_DATASETS`]).
///
/// Returns `None` for unknown names.
pub fn by_name(name: &str, seed: u64) -> Option<Dataset> {
    match name {
        "no2" => Some(air::generate(air::Pollutant::No2, seed)),
        "o3" => Some(air::generate(air::Pollutant::O3, seed)),
        "pm25" => Some(air::generate(air::Pollutant::Pm25, seed)),
        "pm10" => Some(air::generate(air::Pollutant::Pm10, seed)),
        "covid" => Some(covid::generate(seed)),
        "traffic" => Some(traffic::generate(seed)),
        "stock" => Some(stock::generate(seed)),
        _ => None,
    }
}
