//! Multi-feature climate dataset (stand-in for the world weather
//! repository \[10\], paper Table IV).
//!
//! Weather stations form a proximity graph; each carries twelve features
//! (humidity, temperature, wind speed, pressure, …) with strong seasonal
//! structure, spatial diffusion, and tight cross-feature coupling.
//! The paper reports the highest RMSE of the suite here (≈ 3.9e-1 for
//! DS-GL, ~4.1e-1 for GNNs): weather is genuinely hard, so the
//! innovation level is set high.

use crate::dataset::Dataset;
use crate::synth::{generate as synth_generate, DiffusionConfig, GraphKind};

/// Features per node (humidity, temperature, wind speed, …).
pub const FEATURES: usize = 12;

/// The generator configuration for the climate stand-in.
pub fn config() -> DiffusionConfig {
    DiffusionConfig {
        nodes: 60,
        steps: 365,
        features: FEATURES,
        graph: GraphKind::Geometric { radius: 0.25 },
        diffusion: 0.20,
        persistence: 0.35,
        season_amp: 0.35,
        season_period: 91.0, // seasonal quarter
        trend: 0.0,
        shock_prob: 0.0,
        shock_amp: 0.0,
        innovation_std: 1.0,
        feature_coupling: 0.10,
        heterogeneity: 0.6,
        shock_correlation: 0.35,
    }
}

/// Generates the climate dataset deterministically from `seed`.
pub fn generate(seed: u64) -> Dataset {
    synth_generate("climate", &config(), seed.wrapping_add(0xc11_a7e))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::generate_with_stats;

    #[test]
    fn multi_feature_shape() {
        let ds = generate(0);
        assert_eq!(ds.name, "climate");
        assert_eq!(ds.feature_count(), FEATURES);
    }

    #[test]
    fn hardest_dataset() {
        // Paper Table IV: climate is by far the hardest dataset (its RMSE
        // is ~25x housing's there; min-max normalisation compresses our
        // ratio — see EXPERIMENTS.md — but the ordering must hold wide).
        let (_, climate) = generate_with_stats("climate", &config(), 1);
        let (_, housing) = generate_with_stats("housing", &crate::housing::config(), 1);
        assert!(
            climate.noise_floor > 3.0 * housing.noise_floor,
            "climate {} vs housing {}",
            climate.noise_floor,
            housing.noise_floor
        );
    }
}
