//! Pandemic-progression dataset (stand-in for the CDC COVID-19 daily
//! case-increment tracker \[7\]).
//!
//! Counties form a block-model contact graph; case counts move in slow,
//! smooth epidemic waves that spread between connected counties. The
//! series is by far the most predictable in the suite — the paper
//! reports RMSE ≈ 1.1e-3, thirty times below the air-quality datasets —
//! so the innovation level here is correspondingly tiny.

use crate::dataset::Dataset;
use crate::synth::{generate as synth_generate, DiffusionConfig, GraphKind};

/// The generator configuration for the covid stand-in.
pub fn config() -> DiffusionConfig {
    DiffusionConfig {
        nodes: 100,
        steps: 400,
        features: 1,
        graph: GraphKind::Sbm {
            blocks: 5,
            p_in: 0.3,
            p_out: 0.015,
        },
        diffusion: 0.30,
        persistence: 0.995,
        season_amp: 0.25,
        season_period: 140.0, // slow epidemic waves, not daily cycles
        trend: 0.0,
        shock_prob: 0.0005,
        shock_amp: 0.08,
        innovation_std: 0.0012,
        feature_coupling: 0.0,
        heterogeneity: 0.6,
        shock_correlation: 0.35,
    }
}

/// Generates the covid dataset deterministically from `seed`.
pub fn generate(seed: u64) -> Dataset {
    synth_generate("covid", &config(), seed.wrapping_add(0xc0_51d))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::persistence_rmse;

    #[test]
    fn shape_and_name() {
        let ds = generate(3);
        assert_eq!(ds.name, "covid");
        assert_eq!(ds.node_count(), 100);
    }

    #[test]
    fn most_predictable_dataset() {
        // Covid's naive error should be at least an order of magnitude
        // below traffic's (paper: 1.1e-3 vs 7.8e-2).
        let covid = persistence_rmse(&generate(1).series);
        let traffic = persistence_rmse(&crate::traffic::generate(1).series);
        assert!(
            covid * 5.0 < traffic,
            "covid {covid} vs traffic {traffic}"
        );
    }
}
