//! Air-quality datasets (stand-ins for PM2.5 / PM10 / NO₂ / O₃ from the
//! Chinese Air Quality Reanalysis database \[22\]).
//!
//! Monitoring stations cluster by city (block-model graph); pollutant
//! fields diffuse smoothly between neighbouring stations with a daily
//! cycle. The particulates (PM2.5/PM10) see occasional pollution
//! episodes (shocks); the photochemical O₃ has the strongest diurnal
//! swing; NO₂ is traffic-driven and slightly noisier.

use crate::dataset::Dataset;
use crate::synth::{generate as synth_generate, DiffusionConfig, GraphKind};

/// Which pollutant series to generate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Pollutant {
    /// Fine particulate matter (2.5 µm).
    Pm25,
    /// Coarse particulate matter (10 µm).
    Pm10,
    /// Nitrogen dioxide.
    No2,
    /// Ozone.
    O3,
}

impl Pollutant {
    /// Machine-readable dataset name.
    pub fn name(self) -> &'static str {
        match self {
            Pollutant::Pm25 => "pm25",
            Pollutant::Pm10 => "pm10",
            Pollutant::No2 => "no2",
            Pollutant::O3 => "o3",
        }
    }
}

/// The generator configuration for a pollutant.
pub fn config(pollutant: Pollutant) -> DiffusionConfig {
    let base = DiffusionConfig {
        nodes: 100,
        steps: 480,
        features: 1,
        graph: GraphKind::Sbm {
            blocks: 6,
            p_in: 0.35,
            p_out: 0.012,
        },
        diffusion: 0.28,
        persistence: 0.965,
        season_amp: 0.35,
        season_period: 24.0,
        trend: 0.0,
        shock_prob: 0.0,
        shock_amp: 0.0,
        innovation_std: 0.030,
        feature_coupling: 0.0,
        heterogeneity: 0.6,
        shock_correlation: 0.30,
    };
    match pollutant {
        Pollutant::Pm25 => DiffusionConfig {
            shock_prob: 0.004,
            shock_amp: 0.35,
            innovation_std: 0.030,
            ..base
        },
        Pollutant::Pm10 => DiffusionConfig {
            shock_prob: 0.006,
            shock_amp: 0.45,
            innovation_std: 0.044,
            ..base
        },
        Pollutant::No2 => DiffusionConfig {
            season_amp: 0.45,
            innovation_std: 0.058,
            persistence: 0.95,
            ..base
        },
        Pollutant::O3 => DiffusionConfig {
            season_amp: 0.60,
            innovation_std: 0.026,
            ..base
        },
    }
}

/// Generates the pollutant dataset deterministically from `seed`.
pub fn generate(pollutant: Pollutant, seed: u64) -> Dataset {
    let salt = match pollutant {
        Pollutant::Pm25 => 0x2e35,
        Pollutant::Pm10 => 0x3130,
        Pollutant::No2 => 0x4e32,
        Pollutant::O3 => 0x4f33,
    };
    synth_generate(pollutant.name(), &config(pollutant), seed.wrapping_add(salt))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::generate_with_stats;

    #[test]
    fn names_and_shapes() {
        for p in [Pollutant::Pm25, Pollutant::Pm10, Pollutant::No2, Pollutant::O3] {
            let ds = generate(p, 0);
            assert_eq!(ds.name, p.name());
            assert_eq!(ds.node_count(), 100);
            assert_eq!(ds.time_steps(), 480);
        }
    }

    #[test]
    fn pollutants_differ() {
        let a = generate(Pollutant::Pm25, 0);
        let b = generate(Pollutant::Pm10, 0);
        assert_ne!(a.series, b.series);
    }

    #[test]
    fn no2_noisier_than_o3() {
        // Paper Table II: NO2 RMSE ≈ 2× O3 RMSE.
        let (_, no2) = generate_with_stats("no2", &config(Pollutant::No2), 1);
        let (_, o3) = generate_with_stats("o3", &config(Pollutant::O3), 1);
        assert!(
            no2.noise_floor > 1.5 * o3.noise_floor,
            "no2 {} vs o3 {}",
            no2.noise_floor,
            o3.noise_floor
        );
    }
}
