//! Stock-price dataset (stand-in for the NASDAQ stock dataset \[28\]).
//!
//! Tickers cluster into sectors (block-model graph); log-prices follow a
//! correlated random walk — sector neighbours move together, but the
//! day-to-day innovation is irreducible. Persistence is exactly 1 (a
//! random walk), so the best possible one-step error equals the
//! innovation scale, matching the paper's relatively high stock RMSE
//! (≈ 6e-2).

use crate::dataset::Dataset;
use crate::synth::{generate as synth_generate, DiffusionConfig, GraphKind};

/// The generator configuration for the stock stand-in.
pub fn config() -> DiffusionConfig {
    DiffusionConfig {
        nodes: 80,
        steps: 500,
        features: 1,
        graph: GraphKind::Sbm {
            blocks: 8,
            p_in: 0.45,
            p_out: 0.01,
        },
        diffusion: 0.12, // sector co-movement
        persistence: 0.89,
        season_amp: 0.0, // no seasonality in prices
        season_period: 1.0,
        trend: 0.0,
        shock_prob: 0.003,
        shock_amp: 0.5, // earnings surprises
        innovation_std: 0.15,
        feature_coupling: 0.0,
        heterogeneity: 0.6,
        shock_correlation: 0.45,
    }
}

/// Generates the stock dataset deterministically from `seed`.
pub fn generate(seed: u64) -> Dataset {
    synth_generate("stock", &config(), seed.wrapping_add(0x57_0c4))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::generate_with_stats;

    #[test]
    fn shape_and_name() {
        let ds = generate(0);
        assert_eq!(ds.name, "stock");
        assert_eq!(ds.node_count(), 80);
        assert_eq!(ds.time_steps(), 500);
    }

    #[test]
    fn noisier_than_air_quality() {
        // Paper: stock RMSE ≈ 6e-2 vs PM2.5 ≈ 2e-2.
        let (_, stock) = generate_with_stats("stock", &config(), 1);
        let (_, pm25) =
            generate_with_stats("pm25", &crate::air::config(crate::air::Pollutant::Pm25), 1);
        assert!(
            stock.noise_floor > 2.0 * pm25.noise_floor,
            "stock {} vs pm25 {}",
            stock.noise_floor,
            pm25.noise_floor
        );
    }
}
