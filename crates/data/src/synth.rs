//! The shared spatio-temporal diffusion generator behind every dataset.

use crate::dataset::{Dataset, TimeSeries};
use crate::normalize::{min_max_normalize, VOLTAGE_BAND};
use dsgl_graph::generators;
use dsgl_graph::CsrGraph;
use rand::rngs::StdRng;
use rand::{Rng, RngExt, SeedableRng};
use serde::{Deserialize, Serialize};

/// Spatial graph family for a synthetic dataset.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum GraphKind {
    /// Stochastic block model with equal blocks — sensor networks and
    /// administrative regions cluster this way.
    Sbm {
        /// Number of equal-sized blocks.
        blocks: usize,
        /// Intra-block edge probability.
        p_in: f64,
        /// Inter-block edge probability.
        p_out: f64,
    },
    /// Random geometric graph — stations connected by physical proximity.
    Geometric {
        /// Connection radius on the unit square.
        radius: f64,
    },
}

/// Configuration of the latent diffusion process
///
/// ```text
/// l_{t+1,i} = persistence·l_{t,i} + diffusion·(Σⱼ Âᵢⱼ l_{t,j} - l_{t,i})
///           + trend + shocks + 𝒩(0, innovation_std²)
/// x_{t,i}   = l_{t,i} + season_amp · sin(2π (t/season_period + φᵢ))
/// ```
///
/// `innovation_std` sets the floor of achievable one-step prediction
/// error; each dataset calibrates it so its RMSE lands in the decade the
/// paper reports.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DiffusionConfig {
    /// Number of graph nodes.
    pub nodes: usize,
    /// Number of timesteps.
    pub steps: usize,
    /// Features per node.
    pub features: usize,
    /// Spatial graph family.
    pub graph: GraphKind,
    /// Neighbour-diffusion strength per step (0..1).
    pub diffusion: f64,
    /// AR(1) persistence of the latent level.
    pub persistence: f64,
    /// Seasonal amplitude.
    pub season_amp: f64,
    /// Seasonal period in steps.
    pub season_period: f64,
    /// Deterministic drift per step.
    pub trend: f64,
    /// Per-node-step probability of a shock.
    pub shock_prob: f64,
    /// Shock magnitude (uniform ± this).
    pub shock_amp: f64,
    /// Std of per-step Gaussian innovations.
    pub innovation_std: f64,
    /// For multi-feature data: how strongly features of the same node
    /// pull toward each other.
    pub feature_coupling: f64,
    /// Node heterogeneity in `[0, 1)`: each node's persistence,
    /// diffusion, and seasonal amplitude are individually scaled by
    /// `1 + heterogeneity·(u - 0.5)` with node-specific uniform `u`.
    /// Real sensor networks are strongly heterogeneous — stations have
    /// different dynamics — which parameter-shared GNNs cannot fully
    /// capture but per-coupling models like DS-GL can.
    pub heterogeneity: f64,
    /// Correlation of same-timestep innovations across nodes in `[0, 1)`:
    /// each step's innovations mix a common factor (weight `√ρ`) with
    /// node-local noise (weight `√(1-ρ)`). Real data has common shocks —
    /// market moves, weather fronts, region-wide pollution episodes —
    /// which make the *joint* relaxation of outputs (what a dynamical
    /// system does natively) strictly better than predicting each node
    /// independently.
    pub shock_correlation: f64,
}

impl Default for DiffusionConfig {
    fn default() -> Self {
        DiffusionConfig {
            nodes: 100,
            steps: 400,
            features: 1,
            graph: GraphKind::Sbm {
                blocks: 5,
                p_in: 0.3,
                p_out: 0.01,
            },
            diffusion: 0.25,
            persistence: 0.97,
            season_amp: 0.5,
            season_period: 24.0,
            trend: 0.0,
            shock_prob: 0.0,
            shock_amp: 0.0,
            innovation_std: 0.05,
            feature_coupling: 0.0,
            heterogeneity: 0.5,
            shock_correlation: 0.3,
        }
    }
}

/// Statistics of a generation run, used for calibration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GenStats {
    /// Peak-to-peak range of the raw (pre-normalisation) signal.
    pub raw_range: f64,
    /// The irreducible one-step error in normalised units:
    /// `innovation_std · band_width / raw_range`. A well-trained
    /// predictor's RMSE approaches this floor; it is the calibration
    /// target each dataset matches to the paper's reported RMSE decade.
    pub noise_floor: f64,
}

/// Generates a dataset named `name` from `config`, deterministically
/// from `seed`. The series is normalised into the
/// [`VOLTAGE_BAND`]
///
/// [`VOLTAGE_BAND`]: crate::normalize::VOLTAGE_BAND.
///
/// # Panics
///
/// Panics on degenerate configurations (zero nodes/steps/features).
pub fn generate(name: &str, config: &DiffusionConfig, seed: u64) -> Dataset {
    generate_with_stats(name, config, seed).0
}

/// Like [`generate`] but also reports [`GenStats`].
///
/// # Panics
///
/// Panics on degenerate configurations (zero nodes/steps/features).
pub fn generate_with_stats(
    name: &str,
    config: &DiffusionConfig,
    seed: u64,
) -> (Dataset, GenStats) {
    assert!(config.nodes > 0, "need at least one node");
    assert!(config.steps > 1, "need at least two timesteps");
    assert!(config.features > 0, "need at least one feature");
    let mut rng = StdRng::seed_from_u64(seed);
    let graph = build_graph(config, &mut rng);
    // Row-normalised adjacency for the diffusion operator.
    let neigh_norm: Vec<f64> = (0..config.nodes)
        .map(|i| {
            let s: f64 = graph.neighbors(i).map(|(_, w)| w).sum();
            if s > 0.0 {
                1.0 / s
            } else {
                0.0
            }
        })
        .collect();

    let n = config.nodes;
    let f = config.features;
    let mut series = TimeSeries::zeros(config.steps, n, f);
    // Per-node-feature seasonal phase; communities share similar phases
    // through spatial smoothing of an initial random phase field.
    let mut phase = vec![0.0; n * f];
    for p in phase.iter_mut() {
        *p = rng.random::<f64>();
    }
    // Per-node dynamic heterogeneity.
    let het = config.heterogeneity.clamp(0.0, 0.99);
    let jitter = |rng: &mut StdRng| 1.0 + het * (rng.random::<f64>() - 0.5);
    let pers: Vec<f64> = (0..n)
        .map(|_| (config.persistence * jitter(&mut rng)).min(0.999))
        .collect();
    let diff: Vec<f64> = (0..n).map(|_| config.diffusion * jitter(&mut rng)).collect();
    let amps: Vec<f64> = (0..n).map(|_| config.season_amp * jitter(&mut rng)).collect();
    // Latent level, initialised randomly around zero.
    let mut level = vec![0.0; n * f];
    for l in level.iter_mut() {
        *l = (rng.random::<f64>() - 0.5) * 0.5;
    }
    let mut next = vec![0.0; n * f];

    for t in 0..config.steps {
        // Observe.
        for i in 0..n {
            for k in 0..f {
                let season = amps[i]
                    * (std::f64::consts::TAU * (t as f64 / config.season_period + phase[i * f + k]))
                        .sin();
                series.set(t, i, k, level[i * f + k] + season);
            }
        }
        // Advance the latent field. Same-timestep innovations share a
        // common factor with weight √ρ (per feature).
        let rho = config.shock_correlation.clamp(0.0, 0.99);
        let common: Vec<f64> = (0..f).map(|_| gaussian(&mut rng)).collect();
        let w_common = rho.sqrt();
        let w_local = (1.0 - rho).sqrt();
        for i in 0..n {
            for k in 0..f {
                let li = level[i * f + k];
                let mut neigh = 0.0;
                for (j, w) in graph.neighbors(i) {
                    neigh += w * level[j * f + k];
                }
                neigh *= neigh_norm[i];
                let mut cross = 0.0;
                if f > 1 && config.feature_coupling > 0.0 {
                    let mean: f64 =
                        (0..f).map(|kk| level[i * f + kk]).sum::<f64>() / f as f64;
                    cross = config.feature_coupling * (mean - li);
                }
                let innovation = config.innovation_std
                    * (w_local * gaussian(&mut rng) + w_common * common[k]);
                let mut v = pers[i] * li
                    + diff[i] * (neigh - li)
                    + cross
                    + config.trend
                    + innovation;
                if config.shock_prob > 0.0 && rng.random::<f64>() < config.shock_prob {
                    v += (rng.random::<f64>() * 2.0 - 1.0) * config.shock_amp;
                }
                next[i * f + k] = v;
            }
        }
        level.copy_from_slice(&next);
    }

    let (raw_min, raw_max) = series.value_range().expect("non-empty series");
    min_max_normalize(&mut series, VOLTAGE_BAND.0, VOLTAGE_BAND.1);
    let raw_range = (raw_max - raw_min).max(f64::MIN_POSITIVE);
    let stats = GenStats {
        raw_range,
        noise_floor: config.innovation_std * (VOLTAGE_BAND.1 - VOLTAGE_BAND.0) / raw_range,
    };
    (
        Dataset {
            name: name.to_owned(),
            graph,
            series,
        },
        stats,
    )
}

fn build_graph<R: Rng + ?Sized>(config: &DiffusionConfig, rng: &mut R) -> CsrGraph {
    match config.graph {
        GraphKind::Sbm { blocks, p_in, p_out } => {
            let base = config.nodes / blocks;
            let mut sizes = vec![base; blocks];
            let rem = config.nodes - base * blocks;
            for s in sizes.iter_mut().take(rem) {
                *s += 1;
            }
            generators::stochastic_block_model(&sizes, p_in, p_out, rng)
        }
        GraphKind::Geometric { radius } => generators::random_geometric(config.nodes, radius, rng).0,
    }
}

/// Box–Muller standard normal (kept private to this crate).
fn gaussian<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    loop {
        let u1: f64 = rng.random();
        if u1 <= f64::MIN_POSITIVE {
            continue;
        }
        let u2: f64 = rng.random();
        return (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
    }
}

/// RMSE of the naive "persistence" predictor (`x̂_{t+1} = x_t`) over the
/// whole series — a quick proxy for dataset difficulty used by the
/// calibration tests.
pub fn persistence_rmse(series: &TimeSeries) -> f64 {
    let t = series.len_t();
    if t < 2 {
        return 0.0;
    }
    let mut ss = 0.0;
    let mut count = 0usize;
    for ti in 1..t {
        let prev = series.frame(ti - 1);
        let cur = series.frame(ti);
        for (p, c) in prev.iter().zip(cur) {
            ss += (p - c) * (p - c);
            count += 1;
        }
    }
    (ss / count as f64).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let cfg = DiffusionConfig::default();
        let a = generate("t", &cfg, 7);
        let b = generate("t", &cfg, 7);
        assert_eq!(a, b);
        let c = generate("t", &cfg, 8);
        assert_ne!(a.series, c.series);
    }

    #[test]
    fn normalised_to_band() {
        let ds = generate("t", &DiffusionConfig::default(), 1);
        let (lo, hi) = ds.series.value_range().unwrap();
        assert!(lo >= VOLTAGE_BAND.0 - 1e-12);
        assert!(hi <= VOLTAGE_BAND.1 + 1e-12);
    }

    #[test]
    fn shapes_respected() {
        let cfg = DiffusionConfig {
            nodes: 30,
            steps: 50,
            features: 3,
            ..DiffusionConfig::default()
        };
        let ds = generate("t", &cfg, 2);
        assert_eq!(ds.node_count(), 30);
        assert_eq!(ds.time_steps(), 50);
        assert_eq!(ds.feature_count(), 3);
        assert_eq!(ds.graph.node_count(), 30);
    }

    #[test]
    fn lower_noise_is_more_predictable() {
        // Min-max normalization partially cancels the noise contrast on
        // any single realization (louder noise also inflates the value
        // range), so compare seed-paired averages with a wide contrast.
        let quiet = DiffusionConfig {
            innovation_std: 0.005,
            season_amp: 0.3,
            ..DiffusionConfig::default()
        };
        let loud = DiffusionConfig {
            innovation_std: 0.5,
            season_amp: 0.3,
            ..DiffusionConfig::default()
        };
        let seeds = [1u64, 3, 7, 11, 19];
        let mean = |cfg: &DiffusionConfig| {
            seeds
                .iter()
                .map(|&s| persistence_rmse(&generate("n", cfg, s).series))
                .sum::<f64>()
                / seeds.len() as f64
        };
        let (rq, rl) = (mean(&quiet), mean(&loud));
        assert!(rq < rl, "quiet {rq} vs loud {rl}");
    }

    #[test]
    fn geometric_graph_variant() {
        let cfg = DiffusionConfig {
            graph: GraphKind::Geometric { radius: 0.3 },
            nodes: 40,
            steps: 20,
            ..DiffusionConfig::default()
        };
        let ds = generate("geo", &cfg, 4);
        assert_eq!(ds.graph.node_count(), 40);
    }

    #[test]
    #[should_panic(expected = "at least two timesteps")]
    fn degenerate_steps_panic() {
        let cfg = DiffusionConfig {
            steps: 1,
            ..DiffusionConfig::default()
        };
        generate("bad", &cfg, 0);
    }
}
