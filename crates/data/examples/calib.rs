//! Calibration probe: prints the noise floor and naive-predictor RMSE of
//! every dataset so generator constants can be matched to the paper's
//! reported RMSE decades.
use dsgl_data::synth::{generate_with_stats, persistence_rmse};

fn main() {
    let configs: Vec<(&str, dsgl_data::DiffusionConfig, u64)> = vec![
        ("no2", dsgl_data::air::config(dsgl_data::air::Pollutant::No2), 1 + 0x4e32),
        ("covid", dsgl_data::covid::config(), 1 + 0xc051d),
        ("o3", dsgl_data::air::config(dsgl_data::air::Pollutant::O3), 1 + 0x4f33),
        ("traffic", dsgl_data::traffic::config(), 1 + 0x72616666),
        ("pm25", dsgl_data::air::config(dsgl_data::air::Pollutant::Pm25), 1 + 0x2e35),
        ("pm10", dsgl_data::air::config(dsgl_data::air::Pollutant::Pm10), 1 + 0x3130),
        ("stock", dsgl_data::stock::config(), 1 + 0x570c4),
        ("housing", dsgl_data::housing::config(), 1 + 0xca405),
        ("climate", dsgl_data::climate::config(), 1 + 0xc11a7e),
    ];
    println!("{:10} {:>12} {:>12} {:>12}", "dataset", "noise_floor", "persist", "raw_range");
    for (name, cfg, seed) in configs {
        let (ds, stats) = generate_with_stats(name, &cfg, seed);
        println!(
            "{:10} {:12.4e} {:12.4e} {:12.4}",
            name,
            stats.noise_floor,
            persistence_rmse(&ds.series),
            stats.raw_range
        );
    }
}
