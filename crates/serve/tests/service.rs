//! Service-behaviour tests: admission control, shutdown semantics,
//! shape validation, and the health/stats endpoints.

use dsgl_core::{DsGlModel, GuardedAnneal, TelemetrySink, VariableLayout};
use dsgl_ising::AnnealConfig;
use dsgl_serve::{instruments, ForecastService, ServeConfig, ServeError, ServiceStats};
use std::time::Duration;

fn model_of(history: usize, nodes: usize) -> DsGlModel {
    let mut model = DsGlModel::new(VariableLayout::new(history, nodes, 1));
    model.init_persistence(0.6);
    model
}

fn guard() -> GuardedAnneal {
    GuardedAnneal::new(AnnealConfig::default())
}

#[test]
fn overload_sheds_requests_instead_of_queuing_forever() {
    // A capacity-1 queue behind a single worker on a non-trivial model:
    // a tight submission loop outruns the anneal rate, so admission
    // control must reject at least once — and everything admitted must
    // still be answered correctly.
    let service = ForecastService::spawn(
        model_of(3, 16),
        guard(),
        TelemetrySink::enabled(),
        ServeConfig::default()
            .workers(1)
            .coalesce(1)
            .queue_capacity(1)
            .linger(Duration::ZERO),
    )
    .unwrap();
    let window: Vec<f64> = (0..3 * 16).map(|k| 0.1 + 0.001 * k as f64).collect();
    let mut tickets = Vec::new();
    let mut rejected = 0u64;
    for i in 0..50u64 {
        match service.submit(window.clone(), i) {
            Ok(ticket) => tickets.push((i, ticket)),
            Err(ServeError::Overloaded {
                capacity,
                depth,
                retry_after,
            }) => {
                assert_eq!(capacity, 1);
                assert!(depth <= capacity, "observed depth is bounded by capacity");
                assert!(retry_after > Duration::ZERO, "hint must suggest real backoff");
                rejected += 1;
            }
            Err(other) => panic!("unexpected admission error: {other}"),
        }
    }
    assert!(rejected > 0, "50 rapid submits must trip a capacity-1 queue");
    assert!(!tickets.is_empty(), "some requests must be admitted");
    let mut answers = Vec::new();
    for (seed, ticket) in tickets {
        let response = ticket.wait().unwrap();
        assert!(response.prediction.iter().all(|v| v.is_finite()));
        answers.push((seed, response.prediction));
    }
    // Shed load is visible in the stats, and determinism still holds
    // for whatever was admitted: same seed → same bits.
    let stats = service.stats();
    assert_eq!(stats.rejected, rejected);
    assert_eq!(stats.requests, answers.len() as u64);
    for (seed, prediction) in &answers {
        let again = service.forecast(window.clone(), *seed).unwrap();
        assert_eq!(&again.prediction, prediction);
    }
}

#[test]
fn shutdown_drains_admitted_requests_then_rejects_new_ones() {
    let mut service = ForecastService::spawn(
        model_of(2, 4),
        guard(),
        TelemetrySink::enabled(),
        ServeConfig::default().workers(1).queue_capacity(16),
    )
    .unwrap();
    let window = vec![0.2; 8];
    let tickets: Vec<_> = (0..4)
        .map(|i| service.submit(window.clone(), i).unwrap())
        .collect();
    service.shutdown();
    // Everything admitted before shutdown is still answered.
    for ticket in tickets {
        let response = ticket.wait().expect("drained on shutdown");
        assert!(response.prediction.iter().all(|v| v.is_finite()));
    }
    // New work is refused, idempotently.
    assert!(matches!(
        service.submit(window.clone(), 99),
        Err(ServeError::ShuttingDown)
    ));
    service.shutdown();
    assert!(matches!(
        service.forecast(window, 100),
        Err(ServeError::ShuttingDown)
    ));
}

#[test]
fn wrong_window_shape_is_rejected_at_the_door() {
    let service = ForecastService::spawn(
        model_of(2, 4),
        guard(),
        TelemetrySink::enabled(),
        ServeConfig::default(),
    )
    .unwrap();
    match service.submit(vec![0.1; 5], 1) {
        Err(ServeError::ShapeMismatch { expected, actual }) => {
            assert_eq!(expected, 8);
            assert_eq!(actual, 5);
        }
        other => panic!("expected shape mismatch, got {other:?}"),
    }
    // A shape error is the caller's bug, not service load: nothing was
    // admitted, nothing rejected-as-overload.
    let stats = service.stats();
    assert_eq!(stats.requests, 0);
    assert_eq!(stats.rejected, 0);
}

#[test]
fn invalid_configs_fail_spawn() {
    for config in [
        ServeConfig::default().workers(0),
        ServeConfig::default().coalesce(0),
        ServeConfig::default().queue_capacity(0),
    ] {
        assert!(matches!(
            ForecastService::spawn(model_of(2, 4), guard(), TelemetrySink::noop(), config),
            Err(ServeError::InvalidConfig { .. })
        ));
    }
    // An out-of-range fault declaration is caught at spawn, not at the
    // first unlucky request.
    let faults = dsgl_ising::fault::FaultModel {
        stuck_nodes: vec![dsgl_ising::fault::StuckNode {
            idx: 10_000,
            value: 0.0,
        }],
        ..dsgl_ising::fault::FaultModel::none()
    };
    assert!(matches!(
        ForecastService::spawn(
            model_of(2, 4),
            guard(),
            TelemetrySink::noop(),
            ServeConfig::default().faults(faults),
        ),
        Err(ServeError::InvalidConfig { .. })
    ));
}

#[test]
fn health_endpoint_exposes_the_serve_instrument_family() {
    let sink = TelemetrySink::enabled();
    let service = ForecastService::spawn(
        model_of(2, 4),
        guard(),
        sink.clone(),
        ServeConfig::default().workers(2).queue_capacity(16),
    )
    .unwrap();
    let window = vec![0.3; 8];
    for i in 0..6 {
        let response = service.forecast(window.clone(), i).unwrap();
        assert!(response.latency_ns > 0);
    }
    let snapshot = service.health();
    assert!(snapshot.families().contains(&"serve".to_owned()));
    assert_eq!(snapshot.counter(instruments::REQUESTS), 6);
    assert!(snapshot.counter(instruments::BATCHES) >= 1);
    assert_eq!(
        snapshot.get(instruments::WORKERS).unwrap().last,
        2.0,
        "workers gauge"
    );
    assert!(snapshot.get(instruments::LATENCY_NS).unwrap().count == 6);
    // The anneal kernels under the service report into the same sink.
    assert!(snapshot.counter("guard.runs") >= 1);

    let stats = service.stats();
    assert_eq!(stats.requests, 6);
    assert_eq!(stats.workers, 2);
    assert!(stats.batches >= 1);
    assert!(stats.mean_coalesce_width >= 1.0);
    assert!(stats.p50_latency_ns > 0.0);
    assert!(stats.p99_latency_ns >= stats.p50_latency_ns);

    // Stats digested from the same snapshot are identical whether read
    // through the service or recomputed by a dashboard.
    assert_eq!(stats.requests, ServiceStats::from_snapshot(&snapshot).requests);

    // A noop-sink service serves identically but reports nothing.
    let dark = ForecastService::spawn(
        model_of(2, 4),
        guard(),
        TelemetrySink::noop(),
        ServeConfig::default(),
    )
    .unwrap();
    let lit = service.forecast(window.clone(), 42).unwrap();
    let unlit = dark.forecast(window, 42).unwrap();
    assert_eq!(lit.prediction, unlit.prediction, "telemetry must be bit-invisible");
    assert!(dark.health().instruments.is_empty());
    assert_eq!(dark.stats().requests, 0);
}
