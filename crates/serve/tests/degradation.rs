//! Degradation-path battery: PR 3 fault models injected into the pooled
//! forecasters, plus SLO deadline triage. The service must never panic,
//! never emit a non-finite value, and its `serve.degradations` /
//! per-response [`HealthReport`]s must match the per-request ground
//! truth computed outside the service.

use dsgl_core::guard::infer_batch_guarded_seeded_instrumented;
use dsgl_core::{
    DsGlModel, GuardedAnneal, HealthReport, RetryPolicy, TelemetrySink, VariableLayout,
};
use dsgl_data::Sample;
use dsgl_ising::fault::{FaultModel, StuckNode};
use dsgl_ising::AnnealConfig;
use dsgl_serve::{instruments, ForecastService, ServeConfig};
use std::time::Duration;

const NODES: usize = 5;
const HISTORY: usize = 2;

fn model() -> DsGlModel {
    let mut model = DsGlModel::new(VariableLayout::new(HISTORY, NODES, 1));
    model.init_persistence(0.6);
    model
}

fn window(i: usize) -> Vec<f64> {
    (0..HISTORY * NODES)
        .map(|k| 0.1 + 0.02 * i as f64 + 0.003 * k as f64)
        .collect()
}

/// Per-request ground truth: the same seeded guarded single-window call
/// the service's batches decompose into.
fn ground_truth(
    model: &DsGlModel,
    guard: &GuardedAnneal,
    faults: &FaultModel,
    reqs: &[(Vec<f64>, u64)],
) -> Vec<(Vec<f64>, HealthReport)> {
    let sink = TelemetrySink::noop();
    let target_len = model.layout().target_len();
    reqs.iter()
        .map(|(window, seed)| {
            let sample = Sample {
                history: window.clone(),
                target: vec![0.0; target_len],
            };
            let mut out = infer_batch_guarded_seeded_instrumented(
                model,
                std::slice::from_ref(&sample),
                guard,
                &[*seed],
                faults,
                &sink,
            )
            .unwrap();
            let (pred, _, health) = out.remove(0);
            (pred, health)
        })
        .collect()
}

#[test]
fn nan_stuck_node_degrades_sanitised_and_counted() {
    let model = model();
    // Pin a *target* node's readout to garbage and allow no retries:
    // the first anneal comes back non-finite, the ladder is already
    // exhausted, and the sanitised degraded path must still produce a
    // finite, honest answer. (With retries allowed, the guard's
    // restore-and-sanitise rung rescues a stuck-NaN node — that
    // recovered path is covered by the guard's own suite.)
    let faults = FaultModel {
        stuck_nodes: vec![StuckNode {
            idx: model.layout().history_len(),
            value: f64::NAN,
        }],
        ..FaultModel::none()
    };
    let guard = GuardedAnneal::new(AnnealConfig::default()).with_policy(RetryPolicy {
        max_retries: 0,
        backoff: 1.0,
    });
    let reqs: Vec<(Vec<f64>, u64)> = (0..10).map(|i| (window(i), 900 + i as u64)).collect();
    let truth = ground_truth(&model, &guard, &faults, &reqs);
    let truth_degraded = truth.iter().filter(|(_, h)| h.degraded).count() as u64;
    assert!(truth_degraded > 0, "fixture must actually degrade");

    let sink = TelemetrySink::enabled();
    let service = ForecastService::spawn(
        model,
        guard,
        sink.clone(),
        ServeConfig::default()
            .workers(2)
            .coalesce(4)
            .queue_capacity(32)
            .faults(faults),
    )
    .unwrap();
    let tickets: Vec<_> = reqs
        .iter()
        .map(|(w, s)| service.submit(w.clone(), *s).unwrap())
        .collect();
    for (i, ticket) in tickets.into_iter().enumerate() {
        let response = ticket.wait().unwrap();
        assert!(
            response.prediction.iter().all(|v| v.is_finite()),
            "request {i} leaked a non-finite value"
        );
        assert!(!response.slo_degraded, "no deadline configured");
        assert_eq!(response.prediction, truth[i].0, "request {i} bits");
        assert_eq!(response.health, truth[i].1, "request {i} health");
    }
    let snapshot = sink.snapshot();
    assert_eq!(
        snapshot.counter(instruments::DEGRADATIONS),
        truth_degraded,
        "serve.degradations must match the per-request ground truth"
    );
    assert_eq!(snapshot.counter(instruments::REQUESTS), reqs.len() as u64);
    assert_eq!(snapshot.counter(instruments::SLO_FALLBACKS), 0);
}

#[test]
fn dead_couplers_and_drift_stay_deterministic_under_coalescing() {
    let model = model();
    let faults = FaultModel {
        dead_couplers: vec![(0, NODES), (1, NODES + 1)],
        coupler_drift: 0.05,
        ..FaultModel::none()
    };
    let guard = GuardedAnneal::new(AnnealConfig::default());
    let reqs: Vec<(Vec<f64>, u64)> = (0..8).map(|i| (window(i), 5_000 + i as u64)).collect();
    let truth = ground_truth(&model, &guard, &faults, &reqs);
    let truth_degraded = truth.iter().filter(|(_, h)| h.degraded).count() as u64;

    let sink = TelemetrySink::enabled();
    let service = ForecastService::spawn(
        model,
        guard,
        sink.clone(),
        ServeConfig::default()
            .workers(1)
            .coalesce(8)
            .queue_capacity(16)
            .linger(Duration::from_millis(100))
            .faults(faults),
    )
    .unwrap();
    let tickets: Vec<_> = reqs
        .iter()
        .map(|(w, s)| service.submit(w.clone(), *s).unwrap())
        .collect();
    for (i, ticket) in tickets.into_iter().enumerate() {
        let response = ticket.wait().unwrap();
        assert!(response.prediction.iter().all(|v| v.is_finite()));
        assert_eq!(response.prediction, truth[i].0, "request {i} bits");
        assert_eq!(response.health, truth[i].1, "request {i} health");
    }
    assert_eq!(
        sink.snapshot().counter(instruments::DEGRADATIONS),
        truth_degraded
    );
}

#[test]
fn expired_deadline_serves_the_sanitised_persistence_fallback() {
    let model = model();
    let frame = model.layout().frame_len();
    let horizon = model.layout().horizon();
    // A zero deadline expires every request at triage time —
    // deterministic, no sleeps. Poison one input so sanitisation has
    // real work to do.
    let mut poisoned = window(3);
    let poison_idx = poisoned.len() - 2; // inside the newest frame
    poisoned[poison_idx] = f64::NAN;
    let reqs: Vec<(Vec<f64>, u64)> = vec![
        (window(0), 1),
        (window(1), 2),
        (poisoned.clone(), 3),
        (window(0), 1), // duplicate: also expired, also served
    ];

    let sink = TelemetrySink::enabled();
    let service = ForecastService::spawn(
        model,
        GuardedAnneal::new(AnnealConfig::default()),
        sink.clone(),
        ServeConfig::default().deadline(Duration::ZERO),
    )
    .unwrap();
    for (i, (w, s)) in reqs.iter().enumerate() {
        let response = service.forecast(w.clone(), *s).unwrap();
        assert!(response.slo_degraded, "request {i} must be SLO-degraded");
        assert!(response.health.degraded);
        assert!(response.prediction.iter().all(|v| v.is_finite()));
        // Persistence: the newest frame tiled across the horizon, with
        // non-finite inputs sanitised to 0.0.
        let last = &w[w.len() - frame..];
        let mut expected = Vec::new();
        for _ in 0..horizon {
            expected.extend(last.iter().map(|v| if v.is_finite() { *v } else { 0.0 }));
        }
        assert_eq!(response.prediction, expected, "request {i}");
        let nan_count = last.iter().filter(|v| !v.is_finite()).count();
        assert_eq!(
            response.health.sanitized_nodes,
            nan_count * horizon,
            "request {i} sanitisation count"
        );
    }
    let snapshot = sink.snapshot();
    assert_eq!(
        snapshot.counter(instruments::SLO_FALLBACKS),
        reqs.len() as u64
    );
    assert_eq!(
        snapshot.counter(instruments::DEGRADATIONS),
        reqs.len() as u64
    );
    // The fallback never touches the anneal kernels.
    assert_eq!(snapshot.counter("guard.runs"), 0);
}
