//! The exactly-once supervision battery: worker panics, hung anneals,
//! watchdog cancellation, brownout admission, and shutdown under fault.
//!
//! Invariant under test everywhere: **N submitted requests produce
//! exactly N responses** — nothing lost, nothing duplicated — and any
//! request the chaos budget leaves alone (or lets recover) is
//! **bit-identical to a serial fault-free reference**. The service
//! counts one `serve.latency_ns` observation per response it sends, so
//! `latency count == answered tickets` is the service-side
//! no-loss/no-duplication check, on top of each ticket yielding exactly
//! one reply.
//!
//! Note: panic-injection tests intentionally panic worker threads, so
//! the default panic hook prints "chaos: injected worker panic"
//! backtraces into the test output. That noise is the test working.

use dsgl_core::guard::infer_batch_guarded_seeded_instrumented;
use dsgl_core::{DsGlModel, GuardedAnneal, TelemetrySink, VariableLayout};
use dsgl_data::Sample;
use dsgl_ising::fault::FaultModel;
use dsgl_ising::AnnealConfig;
use dsgl_serve::supervisor::{TIER_BROWNOUT, TIER_NORMAL, TIER_SHED};
use dsgl_serve::{
    flight_events, instruments, BrownoutPolicy, ChaosConfig, ForecastService, ServeConfig,
    ServeError,
};
use std::time::{Duration, Instant};

fn model_of(history: usize, nodes: usize) -> DsGlModel {
    let mut model = DsGlModel::new(VariableLayout::new(history, nodes, 1));
    model.init_persistence(0.6);
    model
}

fn guard() -> GuardedAnneal {
    GuardedAnneal::new(AnnealConfig::default())
}

fn window_for(seed: u64, len: usize) -> Vec<f64> {
    (0..len)
        .map(|i| 0.05 + 0.002 * ((i as u64 + 3 * seed) % 17) as f64)
        .collect()
}

/// The ground truth: one window annealed alone, serially, fault-free —
/// the bits every served (non-degraded) response must reproduce.
fn serial_reference(model: &DsGlModel, window: &[f64], seed: u64) -> Vec<f64> {
    let sample = Sample {
        history: window.to_vec(),
        target: vec![0.0; model.layout().target_len()],
    };
    let out = infer_batch_guarded_seeded_instrumented(
        model,
        &[sample],
        &guard(),
        &[seed],
        &FaultModel::none(),
        &TelemetrySink::noop(),
    )
    .unwrap();
    out[0].0.clone()
}

fn wait_for(mut check: impl FnMut() -> bool, budget: Duration, what: &str) {
    let start = Instant::now();
    while !check() {
        assert!(start.elapsed() < budget, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(2));
    }
}

#[test]
fn panic_injection_loses_and_duplicates_nothing() {
    let model = model_of(3, 8);
    let sink = TelemetrySink::enabled();
    let victim = 5u64;
    let service = ForecastService::spawn(
        model.clone(),
        guard(),
        sink.clone(),
        ServeConfig::default()
            .workers(2)
            .coalesce(4)
            .queue_capacity(64)
            .linger(Duration::from_millis(2))
            .crash_retries(3)
            .chaos(ChaosConfig::none().panic_on_seed(victim, 2)),
    )
    .unwrap();
    let len = model.layout().history_len();
    // 24 requests over 8 seeds; the victim seed recurs, so both panic
    // budgets fire, orphaning whole batches (innocents included).
    let submissions: Vec<(u64, Vec<f64>)> = (0..24u64)
        .map(|i| {
            let seed = i % 8;
            (seed, window_for(seed, len))
        })
        .collect();
    let tickets: Vec<_> = submissions
        .iter()
        .map(|(seed, window)| service.submit(window.clone(), *seed).unwrap())
        .collect();
    let mut answered = 0u64;
    for ((seed, window), ticket) in submissions.iter().zip(tickets) {
        let response = ticket.wait().expect("every orphaned request is re-delivered");
        answered += 1;
        assert_eq!(
            response.prediction,
            serial_reference(&model, window, *seed),
            "seed {seed} must be bit-identical to the serial reference after re-delivery"
        );
        assert!(!response.health.cancelled);
    }
    assert_eq!(answered, 24);
    let snapshot = service.health();
    assert_eq!(
        snapshot.counter(instruments::WORKER_PANICS),
        2,
        "both injection budgets must fire"
    );
    assert_eq!(snapshot.counter(instruments::WORKER_RESPAWNS), 2);
    assert!(snapshot.counter(instruments::REQUEUES) >= 1);
    assert_eq!(snapshot.counter(instruments::CRASH_FAILURES), 0);
    // One latency observation per response sent: exactly-once at the
    // service boundary, not just per-ticket.
    assert_eq!(
        snapshot.get(instruments::LATENCY_NS).unwrap().count,
        24,
        "the service must send exactly one response per admitted request"
    );
    // The black box saw both panics, and each panic froze a crash dump
    // that itself contains the panic evidence.
    let dump = service.flight_dump();
    assert_eq!(
        dump.events
            .iter()
            .filter(|e| e.kind == flight_events::WORKER_PANIC)
            .count(),
        2,
        "each injected panic must leave a flight event: {dump:?}"
    );
    let crash_dump = service.last_crash_dump().expect("a panic freezes the black box");
    assert!(crash_dump
        .events
        .iter()
        .any(|e| e.kind == flight_events::WORKER_PANIC));
    assert!(crash_dump.events.iter().all(|e| e.kind != flight_events::CRASH_FAILURE));
}

#[test]
fn crash_budget_exhaustion_fails_with_typed_error() {
    let model = model_of(2, 6);
    let sink = TelemetrySink::enabled();
    let victim = 9u64;
    let service = ForecastService::spawn(
        model.clone(),
        guard(),
        sink.clone(),
        ServeConfig::default()
            .workers(1)
            .coalesce(1) // isolate the victim: innocents never share its batch
            .queue_capacity(16)
            .linger(Duration::ZERO)
            .crash_retries(1)
            .chaos(ChaosConfig::none().panic_on_seed(victim, 5)),
    )
    .unwrap();
    let len = model.layout().history_len();
    let victim_ticket = service.submit(window_for(victim, len), victim).unwrap();
    let innocents: Vec<_> = (20..24u64)
        .map(|seed| (seed, service.submit(window_for(seed, len), seed).unwrap()))
        .collect();
    // Delivery 1 panics (retry 1 granted), delivery 2 panics (budget
    // exhausted): the victim fails typed, with its retry count.
    match victim_ticket.wait() {
        Err(ServeError::WorkerCrashed { retries }) => assert_eq!(retries, 1),
        other => panic!("expected WorkerCrashed, got {other:?}"),
    }
    for (seed, ticket) in innocents {
        let response = ticket.wait().unwrap();
        assert_eq!(
            response.prediction,
            serial_reference(&model, &window_for(seed, len), seed),
            "innocent seed {seed} must be untouched by the victim's crashes"
        );
    }
    let snapshot = service.health();
    assert_eq!(snapshot.counter(instruments::WORKER_PANICS), 2);
    assert_eq!(snapshot.counter(instruments::CRASH_FAILURES), 1);
    assert_eq!(snapshot.counter(instruments::REQUEUES), 1);
    // The budget-exhausted failure is in the black box, and the crash
    // dump frozen at the second panic carries it (events precede the
    // freeze in handle_worker_panic).
    let dump = service.flight_dump();
    assert_eq!(
        dump.events
            .iter()
            .filter(|e| e.kind == flight_events::CRASH_FAILURE)
            .count(),
        1
    );
    let crash_dump = service.last_crash_dump().unwrap();
    assert!(crash_dump
        .events
        .iter()
        .any(|e| e.kind == flight_events::CRASH_FAILURE));
}

#[test]
fn watchdog_cancels_hung_windows_then_serves_them_bit_identically() {
    let model = model_of(2, 6);
    let sink = TelemetrySink::enabled();
    let victim = 7u64;
    let service = ForecastService::spawn(
        model.clone(),
        guard(),
        sink.clone(),
        ServeConfig::default()
            .workers(1)
            .coalesce(4)
            .queue_capacity(16)
            .linger(Duration::from_millis(2))
            .watchdog(Duration::from_millis(50))
            .crash_retries(2)
            .chaos(ChaosConfig::none().hang_on_seed(victim, 1)),
    )
    .unwrap();
    let len = model.layout().history_len();
    let submissions: Vec<(u64, Vec<f64>)> = [victim, 30, 31, 32]
        .iter()
        .map(|&seed| (seed, window_for(seed, len)))
        .collect();
    let tickets: Vec<_> = submissions
        .iter()
        .map(|(seed, window)| service.submit(window.clone(), *seed).unwrap())
        .collect();
    for ((seed, window), ticket) in submissions.iter().zip(tickets) {
        let response = ticket.wait().expect("cancelled windows are re-delivered");
        // The hang budget (1) is under the re-enqueue budget (2): even
        // the victim ends up annealed normally, bit-identical.
        assert_eq!(
            response.prediction,
            serial_reference(&model, window, *seed),
            "seed {seed} must recover to the serial reference bits"
        );
        assert!(!response.health.cancelled, "the final delivery was not cancelled");
    }
    let snapshot = service.health();
    assert!(snapshot.counter(instruments::WATCHDOG_CANCELS) >= 1);
    assert!(snapshot.counter(instruments::REQUEUES) >= 1);
    assert_eq!(snapshot.counter(instruments::WATCHDOG_FALLBACKS), 0);
    assert_eq!(snapshot.counter(instruments::CRASH_FAILURES), 0);
    assert_eq!(snapshot.get(instruments::LATENCY_NS).unwrap().count, 4);
    // The watchdog fire is in the black box; no panic happened, so no
    // crash dump was frozen.
    let dump = service.flight_dump();
    assert!(
        dump.events
            .iter()
            .any(|e| e.kind == flight_events::WATCHDOG_CANCEL),
        "the cancellation must leave a flight event: {dump:?}"
    );
    assert!(service.last_crash_dump().is_none());
}

#[test]
fn watchdog_exhaustion_serves_the_persistence_fallback() {
    let model = model_of(2, 4);
    let sink = TelemetrySink::enabled();
    let victim = 3u64;
    let service = ForecastService::spawn(
        model.clone(),
        guard(),
        sink.clone(),
        ServeConfig::default()
            .workers(1)
            .coalesce(1)
            .queue_capacity(8)
            .linger(Duration::ZERO)
            .watchdog(Duration::from_millis(40))
            .crash_retries(0) // no re-delivery: first cancel goes straight to fallback
            .chaos(ChaosConfig::none().hang_on_seed(victim, 3)),
    )
    .unwrap();
    let window = window_for(victim, model.layout().history_len());
    let response = service.forecast(window.clone(), victim).unwrap();
    assert!(response.health.cancelled, "the fallback must say why it exists");
    assert!(response.health.degraded);
    assert!(!response.slo_degraded, "this is the watchdog path, not the SLO path");
    // The persistence fallback tiles the newest frame across the
    // horizon; with horizon 1 that is exactly the last frame.
    let frame = model.layout().frame_len();
    assert_eq!(response.prediction, window[window.len() - frame..].to_vec());
    let snapshot = service.health();
    assert!(snapshot.counter(instruments::WATCHDOG_CANCELS) >= 1);
    assert_eq!(snapshot.counter(instruments::WATCHDOG_FALLBACKS), 1);
    assert_eq!(snapshot.counter(instruments::REQUEUES), 0);
    // Budget exhaustion is a failure edge: it must be in the black box.
    let dump = service.flight_dump();
    assert!(
        dump.events
            .iter()
            .any(|e| e.kind == flight_events::WATCHDOG_FALLBACK),
        "the fallback must leave a flight event: {dump:?}"
    );
}

#[test]
fn supervision_without_faults_is_bit_invisible() {
    let model = model_of(3, 10);
    let len = model.layout().history_len();
    let plain = ForecastService::spawn(
        model.clone(),
        guard(),
        TelemetrySink::noop(),
        ServeConfig::default().workers(2).coalesce(4),
    )
    .unwrap();
    // Full supervision stack armed, nothing ever fires: a 60 s watchdog
    // no anneal reaches, a brownout policy idle load never enters.
    let supervised = ForecastService::spawn(
        model.clone(),
        guard(),
        TelemetrySink::enabled(),
        ServeConfig::default()
            .workers(2)
            .coalesce(4)
            .watchdog(Duration::from_secs(60))
            .crash_retries(2)
            .brownout(BrownoutPolicy::default()),
    )
    .unwrap();
    for seed in 0..6u64 {
        let window = window_for(seed, len);
        let reference = serial_reference(&model, &window, seed);
        let a = plain.forecast(window.clone(), seed).unwrap();
        let b = supervised.forecast(window, seed).unwrap();
        assert_eq!(a.prediction, reference, "unsupervised serving matches serial");
        assert_eq!(
            b.prediction, reference,
            "an unfired supervision stack must be bit-invisible (seed {seed})"
        );
    }
    assert_eq!(supervised.brownout_tier(), TIER_NORMAL);
    let snapshot = supervised.health();
    assert_eq!(snapshot.counter(instruments::WATCHDOG_CANCELS), 0);
    assert_eq!(snapshot.counter(instruments::WORKER_PANICS), 0);
    assert_eq!(snapshot.counter(instruments::REQUEUES), 0);
}

#[test]
fn brownout_admits_only_coalescible_requests_while_wedged() {
    let model = model_of(2, 6);
    let sink = TelemetrySink::enabled();
    let victim = 7u64;
    // Queue-fill-driven policy (weights zeroed) so the tier is a pure
    // function of backlog: 8 queued / 16 capacity = 0.5 ≥ enter.
    let policy = BrownoutPolicy {
        enter: 0.4,
        exit: 0.05,
        shed_enter: 10.0, // unreachable: this test exercises tier 1 only
        shed_exit: 0.2,
        deadline: Duration::from_secs(60), // never SLO-degrade in this test
        retry_weight: 0.0,
        crash_weight: 0.0,
        tick: Duration::from_millis(2),
    };
    let service = ForecastService::spawn(
        model.clone(),
        guard(),
        sink.clone(),
        ServeConfig::default()
            .workers(1)
            .coalesce(16)
            .queue_capacity(16)
            .linger(Duration::from_millis(2))
            .watchdog(Duration::from_millis(300))
            .crash_retries(2)
            .brownout(policy)
            .chaos(ChaosConfig::none().hang_on_seed(victim, 1)),
    )
    .unwrap();
    let len = model.layout().history_len();
    // The victim wedges the only worker for ~the watchdog deadline...
    let victim_ticket = service.submit(window_for(victim, len), victim).unwrap();
    std::thread::sleep(Duration::from_millis(30));
    // ...while 8 innocents pile up behind it.
    let queued: Vec<_> = (10..18u64)
        .map(|seed| (seed, service.submit(window_for(seed, len), seed).unwrap()))
        .collect();
    wait_for(
        || service.brownout_tier() == TIER_BROWNOUT,
        Duration::from_millis(250),
        "the supervisor to enter brownout on queue fill",
    );
    // Tier 1 is coalesce-only: a duplicate of queued work rides along...
    let duplicate = service
        .submit(window_for(10, len), 10)
        .expect("a coalescible duplicate must be admitted in brownout");
    // ...but fresh work is shed even though the queue has room.
    match service.submit(window_for(99, len), 99) {
        Err(ServeError::Overloaded { capacity, depth, retry_after }) => {
            assert!(depth < capacity, "shed by brownout, not by a full queue");
            assert!(retry_after > Duration::ZERO);
        }
        other => panic!("expected brownout shed, got {other:?}"),
    }
    // Everyone admitted still completes, bit-identical (the hang budget
    // drains on the first delivery, so even the victim recovers).
    for (seed, ticket) in queued {
        let response = ticket.wait().unwrap();
        assert_eq!(response.prediction, serial_reference(&model, &window_for(seed, len), seed));
    }
    assert_eq!(
        duplicate.wait().unwrap().prediction,
        serial_reference(&model, &window_for(10, len), 10)
    );
    assert_eq!(
        victim_ticket.wait().unwrap().prediction,
        serial_reference(&model, &window_for(victim, len), victim)
    );
    // Load gone: the tier recovers to normal.
    wait_for(
        || service.brownout_tier() == TIER_NORMAL,
        Duration::from_secs(3),
        "the supervisor to recover to normal",
    );
    let snapshot = service.health();
    assert!(snapshot.counter(instruments::BROWNOUT_ADMITTED) >= 1);
    assert!(snapshot.counter(instruments::BROWNOUT_REJECTED) >= 1);
    assert!(snapshot.counter(instruments::BROWNOUT_TRANSITIONS) >= 2, "in and back out");
    // Both tier edges (enter and recover) land in the black box with
    // the health score that drove them.
    let dump = service.flight_dump();
    assert!(
        dump.events
            .iter()
            .filter(|e| e.kind == flight_events::BROWNOUT_TRANSITION)
            .count()
            >= 2,
        "both tier transitions must leave flight events: {dump:?}"
    );
}

#[test]
fn shed_tier_rejects_everything() {
    let model = model_of(2, 6);
    let victim = 7u64;
    // Same wedge recipe, but thresholds put 0.5 queue fill straight
    // into the shed band.
    let policy = BrownoutPolicy {
        enter: 0.1,
        exit: 0.02,
        shed_enter: 0.3,
        shed_exit: 0.15,
        deadline: Duration::from_secs(60),
        retry_weight: 0.0,
        crash_weight: 0.0,
        tick: Duration::from_millis(2),
    };
    let service = ForecastService::spawn(
        model.clone(),
        guard(),
        TelemetrySink::enabled(),
        ServeConfig::default()
            .workers(1)
            .coalesce(16)
            .queue_capacity(16)
            .linger(Duration::from_millis(2))
            .watchdog(Duration::from_millis(300))
            .crash_retries(2)
            .brownout(policy)
            .chaos(ChaosConfig::none().hang_on_seed(victim, 1)),
    )
    .unwrap();
    let len = model.layout().history_len();
    let victim_ticket = service.submit(window_for(victim, len), victim).unwrap();
    std::thread::sleep(Duration::from_millis(30));
    let queued: Vec<_> = (10..18u64)
        .map(|seed| (seed, service.submit(window_for(seed, len), seed).unwrap()))
        .collect();
    wait_for(
        || service.brownout_tier() == TIER_SHED,
        Duration::from_millis(250),
        "the supervisor to shed on queue fill",
    );
    // Shed rejects even a coalescible duplicate.
    assert!(matches!(
        service.submit(window_for(10, len), 10),
        Err(ServeError::Overloaded { .. })
    ));
    for (_, ticket) in queued {
        ticket.wait().unwrap();
    }
    victim_ticket.wait().unwrap();
}

#[test]
fn shutdown_returns_even_with_a_wedged_worker() {
    let model = model_of(2, 4);
    let victim = 11u64;
    let mut service = ForecastService::spawn(
        model.clone(),
        guard(),
        TelemetrySink::enabled(),
        ServeConfig::default()
            .workers(1)
            .coalesce(1)
            .linger(Duration::ZERO)
            .watchdog(Duration::from_millis(80))
            .crash_retries(2)
            .chaos(ChaosConfig::none().hang_on_seed(victim, 10)),
    )
    .unwrap();
    let window = window_for(victim, model.layout().history_len());
    let ticket = service.submit(window.clone(), victim).unwrap();
    // Let the worker pop and wedge on the hang before shutting down.
    std::thread::sleep(Duration::from_millis(20));
    // Shutdown must not hang: the supervisor outlives the workers, so
    // the wedged batch is cancelled and (stopping) resolved with the
    // persistence fallback instead of re-queued forever.
    service.shutdown();
    let response = ticket.wait().expect("wedged request resolves at shutdown");
    assert!(response.health.cancelled);
    let frame = model.layout().frame_len();
    assert_eq!(response.prediction, window[window.len() - frame..].to_vec());
    service.shutdown(); // idempotent
}

#[test]
fn shutdown_after_crashes_is_clean_and_idempotent() {
    let model = model_of(2, 4);
    let victim = 2u64;
    let mut service = ForecastService::spawn(
        model.clone(),
        guard(),
        TelemetrySink::enabled(),
        ServeConfig::default()
            .workers(2)
            .coalesce(1)
            .linger(Duration::ZERO)
            .crash_retries(0)
            .chaos(ChaosConfig::none().panic_on_seed(victim, 1)),
    )
    .unwrap();
    let len = model.layout().history_len();
    let ticket = service.submit(window_for(victim, len), victim).unwrap();
    assert!(matches!(
        ticket.wait(),
        Err(ServeError::WorkerCrashed { retries: 0 })
    ));
    // The respawned worker serves normally.
    let response = service.forecast(window_for(4, len), 4).unwrap();
    assert_eq!(response.prediction, serial_reference(&model, &window_for(4, len), 4));
    // Joining must not hang on the crashed thread's stale handle.
    service.shutdown();
    service.shutdown();
    assert!(matches!(
        service.submit(window_for(5, len), 5),
        Err(ServeError::ShuttingDown)
    ));
}
