//! The headline contract: a coalesced, concurrent, pooled service
//! returns bit-identical forecasts to the same requests executed
//! serially one-by-one — across coalesce widths {1, 4, 8} and worker
//! counts {1, 2, 8}, with submissions racing in from several threads.
//! An enabled span collector must not perturb a single bit of any of
//! it (the PR 9 extension of the PR 4 telemetry contract).

use dsgl_core::guard::infer_batch_guarded_instrumented;
use dsgl_core::{
    DsGlModel, GuardedAnneal, HealthReport, SpanCollector, TelemetrySink, VariableLayout,
};
use dsgl_data::Sample;
use dsgl_ising::AnnealConfig;
use dsgl_serve::{ForecastService, ServeConfig};
use std::time::Duration;

const NODES: usize = 6;
const HISTORY: usize = 2;

fn model() -> DsGlModel {
    let mut model = DsGlModel::new(VariableLayout::new(HISTORY, NODES, 1));
    model.init_persistence(0.65);
    model
}

fn guard() -> GuardedAnneal {
    GuardedAnneal::new(AnnealConfig::default())
}

/// Request `i`'s history window: deterministic, all distinct.
fn window(i: usize) -> Vec<f64> {
    (0..HISTORY * NODES)
        .map(|k| 0.05 + 0.013 * i as f64 + 0.002 * k as f64)
        .collect()
}

/// Request `i`'s seed. Requests 3k and 3k+1 share a seed *and* a window
/// (see [`requests`]) so every run also exercises duplicate collapsing.
fn requests(n: usize) -> Vec<(Vec<f64>, u64)> {
    (0..n)
        .map(|i| {
            let canonical = if i % 3 == 1 { i - 1 } else { i };
            (window(canonical), 40_000 + canonical as u64)
        })
        .collect()
}

/// The serial reference: each request executed alone through the PR 3
/// guarded batch entry under its own master seed — the semantics the
/// service must be a bit-transparent wrapper around.
fn serial_reference(reqs: &[(Vec<f64>, u64)]) -> Vec<(Vec<f64>, HealthReport)> {
    let model = model();
    let guard = guard();
    let sink = TelemetrySink::noop();
    let target_len = model.layout().target_len();
    reqs.iter()
        .map(|(window, seed)| {
            let sample = Sample {
                history: window.clone(),
                target: vec![0.0; target_len],
            };
            let mut out = infer_batch_guarded_instrumented(
                &model,
                std::slice::from_ref(&sample),
                &guard,
                *seed,
                &sink,
            )
            .unwrap();
            let (pred, _, health) = out.remove(0);
            (pred, health)
        })
        .collect()
}

/// Runs every request through a service and returns responses in
/// request order, submissions racing from `submit_threads` threads.
fn serve_all(
    config: ServeConfig,
    reqs: &[(Vec<f64>, u64)],
    submit_threads: usize,
) -> Vec<(Vec<f64>, HealthReport)> {
    let service = ForecastService::spawn(model(), guard(), TelemetrySink::enabled(), config)
        .expect("spawn service");
    let chunk = reqs.len().div_ceil(submit_threads);
    let mut results: Vec<Option<(Vec<f64>, HealthReport)>> = vec![None; reqs.len()];
    std::thread::scope(|scope| {
        let service = &service;
        let handles: Vec<_> = reqs
            .chunks(chunk)
            .enumerate()
            .map(|(t, chunk_reqs)| {
                scope.spawn(move || {
                    chunk_reqs
                        .iter()
                        .enumerate()
                        .map(|(j, (window, seed))| {
                            let response = service
                                .forecast(window.clone(), *seed)
                                .expect("request must be served");
                            assert!(!response.slo_degraded, "no deadline configured");
                            assert!(response.batch_width >= 1);
                            (t * chunk + j, (response.prediction, response.health))
                        })
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        for handle in handles {
            for (i, result) in handle.join().unwrap() {
                results[i] = Some(result);
            }
        }
    });
    results.into_iter().map(|r| r.unwrap()).collect()
}

#[test]
fn coalesced_concurrent_service_is_bit_identical_to_serial_reference() {
    let reqs = requests(24);
    let reference = serial_reference(&reqs);
    for coalesce in [1usize, 4, 8] {
        for workers in [1usize, 2, 8] {
            let config = ServeConfig::default()
                .workers(workers)
                .coalesce(coalesce)
                .queue_capacity(64)
                .linger(Duration::from_micros(500));
            let served = serve_all(config, &reqs, 4);
            for (i, ((sp, sh), (rp, rh))) in served.iter().zip(&reference).enumerate() {
                assert_eq!(
                    sp, rp,
                    "request {i} bits diverged at coalesce={coalesce} workers={workers}"
                );
                assert_eq!(
                    sh, rh,
                    "request {i} health diverged at coalesce={coalesce} workers={workers}"
                );
            }
        }
    }
}

#[test]
fn duplicate_requests_coalesce_into_one_anneal_with_identical_bits() {
    let reqs = requests(8);
    let reference = serial_reference(&reqs);
    // One worker, wide batches, a linger long enough that every rapid
    // submission below lands in the same batch: the duplicates (3k vs
    // 3k+1) must be answered from a single anneal.
    let sink = TelemetrySink::enabled();
    let service = ForecastService::spawn(
        model(),
        guard(),
        sink.clone(),
        ServeConfig::default()
            .workers(1)
            .coalesce(8)
            .queue_capacity(16)
            .linger(Duration::from_millis(200)),
    )
    .expect("spawn service");
    let tickets: Vec<_> = reqs
        .iter()
        .map(|(window, seed)| service.submit(window.clone(), *seed).unwrap())
        .collect();
    for (i, ticket) in tickets.into_iter().enumerate() {
        let response = ticket.wait().unwrap();
        assert_eq!(response.prediction, reference[i].0, "request {i}");
        assert_eq!(response.health, reference[i].1, "request {i}");
    }
    let stats = dsgl_serve::ServiceStats::from_snapshot(&sink.snapshot());
    assert_eq!(stats.requests, 8);
    assert!(
        stats.coalesced_hits >= 1,
        "duplicate (window, seed) pairs must share an anneal: {stats:?}"
    );
    assert!(stats.batches >= 1);
}

#[test]
fn tracing_enabled_service_is_bit_identical_to_noop_tracing() {
    let reqs = requests(16);
    let reference = serial_reference(&reqs);
    let mut service = ForecastService::spawn_traced(
        model(),
        guard(),
        TelemetrySink::enabled(),
        SpanCollector::enabled(),
        ServeConfig::default()
            .workers(2)
            .coalesce(4)
            .queue_capacity(32)
            .linger(Duration::from_micros(500)),
    )
    .expect("spawn traced service");
    for (i, (window, seed)) in reqs.iter().enumerate() {
        let response = service.forecast(window.clone(), *seed).unwrap();
        assert_eq!(
            response.prediction, reference[i].0,
            "request {i} bits diverged under an enabled span collector"
        );
        // Health is identical except for the trace id the traced path
        // stamps in; zeroing it must recover the reference exactly.
        assert!(response.health.trace_id > 0, "served health carries its trace");
        let mut health = response.health.clone();
        health.trace_id = 0;
        assert_eq!(health, reference[i].1, "request {i}");
    }
    // Join the workers first: the batch span is recorded after the
    // responses fan out, so a live snapshot could miss the last one.
    service.shutdown();
    // The span tree is real: roots, batches, and kernel anneal spans
    // with causal parents.
    let spans = service.trace_spans();
    let roots = spans.iter().filter(|s| s.name == "serve.request").count();
    assert_eq!(roots, 16, "one root span per request");
    assert!(spans.iter().any(|s| s.name == "serve.admission"));
    assert!(spans.iter().any(|s| s.name == "serve.batch"));
    assert!(
        spans.iter().any(|s| s.name.starts_with("anneal.")),
        "kernel anneal spans must land in the service's collector"
    );
    for span in &spans {
        if span.name.starts_with("anneal.") {
            let parent_is_batch = spans
                .iter()
                .any(|p| p.span_id == span.parent_id && p.name == "serve.batch");
            assert!(parent_is_batch, "anneal spans parent to their batch: {span:?}");
        }
    }
    // The Chrome trace export is well-formed enough to contain every
    // span as a complete ("ph":"X") event.
    let json = service.chrome_trace();
    assert!(json.starts_with('{') && json.ends_with('}'));
    assert_eq!(json.matches("\"ph\":\"X\"").count(), spans.len());
}

#[test]
fn rerunning_the_service_reproduces_its_own_bits() {
    let reqs = requests(12);
    let config = || {
        ServeConfig::default()
            .workers(2)
            .coalesce(4)
            .queue_capacity(32)
    };
    let first = serve_all(config(), &reqs, 3);
    let second = serve_all(config(), &reqs, 3);
    assert_eq!(first, second);
}
