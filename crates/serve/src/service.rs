//! The long-lived forecast service: worker pool, coalescing, SLO triage.

use dsgl_core::guard::infer_batch_guarded_seeded_pooled;
use dsgl_core::{CoreError, DsGlModel, GuardedAnneal, HealthReport, MetricsSnapshot, TelemetrySink};
use dsgl_data::Sample;
use dsgl_ising::Workspace;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::error::Error;
use std::fmt;
use std::sync::mpsc;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

use crate::instruments;
use crate::queue::{BoundedQueue, PushError};
use crate::ServeConfig;

/// Errors surfaced by the serving layer.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ServeError {
    /// The admission queue was full: the request was shed at the door.
    /// Back off and retry; nothing was enqueued.
    Overloaded {
        /// The configured queue capacity that was exhausted.
        capacity: usize,
    },
    /// The submitted history window has the wrong length for the
    /// service's model layout.
    ShapeMismatch {
        /// `W·N·F` history values the model expects.
        expected: usize,
        /// What the request supplied.
        actual: usize,
    },
    /// The service is shutting down and no longer admits requests.
    ShuttingDown,
    /// The worker serving this request disappeared without replying
    /// (it panicked or the service was torn down mid-flight).
    WorkerLost,
    /// A configuration knob the service cannot run with.
    InvalidConfig {
        /// Human-readable reason.
        reason: String,
    },
    /// The batched inference call itself failed; every request in the
    /// batch receives the same underlying error.
    Inference(CoreError),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Overloaded { capacity } => {
                write!(f, "admission queue full ({capacity} waiting requests)")
            }
            ServeError::ShapeMismatch { expected, actual } => {
                write!(f, "history window has length {actual}, expected {expected}")
            }
            ServeError::ShuttingDown => write!(f, "service is shutting down"),
            ServeError::WorkerLost => write!(f, "worker exited without replying"),
            ServeError::InvalidConfig { reason } => write!(f, "invalid serve config: {reason}"),
            ServeError::Inference(e) => write!(f, "batched inference failed: {e}"),
        }
    }
}

impl Error for ServeError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ServeError::Inference(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CoreError> for ServeError {
    fn from(e: CoreError) -> Self {
        ServeError::Inference(e)
    }
}

/// One answered forecast request.
#[derive(Debug, Clone, PartialEq)]
pub struct ForecastResponse {
    /// The predicted target block (always finite).
    pub prediction: Vec<f64>,
    /// What the guarded anneal (or the SLO fallback) did to produce it.
    pub health: HealthReport,
    /// Whether this response is the sanitised persistence fallback
    /// served because the request sat queued past its SLO deadline.
    pub slo_degraded: bool,
    /// How many requests shared the batch this one was served in.
    pub batch_width: usize,
    /// Wall-clock admission-to-reply latency in nanoseconds.
    /// Observability metadata only — never part of the determinism
    /// contract.
    pub latency_ns: u64,
}

/// A pending reply handle returned by
/// [`ForecastService::submit`]; redeem it with [`wait`](Ticket::wait).
#[derive(Debug)]
pub struct Ticket {
    rx: mpsc::Receiver<Result<ForecastResponse, ServeError>>,
}

impl Ticket {
    /// Blocks until the service answers this request.
    ///
    /// # Errors
    ///
    /// Whatever the worker reported, or [`ServeError::WorkerLost`] if it
    /// died without replying.
    pub fn wait(self) -> Result<ForecastResponse, ServeError> {
        self.rx.recv().map_err(|_| ServeError::WorkerLost)?
    }
}

struct Request {
    window: Vec<f64>,
    seed: u64,
    admitted: Instant,
    reply: mpsc::Sender<Result<ForecastResponse, ServeError>>,
}

struct Shared {
    model: DsGlModel,
    guard: GuardedAnneal,
    sink: TelemetrySink,
    queue: BoundedQueue<Request>,
    config: ServeConfig,
}

/// A long-lived pool of trained forecasters behind a bounded queue.
///
/// Workers pull admitted requests in batches of up to
/// [`coalesce`](ServeConfig::coalesce), collapse duplicate
/// `(window, seed)` pairs into a single anneal, and run the rest
/// through the seeded guarded batch kernel with a per-worker pooled
/// [`Workspace`] (the PR 5 take/adopt migration, so steady-state
/// serving allocates nothing per request).
///
/// **Determinism contract** (pinned by `tests/determinism.rs`): a
/// request's forecast is a pure function of the model, window, seed,
/// guard policy, and fault model. Queue order, batch grouping, linger,
/// worker count, and duplicate collapsing can never change the bits —
/// each window anneals under an RNG derived only from its own seed,
/// exactly as a serial one-by-one run would.
pub struct ForecastService {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl ForecastService {
    /// Spawns the worker pool and starts serving.
    ///
    /// The `telemetry` sink receives the `serve.*` instrument family
    /// (plus `guard.*`/`anneal.*` from the kernels underneath); pass
    /// [`TelemetrySink::noop`] to serve unobserved at zero cost.
    ///
    /// # Errors
    ///
    /// [`ServeError::InvalidConfig`] for zero workers/coalesce/capacity.
    pub fn spawn(
        model: DsGlModel,
        guard: GuardedAnneal,
        telemetry: TelemetrySink,
        config: ServeConfig,
    ) -> Result<ForecastService, ServeError> {
        config.validate()?;
        config
            .faults
            .validate(model.layout().total())
            .map_err(|e| ServeError::InvalidConfig {
                reason: format!("fault model: {e}"),
            })?;
        telemetry.gauge_set(instruments::WORKERS, config.workers as f64);
        let shared = Arc::new(Shared {
            model,
            guard,
            sink: telemetry,
            queue: BoundedQueue::new(config.queue_capacity),
            config,
        });
        let workers = (0..shared.config.workers)
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(&shared))
            })
            .collect();
        Ok(ForecastService { shared, workers })
    }

    /// Enqueues a forecast request: `window` is the `W·N·F` history
    /// block (frames oldest→newest, node-major) and `seed` determines
    /// the anneal's randomness. Equal `(window, seed)` requests are
    /// coalesced into one anneal and receive identical responses.
    ///
    /// # Errors
    ///
    /// [`ServeError::ShapeMismatch`] for a wrong-length window,
    /// [`ServeError::Overloaded`] when the admission queue is full,
    /// [`ServeError::ShuttingDown`] after [`shutdown`](Self::shutdown).
    pub fn submit(&self, window: Vec<f64>, seed: u64) -> Result<Ticket, ServeError> {
        let expected = self.shared.model.layout().history_len();
        if window.len() != expected {
            return Err(ServeError::ShapeMismatch {
                expected,
                actual: window.len(),
            });
        }
        let (tx, rx) = mpsc::channel();
        let request = Request {
            window,
            seed,
            admitted: Instant::now(),
            reply: tx,
        };
        match self.shared.queue.try_push(request) {
            Ok(depth) => {
                self.shared.sink.counter_add(instruments::REQUESTS, 1);
                self.shared
                    .sink
                    .gauge_set(instruments::QUEUE_DEPTH, depth as f64);
                Ok(Ticket { rx })
            }
            Err(PushError::Full(_)) => {
                self.shared.sink.counter_add(instruments::REJECTED, 1);
                Err(ServeError::Overloaded {
                    capacity: self.shared.queue.capacity(),
                })
            }
            Err(PushError::Closed(_)) => Err(ServeError::ShuttingDown),
        }
    }

    /// Submits and waits: the blocking one-call path.
    ///
    /// # Errors
    ///
    /// See [`submit`](Self::submit) and [`Ticket::wait`].
    pub fn forecast(&self, window: Vec<f64>, seed: u64) -> Result<ForecastResponse, ServeError> {
        self.submit(window, seed)?.wait()
    }

    /// The health endpoint: a point-in-time [`MetricsSnapshot`] of every
    /// instrument recorded so far (`serve.*`, `guard.*`, `anneal.*`).
    /// Empty when the service was spawned with a noop sink.
    pub fn health(&self) -> MetricsSnapshot {
        self.shared.sink.snapshot()
    }

    /// Service-level statistics digested from [`health`](Self::health).
    pub fn stats(&self) -> ServiceStats {
        ServiceStats::from_snapshot(&self.health())
    }

    /// Stops admitting requests, drains what was already queued, and
    /// joins the workers. Idempotent; also runs on drop. Subsequent
    /// [`submit`](Self::submit) calls fail with
    /// [`ServeError::ShuttingDown`].
    pub fn shutdown(&mut self) {
        self.shared.queue.close();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

impl Drop for ForecastService {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl fmt::Debug for ForecastService {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ForecastService")
            .field("workers", &self.shared.config.workers)
            .field("coalesce", &self.shared.config.coalesce)
            .field("queue_capacity", &self.shared.config.queue_capacity)
            .field("queue_depth", &self.shared.queue.len())
            .finish()
    }
}

/// One worker: pop a batch, triage the SLO, collapse duplicates, anneal
/// once per distinct `(window, seed)`, fan the results out.
fn worker_loop(shared: &Shared) {
    // The PR 5 pooled workspace lives across every batch this worker
    // ever serves: buffers carry capacity between anneals, never values.
    let mut pool: Option<Workspace> = None;
    while let Some((batch, depth)) = shared
        .queue
        .pop_batch(shared.config.coalesce, shared.config.linger)
    {
        shared.sink.counter_add(instruments::BATCHES, 1);
        shared
            .sink
            .record(instruments::COALESCE_WIDTH, batch.len() as f64);
        shared
            .sink
            .gauge_set(instruments::QUEUE_DEPTH, depth as f64);
        serve_batch(shared, batch, &mut pool);
    }
}

fn serve_batch(shared: &Shared, batch: Vec<Request>, pool: &mut Option<Workspace>) {
    let width = batch.len();
    // SLO triage: requests already past their deadline get the
    // sanitised persistence fallback immediately — annealing them even
    // later helps nobody and starves the live ones further.
    let (expired, live): (Vec<Request>, Vec<Request>) = match shared.config.deadline {
        Some(deadline) => batch
            .into_iter()
            .partition(|r| r.admitted.elapsed() >= deadline),
        None => (Vec::new(), batch),
    };
    for request in expired {
        let (prediction, health) = persistence_fallback(&shared.model, &request.window);
        shared.sink.counter_add(instruments::SLO_FALLBACKS, 1);
        shared.sink.counter_add(instruments::DEGRADATIONS, 1);
        respond(shared, request, prediction, health, true, width);
    }
    if live.is_empty() {
        return;
    }
    // Coalesce duplicates: identical (seed, window bits) anneal once.
    // f64 bit patterns make the key exact — if the bits match, the
    // anneal provably matches, so fan-out is lossless.
    let mut index_of: HashMap<(u64, Vec<u64>), usize> = HashMap::new();
    let mut unique: Vec<usize> = Vec::with_capacity(live.len());
    let mut assignment: Vec<usize> = Vec::with_capacity(live.len());
    for (i, request) in live.iter().enumerate() {
        let key = (
            request.seed,
            request.window.iter().map(|v| v.to_bits()).collect(),
        );
        let slot = *index_of.entry(key).or_insert_with(|| {
            unique.push(i);
            unique.len() - 1
        });
        assignment.push(slot);
    }
    let hits = (live.len() - unique.len()) as u64;
    if hits > 0 {
        shared.sink.counter_add(instruments::COALESCED_HITS, hits);
    }
    let target_len = shared.model.layout().target_len();
    let samples: Vec<Sample> = unique
        .iter()
        .map(|&i| Sample {
            history: live[i].window.clone(),
            target: vec![0.0; target_len],
        })
        .collect();
    let seeds: Vec<u64> = unique.iter().map(|&i| live[i].seed).collect();
    let results = infer_batch_guarded_seeded_pooled(
        &shared.model,
        &samples,
        &shared.guard,
        &seeds,
        &shared.config.faults,
        &shared.sink,
        pool,
    );
    match results {
        Ok(results) => {
            for (request, &slot) in live.into_iter().zip(&assignment) {
                let (prediction, _, health) = &results[slot];
                // Count before replying: a caller that snapshots the
                // instruments right after its response must already see
                // its own degradation reflected.
                if health.degraded {
                    shared.sink.counter_add(instruments::DEGRADATIONS, 1);
                }
                respond(
                    shared,
                    request,
                    prediction.clone(),
                    health.clone(),
                    false,
                    width,
                );
            }
        }
        Err(e) => {
            for request in live {
                let _ = request.reply.send(Err(ServeError::Inference(e.clone())));
            }
        }
    }
}

fn respond(
    shared: &Shared,
    request: Request,
    prediction: Vec<f64>,
    health: HealthReport,
    slo_degraded: bool,
    batch_width: usize,
) {
    let latency_ns = request.admitted.elapsed().as_nanos() as u64;
    shared
        .sink
        .record(instruments::LATENCY_NS, latency_ns as f64);
    // A dropped Ticket just means the caller stopped waiting.
    let _ = request.reply.send(Ok(ForecastResponse {
        prediction,
        health,
        slo_degraded,
        batch_width,
        latency_ns,
    }));
}

/// The SLO fallback: tile the newest history frame across the horizon
/// (persistence forecast), sanitising non-finite inputs to 0.0. Instant,
/// allocation-light, always finite — the serving twin of the guard's
/// strict-fallback rung.
fn persistence_fallback(model: &DsGlModel, window: &[f64]) -> (Vec<f64>, HealthReport) {
    let layout = model.layout();
    let frame = layout.frame_len();
    let last = &window[window.len() - frame..];
    let mut health = HealthReport {
        degraded: true,
        ..HealthReport::default()
    };
    let mut prediction = Vec::with_capacity(layout.target_len());
    for _ in 0..layout.horizon() {
        for &v in last {
            if v.is_finite() {
                prediction.push(v);
            } else {
                prediction.push(0.0);
                health.sanitized_nodes += 1;
            }
        }
    }
    (prediction, health)
}

/// Digested service statistics, derived from the `serve.*` instruments
/// of a [`MetricsSnapshot`]. Serde field names are part of the frozen
/// snapshot interface (`tests/serialization.rs`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServiceStats {
    /// Requests admitted.
    pub requests: u64,
    /// Requests shed at the door by admission control.
    pub rejected: u64,
    /// Batches executed.
    pub batches: u64,
    /// Requests answered from a coalesced duplicate's anneal.
    pub coalesced_hits: u64,
    /// Responses marked degraded (guard fallback or SLO fallback).
    pub degradations: u64,
    /// Responses served as the SLO persistence fallback.
    pub slo_fallbacks: u64,
    /// Mean requests per executed batch.
    pub mean_coalesce_width: f64,
    /// Median admission-to-reply latency (bucket estimate), ns.
    pub p50_latency_ns: f64,
    /// 99th-percentile admission-to-reply latency (bucket estimate), ns.
    pub p99_latency_ns: f64,
    /// Worker threads serving.
    pub workers: u64,
}

impl ServiceStats {
    /// Digests a snapshot's `serve.*` instruments (zeros when absent,
    /// e.g. from a noop sink).
    pub fn from_snapshot(snapshot: &MetricsSnapshot) -> ServiceStats {
        let latency = snapshot.get(instruments::LATENCY_NS);
        ServiceStats {
            requests: snapshot.counter(instruments::REQUESTS),
            rejected: snapshot.counter(instruments::REJECTED),
            batches: snapshot.counter(instruments::BATCHES),
            coalesced_hits: snapshot.counter(instruments::COALESCED_HITS),
            degradations: snapshot.counter(instruments::DEGRADATIONS),
            slo_fallbacks: snapshot.counter(instruments::SLO_FALLBACKS),
            mean_coalesce_width: snapshot
                .get(instruments::COALESCE_WIDTH)
                .map_or(0.0, |i| i.mean()),
            p50_latency_ns: latency.map_or(0.0, |i| i.quantile(0.5)),
            p99_latency_ns: latency.map_or(0.0, |i| i.quantile(0.99)),
            workers: snapshot
                .get(instruments::WORKERS)
                .map_or(0, |i| i.last as u64),
        }
    }
}
